// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id table3            # dataset statistics (Table III)
//	experiments -id table4            # overall comparison, public datasets
//	experiments -id table5            # overall comparison, ISP datasets
//	experiments -id fig4a|fig4b|fig4c # hyper-parameter sensitivity
//	experiments -id fig5              # ablations (LEI, SUFE, transfer)
//	experiments -id fig6              # cross-group transfer study
//	experiments -id deploy            # §VI deployment workflow
//	experiments -id case              # Fig. 8 case study
//	experiments -id all               # everything, in paper order
//
// Add -scale smoke|cpu|paper to pick the experiment size (default cpu),
// and -targets to restrict sweeps to specific systems.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logsynergy/internal/core"
	"logsynergy/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment id (table3,table4,table5,fig4a,fig4b,fig4c,fig5,fig6,deploy,labelnoise,case,all)")
	scaleName := flag.String("scale", "cpu", "experiment scale: smoke, bench, cpu, paper")
	targetsFlag := flag.String("targets", "", "comma-separated targets for sweeps (default: all six)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.SmokeScale()
	case "bench":
		scale = experiments.BenchScale()
	case "cpu":
		scale = experiments.CPUScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(1)
	}

	lab := experiments.NewLab(scale)
	cfg := core.DefaultConfig()

	targets := append(experiments.PublicNames(), experiments.ISPNames()...)
	if *targetsFlag != "" {
		targets = strings.Split(*targetsFlag, ",")
	}

	run := func(name string) {
		switch name {
		case "table3":
			fmt.Println(experiments.RenderTable3(lab.Table3()))
		case "table4":
			fmt.Println(lab.Table4(cfg).Render())
		case "table5":
			fmt.Println(lab.Table5(cfg).Render())
		case "fig4a":
			fmt.Println(lab.Fig4a(cfg, targets).Render())
		case "fig4b":
			fmt.Println(lab.Fig4b(cfg, targets).Render())
		case "fig4c":
			fmt.Println(lab.Fig4c(cfg, targets).Render())
		case "fig5":
			fmt.Println(lab.Fig5(cfg, targets).Render())
		case "fig6":
			fmt.Println(lab.Fig6(cfg).Render())
		case "deploy":
			fmt.Println(lab.Deployment(cfg, "SystemB", 20000).Render())
		case "labelnoise":
			fmt.Println(lab.LabelNoise(cfg, "Thunderbird", []float64{0, 0.05, 0.1, 0.2, 0.4}).Render())
		case "case":
			fmt.Println(lab.CaseStudy().Render())
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", name)
			os.Exit(1)
		}
	}

	if *id == "all" {
		for _, name := range []string{"table3", "table4", "table5", "fig4a", "fig4b", "fig4c", "fig5", "fig6", "deploy", "labelnoise", "case"} {
			run(name)
		}
		return
	}
	run(*id)
}
