// Command loggen generates synthetic log corpora for the six paper
// datasets and writes them as raw log files with a sidecar label file.
//
// Usage:
//
//	loggen -system BGL -lines 100000 -seed 7 -out bgl.log [-labels bgl.labels]
//	loggen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"logsynergy/internal/logdata"
)

func main() {
	system := flag.String("system", "BGL", "system to generate (see -list)")
	lines := flag.Int("lines", 10000, "number of log lines")
	seed := flag.Int64("seed", 7, "generator seed")
	out := flag.String("out", "", "output log file (default stdout)")
	labels := flag.String("labels", "", "optional sidecar file with one label per line (0/1)")
	list := flag.Bool("list", false, "list available systems and exit")
	flag.Parse()

	systems := logdata.Systems()
	if *list {
		names := make([]string, 0, len(systems))
		for n := range systems {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := systems[n]
			fmt.Printf("%-12s paper-lines=%d anomalies=%d concepts\n", n, s.Lines, len(s.Anomalies))
		}
		return
	}

	spec, ok := systems[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "loggen: unknown system %q (try -list)\n", *system)
		os.Exit(1)
	}
	corpus := logdata.Generate(spec, *seed, *lines)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loggen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	var lw *bufio.Writer
	if *labels != "" {
		lf, err := os.Create(*labels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loggen: %v\n", err)
			os.Exit(1)
		}
		defer lf.Close()
		lw = bufio.NewWriter(lf)
		defer lw.Flush()
	}

	for _, line := range corpus.Lines {
		fmt.Fprintf(w, "%s %s\n", line.Timestamp.Format("2006-01-02T15:04:05.000"), line.Message)
		if lw != nil {
			if line.Anomalous {
				fmt.Fprintln(lw, 1)
			} else {
				fmt.Fprintln(lw, 0)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "loggen: wrote %d lines (%d anomalous) for %s\n",
		len(corpus.Lines), corpus.NumAnomalousLines(), spec.Name)
}
