// Command drainctl runs the Drain parser over a log file: discover
// templates, show per-template counts, extract parameters, and persist or
// reuse parser state across runs.
//
// Usage:
//
//	drainctl -log app.log                          # template summary
//	drainctl -log app.log -show-params -limit 5    # with parameter samples
//	drainctl -log app.log -save state.json         # persist parser state
//	drainctl -log more.log -load state.json        # continue a state
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"logsynergy/internal/drain"
)

func main() {
	logPath := flag.String("log", "", "log file (default stdin)")
	savePath := flag.String("save", "", "save parser state to this file")
	loadPath := flag.String("load", "", "load parser state from this file")
	showParams := flag.Bool("show-params", false, "show one parameter sample per template")
	limit := flag.Int("limit", 0, "show only the top-N templates by count")
	simTh := flag.Float64("sim", 0.4, "Drain similarity threshold")
	depth := flag.Int("depth", 4, "Drain tree depth")
	flag.Parse()

	cfg := drain.DefaultConfig()
	cfg.SimThreshold = *simTh
	cfg.Depth = *depth

	parser := drain.New(cfg)
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		parser, err = drain.LoadState(f, cfg)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	in := os.Stdin
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	paramSample := make(map[int][]string)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		m := parser.Parse(sc.Text())
		lines++
		if *showParams {
			if _, ok := paramSample[m.EventID]; !ok {
				paramSample[m.EventID] = m.Params
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	events := parser.Events()
	sort.Slice(events, func(i, j int) bool { return events[i].Count > events[j].Count })
	shown := len(events)
	if *limit > 0 && *limit < shown {
		shown = *limit
	}
	fmt.Printf("%d lines, %d templates\n", lines, len(events))
	for _, ev := range events[:shown] {
		fmt.Printf("%6d  E%-4d %s\n", ev.Count, ev.ID, ev.Template)
		if *showParams {
			if ps := paramSample[ev.ID]; len(ps) > 0 {
				fmt.Printf("              params: %v\n", ps)
			}
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := parser.SaveState(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "state saved to %s\n", *savePath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drainctl: %v\n", err)
	os.Exit(1)
}
