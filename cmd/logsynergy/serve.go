package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"logsynergy/internal/alertstore"
	"logsynergy/internal/broker"
	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/httpapi"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/shard"
)

// runServe is the observable deployment mode: it streams a log through
// the §VI pipeline exactly like `detect`, while exposing the obs metrics
// registry over HTTP for the lifetime of the run:
//
//	/metrics      plain-text counters, gauges and latency histograms
//	/debug/vars   the same registry as expvar JSON (plus Go runtime vars)
//	/debug/pprof  CPU/heap/goroutine profiling of the live pipeline
//	/ingest       durable log intake (broker mode, -broker-dir)
//
// Two source modes:
//
//   - Direct (default): the -log file (or stdin) replays through the
//     in-memory pipeline; -repeat 0 loops forever as a soak target.
//   - Broker (-broker-dir): lines land in the WAL-backed broker — over
//     POST /ingest and/or seeded from -log — and the pipeline tails a
//     consumer group, committing its offset as windows finish detection.
//     A restart resumes at the committed offset; acknowledged records
//     survive crashes.
//
// SIGINT/SIGTERM triggers a graceful shutdown: intake closes, the
// pipeline drains what the broker holds, spilled alerts get a redelivery
// attempt, consumer offsets commit, and a final metrics snapshot prints.
// A second signal kills the process immediately.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model bundle")
	logPath := fs.String("log", "", "log file to stream (default stdin; in broker mode an optional seed)")
	hint := fs.String("hint", "a software system", "LEI system hint for new templates")
	addr := fs.String("addr", "localhost:9090", "HTTP listen address for /metrics, /debug/vars, /debug/pprof")
	repeat := fs.Int("repeat", 1, "replay the log this many times (0 = loop forever)")
	bufSize := fs.Int("buffer", 1024, "collection buffer capacity")
	dropPolicy := fs.String("drop-policy", "block", "full-buffer policy: block | drop-newest")
	patternCap := fs.Int("pattern-cap", 0, "pattern library capacity, LRU-evicted (0 = unbounded)")
	linger := fs.Duration("linger", 0, "keep serving metrics this long after the stream ends")
	quiet := fs.Bool("quiet", false, "suppress per-anomaly report output")
	retries := fs.Int("retries", 0, "attempts per stage call before the failure is terminal (0 = default 3)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a circuit breaker (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before probing (0 = default 1s)")
	interpretTimeout := fs.Duration("interpret-timeout", 0, "per-call LEI timeout (0 = none)")
	sinkTimeout := fs.Duration("sink-timeout", 0, "per-delivery sink timeout (0 = none)")
	spillCap := fs.Int("spill-cap", 0, "in-memory spill queue capacity for undeliverable alerts (0 = default 1024)")
	spillPath := fs.String("spill", "", "alertstore file additionally receiving spilled alerts")
	noResilience := fs.Bool("no-resilience", false, "disable retries, breakers, timeouts and spill (ablation)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the fault-injection registry")
	brokerDir := fs.String("broker-dir", "", "WAL directory; enables the durable broker and its POST /ingest intake")
	shards := fs.Int("shards", 1, "partition intake across N independent detection shards keyed by stream id (requires -broker-dir)")
	group := fs.String("group", "detector", "broker consumer group the pipeline reads as")
	fsyncPolicy := fs.String("fsync", "interval", "broker durability policy: always | interval | never")
	fsyncEvery := fs.Duration("fsync-every", 50*time.Millisecond, "background fsync cadence under -fsync interval")
	segmentBytes := fs.Int64("segment-bytes", 8<<20, "broker segment roll size in bytes")
	backlogBytes := fs.Int64("backlog-bytes", 256<<20, "broker backlog bound in bytes (<0 = unbounded)")
	backlogPolicy := fs.String("backlog-policy", "reject", "broker full-backlog policy: block | reject (reject answers 429)")
	maxBatchBytes := fs.Int64("max-batch-bytes", broker.DefaultMaxBatchBytes, "one /ingest request body limit in bytes")
	noRetention := fs.Bool("no-retention", false, "keep fully-consumed broker segments instead of deleting them")
	clusterPath := fs.String("cluster", "", "cluster assignment manifest; this process serves one fleet node (requires -node)")
	nodeName := fs.String("node", "", "this node's name in the -cluster manifest")
	manifestWatch := fs.Duration("manifest-watch", 2*time.Second, "cluster manifest poll cadence for adopting failover reassignments (0 disables)")
	var injectSpecs ruleList
	fs.Var(&injectSpecs, "inject", "fault-injection rule point[:key=val,...] (repeatable; see internal/fault.ParseRule)")
	fs.Parse(args)

	policy, err := parseDropPolicy(*dropPolicy)
	if err != nil {
		return err
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	det, err := core.LoadBundle(f)
	f.Close()
	if err != nil {
		return err
	}

	var lines []string
	if *logPath != "" {
		lines, err = readLines(*logPath)
		if err != nil {
			return err
		}
	} else if *brokerDir == "" && *clusterPath == "" {
		// Broker and cluster modes take traffic over /ingest, so an empty
		// -log is not an empty stream there — only direct mode falls back
		// to stdin.
		lines, err = readAllStdin()
		if err != nil {
			return err
		}
	}
	if *brokerDir == "" && *clusterPath == "" && len(lines) == 0 {
		return fmt.Errorf("serve: no log lines to stream")
	}

	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(det.Table.Dim)
	parser := drain.NewDefault()
	for _, in := range det.Table.Interps {
		parser.Parse(in.Template)
	}

	reg := obs.Default()

	// One fault registry serves both the broker's injection points
	// (broker.append/fsync/read) and the pipeline's.
	var faults *fault.Registry
	if len(injectSpecs.rules) > 0 {
		faults = fault.New(*faultSeed)
		faults.Enable(injectSpecs.rules...)
	}

	// buildPipelineCfg assembles the per-run pipeline config from the
	// flags; the returned cleanup closes the spill store (if any).
	buildPipelineCfg := func() (pipeline.Config, func(), error) {
		cfg := pipeline.DefaultConfig(*hint)
		cfg.BufferSize = *bufSize
		cfg.DropPolicy = policy
		cfg.PatternCap = *patternCap
		cfg.Metrics = reg
		cfg.Faults = faults
		cfg.Resilience = pipeline.ResilienceConfig{
			Disabled:         *noResilience,
			MaxAttempts:      *retries,
			InterpretTimeout: *interpretTimeout,
			SinkTimeout:      *sinkTimeout,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			SpillCap:         *spillCap,
			Seed:             *faultSeed,
		}
		cleanup := func() {}
		if *spillPath != "" {
			store, err := alertstore.Open(*spillPath)
			if err != nil {
				return cfg, cleanup, fmt.Errorf("serve: opening spill store: %w", err)
			}
			cleanup = func() { store.Close() }
			cfg.SpillTo = alertstore.NewSink(store)
		}
		return cfg, cleanup, nil
	}

	if *clusterPath != "" {
		if *nodeName == "" {
			return fmt.Errorf("serve: -cluster requires -node <name> (this process's name in the manifest)")
		}
		if len(lines) > 0 {
			return fmt.Errorf("serve: -log seeding is not supported in cluster mode; POST the lines through the front router")
		}
		fp, err := broker.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		bp, err := broker.ParseFullPolicy(*backlogPolicy)
		if err != nil {
			return err
		}
		pcfg, cleanup, err := buildPipelineCfg()
		if err != nil {
			return err
		}
		defer cleanup()
		pcfg.Metrics = nil // each partition gets its own registry
		return runServeCluster(clusterServeOptions{
			manifestPath: *clusterPath,
			nodeName:     *nodeName,
			watchEvery:   *manifestWatch,
			runtime: shard.Config{
				// Shards, Vnodes and Subset come from the manifest; Dir falls
				// back to the manifest's shared-storage root when no
				// -broker-dir is given.
				Dir:   *brokerDir,
				Group: *group,
				Broker: broker.Config{
					SegmentBytes:     *segmentBytes,
					Fsync:            fp,
					FsyncEvery:       *fsyncEvery,
					MaxBacklogBytes:  *backlogBytes,
					FullPolicy:       bp,
					DisableRetention: *noRetention,
				},
				Pipeline:    pcfg,
				Detector:    det,
				Interp:      interp,
				Embedder:    embedder,
				Sink:        &printingSink{quiet: *quiet},
				Metrics:     reg,
				ShardFaults: func(int) *fault.Registry { return faults },
			},
			addr:          *addr,
			maxBatchBytes: *maxBatchBytes,
			linger:        *linger,
		})
	}

	if *shards > 1 {
		if *brokerDir == "" {
			return fmt.Errorf("serve: -shards %d requires -broker-dir (the shard runtime root)", *shards)
		}
		fp, err := broker.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		bp, err := broker.ParseFullPolicy(*backlogPolicy)
		if err != nil {
			return err
		}
		pcfg, cleanup, err := buildPipelineCfg()
		if err != nil {
			return err
		}
		defer cleanup()
		pcfg.Metrics = nil // each partition gets its own registry
		return runServeSharded(shardServeOptions{
			runtime: shard.Config{
				Shards: *shards,
				Dir:    *brokerDir,
				Group:  *group,
				Broker: broker.Config{
					SegmentBytes:     *segmentBytes,
					Fsync:            fp,
					FsyncEvery:       *fsyncEvery,
					MaxBacklogBytes:  *backlogBytes,
					FullPolicy:       bp,
					DisableRetention: *noRetention,
				},
				Pipeline: pcfg,
				Detector: det,
				Interp:   interp,
				Embedder: embedder,
				Sink:     &printingSink{quiet: *quiet},
				Metrics:  reg,
				// The -inject registry applies fleet-wide in CLI mode (chaos
				// tests scope registries per shard programmatically).
				ShardFaults: func(int) *fault.Registry { return faults },
			},
			seedLines:     lines,
			logPath:       *logPath,
			addr:          *addr,
			maxBatchBytes: *maxBatchBytes,
			linger:        *linger,
			group:         *group,
		})
	}

	var bk *broker.Broker
	var cons *broker.Consumer
	if *brokerDir != "" {
		fp, err := broker.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		bp, err := broker.ParseFullPolicy(*backlogPolicy)
		if err != nil {
			return err
		}
		bk, err = broker.Open(broker.Config{
			Dir:              *brokerDir,
			SegmentBytes:     *segmentBytes,
			Fsync:            fp,
			FsyncEvery:       *fsyncEvery,
			MaxBacklogBytes:  *backlogBytes,
			FullPolicy:       bp,
			DisableRetention: *noRetention,
			Metrics:          reg,
			Faults:           faults,
		})
		if err != nil {
			return err
		}
		defer bk.Close()
		if len(lines) > 0 {
			first, last, err := bk.AppendBatch(lines)
			if err != nil {
				return fmt.Errorf("serve: seeding broker from -log: %w", err)
			}
			fmt.Printf("broker: seeded offsets %d..%d from %s\n", first, last, *logPath)
		}
		cons, err = bk.Consumer(*group)
		if err != nil {
			return err
		}
		defer cons.Close()
		fmt.Printf("broker: %s resuming group %q at offset %d (fsync=%s, backlog=%s)\n",
			*brokerDir, *group, cons.Position(), fp, bp)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newServeMux(reg, bk, *maxBatchBytes)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", ln.Addr())
	if bk != nil {
		fmt.Printf("ingesting on http://%s/ingest (newline-delimited POST batches)\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg, cleanup, err := buildPipelineCfg()
	if err != nil {
		return err
	}
	defer cleanup()
	p := pipeline.New(cfg, parser, det, interp, embedder, &printingSink{quiet: *quiet})

	var stats pipeline.Stats
	if bk != nil {
		// The consumer must drain everything already acknowledged before
		// the run ends, so the pipeline runs on an uncancelled context;
		// the signal instead closes the intake, which ends the stream once
		// the backlog is detected. stop() re-arms default signal handling,
		// so a second signal kills immediately.
		go func() {
			<-ctx.Done()
			stop()
			fmt.Println("\nshutting down: intake closed, draining broker backlog (signal again to kill)")
			bk.CloseIntake()
		}()
		stats = p.Run(context.Background(), cons)
		if err := cons.Err(); err != nil {
			fmt.Printf("broker consumer stopped early: %v\n", err)
		}
	} else {
		stats = p.Run(ctx, newRepeatSource(lines, *repeat))
	}
	fmt.Printf("lines=%d dropped=%d sequences=%d anomalies=%d pattern-hits=%d evictions=%d new-events=%d\n",
		stats.LinesCollected, stats.LinesDropped, stats.SequencesFormed,
		stats.Anomalies, stats.PatternHits, stats.PatternEvictions, stats.NewEvents)
	if stats.Retries+stats.Degraded+stats.Spilled+stats.BreakerOpens+stats.ParseFailures+stats.DetectFailures > 0 {
		fmt.Printf("faults: retries=%d degraded=%d spilled=%d spill-dropped=%d breaker-opens=%d sink-errors=%d parse-failures=%d detect-failures=%d\n",
			stats.Retries, stats.Degraded, stats.Spilled, stats.SpillDropped,
			stats.BreakerOpens, stats.SinkErrors, stats.ParseFailures, stats.DetectFailures)
	}
	if n := p.SpillLen(); n > 0 {
		// Sinks may have recovered since the spill; one redelivery pass
		// before the process exits.
		delivered, remaining := p.FlushSpill()
		fmt.Printf("spill flush: %d alerts redelivered, %d undeliverable\n", delivered, remaining)
	}
	if cons != nil {
		if err := cons.Commit(); err != nil {
			fmt.Printf("broker: final offset commit failed: %v\n", err)
		}
		fmt.Printf("broker: group %q committed through offset %d (lag %d)\n",
			*group, bk.Committed(*group), bk.Lag(*group))
		cons.Close()
	}
	if bk != nil {
		if err := bk.Close(); err != nil {
			fmt.Printf("broker: close: %v\n", err)
		}
	}
	fmt.Println("final metrics snapshot:")
	reg.WriteText(os.Stdout)

	if *linger > 0 {
		fmt.Printf("stream ended; serving metrics for %s more\n", *linger)
		select {
		case <-ctx.Done():
		case <-time.After(*linger):
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}

// newServeMux wires the serve HTTP surface: the observability pages
// plus, when a broker is attached, the durable /ingest intake.
func newServeMux(reg *obs.Registry, bk *broker.Broker, maxBatchBytes int64) *http.ServeMux {
	mux := newObsMux(reg)
	if bk != nil {
		mux.Handle("/ingest", bk.IngestHandler(maxBatchBytes))
	}
	return mux
}

// shardServeOptions carries the flag-derived settings into the sharded
// serve loop.
type shardServeOptions struct {
	runtime       shard.Config
	seedLines     []string
	logPath       string
	addr          string
	maxBatchBytes int64
	linger        time.Duration
	group         string
}

// runServeSharded is serve's scale-out mode: one WAL-backed detection
// pipeline per shard under a consistent-hash router, the sharded /ingest
// intake, and a /metrics page merging the fleet (totals plus per-shard
// shard<i>.-prefixed series). Shutdown mirrors single-broker mode:
// intake closes, every shard drains its backlog and commits its own
// offset, then a final merged snapshot prints.
func runServeSharded(opts shardServeOptions) error {
	rt, err := shard.Open(opts.runtime)
	if err != nil {
		return err
	}
	fmt.Printf("shard runtime: %d partitions under %s (group %q)\n", rt.Shards(), opts.runtime.Dir, opts.group)

	if len(opts.seedLines) > 0 {
		results, err := rt.AppendBatch(opts.seedLines)
		if err != nil {
			rt.Close()
			return fmt.Errorf("serve: seeding shards from -log: %w", err)
		}
		for _, res := range results {
			fmt.Printf("shard %d: seeded %d lines from %s\n", res.Partition, res.Acked, opts.logPath)
		}
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		rt.Close()
		return err
	}
	srv := &http.Server{Handler: newShardServeMux(rt, opts.maxBatchBytes)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("serving merged metrics on http://%s/metrics (pprof on /debug/pprof/)\n", ln.Addr())
	fmt.Printf("ingesting on http://%s/ingest (lines route to shards by stream key)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("\nshutting down: intake closed, draining every shard (signal again to kill)")
	closeErr := rt.Close() // waits for every worker; each commits its own offset

	stats := rt.Stats()
	fmt.Printf("fleet: lines=%d dropped=%d sequences=%d anomalies=%d pattern-hits=%d evictions=%d new-events=%d\n",
		stats.LinesCollected, stats.LinesDropped, stats.SequencesFormed,
		stats.Anomalies, stats.PatternHits, stats.PatternEvictions, stats.NewEvents)
	for i := 0; i < rt.Shards(); i++ {
		s := rt.ShardStats(i)
		fmt.Printf("shard %d: lines=%d sequences=%d anomalies=%d new-events=%d committed=%d\n",
			i, s.LinesCollected, s.SequencesFormed, s.Anomalies, s.NewEvents, rt.Committed(i))
	}
	hits, misses, waits := rt.Cache().Stats()
	fmt.Printf("interp cache: %d entries, %d hits, %d misses, %d waits\n", rt.Cache().Size(), hits, misses, waits)
	if closeErr != nil {
		fmt.Printf("shard runtime close: %v\n", closeErr)
	}
	fmt.Println("final metrics snapshot:")
	rt.Snapshot().WriteText(os.Stdout)

	if opts.linger > 0 {
		fmt.Printf("stream ended; serving metrics for %s more\n", opts.linger)
		time.Sleep(opts.linger)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}

// serveStatus is the GET /admin/v1/status body of single-process serve
// mode — the same shape family as the fleet node's and router's status
// answers, so `logsynergy rebalance -live` polls any of them alike.
type serveStatus struct {
	Role    string               `json:"role"`
	Shards  int                  `json:"shards"`
	Owned   []int                `json:"owned"`
	Cutover *shard.CutoverStatus `json:"cutover,omitempty"`
	Build   httpapi.BuildInfo    `json:"build"`
}

// newShardServeMux wires the sharded serve surface on the shared admin
// mux (httpapi.Mux mounts /metrics, /metrics.json, /debug/vars and the
// pprof pages): /ingest routes to shards, /admin/v1/rebalance grows the
// fleet live (POST, to=N; the unversioned path stays as an alias), and
// /admin/v1/status reports the live-cutover phase for progress polling.
func newShardServeMux(rt *shard.Runtime, maxBatchBytes int64) *http.ServeMux {
	mux := httpapi.Mux(httpapi.MuxOptions{Snapshot: rt.Snapshot})
	mux.Handle("/ingest", rt.IngestHandler(maxBatchBytes))
	httpapi.HandleVersioned(mux, "/admin/rebalance", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpapi.MethodNotAllowed(w, http.MethodPost, "rebalance accepts POST only")
			return
		}
		raw := r.FormValue("to") // query or form body, one explicit rule
		to, err := strconv.Atoi(raw)
		if err != nil || to <= 0 {
			httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
				Code:    httpapi.CodeBadRequest,
				Message: fmt.Sprintf("rebalance needs a positive partition count: to=%q is not one", raw),
			})
			return
		}
		// Blocks until the cutover completes: intake keeps flowing the
		// whole time, so a long-poll here is the honest contract — the 200
		// means the fleet IS serving the new layout.
		rep, err := rt.LiveRebalance(to)
		if err != nil {
			httpapi.Error(w, http.StatusConflict, httpapi.Detail{Code: httpapi.CodeConflict, Message: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	}))
	httpapi.HandleVersioned(mux, "/admin/status", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpapi.MethodNotAllowed(w, http.MethodGet, "status accepts GET only")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serveStatus{
			Role:    "serve",
			Shards:  rt.Shards(),
			Owned:   rt.Owned(),
			Cutover: rt.CutoverStatus(),
			Build:   httpapi.Build(),
		})
	}))
	return mux
}

// ruleList collects repeatable -inject flags as parsed fault rules.
type ruleList struct {
	specs []string
	rules []fault.Rule
}

func (l *ruleList) String() string { return strings.Join(l.specs, ";") }

func (l *ruleList) Set(spec string) error {
	rule, err := fault.ParseRule(spec)
	if err != nil {
		return err
	}
	l.specs = append(l.specs, spec)
	l.rules = append(l.rules, rule)
	return nil
}

// parseDropPolicy maps the -drop-policy flag to a pipeline.DropPolicy.
func parseDropPolicy(s string) (pipeline.DropPolicy, error) {
	switch s {
	case "block", "":
		return pipeline.DropBlock, nil
	case "drop-newest":
		return pipeline.DropNewest, nil
	default:
		return 0, fmt.Errorf("unknown drop policy %q (want block or drop-newest)", s)
	}
}

// newObsMux mounts the observability surface — the shared admin mux
// with the registry's snapshot behind /metrics, /metrics.json,
// /debug/vars and the pprof pages.
func newObsMux(reg *obs.Registry) *http.ServeMux {
	return httpapi.Mux(httpapi.MuxOptions{Snapshot: reg.Snapshot})
}

// repeatSource replays a fixed slice of lines a number of times.
type repeatSource struct {
	lines     []string
	pos       int
	remaining int // passes left after the current one; -1 = forever
}

// newRepeatSource builds a source that replays lines `times` times
// (times <= 0 means loop forever).
func newRepeatSource(lines []string, times int) *repeatSource {
	if times <= 0 {
		return &repeatSource{lines: lines, remaining: -1}
	}
	return &repeatSource{lines: lines, remaining: times - 1}
}

// Next implements pipeline.Source.
func (r *repeatSource) Next() (string, bool) {
	if len(r.lines) == 0 {
		return "", false
	}
	if r.pos >= len(r.lines) {
		if r.remaining == 0 {
			return "", false
		}
		if r.remaining > 0 {
			r.remaining--
		}
		r.pos = 0
	}
	l := r.lines[r.pos]
	r.pos++
	return l, true
}
