package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/httpapi"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/shard"
	"logsynergy/internal/tensor"
)

// openAdminFleet builds a serving fleet like openServeFleet but lets the
// test bend the shard config (fault registries, tiny backlogs) and pick
// the mux's batch bound.
func openAdminFleet(t *testing.T, shards int, maxBatchBytes int64, mutate func(*shard.Config)) (*shard.Runtime, *httptest.Server) {
	t.Helper()
	ccfg := core.DefaultConfig()
	det := core.NewDetector(core.NewModel(ccfg, 2),
		&repr.EventTable{System: "SystemX", Dim: ccfg.EmbedDim, Vectors: tensor.New(0, ccfg.EmbedDim)})
	cfg := shard.Config{
		Shards:   shards,
		Dir:      t.TempDir(),
		Detector: det,
		Interp:   lei.NewSimLLM(lei.Config{}),
		Embedder: embed.New(ccfg.EmbedDim),
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := shard.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	srv := httptest.NewServer(newShardServeMux(rt, maxBatchBytes))
	t.Cleanup(srv.Close)
	return rt, srv
}

// fetch performs one request and returns status, headers and body.
func fetch(t *testing.T, method, url string, body io.Reader) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// decodeEnvelope asserts body carries the uniform error envelope with
// the wanted machine-readable code and returns its detail.
func decodeEnvelope(t *testing.T, body []byte, wantCode string) *httpapi.Detail {
	t.Helper()
	d := httpapi.DecodeDetail(body)
	if d == nil {
		t.Fatalf("response body carries no error envelope: %s", body)
	}
	if d.Code != wantCode {
		t.Fatalf("envelope code %q, want %q (message: %s)", d.Code, wantCode, d.Message)
	}
	if d.Message == "" {
		t.Fatalf("envelope code %q has an empty message", d.Code)
	}
	return d
}

// TestAdminVersionedAliasParity: every pre-existing unversioned admin
// path stays mounted as a thin alias of its /admin/v1 twin — same
// handler, so status, headers and body are byte-identical, success and
// error answers alike.
func TestAdminVersionedAliasParity(t *testing.T) {
	_, srv := openAdminFleet(t, 2, 0, nil)

	cases := []struct {
		name, method, legacy, versioned string
		wantStatus                      int
	}{
		{"status GET", http.MethodGet, "/admin/status", httpapi.Prefix + "/status", http.StatusOK},
		{"status POST (405)", http.MethodPost, "/admin/status", httpapi.Prefix + "/status", http.StatusMethodNotAllowed},
		{"rebalance GET (405)", http.MethodGet, "/admin/rebalance?to=3", httpapi.Prefix + "/rebalance?to=3", http.StatusMethodNotAllowed},
		{"rebalance POST bad param (400)", http.MethodPost, "/admin/rebalance?to=x", httpapi.Prefix + "/rebalance?to=x", http.StatusBadRequest},
	}
	for _, tc := range cases {
		lst, lh, lb := fetch(t, tc.method, srv.URL+tc.legacy, nil)
		vst, vh, vb := fetch(t, tc.method, srv.URL+tc.versioned, nil)
		if lst != tc.wantStatus || vst != tc.wantStatus {
			t.Fatalf("%s: legacy %d / versioned %d, want %d", tc.name, lst, vst, tc.wantStatus)
		}
		if !bytes.Equal(lb, vb) {
			t.Fatalf("%s: alias bodies differ:\nlegacy:    %s\nversioned: %s", tc.name, lb, vb)
		}
		if la, va := lh.Get("Allow"), vh.Get("Allow"); la != va {
			t.Fatalf("%s: Allow header %q vs %q", tc.name, la, va)
		}
	}

	// The 405 answers must name the accepted method.
	_, h, _ := fetch(t, http.MethodGet, srv.URL+httpapi.Prefix+"/rebalance", nil)
	if h.Get("Allow") != http.MethodPost {
		t.Fatalf("rebalance 405 Allow %q, want POST", h.Get("Allow"))
	}
	_, h, _ = fetch(t, http.MethodPost, srv.URL+httpapi.Prefix+"/status", nil)
	if h.Get("Allow") != http.MethodGet {
		t.Fatalf("status 405 Allow %q, want GET", h.Get("Allow"))
	}
}

// TestAdminErrorEnvelope: every non-2xx answer on the serve surface —
// admin and ingest alike — carries the uniform JSON error envelope with
// a stable machine-readable code: 405, 400, 409, 413, 429 and 503.
func TestAdminErrorEnvelope(t *testing.T) {
	// Partition 0's consumer is wedged (reads fail, no backoff sleep)
	// over a tiny reject-on-full backlog, so lines keyed to it fill the
	// WAL and 429; the mux's 96-byte batch bound makes 413 reachable.
	freg := fault.New(7)
	freg.SetSleep(func(time.Duration) {})
	freg.Enable(fault.Rule{Point: broker.PointRead, Err: errors.New("disk gone")})
	rt, srv := openAdminFleet(t, 2, 96, func(cfg *shard.Config) {
		cfg.Broker = broker.Config{
			SegmentBytes:    256,
			MaxBacklogBytes: 2048,
			FullPolicy:      broker.FullReject,
			Fsync:           broker.FsyncNever,
		}
		cfg.Pipeline.Resilience = pipeline.ResilienceConfig{Sleep: func(time.Duration) {}}
		cfg.ShardFaults = func(i int) *fault.Registry {
			if i == 0 {
				return freg
			}
			return nil
		}
	})

	// 405 — wrong method, envelope plus Allow header.
	st, h, b := fetch(t, http.MethodGet, srv.URL+"/ingest", nil)
	if st != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d, want 405", st)
	}
	decodeEnvelope(t, b, httpapi.CodeMethodNotAllowed)
	if h.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /ingest Allow %q, want POST", h.Get("Allow"))
	}

	// 400 — malformed parameter.
	st, _, b = fetch(t, http.MethodPost, srv.URL+httpapi.Prefix+"/rebalance?to=x", nil)
	if st != http.StatusBadRequest {
		t.Fatalf("rebalance to=x status %d, want 400", st)
	}
	decodeEnvelope(t, b, httpapi.CodeBadRequest)

	// 409 — well-formed but refused by fleet state (live shrink).
	st, _, b = fetch(t, http.MethodPost, srv.URL+httpapi.Prefix+"/rebalance?to=1", nil)
	if st != http.StatusConflict {
		t.Fatalf("live shrink status %d, want 409", st)
	}
	decodeEnvelope(t, b, httpapi.CodeConflict)

	// 413 — body over the 96-byte bound.
	big := strings.Repeat("x", 200)
	st, _, b = fetch(t, http.MethodPost, srv.URL+"/ingest", strings.NewReader(big))
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", st)
	}
	decodeEnvelope(t, b, httpapi.CodeTooLarge)

	// 429 — fill the wedged partition's backlog through the wire. The
	// envelope is additive here: the legacy IngestResponse fields stay
	// populated alongside the error detail.
	part := shard.NewPartitioner(2)
	key := ""
	for i := 0; i < 10000 && key == ""; i++ {
		if k := strconv.Itoa(9000 + i); part.Partition(k) == 0 {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no key routes to partition 0")
	}
	got429 := false
	for i := 0; i < 2000 && !got429; i++ {
		line := fmt.Sprintf("%s filler payload record %d", key, i)
		st, h, b = fetch(t, http.MethodPost, srv.URL+"/ingest", strings.NewReader(line))
		switch st {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
			d := decodeEnvelope(t, b, httpapi.CodeBackpressure)
			if d.RetryAfterS <= 0 {
				t.Fatalf("429 envelope retry_after_s %d, want positive", d.RetryAfterS)
			}
			if h.Get("Retry-After") != strconv.Itoa(d.RetryAfterS) {
				t.Fatalf("Retry-After header %q does not mirror retry_after_s %d", h.Get("Retry-After"), d.RetryAfterS)
			}
			var legacy shard.IngestResponse
			if err := json.Unmarshal(b, &legacy); err != nil {
				t.Fatalf("429 body no longer decodes as IngestResponse: %v", err)
			}
			if legacy.Rejected != 1 || len(legacy.Partitions) == 0 {
				t.Fatalf("429 legacy fields rejected=%d partitions=%d, want 1 and >0", legacy.Rejected, len(legacy.Partitions))
			}
			if !strings.Contains(legacy.Partitions[0].Error, "backlog") {
				t.Fatalf("429 partition error %q, want a backlog rejection", legacy.Partitions[0].Error)
			}
		default:
			t.Fatalf("filling wedged partition: status %d body %s", st, b)
		}
	}
	if !got429 {
		t.Fatal("wedged partition never answered 429; backpressure is broken")
	}

	// 503 — intake closed: every routed partition refuses.
	rt.Kill()
	st, _, b = fetch(t, http.MethodPost, srv.URL+"/ingest", strings.NewReader(key+" after shutdown"))
	if st != http.StatusServiceUnavailable {
		t.Fatalf("post-kill ingest status %d, want 503", st)
	}
	decodeEnvelope(t, b, httpapi.CodeClosed)
}
