package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"logsynergy/internal/httpapi"
	"logsynergy/internal/shard"
)

// runRebalance re-partitions a sharded broker directory from N to M
// shards, moving each relocated key's window tail, template groups and
// pattern-library verdicts to its new partition:
//
//	logsynergy rebalance -from 3 -to 4 -broker-dir /var/lib/logsynergy
//
// Offline mode requires the detector to be stopped (WAL fully drained
// and committed) — rebalance refuses an unquiesced layout. With -to-dir
// the rebalanced layout is written to a fresh directory and the original
// is kept as a rollback; without it the layout is rewritten in place
// (crash-safe: an interrupted run is rolled forward or back on the next
// open).
//
// With -live the fleet keeps serving: the command asks a RUNNING
// logsynergy serve process (via its -addr HTTP surface) to grow itself
// one partition under traffic:
//
//	logsynergy rebalance -live -addr 127.0.0.1:9600 -to 4
//
// The call returns when the cutover has completed and the fleet is
// serving the new layout. Live mode grows one partition per invocation.
func runRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	from := fs.Int("from", 0, "current partition count (offline mode)")
	to := fs.Int("to", 0, "target partition count")
	brokerDir := fs.String("broker-dir", "", "WAL directory holding the current layout (the shard runtime root; offline mode)")
	toDir := fs.String("to-dir", "", "write the rebalanced layout here instead of in place (keeps -broker-dir as rollback; offline mode)")
	group := fs.String("group", "detector", "broker consumer group checked for quiescence (offline mode)")
	live := fs.Bool("live", false, "grow a serving fleet in place through its admin endpoint; traffic keeps flowing")
	addr := fs.String("addr", "", "HTTP address (host:port) of the serving fleet, for -live")
	timeout := fs.Duration("timeout", 10*time.Minute, "how long to wait for a -live cutover to complete")
	quiet := fs.Bool("quiet", false, "suppress the summary line")
	fs.Parse(args)

	if *live {
		if *addr == "" {
			return fmt.Errorf("rebalance -live needs a serving fleet: pass -addr host:port of a running `logsynergy serve -shards N` process")
		}
		if *brokerDir != "" || *toDir != "" {
			return fmt.Errorf("rebalance -live operates on the serving fleet's own directory; drop -broker-dir/-to-dir")
		}
		if *to <= 0 {
			return fmt.Errorf("rebalance requires a positive -to partition count")
		}
		rep, err := liveRebalanceRequest(*addr, *to, *timeout)
		if err != nil {
			return err
		}
		printRebalanceReport(rep, *quiet)
		return nil
	}

	if *brokerDir == "" {
		return fmt.Errorf("rebalance requires -broker-dir (or -live -addr against a serving fleet)")
	}
	if *from <= 0 || *to <= 0 {
		return fmt.Errorf("rebalance requires positive -from and -to partition counts")
	}
	rep, err := shard.RebalanceGroup(*brokerDir, *toDir, *from, *to, *group)
	if err != nil {
		return err
	}
	printRebalanceReport(rep, *quiet)
	return nil
}

// liveRebalanceRequest asks the serving fleet at addr to grow to `to`
// partitions and waits for the cutover to complete, polling the
// versioned status endpoint for progress while the call is in flight.
func liveRebalanceRequest(addr string, to int, timeout time.Duration) (*shard.RebalanceReport, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("rebalance -addr %q: %w", addr, err)
	}
	u.Path = httpapi.Prefix + "/rebalance"
	u.RawQuery = "to=" + strconv.Itoa(to)
	client := &http.Client{Timeout: timeout}

	done := make(chan struct{})
	go pollRebalanceProgress(addr, done)
	resp, err := client.Post(u.String(), "text/plain", nil)
	close(done)
	if err != nil {
		return nil, fmt.Errorf("reaching the serving fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if d := httpapi.DecodeDetail(body); d != nil {
			return nil, fmt.Errorf("serving fleet refused the rebalance (%s) [%s]: %s", resp.Status, d.Code, d.Message)
		}
		return nil, fmt.Errorf("serving fleet refused the rebalance (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var rep shard.RebalanceReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parsing rebalance report: %w", err)
	}
	return &rep, nil
}

// pollRebalanceProgress GETs /admin/v1/status every half second until
// done closes, printing the live-cutover phase when it changes. The
// status shapes of serve mode, a fleet node, and the front router all
// decode into the common subset below.
func pollRebalanceProgress(addr string, done <-chan struct{}) {
	var last string
	client := &http.Client{Timeout: 2 * time.Second}
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		resp, err := client.Get(addr + httpapi.Prefix + "/status")
		if err != nil {
			continue
		}
		var st struct {
			Cutover *struct {
				From      int `json:"from"`
				To        int `json:"to"`
				Pending   int `json:"pending"`
				Committed int `json:"committed"`
				Released  int `json:"released"`
			} `json:"cutover"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
		resp.Body.Close()
		if err != nil || st.Cutover == nil {
			continue
		}
		c := st.Cutover
		line := fmt.Sprintf("cutover %d -> %d: %d pending, %d committed, %d released",
			c.From, c.To, c.Pending, c.Committed, c.Released)
		if line != last {
			fmt.Println(line)
			last = line
		}
	}
}

// printRebalanceReport renders the summary line both modes share.
func printRebalanceReport(rep *shard.RebalanceReport, quiet bool) {
	if quiet {
		return
	}
	if rep.AlreadyBalanced {
		fmt.Printf("layout in %s already at %d partitions; nothing moved\n", rep.Dir, rep.To)
		return
	}
	perKey := "-"
	if rep.MovedKeys > 0 {
		perKey = fmt.Sprintf("%.0fµs/key", float64(rep.Duration.Microseconds())/float64(rep.MovedKeys))
	}
	fmt.Printf("rebalanced %d -> %d partitions in %s: moved %d keys (%d tail lines) in %v (%s)\n",
		rep.From, rep.To, rep.Dir, rep.MovedKeys, rep.MovedLines, rep.Duration, perKey)
}
