package main

import (
	"flag"
	"fmt"

	"logsynergy/internal/shard"
)

// runRebalance re-partitions a quiesced sharded broker directory from N
// to M shards, moving each relocated key's window tail, template groups
// and pattern-library verdicts to its new partition:
//
//	logsynergy rebalance -from 3 -to 4 -broker-dir /var/lib/logsynergy
//
// The detector must be stopped (WAL fully drained and committed) —
// rebalance refuses an unquiesced layout. With -to-dir the rebalanced
// layout is written to a fresh directory and the original is kept as a
// rollback; without it the layout is rewritten in place (crash-safe: an
// interrupted run is rolled forward or back on the next open).
func runRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	from := fs.Int("from", 0, "current partition count")
	to := fs.Int("to", 0, "target partition count")
	brokerDir := fs.String("broker-dir", "", "WAL directory holding the current layout (the shard runtime root)")
	toDir := fs.String("to-dir", "", "write the rebalanced layout here instead of in place (keeps -broker-dir as rollback)")
	group := fs.String("group", "detector", "broker consumer group checked for quiescence")
	quiet := fs.Bool("quiet", false, "suppress the summary line")
	fs.Parse(args)
	if *brokerDir == "" {
		return fmt.Errorf("rebalance requires -broker-dir")
	}
	if *from <= 0 || *to <= 0 {
		return fmt.Errorf("rebalance requires positive -from and -to partition counts")
	}

	rep, err := shard.RebalanceGroup(*brokerDir, *toDir, *from, *to, *group)
	if err != nil {
		return err
	}
	if *quiet {
		return nil
	}
	if rep.AlreadyBalanced {
		fmt.Printf("layout in %s already at %d partitions; nothing moved\n", rep.Dir, rep.To)
		return nil
	}
	perKey := "-"
	if rep.MovedKeys > 0 {
		perKey = fmt.Sprintf("%.0fµs/key", float64(rep.Duration.Microseconds())/float64(rep.MovedKeys))
	}
	fmt.Printf("rebalanced %d -> %d partitions in %s: moved %d keys (%d tail lines) in %v (%s)\n",
		rep.From, rep.To, rep.Dir, rep.MovedKeys, rep.MovedLines, rep.Duration, perKey)
	return nil
}
