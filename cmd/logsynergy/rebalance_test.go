package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRebalanceFlagValidation(t *testing.T) {
	if err := runRebalance([]string{"-from", "2", "-to", "3"}); err == nil {
		t.Fatal("missing -broker-dir accepted")
	}
	dir := t.TempDir()
	if err := runRebalance([]string{"-broker-dir", dir, "-to", "3"}); err == nil {
		t.Fatal("missing -from accepted")
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "2"}); err == nil {
		t.Fatal("missing -to accepted")
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "2", "-to", "2"}); err == nil {
		t.Fatal("from == to accepted")
	}
}

func TestRunRebalanceEmptyLayout(t *testing.T) {
	// An empty root (no partitions have run yet) rebalances trivially:
	// fresh stamped states appear for the target layout and a re-run is
	// a no-op.
	dir := t.TempDir()
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "1", "-to", "2", "-quiet"}); err != nil {
		t.Fatalf("runRebalance: %v", err)
	}
	for _, p := range []string{"p0", "p1"} {
		if _, err := os.Stat(filepath.Join(dir, p, "shard-state.json")); err != nil {
			t.Fatalf("partition %s has no stamped state: %v", p, err)
		}
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "1", "-to", "2", "-quiet"}); err != nil {
		t.Fatalf("re-run over the installed layout: %v", err)
	}
}
