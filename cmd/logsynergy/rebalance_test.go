package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/shard"
	"logsynergy/internal/tensor"
)

func TestRunRebalanceFlagValidation(t *testing.T) {
	if err := runRebalance([]string{"-from", "2", "-to", "3"}); err == nil {
		t.Fatal("missing -broker-dir accepted")
	}
	dir := t.TempDir()
	if err := runRebalance([]string{"-broker-dir", dir, "-to", "3"}); err == nil {
		t.Fatal("missing -from accepted")
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "2"}); err == nil {
		t.Fatal("missing -to accepted")
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "2", "-to", "2"}); err == nil {
		t.Fatal("from == to accepted")
	}
}

// Live mode has its own preconditions: it needs an -addr to talk to, a
// positive target, no offline directory flags — and, at runtime, a
// fleet that is actually serving at that address.
func TestRunRebalanceLiveFlagValidation(t *testing.T) {
	if err := runRebalance([]string{"-live", "-to", "3"}); err == nil {
		t.Fatal("-live without -addr accepted")
	} else if !strings.Contains(err.Error(), "-addr") {
		t.Fatalf("-live without -addr: error %q does not point at -addr", err)
	}
	if err := runRebalance([]string{"-live", "-addr", "127.0.0.1:1", "-broker-dir", t.TempDir(), "-to", "3"}); err == nil {
		t.Fatal("-live with -broker-dir accepted")
	}
	if err := runRebalance([]string{"-live", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("-live without -to accepted")
	}

	// A syntactically valid -addr with no serving fleet behind it must
	// fail with a reachability error, not hang: grab a free port and
	// close it again so the connection is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vacant := ln.Addr().String()
	ln.Close()
	if err := runRebalance([]string{"-live", "-addr", vacant, "-to", "3", "-timeout", "5s"}); err == nil {
		t.Fatal("-live against a vacated port accepted")
	} else if !strings.Contains(err.Error(), "reaching the serving fleet") {
		t.Fatalf("vacant port: error %q is not a reachability error", err)
	}
}

// openServeFleet builds a small serving fleet the way `logsynergy serve
// -shards N` does and exposes it over the real admin mux.
func openServeFleet(t *testing.T, shards int) (*shard.Runtime, *httptest.Server) {
	t.Helper()
	ccfg := core.DefaultConfig()
	det := core.NewDetector(core.NewModel(ccfg, 2),
		&repr.EventTable{System: "SystemX", Dim: ccfg.EmbedDim, Vectors: tensor.New(0, ccfg.EmbedDim)})
	rt, err := shard.Open(shard.Config{
		Shards:   shards,
		Dir:      t.TempDir(),
		Detector: det,
		Interp:   lei.NewSimLLM(lei.Config{}),
		Embedder: embed.New(ccfg.EmbedDim),
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	srv := httptest.NewServer(newShardServeMux(rt, 0))
	t.Cleanup(srv.Close)
	return rt, srv
}

// TestRunRebalanceLiveEndToEnd drives the full client path: the CLI
// POSTs to a serving fleet's /admin/rebalance, the fleet grows 2→3
// under its live-cutover protocol, and the call returns only once the
// new layout is serving.
func TestRunRebalanceLiveEndToEnd(t *testing.T) {
	rt, srv := openServeFleet(t, 2)

	// Put a few keys through so the cutover has tails to move.
	if _, err := rt.AppendBatch([]string{
		"sys1 boot sequence start", "sys2 boot sequence start",
		"sys3 boot sequence start", "sys4 boot sequence start",
	}); err != nil {
		t.Fatal(err)
	}

	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := runRebalance([]string{"-live", "-addr", addr, "-to", "3", "-quiet"}); err != nil {
		t.Fatalf("live rebalance through the CLI: %v", err)
	}
	if got := rt.Shards(); got != 3 {
		t.Fatalf("fleet serves %d partitions after live rebalance, want 3", got)
	}

	// Growing again to the same count is a no-op the CLI reports
	// without erroring.
	if err := runRebalance([]string{"-live", "-addr", addr, "-to", "3", "-quiet"}); err != nil {
		t.Fatalf("no-op live rebalance: %v", err)
	}
}

// TestAdminRebalanceHandler checks the server half of the protocol
// directly: method and parameter validation, refusal surfacing, and the
// JSON report on success.
func TestAdminRebalanceHandler(t *testing.T) {
	rt, srv := openServeFleet(t, 2)

	resp, err := http.Get(srv.URL + "/admin/rebalance?to=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	for _, q := range []string{"", "?to=0", "?to=x"} {
		resp, err = http.Post(srv.URL+"/admin/rebalance"+q, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q status %d, want 400", q, resp.StatusCode)
		}
	}

	// Shrinking live is refused by the runtime; the handler surfaces
	// that as a conflict rather than a success.
	resp, err = http.Post(srv.URL+"/admin/rebalance?to=1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("live shrink status %d, want 409", resp.StatusCode)
	}

	rep, err := liveRebalanceRequest(strings.TrimPrefix(srv.URL, "http://"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 2 || rep.To != 3 {
		t.Fatalf("report %+v, want 2 -> 3", rep)
	}
	if got := rt.Shards(); got != 3 {
		t.Fatalf("fleet serves %d partitions, want 3", got)
	}
}

func TestRunRebalanceEmptyLayout(t *testing.T) {
	// An empty root (no partitions have run yet) rebalances trivially:
	// fresh stamped states appear for the target layout and a re-run is
	// a no-op.
	dir := t.TempDir()
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "1", "-to", "2", "-quiet"}); err != nil {
		t.Fatalf("runRebalance: %v", err)
	}
	for _, p := range []string{"p0", "p1"} {
		if _, err := os.Stat(filepath.Join(dir, p, "shard-state.json")); err != nil {
			t.Fatalf("partition %s has no stamped state: %v", p, err)
		}
	}
	if err := runRebalance([]string{"-broker-dir", dir, "-from", "1", "-to", "2", "-quiet"}); err != nil {
		t.Fatalf("re-run over the installed layout: %v", err)
	}
}
