package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logsynergy/internal/cluster"
	"logsynergy/internal/fault"
	"logsynergy/internal/shard"
)

// clusterServeOptions carries the flag-derived settings into the cluster
// node serve loop.
type clusterServeOptions struct {
	manifestPath  string
	nodeName      string
	watchEvery    time.Duration
	runtime       shard.Config
	addr          string
	maxBatchBytes int64
	linger        time.Duration
}

// runServeCluster is serve's fleet mode: this process is one node of a
// cross-process shard fleet. The manifest at -cluster says which
// partitions this node owns; only their WAL directories are opened, and
// the node serves /ingest, /healthz, /metrics, /metrics.json and
// /admin/refresh for the front router. With -manifest-watch the node
// also polls the manifest, adopting partitions a newer epoch assigns to
// it (the failover path, if the router's /admin/refresh poke was lost)
// and dropping ones assigned elsewhere (the self-fence for a node that
// was deposed while wedged).
func runServeCluster(opts clusterServeOptions) error {
	n, err := cluster.StartNode(cluster.NodeConfig{
		ManifestPath:  opts.manifestPath,
		Name:          opts.nodeName,
		Runtime:       opts.runtime,
		MaxBatchBytes: opts.maxBatchBytes,
	})
	if err != nil {
		return err
	}
	owned := n.Runtime().Owned()
	fmt.Printf("cluster node %q: epoch %d, serving %d/%d partitions %v\n",
		n.Name(), n.Epoch(), len(owned), n.Manifest().Shards, owned)

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		n.Close()
		return err
	}
	srv := &http.Server{Handler: n.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("node surface on http://%s (/ingest /healthz /metrics /metrics.json /admin/v1/*)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.watchEvery > 0 {
		go func() {
			t := time.NewTicker(opts.watchEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rep, err := n.Refresh()
					if err != nil {
						fmt.Printf("cluster: manifest refresh: %v\n", err)
					} else if len(rep.Adopted) > 0 || len(rep.Dropped) > 0 {
						fmt.Printf("cluster: epoch %d adopted partitions %v, dropped %v\n", rep.Epoch, rep.Adopted, rep.Dropped)
					}
				}
			}
		}()
	}

	<-ctx.Done()
	stop()
	fmt.Println("\nshutting down: intake closed, draining owned partitions (signal again to kill)")
	closeErr := n.Close()

	rt := n.Runtime()
	stats := rt.Stats()
	fmt.Printf("node %q: lines=%d sequences=%d anomalies=%d new-events=%d\n",
		n.Name(), stats.LinesCollected, stats.SequencesFormed, stats.Anomalies, stats.NewEvents)
	for _, i := range rt.Owned() {
		s := rt.ShardStats(i)
		fmt.Printf("partition %d: lines=%d sequences=%d anomalies=%d committed=%d\n",
			i, s.LinesCollected, s.SequencesFormed, s.Anomalies, rt.Committed(i))
	}
	if closeErr != nil {
		fmt.Printf("cluster node close: %v\n", closeErr)
	}
	fmt.Println("final metrics snapshot:")
	rt.Snapshot().WriteText(os.Stdout)

	if opts.linger > 0 {
		fmt.Printf("stream ended; serving metrics for %s more\n", opts.linger)
		time.Sleep(opts.linger)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}

// runRoute is the front router process: the fleet's single intake
// address. It consistent-hash routes POST /ingest batches to the owning
// nodes, probes /healthz on a cadence, and (with -failover) reassigns a
// dead node's partitions to a standby via an epoch-bumped manifest.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	manifestPath := fs.String("cluster", "cluster.json", "cluster assignment manifest")
	addr := fs.String("addr", "localhost:9095", "HTTP listen address for /ingest, /healthz, /metrics")
	probeEvery := fs.Duration("probe-every", time.Second, "node /healthz probe + manifest reload cadence (0 disables both)")
	failAfter := fs.Int("fail-after", 3, "consecutive probe/ingest failures that mark a node dead")
	failover := fs.Bool("failover", false, "on node death, reassign its partitions to a standby (requires shared storage)")
	maxInFlight := fs.Int("max-inflight", 64, "bound on concurrent node requests (router backpressure)")
	maxBatchBytes := fs.Int64("max-batch-bytes", 0, "one /ingest request body limit in bytes (0 = broker default)")
	attempts := fs.Int("attempts", 3, "delivery attempts per node share before its lines are rejected")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second, "one node /ingest round-trip bound")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "one node /healthz or /metrics.json round-trip bound")
	seed := fs.Int64("seed", 1, "retry-jitter seed")
	linger := fs.Duration("linger", 0, "keep serving after shutdown signal this long")
	fs.Parse(args)

	r, err := cluster.NewRouter(cluster.RouterConfig{
		ManifestPath:   *manifestPath,
		MaxBatchBytes:  *maxBatchBytes,
		MaxInFlight:    *maxInFlight,
		Attempts:       *attempts,
		Backoff:        fault.Backoff{Seed: *seed, Jitter: 0.5},
		FailAfter:      *failAfter,
		Failover:       *failover,
		RequestTimeout: *requestTimeout,
		ProbeTimeout:   *probeTimeout,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	m := r.Manifest()
	fmt.Printf("router: epoch %d, %d partitions across %d nodes (failover=%v)\n",
		m.Epoch, m.Shards, len(m.Nodes), *failover)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("routing intake on http://%s/ingest (federated metrics on /metrics, admin on /admin/v1/*)\n", ln.Addr())

	if *probeEvery > 0 {
		r.StartProbing(*probeEvery)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("\nrouter shutting down")
	if *linger > 0 {
		time.Sleep(*linger)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}
