package main

import (
	"os"
	"path/filepath"
	"testing"

	"logsynergy/internal/tensor"
)

func TestApplyThreadsEnv(t *testing.T) {
	orig := tensor.Parallelism()
	defer tensor.SetParallelism(orig)

	if err := applyThreadsEnv(""); err != nil {
		t.Fatalf("empty value must be a no-op, got %v", err)
	}
	if err := applyThreadsEnv(" 3 "); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}
	if got := tensor.Parallelism(); got != 3 {
		t.Fatalf("parallelism %d after LOGSYNERGY_THREADS=3", got)
	}
	for _, bad := range []string{"0", "-2", "four", "1.5"} {
		if err := applyThreadsEnv(bad); err == nil {
			t.Fatalf("%q must be rejected", bad)
		}
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadLines(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "x.log", "a\nb\nc\n")
	lines, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[1] != "b" {
		t.Fatalf("got %v", lines)
	}
	if _, err := readLines(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadLabeledFile(t *testing.T) {
	dir := t.TempDir()
	var logs, labels string
	for i := 0; i < 30; i++ {
		if i == 13 {
			logs += "kernel panic in module alpha code 7\n"
			labels += "1\n"
		} else {
			logs += "service heartbeat ok seq 42\n"
			labels += "0\n"
		}
	}
	logPath := writeFile(t, dir, "sys.log", logs)
	labPath := writeFile(t, dir, "sys.lab", labels)

	seqs, err := loadLabeledFile(logPath, labPath, "sys")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs.Samples) == 0 {
		t.Fatal("no sequences")
	}
	anomalous := 0
	for _, s := range seqs.Samples {
		if s.Label {
			anomalous++
		}
	}
	// Line 13 falls into windows starting at 5 and 10 (length 10, step 5).
	if anomalous != 2 {
		t.Fatalf("want 2 anomalous windows, got %d", anomalous)
	}
}

func TestLoadLabeledFileMismatch(t *testing.T) {
	dir := t.TempDir()
	logPath := writeFile(t, dir, "a.log", "x\ny\n")
	labPath := writeFile(t, dir, "a.lab", "0\n")
	if _, err := loadLabeledFile(logPath, labPath, "sys"); err == nil {
		t.Fatal("length mismatch must error")
	}
}
