// Command logsynergy is the end-to-end CLI: train a cross-system anomaly
// detection model, run online detection over a log stream, or inspect LEI
// interpretations.
//
// Train on synthetic corpora (names from `loggen -list`) or on raw log
// files with 0/1 label sidecars:
//
//	logsynergy train -target Thunderbird -sources BGL,Spirit -out model.json
//	logsynergy train -target-log new.log -target-labels new.lab \
//	    -source-log a.log -source-labels a.lab -out model.json
//
// Detect over a log file (or stdin) with a trained bundle:
//
//	logsynergy detect -model model.json -log stream.log
//
// Interpret templates with the LEI stage:
//
//	logsynergy interpret -hint "an HPC system" < templates.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/metrics"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

func main() {
	if err := applyThreadsEnv(os.Getenv("LOGSYNERGY_THREADS")); err != nil {
		fmt.Fprintf(os.Stderr, "logsynergy: %v\n", err)
		os.Exit(2)
	}
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "detect":
		err = runDetect(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "rebalance":
		err = runRebalance(os.Args[2:])
	case "route":
		err = runRoute(os.Args[2:])
	case "interpret":
		err = runInterpret(os.Args[2:])
	case "eval":
		err = runEval(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "logsynergy: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: logsynergy <train|detect|serve|route|rebalance|eval|interpret> [flags]")
}

// applyThreadsEnv configures the tensor worker pool from the
// LOGSYNERGY_THREADS environment variable ("" = leave the GOMAXPROCS
// default; any positive integer pins the worker count; 1 disables
// parallel kernels entirely).
func applyThreadsEnv(val string) error {
	val = strings.TrimSpace(val)
	if val == "" {
		return nil
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return fmt.Errorf("LOGSYNERGY_THREADS=%q: want a positive integer", val)
	}
	tensor.SetParallelism(n)
	return nil
}

// runEval scores a labeled log file with a trained bundle and reports the
// paper's precision/recall/F1 at threshold 0.5.
func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model bundle")
	logPath := fs.String("log", "", "labeled log file")
	labelPath := fs.String("labels", "", "label sidecar (0/1 per line)")
	fs.Parse(args)
	if *logPath == "" || *labelPath == "" {
		return fmt.Errorf("eval requires -log and -labels")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	det, err := core.LoadBundle(f)
	f.Close()
	if err != nil {
		return err
	}

	seqs, err := loadLabeledFile(*logPath, *labelPath, "eval")
	if err != nil {
		return err
	}
	// Build the evaluation set against the bundle's embedding space: new
	// templates are interpreted and embedded exactly as online detection
	// would.
	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(det.Table.Dim)
	table := repr.BuildEventTable(seqs, interp, embedder)
	d := repr.BuildDataset(seqs, table)
	scores := det.Model.Score(d.X, 256)
	res := metrics.Evaluate(scores, d.Labels, core.Threshold)
	fmt.Printf("sequences=%d anomalous=%d\n", d.Len(), countTrue(d.Labels))
	fmt.Printf("precision=%.2f%% recall=%.2f%% f1=%.2f%%\n",
		100*res.Precision, 100*res.Recall, 100*res.F1)
	return nil
}

func countTrue(labels []bool) int {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return n
}

// loadLabeledFile parses a raw log file plus its 0/1 label sidecar into
// windowed sequences.
func loadLabeledFile(logPath, labelPath, name string) (*logdata.Sequences, error) {
	logs, err := readLines(logPath)
	if err != nil {
		return nil, err
	}
	labelLines, err := readLines(labelPath)
	if err != nil {
		return nil, err
	}
	if len(labelLines) != len(logs) {
		return nil, fmt.Errorf("%s: %d labels for %d log lines", labelPath, len(labelLines), len(logs))
	}
	parser := drain.NewDefault()
	parsed := &logdata.Parsed{System: name}
	for i, line := range logs {
		m := parser.Parse(line)
		parsed.EventIDs = append(parsed.EventIDs, m.EventID)
		parsed.Labels = append(parsed.Labels, strings.TrimSpace(labelLines[i]) == "1")
		parsed.Concepts = append(parsed.Concepts, "")
	}
	for _, ev := range parser.Events() {
		parsed.Templates = append(parsed.Templates, ev.Template)
	}
	return parsed.Windows(window.Default()), nil
}

func readAllStdin() ([]string, error) {
	var out []string
	s := bufio.NewScanner(os.Stdin)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	for s.Scan() {
		out = append(out, s.Text())
	}
	return out, s.Err()
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	s := bufio.NewScanner(f)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	for s.Scan() {
		out = append(out, s.Text())
	}
	return out, s.Err()
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	target := fs.String("target", "", "synthetic target system name")
	sources := fs.String("sources", "", "comma-separated synthetic source system names")
	targetLog := fs.String("target-log", "", "raw target log file")
	targetLabels := fs.String("target-labels", "", "target label sidecar (0/1 per line)")
	sourceLogs := fs.String("source-log", "", "comma-separated raw source log files")
	sourceLabels := fs.String("source-labels", "", "comma-separated source label sidecars")
	out := fs.String("out", "model.json", "output model bundle")
	ns := fs.Int("ns", 4000, "training sequences per source")
	nt := fs.Int("nt", 400, "training sequences from the target")
	embedDim := fs.Int("embed-dim", 32, "event embedding dimension")
	epochs := fs.Int("epochs", 8, "training epochs")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	fs.Parse(args)

	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(*embedDim)

	var sourceSeqs []*logdata.Sequences
	var targetSeqs *logdata.Sequences

	switch {
	case *target != "" && *sources != "":
		systems := logdata.Systems()
		for _, name := range strings.Split(*sources, ",") {
			spec, ok := systems[name]
			if !ok {
				return fmt.Errorf("unknown source system %q", name)
			}
			lines := (*ns-1)*5 + 11
			sourceSeqs = append(sourceSeqs, logdata.Build(spec, 7, float64(lines)/float64(spec.Lines), window.Default()).Head(*ns))
		}
		spec, ok := systems[*target]
		if !ok {
			return fmt.Errorf("unknown target system %q", *target)
		}
		lines := (*nt-1)*5 + 11
		targetSeqs = logdata.Build(spec, 11, float64(lines)/float64(spec.Lines), window.Default()).Head(*nt)
	case *targetLog != "" && *targetLabels != "":
		var err error
		targetSeqs, err = loadLabeledFile(*targetLog, *targetLabels, "target")
		if err != nil {
			return err
		}
		targetSeqs = targetSeqs.Head(*nt)
		logs := strings.Split(*sourceLogs, ",")
		labs := strings.Split(*sourceLabels, ",")
		if *sourceLogs == "" || len(logs) != len(labs) {
			return fmt.Errorf("need matching -source-log and -source-labels lists")
		}
		for i := range logs {
			s, err := loadLabeledFile(logs[i], labs[i], fmt.Sprintf("source%d", i))
			if err != nil {
				return err
			}
			sourceSeqs = append(sourceSeqs, s.Head(*ns))
		}
	default:
		return fmt.Errorf("specify either -target/-sources or -target-log/-target-labels")
	}

	cfg := core.DefaultConfig()
	cfg.EmbedDim = *embedDim
	cfg.Epochs = *epochs
	cfg.Quiet = *quiet

	var sourceDatasets []*repr.Dataset
	for _, s := range sourceSeqs {
		sourceDatasets = append(sourceDatasets, repr.Build(s, interp, embedder))
	}
	table := repr.BuildEventTable(targetSeqs, interp, embedder)
	train := repr.BuildDataset(targetSeqs, table)

	if !*quiet {
		fmt.Printf("training on %d sources (%d seqs each) + target %s (%d seqs, %.2f%% anomalous)\n",
			len(sourceDatasets), *ns, targetSeqs.System, train.Len(), 100*train.PositiveRate())
	}
	model := core.TrainModel(cfg, sourceDatasets, train)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.SaveBundle(f, model, table); err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("model bundle written to %s\n", *out)
	}
	return nil
}

func runDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model bundle")
	logPath := fs.String("log", "", "log file to stream (default stdin)")
	hint := fs.String("hint", "a software system", "LEI system hint for new templates")
	statsOnly := fs.Bool("stats", false, "print only pipeline statistics")
	fs.Parse(args)

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	det, err := core.LoadBundle(f)
	f.Close()
	if err != nil {
		return err
	}

	var lines []string
	if *logPath != "" {
		lines, err = readLines(*logPath)
		if err != nil {
			return err
		}
	} else {
		lines, err = readAllStdin()
		if err != nil {
			return err
		}
	}

	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(det.Table.Dim)
	parser := drain.NewDefault()
	// Re-seed the parser with the known templates so online event ids
	// align with the bundled table.
	for _, in := range det.Table.Interps {
		parser.Parse(in.Template)
	}

	var sinks []pipeline.Sink
	printSink := &printingSink{quiet: *statsOnly}
	sinks = append(sinks, printSink)
	p := pipeline.New(pipeline.DefaultConfig(*hint), parser, det, interp, embedder, sinks...)
	stats := p.Run(context.Background(), pipeline.NewSliceSource(lines))
	fmt.Printf("lines=%d sequences=%d anomalies=%d pattern-hits=%d new-events=%d\n",
		stats.LinesCollected, stats.SequencesFormed, stats.Anomalies, stats.PatternHits, stats.NewEvents)
	return nil
}

// printingSink writes each report to stdout.
type printingSink struct{ quiet bool }

func (s *printingSink) Notify(r *core.Report) {
	if !s.quiet {
		fmt.Print(r.String())
	}
}

func runInterpret(args []string) error {
	fs := flag.NewFlagSet("interpret", flag.ExitOnError)
	hint := fs.String("hint", "a software system", "system description for the prompt")
	halluc := fs.Float64("hallucination", 0, "simulated hallucination rate")
	review := fs.Bool("review", true, "run the operator format review with regeneration")
	fs.Parse(args)

	m := lei.NewSimLLM(lei.Config{HallucinationRate: *halluc, Seed: 1})
	r := lei.NewReviewer()
	s := bufio.NewScanner(os.Stdin)
	s.Buffer(make([]byte, 1<<20), 1<<20)
	for s.Scan() {
		tpl := s.Text()
		if strings.TrimSpace(tpl) == "" {
			continue
		}
		if *review {
			oc := r.Process(m, *hint, tpl)
			fmt.Printf("%s\n  -> %s (recognized=%v attempts=%d)\n", tpl, oc.Final.Text, oc.Final.Recognized, oc.Attempts)
		} else {
			in := m.Interpret(*hint, tpl)
			fmt.Printf("%s\n  -> %s (recognized=%v hallucinated=%v)\n", tpl, in.Text, in.Recognized, in.Hallucinated)
		}
	}
	return s.Err()
}
