package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/shard"
	"logsynergy/internal/tensor"
)

func TestObsMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.test_total").Add(3)
	srv := httptest.NewServer(newObsMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "counter serve.test_total 3") {
		t.Fatalf("/metrics code=%d body=%q", code, body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars code=%d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
}

func TestParseDropPolicy(t *testing.T) {
	if p, err := parseDropPolicy("block"); err != nil || p != pipeline.DropBlock {
		t.Fatalf("block: %v %v", p, err)
	}
	if p, err := parseDropPolicy("drop-newest"); err != nil || p != pipeline.DropNewest {
		t.Fatalf("drop-newest: %v %v", p, err)
	}
	if _, err := parseDropPolicy("nonsense"); err == nil {
		t.Fatal("invalid policy must be rejected")
	}
}

func TestRepeatSource(t *testing.T) {
	src := newRepeatSource([]string{"a", "b"}, 3)
	var got []string
	for {
		l, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, l)
	}
	if len(got) != 6 || got[0] != "a" || got[5] != "b" {
		t.Fatalf("3x replay of 2 lines gave %v", got)
	}

	if _, ok := newRepeatSource(nil, 0).Next(); ok {
		t.Fatal("empty source must be exhausted even when looping forever")
	}

	forever := newRepeatSource([]string{"x"}, 0)
	for i := 0; i < 100; i++ {
		if l, ok := forever.Next(); !ok || l != "x" {
			t.Fatalf("forever source ended at %d", i)
		}
	}
}

func TestRuleListFlag(t *testing.T) {
	var l ruleList
	if err := l.Set("pipeline.sink"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("pipeline.interpret:every=3,limit=10"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("no-such-syntax:every=x"); err == nil {
		t.Fatal("bad rule spec must be rejected")
	}
	if len(l.rules) != 2 || l.rules[1].Every != 3 || l.rules[1].Limit != 10 {
		t.Fatalf("parsed rules %+v", l.rules)
	}
	if got := l.String(); got != "pipeline.sink;pipeline.interpret:every=3,limit=10" {
		t.Fatalf("String() = %q", got)
	}
}

// TestServeMuxIngest exercises the serve wiring of the broker intake:
// the same mux that serves /metrics accepts durable batches on /ingest,
// bounds them (413), and surfaces broker backpressure (429).
func TestServeMuxIngest(t *testing.T) {
	reg := obs.NewRegistry()
	bk, err := broker.Open(broker.Config{
		Dir:             t.TempDir(),
		Fsync:           broker.FsyncNever,
		MaxBacklogBytes: 256,
		FullPolicy:      broker.FullReject,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()

	srv := httptest.NewServer(newServeMux(reg, bk, 128))
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/ingest", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Happy path: 202 with the acked count and offset range.
	resp := post("one\ntwo\nthree\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var ir broker.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Acked != 3 || ir.FirstOffset != 1 || ir.LastOffset != 3 {
		t.Fatalf("ingest response %+v", ir)
	}
	if got := bk.NextOffset(); got != 4 {
		t.Fatalf("NextOffset %d after ingest", got)
	}

	// Oversized batch: 413, nothing appended.
	resp = post(strings.Repeat("x", 300))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status %d, want 413", resp.StatusCode)
	}
	if got := bk.NextOffset(); got != 4 {
		t.Fatalf("oversized batch appended (NextOffset %d)", got)
	}

	// Fill the backlog past its bound: reject policy answers 429.
	for {
		resp = post(strings.Repeat("y", 100) + "\n")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			break
		}
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The obs surface sees the broker counters through the same mux.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "broker.ingest_requests_total") ||
		!strings.Contains(string(body), "broker.rejected_appends_total") {
		t.Fatalf("/metrics missing broker counters:\n%s", body)
	}
}

// TestServeMuxWithoutBroker: direct mode leaves /ingest unrouted.
func TestServeMuxWithoutBroker(t *testing.T) {
	srv := httptest.NewServer(newServeMux(obs.NewRegistry(), nil, 0))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest", "text/plain", strings.NewReader("x\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 without a broker", resp.StatusCode)
	}
}

// TestShardServeMux exercises the sharded serve wiring: /ingest routes
// lines to shards by stream key and /metrics serves the fleet-merged
// snapshot with per-shard prefixed series.
func TestShardServeMux(t *testing.T) {
	ccfg := core.DefaultConfig()
	det := core.NewDetector(core.NewModel(ccfg, 2),
		&repr.EventTable{System: "SystemX", Dim: ccfg.EmbedDim, Vectors: tensor.New(0, ccfg.EmbedDim)})
	rt, err := shard.Open(shard.Config{
		Shards:   2,
		Dir:      t.TempDir(),
		Detector: det,
		Interp:   lei.NewSimLLM(lei.Config{}),
		Embedder: embed.New(ccfg.EmbedDim),
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	srv := httptest.NewServer(newShardServeMux(rt, 0))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/ingest", "text/plain",
		strings.NewReader("sysA one fine line\nsysB another fine line\n"))
	if err != nil {
		t.Fatal(err)
	}
	var ir shard.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ir.Acked != 2 || ir.Rejected != 0 {
		t.Fatalf("sharded ingest: status %d, %+v", resp.StatusCode, ir)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"shard.routed_lines_total 2",
		"gauge shard.partitions 2",
		"pipeline.lines_collected 2",
		"shard.ingest_requests_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
