package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

func TestObsMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.test_total").Add(3)
	srv := httptest.NewServer(newObsMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "counter serve.test_total 3") {
		t.Fatalf("/metrics code=%d body=%q", code, body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars code=%d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
}

func TestParseDropPolicy(t *testing.T) {
	if p, err := parseDropPolicy("block"); err != nil || p != pipeline.DropBlock {
		t.Fatalf("block: %v %v", p, err)
	}
	if p, err := parseDropPolicy("drop-newest"); err != nil || p != pipeline.DropNewest {
		t.Fatalf("drop-newest: %v %v", p, err)
	}
	if _, err := parseDropPolicy("nonsense"); err == nil {
		t.Fatal("invalid policy must be rejected")
	}
}

func TestRepeatSource(t *testing.T) {
	src := newRepeatSource([]string{"a", "b"}, 3)
	var got []string
	for {
		l, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, l)
	}
	if len(got) != 6 || got[0] != "a" || got[5] != "b" {
		t.Fatalf("3x replay of 2 lines gave %v", got)
	}

	if _, ok := newRepeatSource(nil, 0).Next(); ok {
		t.Fatal("empty source must be exhausted even when looping forever")
	}

	forever := newRepeatSource([]string{"x"}, 0)
	for i := 0; i < 100; i++ {
		if l, ok := forever.Next(); !ok || l != "x" {
			t.Fatalf("forever source ended at %d", i)
		}
	}
}

func TestRuleListFlag(t *testing.T) {
	var l ruleList
	if err := l.Set("pipeline.sink"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("pipeline.interpret:every=3,limit=10"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("no-such-syntax:every=x"); err == nil {
		t.Fatal("bad rule spec must be rejected")
	}
	if len(l.rules) != 2 || l.rules[1].Every != 3 || l.rules[1].Limit != 10 {
		t.Fatalf("parsed rules %+v", l.rules)
	}
	if got := l.String(); got != "pipeline.sink;pipeline.interpret:every=3,limit=10" {
		t.Fatalf("String() = %q", got)
	}
}
