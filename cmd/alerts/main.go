// Command alerts queries and maintains a LogSynergy alert store (the
// durable JSONL history written by the detection pipeline).
//
// Usage:
//
//	alerts -store alerts.jsonl list [-system SystemB] [-min-score 0.9] [-open] [-limit 20]
//	alerts -store alerts.jsonl ack -id 17
//	alerts -store alerts.jsonl compact [-drop-acked]
package main

import (
	"flag"
	"fmt"
	"os"

	"logsynergy/internal/alertstore"
)

func main() {
	store := flag.String("store", "alerts.jsonl", "alert store path")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: alerts -store <path> <list|ack|compact> [flags]")
		os.Exit(2)
	}

	s, err := alertstore.Open(*store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alerts: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()

	switch args[0] {
	case "list":
		fs := flag.NewFlagSet("list", flag.ExitOnError)
		system := fs.String("system", "", "filter by system")
		minScore := fs.Float64("min-score", 0, "minimum score")
		open := fs.Bool("open", false, "unacknowledged only")
		limit := fs.Int("limit", 0, "max results")
		fs.Parse(args[1:])
		recs := s.Find(alertstore.Query{
			System:             *system,
			MinScore:           *minScore,
			UnacknowledgedOnly: *open,
			Limit:              *limit,
		})
		for _, r := range recs {
			status := "open"
			if r.Acknowledged {
				status = "acked"
			}
			fmt.Printf("#%d %s score=%.3f %s [%s]\n",
				r.ID, r.Report.System, r.Report.Score,
				r.Report.Timestamp.Format("2006-01-02T15:04:05"), status)
		}
		fmt.Fprintf(os.Stderr, "%d alerts\n", len(recs))
	case "ack":
		fs := flag.NewFlagSet("ack", flag.ExitOnError)
		id := fs.Uint64("id", 0, "alert id")
		fs.Parse(args[1:])
		ok, err := s.Acknowledge(*id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alerts: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "alerts: no alert #%d\n", *id)
			os.Exit(1)
		}
		fmt.Printf("acknowledged #%d\n", *id)
	case "compact":
		fs := flag.NewFlagSet("compact", flag.ExitOnError)
		dropAcked := fs.Bool("drop-acked", false, "drop acknowledged alerts")
		fs.Parse(args[1:])
		keep := func(r alertstore.Record) bool { return true }
		if *dropAcked {
			keep = func(r alertstore.Record) bool { return !r.Acknowledged }
		}
		if err := s.Compact(keep); err != nil {
			fmt.Fprintf(os.Stderr, "alerts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("compacted: %d alerts retained\n", s.Len())
	default:
		fmt.Fprintf(os.Stderr, "alerts: unknown command %q\n", args[0])
		os.Exit(2)
	}
}
