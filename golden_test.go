package bench

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/shard"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenPath is the checked-in transcript of the fixed-seed train+detect
// run. Regenerate with: go test -run TestGoldenEndToEnd -update .
const goldenPath = "testdata/golden_e2e.txt"

// TestGoldenEndToEnd trains a small fixed-seed model, streams a fixed
// online corpus through the detection pipeline, and compares the full
// transcript — pipeline stats, every rendered anomaly report, and
// bit-exact probe scores — against the checked-in golden file. Any
// unintended change to parsing, interpretation, embedding, training,
// scoring, or report rendering shows up as a diff here.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}

	interp := lei.NewSimLLM(lei.Config{})
	e := embed.New(32)
	spec := logdata.SystemB()
	offline := logdata.Generate(spec, 1, 6000)
	parser := drain.NewDefault()
	parsed := logdata.Parse(offline, parser)
	seqs := parsed.Windows(window.Default())

	cfg := core.DefaultConfig()
	cfg.Epochs = 2
	srcSeqs := logdata.Build(logdata.SystemA(), 2, 0.002, window.Default())
	src := repr.Build(srcSeqs, interp, e)
	table := repr.BuildEventTable(seqs, interp, e)
	train := repr.BuildDataset(seqs, table)
	model := core.TrainModel(cfg, []*repr.Dataset{src}, train)

	det := core.NewDetector(model, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

	sink := &pipeline.MemorySink{}
	p := pipeline.New(pipeline.DefaultConfig("a cloud data management system (SystemB)"), parser, det, interp, e, sink)
	online := logdata.Generate(spec, 99, 3000)

	// Seed the pattern library with the stream's opening window marked
	// anomalous (operational memory of a past incident): every recurrence
	// is a library hit at score 0.95, guaranteeing the transcript pins
	// rendered anomaly reports regardless of how sharply the quick
	// 2-epoch model separates scores.
	first := make([]int, 0, p.Library().Size()+10)
	for _, msg := range online.Messages()[:10] {
		first = append(first, parser.Parse(msg).EventID)
	}
	p.Library().Store(first, 0.95)

	stats := p.Run(context.Background(), pipeline.NewSliceSource(online.Messages()))

	var b strings.Builder
	fmt.Fprintf(&b, "== stats ==\n")
	fmt.Fprintf(&b, "lines=%d sequences=%d anomalies=%d pattern-hits=%d pattern-misses=%d new-events=%d\n",
		stats.LinesCollected, stats.SequencesFormed, stats.Anomalies,
		stats.PatternHits, stats.PatternMisses, stats.NewEvents)

	fmt.Fprintf(&b, "== reports (%d) ==\n", len(sink.Reports()))
	for _, r := range sink.Reports() {
		fmt.Fprintf(&b, "score=%s\n%s", strconv.FormatFloat(r.Score, 'g', -1, 64), r.String())
	}

	// Probe scores: fixed synthetic windows scored directly through the
	// detector, recorded at full float64 precision. These pin the trained
	// weights and the scoring path bit-exactly even if the stream above
	// happens to produce few anomaly reports.
	fmt.Fprintf(&b, "== probe scores ==\n")
	n := det.Table.Len()
	probes := make([][]int, 8)
	for i := range probes {
		w := make([]int, 10)
		for j := range w {
			w[j] = (i*7 + j*3) % n
		}
		probes[i] = w
	}
	for i, s := range det.ScoreSequences(probes) {
		fmt.Fprintf(&b, "probe[%d]=%s\n", i, strconv.FormatFloat(s, 'g', -1, 64))
	}
	got := b.String()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("end-to-end output diverged from %s (run with -update if intended):\n%s",
			goldenPath, firstDiff(string(want), got))
	}
}

// goldenShardPath is the checked-in transcript of the fixed-seed sharded
// run. Regenerate with: go test -run TestGoldenShardedEndToEnd -update .
const goldenShardPath = "testdata/golden_e2e_shard.txt"

// TestGoldenShardedEndToEnd streams a fixed keyed corpus through the
// 2-shard runtime and pins the full deterministic transcript: the key →
// partition routing, fleet and per-shard stats, committed offsets, every
// per-key score at full float64 precision, the (sorted) rendered
// reports, and the shared interp-cache shape. Any unintended change to
// the partitioner, the per-partition pipelines, the commit protocol or
// the fan-in shows up as a diff here.
func TestGoldenShardedEndToEnd(t *testing.T) {
	ccfg := core.DefaultConfig()
	det := core.NewDetector(core.NewModel(ccfg, 2),
		&repr.EventTable{System: "SystemB", Dim: ccfg.EmbedDim, Vectors: tensor.New(0, ccfg.EmbedDim)})
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

	// Five stream keys multiplex one SystemB corpus; the key prefix is
	// part of each line, exactly as a collection tier would stamp it.
	online := logdata.Generate(logdata.SystemB(), 99, 1500)
	lines := make([]string, 0, 1500)
	for i, msg := range online.Messages() {
		lines = append(lines, fmt.Sprintf("src%d %s", i%5, msg))
	}

	sink := &pipeline.MemorySink{}
	var mu sync.Mutex
	scores := map[string][]float64{}
	rt, err := shard.Open(shard.Config{
		Shards:   2,
		Dir:      t.TempDir(),
		Pipeline: pipeline.DefaultConfig("a cloud data management system (SystemB)"),
		Detector: det,
		Interp:   lei.NewSimLLM(lei.Config{}),
		Embedder: embed.New(ccfg.EmbedDim),
		Sink:     sink,
		Metrics:  obs.NewRegistry(),
		OnWindow: func(shard int, key string, seq []int, score float64, abandoned bool) {
			mu.Lock()
			scores[key] = append(scores[key], score)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AppendBatch(lines); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== routing ==\n")
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s -> shard %d\n", k, rt.PartitionFor(k))
	}

	stats := rt.Stats()
	fmt.Fprintf(&b, "== fleet stats ==\n")
	fmt.Fprintf(&b, "lines=%d sequences=%d anomalies=%d pattern-hits=%d pattern-misses=%d new-events=%d\n",
		stats.LinesCollected, stats.SequencesFormed, stats.Anomalies,
		stats.PatternHits, stats.PatternMisses, stats.NewEvents)
	for i := 0; i < rt.Shards(); i++ {
		s := rt.ShardStats(i)
		fmt.Fprintf(&b, "shard %d: lines=%d sequences=%d anomalies=%d new-events=%d committed=%d\n",
			i, s.LinesCollected, s.SequencesFormed, s.Anomalies, s.NewEvents, rt.Committed(i))
	}
	_, misses, _ := rt.Cache().Stats()
	fmt.Fprintf(&b, "interp cache: entries=%d misses=%d\n", rt.Cache().Size(), misses)

	fmt.Fprintf(&b, "== scores ==\n")
	for _, k := range keys {
		for i, s := range scores[k] {
			fmt.Fprintf(&b, "%s[%d]=%s\n", k, i, strconv.FormatFloat(s, 'g', -1, 64))
		}
	}

	// The fan-in interleaving across shards is scheduling-dependent; the
	// report multiset is not. Sort the rendered reports to pin it.
	rendered := make([]string, 0, len(sink.Reports()))
	for _, r := range sink.Reports() {
		rendered = append(rendered, fmt.Sprintf("score=%s\n%s", strconv.FormatFloat(r.Score, 'g', -1, 64), r.String()))
	}
	sort.Strings(rendered)
	fmt.Fprintf(&b, "== reports (%d) ==\n", len(rendered))
	for _, r := range rendered {
		b.WriteString(r)
	}
	got := b.String()

	if *updateGolden {
		if err := os.WriteFile(goldenShardPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenShardPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenShardPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("sharded end-to-end output diverged from %s (run with -update if intended):\n%s",
			goldenShardPath, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line of two transcripts.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "<eof>", "<eof>"
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "transcripts equal?"
}
