GO ?= go

.PHONY: build test vet race bench bench-broker bench-broker-smoke chaos fuzz-smoke verify

build:
	$(GO) build ./...

# Tier-1: the fast correctness gate (ROADMAP.md).
test: build
	$(GO) test ./...

# Vet tier: static checks, fast enough to run on every verify.
vet:
	$(GO) vet ./...

# Race tier: vet + full suite under the race detector. Slower, catches
# data races in the parallel tensor runtime and batched detection paths.
# Race instrumentation is ~10x; the training-heavy packages exceed go
# test's default 10m per-package budget on small machines.
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Bench tier: serial-vs-parallel compute benchmarks (bench_test.go).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchScore|BenchmarkTrainEpoch' -benchmem .

# Broker bench tier: measures WAL append throughput/latency, consume
# throughput, and end-to-end slice-vs-broker pipeline overhead, writing
# BENCH_broker.json. The full run enforces the ≤2x e2e overhead bound;
# the smoke variant shrinks the sizes and only reports (it runs inside
# `make verify`).
bench-broker:
	BENCH_BROKER_OUT=$(CURDIR)/BENCH_broker.json $(GO) test -run TestBenchBrokerReport -count=1 -v ./internal/broker/

bench-broker-smoke:
	BENCH_BROKER_OUT=$(CURDIR)/BENCH_broker.json BENCH_BROKER_SMOKE=1 $(GO) test -run TestBenchBrokerReport -count=1 ./internal/broker/

# Chaos tier: the fault-injection framework and the deterministic chaos
# suites (seeded fault schedules, breakers, spill, leak checks; broker
# crash-recovery replay) under the race detector. Fast — it uses the
# untrained tiny deployment.
chaos:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 -run 'TestChaos|TestDrop|TestPipelineCancel' ./internal/pipeline/
	$(GO) test -race -count=1 ./internal/broker/

# Fuzz-smoke tier: a short randomized pass over the parser and window
# fuzz targets (the checked-in seed corpora always run as part of
# `make test`; this tier actually mutates).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/drain/
	$(GO) test -run '^$$' -fuzz FuzzSlide -fuzztime 10s ./internal/window/

verify: vet test chaos bench-broker-smoke race
