GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

# Tier-1: the fast correctness gate (ROADMAP.md).
test: build
	$(GO) test ./...

# Vet tier: static checks, fast enough to run on every verify.
vet:
	$(GO) vet ./...

# Race tier: vet + full suite under the race detector. Slower, catches
# data races in the parallel tensor runtime and batched detection paths.
# Race instrumentation is ~10x; the training-heavy packages exceed go
# test's default 10m per-package budget on small machines.
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Bench tier: serial-vs-parallel compute benchmarks (bench_test.go).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchScore|BenchmarkTrainEpoch' -benchmem .

verify: vet test race
