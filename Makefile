GO ?= go

.PHONY: build test vet race bench bench-broker bench-broker-smoke bench-shard bench-shard-smoke bench-cluster bench-cluster-smoke chaos cover fuzz-smoke rebalance-test live-rebalance-test cluster-test cluster-live-test api-check verify

build:
	$(GO) build ./...

# Tier-1: the fast correctness gate (ROADMAP.md).
test: build
	$(GO) test ./...

# Vet tier: static checks, fast enough to run on every verify.
vet:
	$(GO) vet ./...

# Race tier: vet + full suite under the race detector. Slower, catches
# data races in the parallel tensor runtime and batched detection paths.
# Race instrumentation is ~10x; the training-heavy packages exceed go
# test's default 10m per-package budget on small machines.
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Bench tier: serial-vs-parallel compute benchmarks (bench_test.go).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBatchScore|BenchmarkTrainEpoch' -benchmem .

# Broker bench tier: measures WAL append throughput/latency, consume
# throughput, and end-to-end slice-vs-broker pipeline overhead, writing
# BENCH_broker.json. The full run enforces the ≤2x e2e overhead bound;
# the smoke variant shrinks the sizes and only reports (it runs inside
# `make verify`).
bench-broker:
	BENCH_BROKER_OUT=$(CURDIR)/BENCH_broker.json $(GO) test -run TestBenchBrokerReport -count=1 -v ./internal/broker/

bench-broker-smoke:
	BENCH_BROKER_OUT=$(CURDIR)/BENCH_broker.json BENCH_BROKER_SMOKE=1 $(GO) test -run TestBenchBrokerReport -count=1 ./internal/broker/

# Shard bench tier: end-to-end detection throughput at 1/2/4/8 shards
# over identical fixed-seed keyed traffic, plus shared interp/embed
# cache dedup rates, writing BENCH_shard.json. The smoke variant shrinks
# the corpus and runs inside `make verify`.
bench-shard:
	BENCH_SHARD_OUT=$(CURDIR)/BENCH_shard.json $(GO) test -run TestBenchShardReport -count=1 -v ./internal/shard/

bench-shard-smoke:
	BENCH_SHARD_OUT=$(CURDIR)/BENCH_shard.json BENCH_SHARD_SMOKE=1 $(GO) test -run TestBenchShardReport -count=1 ./internal/shard/

# Rebalance tier: the N→N+1 shard-growth equivalence proof under the
# race detector — exact key handoff (window tails, template groups,
# pattern verdicts), crash injection on both sides of the commit point,
# copy-mode rollback, and the runtime's layout-stamp refusal.
rebalance-test:
	$(GO) test -race -count=1 -run 'TestRebalance|TestRuntimeRefusesLayoutMismatch' ./internal/shard/

# Live-rebalance tier: the N→N+1 growth-under-traffic proof under the
# race detector — per-key score/alert equivalence against the unsharded
# reference while traffic flows through the cutover, zero detection
# stall on non-moving keys, double-write duplicate skipping across a
# redelivery crash, and seeded crash injection at every per-key cutover
# phase (each must resume on exactly one layout per key). Includes the
# CLI/admin surface (`logsynergy rebalance -live`).
live-rebalance-test:
	$(GO) test -race -count=1 -run 'TestLiveRebalance|TestOfflineRebalanceRefusesLiveJournal' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestRunRebalanceLive|TestAdminRebalance' ./cmd/logsynergy/

# Cluster tier: the cross-process fleet proof under the race detector —
# manifest/lease fencing, subset nodes, the front router's rejected-line
# accounting and Retry-After propagation, and the headline equivalence:
# router → 2-node fleet traffic (with a mid-run node kill, health-probe
# failover to a standby, and retry of exactly the rejected lines) must
# match the single-process `-shards N` runtime bit for bit.
cluster-test:
	$(GO) test -race -count=1 ./internal/cluster/

# Cluster live-rebalance tier: networked N→N+1 growth under traffic,
# under the race detector — router → 2-node fleet grows 2→3 while
# fixed-seed traffic keeps flowing (including through a stale router's
# view), one node is killed mid-splice and resumes from the journal on
# exactly one layout per key, and the per-key score sequences and alert
# multisets stay bit-identical to the single-process `-shards 3` run.
# Also proves failover refuses to fire while a cutover is journaled,
# and pins the versioned admin surface both participants serve.
cluster-live-test:
	$(GO) test -race -count=1 -run 'TestClusterLiveRebalance|TestClusterFailoverRefusedDuringLiveCutover|TestClusterRouterAdminSurface' ./internal/cluster/

# API tier: the admin-surface contract. The script enforces that every
# non-2xx answer flows through the shared envelope helpers (no
# http.Error, no hand-rolled 4xx/5xx WriteHeader, no hand-spelled
# /admin/v1 paths); the tests pin legacy-alias byte parity and the
# envelope across 400/405/409/413/429/503.
api-check:
	sh scripts/api-check.sh
	$(GO) test -race -count=1 -run 'TestAdminVersionedAliasParity|TestAdminErrorEnvelope' ./cmd/logsynergy/

# Cluster bench tier: prices the router hop — fleet end-to-end lines/s
# through the front router versus the single-process runtime over the
# same corpus, writing BENCH_cluster.json. The full run enforces the
# ≤2x overhead bound; the smoke variant shrinks the corpus and runs
# inside `make verify`.
bench-cluster:
	BENCH_CLUSTER_OUT=$(CURDIR)/BENCH_cluster.json $(GO) test -run TestBenchClusterReport -count=1 -v ./internal/cluster/

bench-cluster-smoke:
	BENCH_CLUSTER_OUT=$(CURDIR)/BENCH_cluster.json BENCH_CLUSTER_SMOKE=1 $(GO) test -run TestBenchClusterReport -count=1 ./internal/cluster/

# Chaos tier: the fault-injection framework and the deterministic chaos
# suites (seeded fault schedules, breakers, spill, leak checks; broker
# crash-recovery replay) under the race detector. Fast — it uses the
# untrained tiny deployment.
chaos:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 -run 'TestChaos|TestDrop|TestPipelineCancel' ./internal/pipeline/
	$(GO) test -race -count=1 ./internal/broker/

# Cover tier: the full suite with coverage, a per-package summary, and
# floors on the sharded runtime and the pipeline core (their equivalence
# and chaos suites are the proofs the roadmap leans on, so their
# coverage must not rot).
cover:
	$(GO) test -count=1 -cover -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@pct=$$($(GO) tool cover -func=cover.out | awk '$$1 ~ /^logsynergy\/internal\/shard\// {gsub(/%/,"",$$3); s+=$$3; n++} END {if (n) printf "%.1f", s/n; else print "0"}'); \
	echo "internal/shard mean function coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN {exit !(p+0 >= 70)}' || { echo "FAIL: internal/shard coverage $$pct% is below the 70% floor"; exit 1; }
	@pct=$$($(GO) tool cover -func=cover.out | awk '$$1 ~ /^logsynergy\/internal\/pipeline\// {gsub(/%/,"",$$3); s+=$$3; n++} END {if (n) printf "%.1f", s/n; else print "0"}'); \
	echo "internal/pipeline mean function coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN {exit !(p+0 >= 70)}' || { echo "FAIL: internal/pipeline coverage $$pct% is below the 70% floor"; exit 1; }

# Fuzz-smoke tier: a short randomized pass over the parser and window
# fuzz targets (the checked-in seed corpora always run as part of
# `make test`; this tier actually mutates).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/drain/
	$(GO) test -run '^$$' -fuzz FuzzSlide -fuzztime 10s ./internal/window/

verify: vet test api-check chaos rebalance-test live-rebalance-test cluster-test cluster-live-test bench-broker-smoke bench-shard-smoke bench-cluster-smoke race
