// Production: the §VI deployment workflow end to end — offline training,
// then a live stream through collection → pattern-library detection →
// report routing, with workflow statistics.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"logsynergy/internal/alertstore"
	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

// smsSink mimics the paper's SMS/email alert channel.
type smsSink struct{ delivered int }

func (s *smsSink) Notify(r *core.Report) {
	s.delivered++
	if s.delivered <= 3 {
		fmt.Printf("[SMS to on-call] %s anomaly score=%.2f first-event=%q\n",
			r.System, r.Score, r.Interpretations[0])
	}
}

func main() {
	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(32)

	// ---- Offline phase (§III): train a model for SystemB. ----
	fmt.Println("offline: training the SystemB model from SystemA + SystemC history...")
	spec := logdata.SystemB()
	parser := drain.NewDefault()
	offline := logdata.Generate(spec, 1, 12000)
	parsed := logdata.Parse(offline, parser)
	targetSeqs := parsed.Windows(window.Default())
	train, _ := targetSeqs.SplitTrainTest(400)

	sources := []*repr.Dataset{
		repr.Build(logdata.Build(logdata.SystemA(), 2, 0.01, window.Default()).Head(4000), interp, embedder),
		repr.Build(logdata.Build(logdata.SystemC(), 3, 0.03, window.Default()).Head(4000), interp, embedder),
	}
	table := repr.BuildEventTable(train, interp, embedder)
	model := core.TrainModel(core.DefaultConfig(), sources, repr.BuildDataset(train, table))
	det := core.NewDetector(model, table)

	// ---- Online phase (§VI): stream fresh traffic. ----
	fmt.Println("online: streaming 20,000 fresh SystemB lines through the pipeline...")
	live := logdata.Generate(spec, 99, 20000)
	sms := &smsSink{}
	storePath := filepath.Join(os.TempDir(), "logsynergy-alerts.jsonl")
	os.Remove(storePath)
	store, err := alertstore.Open(storePath)
	if err != nil {
		fmt.Println("alert store:", err)
		return
	}
	defer store.Close()
	cfg := pipeline.DefaultConfig(repr.SystemHint("SystemB"))
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	p := pipeline.New(cfg, parser, det, interp, embedder, sms, alertstore.NewSink(store))

	start := time.Now()
	stats := p.Run(context.Background(), pipeline.NewSliceSource(live.Messages()))
	elapsed := time.Since(start)

	fmt.Printf("\nworkflow statistics (%s):\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  collected lines:        %d (%.0f lines/sec)\n",
		stats.LinesCollected, float64(stats.LinesCollected)/elapsed.Seconds())
	fmt.Printf("  sequences formed:       %d\n", stats.SequencesFormed)
	fmt.Printf("  pattern library:        %d hits / %d misses (%.1f%% hit rate, %d patterns)\n",
		stats.PatternHits, stats.PatternMisses,
		100*float64(stats.PatternHits)/float64(stats.PatternHits+stats.PatternMisses),
		p.Library().Size())
	fmt.Printf("  new templates online:   %d\n", stats.NewEvents)
	fmt.Printf("  anomaly reports sent:   %d (%d SMS delivered)\n", stats.Anomalies, sms.delivered)

	// The durable alert history supports the post-incident workflow.
	high := store.Find(alertstore.Query{MinScore: 0.9})
	fmt.Printf("  alert store:            %d records at %s (%d with score ≥ 0.9)\n",
		store.Len(), storePath, len(high))

	// The same run as the observability layer sees it — what `logsynergy
	// serve` exports at /metrics for a long-running deployment.
	fmt.Println("\n/metrics view of this run:")
	reg.WriteText(os.Stdout)
	if lat, ok := reg.Snapshot().Histograms["pipeline.detect_batch_seconds"]; ok && lat.Count > 0 {
		fmt.Printf("mean detect-batch latency: %.3fms\n", 1000*lat.Mean())
	}
}
