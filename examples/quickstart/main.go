// Quickstart: train a LogSynergy model for a brand-new system using two
// mature source systems, then detect anomalies in the new system's
// held-out log stream — the paper's headline scenario in ~60 lines.
package main

import (
	"fmt"

	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

func main() {
	// The pre-processing + interpretation + embedding stack (§III-B/C).
	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(32)

	// Mature source systems: plenty of labeled history.
	fmt.Println("building source datasets (BGL, Spirit)...")
	bgl := logdata.Build(logdata.BGL(), 1, 0.015, window.Default()).Head(4000)
	spirit := logdata.Build(logdata.Spirit(), 2, 0.0042, window.Default()).Head(4000)
	sources := []*repr.Dataset{
		repr.Build(bgl, interp, embedder),
		repr.Build(spirit, interp, embedder),
	}

	// The new system: only 400 labeled sequences are available.
	fmt.Println("building the new system's small labeled slice (Thunderbird)...")
	tb := logdata.Build(logdata.Thunderbird(), 3, 0.032, window.Default())
	train, test := tb.SplitTrainTest(400)
	table := repr.BuildEventTable(tb, interp, embedder)
	trainSet := repr.BuildDataset(train, table)
	testSet := repr.BuildDataset(test, table)

	// Offline training under the Eq. 5 objective (SUFE + DAAN).
	fmt.Println("training LogSynergy...")
	cfg := core.DefaultConfig()
	cfg.Quiet = false
	model := core.TrainModel(cfg, sources, trainSet)

	// Evaluation on the new system's future traffic.
	res := core.EvaluateDataset(model, testSet)
	fmt.Printf("\nnew-system detection: precision=%.1f%% recall=%.1f%% F1=%.1f%%\n",
		100*res.Precision, 100*res.Recall, 100*res.F1)

	// Online detection with anomaly reports (§III-E).
	det := core.NewDetector(model, table)
	shown := 0
	for i, s := range test.Samples {
		if _, rep := det.Detect(s.EventIDs); rep != nil {
			fmt.Printf("\n--- report %d (test sequence %d) ---\n%s", shown+1, i, rep.String())
			shown++
			if shown == 2 {
				break
			}
		}
	}
}
