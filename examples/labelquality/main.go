// Labelquality: the §VI-B1 annotation workflow and the §IV-E1 label-noise
// threat in action — two operators label a new system's sequences
// independently, an adjudicator resolves conflicts, and the resulting
// label quality is compared against blunt random corruption.
package main

import (
	"fmt"
	"math/rand"

	"logsynergy/internal/labeling"
	"logsynergy/internal/logdata"
	"logsynergy/internal/window"
)

func main() {
	// Ground truth: a fresh SystemC slice as it would arrive for labeling.
	seqs := logdata.Build(logdata.SystemC(), 21, 0.03, window.Default()).Head(2000)
	truth := make([]bool, len(seqs.Samples))
	anomalies := 0
	for i, s := range seqs.Samples {
		truth[i] = s.Label
		if s.Label {
			anomalies++
		}
	}
	fmt.Printf("labeling task: %d sequences, %d anomalous (%.2f%%)\n\n",
		len(truth), anomalies, 100*float64(anomalies)/float64(len(truth)))

	// The paper's workflow: two independent operators + adjudication.
	proc := labeling.DefaultProcess(7)
	final, outcomes := proc.Run(truth)
	fmt.Println("two-operator + adjudicator workflow (§VI-B1):")
	fmt.Printf("  disagreements sent to adjudicator: %d\n", labeling.Disagreements(outcomes))
	fmt.Printf("  final label error rate:            %.2f%%\n\n", 100*labeling.ErrorRate(final, truth))

	// A single operator for comparison.
	rng := rand.New(rand.NewSource(7))
	solo := make([]bool, len(truth))
	for i, tr := range truth {
		solo[i] = proc.First.Label(rng, tr)
	}
	fmt.Printf("single operator error rate:          %.2f%%\n\n", 100*labeling.ErrorRate(solo, truth))

	// The §IV-E1 threat: labels corrupted by low-quality logs.
	fmt.Println("blunt label corruption (threat study):")
	for _, rate := range []float64{0.05, 0.1, 0.2} {
		noisy := labeling.InjectNoise(rand.New(rand.NewSource(9)), truth, rate)
		fmt.Printf("  noise %.0f%% -> label error rate %.2f%%\n", 100*rate, 100*labeling.ErrorRate(noisy, truth))
	}
	fmt.Println("\nrun `go run ./cmd/experiments -id labelnoise` to measure the F1 impact.")
}
