// Crosssystem: the §V lesson-learned study in miniature — transfer
// direction matters. Rich supercomputer logs (BGL) cover the anomaly
// space of a simpler cloud cache tier (SystemB), so BGL→SystemB works;
// SystemB's narrow anomaly set cannot cover BGL, so the reverse degrades.
package main

import (
	"fmt"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/metrics"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

func transfer(source, target *logdata.SystemSpec, interp lei.Interpreter, embedder *embed.Embedder) metrics.Result {
	srcSeqs := logdata.Build(source, 1, 0.02, window.Default()).Head(4000)
	tgtAll := logdata.Build(target, 2, 0.03, window.Default())
	train, test := tgtAll.SplitTrainTest(400)

	sc := &baselines.Scenario{
		Sources:     []*logdata.Sequences{srcSeqs},
		TargetTrain: train,
		TargetTest:  test.Head(4000),
		Embedder:    embedder,
		Seed:        7,
	}

	var sources []*repr.Dataset
	for _, s := range sc.Sources {
		sources = append(sources, repr.Build(s, interp, embedder))
	}
	table := repr.BuildEventTable(sc.TargetTrain, interp, embedder)
	model := core.TrainModel(core.DefaultConfig(), sources, repr.BuildDataset(sc.TargetTrain, table))
	testSet := repr.BuildDataset(sc.TargetTest, table)
	return core.EvaluateDataset(model, testSet)
}

func main() {
	interp := lei.NewSimLLM(lei.Config{})
	embedder := embed.New(32)

	bgl, sysB := logdata.BGL(), logdata.SystemB()

	fmt.Printf("anomaly coverage: BGL covers %.0f%% of SystemB's anomaly concepts; "+
		"SystemB covers %.0f%% of BGL's\n\n",
		100*bgl.Coverage(sysB), 100*sysB.Coverage(bgl))

	fmt.Println("transfer BGL -> SystemB (rich source, simple target)...")
	fwd := transfer(bgl, sysB, interp, embedder)
	fmt.Printf("  P=%.1f%% R=%.1f%% F1=%.1f%%\n\n", 100*fwd.Precision, 100*fwd.Recall, 100*fwd.F1)

	fmt.Println("transfer SystemB -> BGL (simple source, rich target)...")
	rev := transfer(sysB, bgl, interp, embedder)
	fmt.Printf("  P=%.1f%% R=%.1f%% F1=%.1f%%\n\n", 100*rev.Precision, 100*rev.Recall, 100*rev.F1)

	if fwd.F1 > rev.F1 {
		fmt.Println("as in the paper's Fig. 6: transfer works when the source's anomaly")
		fmt.Println("knowledge covers the target's, and degrades in the reverse direction.")
	} else {
		fmt.Println("unexpected: reverse transfer outperformed forward transfer on this seed.")
	}
}
