// Interpret: walk through the LEI stage by hand — prompts, unified
// interpretations across dialects (the paper's Table I examples),
// hallucination, and the operator review workflow (§III-C, §VI-B2).
package main

import (
	"fmt"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
)

func main() {
	m := lei.NewSimLLM(lei.Config{})

	// The paper's Table I: the same two anomalous events as logged by two
	// different supercomputers, with very different syntax.
	tableI := []struct{ system, msg string }{
		{"Spirit", "Connection refused (<*>) in open_demux, open_demux: connect <*>"},
		{"BGL", "ciod: Error reading message prefix on CioStream socket to <*>: Link has been severed"},
		{"Spirit", "GM: LANAI[<*>]: PANIC: mcp/gm_parity.c:<*>: parityint():firmware"},
		{"BGL", "machine check interrupt (bit=<*>): L2 dcache unit read return parity error"},
	}

	fmt.Println("== LEI unifies the paper's Table I examples ==")
	e := embed.New(32)
	var vectors [][]float64
	for _, t := range tableI {
		in := m.Interpret("an HPC system ("+t.system+")", t.msg)
		fmt.Printf("[%s] %s\n   -> %s  (concept %s)\n", t.system, t.msg, in.Text, in.ConceptKey)
		vectors = append(vectors, e.Embed(in.Text))
	}
	fmt.Printf("\ncosine(Spirit net-interrupt, BGL net-interrupt) = %.3f\n", embed.Cosine(vectors[0], vectors[1]))
	fmt.Printf("cosine(Spirit parity,        BGL parity)        = %.3f\n", embed.Cosine(vectors[2], vectors[3]))
	fmt.Printf("cosine(net-interrupt,        parity)            = %.3f\n", embed.Cosine(vectors[0], vectors[2]))

	// The prompt the operator sends (Fig. 2 format).
	fmt.Println("\n== the constructed prompt ==")
	fmt.Println(lei.BuildPrompt("an HPC system", tableI[0].msg))

	// Hallucination + review: with a high simulated hallucination rate,
	// the reviewer catches format errors and regenerates (§VI-B2).
	fmt.Println("\n== hallucination and operator review ==")
	noisy := lei.NewSimLLM(lei.Config{HallucinationRate: 0.8, Seed: 42})
	reviewer := lei.NewReviewer()
	templates := []string{
		"disk scan failed with error EIO on volume <*>",
		"replica <*> lagging behind primary by <*> entries",
		"user <*> exceeded rate limit on endpoint <*>",
	}
	for _, tpl := range templates {
		raw := noisy.Interpret("a storage system", tpl)
		oc := reviewer.Process(noisy, "a storage system", tpl)
		fmt.Printf("template: %s\n  raw: hallucinated=%v %q\n  reviewed (%d attempts): %q\n",
			tpl, raw.Hallucinated, clip(raw.Text, 70), oc.Attempts, clip(oc.Final.Text, 70))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
