module logsynergy

go 1.22
