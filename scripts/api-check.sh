#!/bin/sh
# api-check: every non-2xx HTTP answer in the serving surfaces must go
# through the shared envelope helpers in internal/httpapi (Error,
# ErrorWithBody, MethodNotAllowed), so collectors and the fleet router
# can rely on the uniform {"error":{code,message,retry_after_s}} body.
#
# The check is lexical: a handler calling http.Error or hand-writing a
# 4xx/5xx status bypasses the envelope and fails the build. Tests and
# the httpapi package itself (which implements the helpers) are exempt.
set -eu
cd "$(dirname "$0")/.."

fail=0

# 1. http.Error writes text/plain prose — never allowed in handlers.
if hits=$(grep -rn 'http\.Error(' --include='*.go' cmd/ internal/ \
	| grep -v '_test\.go' | grep -v '^internal/httpapi/'); then
	echo "api-check: http.Error bypasses the shared error envelope:" >&2
	echo "$hits" >&2
	fail=1
fi

# 2. Hand-rolled non-2xx WriteHeader calls skip the envelope body.
if hits=$(grep -rn 'WriteHeader(http\.Status' --include='*.go' cmd/ internal/ \
	| grep -v '_test\.go' | grep -v '^internal/httpapi/' \
	| grep -vE 'Status(OK|Accepted|Created|NoContent|ResetContent|PartialContent)'); then
	echo "api-check: raw non-2xx WriteHeader bypasses the shared error envelope:" >&2
	echo "$hits" >&2
	fail=1
fi

# 3. Versioned-surface sanity: the admin prefix constant is the single
# source of the path family; no handler spells /admin/v1 by hand.
if hits=$(grep -rn '"/admin/v1' --include='*.go' cmd/ internal/ \
	| grep -v '_test\.go' | grep -v '^internal/httpapi/'); then
	echo "api-check: /admin/v1 paths must come from httpapi.Prefix (or httpapi.HandleVersioned):" >&2
	echo "$hits" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "api-check: admin/ingest error surface is uniform"
