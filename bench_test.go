// Package bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (run with `go test -bench=. -benchmem`).
//
// Each benchmark executes its full experiment once per iteration and
// prints the paper-style table on the first iteration. Under -short the
// harness drops to the smoke scale (tiny corpora) so the whole suite
// finishes quickly; the default is the CPU scale described in DESIGN.md
// (paper ratios at 1/12.5 sample counts). Absolute numbers are compared
// to the paper in EXPERIMENTS.md; the claims are about shape (who wins,
// by roughly what factor, where trends bend).
package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/experiments"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

// benchScale picks the experiment scale for benchmarks: the bench scale
// by default, smoke under -short, or an explicit LOGSYNERGY_SCALE
// (smoke|bench|cpu|paper).
func benchScale() experiments.Scale {
	switch os.Getenv("LOGSYNERGY_SCALE") {
	case "smoke":
		return experiments.SmokeScale()
	case "bench":
		return experiments.BenchScale()
	case "cpu":
		return experiments.CPUScale()
	case "paper":
		return experiments.PaperScale()
	}
	if testing.Short() {
		return experiments.SmokeScale()
	}
	return experiments.BenchScale()
}

// sharedLab caches corpora across benchmarks in one process.
var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func benchLab() *experiments.Lab {
	labOnce.Do(func() { lab = experiments.NewLab(benchScale()) })
	return lab
}

// benchConfig is the full training configuration (tables, Fig. 6,
// deployment, extra ablations).
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	if testing.Short() {
		cfg.Epochs = 3
	}
	return cfg
}

// fig5Config trades two epochs for wall clock on the 24-run ablation grid.
func fig5Config() core.Config {
	cfg := benchConfig()
	if !testing.Short() {
		cfg.Epochs = 8
	}
	return cfg
}

// sweepConfig is for the Fig. 4 sensitivity sweeps (many runs; only the
// relative trend matters).
func sweepConfig() core.Config {
	cfg := benchConfig()
	if !testing.Short() {
		cfg.Epochs = 6
	}
	return cfg
}

// printOnce prints an experiment rendering only on the benchmark's first
// iteration.
func printOnce(b *testing.B, i int, s string) {
	b.Helper()
	if i == 0 {
		fmt.Println(s)
	}
}

// BenchmarkTable3 regenerates Table III (dataset statistics).
func BenchmarkTable3(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		stats := l.Table3()
		printOnce(b, i, experiments.RenderTable3(stats))
	}
}

// BenchmarkTable4 regenerates Table IV (overall comparison on the public
// datasets BGL, Spirit, Thunderbird).
func BenchmarkTable4(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Table4(cfg).Render())
	}
}

// BenchmarkTable5 regenerates Table V (overall comparison on the ISP
// datasets System A/B/C).
func BenchmarkTable5(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Table5(cfg).Render())
	}
}

// fig4Targets picks the sweep targets: one representative per regime by
// default (high/medium/low anomaly rate), all six with
// LOGSYNERGY_FULL_SWEEPS=1 (the paper's full fan of curves), two under
// -short.
func fig4Targets() []string {
	if testing.Short() {
		return []string{"Thunderbird", "SystemC"}
	}
	if os.Getenv("LOGSYNERGY_FULL_SWEEPS") == "1" {
		return append(experiments.PublicNames(), experiments.ISPNames()...)
	}
	return []string{"BGL", "Thunderbird", "SystemC"}
}

// fig5Targets always covers all six systems (the ablation table is the
// paper's central evidence) except under -short.
func fig5Targets() []string {
	if testing.Short() {
		return []string{"Thunderbird", "SystemC"}
	}
	return append(experiments.PublicNames(), experiments.ISPNames()...)
}

// BenchmarkFig4a regenerates the λ_MI sensitivity curves.
func BenchmarkFig4a(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig4a(sweepConfig(), fig4Targets()).Render())
	}
}

// BenchmarkFig4b regenerates the n_s sensitivity curves.
func BenchmarkFig4b(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig4b(sweepConfig(), fig4Targets()).Render())
	}
}

// BenchmarkFig4c regenerates the n_t sensitivity curves.
func BenchmarkFig4c(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig4c(sweepConfig(), fig4Targets()).Render())
	}
}

// BenchmarkFig5 regenerates the ablation study (LEI, SUFE, transfer).
func BenchmarkFig5(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig5(fig5Config(), fig5Targets()).Render())
	}
}

// BenchmarkFig6 regenerates the cross-group transfer study.
func BenchmarkFig6(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig6(cfg).Render())
	}
}

// BenchmarkDeployment regenerates the §VI workflow study (pattern library
// on/off, throughput, report volume).
func BenchmarkDeployment(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	lines := 20000
	if testing.Short() {
		lines = 4000
	}
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Deployment(cfg, "SystemB", lines).Render())
	}
}

// BenchmarkLabelNoise runs the §IV-E1 label-quality threat study:
// LogSynergy trained on corrupted labels, plus the two-operator
// annotation workflow as the realistic reference point.
func BenchmarkLabelNoise(b *testing.B) {
	l := benchLab()
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if testing.Short() {
		rates = []float64{0, 0.2}
	}
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.LabelNoise(sweepConfig(), "Thunderbird", rates).Render())
	}
}

// BenchmarkCaseStudy regenerates the Fig. 8 false-positive case study.
func BenchmarkCaseStudy(b *testing.B) {
	l := benchLab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.CaseStudy().Render())
	}
}

// BenchmarkAblationOmega compares DAAN's dynamic ω against plain marginal
// alignment (a design choice DESIGN.md calls out).
func BenchmarkAblationOmega(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sc := l.Scenario(experiments.PublicNames(), "Thunderbird", 0, 0)
		dyn := cfg
		dyn.DynamicOmega = true
		stat := cfg
		stat.DynamicOmega = false
		f1Dyn := evalLogSynergy(l, sc, dyn)
		f1Stat := evalLogSynergy(l, sc, stat)
		printOnce(b, i, fmt.Sprintf("Ablation DAAN omega: dynamic F1=%.2f%% static F1=%.2f%%", 100*f1Dyn, 100*f1Stat))
	}
}

// BenchmarkAblationDA compares the paper's DAAN adaptation against the
// classic MMD alignment it cites as the alternative (§II-A).
func BenchmarkAblationDA(b *testing.B) {
	l := benchLab()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sc := l.Scenario(experiments.PublicNames(), "Thunderbird", 0, 0)
		daanCfg := cfg
		daanCfg.DAMethod = "daan"
		mmdCfg := cfg
		mmdCfg.DAMethod = "mmd"
		noneCfg := cfg
		noneCfg.UseDA = false
		out := fmt.Sprintf("Ablation domain adaptation: DAAN F1=%.2f%% MMD F1=%.2f%% none F1=%.2f%%",
			100*evalLogSynergy(l, sc, daanCfg), 100*evalLogSynergy(l, sc, mmdCfg), 100*evalLogSynergy(l, sc, noneCfg))
		printOnce(b, i, out)
	}
}

// BenchmarkAblationEmbedDim sweeps the event-embedding width.
func BenchmarkAblationEmbedDim(b *testing.B) {
	cfg := benchConfig()
	dims := []int{16, 32, 64}
	if testing.Short() {
		dims = []int{16, 32}
	}
	for i := 0; i < b.N; i++ {
		var out string
		for _, dim := range dims {
			scale := benchScale()
			scale.EmbedDim = dim
			l := experiments.NewLab(scale)
			sc := l.Scenario(experiments.PublicNames(), "Thunderbird", 0, 0)
			f1 := evalLogSynergy(l, sc, cfg)
			out += fmt.Sprintf("embed dim %d: F1=%.2f%%\n", dim, 100*f1)
		}
		printOnce(b, i, "Ablation embedding dimension:\n"+out)
	}
}

// evalLogSynergy trains and evaluates one LogSynergy run on a scenario.
func evalLogSynergy(l *experiments.Lab, sc *baselines.Scenario, cfg core.Config) float64 {
	m := experiments.NewLogSynergy(cfg, l.Interp)
	return baselines.Evaluate(m, sc).F1
}

// ---- serial-vs-parallel compute runtime benchmarks ----
//
// These pin the parallel tensor runtime's speedup so BENCH_*.json can track
// it: run the *Serial and *Parallel4 variants of each pair and compare
// ns/op. On a multi-core host the Parallel4 variant should be ≥2× faster;
// the results are bit-identical (see internal/tensor's equivalence suite).

// scoreFixture caches an inference model and a batch of sequences for the
// batch-scoring benchmarks.
var (
	scoreOnce  sync.Once
	scoreModel *core.Model
	scoreX     *tensor.Tensor
)

func scoreFixture() (*core.Model, *tensor.Tensor) {
	scoreOnce.Do(func() {
		cfg := core.DefaultConfig()
		scoreModel = core.NewModel(cfg, 3)
		rng := rand.New(rand.NewSource(71))
		scoreX = tensor.Randn(rng, 1, 512, 10, cfg.EmbedDim)
	})
	return scoreModel, scoreX
}

func benchmarkBatchScore(b *testing.B, workers int) {
	m, x := scoreFixture()
	prev := tensor.SetParallelism(workers)
	defer tensor.SetParallelism(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x, 128)
	}
}

// BenchmarkBatchScoreSerial scores 512 windows with parallel kernels off.
func BenchmarkBatchScoreSerial(b *testing.B) { benchmarkBatchScore(b, 1) }

// BenchmarkBatchScoreParallel4 scores the same 512 windows on 4 workers.
func BenchmarkBatchScoreParallel4(b *testing.B) { benchmarkBatchScore(b, 4) }

// trainFixture caches small source/target datasets for the training-step
// benchmarks.
var (
	trainOnce    sync.Once
	trainSources []*repr.Dataset
	trainTarget  *repr.Dataset
)

func trainFixture() ([]*repr.Dataset, *repr.Dataset) {
	trainOnce.Do(func() {
		interp := lei.NewSimLLM(lei.Config{})
		e := embed.New(32)
		mk := func(spec *logdata.SystemSpec, lines int, seed int64) *logdata.Sequences {
			return logdata.Build(spec, seed, float64(lines)/float64(spec.Lines), window.Default())
		}
		trainSources = []*repr.Dataset{repr.Build(mk(logdata.BGL(), 6000, 1), interp, e)}
		tgt := mk(logdata.Thunderbird(), 4000, 3)
		table := repr.BuildEventTable(tgt, interp, e)
		trainTarget = repr.BuildDataset(tgt, table)
	})
	return trainSources, trainTarget
}

func benchmarkTrainEpoch(b *testing.B, workers int) {
	sources, target := trainFixture()
	prev := tensor.SetParallelism(workers)
	defer tensor.SetParallelism(prev)
	cfg := core.DefaultConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TrainModel(cfg, sources, target)
	}
}

// BenchmarkTrainEpochSerial runs one training epoch with parallel kernels off.
func BenchmarkTrainEpochSerial(b *testing.B) { benchmarkTrainEpoch(b, 1) }

// BenchmarkTrainEpochParallel4 runs the same epoch on 4 workers.
func BenchmarkTrainEpochParallel4(b *testing.B) { benchmarkTrainEpoch(b, 4) }
