package drain

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse throws arbitrary byte soup at the online parser — malformed
// lines, truncated multibyte runes, control characters, pathological
// whitespace — and holds it to its structural invariants: never panic,
// return a valid event id backed by the event list, keep template and
// params consistent, and assign the same event to an immediately
// re-parsed identical line.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		" ",
		"\t\n\r",
		"service heartbeat ok seq 42",
		"user alice login from 10.0.0.5",
		"Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106",
		"0x1f deadbeefcafe 255.255.255.255:65535",
		strings.Repeat("a ", 300),
		strings.Repeat("\x00", 16),
		"日志 解析 器 收到 消息 编号 42",
		"truncated multibyte \xe6\x97",
		"<*> already has wildcards <*> in it",
		"tab\tseparated\tfields\t1\t2\t3",
		"mixed 中文 and ascii ids 0xabc123 10.0.0.1",
		"\xff\xfe\xfd invalid utf8 bytes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		p := NewDefault()
		// Warm the tree with realistic traffic so fuzz lines also exercise
		// group matching and template updating, not just group creation.
		p.Parse("service heartbeat ok seq 42")
		p.Parse("user alice login from 10.0.0.5")

		m := p.Parse(line)
		if m.EventID < 0 || m.EventID >= p.NumEvents() {
			t.Fatalf("event id %d outside [0,%d)", m.EventID, p.NumEvents())
		}
		events := p.Events()
		if events[m.EventID].Template != m.Template {
			t.Fatalf("match template %q != event %d template %q", m.Template, m.EventID, events[m.EventID].Template)
		}
		if n := strings.Count(m.Template, Wildcard); len(m.Params) > n {
			t.Fatalf("%d params for %d wildcard positions in %q", len(m.Params), n, m.Template)
		}
		if !utf8.ValidString(line) {
			// Invalid input must not poison the parser; valid lines still parse.
			p.Parse("service heartbeat ok seq 43")
		}

		// Parsing the identical line again must hit the same event.
		m2 := p.Parse(line)
		if m2.EventID != m.EventID {
			t.Fatalf("re-parse of %q moved from event %d to %d", line, m.EventID, m2.EventID)
		}
	})
}
