package drain

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSameTemplateDifferentParams(t *testing.T) {
	p := NewDefault()
	m1 := p.Parse("Connection refused from 10.0.0.1:8080 after 3 retries")
	m2 := p.Parse("Connection refused from 192.168.1.5:9090 after 7 retries")
	if m1.EventID != m2.EventID {
		t.Fatalf("same-shaped messages got different events: %d vs %d", m1.EventID, m2.EventID)
	}
	if len(m2.Params) != 2 {
		t.Fatalf("want 2 params (ip, retries), got %v", m2.Params)
	}
}

func TestDifferentStructuresSplit(t *testing.T) {
	p := NewDefault()
	m1 := p.Parse("kernel panic in module alpha")
	m2 := p.Parse("user login ok for bob")
	if m1.EventID == m2.EventID {
		t.Fatal("structurally different messages must not share an event")
	}
}

func TestWildcardMergingUpdatesTemplate(t *testing.T) {
	p := NewDefault()
	// Differing tokens must sit past the depth-2 routing prefix, otherwise
	// Drain routes the messages to different leaves by design.
	p.Parse("disk scan failed with error EIO")
	m := p.Parse("disk scan failed with error ENOSPC")
	if !strings.Contains(m.Template, Wildcard) {
		t.Fatalf("merged template should contain wildcard: %q", m.Template)
	}
	if got := len(m.Params); got != 1 {
		t.Fatalf("want 1 param, got %d (%v)", got, m.Params)
	}
	if m.Params[0] != "ENOSPC" {
		t.Fatalf("want param ENOSPC, got %v", m.Params)
	}
}

func TestEventCounts(t *testing.T) {
	p := NewDefault()
	for i := 0; i < 5; i++ {
		p.Parse(fmt.Sprintf("request %d completed in %d ms", i, i*10))
	}
	evs := p.Events()
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}
	if evs[0].Count != 5 {
		t.Fatalf("want count 5, got %d", evs[0].Count)
	}
}

func TestMaskingIPsAndHex(t *testing.T) {
	p := NewDefault()
	m := p.Parse("connect 172.30.72.31:33404 failed code 0xdeadbeef")
	if strings.Contains(m.Template, "172.30") || strings.Contains(m.Template, "0xdead") {
		t.Fatalf("masking failed: %q", m.Template)
	}
}

func TestTokenCountPartitioning(t *testing.T) {
	p := NewDefault()
	m1 := p.Parse("alpha beta gamma")
	m2 := p.Parse("alpha beta gamma delta")
	if m1.EventID == m2.EventID {
		t.Fatal("different token counts must never share an event")
	}
}

func TestEmptyMessage(t *testing.T) {
	p := NewDefault()
	m := p.Parse("")
	if m.EventID != 0 {
		t.Fatalf("empty message should parse to event 0, got %d", m.EventID)
	}
	if p.NumEvents() != 1 {
		t.Fatalf("want 1 event, got %d", p.NumEvents())
	}
}

func TestMaxChildrenOverflowRoutesToWildcard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChildren = 2
	p := New(cfg)
	// Many distinct leading tokens force overflow into the wildcard child;
	// parsing must keep working and stay consistent per message shape.
	seen := make(map[int]bool)
	for _, w := range []string{"aa", "bb", "cc", "dd", "ee"} {
		m := p.Parse(w + " service started ok")
		seen[m.EventID] = true
	}
	if len(seen) == 0 {
		t.Fatal("no events produced")
	}
}

func TestIdempotentReparse(t *testing.T) {
	p := NewDefault()
	first := p.Parse("job 17 finished with status 0")
	for i := 0; i < 10; i++ {
		again := p.Parse("job 17 finished with status 0")
		if again.EventID != first.EventID {
			t.Fatal("re-parsing an identical message must return the same event")
		}
	}
	if p.NumEvents() != 1 {
		t.Fatalf("want 1 event after reparsing, got %d", p.NumEvents())
	}
}

func TestConcurrentParsing(t *testing.T) {
	p := NewDefault()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Parse(fmt.Sprintf("worker %d iteration %d done", w, i))
			}
		}(w)
	}
	wg.Wait()
	if p.NumEvents() != 1 {
		t.Fatalf("concurrent identical-shape parses should converge to 1 event, got %d", p.NumEvents())
	}
	if got := p.Events()[0].Count; got != 800 {
		t.Fatalf("want 800 matches, got %d", got)
	}
}

// Property: parsing the same message twice always yields the same event id,
// regardless of what was parsed before it.
func TestParseDeterministicProperty(t *testing.T) {
	f := func(words []string) bool {
		msg := strings.Join(words, " ")
		p := NewDefault()
		a := p.Parse(msg)
		b := p.Parse(msg)
		return a.EventID == b.EventID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of wildcard positions in the template equals the
// number of extracted parameters.
func TestParamCountMatchesWildcards(t *testing.T) {
	p := NewDefault()
	msgs := []string{
		"open file /var/log/app.log size 1024",
		"open file /etc/conf size 77",
		"node n42 went offline at rack 7",
		"node n43 went offline at rack 9",
	}
	for _, msg := range msgs {
		m := p.Parse(msg)
		wilds := strings.Count(m.Template, Wildcard)
		if wilds != len(m.Params) {
			t.Fatalf("template %q has %d wildcards but %d params", m.Template, wilds, len(m.Params))
		}
	}
}

func BenchmarkParse(b *testing.B) {
	p := NewDefault()
	msgs := make([]string, 100)
	for i := range msgs {
		msgs[i] = fmt.Sprintf("request %d from 10.0.%d.%d completed in %d ms with status %d",
			i, i%256, (i*7)%256, i*3, i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Parse(msgs[i%len(msgs)])
	}
}

func TestParamsAreRawValues(t *testing.T) {
	p := NewDefault()
	p.Parse("request served from 10.1.2.3:80 in 12 ms")
	m := p.Parse("request served from 10.9.9.9:443 in 777 ms")
	if len(m.Params) < 2 {
		t.Fatalf("params: %v", m.Params)
	}
	found := false
	for _, prm := range m.Params {
		if prm == "10.9.9.9:443" {
			found = true
		}
		if strings.Contains(prm, Wildcard) {
			t.Fatalf("param %q leaked the wildcard instead of the raw value", prm)
		}
	}
	if !found {
		t.Fatalf("raw IP value missing from params: %v", m.Params)
	}
}
