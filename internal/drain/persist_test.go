package drain

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	p := NewDefault()
	msgs := []string{
		"connection refused from 10.0.0.1:80 after 3 retries",
		"connection refused from 10.0.0.2:81 after 9 retries",
		"kernel panic in module alpha",
		"job 17 finished with status 0",
	}
	for _, m := range msgs {
		p.Parse(m)
	}
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	p2, err := LoadState(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumEvents() != p.NumEvents() {
		t.Fatalf("event count %d vs %d", p2.NumEvents(), p.NumEvents())
	}
	// Known shapes must map to the same event ids in the restored parser.
	for _, m := range msgs {
		a := p.Parse(m)
		b := p2.Parse(m)
		if a.EventID != b.EventID {
			t.Fatalf("%q: ids diverge %d vs %d", m, a.EventID, b.EventID)
		}
	}
	// New shapes must continue the id space.
	n := p2.NumEvents()
	m := p2.Parse("completely new structural shape with words")
	if m.EventID != n {
		t.Fatalf("restored parser assigned id %d, want %d", m.EventID, n)
	}
	// Counts survive.
	evs := p2.Events()
	if evs[0].Count < 2 {
		t.Fatalf("counts not preserved: %+v", evs[0])
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	p := NewDefault()
	msgs := []string{
		"gc freed 123456 bytes",
		"cache hit key 0xdeadbeef",
		"replica sync offset 99 ok",
	}
	for _, m := range msgs {
		p.Parse(m)
	}
	events := p.Export()
	if len(events) != p.NumEvents() {
		t.Fatalf("exported %d events, parser has %d", len(events), p.NumEvents())
	}
	for i, ev := range events {
		if ev.ID != i {
			t.Fatalf("exported id %d at position %d", ev.ID, i)
		}
	}

	p2 := NewDefault()
	if err := p2.Import(events); err != nil {
		t.Fatal(err)
	}
	// Known shapes map to the same ids; new shapes continue the id space.
	for _, m := range msgs {
		if a, b := p.Parse(m), p2.Parse(m); a.EventID != b.EventID {
			t.Fatalf("%q: ids diverge %d vs %d", m, a.EventID, b.EventID)
		}
	}
	if m := p2.Parse("an entirely new structural shape"); m.EventID != len(events) {
		t.Fatalf("imported parser minted id %d for a new shape, want %d", m.EventID, len(events))
	}
}

func TestImportRefusesNonEmptyParser(t *testing.T) {
	p := NewDefault()
	p.Parse("some message shape")
	if err := p.Import([]SavedEvent{{ID: 0, Template: "x y"}}); err == nil {
		t.Fatal("importing into a non-empty parser must error")
	}
}

func TestImportRefusesNonContiguousIDs(t *testing.T) {
	p := NewDefault()
	if err := p.Import([]SavedEvent{{ID: 3, Template: "a b"}}); err == nil {
		t.Fatal("expected id continuity error")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	if _, err := LoadState(bytes.NewReader([]byte("nope")), DefaultConfig()); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadStateRejectsNonContiguousIDs(t *testing.T) {
	data := []byte(`[{"id":5,"template":"a b c","example":"a b c","count":1}]`)
	if _, err := LoadState(bytes.NewReader(data), DefaultConfig()); err == nil {
		t.Fatal("expected id continuity error")
	}
}

func TestSaveLoadLargeState(t *testing.T) {
	p := NewDefault()
	for i := 0; i < 500; i++ {
		p.Parse(fmt.Sprintf("shape%d distinct structure token%d value %d", i%37, i%37, i))
	}
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadState(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumEvents() != p.NumEvents() {
		t.Fatalf("events %d vs %d", p2.NumEvents(), p.NumEvents())
	}
}
