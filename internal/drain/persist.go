package drain

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SavedEvent is the serialized form of one template group — the unit the
// parser's state exports and imports. Event ids are positions: a valid
// slice is contiguous from 0, which is what lets an importer reproduce
// the exporter's id space exactly.
type SavedEvent struct {
	ID       int    `json:"id"`
	Template string `json:"template"`
	Example  string `json:"example"`
	Count    int    `json:"count"`
}

// Export snapshots every template group in id order. The routing tree is
// not exported: Import rebuilds it deterministically from the templates.
// Together with Import this is the parser half of a shard state handoff —
// a partition persists its groups on commit and a rebalance splices them
// into another partition's state without re-minting ids for templates the
// stream has already taught the parser.
func (p *Parser) Export() []SavedEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SavedEvent, len(p.events))
	for i, ev := range p.events {
		out[i] = SavedEvent{ID: ev.ID, Template: ev.Template, Example: ev.Example, Count: ev.Count}
	}
	return out
}

// Import replays exported events into a fresh parser, preserving ids,
// templates, examples and counts. Subsequent parsing continues the id
// space exactly where the exporter left off. The parser must be empty —
// importing over live groups would fork the id space.
func (p *Parser) Import(events []SavedEvent) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.events) != 0 {
		return fmt.Errorf("drain: importing into a parser that already has %d events", len(p.events))
	}
	for i, se := range events {
		if se.ID != i {
			return fmt.Errorf("drain: non-contiguous event id %d at position %d", se.ID, i)
		}
		tokens := strings.Fields(se.Template)
		if len(tokens) == 0 {
			tokens = []string{""}
		}
		ev := &Event{
			ID:       se.ID,
			Template: se.Template,
			Example:  se.Example,
			Count:    se.Count,
			tokens:   tokens,
		}
		leaf := p.route(tokens)
		leaf.groups = append(leaf.groups, ev)
		p.events = append(p.events, ev)
	}
	return nil
}

// Merge splices exported events from another parser into this one, which
// may already hold live groups — the online half of a key handoff, where
// the destination parser keeps serving its own streams while a moved
// key's history arrives. Events whose template this parser already knows
// keep the local group (the donor's count is not re-added: the merge must
// be idempotent so a crashed cutover can re-apply it); unknown templates
// are appended at the next local id. The returned map translates every
// donor id to its local id, so pattern verdicts and window sequences
// captured in the donor's id space can follow the key across.
func (p *Parser) Merge(events []SavedEvent) (map[int]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	byTemplate := make(map[string]*Event, len(p.events))
	for _, ev := range p.events {
		byTemplate[ev.Template] = ev
	}
	translate := make(map[int]int, len(events))
	for _, se := range events {
		if ev, ok := byTemplate[se.Template]; ok {
			translate[se.ID] = ev.ID
			continue
		}
		tokens := strings.Fields(se.Template)
		if len(tokens) == 0 {
			tokens = []string{""}
		}
		ev := &Event{
			ID:       len(p.events),
			Template: se.Template,
			Example:  se.Example,
			Count:    se.Count,
			tokens:   tokens,
		}
		leaf := p.route(tokens)
		leaf.groups = append(leaf.groups, ev)
		p.events = append(p.events, ev)
		byTemplate[se.Template] = ev
		translate[se.ID] = ev.ID
	}
	return translate, nil
}

// SaveState serializes the parser's template groups as JSON. The routing
// tree itself is not stored: it is rebuilt deterministically from the
// templates on load.
func (p *Parser) SaveState(w io.Writer) error {
	return json.NewEncoder(w).Encode(p.Export())
}

// LoadState reconstructs a parser from SaveState output, preserving event
// ids, templates and counts. Subsequent parsing continues the id space
// exactly where the saved parser left off — the property a restart-safe
// deployment needs so stored models keep referencing the right events.
func LoadState(r io.Reader, cfg Config) (*Parser, error) {
	var in []SavedEvent
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("drain: decoding state: %w", err)
	}
	p := New(cfg)
	if err := p.Import(in); err != nil {
		return nil, err
	}
	return p, nil
}
