package drain

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// savedEvent is the serialized form of one template group.
type savedEvent struct {
	ID       int    `json:"id"`
	Template string `json:"template"`
	Example  string `json:"example"`
	Count    int    `json:"count"`
}

// SaveState serializes the parser's template groups as JSON. The routing
// tree itself is not stored: it is rebuilt deterministically from the
// templates on load.
func (p *Parser) SaveState(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]savedEvent, len(p.events))
	for i, ev := range p.events {
		out[i] = savedEvent{ID: ev.ID, Template: ev.Template, Example: ev.Example, Count: ev.Count}
	}
	return json.NewEncoder(w).Encode(out)
}

// LoadState reconstructs a parser from SaveState output, preserving event
// ids, templates and counts. Subsequent parsing continues the id space
// exactly where the saved parser left off — the property a restart-safe
// deployment needs so stored models keep referencing the right events.
func LoadState(r io.Reader, cfg Config) (*Parser, error) {
	var in []savedEvent
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("drain: decoding state: %w", err)
	}
	p := New(cfg)
	for i, se := range in {
		if se.ID != i {
			return nil, fmt.Errorf("drain: non-contiguous event id %d at position %d", se.ID, i)
		}
		tokens := strings.Fields(se.Template)
		if len(tokens) == 0 {
			tokens = []string{""}
		}
		ev := &Event{
			ID:       se.ID,
			Template: se.Template,
			Example:  se.Example,
			Count:    se.Count,
			tokens:   tokens,
		}
		leaf := p.route(tokens)
		leaf.groups = append(leaf.groups, ev)
		p.events = append(p.events, ev)
	}
	return p, nil
}
