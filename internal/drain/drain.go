// Package drain implements the Drain online log parsing algorithm
// (He, Zhu, Zheng, Lyu: "Drain: An Online Log Parsing Approach with Fixed
// Depth Tree", ICWS 2017), the parser LogSynergy's pre-processing phase
// uses to turn raw log messages into structured log events and parameters.
//
// Drain routes each tokenized message through a fixed-depth prefix tree:
// the first level branches on token count, the next levels branch on the
// leading tokens (tokens containing digits collapse to a wildcard), and
// each leaf holds a list of log groups. A message joins the group whose
// template it is most similar to, or starts a new group; template positions
// that disagree become the <*> wildcard parameter marker.
package drain

import (
	"regexp"
	"strings"
	"sync"
)

// Wildcard is the template placeholder for a parameter position.
const Wildcard = "<*>"

// Config controls tree shape and matching thresholds.
type Config struct {
	// Depth is the total tree depth including the root and leaf levels.
	// Depth-2 token prefixes are used for routing. Default 4.
	Depth int
	// SimThreshold is the minimum token-level similarity for a message to
	// join an existing group. Default 0.4.
	SimThreshold float64
	// MaxChildren caps the branching factor of internal nodes; overflow
	// tokens route through a shared wildcard child. Default 100.
	MaxChildren int
	// Maskers are applied to the raw message before tokenization, replacing
	// every match with the wildcard. Use them for timestamps, IPs, hex ids.
	Maskers []*regexp.Regexp
}

// DefaultConfig returns the configuration used in the Drain paper, plus
// maskers for the value shapes that appear in this project's log corpora.
func DefaultConfig() Config {
	return Config{
		Depth:        4,
		SimThreshold: 0.4,
		MaxChildren:  100,
		Maskers: []*regexp.Regexp{
			regexp.MustCompile(`\b\d{1,3}(\.\d{1,3}){3}(:\d+)?\b`), // IPv4, optional port
			regexp.MustCompile(`\b0x[0-9a-fA-F]+\b`),               // hex literals
			regexp.MustCompile(`\b[0-9a-fA-F]{8,}\b`),              // long hex ids
			regexp.MustCompile(`\b\d+\b`),                          // integers
		},
	}
}

// Event is one discovered log template.
type Event struct {
	// ID is a stable identifier assigned in discovery order, starting at 0.
	ID int
	// Template is the event text with parameters replaced by <*>.
	Template string
	// Example is the first raw (masked) message that created the group.
	Example string
	// Count is how many messages matched this event.
	Count int

	tokens []string
}

// Match is the parse result for a single message.
type Match struct {
	// EventID identifies the matched template.
	EventID int
	// Template is the (possibly updated) template text.
	Template string
	// Params holds the concrete values at wildcard positions, in order.
	Params []string
}

// Parser is a thread-safe online Drain parser.
type Parser struct {
	cfg Config

	mu     sync.Mutex
	root   map[int]*node // keyed by token count
	events []*Event
}

// node is an internal routing node or a leaf holding candidate groups.
type node struct {
	children map[string]*node
	groups   []*Event // non-nil only at leaves
}

// New creates a parser with the given configuration, applying defaults for
// zero-valued fields.
func New(cfg Config) *Parser {
	if cfg.Depth <= 2 {
		cfg.Depth = 4
	}
	if cfg.SimThreshold <= 0 {
		cfg.SimThreshold = 0.4
	}
	if cfg.MaxChildren <= 0 {
		cfg.MaxChildren = 100
	}
	return &Parser{cfg: cfg, root: make(map[int]*node)}
}

// NewDefault creates a parser with DefaultConfig.
func NewDefault() *Parser { return New(DefaultConfig()) }

// Parse routes one raw log message through the tree, creating or updating
// a template, and returns the matched event with extracted parameters.
func (p *Parser) Parse(message string) Match {
	masked := p.mask(message)
	tokens := strings.Fields(masked)
	if len(tokens) == 0 {
		tokens = []string{""}
	}
	// Maskers replace value substrings within tokens, never whitespace, so
	// the raw message tokenizes 1:1 with the masked one; parameters are
	// extracted from the raw tokens to preserve the concrete values.
	rawTokens := strings.Fields(message)
	if len(rawTokens) != len(tokens) {
		rawTokens = tokens // defensive: fall back to masked values
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	leaf := p.route(tokens)
	best, bestSim := p.bestGroup(leaf, tokens)
	if best == nil || bestSim < p.cfg.SimThreshold {
		ev := &Event{
			ID:       len(p.events),
			Template: strings.Join(tokens, " "),
			Example:  masked,
			Count:    1,
			tokens:   append([]string(nil), tokens...),
		}
		p.events = append(p.events, ev)
		leaf.groups = append(leaf.groups, ev)
		return Match{EventID: ev.ID, Template: ev.Template, Params: extractParams(ev.tokens, rawTokens)}
	}

	// Merge: positions that disagree become wildcards.
	changed := false
	for i, tok := range tokens {
		if best.tokens[i] != tok && best.tokens[i] != Wildcard {
			best.tokens[i] = Wildcard
			changed = true
		}
	}
	if changed {
		best.Template = strings.Join(best.tokens, " ")
	}
	best.Count++
	return Match{EventID: best.ID, Template: best.Template, Params: extractParams(best.tokens, rawTokens)}
}

// mask applies the configured maskers to the raw message.
func (p *Parser) mask(message string) string {
	for _, re := range p.cfg.Maskers {
		message = re.ReplaceAllString(message, Wildcard)
	}
	return message
}

// route walks (and lazily builds) the internal levels, returning the leaf.
func (p *Parser) route(tokens []string) *node {
	n, ok := p.root[len(tokens)]
	if !ok {
		n = &node{}
		p.root[len(tokens)] = n
	}
	prefixLevels := p.cfg.Depth - 2
	for d := 0; d < prefixLevels; d++ {
		key := Wildcard
		if d < len(tokens) {
			key = routingKey(tokens[d])
		}
		if n.children == nil {
			n.children = make(map[string]*node)
		}
		child, ok := n.children[key]
		if !ok {
			if len(n.children) >= p.cfg.MaxChildren {
				key = Wildcard
				child, ok = n.children[key]
			}
			if !ok {
				child = &node{}
				n.children[key] = child
			}
		}
		n = child
	}
	return n
}

// routingKey collapses digit-bearing tokens to the wildcard so variable
// values do not explode the tree, per the Drain paper.
func routingKey(token string) string {
	if token == Wildcard || strings.ContainsAny(token, "0123456789") {
		return Wildcard
	}
	return token
}

// bestGroup returns the most similar group at the leaf and its similarity.
func (p *Parser) bestGroup(leaf *node, tokens []string) (*Event, float64) {
	var best *Event
	bestSim := -1.0
	for _, ev := range leaf.groups {
		sim := similarity(ev.tokens, tokens)
		if sim > bestSim {
			best, bestSim = ev, sim
		}
	}
	return best, bestSim
}

// similarity is the fraction of positions where the template token equals
// the message token (Drain's simSeq definition). A wildcard template
// position counts as a match only against a masked (wildcard) message
// token: masked tokens can never be anything but parameters, and without
// this rule a fully-masked message scores 0 against its own template and
// mints a fresh group on every parse — unbounded growth on numeric-heavy
// streams (found by FuzzParse).
func similarity(template, tokens []string) float64 {
	if len(template) != len(tokens) {
		return 0
	}
	same := 0
	for i := range template {
		if template[i] == tokens[i] {
			same++
		}
	}
	return float64(same) / float64(len(tokens))
}

// extractParams returns the message tokens at wildcard template positions.
func extractParams(template, tokens []string) []string {
	var params []string
	for i, t := range template {
		if t == Wildcard {
			params = append(params, tokens[i])
		}
	}
	return params
}

// Events returns a snapshot of every discovered event, in ID order.
func (p *Parser) Events() []*Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Event, len(p.events))
	for i, ev := range p.events {
		cp := *ev
		cp.tokens = nil
		out[i] = &cp
	}
	return out
}

// NumEvents returns how many distinct templates have been discovered.
func (p *Parser) NumEvents() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}
