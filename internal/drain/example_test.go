package drain_test

import (
	"fmt"

	"logsynergy/internal/drain"
)

// Example shows template discovery and parameter extraction.
func Example() {
	p := drain.NewDefault()
	p.Parse("Connection refused from 10.0.0.1:8080 after 3 retries")
	m := p.Parse("Connection refused from 192.168.1.5:9090 after 7 retries")
	fmt.Println(m.Template)
	fmt.Println(m.Params)
	// Output:
	// Connection refused from <*> after <*> retries
	// [192.168.1.5:9090 7]
}

func ExampleParser_Parse_merging() {
	p := drain.NewDefault()
	p.Parse("disk scan failed with error EIO")
	m := p.Parse("disk scan failed with error ENOSPC")
	fmt.Println(m.Template)
	// Output:
	// disk scan failed with error <*>
}
