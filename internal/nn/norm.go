package nn

import (
	"fmt"
	"math"

	"logsynergy/internal/tensor"
)

// SoftmaxLastDim applies a softmax along the final dimension.
func (g *Graph) SoftmaxLastDim(a *Node) *Node {
	out := tensor.SoftmaxLastDim(a.Value)
	n := a.Value.Shape[len(a.Value.Shape)-1]
	rows := a.Value.Size() / n
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(a.Value.Shape...)
		for r := 0; r < rows; r++ {
			y := out.Data[r*n : (r+1)*n]
			gy := gr.Data[r*n : (r+1)*n]
			dot := 0.0
			for i := range y {
				dot += y[i] * gy[i]
			}
			dst := ga.Data[r*n : (r+1)*n]
			for i := range y {
				dst[i] = y[i] * (gy[i] - dot)
			}
		}
		a.accumulate(ga)
	}, a)
}

// layerNormEps keeps the variance denominator away from zero.
const layerNormEps = 1e-5

// LayerNorm normalizes the final dimension of x to zero mean and unit
// variance, then applies a learned affine transform gamma*x̂ + beta.
// gamma and beta are vectors matching the final dimension.
func (g *Graph) LayerNorm(x, gamma, beta *Node) *Node {
	n := gamma.Value.Size()
	if beta.Value.Size() != n || x.Value.Shape[len(x.Value.Shape)-1] != n {
		panic(fmt.Sprintf("nn: LayerNorm size mismatch x=%v gamma=%d beta=%d",
			x.Value.Shape, n, beta.Value.Size()))
	}
	rows := x.Value.Size() / n
	out := tensor.New(x.Value.Shape...)
	xhat := tensor.New(x.Value.Shape...)
	invStd := make([]float64, rows)
	for r := 0; r < rows; r++ {
		src := x.Value.Data[r*n : (r+1)*n]
		mean := 0.0
		for _, v := range src {
			mean += v
		}
		mean /= float64(n)
		varSum := 0.0
		for _, v := range src {
			d := v - mean
			varSum += d * d
		}
		is := 1 / math.Sqrt(varSum/float64(n)+layerNormEps)
		invStd[r] = is
		xh := xhat.Data[r*n : (r+1)*n]
		dst := out.Data[r*n : (r+1)*n]
		for i, v := range src {
			xh[i] = (v - mean) * is
			dst[i] = gamma.Value.Data[i]*xh[i] + beta.Value.Data[i]
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		if gamma.needsGrad {
			gg := tensor.New(n)
			for r := 0; r < rows; r++ {
				for i := 0; i < n; i++ {
					gg.Data[i] += gr.Data[r*n+i] * xhat.Data[r*n+i]
				}
			}
			gamma.accumulate(gg)
		}
		if beta.needsGrad {
			gb := tensor.New(n)
			for r := 0; r < rows; r++ {
				for i := 0; i < n; i++ {
					gb.Data[i] += gr.Data[r*n+i]
				}
			}
			beta.accumulate(gb)
		}
		if x.needsGrad {
			gx := tensor.New(x.Value.Shape...)
			fn := float64(n)
			for r := 0; r < rows; r++ {
				gy := gr.Data[r*n : (r+1)*n]
				xh := xhat.Data[r*n : (r+1)*n]
				// h = gamma ⊙ upstream gradient for this row.
				sumH, sumHX := 0.0, 0.0
				h := make([]float64, n)
				for i := 0; i < n; i++ {
					h[i] = gy[i] * gamma.Value.Data[i]
					sumH += h[i]
					sumHX += h[i] * xh[i]
				}
				dst := gx.Data[r*n : (r+1)*n]
				for i := 0; i < n; i++ {
					dst[i] = invStd[r] * (h[i] - sumH/fn - xh[i]*sumHX/fn)
				}
			}
			x.accumulate(gx)
		}
	}, x, gamma, beta)
}
