package nn

import (
	"fmt"
	"math"
	"math/rand"

	"logsynergy/internal/tensor"
)

// SplitHeads reorders a [B,T,D] node into [B*H, T, D/H] so each attention
// head becomes an independent batch entry.
func (g *Graph) SplitHeads(x *Node, heads int) *Node {
	b, t, d := x.Value.Dim(0), x.Value.Dim(1), x.Value.Dim(2)
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: model dim %d not divisible by %d heads", d, heads))
	}
	dh := d / heads
	out := tensor.New(b*heads, t, dh)
	for i := 0; i < b; i++ {
		for s := 0; s < t; s++ {
			for h := 0; h < heads; h++ {
				src := x.Value.Data[(i*t+s)*d+h*dh : (i*t+s)*d+(h+1)*dh]
				dst := out.Data[((i*heads+h)*t+s)*dh : ((i*heads+h)*t+s+1)*dh]
				copy(dst, src)
			}
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		gx := tensor.New(b, t, d)
		for i := 0; i < b; i++ {
			for s := 0; s < t; s++ {
				for h := 0; h < heads; h++ {
					src := gr.Data[((i*heads+h)*t+s)*dh : ((i*heads+h)*t+s+1)*dh]
					dst := gx.Data[(i*t+s)*d+h*dh : (i*t+s)*d+(h+1)*dh]
					copy(dst, src)
				}
			}
		}
		x.accumulate(gx)
	}, x)
}

// MergeHeads inverts SplitHeads: [B*H, T, D/H] back to [B, T, D].
func (g *Graph) MergeHeads(x *Node, heads int) *Node {
	bh, t, dh := x.Value.Dim(0), x.Value.Dim(1), x.Value.Dim(2)
	if bh%heads != 0 {
		panic(fmt.Sprintf("nn: batch*heads %d not divisible by %d heads", bh, heads))
	}
	b := bh / heads
	d := dh * heads
	out := tensor.New(b, t, d)
	for i := 0; i < b; i++ {
		for s := 0; s < t; s++ {
			for h := 0; h < heads; h++ {
				src := x.Value.Data[((i*heads+h)*t+s)*dh : ((i*heads+h)*t+s+1)*dh]
				dst := out.Data[(i*t+s)*d+h*dh : (i*t+s)*d+(h+1)*dh]
				copy(dst, src)
			}
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		gx := tensor.New(bh, t, dh)
		for i := 0; i < b; i++ {
			for s := 0; s < t; s++ {
				for h := 0; h < heads; h++ {
					src := gr.Data[(i*t+s)*d+h*dh : (i*t+s)*d+(h+1)*dh]
					dst := gx.Data[((i*heads+h)*t+s)*dh : ((i*heads+h)*t+s+1)*dh]
					copy(dst, src)
				}
			}
		}
		x.accumulate(gx)
	}, x)
}

// MultiHeadAttention is standard scaled dot-product self-attention with
// learned query/key/value/output projections (Vaswani et al., 2017).
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	Dim            int
	Dropout        float64
}

// NewMultiHeadAttention builds an attention block over model dimension dim.
func NewMultiHeadAttention(ps *ParamSet, prefix string, rng *rand.Rand, dim, heads int, dropout float64) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", dim, heads))
	}
	return &MultiHeadAttention{
		Wq:      NewLinear(ps, prefix+".wq", rng, dim, dim),
		Wk:      NewLinear(ps, prefix+".wk", rng, dim, dim),
		Wv:      NewLinear(ps, prefix+".wv", rng, dim, dim),
		Wo:      NewLinear(ps, prefix+".wo", rng, dim, dim),
		Heads:   heads,
		Dim:     dim,
		Dropout: dropout,
	}
}

// Forward applies self-attention to x [B,T,D].
func (a *MultiHeadAttention) Forward(g *Graph, x *Node, rng *rand.Rand, train bool) *Node {
	q := g.SplitHeads(a.Wq.Forward3D(g, x), a.Heads)
	k := g.SplitHeads(a.Wk.Forward3D(g, x), a.Heads)
	v := g.SplitHeads(a.Wv.Forward3D(g, x), a.Heads)
	scale := 1 / math.Sqrt(float64(a.Dim/a.Heads))
	scores := g.Scale(g.BMM(q, g.TransposeLast2(k)), scale)
	attn := g.SoftmaxLastDim(scores)
	attn = g.Dropout(attn, a.Dropout, rng, train)
	ctx := g.MergeHeads(g.BMM(attn, v), a.Heads)
	return a.Wo.Forward3D(g, ctx)
}

// TransformerEncoderLayer is one post-norm encoder block:
// x = LN(x + MHA(x)); x = LN(x + FFN(x)).
type TransformerEncoderLayer struct {
	Attn       *MultiHeadAttention
	FF1, FF2   *Linear
	Norm1      *LayerNormModule
	Norm2      *LayerNormModule
	Dropout    float64
	Dim, FFDim int
}

// NewTransformerEncoderLayer constructs one encoder block.
func NewTransformerEncoderLayer(ps *ParamSet, prefix string, rng *rand.Rand, dim, heads, ffDim int, dropout float64) *TransformerEncoderLayer {
	return &TransformerEncoderLayer{
		Attn:    NewMultiHeadAttention(ps, prefix+".attn", rng, dim, heads, dropout),
		FF1:     NewLinear(ps, prefix+".ff1", rng, dim, ffDim),
		FF2:     NewLinear(ps, prefix+".ff2", rng, ffDim, dim),
		Norm1:   NewLayerNorm(ps, prefix+".ln1", dim),
		Norm2:   NewLayerNorm(ps, prefix+".ln2", dim),
		Dropout: dropout,
		Dim:     dim,
		FFDim:   ffDim,
	}
}

// Forward applies the block to x [B,T,D].
func (l *TransformerEncoderLayer) Forward(g *Graph, x *Node, rng *rand.Rand, train bool) *Node {
	att := l.Attn.Forward(g, x, rng, train)
	att = g.Dropout(att, l.Dropout, rng, train)
	x = l.Norm1.Forward(g, g.Add(x, att))
	ff := l.FF2.Forward3D(g, g.ReLU(l.FF1.Forward3D(g, x)))
	ff = g.Dropout(ff, l.Dropout, rng, train)
	return l.Norm2.Forward(g, g.Add(x, ff))
}

// TransformerEncoder stacks encoder layers over an input projection and
// sinusoidal positional encodings, as used by LogSynergy's feature
// extractor F and by the NeuralLog baseline.
type TransformerEncoder struct {
	Proj   *Linear // input dim -> model dim (identity if dims equal: still learned)
	Layers []*TransformerEncoderLayer
	Dim    int
	posEnc map[int]*tensor.Tensor // cached by sequence length
}

// NewTransformerEncoder builds a stack of depth encoder layers with an input
// projection from inDim to modelDim.
func NewTransformerEncoder(ps *ParamSet, prefix string, rng *rand.Rand, inDim, modelDim, heads, ffDim, depth int, dropout float64) *TransformerEncoder {
	e := &TransformerEncoder{
		Proj:   NewLinear(ps, prefix+".proj", rng, inDim, modelDim),
		Dim:    modelDim,
		posEnc: make(map[int]*tensor.Tensor),
	}
	for i := 0; i < depth; i++ {
		e.Layers = append(e.Layers,
			NewTransformerEncoderLayer(ps, prefixIndex(prefix+".layer", i), rng, modelDim, heads, ffDim, dropout))
	}
	return e
}

// positional returns (and caches) the sinusoidal positional encoding table
// for sequences of length t.
func (e *TransformerEncoder) positional(t int) *tensor.Tensor {
	if pe, ok := e.posEnc[t]; ok {
		return pe
	}
	pe := tensor.New(t, e.Dim)
	for pos := 0; pos < t; pos++ {
		for i := 0; i < e.Dim; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(e.Dim))
			if i%2 == 0 {
				pe.Data[pos*e.Dim+i] = math.Sin(angle)
			} else {
				pe.Data[pos*e.Dim+i] = math.Cos(angle)
			}
		}
	}
	e.posEnc[t] = pe
	return pe
}

// Forward encodes x [B,T,inDim] into [B,T,modelDim].
func (e *TransformerEncoder) Forward(g *Graph, x *Node, rng *rand.Rand, train bool) *Node {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	h := e.Proj.Forward3D(g, x)
	pe := e.positional(t)
	peBatch := tensor.New(b, t, e.Dim)
	for i := 0; i < b; i++ {
		copy(peBatch.Data[i*t*e.Dim:(i+1)*t*e.Dim], pe.Data)
	}
	h = g.Add(h, g.Const(peBatch))
	for _, l := range e.Layers {
		h = l.Forward(g, h, rng, train)
	}
	return h
}

// EncodePooled encodes x and mean-pools over time, producing [B,modelDim].
func (e *TransformerEncoder) EncodePooled(g *Graph, x *Node, rng *rand.Rand, train bool) *Node {
	return g.MeanTime(e.Forward(g, x, rng, train))
}
