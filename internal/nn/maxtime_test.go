package nn

import (
	"math/rand"
	"testing"

	"logsynergy/internal/tensor"
)

func TestGradMaxTime(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 2, 4, 3))
	w := tensor.Randn(rng, 1, 2, 3)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		return g, g.Mean(g.Mul(g.MaxTime(g.Param(p)), g.Const(w)))
	})
}

func TestMaxTimeValues(t *testing.T) {
	g := NewGraph()
	x := tensor.FromSlice([]float64{1, 5, 3, 2, 9, 0}, 1, 3, 2)
	out := g.MaxTime(g.Const(x))
	if out.Value.At(0, 0) != 9 || out.Value.At(0, 1) != 5 {
		t.Fatalf("max values wrong: %v", out.Value.Data)
	}
}
