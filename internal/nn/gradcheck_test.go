package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"logsynergy/internal/tensor"
)

// numericalGrad estimates dLoss/dParam by central differences, where loss
// is rebuilt from scratch by forward for each probe.
func numericalGrad(p *Param, forward func() float64) *tensor.Tensor {
	const h = 1e-6
	grad := tensor.New(p.Value.Shape...)
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		up := forward()
		p.Value.Data[i] = orig - h
		down := forward()
		p.Value.Data[i] = orig
		grad.Data[i] = (up - down) / (2 * h)
	}
	return grad
}

// checkGrads runs backward once and compares every parameter's analytic
// gradient against the numerical estimate.
func checkGrads(t *testing.T, ps *ParamSet, build func() (*Graph, *Node)) {
	t.Helper()
	ps.ZeroGrad()
	g, loss := build()
	g.Backward(loss)
	forward := func() float64 {
		_, l := build()
		return l.Value.Data[0]
	}
	for _, p := range ps.All() {
		num := numericalGrad(p, forward)
		for i := range num.Data {
			a, n := p.Grad.Data[i], num.Data[i]
			diff := math.Abs(a - n)
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(n)))
			if diff/scale > 1e-4 {
				t.Fatalf("param %s[%d]: analytic %v vs numerical %v", p.Name, i, a, n)
			}
		}
	}
}

func TestGradLinearBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", rng, 4, 1)
	x := tensor.Randn(rng, 1, 3, 4)
	labels := []float64{1, 0, 1}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		out := lin.Forward(g, g.Const(x))
		return g, g.BCEWithLogits(out, labels)
	})
}

func TestGradMLPCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := NewParamSet()
	mlp := NewMLP(ps, "mlp", rng, 5, 7, 3)
	x := tensor.Randn(rng, 1, 4, 5)
	labels := []int{0, 2, 1, 2}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		out := mlp.Forward(g, g.Const(x))
		return g, g.CrossEntropyLogits(out, labels)
	})
}

func TestGradElementwiseChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 0.5, 2, 3))
	q := ps.New("q", tensor.Randn(rng, 0.5, 2, 3))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		a, b := g.Param(p), g.Param(q)
		y := g.Mul(g.Tanh(a), g.Sigmoid(b))
		y = g.Add(y, g.Square(g.Sub(a, b)))
		y = g.Sub(y, g.Scale(g.Exp(g.Scale(a, 0.1)), 0.5))
		return g, g.Mean(y)
	})
}

func TestGradDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 0.5, 2, 2))
	q := ps.New("q", tensor.RandUniform(rng, 1, 2, 2, 2))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		return g, g.Mean(g.Div(g.Param(p), g.Param(q)))
	})
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 3, 4))
	w := tensor.Randn(rng, 1, 3, 4)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		s := g.SoftmaxLastDim(g.Param(p))
		return g, g.Mean(g.Mul(s, g.Const(w)))
	})
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := NewParamSet()
	x := ps.New("x", tensor.Randn(rng, 1, 4, 6))
	ln := NewLayerNorm(ps, "ln", 6)
	w := tensor.Randn(rng, 1, 4, 6)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		y := ln.Forward(g, g.Param(x))
		return g, g.Mean(g.Mul(y, g.Const(w)))
	})
}

func gradCheckMatMulAndSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	a := ps.New("a", tensor.Randn(rng, 1, 3, 4))
	b := ps.New("b", tensor.Randn(rng, 1, 4, 6))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		prod := g.MatMul(g.Param(a), g.Param(b)) // [3,6]
		left := g.SliceCols(prod, 0, 3)
		right := g.SliceCols(prod, 3, 6)
		top := g.SliceRows(prod, 0, 2)
		cat := g.ConcatCols(left, right)
		catR := g.ConcatRows(top, top)
		return g, g.Add(g.Mean(g.Square(cat)), g.Mean(catR))
	})
}

func TestGradMatMulAndSlices(t *testing.T) { gradCheckMatMulAndSlices(t) }

func gradCheckBMMTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := NewParamSet()
	a := ps.New("a", tensor.Randn(rng, 1, 2, 3, 4))
	b := ps.New("b", tensor.Randn(rng, 1, 2, 3, 4))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		prod := g.BMM(g.Param(a), g.TransposeLast2(g.Param(b))) // [2,3,3]
		return g, g.Mean(g.Square(prod))
	})
}

func TestGradBMMTranspose(t *testing.T) { gradCheckBMMTranspose(t) }

func TestGradReshapeMeanTimeSelectStack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	a := ps.New("a", tensor.Randn(rng, 1, 2, 3, 4))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		x := g.Param(a)
		pooled := g.MeanTime(x) // [2,4]
		t0 := g.SelectTime(x, 0)
		t2 := g.SelectTime(x, 2)
		restacked := g.StackTime([]*Node{t0, t2, pooled}) // [2,3,4]
		flat := g.Reshape(restacked, 6, 4)
		return g, g.Mean(g.Square(flat))
	})
}

func TestGradSplitMergeHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := NewParamSet()
	a := ps.New("a", tensor.Randn(rng, 1, 2, 3, 8))
	w := tensor.Randn(rng, 1, 2, 3, 8)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		x := g.SplitHeads(g.Param(a), 4)
		y := g.MergeHeads(x, 4)
		return g, g.Mean(g.Mul(y, g.Const(w)))
	})
}

func TestSplitMergeHeadsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraph()
	x := tensor.Randn(rng, 1, 3, 5, 12)
	y := g.MergeHeads(g.SplitHeads(g.Const(x), 3), 3)
	for i := range x.Data {
		if x.Data[i] != y.Value.Data[i] {
			t.Fatal("SplitHeads then MergeHeads must be identity")
		}
	}
}

func gradCheckTransformerEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ps := NewParamSet()
	enc := NewTransformerEncoder(ps, "enc", rng, 5, 8, 2, 12, 1, 0)
	head := NewLinear(ps, "head", rng, 8, 1)
	x := tensor.Randn(rng, 1, 2, 4, 5)
	labels := []float64{1, 0}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		h := enc.EncodePooled(g, g.Const(x), rng, false)
		return g, g.BCEWithLogits(head.Forward(g, h), labels)
	})
}

func TestGradTransformerEncoder(t *testing.T) { gradCheckTransformerEncoder(t) }

func gradCheckLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ps := NewParamSet()
	lstm := NewLSTM(ps, "lstm", rng, 3, 4)
	head := NewLinear(ps, "head", rng, 4, 1)
	x := tensor.Randn(rng, 1, 2, 3, 3)
	labels := []float64{0, 1}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		_, last := lstm.Forward(g, g.Const(x))
		return g, g.BCEWithLogits(head.Forward(g, last), labels)
	})
}

func TestGradLSTM(t *testing.T) { gradCheckLSTM(t) }

// TestGradParallelKernels re-runs the finite-difference gradient checks
// with the parallel runtime forced on (4 workers, zero serial-fallback
// threshold), so the backward passes through the row-sharded MatMul/BMM
// kernels and the parallel elementwise/pooling paths stay verified against
// numerical gradients, not just the serial kernels.
func TestGradParallelKernels(t *testing.T) {
	prevW := tensor.SetParallelism(4)
	prevT := tensor.SetMinParallelWork(1)
	defer func() {
		tensor.SetParallelism(prevW)
		tensor.SetMinParallelWork(prevT)
	}()
	t.Run("MatMulAndSlices", gradCheckMatMulAndSlices)
	t.Run("BMMTranspose", gradCheckBMMTranspose)
	t.Run("TransformerEncoder", gradCheckTransformerEncoder)
	t.Run("LSTM", gradCheckLSTM)
}

func TestGradGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ps := NewParamSet()
	gru := NewGRU(ps, "gru", rng, 3, 4)
	head := NewLinear(ps, "head", rng, 4, 1)
	x := tensor.Randn(rng, 1, 2, 3, 3)
	labels := []float64{0, 1}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		_, last := gru.Forward(g, g.Const(x))
		return g, g.BCEWithLogits(head.Forward(g, last), labels)
	})
}

func TestGradBiLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ps := NewParamSet()
	bi := NewBiLSTM(ps, "bi", rng, 3, 2)
	head := NewLinear(ps, "head", rng, 4, 1)
	x := tensor.Randn(rng, 1, 2, 3, 3)
	labels := []float64{1, 1}
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		seq := bi.Forward(g, g.Const(x))
		return g, g.BCEWithLogits(head.Forward(g, g.MeanTime(seq)), labels)
	})
}

func TestGRLReversesGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 2, 2))

	// Loss without GRL.
	g1 := NewGraph()
	l1 := g1.Mean(g1.Square(g1.Param(p)))
	g1.Backward(l1)
	plain := p.Grad.Clone()
	ps.ZeroGrad()

	// Same loss through GRL(lambda=2): gradient should be -2x the plain one.
	g2 := NewGraph()
	l2 := g2.Mean(g2.Square(g2.GRL(g2.Param(p), 2)))
	g2.Backward(l2)
	for i := range plain.Data {
		want := -2 * plain.Data[i]
		if math.Abs(p.Grad.Data[i]-want) > 1e-12 {
			t.Fatalf("GRL grad[%d]=%v want %v", i, p.Grad.Data[i], want)
		}
	}
}

func TestGradGRLNumeric(t *testing.T) {
	// GRL is intentionally NOT the gradient of its forward function, so
	// verify composition behaviour analytically instead: loss built on a
	// GRL output must push parameters in the ascent direction.
	rng := rand.New(rand.NewSource(17))
	ps := NewParamSet()
	p := ps.New("p", tensor.RandUniform(rng, 0.5, 1.5, 3))
	g := NewGraph()
	loss := g.Mean(g.Square(g.GRL(g.Param(p), 1)))
	g.Backward(loss)
	for i, v := range p.Value.Data {
		if p.Grad.Data[i]*v >= 0 {
			t.Fatal("GRL gradient must point opposite the true gradient")
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g := NewGraph()
	x := tensor.RandUniform(rng, 1, 2, 100)
	eval := g.Dropout(g.Const(x), 0.5, rng, false)
	for i := range x.Data {
		if eval.Value.Data[i] != x.Data[i] {
			t.Fatal("dropout must be identity in eval mode")
		}
	}
	train := g.Dropout(g.Const(x), 0.5, rng, true)
	zeros := 0
	for _, v := range train.Value.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Fatalf("dropout rate 0.5 zeroed %d/100 elements", zeros)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	g := NewGraph()
	n := g.Const(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-scalar Backward")
		}
	}()
	g.Backward(n)
}

func TestParamSetSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ps := NewParamSet()
	NewLinear(ps, "l", rng, 3, 2)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	orig := ps.Get("l.W").Value.Clone()
	ps.Get("l.W").Value.Fill(0)
	if err := ps.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range orig.Data {
		if ps.Get("l.W").Value.Data[i] != orig.Data[i] {
			t.Fatal("Load did not restore saved values")
		}
	}
}
