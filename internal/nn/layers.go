package nn

import (
	"math/rand"
	"strconv"
)

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B *Param
	In   int
	Out  int
}

// NewLinear creates a Xavier-initialized linear layer and registers its
// parameters under the given name prefix.
func NewLinear(ps *ParamSet, prefix string, rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W:   ps.New(prefix+".W", XavierUniform(rng, in, out)),
		B:   ps.New(prefix+".b", Ones(out).Reshape(out)).zeroed(),
		In:  in,
		Out: out,
	}
}

// zeroed resets a parameter value to zero (bias initialization helper).
func (p *Param) zeroed() *Param {
	p.Value.Zero()
	return p
}

// Forward applies the layer to a 2-D input [m,in], producing [m,out].
func (l *Linear) Forward(g *Graph, x *Node) *Node {
	return g.AddBias(g.MatMul(x, g.Param(l.W)), g.Param(l.B))
}

// Forward3D applies the layer independently to every timestep of a
// [B,T,in] input, producing [B,T,out].
func (l *Linear) Forward3D(g *Graph, x *Node) *Node {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	flat := g.Reshape(x, b*t, l.In)
	out := l.Forward(g, flat)
	return g.Reshape(out, b, t, l.Out)
}

// MLP is a stack of linear layers with ReLU activations between them
// (no activation after the final layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes=[64,32,1]
// creates 64→32→1.
func NewMLP(ps *ParamSet, prefix string, rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP requires at least an input and output size")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(ps, prefixIndex(prefix, i), rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Forward applies the MLP to a 2-D input.
func (m *MLP) Forward(g *Graph, x *Node) *Node {
	for i, l := range m.Layers {
		x = l.Forward(g, x)
		if i+1 < len(m.Layers) {
			x = g.ReLU(x)
		}
	}
	return x
}

// LayerNormModule owns the gain/bias parameters of one layer norm.
type LayerNormModule struct {
	Gamma, Beta *Param
}

// NewLayerNorm creates a layer norm over a final dimension of size n.
func NewLayerNorm(ps *ParamSet, prefix string, n int) *LayerNormModule {
	return &LayerNormModule{
		Gamma: ps.New(prefix+".gamma", Ones(n)),
		Beta:  ps.New(prefix+".beta", Ones(n)).zeroed(),
	}
}

// Forward normalizes the final dimension of x.
func (l *LayerNormModule) Forward(g *Graph, x *Node) *Node {
	return g.LayerNorm(x, g.Param(l.Gamma), g.Param(l.Beta))
}

func prefixIndex(prefix string, i int) string {
	return prefix + "." + strconv.Itoa(i)
}
