// Package nn implements a small tape-based reverse-mode automatic
// differentiation engine and the neural building blocks LogSynergy and its
// baselines are made of: linear layers, layer normalization, multi-head
// attention, transformer encoders, LSTM/GRU/BiLSTM cells, a gradient
// reversal layer, and classification losses.
//
// Usage pattern: construct one Graph per training step, lift parameters and
// inputs into Nodes, compose operations, call Backward on the scalar loss,
// and hand the accumulated parameter gradients to an optimizer from
// internal/nn/optim.
package nn

import (
	"fmt"

	"logsynergy/internal/tensor"
)

// Node is one value on the autodiff tape. Value is the forward result;
// grad (allocated lazily) accumulates dLoss/dValue during Backward.
type Node struct {
	Value *tensor.Tensor

	grad      *tensor.Tensor
	needsGrad bool
	backward  func(g *tensor.Tensor)
}

// Grad returns the accumulated gradient for this node, or nil if no
// gradient flowed into it (or it does not require one).
func (n *Node) Grad() *tensor.Tensor { return n.grad }

// ensureGrad allocates the gradient buffer on first use.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.grad == nil {
		n.grad = tensor.New(n.Value.Shape...)
	}
	return n.grad
}

// accumulate adds g into the node's gradient buffer if the node requires a
// gradient. It is the only way upstream gradients reach a node.
func (n *Node) accumulate(g *tensor.Tensor) {
	if !n.needsGrad {
		return
	}
	tensor.AddInPlace(n.ensureGrad(), g)
}

// Graph is a linear tape of nodes in creation order. Creation order is a
// valid topological order because every operation's inputs already exist
// when the operation node is appended.
type Graph struct {
	nodes []*Node
}

// NewGraph returns an empty tape.
func NewGraph() *Graph { return &Graph{} }

// NumNodes reports how many nodes are on the tape (useful in tests).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// add registers a node produced by an operation whose inputs are parents.
// The node requires a gradient iff any parent does.
func (g *Graph) add(value *tensor.Tensor, backward func(gr *tensor.Tensor), parents ...*Node) *Node {
	n := &Node{Value: value, backward: backward}
	for _, p := range parents {
		if p.needsGrad {
			n.needsGrad = true
			break
		}
	}
	g.nodes = append(g.nodes, n)
	return n
}

// Const lifts a tensor onto the tape as a constant input: gradients are
// neither required nor propagated through it.
func (g *Graph) Const(t *tensor.Tensor) *Node {
	n := &Node{Value: t}
	g.nodes = append(g.nodes, n)
	return n
}

// Param lifts a trainable parameter onto the tape. Gradients accumulate
// directly into p.Grad so the optimizer sees them without copying.
func (g *Graph) Param(p *Param) *Node {
	n := &Node{Value: p.Value, grad: p.Grad, needsGrad: true}
	g.nodes = append(g.nodes, n)
	return n
}

// Backward runs reverse-mode differentiation from the scalar loss node.
func (g *Graph) Backward(loss *Node) {
	if loss.Value.Size() != 1 {
		panic(fmt.Sprintf("nn: Backward requires a scalar loss, got shape %v", loss.Value.Shape))
	}
	if !loss.needsGrad {
		return // loss does not depend on any parameter
	}
	lg := loss.ensureGrad()
	lg.Fill(1)
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.backward != nil && n.needsGrad && n.grad != nil {
			n.backward(n.grad)
		}
	}
}
