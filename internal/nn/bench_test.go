package nn

import (
	"math/rand"
	"testing"

	"logsynergy/internal/tensor"
)

// BenchmarkTransformerForward measures one encoder forward pass at the
// CPU-scale geometry used by the experiments (B=64, T=10, D=32).
func BenchmarkTransformerForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	enc := NewTransformerEncoder(ps, "enc", rng, 32, 32, 2, 64, 2, 0)
	x := tensor.Randn(rng, 1, 64, 10, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		enc.EncodePooled(g, g.Const(x), rng, false)
	}
}

// BenchmarkTransformerTrainStep measures forward+backward+grad at the same
// geometry.
func BenchmarkTransformerTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	enc := NewTransformerEncoder(ps, "enc", rng, 32, 32, 2, 64, 2, 0)
	head := NewLinear(ps, "head", rng, 32, 1)
	x := tensor.Randn(rng, 1, 64, 10, 32)
	labels := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		h := enc.EncodePooled(g, g.Const(x), rng, true)
		loss := g.BCEWithLogits(head.Forward(g, h), labels)
		g.Backward(loss)
		ps.ZeroGrad()
	}
}

// BenchmarkLSTMForward measures the recurrent baseline path.
func BenchmarkLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	lstm := NewLSTM(ps, "lstm", rng, 32, 32)
	x := tensor.Randn(rng, 1, 64, 10, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		lstm.Forward(g, g.Const(x))
	}
}

// BenchmarkMatMul measures the core kernel at a typical layer size.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 640, 32)
	w := tensor.Randn(rng, 1, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}
