package nn

import (
	"fmt"

	"logsynergy/internal/tensor"
)

// MatMul returns the matrix product of 2-D nodes a [m,k] and b [k,n].
func (g *Graph) MatMul(a, b *Node) *Node {
	out := tensor.MatMul(a.Value, b.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		if a.needsGrad {
			ga := tensor.MatMul(gr, tensor.Transpose(b.Value))
			a.accumulate(ga)
		}
		if b.needsGrad {
			gb := tensor.MatMul(tensor.Transpose(a.Value), gr)
			b.accumulate(gb)
		}
	}, a, b)
}

// BMM returns the batched matrix product of 3-D nodes a [b,m,k], b [b,k,n].
func (g *Graph) BMM(a, b *Node) *Node {
	out := tensor.BMM(a.Value, b.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		if a.needsGrad {
			ga := tensor.BMM(gr, tensor.TransposeLast2(b.Value))
			a.accumulate(ga)
		}
		if b.needsGrad {
			gb := tensor.BMM(tensor.TransposeLast2(a.Value), gr)
			b.accumulate(gb)
		}
	}, a, b)
}

// Transpose returns the transpose of a 2-D node.
func (g *Graph) Transpose(a *Node) *Node {
	out := tensor.Transpose(a.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Transpose(gr))
	}, a)
}

// TransposeLast2 swaps the last two dimensions of a 3-D node.
func (g *Graph) TransposeLast2(a *Node) *Node {
	out := tensor.TransposeLast2(a.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.TransposeLast2(gr))
	}, a)
}

// Reshape returns a node viewing the same elements with a new shape. The
// output aliases the input's backing array (no copy): graph operations
// never mutate their inputs' values, so the view is safe on the forward
// path, and the backward pass likewise reshapes the upstream gradient as a
// view (accumulate only reads it).
func (g *Graph) Reshape(a *Node, shape ...int) *Node {
	out := a.Value.Reshape(shape...)
	inShape := a.Value.Shape
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(gr.Reshape(inShape...))
	}, a)
}

// AddBias adds a bias vector b [n] to every length-n row of x, where x's
// final dimension is n (x may be 2-D or 3-D).
func (g *Graph) AddBias(x, b *Node) *Node {
	n := b.Value.Size()
	if x.Value.Shape[len(x.Value.Shape)-1] != n {
		panic(fmt.Sprintf("nn: AddBias bias size %d does not match last dim of %v", n, x.Value.Shape))
	}
	out := x.Value.Clone()
	rows := out.Size() / n
	tensor.ParallelRange(rows, rows*n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := out.Data[r*n : (r+1)*n]
			for j := range row {
				row[j] += b.Value.Data[j]
			}
		}
	})
	return g.add(out, func(gr *tensor.Tensor) {
		x.accumulate(gr)
		if b.needsGrad {
			gb := tensor.New(n)
			for r := 0; r < rows; r++ {
				row := gr.Data[r*n : (r+1)*n]
				for j := range row {
					gb.Data[j] += row[j]
				}
			}
			b.accumulate(gb)
		}
	}, x, b)
}

// ConcatCols concatenates 2-D nodes horizontally: [m,n1] ++ [m,n2] -> [m,n1+n2].
func (g *Graph) ConcatCols(a, b *Node) *Node {
	m, n1 := a.Value.Rows(), a.Value.Cols()
	if b.Value.Rows() != m {
		panic(fmt.Sprintf("nn: ConcatCols row mismatch %v vs %v", a.Value.Shape, b.Value.Shape))
	}
	n2 := b.Value.Cols()
	out := tensor.New(m, n1+n2)
	for i := 0; i < m; i++ {
		copy(out.Data[i*(n1+n2):], a.Value.Data[i*n1:(i+1)*n1])
		copy(out.Data[i*(n1+n2)+n1:], b.Value.Data[i*n2:(i+1)*n2])
	}
	return g.add(out, func(gr *tensor.Tensor) {
		if a.needsGrad {
			ga := tensor.New(m, n1)
			for i := 0; i < m; i++ {
				copy(ga.Data[i*n1:(i+1)*n1], gr.Data[i*(n1+n2):])
			}
			a.accumulate(ga)
		}
		if b.needsGrad {
			gb := tensor.New(m, n2)
			for i := 0; i < m; i++ {
				copy(gb.Data[i*n2:(i+1)*n2], gr.Data[i*(n1+n2)+n1:i*(n1+n2)+n1+n2])
			}
			b.accumulate(gb)
		}
	}, a, b)
}

// SliceCols selects columns [start,end) of a 2-D node.
func (g *Graph) SliceCols(a *Node, start, end int) *Node {
	m, n := a.Value.Rows(), a.Value.Cols()
	if start < 0 || end > n || start >= end {
		panic(fmt.Sprintf("nn: SliceCols [%d,%d) out of range for %d cols", start, end, n))
	}
	w := end - start
	out := tensor.New(m, w)
	for i := 0; i < m; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Value.Data[i*n+start:i*n+end])
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(m, n)
		for i := 0; i < m; i++ {
			copy(ga.Data[i*n+start:i*n+end], gr.Data[i*w:(i+1)*w])
		}
		a.accumulate(ga)
	}, a)
}

// SliceRows selects rows [start,end) of a 2-D node.
func (g *Graph) SliceRows(a *Node, start, end int) *Node {
	m, n := a.Value.Rows(), a.Value.Cols()
	if start < 0 || end > m || start >= end {
		panic(fmt.Sprintf("nn: SliceRows [%d,%d) out of range for %d rows", start, end, m))
	}
	h := end - start
	out := tensor.New(h, n)
	copy(out.Data, a.Value.Data[start*n:end*n])
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(m, n)
		copy(ga.Data[start*n:end*n], gr.Data)
		a.accumulate(ga)
	}, a)
}

// ConcatRows concatenates 2-D nodes vertically: [m1,n] ++ [m2,n] -> [m1+m2,n].
func (g *Graph) ConcatRows(a, b *Node) *Node {
	n := a.Value.Cols()
	if b.Value.Cols() != n {
		panic(fmt.Sprintf("nn: ConcatRows col mismatch %v vs %v", a.Value.Shape, b.Value.Shape))
	}
	m1, m2 := a.Value.Rows(), b.Value.Rows()
	out := tensor.New(m1+m2, n)
	copy(out.Data, a.Value.Data)
	copy(out.Data[m1*n:], b.Value.Data)
	return g.add(out, func(gr *tensor.Tensor) {
		if a.needsGrad {
			ga := tensor.New(m1, n)
			copy(ga.Data, gr.Data[:m1*n])
			a.accumulate(ga)
		}
		if b.needsGrad {
			gb := tensor.New(m2, n)
			copy(gb.Data, gr.Data[m1*n:])
			b.accumulate(gb)
		}
	}, a, b)
}

// GatherRows selects rows of a 2-D node by index (indices may repeat),
// producing [len(idx), n]. Gradients scatter-add back to the source rows.
func (g *Graph) GatherRows(a *Node, idx []int) *Node {
	m, n := a.Value.Rows(), a.Value.Cols()
	out := tensor.New(len(idx), n)
	for i, j := range idx {
		if j < 0 || j >= m {
			panic(fmt.Sprintf("nn: GatherRows index %d out of range for %d rows", j, m))
		}
		copy(out.Data[i*n:(i+1)*n], a.Value.Data[j*n:(j+1)*n])
	}
	indices := append([]int(nil), idx...)
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(m, n)
		for i, j := range indices {
			dst := ga.Data[j*n : (j+1)*n]
			src := gr.Data[i*n : (i+1)*n]
			for k := range dst {
				dst[k] += src[k]
			}
		}
		a.accumulate(ga)
	}, a)
}

// SelectTime extracts timestep t from a [B,T,D] node, producing [B,D].
func (g *Graph) SelectTime(a *Node, t int) *Node {
	if a.Value.Dims() != 3 {
		panic(fmt.Sprintf("nn: SelectTime requires 3-D input, got %v", a.Value.Shape))
	}
	b, tt, d := a.Value.Shape[0], a.Value.Shape[1], a.Value.Shape[2]
	if t < 0 || t >= tt {
		panic(fmt.Sprintf("nn: SelectTime index %d out of range for %d steps", t, tt))
	}
	out := tensor.New(b, d)
	for i := 0; i < b; i++ {
		copy(out.Data[i*d:(i+1)*d], a.Value.Data[(i*tt+t)*d:(i*tt+t+1)*d])
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(b, tt, d)
		for i := 0; i < b; i++ {
			copy(ga.Data[(i*tt+t)*d:(i*tt+t+1)*d], gr.Data[i*d:(i+1)*d])
		}
		a.accumulate(ga)
	}, a)
}

// StackTime stacks T nodes of shape [B,D] into a [B,T,D] node.
func (g *Graph) StackTime(steps []*Node) *Node {
	if len(steps) == 0 {
		panic("nn: StackTime requires at least one step")
	}
	b, d := steps[0].Value.Rows(), steps[0].Value.Cols()
	t := len(steps)
	out := tensor.New(b, t, d)
	for s, n := range steps {
		if n.Value.Rows() != b || n.Value.Cols() != d {
			panic(fmt.Sprintf("nn: StackTime step %d has shape %v, want [%d %d]", s, n.Value.Shape, b, d))
		}
		for i := 0; i < b; i++ {
			copy(out.Data[(i*t+s)*d:(i*t+s+1)*d], n.Value.Data[i*d:(i+1)*d])
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		for s, n := range steps {
			if !n.needsGrad {
				continue
			}
			gs := tensor.New(b, d)
			for i := 0; i < b; i++ {
				copy(gs.Data[i*d:(i+1)*d], gr.Data[(i*t+s)*d:(i*t+s+1)*d])
			}
			n.accumulate(gs)
		}
	}, steps...)
}

// MaxTime takes the element-wise maximum of a [B,T,D] node over its time
// dimension, producing [B,D]. Gradients flow to the argmax positions.
// Max-pooling matters for sequence anomaly detection: a window is
// anomalous if it *contains* an anomalous event, which max represents
// directly while mean dilutes a single event by 1/T.
func (g *Graph) MaxTime(a *Node) *Node {
	if a.Value.Dims() != 3 {
		panic(fmt.Sprintf("nn: MaxTime requires 3-D input, got %v", a.Value.Shape))
	}
	b, t, d := a.Value.Shape[0], a.Value.Shape[1], a.Value.Shape[2]
	out := tensor.New(b, d)
	argmax := make([]int, b*d)
	tensor.ParallelRange(b, b*t*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < d; j++ {
				best := a.Value.Data[(i*t)*d+j]
				bestS := 0
				for s := 1; s < t; s++ {
					if v := a.Value.Data[(i*t+s)*d+j]; v > best {
						best, bestS = v, s
					}
				}
				out.Data[i*d+j] = best
				argmax[i*d+j] = bestS
			}
		}
	})
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(b, t, d)
		for i := 0; i < b; i++ {
			for j := 0; j < d; j++ {
				s := argmax[i*d+j]
				ga.Data[(i*t+s)*d+j] = gr.Data[i*d+j]
			}
		}
		a.accumulate(ga)
	}, a)
}

// MeanTime averages a [B,T,D] node over its time dimension, producing [B,D].
func (g *Graph) MeanTime(a *Node) *Node {
	if a.Value.Dims() != 3 {
		panic(fmt.Sprintf("nn: MeanTime requires 3-D input, got %v", a.Value.Shape))
	}
	b, t, d := a.Value.Shape[0], a.Value.Shape[1], a.Value.Shape[2]
	out := tensor.New(b, d)
	ft := float64(t)
	tensor.ParallelRange(b, b*t*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*d : (i+1)*d]
			for s := 0; s < t; s++ {
				row := a.Value.Data[(i*t+s)*d : (i*t+s+1)*d]
				for j := range row {
					orow[j] += row[j]
				}
			}
			for j := range orow {
				orow[j] /= ft
			}
		}
	})
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(b, t, d)
		tensor.ParallelRange(b, b*t*d, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				grow := gr.Data[i*d : (i+1)*d]
				for s := 0; s < t; s++ {
					arow := ga.Data[(i*t+s)*d : (i*t+s+1)*d]
					for j := range arow {
						arow[j] = grow[j] / ft
					}
				}
			}
		})
		a.accumulate(ga)
	}, a)
}
