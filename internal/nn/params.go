package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"logsynergy/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient. Parameters are
// created once per model and lifted onto each step's Graph with Graph.Param.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam wraps an initialized value tensor as a named parameter.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ParamSet is an ordered collection of parameters, the unit optimizers and
// serialization operate on. Order is insertion order, which is stable for a
// fixed model construction sequence.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers a parameter; duplicate names panic (they would silently
// break serialization round trips).
func (s *ParamSet) Add(p *Param) *Param {
	if _, dup := s.byName[p.Name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter name %q", p.Name))
	}
	s.params = append(s.params, p)
	s.byName[p.Name] = p
	return p
}

// New initializes and registers a parameter using init to fill its value.
func (s *ParamSet) New(name string, value *tensor.Tensor) *Param {
	return s.Add(NewParam(name, value))
}

// All returns the parameters in registration order.
func (s *ParamSet) All() []*Param { return s.params }

// Get returns the parameter with the given name, or nil.
func (s *ParamSet) Get(name string) *Param { return s.byName[name] }

// Merge registers every parameter of other into s.
func (s *ParamSet) Merge(other *ParamSet) {
	for _, p := range other.params {
		s.Add(p)
	}
}

// ZeroGrad clears every parameter's gradient.
func (s *ParamSet) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count.
func (s *ParamSet) NumParams() int {
	n := 0
	for _, p := range s.params {
		n += p.Value.Size()
	}
	return n
}

// GradNorm returns the global L2 norm across every parameter gradient.
func (s *ParamSet) GradNorm() float64 {
	sum := 0.0
	for _, p := range s.params {
		for _, v := range p.Grad.Data {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// ClipGradNorm rescales all gradients so their global norm is at most max.
func (s *ParamSet) ClipGradNorm(max float64) {
	norm := s.GradNorm()
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range s.params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}

// savedParam is the on-disk form of one parameter.
type savedParam struct {
	Name  string    `json:"name"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// Save serializes every parameter value as JSON.
func (s *ParamSet) Save(w io.Writer) error {
	out := make([]savedParam, 0, len(s.params))
	for _, p := range s.params {
		out = append(out, savedParam{Name: p.Name, Shape: p.Value.Shape, Data: p.Value.Data})
	}
	return json.NewEncoder(w).Encode(out)
}

// Load restores parameter values saved with Save. Every saved parameter must
// exist in the set with a matching shape; extra live parameters are left
// untouched.
func (s *ParamSet) Load(r io.Reader) error {
	var in []savedParam
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("nn: decoding parameters: %w", err)
	}
	for _, sp := range in {
		p := s.byName[sp.Name]
		if p == nil {
			return fmt.Errorf("nn: unknown parameter %q in checkpoint", sp.Name)
		}
		// Validate against the live parameter without materializing a tensor
		// from checkpoint-supplied dimensions: a corrupted shape whose
		// product disagrees with the data length must be a descriptive
		// error, not a tensor-construction panic.
		if !shapeEqual(sp.Shape, p.Value.Shape) {
			return fmt.Errorf("nn: parameter %q shape %v does not match checkpoint %v",
				sp.Name, p.Value.Shape, sp.Shape)
		}
		if len(sp.Data) != p.Value.Size() {
			return fmt.Errorf("nn: parameter %q has %d checkpoint values for shape %v (want %d)",
				sp.Name, len(sp.Data), sp.Shape, p.Value.Size())
		}
		copy(p.Value.Data, sp.Data)
	}
	return nil
}

// shapeEqual reports whether two dimension lists are identical.
func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// XavierUniform returns a [fanIn,fanOut] tensor initialized with the
// Glorot/Xavier uniform scheme.
func XavierUniform(rng *rand.Rand, fanIn, fanOut int) *tensor.Tensor {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	return tensor.RandUniform(rng, -limit, limit, fanIn, fanOut)
}

// HeNormal returns a [fanIn,fanOut] tensor initialized with He-normal
// (Kaiming) initialization, suited to ReLU activations.
func HeNormal(rng *rand.Rand, fanIn, fanOut int) *tensor.Tensor {
	return tensor.Randn(rng, math.Sqrt(2/float64(fanIn)), fanIn, fanOut)
}

// Ones returns a vector of ones (layer-norm gain initialization).
func Ones(n int) *tensor.Tensor {
	t := tensor.New(n)
	t.Fill(1)
	return t
}
