package nn

import (
	"math/rand"

	"logsynergy/internal/tensor"
)

// LSTM is a single-layer long short-term memory network (Hochreiter &
// Schmidhuber, 1997), used by the DeepLog, LogAnomaly, PLELog, LogTAD and
// LogTransfer baselines. Gate order in the packed weight matrices is
// input, forget, cell candidate, output.
type LSTM struct {
	Wx, Wh, B *Param
	In, Hid   int
}

// NewLSTM creates an LSTM layer mapping inDim inputs to hid hidden units.
func NewLSTM(ps *ParamSet, prefix string, rng *rand.Rand, inDim, hid int) *LSTM {
	l := &LSTM{
		Wx:  ps.New(prefix+".wx", XavierUniform(rng, inDim, 4*hid)),
		Wh:  ps.New(prefix+".wh", XavierUniform(rng, hid, 4*hid)),
		B:   ps.New(prefix+".b", tensor.New(4*hid)),
		In:  inDim,
		Hid: hid,
	}
	// Forget-gate bias starts at 1 so early training does not erase state.
	for i := hid; i < 2*hid; i++ {
		l.B.Value.Data[i] = 1
	}
	return l
}

// Forward runs the LSTM over x [B,T,in]. It returns the stacked hidden
// states [B,T,hid] and the final hidden state [B,hid].
func (l *LSTM) Forward(g *Graph, x *Node) (seq, last *Node) {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	h := g.Const(tensor.New(b, l.Hid))
	c := g.Const(tensor.New(b, l.Hid))
	wx, wh, bias := g.Param(l.Wx), g.Param(l.Wh), g.Param(l.B)
	steps := make([]*Node, 0, t)
	for s := 0; s < t; s++ {
		xt := g.SelectTime(x, s)
		z := g.AddBias(g.Add(g.MatMul(xt, wx), g.MatMul(h, wh)), bias)
		i := g.Sigmoid(g.SliceCols(z, 0, l.Hid))
		f := g.Sigmoid(g.SliceCols(z, l.Hid, 2*l.Hid))
		cc := g.Tanh(g.SliceCols(z, 2*l.Hid, 3*l.Hid))
		o := g.Sigmoid(g.SliceCols(z, 3*l.Hid, 4*l.Hid))
		c = g.Add(g.Mul(f, c), g.Mul(i, cc))
		h = g.Mul(o, g.Tanh(c))
		steps = append(steps, h)
	}
	return g.StackTime(steps), h
}

// ForwardReversed runs the LSTM over x with time reversed, returning the
// per-step outputs re-reversed into the original order plus the final
// (i.e. earliest-timestep) state. Used to build bidirectional models.
func (l *LSTM) ForwardReversed(g *Graph, x *Node) (seq, last *Node) {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	h := g.Const(tensor.New(b, l.Hid))
	c := g.Const(tensor.New(b, l.Hid))
	wx, wh, bias := g.Param(l.Wx), g.Param(l.Wh), g.Param(l.B)
	steps := make([]*Node, t)
	for s := t - 1; s >= 0; s-- {
		xt := g.SelectTime(x, s)
		z := g.AddBias(g.Add(g.MatMul(xt, wx), g.MatMul(h, wh)), bias)
		i := g.Sigmoid(g.SliceCols(z, 0, l.Hid))
		f := g.Sigmoid(g.SliceCols(z, l.Hid, 2*l.Hid))
		cc := g.Tanh(g.SliceCols(z, 2*l.Hid, 3*l.Hid))
		o := g.Sigmoid(g.SliceCols(z, 3*l.Hid, 4*l.Hid))
		c = g.Add(g.Mul(f, c), g.Mul(i, cc))
		h = g.Mul(o, g.Tanh(c))
		steps[s] = h
	}
	return g.StackTime(steps), h
}

// BiLSTM pairs a forward and a backward LSTM and concatenates their
// per-step outputs, as used by the LogRobust baseline.
type BiLSTM struct {
	Fwd, Bwd *LSTM
	In, Hid  int
}

// NewBiLSTM creates a bidirectional LSTM; its output dimension is 2*hid.
func NewBiLSTM(ps *ParamSet, prefix string, rng *rand.Rand, inDim, hid int) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(ps, prefix+".fwd", rng, inDim, hid),
		Bwd: NewLSTM(ps, prefix+".bwd", rng, inDim, hid),
		In:  inDim,
		Hid: hid,
	}
}

// Forward returns per-step outputs [B,T,2*hid].
func (l *BiLSTM) Forward(g *Graph, x *Node) *Node {
	fseq, _ := l.Fwd.Forward(g, x)
	bseq, _ := l.Bwd.ForwardReversed(g, x)
	t := x.Value.Dim(1)
	out := make([]*Node, t)
	for s := 0; s < t; s++ {
		out[s] = g.ConcatCols(g.SelectTime(fseq, s), g.SelectTime(bseq, s))
	}
	return g.StackTime(out)
}

// StackedLSTM chains LSTM layers: each layer consumes the previous
// layer's per-step outputs. The paper's baseline configurations use two
// stacked LSTM layers (DeepLog, LogAnomaly, LogTAD, LogTransfer); the
// CPU-scale defaults use one, and this type makes the paper-exact
// configuration constructible.
type StackedLSTM struct {
	Layers []*LSTM
}

// NewStackedLSTM builds depth LSTM layers of width hid over inDim inputs.
func NewStackedLSTM(ps *ParamSet, prefix string, rng *rand.Rand, inDim, hid, depth int) *StackedLSTM {
	if depth < 1 {
		panic("nn: StackedLSTM depth must be at least 1")
	}
	s := &StackedLSTM{}
	dim := inDim
	for i := 0; i < depth; i++ {
		s.Layers = append(s.Layers, NewLSTM(ps, prefixIndex(prefix, i), rng, dim, hid))
		dim = hid
	}
	return s
}

// Forward runs the stack over x [B,T,in], returning the top layer's
// per-step outputs and final state.
func (s *StackedLSTM) Forward(g *Graph, x *Node) (seq, last *Node) {
	seq = x
	for _, l := range s.Layers {
		seq, last = l.Forward(g, seq)
	}
	return seq, last
}

// GRU is a single-layer gated recurrent unit network (Cho et al.; gate
// variants per Dey & Salem, 2017), used by the MetaLog baseline. Gate order
// in the packed matrices is update (z), reset (r), candidate (n).
type GRU struct {
	Wx, Wh, B *Param
	In, Hid   int
}

// NewGRU creates a GRU layer mapping inDim inputs to hid hidden units.
func NewGRU(ps *ParamSet, prefix string, rng *rand.Rand, inDim, hid int) *GRU {
	return &GRU{
		Wx:  ps.New(prefix+".wx", XavierUniform(rng, inDim, 3*hid)),
		Wh:  ps.New(prefix+".wh", XavierUniform(rng, hid, 3*hid)),
		B:   ps.New(prefix+".b", tensor.New(3*hid)),
		In:  inDim,
		Hid: hid,
	}
}

// Forward runs the GRU over x [B,T,in], returning stacked hidden states
// [B,T,hid] and the final state [B,hid].
func (l *GRU) Forward(g *Graph, x *Node) (seq, last *Node) {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	h := g.Const(tensor.New(b, l.Hid))
	wx, wh, bias := g.Param(l.Wx), g.Param(l.Wh), g.Param(l.B)
	steps := make([]*Node, 0, t)
	for s := 0; s < t; s++ {
		xt := g.SelectTime(x, s)
		xz := g.AddBias(g.MatMul(xt, wx), bias)
		hz := g.MatMul(h, wh)
		z := g.Sigmoid(g.Add(g.SliceCols(xz, 0, l.Hid), g.SliceCols(hz, 0, l.Hid)))
		r := g.Sigmoid(g.Add(g.SliceCols(xz, l.Hid, 2*l.Hid), g.SliceCols(hz, l.Hid, 2*l.Hid)))
		n := g.Tanh(g.Add(g.SliceCols(xz, 2*l.Hid, 3*l.Hid), g.Mul(r, g.SliceCols(hz, 2*l.Hid, 3*l.Hid))))
		// h' = (1-z)⊙n + z⊙h
		ones := tensor.New(b, l.Hid)
		ones.Fill(1)
		oneMinusZ := g.Sub(g.Const(ones), z)
		h = g.Add(g.Mul(oneMinusZ, n), g.Mul(z, h))
		steps = append(steps, h)
	}
	return g.StackTime(steps), h
}
