package nn

import (
	"math/rand"
	"testing"

	"logsynergy/internal/tensor"
)

// TestReshapeAliasesInput pins Reshape's aliasing contract: the output node
// views the input's backing array instead of copying it. Every activation
// the model reshapes (twice per forward step, on [B*T, D]-sized tensors)
// used to be cloned; the view keeps the forward path allocation-free.
func TestReshapeAliasesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := NewGraph()
	x := tensor.Randn(rng, 1, 2, 3, 4)
	n := g.Reshape(g.Const(x), 6, 4)

	if len(n.Value.Shape) != 2 || n.Value.Shape[0] != 6 || n.Value.Shape[1] != 4 {
		t.Fatalf("reshaped to %v, want [6 4]", n.Value.Shape)
	}
	if &n.Value.Data[0] != &x.Data[0] {
		t.Fatal("Reshape must view the input's backing array, not copy it")
	}
	// Writes through the source are visible through the view (and vice
	// versa) — the definition of aliasing.
	x.Data[5] = 42
	if n.Value.Data[5] != 42 {
		t.Fatal("view did not observe a write to the source")
	}
}

// TestReshapeGradientViewsUpstream pins the same contract on the backward
// pass: the gradient reaching the input is accumulated from a reshaped view
// of the upstream gradient, and lands correctly despite the aliasing.
func TestReshapeGradientViewsUpstream(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 2, 6))
	g := NewGraph()
	flat := g.Reshape(g.Param(p), 12)
	loss := g.Mean(g.Square(flat))
	g.Backward(loss)
	for i, v := range p.Value.Data {
		want := 2 * v / 12
		if diff := p.Grad.Data[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("grad[%d]=%v want %v", i, p.Grad.Data[i], want)
		}
	}
}

// TestReshapeChainStaysAliased checks that stacked reshapes (the model does
// Reshape(Reshape(x)) patterns via MaxTime/MeanTime plumbing) still share
// one backing array end to end.
func TestReshapeChainStaysAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := NewGraph()
	x := tensor.Randn(rng, 1, 4, 6)
	a := g.Reshape(g.Const(x), 2, 12)
	b := g.Reshape(a, 24)
	c := g.Reshape(b, 3, 8)
	if &c.Value.Data[0] != &x.Data[0] {
		t.Fatal("reshape chain must stay aliased to the original array")
	}
}
