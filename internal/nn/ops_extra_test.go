package nn

import (
	"math/rand"
	"testing"

	"logsynergy/internal/tensor"
)

func TestGradAddScalarLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 3, 3))
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		y := g.LeakyReLU(g.AddScalar(g.Param(p), 0.3), 0.1)
		return g, g.Mean(g.Square(y))
	})
}

func TestGradMeanRowsSum(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 4, 3))
	w := tensor.Randn(rng, 1, 3)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		m := g.MeanRows(g.Param(p))
		return g, g.Sum(g.Mul(m, g.Const(w)))
	})
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 5, 3))
	idx := []int{4, 0, 0, 2} // repeats exercise scatter-add
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		return g, g.Mean(g.Square(g.GatherRows(g.Param(p), idx)))
	})
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ps := NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 3, 2))
	target := tensor.Randn(rng, 1, 3, 2)
	checkGrads(t, ps, func() (*Graph, *Node) {
		g := NewGraph()
		return g, g.MSE(g.Param(p), target)
	})
}

func TestGradAttentionDropoutPath(t *testing.T) {
	// Dropout uses its own RNG stream; gradient-check with dropout
	// disabled but exercise the train path for crashes separately.
	rng := rand.New(rand.NewSource(24))
	ps := NewParamSet()
	attn := NewMultiHeadAttention(ps, "attn", rng, 8, 2, 0.5)
	x := tensor.Randn(rng, 1, 2, 3, 8)
	g := NewGraph()
	out := attn.Forward(g, g.Const(x), rng, true)
	loss := g.Mean(g.Square(out))
	g.Backward(loss)
	if loss.Value.Data[0] < 0 {
		t.Fatal("squared loss cannot be negative")
	}
}

func TestGatherRowsOutOfRangePanics(t *testing.T) {
	g := NewGraph()
	a := g.Const(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.GatherRows(a, []int{5})
}

func TestConstNeverAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := NewGraph()
	c := g.Const(tensor.Randn(rng, 1, 2, 2))
	loss := g.Mean(g.Square(c))
	g.Backward(loss) // no parameters: must be a no-op
	if c.Grad() != nil {
		t.Fatal("constants must not accumulate gradients")
	}
}

func TestDuplicateParamNamePanics(t *testing.T) {
	ps := NewParamSet()
	ps.New("x", tensor.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	ps.New("x", tensor.New(1))
}

func TestNumParamsAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := NewParamSet()
	NewLinear(a, "l", rng, 3, 2) // 3*2 + 2 = 8
	if a.NumParams() != 8 {
		t.Fatalf("NumParams=%d want 8", a.NumParams())
	}
	b := NewParamSet()
	NewLinear(b, "m", rng, 2, 2) // 6
	a.Merge(b)
	if a.NumParams() != 14 {
		t.Fatalf("merged NumParams=%d want 14", a.NumParams())
	}
	if a.Get("m.W") == nil {
		t.Fatal("merged param not found by name")
	}
}
