package nn

import (
	"math"
	"math/rand"

	"logsynergy/internal/tensor"
)

// Add returns a + b (identical shapes).
func (g *Graph) Add(a, b *Node) *Node {
	out := tensor.Add(a.Value, b.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(gr)
		b.accumulate(gr)
	}, a, b)
}

// Sub returns a - b (identical shapes).
func (g *Graph) Sub(a, b *Node) *Node {
	out := tensor.Sub(a.Value, b.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(gr)
		neg := tensor.Scale(gr, -1)
		b.accumulate(neg)
	}, a, b)
}

// Mul returns the element-wise product a ⊙ b.
func (g *Graph) Mul(a, b *Node) *Node {
	out := tensor.Mul(a.Value, b.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Mul(gr, b.Value))
		b.accumulate(tensor.Mul(gr, a.Value))
	}, a, b)
}

// Div returns the element-wise quotient a / b.
func (g *Graph) Div(a, b *Node) *Node {
	out := tensor.New(a.Value.Shape...)
	for i := range out.Data {
		out.Data[i] = a.Value.Data[i] / b.Value.Data[i]
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(gr.Shape...)
		gb := tensor.New(gr.Shape...)
		for i := range gr.Data {
			bv := b.Value.Data[i]
			ga.Data[i] = gr.Data[i] / bv
			gb.Data[i] = -gr.Data[i] * a.Value.Data[i] / (bv * bv)
		}
		a.accumulate(ga)
		b.accumulate(gb)
	}, a, b)
}

// Scale returns a * s for scalar constant s.
func (g *Graph) Scale(a *Node, s float64) *Node {
	out := tensor.Scale(a.Value, s)
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Scale(gr, s))
	}, a)
}

// AddScalar returns a + s element-wise for scalar constant s.
func (g *Graph) AddScalar(a *Node, s float64) *Node {
	out := a.Value.Clone()
	for i := range out.Data {
		out.Data[i] += s
	}
	return g.add(out, func(gr *tensor.Tensor) { a.accumulate(gr) }, a)
}

// Neg returns -a.
func (g *Graph) Neg(a *Node) *Node { return g.Scale(a, -1) }

// ReLU applies max(0, x) element-wise.
func (g *Graph) ReLU(a *Node) *Node {
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(gr.Shape...)
		for i, v := range a.Value.Data {
			if v > 0 {
				ga.Data[i] = gr.Data[i]
			}
		}
		a.accumulate(ga)
	}, a)
}

// LeakyReLU applies x if x>0 else slope*x.
func (g *Graph) LeakyReLU(a *Node, slope float64) *Node {
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = slope * v
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(gr.Shape...)
		for i, v := range a.Value.Data {
			if v > 0 {
				ga.Data[i] = gr.Data[i]
			} else {
				ga.Data[i] = slope * gr.Data[i]
			}
		}
		a.accumulate(ga)
	}, a)
}

// Tanh applies the hyperbolic tangent element-wise.
func (g *Graph) Tanh(a *Node) *Node {
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		out.Data[i] = math.Tanh(v)
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(gr.Shape...)
		for i := range gr.Data {
			y := out.Data[i]
			ga.Data[i] = gr.Data[i] * (1 - y*y)
		}
		a.accumulate(ga)
	}, a)
}

// Sigmoid applies the logistic function element-wise.
func (g *Graph) Sigmoid(a *Node) *Node {
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		out.Data[i] = sigmoid(v)
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(gr.Shape...)
		for i := range gr.Data {
			y := out.Data[i]
			ga.Data[i] = gr.Data[i] * y * (1 - y)
		}
		a.accumulate(ga)
	}, a)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Exp applies e^x element-wise.
func (g *Graph) Exp(a *Node) *Node {
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		out.Data[i] = math.Exp(v)
	}
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Mul(gr, out))
	}, a)
}

// Square applies x² element-wise.
func (g *Graph) Square(a *Node) *Node {
	out := tensor.Mul(a.Value, a.Value)
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.Mul(gr, a.Value)
		a.accumulate(tensor.Scale(ga, 2))
	}, a)
}

// Dropout zeroes each element with probability rate and scales survivors by
// 1/(1-rate) (inverted dropout). When train is false it is the identity.
func (g *Graph) Dropout(a *Node, rate float64, rng *rand.Rand, train bool) *Node {
	if !train || rate <= 0 {
		return a
	}
	keep := 1 - rate
	mask := tensor.New(a.Value.Shape...)
	out := tensor.New(a.Value.Shape...)
	for i, v := range a.Value.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
			out.Data[i] = v / keep
		}
	}
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Mul(gr, mask))
	}, a)
}

// GRL is the gradient reversal layer from unsupervised domain adaptation
// by backpropagation (Ganin & Lempitsky, 2015): identity on the forward
// pass, multiplication by -lambda on the backward pass.
func (g *Graph) GRL(a *Node, lambda float64) *Node {
	out := a.Value.Clone()
	return g.add(out, func(gr *tensor.Tensor) {
		a.accumulate(tensor.Scale(gr, -lambda))
	}, a)
}

// Mean reduces all elements to their scalar mean.
func (g *Graph) Mean(a *Node) *Node {
	n := float64(a.Value.Size())
	out := tensor.Scalar(tensor.Mean(a.Value))
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(a.Value.Shape...)
		ga.Fill(gr.Data[0] / n)
		a.accumulate(ga)
	}, a)
}

// Sum reduces all elements to their scalar sum.
func (g *Graph) Sum(a *Node) *Node {
	out := tensor.Scalar(tensor.Sum(a.Value))
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(a.Value.Shape...)
		ga.Fill(gr.Data[0])
		a.accumulate(ga)
	}, a)
}

// MeanRows reduces a [m,n] matrix to its per-column mean [n] over rows.
func (g *Graph) MeanRows(a *Node) *Node {
	m, n := a.Value.Rows(), a.Value.Cols()
	out := tensor.New(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += a.Value.Data[i*n+j]
		}
	}
	fm := float64(m)
	for j := range out.Data {
		out.Data[j] /= fm
	}
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				ga.Data[i*n+j] = gr.Data[j] / fm
			}
		}
		a.accumulate(ga)
	}, a)
}
