package optim

import (
	"math"
	"math/rand"
	"testing"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// quadraticLoss returns f(p) = mean((p - target)^2) built on a fresh graph.
func quadraticLoss(p *nn.Param, target *tensor.Tensor) float64 {
	g := nn.NewGraph()
	diff := g.Sub(g.Param(p), g.Const(target))
	loss := g.Mean(g.Square(diff))
	g.Backward(loss)
	return loss.Value.Data[0]
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := nn.NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 8))
	target := tensor.RandUniform(rng, -1, 1, 8)
	opt := NewAdamW(ps, 0.05)
	opt.WeightDecay = 0 // pure optimization test
	var last float64
	for i := 0; i < 500; i++ {
		last = quadraticLoss(p, target)
		opt.Step()
	}
	if last > 1e-4 {
		t.Fatalf("AdamW failed to converge, final loss %v", last)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := nn.NewParamSet()
	p := ps.New("p", tensor.Randn(rng, 1, 8))
	target := tensor.RandUniform(rng, -1, 1, 8)
	opt := NewSGD(ps, 0.1, 0.9)
	var last float64
	for i := 0; i < 300; i++ {
		last = quadraticLoss(p, target)
		opt.Step()
	}
	if last > 1e-6 {
		t.Fatalf("SGD failed to converge, final loss %v", last)
	}
}

func TestAdamWWeightDecayShrinksParams(t *testing.T) {
	ps := nn.NewParamSet()
	v := tensor.New(4)
	v.Fill(10)
	p := ps.New("p", v)
	opt := NewAdamW(ps, 0.01)
	opt.WeightDecay = 0.1
	// No gradient: only decay acts.
	for i := 0; i < 100; i++ {
		opt.Step()
	}
	for _, x := range p.Value.Data {
		if x >= 10 {
			t.Fatalf("weight decay did not shrink parameter: %v", x)
		}
	}
}

func TestStepZeroesGradients(t *testing.T) {
	ps := nn.NewParamSet()
	p := ps.New("p", tensor.New(2))
	p.Grad.Fill(3)
	NewAdamW(ps, 0.01).Step()
	if p.Grad.MaxAbs() != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestCosineScheduleEndpoints(t *testing.T) {
	ps := nn.NewParamSet()
	opt := NewAdamW(ps, 1.0)
	sched := NewCosineSchedule(opt, 0.1, 100)
	sched.Tick()
	if opt.LR() > 1.0 || opt.LR() < 0.99 {
		t.Fatalf("first tick LR=%v, want close to initial", opt.LR())
	}
	for i := 0; i < 200; i++ {
		sched.Tick()
	}
	if math.Abs(opt.LR()-0.1) > 1e-9 {
		t.Fatalf("final LR=%v want floor 0.1", opt.LR())
	}
}

func TestClipGradNorm(t *testing.T) {
	ps := nn.NewParamSet()
	p := ps.New("p", tensor.New(4))
	p.Grad.Fill(10)
	ps.ClipGradNorm(1)
	if n := ps.GradNorm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("clipped norm %v want 1", n)
	}
}
