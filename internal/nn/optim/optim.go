// Package optim provides the gradient-descent optimizers used to train
// LogSynergy and the baseline models: AdamW (the paper's optimizer) and
// SGD with momentum.
package optim

import (
	"math"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// Optimizer updates a parameter set from its accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// LR returns the current learning rate.
	LR() float64
	// SetLR overrides the learning rate (used by schedules).
	SetLR(lr float64)
}

// AdamW implements decoupled weight-decay Adam (Loshchilov & Hutter, 2019),
// the optimizer the paper trains LogSynergy with.
type AdamW struct {
	Params      *nn.ParamSet
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	lr   float64
	step int
	m    []*tensor.Tensor
	v    []*tensor.Tensor
}

// NewAdamW creates an AdamW optimizer with the conventional defaults
// beta1=0.9, beta2=0.999, eps=1e-8, weight decay 0.01.
func NewAdamW(ps *nn.ParamSet, lr float64) *AdamW {
	a := &AdamW{
		Params:      ps,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: 0.01,
		lr:          lr,
	}
	for _, p := range ps.All() {
		a.m = append(a.m, tensor.New(p.Value.Shape...))
		a.v = append(a.v, tensor.New(p.Value.Shape...))
	}
	return a
}

// LR returns the current learning rate.
func (a *AdamW) LR() float64 { return a.lr }

// SetLR overrides the learning rate.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// Step applies one AdamW update and zeroes all gradients.
func (a *AdamW) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.Params.All() {
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			gj := p.Grad.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.Value.Data[j] -= a.lr * (mhat/(math.Sqrt(vhat)+a.Eps) + a.WeightDecay*p.Value.Data[j])
		}
	}
	a.Params.ZeroGrad()
}

// SGD implements stochastic gradient descent with classical momentum.
type SGD struct {
	Params   *nn.ParamSet
	Momentum float64

	lr  float64
	vel []*tensor.Tensor
}

// NewSGD creates an SGD optimizer.
func NewSGD(ps *nn.ParamSet, lr, momentum float64) *SGD {
	s := &SGD{Params: ps, Momentum: momentum, lr: lr}
	for _, p := range ps.All() {
		s.vel = append(s.vel, tensor.New(p.Value.Shape...))
	}
	return s
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// SetLR overrides the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Step applies one SGD update and zeroes all gradients.
func (s *SGD) Step() {
	for i, p := range s.Params.All() {
		vel := s.vel[i]
		for j := range p.Value.Data {
			vel.Data[j] = s.Momentum*vel.Data[j] + p.Grad.Data[j]
			p.Value.Data[j] -= s.lr * vel.Data[j]
		}
	}
	s.Params.ZeroGrad()
}

// CosineSchedule anneals an optimizer's learning rate from its initial value
// to floor over totalSteps using a half-cosine curve. Call Tick once per
// optimizer step, before Step.
type CosineSchedule struct {
	opt        Optimizer
	initial    float64
	floor      float64
	totalSteps int
	step       int
}

// NewCosineSchedule wraps opt with cosine annealing.
func NewCosineSchedule(opt Optimizer, floor float64, totalSteps int) *CosineSchedule {
	return &CosineSchedule{opt: opt, initial: opt.LR(), floor: floor, totalSteps: totalSteps}
}

// Tick advances the schedule by one step and updates the learning rate.
func (c *CosineSchedule) Tick() {
	c.step++
	t := float64(c.step) / float64(c.totalSteps)
	if t > 1 {
		t = 1
	}
	c.opt.SetLR(c.floor + (c.initial-c.floor)*0.5*(1+math.Cos(math.Pi*t)))
}
