package nn

import (
	"fmt"
	"math"

	"logsynergy/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// (shape [m] or [m,1]) and labels in {0,1} (or soft labels in [0,1]).
// It fuses sigmoid and BCE for numerical stability:
// loss = mean( max(x,0) - x*y + log(1+exp(-|x|)) ).
func (g *Graph) BCEWithLogits(logits *Node, labels []float64) *Node {
	m := logits.Value.Size()
	if m != len(labels) {
		panic(fmt.Sprintf("nn: BCEWithLogits %d logits vs %d labels", m, len(labels)))
	}
	total := 0.0
	for i, x := range logits.Value.Data {
		y := labels[i]
		total += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	out := tensor.Scalar(total / float64(m))
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(logits.Value.Shape...)
		scale := gr.Data[0] / float64(m)
		for i, x := range logits.Value.Data {
			ga.Data[i] = scale * (sigmoid(x) - labels[i])
		}
		logits.accumulate(ga)
	}, logits)
}

// CrossEntropyLogits computes the mean categorical cross-entropy between
// logits [m,K] and integer class labels.
func (g *Graph) CrossEntropyLogits(logits *Node, labels []int) *Node {
	m, k := logits.Value.Rows(), logits.Value.Cols()
	if m != len(labels) {
		panic(fmt.Sprintf("nn: CrossEntropyLogits %d rows vs %d labels", m, len(labels)))
	}
	probs := tensor.SoftmaxLastDim(logits.Value)
	total := 0.0
	for i, y := range labels {
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: class label %d out of range [0,%d)", y, k))
		}
		total -= math.Log(math.Max(probs.Data[i*k+y], 1e-12))
	}
	out := tensor.Scalar(total / float64(m))
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(m, k)
		scale := gr.Data[0] / float64(m)
		for i, y := range labels {
			for j := 0; j < k; j++ {
				p := probs.Data[i*k+j]
				if j == y {
					p -= 1
				}
				ga.Data[i*k+j] = scale * p
			}
		}
		logits.accumulate(ga)
	}, logits)
}

// MSE computes the mean squared error between pred and a constant target of
// identical shape.
func (g *Graph) MSE(pred *Node, target *tensor.Tensor) *Node {
	if !pred.Value.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Value.Shape, target.Shape))
	}
	n := float64(pred.Value.Size())
	total := 0.0
	for i, v := range pred.Value.Data {
		d := v - target.Data[i]
		total += d * d
	}
	out := tensor.Scalar(total / n)
	return g.add(out, func(gr *tensor.Tensor) {
		ga := tensor.New(pred.Value.Shape...)
		scale := 2 * gr.Data[0] / n
		for i, v := range pred.Value.Data {
			ga.Data[i] = scale * (v - target.Data[i])
		}
		pred.accumulate(ga)
	}, pred)
}
