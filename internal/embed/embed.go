// Package embed provides the event-embedding stage of LogSynergy's pipeline
// (paper §III-C "Event Embedding"): mapping each interpretation sentence to
// a dense vector in a feature space shared by every system.
//
// The paper uses a pre-trained transformer (DistilBERT) and notes the
// specific model is not a contribution — any encoder with a shared feature
// space works. Offline, this package substitutes a deterministic hash
// embedder: every token gets a fixed pseudo-random unit vector derived from
// its hash, and a sentence embeds as the normalized weighted mean of its
// unigram and bigram vectors. The property the experiments rely on is
// preserved exactly: sentences sharing vocabulary land close together, and
// disjoint dialect vocabularies land far apart, independent of which
// system produced them.
package embed

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"

	"logsynergy/internal/tensor"
)

// Embedder maps text to fixed-dimension unit vectors. It is safe for
// concurrent use and caches token vectors.
type Embedder struct {
	// Dim is the embedding dimensionality.
	Dim int
	// BigramWeight blends word-order information into the bag-of-words
	// representation (0 disables bigrams).
	BigramWeight float64
	// SynonymWeight blends each token's synonym-class vector into the
	// representation. Pre-trained language models place synonyms close
	// together ("severed", "refused" and "unreachable" all embed near
	// "disconnected"); pure hash vectors are exactly orthogonal for
	// distinct tokens. This term restores that smoothness: every token in
	// a synonym family also contributes a shared class vector. 0 disables.
	SynonymWeight float64
	// ParentheticalWeight down-weights tokens inside parentheses. LEI
	// interpretations carry their meaning in the canonical head sentence
	// and attach system-flavored context in a trailing parenthetical;
	// sentence encoders likewise weight head content over modifiers. With
	// weight 1 the two parts count equally.
	ParentheticalWeight float64

	mu    sync.Mutex
	cache map[string][]float64
	// texts memoizes whole-text embeddings: sharded deployments share one
	// embedder across partitions, so a hot template's vector is computed
	// once process-wide no matter how many partition tables extend with
	// it. textHits counts memo hits (diagnostics).
	texts    map[string][]float64
	textHits uint64
}

// New creates an embedder with the given dimension (paper-equivalent role:
// the pre-trained encoder's final hidden size).
func New(dim int) *Embedder {
	if dim <= 0 {
		panic("embed: dimension must be positive")
	}
	return &Embedder{
		Dim:                 dim,
		BigramWeight:        0.5,
		SynonymWeight:       0.6,
		ParentheticalWeight: 0.25,
		cache:               make(map[string][]float64),
		texts:               make(map[string][]float64),
	}
}

// tokenVector returns the fixed pseudo-random vector for one token.
func (e *Embedder) tokenVector(token string) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.cache[token]; ok {
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(token))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	v := make([]float64, e.Dim)
	norm := 0.0
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	e.cache[token] = v
	return v
}

// Tokenize lowercases and splits text into alphanumeric word tokens.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Embed returns the unit-normalized embedding of text. Empty or tokenless
// text embeds to the zero vector. Parenthesized spans contribute with
// ParentheticalWeight; the head text with weight 1. Whole-text results
// are memoized (callers get a private copy, so mutating a returned slice
// never corrupts the memo).
func (e *Embedder) Embed(text string) []float64 {
	e.mu.Lock()
	if v, ok := e.texts[text]; ok {
		e.textHits++
		e.mu.Unlock()
		return append([]float64(nil), v...)
	}
	e.mu.Unlock()
	out := e.embed(text)
	e.mu.Lock()
	e.texts[text] = out
	e.mu.Unlock()
	return append([]float64(nil), out...)
}

// TextCacheHits returns how many Embed calls were answered from the
// whole-text memo.
func (e *Embedder) TextCacheHits() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.textHits
}

// embed computes an embedding without consulting the whole-text memo.
func (e *Embedder) embed(text string) []float64 {
	out := make([]float64, e.Dim)
	head, parens := splitParenthetical(text)
	e.accumulate(out, head, 1)
	if parens != "" {
		w := e.ParentheticalWeight
		if w <= 0 {
			w = 1
		}
		e.accumulate(out, parens, w)
	}
	norm := 0.0
	for _, x := range out {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range out {
			out[i] /= norm
		}
	}
	return out
}

// splitParenthetical separates the head text from parenthesized spans.
func splitParenthetical(text string) (head, parens string) {
	var h, p strings.Builder
	depth := 0
	for _, r := range text {
		switch {
		case r == '(':
			depth++
			h.WriteByte(' ')
		case r == ')':
			if depth > 0 {
				depth--
			}
			p.WriteByte(' ')
		case depth > 0:
			p.WriteRune(r)
		default:
			h.WriteRune(r)
		}
	}
	return h.String(), strings.TrimSpace(p.String())
}

// accumulate adds weight * embedding-mass of text into out.
func (e *Embedder) accumulate(out []float64, text string, weight float64) {
	tokens := Tokenize(text)
	for _, tok := range tokens {
		v := e.tokenVector(tok)
		for i := range out {
			out[i] += weight * v[i]
		}
		if e.SynonymWeight > 0 {
			if class, ok := synonymClass[tok]; ok {
				cv := e.tokenVector("\x00class:" + class)
				for i := range out {
					out[i] += weight * e.SynonymWeight * cv[i]
				}
			}
		}
	}
	if e.BigramWeight > 0 {
		for i := 0; i+1 < len(tokens); i++ {
			v := e.tokenVector(tokens[i] + "_" + tokens[i+1])
			for j := range out {
				out[j] += weight * e.BigramWeight * v[j]
			}
		}
	}
}

// EmbedAll embeds a batch of texts into a [len(texts), Dim] tensor.
func (e *Embedder) EmbedAll(texts []string) *tensor.Tensor {
	out := tensor.New(len(texts), e.Dim)
	for i, t := range texts {
		copy(out.Data[i*e.Dim:(i+1)*e.Dim], e.Embed(t))
	}
	return out
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
