package embed

// synonymClass maps tokens to coarse semantic families, standing in for
// the semantic neighborhood structure a pre-trained language model gives
// raw log text. Families are built from common logging vocabulary, not
// from this repository's generators — they would apply to any log corpus.
var synonymClass = buildSynonymClasses()

func buildSynonymClasses() map[string]string {
	families := map[string][]string{
		"failure": {
			"fail", "failed", "failing", "failure", "failures", "fatal", "panic",
			"fault", "faulted", "segfault", "crash", "crashed", "dead", "died",
			"abort", "aborted", "aborting", "killed", "exiting", "broken",
		},
		"error": {
			"error", "errors", "err", "exception", "invalid", "corrupt",
			"corrupted", "mismatch", "uncorrected", "unrecovered", "unrecoverable",
		},
		"disconnect": {
			"down", "lost", "refused", "severed", "unreachable", "interrupted",
			"reset", "disconnect", "disconnected", "dropped", "offline",
		},
		"network": {
			"connection", "conn", "socket", "link", "channel", "peer",
			"network", "net", "stream", "port",
		},
		"timeout": {
			"timeout", "timeouts", "timed", "deadline", "unresponsive", "expire",
		},
		"memory": {
			"memory", "mem", "oom", "heap", "allocation", "rss", "swap",
		},
		"storage": {
			"disk", "storage", "device", "sector", "block", "blocks",
			"filesystem", "journal", "inode", "scsi", "ide",
		},
		"auth": {
			"auth", "authentication", "login", "password", "credential",
			"credentials", "principal", "publickey", "token",
		},
		"overload": {
			"overload", "overloaded", "backlog", "congestion", "saturated",
			"queue", "throttled", "watermark", "deferring", "shedding",
		},
		"replication": {
			"replica", "replicas", "replicate", "replication", "quorum",
			"ring", "demoted", "follower", "leader", "sync", "resync",
		},
		"thermal": {
			"temperature", "thermal", "overheat", "hot", "cooling", "fan",
		},
		"parity": {
			"parity", "ecc", "checksum", "crc", "syndrome",
		},
		"healthy": {
			"ok", "success", "successfully", "completed", "complete", "done",
			"normally", "healthy", "passed", "accepted", "established",
		},
		"job": {
			"job", "jobs", "task", "batch", "queued", "submitted", "scheduled",
			"partition", "walltime",
		},
		"maintenance": {
			"maintenance", "rotated", "rotation", "upgraded", "upgrade",
			"rebuilt", "reloaded", "refreshed", "drill", "snapshot", "audit",
		},
	}
	m := make(map[string]string)
	for class, words := range families {
		for _, w := range words {
			m[w] = class
		}
	}
	return m
}
