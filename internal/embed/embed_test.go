package embed

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestUnitNorm(t *testing.T) {
	e := New(32)
	v := e.Embed("network interface down due to loss of signal")
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("embedding norm %v, want 1", norm)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(64).Embed("disk write failed on device")
	b := New(64).Embed("disk write failed on device")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embeddings must be deterministic across embedder instances")
		}
	}
}

func TestSimilarSentencesCloserThanDissimilar(t *testing.T) {
	e := New(64)
	a := e.Embed("network connection interrupted due to loss of signal")
	b := e.Embed("network connection interrupted because signal was lost")
	c := e.Embed("billing reconciliation mismatch detected between ledgers")
	simAB := Cosine(a, b)
	simAC := Cosine(a, c)
	if simAB <= simAC {
		t.Fatalf("paraphrase similarity %.3f must exceed unrelated similarity %.3f", simAB, simAC)
	}
	if simAB < 0.4 {
		t.Fatalf("paraphrases too far apart: %.3f", simAB)
	}
}

func TestDisjointVocabularyNearOrthogonal(t *testing.T) {
	e := New(128)
	a := e.Embed("alpha beta gamma delta")
	b := e.Embed("epsilon zeta eta theta")
	if s := Cosine(a, b); math.Abs(s) > 0.35 {
		t.Fatalf("disjoint vocab similarity %.3f should be near zero", s)
	}
}

func TestWordOrderMatters(t *testing.T) {
	e := New(128)
	a := e.Embed("server killed process")
	b := e.Embed("process killed server")
	if s := Cosine(a, b); s >= 0.9999 {
		t.Fatalf("bigram mixing should distinguish word order, sim=%v", s)
	}
}

func TestEmptyTextZeroVector(t *testing.T) {
	e := New(16)
	v := e.Embed("  ...  ")
	for _, x := range v {
		if x != 0 {
			t.Fatal("tokenless text must embed to the zero vector")
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("ciod: Error reading <*> from 10.0.0.1!")
	want := []string{"ciod", "error", "reading", "from", "10", "0", "0", "1"}
	if len(got) != len(want) {
		t.Fatalf("tokenize: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestEmbedAllShape(t *testing.T) {
	e := New(8)
	m := e.EmbedAll([]string{"one two", "three four", "five"})
	if m.Rows() != 3 || m.Cols() != 8 {
		t.Fatalf("shape %v", m.Shape)
	}
}

func TestConcurrentEmbedding(t *testing.T) {
	e := New(32)
	var wg sync.WaitGroup
	results := make([][]float64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Embed("shared cache token stream")
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatal("concurrent embeddings must agree")
			}
		}
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosineProperties(t *testing.T) {
	e := New(24)
	f := func(a, b string) bool {
		va, vb := e.Embed(a), e.Embed(b)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(s1-s2) < 1e-12 && s1 <= 1+1e-9 && s1 >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dim")
		}
	}()
	New(0)
}
