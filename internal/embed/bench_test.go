package embed

import (
	"fmt"
	"testing"
)

// BenchmarkEmbed measures single-sentence embedding (the LEI output path).
func BenchmarkEmbed(b *testing.B) {
	e := New(32)
	for i := 0; i < b.N; i++ {
		e.Embed("network connection interrupted due to loss of signal")
	}
}

// BenchmarkEmbedColdCache measures embedding with unseen vocabulary.
func BenchmarkEmbedColdCache(b *testing.B) {
	e := New(32)
	for i := 0; i < b.N; i++ {
		e.Embed(fmt.Sprintf("unique token stream %d variant", i))
	}
}
