package lei

// lexiconEntry associates surface keywords (lowercase substrings that may
// appear in a masked template) with a concept and its canonical
// interpretation. An entry matches when any keyword is a substring of the
// lowercased template; the entry whose matched keywords have the largest
// total length wins. This mirrors how an LLM maps dialect-specific failure
// vocabulary onto a unified description.
type lexiconEntry struct {
	concept   string
	canonical string
	keywords  []string
}

// lexicon returns the built-in semantic knowledge base. It intentionally
// covers anomaly vocabulary and *shared* operational vocabulary, but not
// every system's idiosyncratic operational chatter — real LLM
// interpretations of niche subsystem logs stay dialect-colored too, which
// is precisely the residual system-specific signal SUFE disentangles.
func lexicon() []lexiconEntry {
	return []lexiconEntry{
		// ---- Anomalies (shared concepts, multi-dialect keywords). ----
		{
			concept:   "anom.net.interrupt",
			canonical: "network connection interrupted due to loss of signal",
			keywords: []string{
				"severed", "connection lost", "connection refused", "reset by peer",
				"link went down", "carrier lost", "conn dropped", "signal_lost",
				"unreachable marking fail", "signal lost", "interrupted",
			},
		},
		{
			concept:   "anom.parity",
			canonical: "memory parity error detected in cache unit",
			keywords:  []string{"parity"},
		},
		{
			concept:   "anom.disk.fail",
			canonical: "disk input output failure while accessing storage device",
			keywords:  []string{"i/o error", "input/output error", "medium error", "unrecovered read", "dma_intr"},
		},
		{
			concept:   "anom.oom",
			canonical: "process terminated because system ran out of memory",
			keywords:  []string{"out of memory", "oom-killer", "maxmemory reached", "allocation of"},
		},
		{
			concept:   "anom.timeout",
			canonical: "operation timed out waiting for remote response",
			keywords:  []string{"timed out", "timeout", "deadline exceeded", "no ping reply"},
		},
		{
			concept:   "anom.auth.fail",
			canonical: "repeated authentication failures detected for user account",
			keywords:  []string{"failed password", "login denied", "bad credentials", "invalid credential", "consecutive_failures"},
		},
		{
			concept:   "anom.service.crash",
			canonical: "service process crashed unexpectedly with fatal error",
			keywords: []string{
				"segfault", "panic: runtime error", "killed by signal", "core dumped",
				"uncaught exception", "process exiting on unexpected signal", "daemon dead", "jvm exiting",
			},
		},
		{
			concept:   "anom.corrupt",
			canonical: "data corruption detected during integrity verification",
			keywords:  []string{"checksum mismatch", "bad inode checksum", "marking corrupt", "chip kill corrupt"},
		},
		{
			concept:   "anom.overload",
			canonical: "request queue overloaded causing severe performance degradation",
			keywords:  []string{"backlog", "saturated", "congestion", "shedding load", "load average", "throttled"},
		},
		{
			concept:   "anom.replica.lost",
			canonical: "replica lost quorum and was removed from the cluster",
			keywords: []string{
				"quorum lost", "removing from replica", "replica ring", "is dead",
				"demoted", "evicted from midplane", "lease lost", "stepping down", "vpd mismatch replica",
			},
		},
		{
			concept:   "anom.fs.readonly",
			canonical: "filesystem remounted read only after unrecoverable write failure",
			keywords:  []string{"read-only", "forced read-only", "remount ro", "journal abort", "aborting journal"},
		},
		{
			concept:   "anom.hw.temp",
			canonical: "hardware temperature exceeded critical safety threshold",
			keywords:  []string{"temperature", "overheat", "thermal", "hot limit", "upper critical"},
		},

		// ---- Anomalies (system-specific concepts). ----
		{
			concept:   "anom.bgl.kernel",
			canonical: "kernel panic detected in compute node firmware",
			keywords:  []string{"kernel panic"},
		},
		{
			concept:   "anom.bgl.torus",
			canonical: "torus interconnect link error corrupted packet delivery",
			keywords:  []string{"torus"},
		},
		{
			concept:   "anom.spirit.lustre",
			canonical: "parallel filesystem metadata server became unavailable",
			keywords:  []string{"lustreerror", "mds service"},
		},
		{
			concept:   "anom.spirit.mpi",
			canonical: "message passing collective operation aborted across ranks",
			keywords:  []string{"mpi_abort", "collective failed"},
		},
		{
			concept:   "anom.tb.sched",
			canonical: "batch scheduler lost contact with compute node",
			keywords:  []string{"state changed to down", "no contact", "orphaned"},
		},
		{
			concept:   "anom.sysa.billing",
			canonical: "billing reconciliation mismatch detected between ledgers",
			keywords:  []string{"ledger mismatch", "reconciliation"},
		},
		{
			concept:   "anom.sysb.cache",
			canonical: "distributed cache suffered mass eviction storm",
			keywords:  []string{"eviction storm", "storm detected", "hit-rate collapsed"},
		},
		{
			concept:   "anom.sysc.session",
			canonical: "session state replication failed across availability zones",
			keywords:  []string{"failed to replicate session", "broken pipe"},
		},

		// ---- Rare shared operational concepts (the long-tail vocabulary a
		// real LLM also understands; recognizing these is what lets the
		// transfer pipeline learn the tail from mature sources). ----
		{
			concept:   "op.maint",
			canonical: "scheduled maintenance task executed on component",
			keywords:  []string{"maintenance", "service action"},
		},
		{
			concept:   "op.cert",
			canonical: "security certificate rotated before expiry",
			keywords:  []string{"cert rotated", "certificate", "host key regenerated", "credential rotated", "cert reloaded"},
		},
		{
			concept:   "op.upgrade",
			canonical: "software package upgraded to new version",
			keywords:  []string{"upgraded", "rollout", "installed cleanly", "image updated", "updated firmware"},
		},
		{
			concept:   "op.audit",
			canonical: "periodic audit snapshot recorded configuration",
			keywords:  []string{"audit", "config snapshot", "config dump", "snapshot stored"},
		},
		{
			concept:   "op.clock",
			canonical: "system clock synchronized with reference time server",
			keywords:  []string{"clock", "time reset", "time base registers", "drift corrected", "offset corrected"},
		},
		{
			concept:   "op.debugdump",
			canonical: "diagnostic trace dump captured for offline analysis",
			keywords:  []string{"trace buffer dumped", "debug dump", "pprof", "histogram dumped", "thread dump", "counters dumped"},
		},
		{
			concept:   "op.quota",
			canonical: "storage quota usage report generated",
			keywords:  []string{"quota", "usage report"},
		},
		{
			concept:   "op.retrywarn",
			canonical: "transient warning retried and recovered automatically",
			keywords:  []string{"retried ok", "transient", "recovered"},
		},
		{
			concept:   "op.drill",
			canonical: "planned failover drill completed without impact",
			keywords:  []string{"drill", "takeover exercise", "failover exercise"},
		},
		{
			concept:   "op.reindex",
			canonical: "background index rebuild completed",
			keywords:  []string{"rebuilt", "reindex"},
		},

		// ---- Shared operational concepts. ----
		{
			concept:   "op.job.submit",
			canonical: "job submitted to the scheduling queue",
			keywords:  []string{"queued", "submitted"},
		},
		{
			concept:   "op.job.start",
			canonical: "job started executing on allocated resources",
			keywords:  []string{"launching", "loading", "started on"},
		},
		{
			concept:   "op.job.finish",
			canonical: "job finished successfully and released resources",
			keywords:  []string{"completed successfully", "terminated normally", "exited status", "exit status", "walltime"},
		},
		{
			concept:   "op.net.connect",
			canonical: "network connection established with peer",
			keywords:  []string{"conn accepted", "accepted client", "session opened", "channel active", "start: shell", "generated ciostream"},
		},
		{
			concept:   "op.net.close",
			canonical: "network connection closed normally",
			keywords:  []string{"closed", "channel inactive", "session closed", "exit: shell"},
		},
		{
			concept:   "op.disk.read",
			canonical: "data block read from storage device",
			keywords:  []string{"read <*> bytes", "bytes from"},
		},
		{
			concept:   "op.disk.write",
			canonical: "data block written to storage device",
			keywords:  []string{"flushed", "committed", "wrote", "stable"},
		},
		{
			concept:   "op.auth.ok",
			canonical: "user authenticated successfully",
			keywords:  []string{"accepted publickey", "token issued", "authenticated"},
		},
		{
			concept:   "op.heartbeat",
			canonical: "component heartbeat reported healthy status",
			keywords:  []string{"heartbeat", "alive", "gossip", "liveness", "status ping ok"},
		},
		{
			concept:   "op.config.reload",
			canonical: "configuration reloaded without errors",
			keywords:  []string{"reloaded", "restart (remote", "changed keys"},
		},
		{
			concept:   "op.cache.hit",
			canonical: "cache lookup served request from memory",
			keywords:  []string{"hit"},
		},
		{
			concept:   "op.cache.expire",
			canonical: "cache entry expired and was refreshed",
			keywords:  []string{"expired"},
		},
		{
			concept:   "op.query.exec",
			canonical: "query executed and returned result set",
			keywords:  []string{"query ok", "rows", "statement ok", "poll cluster", "service check"},
		},
		{
			concept:   "op.replica.sync",
			canonical: "replica synchronized with primary copy",
			keywords:  []string{"resync", "caught up", "matched index", "mirrored state", "follower matched"},
		},
		{
			concept:   "op.gc",
			canonical: "garbage collection completed reclaiming memory",
			keywords:  []string{"gc pause", "gc cycle", "defrag", "compacted", "g1 pause"},
		},
		{
			concept:   "op.scale.up",
			canonical: "capacity scaled up to absorb load",
			keywords:  []string{"scaled out", "split migrating", "additional nodes"},
		},
		{
			concept:   "op.backup",
			canonical: "backup snapshot completed successfully",
			keywords:  []string{"backup", "snapshot"},
		},
		{
			concept:   "op.monitor",
			canonical: "monitoring probe recorded nominal metrics",
			keywords:  []string{"scrape", "counters", "sample ok", "check_health", "gauges"},
		},
	}
}

// abbreviations expands the dialect shorthand an LLM would normalize
// (the paper's running example expands "Los" to "loss of signal").
func abbreviations() map[string]string {
	return map[string]string{
		"los":    "loss of signal",
		"conn":   "connection",
		"auth":   "authentication",
		"repl":   "replication",
		"recon":  "reconciliation",
		"svc":    "service",
		"msg":    "message",
		"err":    "error",
		"wrn":    "warning",
		"inf":    "info",
		"dbg":    "debug",
		"cfg":    "configuration",
		"fs":     "filesystem",
		"mem":    "memory",
		"dur":    "duration",
		"p99":    "99th percentile latency",
		"rtt":    "round trip time",
		"ttl":    "time to live",
		"lsn":    "log sequence number",
		"uid":    "user id",
		"pid":    "process id",
		"mfa":    "multi factor authentication",
		"ras":    "reliability availability serviceability",
		"mds":    "metadata server",
		"ost":    "object storage target",
		"nfs":    "network filesystem",
		"ib":     "infiniband",
		"jvm":    "java virtual machine",
		"cdn":    "content delivery network",
		"qdepth": "queue depth",
	}
}

// stopwords are tokens too generic to carry detail information.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "to": true, "in": true,
	"on": true, "for": true, "from": true, "with": true, "and": true,
	"was": true, "is": true, "are": true, "has": true, "been": true,
	"info": true, "warn": true, "error": true, "debug": true, "fatal": true,
	"level": true, "true": true, "false": true, "after": true, "into": true,
}
