package lei_test

import (
	"fmt"
	"strings"

	"logsynergy/internal/lei"
)

// Example interprets the paper's Table I Spirit message: the dialect-
// specific syntax becomes a unified description of the anomalous event.
func Example() {
	m := lei.NewSimLLM(lei.Config{})
	in := m.Interpret("an HPC system", "Connection refused (<*>) in open_demux, open_demux: connect <*>")
	fmt.Println(in.ConceptKey)
	fmt.Println(strings.SplitN(in.Text, " (", 2)[0])
	// Output:
	// anom.net.interrupt
	// network connection interrupted due to loss of signal
}

func ExampleReviewer_Process() {
	m := lei.NewSimLLM(lei.Config{})
	r := lei.NewReviewer()
	oc := r.Process(m, "a storage system", "machine check interrupt (bit=<*>): L2 dcache unit read return parity error")
	fmt.Println(oc.Passed, oc.Attempts)
	// Output:
	// true 1
}
