package lei

import (
	"strings"
	"testing"

	"logsynergy/internal/drain"
	"logsynergy/internal/logdata"
)

func TestUnifiesTableIExamples(t *testing.T) {
	// The paper's Table I: the same anomalous event logged by Spirit and
	// BGL with very different syntax must interpret to the same concept.
	m := NewSimLLM(Config{})
	spirit := m.Interpret("an HPC system", "Connection refused (<*>) in open_demux, open_demux: connect <*>")
	bgl := m.Interpret("an HPC system", "ciod: Error reading message prefix on CioStream socket to <*>: Link has been severed")
	if !spirit.Recognized || !bgl.Recognized {
		t.Fatalf("both must be recognized: %v %v", spirit.Recognized, bgl.Recognized)
	}
	if spirit.ConceptKey != "anom.net.interrupt" || bgl.ConceptKey != spirit.ConceptKey {
		t.Fatalf("want shared concept anom.net.interrupt, got %q and %q", spirit.ConceptKey, bgl.ConceptKey)
	}

	spiritParity := m.Interpret("an HPC system", "GM: LANAI[<*>]: PANIC: mcp/gm_parity.c:<*>: parityint():firmware")
	bglParity := m.Interpret("an HPC system", "machine check interrupt (bit=<*>): L2 dcache unit read return parity error")
	if spiritParity.ConceptKey != "anom.parity" || bglParity.ConceptKey != "anom.parity" {
		t.Fatalf("parity events must unify: %q vs %q", spiritParity.ConceptKey, bglParity.ConceptKey)
	}
}

func TestInterpretationsShareCanonicalPrefix(t *testing.T) {
	m := NewSimLLM(Config{})
	a := m.Interpret("a cache system", "[ERR] cluster-bus: peer <*> unreachable marking FAIL epoch <*> signal lost")
	b := m.Interpret("an HPC system", "ib_sm: port <*> on tbird-admin<*> GID <*> link went down unexpectedly carrier lost")
	if a.ConceptKey != b.ConceptKey {
		t.Fatalf("dialects must unify: %q vs %q", a.ConceptKey, b.ConceptKey)
	}
	if !strings.HasPrefix(a.Text, "network connection interrupted") ||
		!strings.HasPrefix(b.Text, "network connection interrupted") {
		t.Fatalf("canonical prefix missing: %q / %q", a.Text, b.Text)
	}
}

func TestFallbackForUnknownTemplates(t *testing.T) {
	m := NewSimLLM(Config{})
	out := m.Interpret("a custom system", "zorp flibber <*> quux blart")
	if out.Recognized {
		t.Fatal("nonsense must not be recognized")
	}
	if strings.Contains(out.Text, "<*>") {
		t.Fatalf("fallback must drop parameter markers: %q", out.Text)
	}
	if out.Text != "zorp flibber quux blart" {
		t.Fatalf("fallback should clean the template: %q", out.Text)
	}
}

func TestAbbreviationExpansionInFallback(t *testing.T) {
	m := NewSimLLM(Config{})
	out := m.Interpret("a system", "svc worker idle conn pool drained")
	if !strings.Contains(out.Text, "service") || !strings.Contains(out.Text, "connection") {
		t.Fatalf("abbreviations not expanded: %q", out.Text)
	}
}

func TestPromptFormat(t *testing.T) {
	p := BuildPrompt("an HPC system", "some log")
	if !strings.Contains(p, "an HPC system") || !strings.Contains(p, "Log: some log") {
		t.Fatalf("prompt missing pieces: %q", p)
	}
}

func TestDeterministicInterpretation(t *testing.T) {
	m := NewSimLLM(Config{HallucinationRate: 0.3, Seed: 9})
	a := m.Interpret("x", "disk offline sector remap failed badly")
	b := m.Interpret("x", "disk offline sector remap failed badly")
	if a.Text != b.Text || a.Hallucinated != b.Hallucinated {
		t.Fatal("interpretation must be deterministic for a fixed seed and template")
	}
}

func TestHallucinationRateApproximate(t *testing.T) {
	m := NewSimLLM(Config{HallucinationRate: 0.5, Seed: 1})
	halluc := 0
	n := 400
	for i := 0; i < n; i++ {
		out := m.Interpret("x", "unique template variant alpha beta "+strings.Repeat("z", i%17)+" gamma")
		if out.Hallucinated {
			halluc++
		}
	}
	if halluc < n/4 || halluc > 3*n/4 {
		t.Fatalf("hallucination rate 0.5 produced %d/%d", halluc, n)
	}
}

func TestIdentityInterpreter(t *testing.T) {
	out := Identity{}.Interpret("x", "raw template text")
	if out.Text != "raw template text" {
		t.Fatalf("identity must pass through: %q", out.Text)
	}
}

func TestReviewerCatchesRamble(t *testing.T) {
	r := NewReviewer()
	long := Interpretation{Text: strings.Repeat("word ", 60)}
	if r.FormatOK(long) {
		t.Fatal("over-long interpretation must fail format review")
	}
	ramble := Interpretation{Text: "x; furthermore y; furthermore z"}
	if r.FormatOK(ramble) {
		t.Fatal("repetitive ramble must fail format review")
	}
	ok := Interpretation{Text: "network connection interrupted due to loss of signal"}
	if !r.FormatOK(ok) {
		t.Fatal("normal interpretation must pass")
	}
}

func TestReviewProcessRegenerates(t *testing.T) {
	// With a 100% hallucination rate some outputs are rambles; Process
	// must converge to a format-valid interpretation (possibly via the
	// cleaned-template fallback).
	m := NewSimLLM(Config{HallucinationRate: 1, Seed: 3})
	r := NewReviewer()
	outcomes := r.ProcessAll(m, "a test system", []string{
		"first weird template alpha",
		"second weird template beta",
		"third weird template gamma",
		"fourth weird template delta",
	})
	for _, oc := range outcomes {
		if !r.FormatOK(oc.Final) {
			t.Fatalf("review must end with a format-valid interpretation, got %q", oc.Final.Text)
		}
		if oc.Attempts < 1 {
			t.Fatal("attempts must be at least 1")
		}
	}
}

// TestLexiconCoversGeneratedAnomalies verifies the central LEI property on
// real generator output: (almost) every anomalous template from every
// system must be recognized and mapped to its true concept.
func TestLexiconCoversGeneratedAnomalies(t *testing.T) {
	m := NewSimLLM(Config{})
	for name, spec := range logdata.Systems() {
		corpus := logdata.Generate(spec, 21, 40000)
		parser := drain.NewDefault()
		// Map event id -> majority concept using ground truth.
		type stat struct {
			concept   string
			anomalous bool
		}
		eventConcept := make(map[int]stat)
		for _, line := range corpus.Lines {
			match := parser.Parse(line.Message)
			if _, seen := eventConcept[match.EventID]; !seen {
				eventConcept[match.EventID] = stat{line.ConceptKey, line.Anomalous}
			}
		}
		events := parser.Events()
		misses := 0
		total := 0
		for _, ev := range events {
			st := eventConcept[ev.ID]
			if !st.anomalous {
				continue
			}
			total++
			out := m.Interpret("the "+name+" system", ev.Template)
			if !out.Recognized || out.ConceptKey != st.concept {
				misses++
				t.Logf("%s: template %q -> concept %q want %q", name, ev.Template, out.ConceptKey, st.concept)
			}
		}
		if total == 0 {
			t.Fatalf("%s: no anomalous templates generated", name)
		}
		if misses > total/10 {
			t.Errorf("%s: %d/%d anomalous templates misinterpreted", name, misses, total)
		}
	}
}

func TestConceptsListStable(t *testing.T) {
	m := NewSimLLM(Config{})
	a := m.Concepts()
	b := m.Concepts()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatal("concept list must be stable and non-empty")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("concept order must be deterministic")
		}
	}
}
