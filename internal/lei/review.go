package lei

import "strings"

// WithSeed returns a copy of the model whose hallucination stream uses a
// different seed, used to regenerate a rejected interpretation (the paper:
// "interpretations can be regenerated when format errors are found").
func (m *SimLLM) WithSeed(seed int64) *SimLLM {
	cp := *m
	cp.cfg.Seed = seed
	return &cp
}

// Reviewer models the operator review step of §VI-B2: every LLM-generated
// interpretation is checked for format and length errors (not semantic
// correctness — the paper is explicit that reviewing semantics at scale is
// infeasible, which is why hallucinated-but-well-formed text can slip
// through) and regenerated until it passes or attempts run out.
type Reviewer struct {
	// MaxWords rejects over-long interpretations (default 24).
	MaxWords int
	// MaxAttempts bounds regeneration (default 3).
	MaxAttempts int
}

// NewReviewer returns a reviewer with the default policy.
func NewReviewer() *Reviewer { return &Reviewer{MaxWords: 24, MaxAttempts: 3} }

// FormatOK reports whether an interpretation passes the format review.
func (r *Reviewer) FormatOK(in Interpretation) bool {
	max := r.MaxWords
	if max <= 0 {
		max = 24
	}
	words := strings.Fields(in.Text)
	if len(words) == 0 || len(words) > max {
		return false
	}
	// Repetitive ramble (a hallucination mode) fails format review.
	if strings.Count(in.Text, "furthermore") >= 2 {
		return false
	}
	return true
}

// ReviewOutcome records what the review process did for one template.
type ReviewOutcome struct {
	Final    Interpretation
	Attempts int
	Passed   bool
}

// Process interprets a template, reviews the result, and regenerates with a
// fresh seed until the format check passes or MaxAttempts is exhausted.
func (r *Reviewer) Process(m *SimLLM, systemHint, template string) ReviewOutcome {
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	model := m
	var out Interpretation
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		out = model.Interpret(systemHint, template)
		if r.FormatOK(out) {
			return ReviewOutcome{Final: out, Attempts: attempt, Passed: true}
		}
		model = m.WithSeed(m.cfg.Seed + int64(attempt)*7919)
	}
	// Last resort: fall back to the cleaned template, which always passes.
	out.Text = m.fallback(template)
	out.Recognized = false
	out.Hallucinated = false
	out.ConceptKey = ""
	return ReviewOutcome{Final: out, Attempts: maxAttempts, Passed: false}
}

// ProcessAll runs the review workflow over a batch of templates.
func (r *Reviewer) ProcessAll(m *SimLLM, systemHint string, templates []string) []ReviewOutcome {
	out := make([]ReviewOutcome, len(templates))
	for i, t := range templates {
		out[i] = r.Process(m, systemHint, t)
	}
	return out
}
