// Package lei implements LogSynergy's LLM-based Event Interpretation (LEI,
// paper §III-C): translating every parsed log event template into a
// syntax-unified natural-language interpretation so that semantically
// equivalent events from different systems become near-identical text.
//
// The paper calls ChatGPT-4o through an API. This repository is offline, so
// the LLM is simulated by SimLLM: a deterministic semantic interpreter
// built from a keyword lexicon that (like the real model) recognizes
// failure vocabulary across dialects ("Link has been severed", "Connection
// reset by peer", "carrier lost" → one canonical sentence), expands
// abbreviations ("Los" → "loss of signal", as in the paper's example), and
// falls back to a cleaned-up rendering of the raw template when it does not
// recognize the event. The simulation also reproduces LEI's documented
// failure mode — hallucination — as controlled corruption, together with
// the operator review/regeneration workflow the paper describes (§VI-B2).
package lei

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
)

// Interpretation is the result of interpreting one log event template.
type Interpretation struct {
	// Template is the input event template.
	Template string
	// Text is the unified interpretation sentence.
	Text string
	// Recognized reports whether the interpreter matched known semantics
	// (false means Text is a cleaned fallback of the raw template).
	Recognized bool
	// ConceptKey is the matched lexicon concept ("" if unrecognized).
	ConceptKey string
	// Hallucinated marks interpretations corrupted by the simulated
	// hallucination mechanism (ground truth for review experiments).
	Hallucinated bool
	// Prompt is the constructed LLM prompt, kept for auditability.
	Prompt string
}

// Interpreter turns templates into unified interpretations.
type Interpreter interface {
	// Interpret interprets one event template. systemHint describes the
	// log source (e.g. "an HPC system"), mirroring the paper's prompt
	// format in Fig. 2.
	Interpret(systemHint, template string) Interpretation
}

// Config controls the simulated LLM.
type Config struct {
	// HallucinationRate is the probability that an interpretation is
	// corrupted (swapped to an unrelated sentence or given a fabricated
	// clause). The paper reports this as LEI's main internal threat.
	HallucinationRate float64
	// Seed makes hallucination deterministic per (seed, template).
	Seed int64
	// DetailWords is how many informative template tokens are appended to
	// the canonical sentence as context (default 2). Real LLM outputs for
	// the same concept differ slightly across systems; this models that.
	DetailWords int
}

// SimLLM is the deterministic simulated LLM. It is safe for concurrent use.
type SimLLM struct {
	cfg     Config
	entries []lexiconEntry
	abbrev  map[string]string
}

// NewSimLLM builds the simulated model with the built-in lexicon.
func NewSimLLM(cfg Config) *SimLLM {
	if cfg.DetailWords == 0 {
		cfg.DetailWords = 2
	}
	return &SimLLM{cfg: cfg, entries: lexicon(), abbrev: abbreviations()}
}

// BuildPrompt renders the Fig. 2 prompt for one template.
func BuildPrompt(systemHint, template string) string {
	return fmt.Sprintf(
		"The following log is from %s. Interpret the log event in one short sentence, "+
			"using standardized syntax, expanding abbreviations, and keeping only the "+
			"essential information.\nLog: %s", systemHint, template)
}

// Interpret implements Interpreter.
func (m *SimLLM) Interpret(systemHint, template string) Interpretation {
	prompt := BuildPrompt(systemHint, template)
	lowered := strings.ToLower(template)

	best, bestScore := -1, 0
	for i, e := range m.entries {
		score := 0
		for _, kw := range e.keywords {
			if strings.Contains(lowered, kw) {
				score += len(kw)
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}

	out := Interpretation{Template: template, Prompt: prompt}
	if best >= 0 {
		e := m.entries[best]
		out.Recognized = true
		out.ConceptKey = e.concept
		out.Text = e.canonical
		if detail := m.detailClause(template, e.keywords); detail != "" {
			out.Text += " (" + detail + ")"
		}
	} else {
		out.Text = m.fallback(template)
	}

	if m.cfg.HallucinationRate > 0 {
		rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(hashString(template))))
		if rng.Float64() < m.cfg.HallucinationRate {
			out = m.hallucinate(rng, out)
		}
	}
	return out
}

// detailClause extracts up to DetailWords informative tokens from the
// template that are not already part of the matched keywords, modelling the
// small phrasing differences a real LLM produces for the same concept.
func (m *SimLLM) detailClause(template string, keywords []string) string {
	kwText := strings.Join(keywords, " ")
	var picked []string
	for _, tok := range strings.Fields(strings.ToLower(template)) {
		tok = strings.Trim(tok, ".,:;()[]{}\"'=")
		if len(tok) < 4 || strings.Contains(tok, "<*>") || strings.ContainsAny(tok, "0123456789/\\=") {
			continue
		}
		if stopwords[tok] || strings.Contains(kwText, tok) {
			continue
		}
		if exp, ok := m.abbrev[tok]; ok {
			tok = exp
		}
		picked = append(picked, tok)
		if len(picked) >= m.cfg.DetailWords {
			break
		}
	}
	return strings.Join(picked, " ")
}

// fallback cleans the raw template: lowercase, parameters dropped,
// punctuation stripped, abbreviations expanded. The result is *better* than
// raw text but still carries the system's own vocabulary — exactly what
// "LogSynergy w/o LEI" degenerates to at the semantic level.
func (m *SimLLM) fallback(template string) string {
	var words []string
	for _, tok := range strings.Fields(strings.ToLower(template)) {
		tok = strings.Trim(tok, ".,:;()[]{}\"'=-")
		if tok == "" || strings.Contains(tok, "<*>") {
			continue
		}
		if exp, ok := m.abbrev[tok]; ok {
			tok = exp
		}
		words = append(words, tok)
	}
	if len(words) == 0 {
		return "unrecognized log event"
	}
	return strings.Join(words, " ")
}

// hallucinate corrupts an interpretation the way the paper describes LLM
// hallucination: fabricated or incorrect information that reviewers must
// catch.
func (m *SimLLM) hallucinate(rng *rand.Rand, in Interpretation) Interpretation {
	in.Hallucinated = true
	switch rng.Intn(3) {
	case 0: // swap to an unrelated canonical sentence
		other := m.entries[rng.Intn(len(m.entries))]
		in.Text = other.canonical
		in.ConceptKey = other.concept
	case 1: // fabricate a confident but wrong clause
		in.Text += " caused by scheduled maintenance on the primary coordinator"
	default: // produce an over-long rambling answer (format error)
		in.Text = strings.Repeat(in.Text+"; furthermore ", 10) + in.Text
	}
	return in
}

// hashString gives a stable 32-bit hash for deterministic per-template RNG.
func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// InterpretAll interprets a batch of templates, returning results in order.
func InterpretAll(it Interpreter, systemHint string, templates []string) []Interpretation {
	out := make([]Interpretation, len(templates))
	for i, t := range templates {
		out[i] = it.Interpret(systemHint, t)
	}
	return out
}

// Identity is an Interpreter that returns the raw template unchanged. It
// implements the "LogSynergy w/o LEI" ablation arm (paper §IV-D1), where
// events map directly to the feature space without interpretation.
type Identity struct{}

// Interpret returns the template as its own interpretation.
func (Identity) Interpret(_, template string) Interpretation {
	return Interpretation{Template: template, Text: template}
}

// Concepts returns the lexicon's concept keys in deterministic order,
// useful for coverage tests.
func (m *SimLLM) Concepts() []string {
	seen := make(map[string]bool)
	var keys []string
	for _, e := range m.entries {
		if !seen[e.concept] {
			seen[e.concept] = true
			keys = append(keys, e.concept)
		}
	}
	sort.Strings(keys)
	return keys
}
