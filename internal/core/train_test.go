package core

import (
	"math/rand"
	"testing"

	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// syntheticDataset fabricates a repr.Dataset directly (no log pipeline):
// n sequences of length t over dim-d embeddings, with the given positive
// rows.
func syntheticDataset(system string, n, t, d int, positives []int, seed int64) *repr.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.Randn(rng, 1, n, t, d)
	labels := make([]bool, n)
	for _, p := range positives {
		labels[p] = true
	}
	return &repr.Dataset{
		System: system,
		X:      x,
		Labels: labels,
		Table:  &repr.EventTable{System: system, Dim: d},
		SeqLen: t,
	}
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.EmbedDim = 8
	cfg.ModelDim = 8
	cfg.Heads = 2
	cfg.FFDim = 16
	cfg.Depth = 1
	cfg.Epochs = 1
	cfg.BatchSize = 16
	return cfg
}

func TestAssembleBatchComposition(t *testing.T) {
	cfg := tinyConfig()
	sources := []*repr.Dataset{
		syntheticDataset("s0", 50, 4, 8, []int{1, 2}, 1),
		syntheticDataset("s1", 50, 4, 8, []int{3}, 2),
	}
	target := syntheticDataset("tgt", 30, 4, 8, []int{7}, 3)
	tr := NewTrainer(cfg, sources, target)
	x, labels, systems, domains := tr.assembleBatch()

	if x.Dim(0) != cfg.BatchSize {
		t.Fatalf("batch rows %d want %d", x.Dim(0), cfg.BatchSize)
	}
	nTarget := int(float64(cfg.BatchSize) * cfg.TargetShare)
	counts := map[int]int{}
	for i, sys := range systems {
		counts[sys]++
		// Domain label must track system id: sources 0, target 1.
		wantDomain := 0.0
		if sys == len(sources) {
			wantDomain = 1
		}
		if domains[i] != wantDomain {
			t.Fatalf("row %d: system %d has domain %v", i, sys, domains[i])
		}
	}
	if counts[len(sources)] != nTarget {
		t.Fatalf("target rows %d want %d", counts[len(sources)], nTarget)
	}
	if counts[0]+counts[1] != cfg.BatchSize-nTarget {
		t.Fatalf("source rows %d want %d", counts[0]+counts[1], cfg.BatchSize-nTarget)
	}
	// Oversampling must surface positives regularly.
	pos := 0
	for _, l := range labels {
		if l == 1 {
			pos++
		}
	}
	if pos == 0 {
		// One batch can be unlucky; sample a few more.
		for i := 0; i < 5 && pos == 0; i++ {
			_, labels, _, _ = tr.assembleBatch()
			for _, l := range labels {
				if l == 1 {
					pos++
				}
			}
		}
		if pos == 0 {
			t.Fatal("balanced sampling never produced a positive row")
		}
	}
}

func TestTrainerEpochStats(t *testing.T) {
	cfg := tinyConfig()
	cfg.Epochs = 2
	sources := []*repr.Dataset{syntheticDataset("s0", 40, 4, 8, []int{0, 5}, 4)}
	target := syntheticDataset("tgt", 40, 4, 8, []int{9}, 5)
	tr := NewTrainer(cfg, sources, target)
	stats := tr.Train()
	if len(stats) != 2 {
		t.Fatalf("want 2 epochs of stats, got %d", len(stats))
	}
	for _, s := range stats {
		if s.Total <= 0 {
			t.Fatalf("epoch %d: non-positive total loss %v", s.Epoch, s.Total)
		}
		if s.Omega < 0 || s.Omega > 1 {
			t.Fatalf("epoch %d: omega %v out of range", s.Epoch, s.Omega)
		}
	}
}

func TestTrainingReducesLossOnSeparableData(t *testing.T) {
	// Make positives trivially separable: a constant offset on the first
	// embedding dimension of every event.
	cfg := tinyConfig()
	cfg.Epochs = 30
	mk := func(name string, seed int64) *repr.Dataset {
		d := syntheticDataset(name, 60, 4, 8, []int{0, 1, 2, 3, 4, 5}, seed)
		for row := 0; row < 6; row++ {
			for s := 0; s < 4; s++ {
				d.X.Data[(row*4+s)*8] += 6
			}
		}
		return d
	}
	tr := NewTrainer(cfg, []*repr.Dataset{mk("s0", 6)}, mk("tgt", 7))
	stats := tr.Train()
	if stats[len(stats)-1].Anomaly >= stats[0].Anomaly {
		t.Fatalf("anomaly loss did not fall: %.4f -> %.4f",
			stats[0].Anomaly, stats[len(stats)-1].Anomaly)
	}
	// The trained model must separate the synthetic anomaly pattern.
	test := mk("tgt2", 8)
	res := EvaluateDataset(tr.Model, test)
	if res.F1 < 0.8 {
		t.Fatalf("trivially separable data should yield high F1, got %+v", res)
	}
}

func TestNoSUFEModelHasNoSystemClassifier(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseSUFE = false
	m := NewModel(cfg, 2)
	if m.csystem != nil || m.mi != nil {
		t.Fatal("w/o SUFE there must be no system classifier or MI module")
	}
	if m.SystemLogits(tensor.New(1, 4, 8)) != nil {
		t.Fatal("SystemLogits must be nil without SUFE")
	}
}

func TestNoDAModelHasNoAdapter(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseDA = false
	m := NewModel(cfg, 2)
	if m.DomainAdapterParams() != nil {
		t.Fatal("w/o DA there must be no adapter parameters")
	}
}

func TestFeaturesShapes(t *testing.T) {
	cfg := tinyConfig()
	m := NewModel(cfg, 2)
	x := tensor.New(3, 4, 8)
	fu, fs := m.Features(x)
	if fu.Rows() != 3 || fu.Cols() != cfg.featureDim() {
		t.Fatalf("fu shape %v", fu.Shape)
	}
	if fs == nil || fs.Cols() != cfg.featureDim() {
		t.Fatal("fs missing under SUFE")
	}
}

func TestMMDDomainAdaptationTrains(t *testing.T) {
	cfg := tinyConfig()
	cfg.DAMethod = "mmd"
	cfg.Epochs = 2
	sources := []*repr.Dataset{syntheticDataset("s0", 40, 4, 8, []int{0, 5}, 14)}
	target := syntheticDataset("tgt", 40, 4, 8, []int{9}, 15)
	tr := NewTrainer(cfg, sources, target)
	if tr.Model.DomainAdapterParams() != nil {
		t.Fatal("MMD adaptation must not create a domain classifier")
	}
	stats := tr.Train()
	if len(stats) != 2 {
		t.Fatalf("stats: %d", len(stats))
	}
	// MMD loss is recorded in the DA slot.
	if stats[0].DA == 0 && stats[1].DA == 0 {
		t.Log("note: MMD loss was exactly zero (degenerate batches possible)")
	}
}
