package core

import (
	"bytes"
	"testing"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

func TestBundleRoundTrip(t *testing.T) {
	interp := lei.NewSimLLM(lei.Config{})
	e := embed.New(16)
	seqs := logdata.Build(logdata.SystemB(), 5, 0.005, window.Default())
	table := repr.BuildEventTable(seqs, interp, e)
	d := repr.BuildDataset(seqs, table)

	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	m := NewModel(cfg, 3)
	before := m.Score(d.X, 64)

	var buf bytes.Buffer
	if err := SaveBundle(&buf, m, table); err != nil {
		t.Fatal(err)
	}
	det, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := det.Model.Score(d.X, 64)
	for i := range before {
		if diff := before[i] - after[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("score %d drifted across save/load: %v vs %v", i, before[i], after[i])
		}
	}
	if det.Table.Len() != table.Len() {
		t.Fatalf("table length %d vs %d", det.Table.Len(), table.Len())
	}
	// Embeddings must be reconstructed exactly (deterministic embedder).
	for i := range table.Vectors.Data {
		if det.Table.Vectors.Data[i] != table.Vectors.Data[i] {
			t.Fatal("event embeddings drifted across save/load")
		}
	}
}

func TestLoadBundleRejectsGarbage(t *testing.T) {
	if _, err := LoadBundle(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("expected decode error")
	}
}
