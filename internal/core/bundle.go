package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/repr"
)

// Bundle is the serialized form of a deployed LogSynergy model: the
// configuration, trained parameters, and the target system's event table
// (templates + interpretations; embeddings are recomputed from the
// deterministic embedder on load).
type Bundle struct {
	Config     Config               `json:"config"`
	NumSystems int                  `json:"num_systems"`
	System     string               `json:"system"`
	EmbedDim   int                  `json:"embed_dim"`
	Interps    []lei.Interpretation `json:"interps"`
	Params     json.RawMessage      `json:"params"`
}

// SaveBundle serializes a trained model and its target event table.
func SaveBundle(w io.Writer, m *Model, table *repr.EventTable) error {
	var paramBuf bytes.Buffer
	if err := m.Params.Save(&paramBuf); err != nil {
		return fmt.Errorf("core: saving parameters: %w", err)
	}
	b := Bundle{
		Config:     m.Cfg,
		NumSystems: m.numSystems,
		System:     table.System,
		EmbedDim:   table.Dim,
		Interps:    table.Interps,
		Params:     json.RawMessage(paramBuf.Bytes()),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// validate rejects bundles whose structure would crash or mis-size model
// reconstruction, with errors that name the corrupt field.
func (b *Bundle) validate() error {
	c := b.Config
	switch {
	case b.EmbedDim <= 0:
		return fmt.Errorf("core: bundle embed dim %d must be positive", b.EmbedDim)
	case b.EmbedDim != c.EmbedDim:
		return fmt.Errorf("core: bundle embed dim %d does not match model config embed dim %d",
			b.EmbedDim, c.EmbedDim)
	case b.NumSystems < 1:
		return fmt.Errorf("core: bundle records %d systems, need at least 1", b.NumSystems)
	case c.ModelDim <= 0 || c.Heads <= 0 || c.FFDim <= 0 || c.Depth <= 0:
		return fmt.Errorf("core: bundle config has non-positive architecture dims (model %d, heads %d, ff %d, depth %d)",
			c.ModelDim, c.Heads, c.FFDim, c.Depth)
	case c.ModelDim%c.Heads != 0:
		return fmt.Errorf("core: bundle model dim %d not divisible by %d heads", c.ModelDim, c.Heads)
	case len(b.Params) == 0 || bytes.Equal(bytes.TrimSpace(b.Params), []byte("null")),
		bytes.Equal(bytes.TrimSpace(b.Params), []byte("[]")):
		// A missing or empty payload would "load" as a random-init model.
		return fmt.Errorf("core: bundle has no parameter payload")
	}
	return nil
}

// LoadBundle reconstructs a detector from a serialized bundle. The event
// embeddings are recomputed with a fresh embedder of the recorded
// dimension — the hash embedder is deterministic, so the reconstruction is
// exact. A corrupted stream (truncation, bit flips, mismatched dims)
// yields a descriptive error, never a panic.
func LoadBundle(r io.Reader) (det *Detector, err error) {
	// Backstop: whatever validation misses must still surface as an error
	// on a hostile byte stream, not take the process down.
	defer func() {
		if rec := recover(); rec != nil {
			det, err = nil, fmt.Errorf("core: corrupt bundle: %v", rec)
		}
	}()
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding bundle: %w", err)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	m := NewModel(b.Config, b.NumSystems)
	if err := m.Params.Load(bytes.NewReader(b.Params)); err != nil {
		return nil, fmt.Errorf("core: loading bundle parameters: %w", err)
	}
	e := embed.New(b.EmbedDim)
	texts := make([]string, len(b.Interps))
	for i, in := range b.Interps {
		texts[i] = in.Text
	}
	table := &repr.EventTable{
		System:  b.System,
		Dim:     b.EmbedDim,
		Vectors: e.EmbedAll(texts),
		Interps: b.Interps,
	}
	return NewDetector(m, table), nil
}
