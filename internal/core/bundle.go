package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/repr"
)

// Bundle is the serialized form of a deployed LogSynergy model: the
// configuration, trained parameters, and the target system's event table
// (templates + interpretations; embeddings are recomputed from the
// deterministic embedder on load).
type Bundle struct {
	Config     Config               `json:"config"`
	NumSystems int                  `json:"num_systems"`
	System     string               `json:"system"`
	EmbedDim   int                  `json:"embed_dim"`
	Interps    []lei.Interpretation `json:"interps"`
	Params     json.RawMessage      `json:"params"`
}

// SaveBundle serializes a trained model and its target event table.
func SaveBundle(w io.Writer, m *Model, table *repr.EventTable) error {
	var paramBuf bytes.Buffer
	if err := m.Params.Save(&paramBuf); err != nil {
		return fmt.Errorf("core: saving parameters: %w", err)
	}
	b := Bundle{
		Config:     m.Cfg,
		NumSystems: m.numSystems,
		System:     table.System,
		EmbedDim:   table.Dim,
		Interps:    table.Interps,
		Params:     json.RawMessage(paramBuf.Bytes()),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// LoadBundle reconstructs a detector from a serialized bundle. The event
// embeddings are recomputed with a fresh embedder of the recorded
// dimension — the hash embedder is deterministic, so the reconstruction is
// exact.
func LoadBundle(r io.Reader) (*Detector, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding bundle: %w", err)
	}
	m := NewModel(b.Config, b.NumSystems)
	if err := m.Params.Load(bytes.NewReader(b.Params)); err != nil {
		return nil, err
	}
	e := embed.New(b.EmbedDim)
	texts := make([]string, len(b.Interps))
	for i, in := range b.Interps {
		texts[i] = in.Text
	}
	table := &repr.EventTable{
		System:  b.System,
		Dim:     b.EmbedDim,
		Vectors: e.EmbedAll(texts),
		Interps: b.Interps,
	}
	return NewDetector(m, table), nil
}
