package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/repr"
)

// Bundle is the serialized form of a deployed LogSynergy model: the
// configuration, trained parameters, and the target system's event table
// (templates + interpretations; embeddings are recomputed from the
// deterministic embedder on load).
type Bundle struct {
	Config     Config               `json:"config"`
	NumSystems int                  `json:"num_systems"`
	System     string               `json:"system"`
	EmbedDim   int                  `json:"embed_dim"`
	Interps    []lei.Interpretation `json:"interps"`
	Params     json.RawMessage      `json:"params"`
}

// SaveBundle serializes a trained model and its target event table.
func SaveBundle(w io.Writer, m *Model, table *repr.EventTable) error {
	var paramBuf bytes.Buffer
	if err := m.Params.Save(&paramBuf); err != nil {
		return fmt.Errorf("core: saving parameters: %w", err)
	}
	b := Bundle{
		Config:     m.Cfg,
		NumSystems: m.numSystems,
		System:     table.System,
		EmbedDim:   table.Dim,
		Interps:    table.Interps,
		Params:     json.RawMessage(paramBuf.Bytes()),
	}
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(b); err != nil {
		return err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return err
	}
	// Integrity footer: format version + CRC32C over the JSON body
	// (including its trailing newline). LoadBundle verifies it, turning
	// silent truncation and bit flips into loud checksum errors.
	_, err := fmt.Fprintf(w, bundleFooterFmt, bundleFooterVersion, crc32.Checksum(body.Bytes(), bundleCRCTable))
	return err
}

// The bundle footer is one trailing comment-style line after the JSON:
//
//	#lsbundle v1 crc32c=xxxxxxxx
//
// The version lets the format grow; a loader refuses versions newer than
// it understands. Bundles written before the footer existed still load
// (with a warning) — the footer's absence simply skips verification.
const (
	bundleFooterPrefix  = "#lsbundle v"
	bundleFooterFmt     = bundleFooterPrefix + "%d crc32c=%08x\n"
	bundleFooterVersion = 1
)

var bundleCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WarnLegacyBundle receives the warning emitted when a footer-less
// (pre-versioning) bundle loads successfully. Replaceable for tests and
// embedding applications; the default writes to stderr.
var WarnLegacyBundle = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

// splitBundleFooter separates the serialized bundle into JSON body and
// footer line. A missing footer returns ok=false with the whole input as
// body (the legacy format).
func splitBundleFooter(data []byte) (body, footer []byte, ok bool) {
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	line := trimmed[i+1:]
	if !bytes.HasPrefix(line, []byte(bundleFooterPrefix)) {
		return data, nil, false
	}
	return data[:i+1], line, true
}

// verifyBundleFooter checks the footer's version and CRC against body.
func verifyBundleFooter(body, footer []byte) error {
	var version int
	var sum uint32
	if n, err := fmt.Sscanf(string(footer), bundleFooterFmt, &version, &sum); err != nil || n != 2 {
		return fmt.Errorf("core: malformed bundle footer %q", footer)
	}
	if version > bundleFooterVersion {
		return fmt.Errorf("core: bundle format v%d is newer than supported v%d", version, bundleFooterVersion)
	}
	if got := crc32.Checksum(body, bundleCRCTable); got != sum {
		return fmt.Errorf("core: bundle checksum mismatch (got %08x want %08x): truncated or corrupted", got, sum)
	}
	return nil
}

// validate rejects bundles whose structure would crash or mis-size model
// reconstruction, with errors that name the corrupt field.
func (b *Bundle) validate() error {
	c := b.Config
	switch {
	case b.EmbedDim <= 0:
		return fmt.Errorf("core: bundle embed dim %d must be positive", b.EmbedDim)
	case b.EmbedDim != c.EmbedDim:
		return fmt.Errorf("core: bundle embed dim %d does not match model config embed dim %d",
			b.EmbedDim, c.EmbedDim)
	case b.NumSystems < 1:
		return fmt.Errorf("core: bundle records %d systems, need at least 1", b.NumSystems)
	case c.ModelDim <= 0 || c.Heads <= 0 || c.FFDim <= 0 || c.Depth <= 0:
		return fmt.Errorf("core: bundle config has non-positive architecture dims (model %d, heads %d, ff %d, depth %d)",
			c.ModelDim, c.Heads, c.FFDim, c.Depth)
	case c.ModelDim%c.Heads != 0:
		return fmt.Errorf("core: bundle model dim %d not divisible by %d heads", c.ModelDim, c.Heads)
	case len(b.Params) == 0 || bytes.Equal(bytes.TrimSpace(b.Params), []byte("null")),
		bytes.Equal(bytes.TrimSpace(b.Params), []byte("[]")):
		// A missing or empty payload would "load" as a random-init model.
		return fmt.Errorf("core: bundle has no parameter payload")
	}
	return nil
}

// LoadBundle reconstructs a detector from a serialized bundle. The event
// embeddings are recomputed with a fresh embedder of the recorded
// dimension — the hash embedder is deterministic, so the reconstruction is
// exact. A corrupted stream (truncation, bit flips, mismatched dims)
// yields a descriptive error, never a panic. Footered bundles are
// CRC-verified before any JSON is parsed; legacy footer-less bundles
// still load, with a warning through WarnLegacyBundle.
func LoadBundle(r io.Reader) (det *Detector, err error) {
	// Backstop: whatever validation misses must still surface as an error
	// on a hostile byte stream, not take the process down.
	defer func() {
		if rec := recover(); rec != nil {
			det, err = nil, fmt.Errorf("core: corrupt bundle: %v", rec)
		}
	}()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading bundle: %w", err)
	}
	body, footer, footered := splitBundleFooter(data)
	if footered {
		if err := verifyBundleFooter(body, footer); err != nil {
			return nil, err
		}
	}
	var b Bundle
	// json.Unmarshal (not a Decoder) so trailing garbage — say, the torn
	// remnant of a footer after truncation — is an error, not ignored.
	if err := json.Unmarshal(body, &b); err != nil {
		return nil, fmt.Errorf("core: decoding bundle: %w", err)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	if !footered {
		obs.Default().Counter("core.bundle_legacy_total").Inc()
		WarnLegacyBundle("core: loading legacy bundle without integrity footer; re-save to add checksum protection")
	}
	m := NewModel(b.Config, b.NumSystems)
	if err := m.Params.Load(bytes.NewReader(b.Params)); err != nil {
		return nil, fmt.Errorf("core: loading bundle parameters: %w", err)
	}
	e := embed.New(b.EmbedDim)
	texts := make([]string, len(b.Interps))
	for i, in := range b.Interps {
		texts[i] = in.Text
	}
	table := &repr.EventTable{
		System:  b.System,
		Dim:     b.EmbedDim,
		Vectors: e.EmbedAll(texts),
		Interps: b.Interps,
	}
	return NewDetector(m, table), nil
}
