// Package core implements LogSynergy (paper §III): a transformer-encoder
// feature extractor F whose pooled features are disentangled by SUFE into
// system-unified features F_u(x) (anomaly detection) and system-specific
// features F_s(x) (system identification), with a CLUB mutual-information
// penalty between the two and DAAN domain-adversarial adaptation on F_u.
// The total training objective is Eq. 5:
//
//	L = L_system + L_anomaly + λ_MI·L_MI + λ_DA·L_DA
package core

// Config holds LogSynergy's architecture and training hyper-parameters.
type Config struct {
	// EmbedDim is the event-embedding (input) dimension.
	EmbedDim int
	// ModelDim is the transformer model dimension; the pooled feature is
	// split into F_u and F_s of ModelDim/2 each (the paper sets the two
	// feature blocks to equal dimension).
	ModelDim int
	// Heads is the attention head count (paper: 12).
	Heads int
	// FFDim is the encoder feed-forward dimension (paper: 2048).
	FFDim int
	// Depth is the number of encoder layers (paper: 6).
	Depth int
	// Dropout is applied inside the encoder.
	Dropout float64
	// InputNoise is the std of Gaussian noise added to event embeddings
	// during training. Event embeddings are exact repeated vectors (one
	// per template), so without noise the classifier can memorize the
	// finitely many training vectors instead of their semantic
	// neighborhoods; the noise forces locally smooth decisions, standing
	// in for the natural variation of real pre-trained embeddings.
	InputNoise float64

	// LambdaMI weights the CLUB mutual-information loss (paper: 0.01).
	LambdaMI float64
	// LambdaDA weights the domain-adaptation loss (paper: 0.01).
	LambdaDA float64

	// LR is the AdamW learning rate (paper: 1e-4 at batch 1024; the small
	// CPU configuration uses a larger rate for its much smaller batches).
	LR float64
	// Epochs is the number of training epochs (paper: 10).
	Epochs int
	// BatchSize is the minibatch size (paper: 1024).
	BatchSize int
	// TargetShare is the fraction of each batch drawn from the target
	// system (the rest splits evenly across sources).
	TargetShare float64
	// PosFraction is the anomaly oversampling fraction per batch.
	PosFraction float64

	// UseSUFE enables system-unified feature extraction (the system
	// classifier + CLUB MI minimization). Disabling it yields the paper's
	// "LogSynergy w/o SUFE" ablation arm.
	UseSUFE bool
	// UseDA enables domain adaptation.
	UseDA bool
	// DAMethod selects the adaptation mechanism: "daan" (the paper's
	// choice: adversarial, dynamic ω) or "mmd" (kernel distribution
	// alignment, the classic alternative the paper cites in §II-A).
	// Empty means "daan".
	DAMethod string
	// DynamicOmega enables DAAN's dynamic adversarial factor; disabling it
	// degrades DA to plain marginal alignment (ablation bench).
	DynamicOmega bool

	// Seed drives all model initialization and sampling.
	Seed int64
	// Quiet suppresses progress logging.
	Quiet bool
}

// DefaultConfig returns the CPU-scale configuration used by the test and
// benchmark harness: the paper's architecture family at reduced width so a
// full cross-system training run completes in seconds on a laptop core.
func DefaultConfig() Config {
	return Config{
		EmbedDim:     32,
		ModelDim:     32,
		Heads:        2,
		FFDim:        64,
		Depth:        2,
		Dropout:      0.1,
		InputNoise:   0.04,
		LambdaMI:     0.01,
		LambdaDA:     0.01,
		LR:           3e-3,
		Epochs:       10,
		BatchSize:    64,
		TargetShare:  0.25,
		PosFraction:  0.35,
		UseSUFE:      true,
		UseDA:        true,
		DynamicOmega: true,
		Seed:         1,
		Quiet:        true,
	}
}

// PaperConfig returns the configuration reported in §IV-A4 (six encoder
// layers, twelve heads, model dimension 768, feed-forward 2048, AdamW at
// 1e-4, batch 1024, ten epochs). Training it is only practical with the
// paper's GPU budget; it exists so the full-scale experiment is one flag
// away from the paper's exact setting.
func PaperConfig() Config {
	c := DefaultConfig()
	c.EmbedDim = 768
	c.ModelDim = 768
	c.Heads = 12
	c.FFDim = 2048
	c.Depth = 6
	c.LR = 1e-4
	c.BatchSize = 1024
	c.Epochs = 10
	return c
}

// featureDim returns the width of F_u (and of F_s when SUFE is on): the
// paper splits F's output into two equal-dimension blocks.
func (c Config) featureDim() int {
	if c.UseSUFE {
		return c.ModelDim / 2
	}
	return c.ModelDim
}

// fusedDim is the width of F's fused per-step output.
func (c Config) fusedDim() int { return c.ModelDim }
