package core

import (
	"bytes"
	"strings"
	"testing"

	"logsynergy/internal/obs"
)

// TestBundleFooterRoundtrip: SaveBundle appends the versioned CRC footer
// and LoadBundle verifies it silently (no legacy warning).
func TestBundleFooterRoundtrip(t *testing.T) {
	raw := goodBundle(t)
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	footer := lines[len(lines)-1]
	if !strings.HasPrefix(footer, "#lsbundle v1 crc32c=") {
		t.Fatalf("footer %q", footer)
	}

	var warned []string
	defer func(old func(string)) { WarnLegacyBundle = old }(WarnLegacyBundle)
	WarnLegacyBundle = func(msg string) { warned = append(warned, msg) }

	det, err := LoadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadBundle: %v", err)
	}
	if det == nil {
		t.Fatal("nil detector")
	}
	if len(warned) != 0 {
		t.Fatalf("footered bundle warned: %v", warned)
	}
}

// TestBundleFooterDetectsCorruption: any body mutation that still parses
// as JSON is now caught by the checksum before JSON is even attempted.
func TestBundleFooterDetectsCorruption(t *testing.T) {
	raw := goodBundle(t)
	// Flip one digit inside a number: structurally valid JSON, different
	// semantics — exactly the corruption a checksum exists for.
	i := bytes.Index(raw, []byte(`"num_systems":2`))
	if i < 0 {
		t.Fatal("marker not found; bundle layout changed")
	}
	mut := append([]byte(nil), raw...)
	mut[i+len(`"num_systems":`)] = '3'
	_, err := LoadBundle(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("LoadBundle = %v, want checksum mismatch", err)
	}
}

// TestBundleFooterNewerVersionRefused: a footer from a future format
// version must be refused, not half-parsed.
func TestBundleFooterNewerVersionRefused(t *testing.T) {
	raw := goodBundle(t)
	body, _, ok := splitBundleFooter(raw)
	if !ok {
		t.Fatal("no footer on fresh bundle")
	}
	fut := append(append([]byte(nil), body...), []byte("#lsbundle v99 crc32c=00000000\n")...)
	_, err := LoadBundle(bytes.NewReader(fut))
	if err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("LoadBundle = %v, want version refusal", err)
	}
}

// TestBundleLegacyLoadsWithWarning: a pre-footer bundle (bare JSON)
// still loads, emits the legacy warning, and bumps the obs counter.
func TestBundleLegacyLoadsWithWarning(t *testing.T) {
	raw := goodBundle(t)
	body, _, ok := splitBundleFooter(raw)
	if !ok {
		t.Fatal("no footer on fresh bundle")
	}

	var warned []string
	defer func(old func(string)) { WarnLegacyBundle = old }(WarnLegacyBundle)
	WarnLegacyBundle = func(msg string) { warned = append(warned, msg) }
	before := obs.Default().Snapshot().Counters["core.bundle_legacy_total"]

	det, err := LoadBundle(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("legacy bundle refused: %v", err)
	}
	if det == nil {
		t.Fatal("nil detector")
	}
	if len(warned) != 1 || !strings.Contains(warned[0], "legacy bundle") {
		t.Fatalf("warnings %v", warned)
	}
	if after := obs.Default().Snapshot().Counters["core.bundle_legacy_total"]; after != before+1 {
		t.Fatalf("legacy counter %d -> %d", before, after)
	}

	// A corrupt legacy bundle (no footer to check) still errors via JSON
	// and validation, never panics.
	_, err = LoadBundle(bytes.NewReader(body[:len(body)/2]))
	if err == nil {
		t.Fatal("truncated legacy bundle loaded")
	}
}

// TestBundleFooterMalformed: a recognizable but garbled footer is an
// error — better loud than guessing.
func TestBundleFooterMalformed(t *testing.T) {
	raw := goodBundle(t)
	body, _, _ := splitBundleFooter(raw)
	bad := append(append([]byte(nil), body...), []byte("#lsbundle vX nonsense\n")...)
	_, err := LoadBundle(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "footer") {
		t.Fatalf("LoadBundle = %v, want malformed footer error", err)
	}
}

// TestBundleTruncatedAtFooterBoundary documents the one blind spot
// backwards compatibility forces: truncating exactly at the body/footer
// boundary yields a byte-identical legacy bundle, which loads (with the
// warning). Anything shorter or longer fails.
func TestBundleTruncatedAtFooterBoundary(t *testing.T) {
	raw := goodBundle(t)
	body, footer, _ := splitBundleFooter(raw)
	defer func(old func(string)) { WarnLegacyBundle = old }(WarnLegacyBundle)
	WarnLegacyBundle = func(string) {}
	for cut := 1; cut < len(footer); cut += 5 {
		if _, err := LoadBundle(bytes.NewReader(raw[:len(body)+cut])); err == nil {
			t.Fatalf("bundle with %d torn footer bytes loaded", cut)
		}
	}
	if _, err := LoadBundle(bytes.NewReader(body)); err != nil {
		t.Fatalf("boundary truncation (legacy-identical) refused: %v", err)
	}
}
