package core

import (
	"testing"

	"logsynergy/internal/lei"
	"logsynergy/internal/tensor"
)

// TestTrainingDeterministicUnderParallelism guards the runtime's central
// reproducibility contract: with parallel kernels enabled, two full Trainer
// runs from the same cfg.Seed must produce bit-identical losses and scores.
// The parallel matmuls are row-sharded (bit-identical to serial) and the
// blocked reductions combine partials in a fixed order, so nothing in the
// training loop may depend on goroutine scheduling; if nondeterministic
// reduction order ever leaks into a kernel, this test catches it.
func TestTrainingDeterministicUnderParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	prevW := tensor.SetParallelism(4)
	prevT := tensor.SetMinParallelWork(1) // force every kernel through the parallel path
	defer func() {
		tensor.SetParallelism(prevW)
		tensor.SetMinParallelWork(prevT)
	}()

	sources, train, test := buildScenario(t, lei.NewSimLLM(lei.Config{}))
	cfg := fastConfig()
	cfg.Epochs = 2

	type runOut struct {
		stats  []EpochStats
		scores []float64
	}
	run := func() runOut {
		trainer := NewTrainer(cfg, sources, train)
		stats := trainer.Train()
		return runOut{stats: stats, scores: trainer.Model.Score(test.X, 64)}
	}

	a, b := run(), run()
	if len(a.stats) != len(b.stats) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.stats), len(b.stats))
	}
	for e := range a.stats {
		if a.stats[e] != b.stats[e] {
			t.Fatalf("epoch %d stats differ under parallelism:\n  run1: %+v\n  run2: %+v",
				e, a.stats[e], b.stats[e])
		}
	}
	for i := range a.scores {
		if a.scores[i] != b.scores[i] {
			t.Fatalf("score %d differs under parallelism: %v vs %v", i, a.scores[i], b.scores[i])
		}
	}
}
