package core

import (
	"fmt"
	"strings"
	"time"

	"logsynergy/internal/metrics"
	"logsynergy/internal/obs"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// Detector throughput metrics (obs.Default): scores-per-second falls out
// of core.scores_total over the sum of core.score_batch_seconds; report
// build latency is the cost of materializing one alert.
var (
	scoresTotal        = obs.Default().Counter("core.scores_total")
	scoreBatchSeconds  = obs.Default().Histogram("core.score_batch_seconds")
	reportBuildSeconds = obs.Default().Histogram("core.report_build_seconds")
)

// Threshold is the fixed anomaly decision threshold the paper uses for
// every classifier (§III-E, §IV-A3).
const Threshold = 0.5

// Report is the anomaly report generated for a detected sequence
// (paper §III-E and §VI-A "Report"): the original event templates, their
// LEI interpretations, the anomaly score, and metadata.
type Report struct {
	// System identifies the monitored (target) system.
	System string
	// Timestamp is when the detection was made.
	Timestamp time.Time
	// Score is the anomaly probability in [0,1].
	Score float64
	// EventIDs is the offending sequence.
	EventIDs []int
	// Templates holds the raw event templates of the sequence.
	Templates []string
	// Interpretations holds the LEI interpretation of each event.
	Interpretations []string
}

// String renders the report the way the on-call alert does.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ANOMALY system=%s score=%.3f time=%s\n", r.System, r.Score, r.Timestamp.Format(time.RFC3339))
	for i := range r.EventIDs {
		fmt.Fprintf(&b, "  [%d] %s\n      -> %s\n", r.EventIDs[i], r.Templates[i], r.Interpretations[i])
	}
	return b.String()
}

// Detector is the online detection phase: it embeds incoming sequences
// with the same event table used offline and scores them with the trained
// model's F + C_anomaly.
type Detector struct {
	Model *Model
	Table *repr.EventTable
	// Now supplies report timestamps (overridable in tests).
	Now func() time.Time
}

// NewDetector wires a trained model to the target system's event table.
func NewDetector(m *Model, table *repr.EventTable) *Detector {
	return &Detector{Model: m, Table: table, Now: time.Now}
}

// ScoreSequence scores a single event-id sequence.
func (d *Detector) ScoreSequence(eventIDs []int) float64 {
	x := d.embed(eventIDs)
	return d.Model.Score(x, 1)[0]
}

// ScoreSequences scores a batch of event-id sequences, sharding the batch
// across the tensor worker pool (online scoring is embarrassingly parallel:
// the model and event table are read-only during inference). Scores are
// returned in input order; sequences may have differing lengths. With
// parallelism 1 this degrades to a serial loop over ScoreSequence.
func (d *Detector) ScoreSequences(seqs [][]int) []float64 {
	if len(seqs) == 0 {
		return nil
	}
	start := time.Now()
	scores := make([]float64, len(seqs))
	// Each forward pass is O(T·D·model) — far past any serial-fallback
	// threshold, so size the work estimate to always shard when workers > 1.
	work := len(seqs) * tensor.MinParallelWork()
	tensor.ParallelRange(len(seqs), work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			scores[i] = d.ScoreSequence(seqs[i])
		}
	})
	scoresTotal.Add(int64(len(seqs)))
	scoreBatchSeconds.ObserveSince(start)
	return scores
}

// BatchResult pairs one sequence's score with its report (nil when the
// score does not cross the detection threshold).
type BatchResult struct {
	Score  float64
	Report *Report
}

// DetectBatch scores sequences concurrently and materializes reports for
// the anomalous ones, preserving input order. Report construction stays on
// the calling goroutine: it is cheap, and keeping it serial means report
// timestamps from d.Now are drawn in input order.
func (d *Detector) DetectBatch(seqs [][]int) []BatchResult {
	scores := d.ScoreSequences(seqs)
	out := make([]BatchResult, len(seqs))
	for i, score := range scores {
		out[i].Score = score
		if score > Threshold {
			out[i].Report = d.BuildReport(seqs[i], score)
		}
	}
	return out
}

// Detect scores a sequence and, if it crosses the threshold, produces the
// anomaly report.
func (d *Detector) Detect(eventIDs []int) (float64, *Report) {
	score := d.ScoreSequence(eventIDs)
	if score <= Threshold {
		return score, nil
	}
	return score, d.BuildReport(eventIDs, score)
}

// BuildReport assembles the anomaly report for a sequence without running
// the model (used by the pattern library for cached anomalous patterns).
func (d *Detector) BuildReport(eventIDs []int, score float64) *Report {
	start := time.Now()
	defer reportBuildSeconds.ObserveSince(start)
	rep := &Report{
		System:    d.Table.System,
		Timestamp: d.Now(),
		Score:     score,
		EventIDs:  append([]int(nil), eventIDs...),
	}
	for _, id := range eventIDs {
		in := d.Table.Interps[id]
		rep.Templates = append(rep.Templates, in.Template)
		rep.Interpretations = append(rep.Interpretations, in.Text)
	}
	return rep
}

// embed maps an event-id sequence to a [1,T,D] tensor via the event table.
func (d *Detector) embed(eventIDs []int) *tensor.Tensor {
	dim := d.Table.Dim
	x := tensor.New(1, len(eventIDs), dim)
	for j, id := range eventIDs {
		if id < 0 || id >= d.Table.Vectors.Rows() {
			panic(fmt.Sprintf("core: event id %d outside table of %d events", id, d.Table.Vectors.Rows()))
		}
		copy(x.Data[j*dim:(j+1)*dim], d.Table.Vectors.Data[id*dim:(id+1)*dim])
	}
	return x
}

// EvaluateDataset scores every sequence of a materialized dataset and
// returns the paper's (P, R, F1) triple at the fixed 0.5 threshold.
func EvaluateDataset(m *Model, d *repr.Dataset) metrics.Result {
	scores := m.Score(d.X, 256)
	return metrics.Evaluate(scores, d.Labels, Threshold)
}
