package core

import (
	"fmt"
	"math"
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// Trainer runs LogSynergy's offline training phase (paper §III-D): samples
// from every source system plus the small labeled slice of the target
// system, optimized jointly under Eq. 5.
type Trainer struct {
	Model *Model
	Cfg   Config

	sources []*repr.Dataset
	target  *repr.Dataset

	samplers []*repr.BalancedSampler // one per dataset, target last
	opt      *optim.AdamW
	sched    *optim.CosineSchedule
	rng      *rand.Rand
}

// NewTrainer wires a model to its training datasets. The system-classifier
// label of sources[i] is i; the target system's is len(sources).
func NewTrainer(cfg Config, sources []*repr.Dataset, target *repr.Dataset) *Trainer {
	model := NewModel(cfg, len(sources)+1)
	all := nn.NewParamSet()
	all.Merge(model.Params)
	if dp := model.DomainAdapterParams(); dp != nil {
		all.Merge(dp)
	}
	t := &Trainer{
		Model:   model,
		Cfg:     cfg,
		sources: sources,
		target:  target,
		opt:     optim.NewAdamW(all, cfg.LR),
		rng:     rand.New(rand.NewSource(cfg.Seed + 303)),
	}
	totalSamples := target.Len()
	for _, s := range sources {
		totalSamples += s.Len()
	}
	steps := totalSamples / cfg.BatchSize * cfg.Epochs
	if steps < cfg.Epochs {
		steps = cfg.Epochs
	}
	// Cosine decay to a tenth of the base rate consolidates the decision
	// boundary late in training (the transfer targets have few positive
	// concepts; a hot final LR leaves them on the boundary).
	t.sched = optim.NewCosineSchedule(t.opt, cfg.LR/10, steps)
	for _, s := range sources {
		t.samplers = append(t.samplers, repr.NewBalancedSampler(s.Labels, cfg.PosFraction, t.rng))
	}
	t.samplers = append(t.samplers, repr.NewBalancedSampler(target.Labels, cfg.PosFraction, t.rng))
	return t
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch                          int
	Total, Anomaly, System, MI, DA float64
	Omega                          float64
}

// Train runs the configured number of epochs and returns per-epoch stats.
func (t *Trainer) Train() []EpochStats {
	totalSamples := t.target.Len()
	for _, s := range t.sources {
		totalSamples += s.Len()
	}
	stepsPerEpoch := totalSamples / t.Cfg.BatchSize
	if stepsPerEpoch < 1 {
		stepsPerEpoch = 1
	}
	totalSteps := stepsPerEpoch * t.Cfg.Epochs

	var stats []EpochStats
	step := 0
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		var acc EpochStats
		acc.Epoch = epoch
		for s := 0; s < stepsPerEpoch; s++ {
			// Standard DANN/DAAN schedule: ramp the GRL strength with
			// training progress p: λ = 2/(1+e^{-10p}) − 1.
			p := float64(step) / float64(totalSteps)
			grl := 2/(1+math.Exp(-10*p)) - 1
			x, labels, systems, domains := t.assembleBatch()
			losses := t.Model.trainStep(x, labels, systems, domains, grl)
			t.Model.Params.ClipGradNorm(5)
			t.sched.Tick()
			t.opt.Step()
			acc.Total += losses.Total
			acc.Anomaly += losses.Anomaly
			acc.System += losses.System
			acc.MI += losses.MI
			acc.DA += losses.DA
			step++
		}
		inv := 1 / float64(stepsPerEpoch)
		acc.Total *= inv
		acc.Anomaly *= inv
		acc.System *= inv
		acc.MI *= inv
		acc.DA *= inv
		if t.Model.da != nil {
			t.Model.da.UpdateOmega()
			acc.Omega = t.Model.da.Omega()
		}
		if !t.Cfg.Quiet {
			fmt.Printf("epoch %d: total=%.4f anomaly=%.4f system=%.4f mi=%.4f da=%.4f omega=%.2f\n",
				epoch, acc.Total, acc.Anomaly, acc.System, acc.MI, acc.DA, acc.Omega)
		}
		stats = append(stats, acc)
	}
	return stats
}

// assembleBatch composes one minibatch: TargetShare of the rows come from
// the target dataset, the rest split evenly across sources. Each dataset's
// rows are drawn through its balanced sampler.
func (t *Trainer) assembleBatch() (x *tensor.Tensor, labels []float64, systems []int, domains []float64) {
	b := t.Cfg.BatchSize
	nTarget := int(float64(b) * t.Cfg.TargetShare)
	if nTarget < 1 {
		nTarget = 1
	}
	nSource := b - nTarget
	perSource := nSource / len(t.sources)

	seqLen := t.target.SeqLen
	dim := t.target.Dim()
	x = tensor.New(b, seqLen, dim)
	labels = make([]float64, b)
	systems = make([]int, b)
	domains = make([]float64, b)

	row := 0
	copyRows := func(d *repr.Dataset, sampler *repr.BalancedSampler, count, sysID int, domain float64) {
		idx := sampler.Sample(count)
		bx, bl := d.Gather(idx)
		stride := seqLen * dim
		copy(x.Data[row*stride:(row+count)*stride], bx.Data)
		for i := 0; i < count; i++ {
			labels[row+i] = bl[i]
			systems[row+i] = sysID
			domains[row+i] = domain
		}
		row += count
	}
	for i, s := range t.sources {
		count := perSource
		if i == len(t.sources)-1 {
			count = nSource - perSource*(len(t.sources)-1) // remainder
		}
		copyRows(s, t.samplers[i], count, i, 0)
	}
	copyRows(t.target, t.samplers[len(t.samplers)-1], nTarget, len(t.sources), 1)
	return x, labels, systems, domains
}

// TrainModel is the one-call entry point: build a trainer, train it, and
// return the fitted model.
func TrainModel(cfg Config, sources []*repr.Dataset, target *repr.Dataset) *Model {
	t := NewTrainer(cfg, sources, target)
	t.Train()
	return t.Model
}
