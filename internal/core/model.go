package core

import (
	"math"
	"math/rand"

	"logsynergy/internal/club"
	"logsynergy/internal/daan"
	"logsynergy/internal/mmd"
	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// Model is the LogSynergy network (paper §III-D1): feature extractor F
// (transformer encoder), anomaly classifier C_anomaly, system classifier
// C_system, mutual-information module MI (CLUB) and domain-adaptation
// module DA (DAAN). Only F and C_anomaly run during online detection.
type Model struct {
	Cfg Config

	// Params holds F, C_anomaly and C_system — the parameters the main
	// optimizer owns. The DA classifiers train through the same optimizer
	// (their set is merged in by the Trainer); CLUB's q has its own.
	Params *nn.ParamSet

	encoder   *nn.TransformerEncoder
	inputProj *nn.Linear
	poolProj  *nn.Linear
	canomaly  *nn.MLP
	csystem   *nn.MLP
	mi        *club.Estimator
	da        *daan.Adapter

	numSystems int
	rng        *rand.Rand
}

// NewModel builds a LogSynergy model for numSystems training systems
// (sources plus target; the system classifier predicts which one a sample
// came from).
func NewModel(cfg Config, numSystems int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	fd := cfg.featureDim()
	m := &Model{
		Cfg:        cfg,
		Params:     ps,
		encoder:    nn.NewTransformerEncoder(ps, "F", rng, cfg.EmbedDim, cfg.ModelDim, cfg.Heads, cfg.FFDim, cfg.Depth, cfg.Dropout),
		inputProj:  nn.NewLinear(ps, "Fskip", rng, cfg.EmbedDim, cfg.ModelDim),
		poolProj:   nn.NewLinear(ps, "Fpool", rng, 2*cfg.ModelDim, cfg.fusedDim()),
		canomaly:   nn.NewMLP(ps, "Canomaly", rng, fd, fd, 1),
		numSystems: numSystems,
		rng:        rng,
	}
	if cfg.UseSUFE {
		m.csystem = nn.NewMLP(ps, "Csystem", rng, fd, fd, numSystems)
		m.mi = club.New(rand.New(rand.NewSource(cfg.Seed+101)), fd, fd, 2*fd, 1e-3)
	}
	if cfg.UseDA && cfg.DAMethod != "mmd" {
		m.da = daan.New(rand.New(rand.NewSource(cfg.Seed+202)), fd, fd, 2, cfg.DynamicOmega)
	}
	return m
}

// DomainAdapterParams exposes the DA classifiers' parameters so the
// Trainer can register them with the main optimizer (they are updated
// adversarially via the GRL, exactly as in DAAN). Returns nil without DA.
func (m *Model) DomainAdapterParams() *nn.ParamSet {
	if m.da == nil {
		return nil
	}
	return m.da.Params
}

// forwardOut bundles the per-batch forward products: the sequence-level
// anomaly logits plus the pooled unified/specific features the auxiliary
// objectives (C_system, MI, DA) operate on. fsMean is nil without SUFE.
type forwardOut struct {
	logits *nn.Node // [B,1] sequence anomaly logits
	fuMean *nn.Node // [B,fd] pooled system-unified features
	fsMean *nn.Node // [B,fd] pooled system-specific features (SUFE only)
}

// forward runs the full feature extractor.
//
// F fuses, per timestep, the transformer's contextual state h_t with a
// projection of the raw event embedding x_t (a skip connection past the
// encoder, keeping each event's LEI-unified identity intact regardless of
// the surrounding system-flavored context). The fused per-step features
// split into unified (F_u) and specific (F_s) halves under SUFE.
//
// The anomaly readout is multiple-instance: C_anomaly scores every step's
// F_u and the sequence logit is the per-step maximum. A sequence is
// anomalous iff it *contains* an anomalous event (the labeling rule in
// §IV-A1), and the max readout represents "contains" exactly — pooling
// first and classifying second dilutes a single anomalous event by 1/T
// and lets normal context shadow it, which breaks cross-system transfer
// on the 0.17%-anomaly-rate targets of Table III.
func (m *Model) forward(g *nn.Graph, x *nn.Node, train bool) forwardOut {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	md := m.Cfg.ModelDim
	h := m.encoder.Forward(g, x, m.rng, train)  // [B,T,M]
	skip := g.Tanh(m.inputProj.Forward3D(g, x)) // [B,T,M]
	hFlat := g.Reshape(h, b*t, md)
	sFlat := g.Reshape(skip, b*t, md)
	zFlat := m.poolProj.Forward(g, g.ConcatCols(hFlat, sFlat)) // [B*T, fusedDim]

	fd := m.Cfg.featureDim()
	fuFlat := zFlat
	var fsFlat *nn.Node
	if m.Cfg.UseSUFE {
		fuFlat = g.SliceCols(zFlat, 0, fd)
		fsFlat = g.SliceCols(zFlat, fd, 2*fd)
	}

	stepLogits := m.canomaly.Forward(g, fuFlat)         // [B*T,1]
	logits := g.MaxTime(g.Reshape(stepLogits, b, t, 1)) // [B,1]

	out := forwardOut{
		logits: logits,
		fuMean: g.MeanTime(g.Reshape(fuFlat, b, t, fd)),
	}
	if fsFlat != nil {
		out.fsMean = g.MeanTime(g.Reshape(fsFlat, b, t, fd))
	}
	return out
}

// batchLosses bundles the per-batch objective terms (Eq. 5 components).
type batchLosses struct {
	Total, Anomaly, System, MI, DA float64
}

// trainStep builds the full training graph for one batch and runs
// backward. x is [B,T,E]; labels are anomaly labels; systems are system
// ids in [0, numSystems); domains are 0 (source) / 1 (target); grlLambda
// is the current gradient-reversal strength.
func (m *Model) trainStep(x *tensor.Tensor, labels []float64, systems []int, domains []float64, grlLambda float64) batchLosses {
	if m.Cfg.InputNoise > 0 {
		x = x.Clone()
		for i := range x.Data {
			x.Data[i] += m.rng.NormFloat64() * m.Cfg.InputNoise
		}
	}
	g := nn.NewGraph()
	fwd := m.forward(g, g.Const(x), true)

	loss := g.BCEWithLogits(fwd.logits, labels)
	out := batchLosses{Anomaly: loss.Value.Data[0]}

	if m.Cfg.UseSUFE {
		sysLoss := g.CrossEntropyLogits(m.csystem.Forward(g, fwd.fsMean), systems)
		out.System = sysLoss.Value.Data[0]
		loss = g.Add(loss, sysLoss)

		miLoss := m.mi.Estimate(g, fwd.fuMean, fwd.fsMean)
		out.MI = miLoss.Value.Data[0]
		loss = g.Add(loss, g.Scale(miLoss, m.Cfg.LambdaMI))
	}

	if m.Cfg.UseDA {
		var daLoss *nn.Node
		if m.Cfg.DAMethod == "mmd" {
			daLoss = mmd.Loss(g, fwd.fuMean, domains, nil)
		} else {
			probs := make([]float64, len(labels))
			for i, z := range fwd.logits.Value.Data {
				probs[i] = 1 / (1 + math.Exp(-z))
			}
			daLoss = m.da.Loss(g, fwd.fuMean, domains, probs, grlLambda)
		}
		out.DA = daLoss.Value.Data[0]
		loss = g.Add(loss, g.Scale(daLoss, m.Cfg.LambdaDA))
	}

	out.Total = loss.Value.Data[0]
	g.Backward(loss)

	// Train CLUB's variational q on the detached feature batch, keeping
	// the MI bound tight as the feature distribution moves.
	if m.Cfg.UseSUFE {
		m.mi.LearnStep(fwd.fuMean.Value, fwd.fsMean.Value)
	}
	return out
}

// Score returns anomaly probabilities for a batch tensor [N,T,E],
// processing in chunks of batch to bound memory. This is the online
// detection path: F and C_anomaly only (paper §III-E).
func (m *Model) Score(x *tensor.Tensor, batch int) []float64 {
	n := x.Dim(0)
	if batch <= 0 {
		batch = 256
	}
	t, d := x.Dim(1), x.Dim(2)
	stride := t * d
	out := make([]float64, 0, n)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		chunk := tensor.FromSlice(x.Data[start*stride:end*stride], end-start, t, d)
		g := nn.NewGraph()
		fwd := m.forward(g, g.Const(chunk), false)
		for _, z := range fwd.logits.Value.Data {
			out = append(out, 1/(1+math.Exp(-z)))
		}
	}
	return out
}

// SystemLogits predicts the system id distribution from F_s for a batch
// (diagnostics; only meaningful with SUFE enabled).
func (m *Model) SystemLogits(x *tensor.Tensor) *tensor.Tensor {
	if !m.Cfg.UseSUFE {
		return nil
	}
	g := nn.NewGraph()
	fwd := m.forward(g, g.Const(x), false)
	return m.csystem.Forward(g, fwd.fsMean).Value
}

// Features returns the pooled (F_u, F_s) values for a batch (diagnostics
// and the case-study experiment). fs is nil without SUFE.
func (m *Model) Features(x *tensor.Tensor) (fuV, fsV *tensor.Tensor) {
	g := nn.NewGraph()
	fwd := m.forward(g, g.Const(x), false)
	if fwd.fsMean == nil {
		return fwd.fuMean.Value, nil
	}
	return fwd.fuMean.Value, fwd.fsMean.Value
}
