package core

import (
	"testing"
	"time"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

// buildScenario assembles a small cross-system transfer scenario:
// BGL + Spirit as sources, Thunderbird as target.
func buildScenario(t *testing.T, interp lei.Interpreter) (sources []*repr.Dataset, train, test *repr.Dataset) {
	t.Helper()
	e := embed.New(32)
	mk := func(spec *logdata.SystemSpec, lines int, seed int64) *logdata.Sequences {
		return logdata.Build(spec, seed, float64(lines)/float64(spec.Lines), window.Default())
	}
	src1 := repr.Build(mk(logdata.BGL(), 10000, 1), interp, e)
	src2 := repr.Build(mk(logdata.Spirit(), 10000, 2), interp, e)
	tgtSeqs := mk(logdata.Thunderbird(), 12000, 3)
	trainSeqs, testSeqs := tgtSeqs.SplitTrainTest(400)
	table := repr.BuildEventTable(tgtSeqs, interp, e)
	return []*repr.Dataset{src1, src2},
		repr.BuildDataset(trainSeqs, table),
		repr.BuildDataset(testSeqs, table)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.BatchSize = 48
	return cfg
}

func TestLogSynergyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sources, train, test := buildScenario(t, lei.NewSimLLM(lei.Config{}))
	cfg := fastConfig()
	trainer := NewTrainer(cfg, sources, train)
	stats := trainer.Train()
	if len(stats) != cfg.Epochs {
		t.Fatalf("want %d epoch stats, got %d", cfg.Epochs, len(stats))
	}
	if stats[len(stats)-1].Anomaly >= stats[0].Anomaly {
		t.Errorf("anomaly loss did not decrease: %.4f -> %.4f",
			stats[0].Anomaly, stats[len(stats)-1].Anomaly)
	}
	res := EvaluateDataset(trainer.Model, test)
	t.Logf("target F1=%.3f P=%.3f R=%.3f", res.F1, res.Precision, res.Recall)
	if res.F1 < 0.5 {
		t.Fatalf("cross-system F1 %.3f too low — transfer failed", res.F1)
	}
}

func TestWithoutSUFEStillTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sources, train, test := buildScenario(t, lei.NewSimLLM(lei.Config{}))
	cfg := fastConfig()
	cfg.UseSUFE = false
	m := TrainModel(cfg, sources, train)
	res := EvaluateDataset(m, test)
	t.Logf("w/o SUFE F1=%.3f", res.F1)
	if res.F1 <= 0.1 {
		t.Fatalf("w/o SUFE model should still detect something, F1=%.3f", res.F1)
	}
}

func TestScoreBatchingConsistent(t *testing.T) {
	sources, train, _ := buildScenario(t, lei.NewSimLLM(lei.Config{}))
	_ = sources
	cfg := fastConfig()
	m := NewModel(cfg, 3)
	a := m.Score(train.X, 7)
	b := m.Score(train.X, 1000)
	if len(a) != len(b) || len(a) != train.Len() {
		t.Fatalf("score lengths %d/%d want %d", len(a), len(b), train.Len())
	}
	for i := range a {
		if diff := a[i] - b[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("batched scores differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for _, s := range a {
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestDetectorReports(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sources, train, test := buildScenario(t, lei.NewSimLLM(lei.Config{}))
	m := TrainModel(fastConfig(), sources, train)
	det := NewDetector(m, test.Table)
	det.Now = func() time.Time { return time.Date(2023, 6, 1, 12, 0, 0, 0, time.UTC) }

	// Find one test sequence of each class and check report behaviour.
	scores := m.Score(test.X, 256)
	reported, suppressed := 0, 0
	for i := 0; i < test.Len() && (reported == 0 || suppressed == 0); i++ {
		ids := sequenceIDs(test, i)
		score, rep := det.Detect(ids)
		if scores[i] > Threshold {
			if rep == nil {
				t.Fatal("high score must produce a report")
			}
			if rep.System != "Thunderbird" || len(rep.Interpretations) != len(ids) {
				t.Fatalf("malformed report: %+v", rep)
			}
			if rep.Score != score {
				t.Fatal("report score mismatch")
			}
			reported++
		} else {
			if rep != nil {
				t.Fatal("low score must not produce a report")
			}
			suppressed++
		}
	}
	if reported == 0 {
		t.Fatal("no sequence crossed the detection threshold")
	}
}

// sequenceIDs reconstructs a dataset row's event ids by nearest-neighbor
// lookup in the event table (exact, since rows are copies of table rows).
func sequenceIDs(d *repr.Dataset, row int) []int {
	tl, dim := d.SeqLen, d.Dim()
	ids := make([]int, tl)
	for j := 0; j < tl; j++ {
		vec := d.X.Data[(row*tl+j)*dim : (row*tl+j+1)*dim]
		for ev := 0; ev < d.Table.Vectors.Rows(); ev++ {
			tv := d.Table.Vectors.Data[ev*dim : (ev+1)*dim]
			same := true
			for k := range vec {
				if vec[k] != tv[k] {
					same = false
					break
				}
			}
			if same {
				ids[j] = ev
				break
			}
		}
	}
	return ids
}

func TestConfigFeatureDim(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.featureDim() != cfg.ModelDim/2 {
		t.Fatal("SUFE splits F's output into two equal halves")
	}
	cfg.UseSUFE = false
	if cfg.featureDim() != cfg.ModelDim {
		t.Fatal("without SUFE the full model dim is the feature dim")
	}
}

func TestPaperConfigMatchesSection4A4(t *testing.T) {
	c := PaperConfig()
	if c.ModelDim != 768 || c.Heads != 12 || c.FFDim != 2048 || c.Depth != 6 {
		t.Fatalf("architecture mismatch: %+v", c)
	}
	if c.LR != 1e-4 || c.BatchSize != 1024 || c.Epochs != 10 {
		t.Fatalf("training setup mismatch: %+v", c)
	}
	if c.LambdaMI != 0.01 || c.LambdaDA != 0.01 {
		t.Fatalf("lambda mismatch: %+v", c)
	}
}

func TestDetectorScoreAfterTableExtend(t *testing.T) {
	interp := lei.NewSimLLM(lei.Config{})
	e := embed.New(16)
	seqs := logdata.Build(logdata.SystemB(), 5, 0.003, window.Default())
	table := repr.BuildEventTable(seqs, interp, e)
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	m := NewModel(cfg, 2)
	det := NewDetector(m, table)

	before := table.Len()
	table.Extend(interp.Interpret("a system", "brand new template shape"), e)
	if table.Len() != before+1 {
		t.Fatal("Extend must grow the table")
	}
	ids := make([]int, 10)
	ids[3] = before // the new event id must be scorable
	score := det.ScoreSequence(ids)
	if score < 0 || score > 1 {
		t.Fatalf("score %v out of range", score)
	}
}
