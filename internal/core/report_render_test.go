package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		System:          "SystemB",
		Timestamp:       time.Date(2023, 9, 1, 12, 0, 0, 0, time.UTC),
		Score:           0.987,
		EventIDs:        []int{4, 9},
		Templates:       []string{"[ERR] engine: allocation of <*> bytes failed", "[DBG] engine: GET <*> hit"},
		Interpretations: []string{"process terminated because system ran out of memory", "cache lookup | served"},
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.System != "SystemB" || back.Score != 0.987 || len(back.EventIDs) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestMarkdownRendering(t *testing.T) {
	md := sampleReport().Markdown()
	if !strings.Contains(md, "**ANOMALY** `SystemB` score **0.987**") {
		t.Fatalf("summary line missing:\n%s", md)
	}
	if !strings.Contains(md, "| 1 | E4 |") || !strings.Contains(md, "| 2 | E9 |") {
		t.Fatalf("event rows missing:\n%s", md)
	}
	// The pipe inside an interpretation must be escaped so the table holds.
	if !strings.Contains(md, `cache lookup \| served`) {
		t.Fatalf("cell escaping failed:\n%s", md)
	}
	if !strings.Contains(md, "```") {
		t.Fatal("raw template block missing")
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport().String()
	if !strings.Contains(s, "ANOMALY system=SystemB") || !strings.Contains(s, "-> process terminated") {
		t.Fatalf("text rendering incomplete:\n%s", s)
	}
}
