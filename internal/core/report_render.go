package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON serializes the report for webhook/queue consumers.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Markdown renders the report for chat-ops channels: a summary line, the
// interpreted events, and the raw templates in a collapsible-style block.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**ANOMALY** `%s` score **%.3f** at %s\n\n",
		r.System, r.Score, r.Timestamp.Format("2006-01-02 15:04:05 MST"))
	b.WriteString("| # | event | interpretation |\n|---|---|---|\n")
	for i := range r.EventIDs {
		interp := ""
		if i < len(r.Interpretations) {
			interp = r.Interpretations[i]
		}
		fmt.Fprintf(&b, "| %d | E%d | %s |\n", i+1, r.EventIDs[i], escapeCell(interp))
	}
	b.WriteString("\nraw templates:\n```\n")
	for _, t := range r.Templates {
		b.WriteString(t)
		b.WriteByte('\n')
	}
	b.WriteString("```\n")
	return b.String()
}

// escapeCell keeps template text from breaking the markdown table.
func escapeCell(s string) string {
	return strings.NewReplacer("|", "\\|", "\n", " ").Replace(s)
}
