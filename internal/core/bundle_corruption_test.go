package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// goodBundle serializes a small valid bundle for the corruption tests.
func goodBundle(t *testing.T) []byte {
	t.Helper()
	cfg := DefaultConfig()
	m := NewModel(cfg, 2)
	e := embed.New(cfg.EmbedDim)
	table := &repr.EventTable{System: "SystemB", Dim: cfg.EmbedDim, Vectors: tensor.New(0, cfg.EmbedDim)}
	table.Extend(lei.Interpretation{Template: "service heartbeat ok", Text: "heartbeat"}, e)
	var buf bytes.Buffer
	if err := SaveBundle(&buf, m, table); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadMustFail asserts LoadBundle turns the bytes into a descriptive
// error mentioning want — and, above all, does not panic.
func loadMustFail(t *testing.T, raw []byte, want string) {
	t.Helper()
	det, err := LoadBundle(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("corrupted bundle loaded successfully (det=%v)", det != nil)
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestLoadBundleTruncated chops a valid bundle at every 1/8th of its
// length: each prefix must produce an error, never a panic or a
// detector built from partial state.
func TestLoadBundleTruncated(t *testing.T) {
	raw := goodBundle(t)
	for i := 1; i < 8; i++ {
		cut := len(raw) * i / 8
		loadMustFail(t, raw[:cut], "")
	}
	loadMustFail(t, nil, "")
}

// TestLoadBundleFlippedBytes flips single bytes across a valid bundle.
// Each mutation must either still decode to a fully valid bundle or
// fail with an error; a panic anywhere fails the test. (JSON is mostly
// text, so many flips corrupt syntax; flips inside numbers can produce
// a different-but-valid bundle, which is beyond checksums' absence.)
func TestLoadBundleFlippedBytes(t *testing.T) {
	raw := goodBundle(t)
	for pos := 0; pos < len(raw); pos += 13 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x20
		det, err := LoadBundle(bytes.NewReader(mut))
		if err == nil && det == nil {
			t.Fatalf("flip at %d: nil detector without error", pos)
		}
	}
}

// TestLoadBundleWrongEmbedDim corrupts the recorded embedding dimension:
// the bundle must be rejected with an error naming the mismatch, because
// a table rebuilt at the wrong width would crash scoring much later.
func TestLoadBundleWrongEmbedDim(t *testing.T) {
	var b Bundle
	// A Decoder stops at the end of the JSON value, skipping the
	// integrity footer SaveBundle now appends.
	if err := json.NewDecoder(bytes.NewReader(goodBundle(t))).Decode(&b); err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*Bundle)) []byte {
		c := b
		f(&c)
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	loadMustFail(t, mutate(func(c *Bundle) { c.EmbedDim = c.EmbedDim * 2 }), "embed dim")
	loadMustFail(t, mutate(func(c *Bundle) { c.EmbedDim = 0 }), "embed dim")
	loadMustFail(t, mutate(func(c *Bundle) { c.EmbedDim = -4 }), "embed dim")
	loadMustFail(t, mutate(func(c *Bundle) { c.Config.EmbedDim = c.Config.EmbedDim + 1 }), "embed dim")
	loadMustFail(t, mutate(func(c *Bundle) { c.NumSystems = 0 }), "systems")
	loadMustFail(t, mutate(func(c *Bundle) { c.Config.Heads = 3 }), "heads")
	loadMustFail(t, mutate(func(c *Bundle) { c.Config.Depth = -1 }), "dims")
	loadMustFail(t, mutate(func(c *Bundle) { c.Params = nil }), "parameter")
}

// TestLoadBundleCorruptParams mangles the nested parameter payload: a
// shape/data mismatch must be a descriptive error from the parameter
// loader, not a tensor-construction panic.
func TestLoadBundleCorruptParams(t *testing.T) {
	var b Bundle
	if err := json.NewDecoder(bytes.NewReader(goodBundle(t))).Decode(&b); err != nil {
		t.Fatal(err)
	}
	var params []struct {
		Name  string    `json:"name"`
		Shape []int     `json:"shape"`
		Data  []float64 `json:"data"`
	}
	if err := json.Unmarshal(b.Params, &params); err != nil {
		t.Fatal(err)
	}
	if len(params) == 0 {
		t.Fatal("bundle has no parameters to corrupt")
	}

	remarshal := func() []byte {
		c := b
		p, err := json.Marshal(params)
		if err != nil {
			t.Fatal(err)
		}
		c.Params = p
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Shape product disagrees with data length (the historical panic path
	// through tensor.FromSlice).
	saved := params[0].Shape
	params[0].Shape = append([]int{1}, saved...)
	loadMustFail(t, remarshal(), "shape")
	params[0].Shape = saved

	// Right shape, truncated data.
	savedData := params[0].Data
	params[0].Data = savedData[:len(savedData)/2]
	loadMustFail(t, remarshal(), "values")
	params[0].Data = savedData

	// Unknown parameter name.
	savedName := params[0].Name
	params[0].Name = "nonexistent.weight"
	loadMustFail(t, remarshal(), "unknown parameter")
	params[0].Name = savedName

	// Untouched payload still loads after all that mutation.
	if _, err := LoadBundle(bytes.NewReader(remarshal())); err != nil {
		t.Fatalf("restored bundle failed to load: %v", err)
	}
}
