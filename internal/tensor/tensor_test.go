package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3)
	if a.Size() != 6 || a.Rows() != 2 || a.Cols() != 3 {
		t.Fatalf("unexpected dims: %v", a.Shape)
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatalf("Set/At round trip failed")
	}
	if a.Data[5] != 5 {
		t.Fatalf("row-major layout violated: %v", a.Data)
	}
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, -1)
	if b.Shape[0] != 3 || b.Shape[1] != 2 {
		t.Fatalf("got shape %v", b.Shape)
	}
	b.Data[0] = 99
	if a.Data[0] != 99 {
		t.Fatal("Reshape must be a view, not a copy")
	}
}

func TestReshapeRejectsBadShape(t *testing.T) {
	a := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping 6 elements to 4")
		}
	}()
	a.Reshape(2, 2)
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d]=%v want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	out := FromSlice([]float64{10, 10, 10, 10}, 2, 2)
	MatMulInto(out, a, b, true)
	want := []float64{11, 12, 13, 14}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("accumulate[%d]=%v want %v", i, out.Data[i], w)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 7)
	b := Transpose(Transpose(a))
	if !a.SameShape(b) {
		t.Fatalf("shape changed: %v -> %v", a.Shape, b.Shape)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("transpose twice must be identity")
		}
	}
}

func TestBMMMatchesLoopedMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 3, 4, 5)
	b := Randn(rng, 1, 3, 5, 2)
	c := BMM(a, b)
	for i := 0; i < 3; i++ {
		ai := FromSlice(a.Data[i*20:(i+1)*20], 4, 5)
		bi := FromSlice(b.Data[i*10:(i+1)*10], 5, 2)
		ci := MatMul(ai, bi)
		for j, v := range ci.Data {
			if !almostEqual(c.Data[i*8+j], v, 1e-12) {
				t.Fatalf("batch %d element %d: %v vs %v", i, j, c.Data[i*8+j], v)
			}
		}
	}
}

func TestTransposeLast2(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 3)
	b := TransposeLast2(a)
	if b.At(0, 2, 1) != a.At(0, 1, 2) {
		t.Fatal("TransposeLast2 mismatch")
	}
	if b.At(1, 0, 1) != a.At(1, 1, 0) {
		t.Fatal("TransposeLast2 mismatch in second batch")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 3, 4, 6)
	s := SoftmaxLastDim(a)
	for r := 0; r < 4; r++ {
		sum := 0.0
		for c := 0; c < 6; c++ {
			v := s.At(r, c)
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax value out of (0,1): %v", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 1002}, 1, 3)
	s := SoftmaxLastDim(a)
	for _, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", s.Data)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale: %v", got)
	}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot: %v", Dot(a, b))
	}
	if Sum(a) != 6 || Mean(a) != 2 {
		t.Fatalf("Sum/Mean: %v %v", Sum(a), Mean(a))
	}
}

func TestAddScaledInPlace(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	AddScaledInPlace(a, b, 0.5)
	if a.Data[0] != 2 || a.Data[1] != 2.5 {
		t.Fatalf("got %v", a.Data)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to adding a constant to every logit.
func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 2, 1, 5)
		shift := rng.Float64() * 10
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		sa, sb := SoftmaxLastDim(a), SoftmaxLastDim(b)
		for i := range sa.Data {
			if !almostEqual(sa.Data[i], sb.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{-3, 2, 1}, 3)
	if a.MaxAbs() != 3 {
		t.Fatalf("MaxAbs=%v", a.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}
