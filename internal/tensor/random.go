package tensor

import "math/rand"

// Randn fills a new tensor of the given shape with samples from
// N(0, std^2) drawn from rng. Passing the rng explicitly keeps every
// model initialization in the project deterministic and reproducible.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with samples from U(lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}
