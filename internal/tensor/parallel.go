package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"logsynergy/internal/obs"
)

// This file is the shared parallel compute runtime: a lazily started worker
// pool that every data-parallel kernel in the project shards onto. The
// partitioning rules are deliberately static — a range [0,n) always splits
// into the same contiguous spans for a given (n, worker count) — so that
// parallel results are reproducible run to run, and the matrix kernels are
// bit-identical to their serial counterparts (each output row is computed
// by exactly one worker in the serial per-row order; only reductions that
// combine chunk partials can differ from serial, by reassociation alone).
//
// Sizing: the pool defaults to runtime.GOMAXPROCS(0) workers, overridable
// with SetParallelism (the logsynergy CLI wires LOGSYNERGY_THREADS to it).
// Small operations stay on the calling goroutine: a kernel only shards when
// its estimated scalar-op count reaches MinParallelWork, because waking
// workers for a 4×4 matmul costs more than the multiply.

var (
	// parallelism is the configured worker count (0 = uninitialized, use
	// GOMAXPROCS at first read).
	parallelism atomic.Int64
	// minParallelWork is the serial-fallback threshold in estimated scalar
	// operations; work below it never leaves the calling goroutine.
	minParallelWork atomic.Int64

	poolMu      sync.Mutex
	poolTasks   chan func()
	poolWorkers atomic.Int64

	// Dispatch metrics (obs.Default): how often kernels take the serial
	// fallback vs shard onto the pool, and enqueue-to-completion latency
	// of pooled span tasks. Single atomic ops — cheap enough for the
	// per-kernel dispatch path.
	dispatchSerial   = obs.Default().Counter("tensor.dispatch.serial")
	dispatchParallel = obs.Default().Counter("tensor.dispatch.parallel")
	poolTaskSeconds  = obs.Default().Histogram("tensor.pool.task_seconds")
)

// DefaultMinParallelWork is the default serial-fallback threshold: kernels
// with fewer estimated scalar operations run serially. The value is roughly
// where a row-sharded matmul starts beating the serial kernel on commodity
// cores (goroutine handoff ~1µs vs ~3ns per multiply-add).
const DefaultMinParallelWork = 1 << 15

// Parallelism returns the current worker count used by parallel kernels.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the worker count for all parallel kernels and returns
// the previous setting. n <= 0 resets to runtime.GOMAXPROCS(0). Passing 1
// disables parallel execution entirely (every kernel takes its serial path).
func SetParallelism(n int) int {
	prev := int(parallelism.Load())
	if n <= 0 {
		parallelism.Store(0)
		return prev
	}
	parallelism.Store(int64(n))
	ensureWorkers(n)
	return prev
}

// MinParallelWork returns the serial-fallback threshold in estimated scalar
// operations.
func MinParallelWork() int {
	if w := minParallelWork.Load(); w > 0 {
		return int(w)
	}
	return DefaultMinParallelWork
}

// SetMinParallelWork sets the serial-fallback threshold and returns the
// previous setting. Lower values push smaller operations onto the pool
// (tests use 1 to force every kernel through the parallel path); w <= 0
// resets to DefaultMinParallelWork.
func SetMinParallelWork(w int) int {
	prev := int(minParallelWork.Load())
	if prev == 0 {
		prev = DefaultMinParallelWork
	}
	if w <= 0 {
		minParallelWork.Store(0)
	} else {
		minParallelWork.Store(int64(w))
	}
	return prev
}

// shouldParallel reports whether a kernel with the given estimated scalar-op
// count should shard onto the pool.
func shouldParallel(work int) bool {
	return work >= MinParallelWork() && Parallelism() > 1
}

// ensureWorkers grows the pool to at least n resident workers. Workers are
// never stopped; an idle worker parked on the task channel costs a few KB.
func ensureWorkers(n int) {
	if int(poolWorkers.Load()) >= n {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolTasks == nil {
		// The queue is sized generously once; nested kernels that overflow
		// it degrade to inline execution in ParallelRange.
		poolTasks = make(chan func(), 256)
	}
	for int(poolWorkers.Load()) < n {
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
		poolWorkers.Add(1)
	}
}

// ParallelRange splits [0,n) into at most Parallelism() contiguous spans
// and invokes fn(lo, hi) for each, returning when all spans are done. work
// is the caller's estimate of total scalar operations; below the
// serial-fallback threshold (or with parallelism 1, or n < 2) the entire
// range runs as fn(0, n) on the calling goroutine.
//
// The span boundaries depend only on n and the configured worker count, so
// a fixed configuration always produces the same partition — parallel runs
// are reproducible. fn must not panic: a panic in a pooled span crashes the
// process (kernels here only index slices they were handed).
func ParallelRange(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if n < 2 || !shouldParallel(work) {
		dispatchSerial.Inc()
		fn(0, n)
		return
	}
	dispatchParallel.Inc()
	spans := workers
	if spans > n {
		spans = n
	}
	ensureWorkers(workers)

	// Fork with a helping join. The caller seeds spans-1 tasks, runs the
	// last span itself, then — instead of parking until its spans finish —
	// pulls and executes queued tasks (its own or another invocation's)
	// while it waits. Helping makes nested ParallelRange calls (a batch
	// scorer sharding sequences whose forward passes shard matmuls)
	// deadlock-free: a joiner blocked on subtasks is always also a
	// consumer of the queue those subtasks sit in.
	var pending atomic.Int64
	pending.Store(int64(spans - 1))
	done := make(chan struct{})

	chunk := n / spans
	rem := n % spans
	lo := 0
	for s := 0; s < spans-1; s++ {
		hi := lo + chunk
		if s < rem {
			hi++
		}
		start, end := lo, hi
		enqueued := time.Now()
		task := func() {
			fn(start, end)
			poolTaskSeconds.ObserveSince(enqueued)
			if pending.Add(-1) == 0 {
				close(done)
			}
		}
		select {
		case poolTasks <- task:
		default:
			// Queue saturated: degrade to inline execution rather than block.
			task()
		}
		lo = hi
	}
	fn(lo, n) // the caller's own span

	for pending.Load() > 0 {
		select {
		case task := <-poolTasks:
			task()
		case <-done:
			return
		}
	}
}

// reduceChunk is the fixed block size deterministic parallel reductions
// split on. It depends on neither n nor the worker count, so the partial
// ordering — and therefore the floating-point result — of a reduction is a
// function of input length alone.
const reduceChunk = 4096

// parallelReduce computes a reduction over [0,n) by evaluating fn on fixed
// 4096-element blocks and summing the partials in block order. The result
// is deterministic for a given n regardless of the worker count (it can
// differ from the pure left-to-right serial sum by reassociation only).
func parallelReduce(n, workPerElem int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if n <= reduceChunk || !shouldParallel(n*workPerElem) {
		return fn(0, n)
	}
	blocks := (n + reduceChunk - 1) / reduceChunk
	partials := make([]float64, blocks)
	ParallelRange(blocks, n*workPerElem, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * reduceChunk
			hi := lo + reduceChunk
			if hi > n {
				hi = n
			}
			partials[b] = fn(lo, hi)
		}
	})
	s := 0.0
	for _, p := range partials {
		s += p
	}
	return s
}
