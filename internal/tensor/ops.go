package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise. Shapes must match exactly.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a*s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace accumulates src into dst (dst += src).
func AddInPlace(dst, src *Tensor) {
	mustSameShape("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// AddScaledInPlace accumulates s*src into dst.
func AddScaledInPlace(dst *Tensor, src *Tensor, s float64) {
	mustSameShape("AddScaledInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += s * src.Data[i]
	}
}

// MatMul returns the matrix product of 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	a.mustDims(2)
	b.mustDims(2)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// Fresh buffers are already zero; accumulate into them directly.
	matMulInto(out.Data, a.Data, b.Data, m, k, n, true)
	return out
}

// MatMulInto computes out += a@b when accumulate, else out = a@b, reusing
// out's storage. All operands are 2-D with compatible shapes.
func MatMulInto(out, a, b *Tensor, accumulate bool) {
	a.mustDims(2)
	b.mustDims(2)
	out.mustDims(2)
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k || out.Shape[0] != m || out.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch out=%v a=%v b=%v", out.Shape, a.Shape, b.Shape))
	}
	matMulInto(out.Data, a.Data, b.Data, m, k, b.Shape[1], accumulate)
}

// matMulInto is the ikj-ordered kernel shared by the public entry points,
// with a 4-way unrolled inner loop.
func matMulInto(out, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(out[:m*n])
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : i*n+n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				orow[j] += av * brow[j]
				orow[j+1] += av * brow[j+1]
				orow[j+2] += av * brow[j+2]
				orow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	a.mustDims(2)
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// BMM returns the batched matrix product of 3-D tensors a [b,m,k] and
// b [b,k,n], producing [b,m,n].
func BMM(a, b *Tensor) *Tensor {
	a.mustDims(3)
	b.mustDims(3)
	bs, m, k := a.Shape[0], a.Shape[1], a.Shape[2]
	if b.Shape[0] != bs || b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: BMM shape mismatch %v x %v", a.Shape, b.Shape))
	}
	n := b.Shape[2]
	out := New(bs, m, n)
	for i := 0; i < bs; i++ {
		// Fresh buffer: accumulate to skip redundant zeroing.
		matMulInto(out.Data[i*m*n:(i+1)*m*n], a.Data[i*m*k:(i+1)*m*k], b.Data[i*k*n:(i+1)*k*n], m, k, n, true)
	}
	return out
}

// TransposeLast2 swaps the last two dimensions of a 3-D tensor.
func TransposeLast2(a *Tensor) *Tensor {
	a.mustDims(3)
	bs, m, n := a.Shape[0], a.Shape[1], a.Shape[2]
	out := New(bs, n, m)
	for b := 0; b < bs; b++ {
		src := a.Data[b*m*n:]
		dst := out.Data[b*m*n:]
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				dst[j*m+i] = src[i*n+j]
			}
		}
	}
	return out
}

// SoftmaxLastDim applies a numerically stable softmax along the final
// dimension, treating all leading dimensions as independent rows.
func SoftmaxLastDim(a *Tensor) *Tensor {
	if len(a.Shape) == 0 {
		return Scalar(1)
	}
	n := a.Shape[len(a.Shape)-1]
	out := New(a.Shape...)
	rows := a.Size() / n
	for r := 0; r < rows; r++ {
		softmaxRow(out.Data[r*n:(r+1)*n], a.Data[r*n:(r+1)*n])
	}
	return out
}

func softmaxRow(dst, src []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Sum returns the sum of all elements.
func Sum(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(a *Tensor) float64 {
	if a.Size() == 0 {
		return 0
	}
	return Sum(a) / float64(a.Size())
}

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Tensor) float64 {
	mustSameShape("Dot", a, b)
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm returns the Euclidean norm of all elements.
func Norm(a *Tensor) float64 {
	return math.Sqrt(Dot(a, a))
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
