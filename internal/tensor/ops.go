package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise. Shapes must match exactly.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.Shape...)
	ParallelRange(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.Shape...)
	ParallelRange(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	return out
}

// Mul returns the element-wise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.Shape...)
	ParallelRange(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	return out
}

// Scale returns a*s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	ParallelRange(len(a.Data), len(a.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Data[i] * s
		}
	})
	return out
}

// AddInPlace accumulates src into dst (dst += src).
func AddInPlace(dst, src *Tensor) {
	mustSameShape("AddInPlace", dst, src)
	ParallelRange(len(dst.Data), len(dst.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] += src.Data[i]
		}
	})
}

// AddScaledInPlace accumulates s*src into dst.
func AddScaledInPlace(dst *Tensor, src *Tensor, s float64) {
	mustSameShape("AddScaledInPlace", dst, src)
	ParallelRange(len(dst.Data), len(dst.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] += s * src.Data[i]
		}
	})
}

// MatMul returns the matrix product of 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	a.mustDims(2)
	b.mustDims(2)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// Fresh buffers are already zero; accumulate into them directly.
	matMulInto(out.Data, a.Data, b.Data, m, k, n, true)
	return out
}

// MatMulInto computes out += a@b when accumulate, else out = a@b, reusing
// out's storage. All operands are 2-D with compatible shapes.
func MatMulInto(out, a, b *Tensor, accumulate bool) {
	a.mustDims(2)
	b.mustDims(2)
	out.mustDims(2)
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k || out.Shape[0] != m || out.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch out=%v a=%v b=%v", out.Shape, a.Shape, b.Shape))
	}
	matMulInto(out.Data, a.Data, b.Data, m, k, b.Shape[1], accumulate)
}

// matMulInto dispatches between the serial kernel and the row-sharded
// parallel path. Both produce bit-identical results: each output row is
// always computed by matMulRows in the same per-row order, the parallel
// path merely assigns disjoint row spans to different workers.
func matMulInto(out, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(out[:m*n])
	}
	ParallelRange(m, 2*m*k*n, func(lo, hi int) {
		matMulRows(out, a, b, lo, hi, k, n)
	})
}

// matMulRows is the ikj-ordered kernel computing output rows [i0,i1), with
// a 4-way unrolled inner loop. It is the single source of truth for matrix
// multiplication: serial and parallel entry points both land here.
func matMulRows(out, a, b []float64, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : i*n+n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				orow[j] += av * brow[j]
				orow[j+1] += av * brow[j+1]
				orow[j+2] += av * brow[j+2]
				orow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	a.mustDims(2)
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	ParallelRange(m, m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				out.Data[j*m+i] = a.Data[i*n+j]
			}
		}
	})
	return out
}

// BMM returns the batched matrix product of 3-D tensors a [b,m,k] and
// b [b,k,n], producing [b,m,n]. The parallel path shards the flattened
// batch×row space, so small batches of tall matrices and large batches of
// small matrices both spread across all workers.
func BMM(a, b *Tensor) *Tensor {
	a.mustDims(3)
	b.mustDims(3)
	bs, m, k := a.Shape[0], a.Shape[1], a.Shape[2]
	if b.Shape[0] != bs || b.Shape[1] != k {
		panic(fmt.Sprintf("tensor: BMM shape mismatch %v x %v", a.Shape, b.Shape))
	}
	n := b.Shape[2]
	out := New(bs, m, n)
	if m == 0 || n == 0 {
		return out
	}
	// Fresh buffer: accumulate to skip redundant zeroing.
	ParallelRange(bs*m, 2*bs*m*k*n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			q, i := r/m, r%m
			matMulRows(out.Data[q*m*n:(q+1)*m*n], a.Data[q*m*k:(q+1)*m*k], b.Data[q*k*n:(q+1)*k*n], i, i+1, k, n)
		}
	})
	return out
}

// TransposeLast2 swaps the last two dimensions of a 3-D tensor.
func TransposeLast2(a *Tensor) *Tensor {
	a.mustDims(3)
	bs, m, n := a.Shape[0], a.Shape[1], a.Shape[2]
	out := New(bs, n, m)
	ParallelRange(bs, bs*m*n, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			src := a.Data[b*m*n:]
			dst := out.Data[b*m*n:]
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					dst[j*m+i] = src[i*n+j]
				}
			}
		}
	})
	return out
}

// SoftmaxLastDim applies a numerically stable softmax along the final
// dimension, treating all leading dimensions as independent rows.
func SoftmaxLastDim(a *Tensor) *Tensor {
	if len(a.Shape) == 0 {
		return Scalar(1)
	}
	n := a.Shape[len(a.Shape)-1]
	out := New(a.Shape...)
	if n == 0 {
		return out
	}
	rows := a.Size() / n
	// ~4 scalar ops per element (max, exp, sum, divide); exp dominates.
	ParallelRange(rows, 4*rows*n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			softmaxRow(out.Data[r*n:(r+1)*n], a.Data[r*n:(r+1)*n])
		}
	})
	return out
}

func softmaxRow(dst, src []float64) {
	maxv := math.Inf(-1)
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Sum returns the sum of all elements. Above the parallel threshold the sum
// is computed over fixed 4096-element blocks whose partials combine in
// block order — deterministic for a given length, within reassociation
// error of the serial left-to-right sum.
func Sum(a *Tensor) float64 {
	return parallelReduce(len(a.Data), 1, func(lo, hi int) float64 {
		s := 0.0
		for _, v := range a.Data[lo:hi] {
			s += v
		}
		return s
	})
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func Mean(a *Tensor) float64 {
	if a.Size() == 0 {
		return 0
	}
	return Sum(a) / float64(a.Size())
}

// Dot returns the inner product of two tensors of identical shape, using
// the same deterministic blocked reduction as Sum.
func Dot(a, b *Tensor) float64 {
	mustSameShape("Dot", a, b)
	return parallelReduce(len(a.Data), 2, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a.Data[i] * b.Data[i]
		}
		return s
	})
}

// Norm returns the Euclidean norm of all elements.
func Norm(a *Tensor) float64 {
	return math.Sqrt(Dot(a, a))
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
