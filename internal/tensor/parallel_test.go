package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"logsynergy/internal/obs"
)

// forceParallel routes every kernel through the parallel path with the
// given worker count for the duration of one test, restoring the previous
// runtime configuration afterwards.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	prevW := SetParallelism(workers)
	prevT := SetMinParallelWork(1)
	t.Cleanup(func() {
		SetParallelism(prevW)
		SetMinParallelWork(prevT)
	})
}

// serially evaluates fn with the serial kernels regardless of the ambient
// configuration.
func serially(fn func()) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	fn()
}

// matMulShapes are the equivalence-suite shapes, chosen to hit the sharding
// edge cases: degenerate 1×1, fewer rows than workers, rows not divisible
// by the worker count, empty contraction (k=0), empty output dimensions,
// and a shape large enough to clear the default serial-fallback threshold.
var matMulShapes = []struct {
	name    string
	m, k, n int
}{
	{"1x1x1", 1, 1, 1},
	{"m_lt_workers", 3, 5, 2},
	{"m_mod_workers", 7, 4, 5},
	{"k0", 5, 0, 3},
	{"m0", 0, 4, 3},
	{"n0", 4, 3, 0},
	{"odd_large", 33, 17, 29},
	{"tall", 129, 8, 3},
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(41))
	for _, tc := range matMulShapes {
		t.Run(tc.name, func(t *testing.T) {
			a := Randn(rng, 1, tc.m, tc.k)
			b := Randn(rng, 1, tc.k, tc.n)
			var want *Tensor
			serially(func() { want = MatMul(a, b) })
			got := MatMul(a, b)
			// Row sharding preserves the serial per-row reduction order, so
			// the results must be bit-identical, not merely close.
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("[%d] parallel %v != serial %v", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

func TestMatMulIntoParallelMatchesSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(42))
	for _, tc := range matMulShapes {
		t.Run(tc.name, func(t *testing.T) {
			a := Randn(rng, 1, tc.m, tc.k)
			b := Randn(rng, 1, tc.k, tc.n)
			for _, accumulate := range []bool{false, true} {
				seed := Randn(rng, 1, tc.m, tc.n)
				want, got := seed.Clone(), seed.Clone()
				serially(func() { MatMulInto(want, a, b, accumulate) })
				MatMulInto(got, a, b, accumulate)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("accumulate=%v [%d] parallel %v != serial %v", accumulate, i, got.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

func TestBMMParallelMatchesSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(43))
	shapes := []struct {
		name        string
		bs, m, k, n int
	}{
		{"1x1x1x1", 1, 1, 1, 1},
		{"batch_lt_workers", 2, 3, 4, 5},
		{"rows_mod_workers", 3, 5, 2, 3},
		{"batch0", 0, 3, 4, 5},
		{"k0", 4, 2, 0, 3},
		{"odd_large", 5, 13, 7, 11},
	}
	for _, tc := range shapes {
		t.Run(tc.name, func(t *testing.T) {
			a := Randn(rng, 1, tc.bs, tc.m, tc.k)
			b := Randn(rng, 1, tc.bs, tc.k, tc.n)
			var want *Tensor
			serially(func() { want = BMM(a, b) })
			got := BMM(a, b)
			if !got.SameShape(want) {
				t.Fatalf("shape %v != %v", got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("[%d] parallel %v != serial %v", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

func TestElementwiseParallelMatchesSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 3, 7, 1025} {
		a := Randn(rng, 1, n)
		b := Randn(rng, 1, n)
		var wAdd, wSub, wMul, wScale *Tensor
		serially(func() {
			wAdd, wSub, wMul, wScale = Add(a, b), Sub(a, b), Mul(a, b), Scale(a, 1.7)
		})
		for name, pair := range map[string][2]*Tensor{
			"Add":   {Add(a, b), wAdd},
			"Sub":   {Sub(a, b), wSub},
			"Mul":   {Mul(a, b), wMul},
			"Scale": {Scale(a, 1.7), wScale},
		} {
			got, want := pair[0], pair[1]
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s n=%d [%d]: parallel %v != serial %v", name, n, i, got.Data[i], want.Data[i])
				}
			}
		}

		wantIP := a.Clone()
		serially(func() { AddScaledInPlace(wantIP, b, 0.3) })
		gotIP := a.Clone()
		AddScaledInPlace(gotIP, b, 0.3)
		for i := range wantIP.Data {
			if gotIP.Data[i] != wantIP.Data[i] {
				t.Fatalf("AddScaledInPlace n=%d [%d]: parallel %v != serial %v", n, i, gotIP.Data[i], wantIP.Data[i])
			}
		}
	}
}

func TestSoftmaxParallelMatchesSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(45))
	for _, shape := range [][]int{{1, 1}, {3, 5}, {7, 2, 9}, {130, 6}} {
		a := Randn(rng, 1, shape...)
		var want *Tensor
		serially(func() { want = SoftmaxLastDim(a) })
		got := SoftmaxLastDim(a)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v [%d]: parallel %v != serial %v", shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestReductionsParallelNearSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(46))
	for _, n := range []int{1, 100, 4096, 4097, 20000} {
		a := Randn(rng, 1, n)
		b := Randn(rng, 1, n)
		var wantSum, wantDot float64
		serially(func() { wantSum, wantDot = Sum(a), Dot(a, b) })
		gotSum, gotDot := Sum(a), Dot(a, b)
		// Blocked reduction reassociates the sum, so the parallel value may
		// drift from serial by accumulated rounding — but only within the
		// usual n·eps reassociation envelope, never materially.
		tol := 1e-10 * float64(n) * math.Max(1, math.Abs(wantSum))
		if d := math.Abs(gotSum - wantSum); d > tol {
			t.Fatalf("Sum n=%d: parallel %v vs serial %v (diff %v)", n, gotSum, wantSum, d)
		}
		tol = 1e-10 * float64(n) * math.Max(1, math.Abs(wantDot))
		if d := math.Abs(gotDot - wantDot); d > tol {
			t.Fatalf("Dot n=%d: parallel %v vs serial %v (diff %v)", n, gotDot, wantDot, d)
		}
	}
}

// TestReductionsWorkerCountInvariant pins the determinism contract: because
// reductions split on a fixed block size and combine partials in block
// order, the floating-point result is a function of the input alone, not of
// the worker count.
func TestReductionsWorkerCountInvariant(t *testing.T) {
	prevT := SetMinParallelWork(1)
	defer SetMinParallelWork(prevT)
	rng := rand.New(rand.NewSource(47))
	a := Randn(rng, 1, 30000)
	results := make([]float64, 0, 4)
	for _, workers := range []int{2, 3, 4, 8} {
		prevW := SetParallelism(workers)
		results = append(results, Sum(a))
		SetParallelism(prevW)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("Sum varies with worker count: %v vs %v", results[i], results[0])
		}
	}
}

func TestParallelRangeCoversRangeExactlyOnce(t *testing.T) {
	forceParallel(t, 4)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 64, 1001} {
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelRange(n, 1<<30, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad span [%d,%d)", n, lo, hi)
				return
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestSetParallelismRoundTrip(t *testing.T) {
	orig := Parallelism()
	prev := SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism()=%d after SetParallelism(3)", Parallelism())
	}
	if got := SetParallelism(prev); got != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", got)
	}
	if Parallelism() != orig {
		t.Fatalf("Parallelism()=%d, want restored %d", Parallelism(), orig)
	}
	// n <= 0 resets to GOMAXPROCS.
	SetParallelism(-1)
	if Parallelism() < 1 {
		t.Fatal("reset parallelism must be at least 1")
	}
	SetParallelism(prev)
}

// TestDispatchMetrics pins the obs instrumentation of the dispatch path:
// serial fallbacks and parallel shardings are counted, and pooled span
// tasks record their latency.
func TestDispatchMetrics(t *testing.T) {
	read := func() (serial, parallel, tasks int64) {
		s := obs.Default().Snapshot()
		return s.Counters["tensor.dispatch.serial"],
			s.Counters["tensor.dispatch.parallel"],
			s.Histograms["tensor.pool.task_seconds"].Count
	}

	forceParallel(t, 4)
	s0, p0, t0 := read()
	ParallelRange(64, 1<<20, func(lo, hi int) {})
	s1, p1, t1 := read()
	if p1 != p0+1 {
		t.Fatalf("parallel dispatch count %d -> %d, want +1", p0, p1)
	}
	if s1 != s0 {
		t.Fatalf("serial dispatch count moved on a parallel dispatch: %d -> %d", s0, s1)
	}
	// 4 workers -> 3 pooled spans (the caller runs the last one inline).
	if t1 != t0+3 {
		t.Fatalf("pool task observations %d -> %d, want +3", t0, t1)
	}

	serially(func() {
		ParallelRange(64, 1<<20, func(lo, hi int) {})
	})
	s2, p2, _ := read()
	if s2 != s1+1 {
		t.Fatalf("serial dispatch count %d -> %d, want +1", s1, s2)
	}
	if p2 != p1 {
		t.Fatalf("parallel dispatch count moved on a serial dispatch: %d -> %d", p1, p2)
	}
}
