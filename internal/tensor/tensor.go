// Package tensor provides dense, row-major float64 tensors and the raw
// numeric kernels the rest of the project builds on. It is deliberately
// small: shapes, element-wise arithmetic, matrix multiplication, batched
// matrix multiplication, reductions, and row softmax. Automatic
// differentiation lives one level up in internal/nn.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 array with an explicit shape.
// A Tensor with an empty shape is a scalar holding one element.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{Shape: []int{}, Data: []float64{v}}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rows returns the first dimension of a matrix (panics unless 2-D).
func (t *Tensor) Rows() int {
	t.mustDims(2)
	return t.Shape[0]
}

// Cols returns the second dimension of a matrix (panics unless 2-D).
func (t *Tensor) Cols() int {
	t.mustDims(2)
	return t.Shape[1]
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

func (t *Tensor) mustDims(n int) {
	if len(t.Shape) != n {
		panic(fmt.Sprintf("tensor: want %d dims, have shape %v", n, t.Shape))
	}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape. One dimension
// may be -1, in which case it is inferred from the element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one -1 dimension allowed in Reshape")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.Size()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = t.Size() / known
	}
	v := &Tensor{Shape: shape, Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return v
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.Shape, t.Data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.Shape, t.Size())
}
