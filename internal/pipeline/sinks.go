package pipeline

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"logsynergy/internal/core"
)

// DedupSink suppresses repeated alerts for the same event-id pattern
// within a cooldown window, forwarding the rest to the wrapped sink. Real
// incidents produce bursts of identical windows; operators want one page
// per pattern, not fifty (§VI-A "Report").
type DedupSink struct {
	// Next receives the deduplicated reports.
	Next Sink
	// Cooldown is the per-pattern suppression window.
	Cooldown time.Duration
	// Now is the clock (overridable in tests).
	Now func() time.Time

	mu   sync.Mutex
	seen map[string]time.Time
	// suppressed counts dropped duplicates.
	suppressed int
	// lastPrune is when seen was last swept of expired entries.
	lastPrune time.Time
}

// NewDedupSink wraps next with per-pattern deduplication.
func NewDedupSink(next Sink, cooldown time.Duration) *DedupSink {
	return &DedupSink{Next: next, Cooldown: cooldown, Now: time.Now, seen: make(map[string]time.Time)}
}

// Notify implements Sink.
func (d *DedupSink) Notify(r *core.Report) {
	key := patternKey(r.EventIDs)
	now := d.Now()
	d.mu.Lock()
	// Opportunistic pruning: entries older than Cooldown can never
	// suppress again, so sweep them at most once per Cooldown period.
	// Without this the map grows by one entry per distinct pattern for
	// the lifetime of the process.
	if d.lastPrune.IsZero() {
		d.lastPrune = now
	} else if now.Sub(d.lastPrune) >= d.Cooldown {
		for k, t := range d.seen {
			if now.Sub(t) >= d.Cooldown {
				delete(d.seen, k)
			}
		}
		d.lastPrune = now
	}
	last, ok := d.seen[key]
	if ok && now.Sub(last) < d.Cooldown {
		d.suppressed++
		d.mu.Unlock()
		return
	}
	d.seen[key] = now
	d.mu.Unlock()
	d.Next.Notify(r)
}

// Suppressed returns the duplicate count.
func (d *DedupSink) Suppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppressed
}

// Tracked returns the number of patterns currently held for dedup
// accounting (diagnostics; bounded by pruning in Notify).
func (d *DedupSink) Tracked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}

// patternKey renders an event-id sequence as a stable key.
func patternKey(ids []int) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// parsePatternKey inverts patternKey. It reports false for keys not in
// the rendered format (defensive: the library only ever stores keys it
// rendered itself).
func parsePatternKey(key string) ([]int, bool) {
	if key == "" {
		return nil, false
	}
	parts := strings.Split(key, ",")
	seq := make([]int, len(parts))
	for i, s := range parts {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, false
		}
		seq[i] = n
	}
	return seq, true
}

// RateLimitSink caps alert delivery at burst per window, dropping the
// excess (paging channels like SMS have hard provider limits).
type RateLimitSink struct {
	// Next receives the rate-limited reports.
	Next Sink
	// Burst is the max deliveries per Window.
	Burst int
	// Window is the accounting period.
	Window time.Duration
	// Now is the clock (overridable in tests).
	Now func() time.Time

	mu          sync.Mutex
	windowStart time.Time
	count       int
	dropped     int
}

// NewRateLimitSink wraps next with a delivery cap.
func NewRateLimitSink(next Sink, burst int, window time.Duration) *RateLimitSink {
	return &RateLimitSink{Next: next, Burst: burst, Window: window, Now: time.Now}
}

// Notify implements Sink.
func (s *RateLimitSink) Notify(r *core.Report) {
	now := s.Now()
	s.mu.Lock()
	if s.windowStart.IsZero() || now.Sub(s.windowStart) >= s.Window {
		s.windowStart = now
		s.count = 0
	}
	if s.count >= s.Burst {
		s.dropped++
		s.mu.Unlock()
		return
	}
	s.count++
	s.mu.Unlock()
	s.Next.Notify(r)
}

// Dropped returns the count of rate-limited reports.
func (s *RateLimitSink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// MultiSource interleaves several per-node sources round-robin, modelling
// the distributed collectors of Fig. 7 (one Filebeat per node shipping
// into a shared stream). Exhausted sources drop out of the rotation.
type MultiSource struct {
	sources []Source
	next    int
}

// NewMultiSource combines sources into one stream.
func NewMultiSource(sources ...Source) *MultiSource {
	return &MultiSource{sources: append([]Source(nil), sources...)}
}

// Next implements Source.
func (m *MultiSource) Next() (string, bool) {
	for len(m.sources) > 0 {
		i := m.next % len(m.sources)
		line, ok := m.sources[i].Next()
		if ok {
			m.next = i + 1
			return line, true
		}
		m.sources = append(m.sources[:i], m.sources[i+1:]...)
		if len(m.sources) > 0 {
			m.next = i % len(m.sources)
		}
	}
	return "", false
}
