package pipeline

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"logsynergy/internal/alertstore"
	"logsynergy/internal/core"
	"logsynergy/internal/fault"
	"logsynergy/internal/obs"
)

// The chaos suite replays seeded fault schedules against the streaming
// pipeline and holds it to the robustness contract: transient faults are
// retried to completion with zero data loss and bit-identical output;
// permanent outages open breakers, degrade or spill instead of crashing
// or silently dropping; and every event is visible in Stats and obs
// counters. Schedules are deterministic (fault.Registry is seeded and
// fires on call indices), so failures here reproduce exactly.

// chaosTemplates are six fixed log shapes. Cycling them yields event ids
// 0..5 in first-seen order, so tests know the exact window contents.
var chaosTemplates = []string{
	"service heartbeat ok seq 42",
	"user alice login from 10.0.0.5",
	"db query finished in 12 ms",
	"cache miss for key session",
	"disk usage at 63 percent",
	"request GET /api/v1/items 200",
}

// chaosLines builds a stream cycling the six templates.
func chaosLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = chaosTemplates[i%len(chaosTemplates)]
	}
	return lines
}

// heartbeatLines builds a single-template stream: every window is
// [0 x Length], so a pre-seeded pattern-library score makes anomaly and
// sink traffic fully deterministic without training a model.
func heartbeatLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = chaosTemplates[0]
	}
	return lines
}

// seedHeartbeatAnomaly marks the heartbeat window anomalous in the
// library so every completed window produces a report at score 0.9.
func seedHeartbeatAnomaly(p *Pipeline) {
	seq := make([]int, p.cfg.Window.Length)
	p.Library().Store(seq, 0.9)
}

// chaosClock is a manually advanced breaker clock.
type chaosClock struct{ t time.Time }

func newChaosClock() *chaosClock              { return &chaosClock{t: time.Unix(1_700_000_000, 0)} }
func (c *chaosClock) now() time.Time          { return c.t }
func (c *chaosClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// noSleep keeps retry backoff instant in chaos schedules.
func noSleep(time.Duration) {}

// TestChaosTransientFaultsBitIdentical is the core robustness claim:
// with a seeded schedule of transient errors across every stage (parse,
// interpret, embed, detect, sink), the pipeline retries each one to
// completion — zero lost lines, zero degraded interpretations, zero
// spilled alerts — and its reports and stats are bit-identical to a
// fault-free run of the same stream.
func TestChaosTransientFaultsBitIdentical(t *testing.T) {
	leakCheck(t)
	lines := chaosLines(400)
	firstWindow := []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}

	run := func(faults *fault.Registry, reg *obs.Registry) (Stats, []*core.Report) {
		det, parser, interp, e := tinyDeployment(t)
		sink := &MemorySink{}
		cfg := DefaultConfig("x")
		cfg.Metrics = reg
		cfg.Faults = faults
		cfg.Resilience = ResilienceConfig{Sleep: noSleep}
		p := New(cfg, parser, det, interp, e, sink)
		p.Library().Store(firstWindow, 0.9)
		stats := p.Run(context.Background(), NewSliceSource(lines))
		return stats, sink.Reports()
	}

	cleanStats, cleanReports := run(nil, obs.NewRegistry())
	if len(cleanReports) == 0 {
		t.Fatal("seeded anomalous pattern produced no reports; the chaos comparison is vacuous")
	}

	faults := fault.New(7)
	faults.SetSleep(noSleep)
	faults.Enable(
		fault.Rule{Point: PointParse, Every: 5, Limit: 40},
		fault.Rule{Point: PointInterpret, Every: 2, Limit: 10},
		fault.Rule{Point: PointEmbed, Every: 3, Limit: 10},
		fault.Rule{Point: PointDetect, Every: 2, Limit: 10},
		fault.Rule{Point: PointSink, Every: 3, Limit: 20},
	)
	reg := obs.NewRegistry()
	chaosStats, chaosReports := run(faults, reg)

	injected := faults.InjectedTotal()
	if injected == 0 {
		t.Fatal("the fault schedule never fired")
	}
	// Every injection was transient: exactly one retry recovered it, and
	// nothing leaked into the failure paths.
	if chaosStats.Retries != int(injected) {
		t.Fatalf("Retries %d != injections %d", chaosStats.Retries, injected)
	}
	if chaosStats.ParseFailures != 0 || chaosStats.Degraded != 0 || chaosStats.Spilled != 0 ||
		chaosStats.DetectFailures != 0 || chaosStats.SinkErrors != 0 || chaosStats.BreakerOpens != 0 {
		t.Fatalf("transient faults leaked into terminal-failure stats: %+v", chaosStats)
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline.retries_total"] != int64(chaosStats.Retries) {
		t.Fatalf("retries_total %d vs stats %d", snap.Counters["pipeline.retries_total"], chaosStats.Retries)
	}

	// Bit-identical behavior: zeroing the retry count must make the two
	// stat snapshots equal, and the delivered reports must match exactly.
	normalized := chaosStats
	normalized.Retries = 0
	if !reflect.DeepEqual(cleanStats, normalized) {
		t.Fatalf("stats diverged under retried faults:\nclean %+v\nchaos %+v", cleanStats, chaosStats)
	}
	if !reflect.DeepEqual(cleanReports, chaosReports) {
		t.Fatalf("reports diverged under retried faults: clean %d, chaos %d", len(cleanReports), len(chaosReports))
	}
}

// TestChaosPermanentSinkOutage drives a dead alert gateway: the sink
// breaker must open after the configured failure streak, every alert
// must spill (in memory and to the SpillTo alertstore) instead of being
// lost, and FlushSpill must re-deliver the full backlog once the outage
// ends and the breaker cools down.
func TestChaosPermanentSinkOutage(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	sink := &MemorySink{}
	clk := newChaosClock()

	store, err := alertstore.Open(filepath.Join(t.TempDir(), "spill.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	faults := fault.New(1)
	faults.Enable(fault.Rule{Point: PointSink}) // permanent outage

	reg := obs.NewRegistry()
	cfg := DefaultConfig("x")
	cfg.Metrics = reg
	cfg.Faults = faults
	cfg.SpillTo = alertstore.NewSink(store)
	cfg.Resilience = ResilienceConfig{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Sleep:            noSleep,
		Now:              clk.now,
	}
	p := New(cfg, parser, det, interp, e, sink)
	seedHeartbeatAnomaly(p)

	stats := p.Run(context.Background(), NewSliceSource(heartbeatLines(200)))

	wantAnomalies := (200-cfg.Window.Length)/cfg.Window.Step + 1 // 39
	if stats.Anomalies != wantAnomalies {
		t.Fatalf("anomalies %d, want %d", stats.Anomalies, wantAnomalies)
	}
	// Three deliveries fail terminally (two attempts each), opening the
	// breaker; everything after is short-circuited straight to spill.
	if stats.SinkErrors != 3 || stats.Retries != 3 || stats.BreakerOpens != 1 {
		t.Fatalf("outage accounting: %+v", stats)
	}
	if got := faults.Injected(PointSink); got != 6 {
		t.Fatalf("sink injections %d, want 6 (3 failed deliveries x 2 attempts)", got)
	}
	if len(sink.Reports()) != 0 {
		t.Fatalf("dead sink received %d reports", len(sink.Reports()))
	}
	// No alert is lost: every anomaly is parked in the spill queue and
	// persisted through the SpillTo alertstore.
	if stats.Spilled != wantAnomalies || p.SpillLen() != wantAnomalies {
		t.Fatalf("spilled %d, queued %d, want %d", stats.Spilled, p.SpillLen(), wantAnomalies)
	}
	if store.Len() != wantAnomalies {
		t.Fatalf("alertstore holds %d spilled alerts, want %d", store.Len(), wantAnomalies)
	}
	snap := reg.Snapshot()
	for counter, want := range map[string]int64{
		"pipeline.retries_total":      3,
		"pipeline.breaker_open_total": 1,
		"pipeline.sink_errors_total":  3,
		"pipeline.spilled_total":      int64(wantAnomalies),
		"pipeline.degraded_total":     0,
	} {
		if snap.Counters[counter] != want {
			t.Fatalf("%s = %d, want %d", counter, snap.Counters[counter], want)
		}
	}

	// Outage ends: injection stops, the breaker cools down, and the
	// backlog flushes to the recovered sink in spill order.
	faults.Disable(PointSink)
	clk.advance(2 * time.Minute)
	delivered, remaining := p.FlushSpill()
	if delivered != wantAnomalies || remaining != 0 {
		t.Fatalf("flush delivered %d remaining %d, want %d/0", delivered, remaining, wantAnomalies)
	}
	reports := sink.Reports()
	if len(reports) != wantAnomalies {
		t.Fatalf("recovered sink got %d reports, want %d", len(reports), wantAnomalies)
	}
	for i, rep := range reports {
		if rep.Score != 0.9 {
			t.Fatalf("flushed report %d score %v, want the seeded 0.9", i, rep.Score)
		}
	}
}

// The alertstore sink must participate in guarded delivery as a
// FallibleSink, so real append failures reach the retry loop and
// breaker.
var _ FallibleSink = (*alertstore.Sink)(nil)

// TestChaosFallibleSinkRealErrors uses a genuinely broken sink — an
// alertstore whose file is already closed — instead of injected faults:
// TryNotify errors must drive retries, open the breaker, and spill every
// alert, exactly like injected outages do.
func TestChaosFallibleSinkRealErrors(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	store, err := alertstore.Open(filepath.Join(t.TempDir(), "alerts.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil { // dead gateway: every append fails
		t.Fatal(err)
	}
	sink := alertstore.NewSink(store)

	cfg := DefaultConfig("x")
	cfg.Metrics = obs.NewRegistry()
	cfg.Resilience = ResilienceConfig{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Sleep:            noSleep,
		Now:              newChaosClock().now,
	}
	p := New(cfg, parser, det, interp, e, sink)
	seedHeartbeatAnomaly(p)

	stats := p.Run(context.Background(), NewSliceSource(heartbeatLines(100)))
	wantAnomalies := (100-cfg.Window.Length)/cfg.Window.Step + 1 // 19
	if stats.Anomalies != wantAnomalies || stats.Spilled != wantAnomalies {
		t.Fatalf("every alert must spill off the dead store: %+v", stats)
	}
	if stats.SinkErrors != 2 || stats.BreakerOpens != 1 || stats.Retries != 2 {
		t.Fatalf("real sink errors must drive breaker accounting: %+v", stats)
	}
	if got := sink.Errors(); got != 4 {
		t.Fatalf("store saw %d failed appends, want 4 (2 deliveries x 2 attempts)", got)
	}
}

// TestChaosSpillCapBounded proves the spill queue is bounded: a long
// outage with a small cap keeps the newest alerts, counts every
// overflow drop, and never grows past the cap.
func TestChaosSpillCapBounded(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	faults := fault.New(1)
	faults.Enable(fault.Rule{Point: PointSink})

	reg := obs.NewRegistry()
	cfg := DefaultConfig("x")
	cfg.Metrics = reg
	cfg.Faults = faults
	cfg.Resilience = ResilienceConfig{
		MaxAttempts:      2,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		SpillCap:         10,
		Sleep:            noSleep,
		Now:              newChaosClock().now,
	}
	p := New(cfg, parser, det, interp, e, &MemorySink{})
	seedHeartbeatAnomaly(p)

	stats := p.Run(context.Background(), NewSliceSource(heartbeatLines(200)))
	wantAnomalies := (200-cfg.Window.Length)/cfg.Window.Step + 1
	if stats.Spilled != wantAnomalies {
		t.Fatalf("spilled %d, want %d", stats.Spilled, wantAnomalies)
	}
	if p.SpillLen() != 10 {
		t.Fatalf("spill queue holds %d, cap is 10", p.SpillLen())
	}
	if stats.SpillDropped != wantAnomalies-10 {
		t.Fatalf("spill drops %d, want %d", stats.SpillDropped, wantAnomalies-10)
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline.spill_dropped_total"] != int64(wantAnomalies-10) {
		t.Fatalf("spill_dropped_total %d", snap.Counters["pipeline.spill_dropped_total"])
	}
}

// TestChaosInterpreterOutageDegrades kills the LEI permanently: the
// interpreter breaker opens after the failure streak and every new
// template degrades to its raw text, but the event table still grows
// and the stream is processed end to end — the paper's "w/o LEI"
// operating mode as a runtime fallback.
func TestChaosInterpreterOutageDegrades(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	sink := &MemorySink{}
	faults := fault.New(1)
	faults.Enable(fault.Rule{Point: PointInterpret})

	reg := obs.NewRegistry()
	cfg := DefaultConfig("x")
	cfg.Metrics = reg
	cfg.Faults = faults
	cfg.Resilience = ResilienceConfig{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // clock never advances: no half-open probes
		Sleep:            noSleep,
		Now:              newChaosClock().now,
	}
	p := New(cfg, parser, det, interp, e, sink)
	p.Library().Store([]int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}, 0.9)

	lines := chaosLines(300)
	stats := p.Run(context.Background(), NewSliceSource(lines))

	if stats.LinesCollected != 300 || stats.ParseFailures != 0 {
		t.Fatalf("degraded pipeline lost lines: %+v", stats)
	}
	if stats.NewEvents != len(chaosTemplates) || stats.Degraded != len(chaosTemplates) {
		t.Fatalf("want every one of the %d new templates degraded: %+v", len(chaosTemplates), stats)
	}
	// First three failures burn retries and open the breaker; the rest
	// short-circuit without touching the dead interpreter.
	if stats.Retries != 3 || stats.BreakerOpens != 1 {
		t.Fatalf("breaker accounting: %+v", stats)
	}
	if got := faults.Injected(PointInterpret); got != 6 {
		t.Fatalf("interpreter injections %d, want 6", got)
	}
	reports := sink.Reports()
	if len(reports) == 0 {
		t.Fatal("degraded pipeline must still deliver seeded anomalies")
	}
	// Degraded interpretations are the raw templates.
	for i, tpl := range reports[0].Templates {
		if reports[0].Interpretations[i] != tpl {
			t.Fatalf("interpretation %q, want raw template %q", reports[0].Interpretations[i], tpl)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline.degraded_total"] != int64(stats.Degraded) {
		t.Fatalf("degraded_total %d vs stats %d", snap.Counters["pipeline.degraded_total"], stats.Degraded)
	}
}

// TestChaosLatencyTimeoutRecovers injects one burst of interpreter
// latency far beyond the per-call timeout: the attempt must time out,
// the retry must succeed, and nothing degrades. The abandoned slow call
// finishes on its discarded goroutine (leakCheck covers it).
func TestChaosLatencyTimeoutRecovers(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	faults := fault.New(1)
	faults.Enable(fault.Rule{Point: PointInterpret, Delay: 250 * time.Millisecond, Limit: 1})

	cfg := DefaultConfig("x")
	cfg.Metrics = obs.NewRegistry()
	cfg.Faults = faults
	cfg.Resilience = ResilienceConfig{
		MaxAttempts:      2,
		InterpretTimeout: 25 * time.Millisecond,
		Sleep:            noSleep,
	}
	p := New(cfg, parser, det, interp, e)

	stats := p.Run(context.Background(), NewSliceSource(chaosLines(60)))
	if stats.Retries != 1 {
		t.Fatalf("one timed-out attempt must cost exactly one retry: %+v", stats)
	}
	if stats.Degraded != 0 || stats.ParseFailures != 0 {
		t.Fatalf("recovered timeout must not degrade: %+v", stats)
	}
	if stats.NewEvents != len(chaosTemplates) || stats.LinesCollected != 60 {
		t.Fatalf("stream incomplete: %+v", stats)
	}
}

// TestChaosPanicsContained injects panics into the parser and the
// scorer: both must be contained by the fault layer's recover, retried,
// and leave zero abandoned lines or windows behind.
func TestChaosPanicsContained(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	faults := fault.New(1)
	faults.SetSleep(noSleep)
	faults.Enable(
		fault.Rule{Point: PointParse, PanicMsg: "parser crash", Every: 50, Limit: 3},
		fault.Rule{Point: PointDetect, PanicMsg: "scorer crash", Limit: 1},
	)

	cfg := DefaultConfig("x")
	cfg.Metrics = obs.NewRegistry()
	cfg.Faults = faults
	cfg.Resilience = ResilienceConfig{Sleep: noSleep}
	// No seeded library entry: the first window must miss so the scorer
	// (and its injected panic) actually runs.
	p := New(cfg, parser, det, interp, e, &MemorySink{})

	stats := p.Run(context.Background(), NewSliceSource(heartbeatLines(300)))
	if stats.LinesCollected != 300 {
		t.Fatalf("collected %d of 300", stats.LinesCollected)
	}
	if stats.ParseFailures != 0 || stats.DetectFailures != 0 {
		t.Fatalf("retried panics must not abandon work: %+v", stats)
	}
	if stats.Retries != 4 {
		t.Fatalf("retries %d, want 4 (3 parser panics + 1 scorer panic)", stats.Retries)
	}
	if stats.PatternHits+stats.PatternMisses != stats.SequencesFormed {
		t.Fatalf("inconsistent detection stats: %+v", stats)
	}
}

// TestChaosScheduleReplaysDeterministically runs a probabilistic fault
// schedule twice with the same seed and demands identical outcomes —
// the property that makes every chaos failure in this suite
// reproducible from its seed.
func TestChaosScheduleReplaysDeterministically(t *testing.T) {
	leakCheck(t)
	run := func() (Stats, uint64, uint64) {
		det, parser, interp, e := tinyDeployment(t)
		faults := fault.New(31)
		faults.SetSleep(noSleep)
		faults.Enable(
			fault.Rule{Point: PointParse, Prob: 0.2},
			fault.Rule{Point: PointSink, Prob: 0.3},
		)
		cfg := DefaultConfig("x")
		cfg.Metrics = obs.NewRegistry()
		cfg.Faults = faults
		cfg.Resilience = ResilienceConfig{Sleep: noSleep, Now: newChaosClock().now}
		p := New(cfg, parser, det, interp, e, &MemorySink{})
		seedHeartbeatAnomaly(p)
		stats := p.Run(context.Background(), NewSliceSource(heartbeatLines(300)))
		return stats, faults.Injected(PointParse), faults.Injected(PointSink)
	}

	stats1, parse1, sink1 := run()
	stats2, parse2, sink2 := run()
	if parse1 == 0 || sink1 == 0 {
		t.Fatalf("probabilistic schedule never fired: parse=%d sink=%d", parse1, sink1)
	}
	if parse1 != parse2 || sink1 != sink2 {
		t.Fatalf("injection counts diverged across replays: %d/%d vs %d/%d", parse1, sink1, parse2, sink2)
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Fatalf("stats diverged across replays:\n%+v\n%+v", stats1, stats2)
	}
}
