package pipeline

import (
	"sort"

	"logsynergy/internal/tensor"
)

// Keyed drives a Pipeline one line at a time with an independent sliding
// window per stream key — the demultiplexed form of the §VI workflow that
// makes key-based sharding safe: a key's window sequence depends only on
// that key's lines, in order, never on which other keys happen to share
// the process (or the shard). The shard runtime runs one Keyed per
// partition; a single Keyed over the whole stream is the reference the
// shard-vs-single equivalence suite compares against.
//
// Unlike Run, Keyed is synchronous and single-goroutine: the caller owns
// the consume loop (typically a broker consumer) and calls Feed per line.
// That makes commit-time snapshots exact — everything fed is reflected in
// Tails() — which is what lets a restarted partition resume its window
// phase bit-identically.
type Keyed struct {
	p        *Pipeline
	batchCap int
	keys     map[string]*keyWindow
	pending  []pendingWindow

	// OnWindow, when set, observes every completed window after its batch
	// is scored: the stream key, the event-id sequence, its score, and
	// whether the detect stage terminally failed (abandoned=true means
	// score is meaningless). Called on the feeding goroutine, in window
	// completion order.
	OnWindow func(key string, seq []int, score float64, abandoned bool)
}

// keyWindow is one key's in-flight sliding window: the event ids, the raw
// lines they were parsed from (kept so the window phase can be persisted
// and re-parsed after a restart), and the slide distance since the last
// completed window.
type keyWindow struct {
	ids       []int
	lines     []string
	sincePrev int
}

// pendingWindow is a completed window waiting for its batch flush.
type pendingWindow struct {
	key string
	seq []int
}

// WindowTail is the resumable snapshot of one key's window state: the raw
// lines currently in the window buffer and the slide counter. Lines are
// stored raw (not as event ids) because id spaces are assigned per
// process run; a restart re-parses them, which re-extends the event table
// deterministically.
type WindowTail struct {
	// Lines are the raw log lines in the window buffer, oldest first
	// (at most Window.Length of them).
	Lines []string `json:"lines"`
	// SincePrev is how many of those lines arrived after the key's last
	// completed window.
	SincePrev int `json:"since_prev"`
}

// NewKeyed wraps a pipeline for keyed, caller-driven streaming. The
// pipeline's stage guards, pattern library, stats, obs counters and sinks
// all apply exactly as under Run.
func NewKeyed(p *Pipeline) *Keyed {
	batchCap := p.cfg.DetectBatch
	if batchCap <= 0 {
		batchCap = 2 * tensor.Parallelism()
	}
	return &Keyed{p: p, batchCap: batchCap, keys: make(map[string]*keyWindow)}
}

// Pipeline returns the wrapped pipeline (stats, spill, library access).
func (k *Keyed) Pipeline() *Pipeline { return k.p }

// Feed collects one raw line under the stream key: parse (guarded),
// extend the key's sliding window, and queue the completed window, if
// any, for the next batch flush. A full batch flushes inline.
func (k *Keyed) Feed(key, line string) {
	p := k.p
	p.countCollected()
	eventID, ok := p.parseLine(line)
	if !ok {
		// Abandoned after terminal parse/embed failure; the key's window
		// continues from its next line, exactly like Run's skip.
		return
	}
	kw := k.keys[key]
	if kw == nil {
		kw = &keyWindow{}
		k.keys[key] = kw
	}
	kw.ids = append(kw.ids, eventID)
	kw.lines = append(kw.lines, line)
	kw.sincePrev++
	if len(kw.ids) > p.cfg.Window.Length {
		kw.ids = kw.ids[1:]
		kw.lines = kw.lines[1:]
	}
	if len(kw.ids) == p.cfg.Window.Length && kw.sincePrev >= p.cfg.Window.Step {
		k.pending = append(k.pending, pendingWindow{key: key, seq: append([]int(nil), kw.ids...)})
		kw.sincePrev = 0
		if len(k.pending) >= k.batchCap {
			k.Flush()
		}
	}
}

// Flush scores every pending completed window as one batch, delivering
// anomaly reports through the pipeline's guarded sinks. Call it whenever
// the source runs dry (so batching never delays an alert) and before
// snapshotting Tails for a commit.
func (k *Keyed) Flush() {
	if len(k.pending) == 0 {
		return
	}
	seqs := make([][]int, len(k.pending))
	for i, pw := range k.pending {
		seqs[i] = pw.seq
	}
	scores, abandoned := k.p.detectBatch(seqs)
	if k.OnWindow != nil {
		for i, pw := range k.pending {
			k.OnWindow(pw.key, pw.seq, scores[i], abandoned[i])
		}
	}
	k.pending = k.pending[:0]
}

// PendingWindows returns how many completed windows await the next flush.
func (k *Keyed) PendingWindows() int { return len(k.pending) }

// Keys returns the number of stream keys with live window state.
func (k *Keyed) Keys() int { return len(k.keys) }

// Tails snapshots every key's window state. The snapshot is only
// consistent when no completed windows are pending — call Flush first.
// Persist it alongside the source offset: a restart that redelivers from
// that offset and Restores the snapshot resumes every key's window phase
// exactly.
func (k *Keyed) Tails() map[string]WindowTail {
	out := make(map[string]WindowTail, len(k.keys))
	for key, kw := range k.keys {
		if len(kw.lines) == 0 && kw.sincePrev == 0 {
			continue
		}
		out[key] = WindowTail{
			Lines:     append([]string(nil), kw.lines...),
			SincePrev: kw.sincePrev,
		}
	}
	return out
}

// Tail snapshots a single key's window state without disturbing it — the
// capture half of a live key handoff, where the donor partition keeps
// serving every other key while this one's tail is staged for splicing.
// Like Tails, the snapshot is only consistent when no completed windows
// are pending — call Flush first. A key with no state (never seen, or
// empty buffer at a window boundary) returns ok=false with a zero tail,
// which Restore treats as a fresh key.
func (k *Keyed) Tail(key string) (WindowTail, bool) {
	kw := k.keys[key]
	if kw == nil || (len(kw.lines) == 0 && kw.sincePrev == 0) {
		return WindowTail{}, false
	}
	return WindowTail{
		Lines:     append([]string(nil), kw.lines...),
		SincePrev: kw.sincePrev,
	}, true
}

// TakeTails removes and returns the window state of every key belongs
// selects — the donor half of a key handoff (shard rebalancing): the
// returned map is a Tails-shaped snapshot another Keyed can Restore,
// while this Keyed forgets the keys entirely so it can never score them
// again. Like Tails, the snapshot is only consistent when no completed
// windows are pending — call Flush first. Selected keys whose state is
// empty are dropped without appearing in the result.
func (k *Keyed) TakeTails(belongs func(key string) bool) map[string]WindowTail {
	out := make(map[string]WindowTail)
	for key, kw := range k.keys {
		if !belongs(key) {
			continue
		}
		if len(kw.lines) > 0 || kw.sincePrev > 0 {
			out[key] = WindowTail{
				Lines:     append([]string(nil), kw.lines...),
				SincePrev: kw.sincePrev,
			}
		}
		delete(k.keys, key)
	}
	return out
}

// Restore rebuilds window state from a Tails snapshot by re-parsing the
// saved lines (keys in sorted order, so event-table extension is
// deterministic). Restored lines never complete a window — they were all
// part of the pre-snapshot stream — and are not re-counted in stats.
// Lines whose re-parse terminally fails are skipped, mirroring Feed.
func (k *Keyed) Restore(tails map[string]WindowTail) {
	keys := make([]string, 0, len(tails))
	for key := range tails {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		tail := tails[key]
		kw := &keyWindow{sincePrev: tail.SincePrev}
		for _, line := range tail.Lines {
			eventID, ok := k.p.parseLine(line)
			if !ok {
				continue
			}
			kw.ids = append(kw.ids, eventID)
			kw.lines = append(kw.lines, line)
		}
		k.keys[key] = kw
	}
}
