package pipeline

import (
	"context"
	"fmt"
	"testing"
)

// keyedCapture collects per-key score sequences from OnWindow.
func keyedCapture(k *Keyed, t *testing.T) map[string][]float64 {
	scores := map[string][]float64{}
	k.OnWindow = func(key string, seq []int, score float64, abandoned bool) {
		if abandoned {
			t.Errorf("window for key %q abandoned", key)
		}
		scores[key] = append(scores[key], score)
	}
	return scores
}

// A single-key Keyed feed is the same workflow as Run over the same
// lines: same windows, same scores, same reports in the same order.
func TestKeyedSingleKeyMatchesRun(t *testing.T) {
	lines := chaosLines(400)
	firstWindow := []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3}

	det, parser, interp, e := tinyDeployment(t)
	runSink := &MemorySink{}
	p := New(DefaultConfig("x"), parser, det, interp, e, runSink)
	p.Library().Store(firstWindow, 0.9)
	runStats := p.Run(context.Background(), NewSliceSource(lines))

	det2, parser2, interp2, e2 := tinyDeployment(t)
	keyedSink := &MemorySink{}
	p2 := New(DefaultConfig("x"), parser2, det2, interp2, e2, keyedSink)
	p2.Library().Store(firstWindow, 0.9)
	k := NewKeyed(p2)
	for _, line := range lines {
		k.Feed("the-key", line)
	}
	k.Flush()
	keyedStats := p2.Stats()

	if keyedStats.LinesCollected != runStats.LinesCollected ||
		keyedStats.SequencesFormed != runStats.SequencesFormed ||
		keyedStats.Anomalies != runStats.Anomalies ||
		keyedStats.PatternHits != runStats.PatternHits ||
		keyedStats.PatternMisses != runStats.PatternMisses ||
		keyedStats.NewEvents != runStats.NewEvents {
		t.Fatalf("keyed stats %+v != run stats %+v", keyedStats, runStats)
	}
	kr, rr := keyedSink.Reports(), runSink.Reports()
	if len(kr) != len(rr) {
		t.Fatalf("%d keyed reports vs %d run reports", len(kr), len(rr))
	}
	for i := range rr {
		if kr[i].Score != rr[i].Score {
			t.Fatalf("report %d score differs: keyed %v run %v", i, kr[i].Score, rr[i].Score)
		}
		for j := range rr[i].EventIDs {
			if kr[i].EventIDs[j] != rr[i].EventIDs[j] {
				t.Fatalf("report %d event ids differ at %d", i, j)
			}
		}
	}
}

// The demultiplexing property behind sharding: a key's score sequence
// depends only on that key's lines in order — interleaving other keys
// into the same Keyed changes nothing.
func TestKeyedPerKeyIndependence(t *testing.T) {
	mkLines := func(start, n int) []string {
		lines := make([]string, n)
		for i := range lines {
			lines[i] = chaosTemplates[(start+i)%len(chaosTemplates)]
		}
		return lines
	}
	aLines, bLines := mkLines(0, 180), mkLines(3, 180)

	solo := func(key string, lines []string) map[string][]float64 {
		det, parser, interp, e := tinyDeployment(t)
		p := New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{})
		k := NewKeyed(p)
		scores := keyedCapture(k, t)
		for _, line := range lines {
			k.Feed(key, line)
		}
		k.Flush()
		return scores
	}
	wantA, wantB := solo("A", aLines), solo("B", bLines)

	det, parser, interp, e := tinyDeployment(t)
	p := New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{})
	k := NewKeyed(p)
	scores := keyedCapture(k, t)
	for i := 0; i < 180; i++ { // interleave A and B line by line
		k.Feed("A", aLines[i])
		k.Feed("B", bLines[i])
	}
	k.Flush()

	for key, want := range map[string][]float64{"A": wantA["A"], "B": wantB["B"]} {
		got := scores[key]
		if len(got) != len(want) {
			t.Fatalf("key %s: %d interleaved windows vs %d solo", key, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %s window %d: interleaved score %v != solo %v", key, i, got[i], want[i])
			}
		}
	}
	if k.Keys() != 2 {
		t.Fatalf("Keys() = %d, want 2", k.Keys())
	}
}

// Tails + Restore resume every key's window phase exactly: stopping a
// Keyed mid-stream and continuing in a fresh process must score the
// same windows with the same values as the uninterrupted run.
func TestKeyedTailsRestoreResumesExactly(t *testing.T) {
	keys := []string{"alpha", "beta", "gamma"}
	line := func(i int) (string, string) {
		return keys[i%len(keys)], chaosTemplates[i%len(chaosTemplates)]
	}
	const total, cut = 400, 137 // cut mid-window on purpose

	// Uninterrupted reference.
	det, parser, interp, e := tinyDeployment(t)
	p := New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{})
	k := NewKeyed(p)
	want := keyedCapture(k, t)
	for i := 0; i < total; i++ {
		key, l := line(i)
		k.Feed(key, l)
	}
	k.Flush()

	// First "process": feed the prefix, flush, snapshot tails.
	det1, parser1, interp1, e1 := tinyDeployment(t)
	p1 := New(DefaultConfig("x"), parser1, det1, interp1, e1, &MemorySink{})
	k1 := NewKeyed(p1)
	got := keyedCapture(k1, t)
	for i := 0; i < cut; i++ {
		key, l := line(i)
		k1.Feed(key, l)
	}
	k1.Flush()
	tails := k1.Tails()

	// Tails must round-trip deep copies: mutating the snapshot later must
	// not reach into live window state (guards the state-file path).
	for key := range tails {
		if len(tails[key].Lines) > 0 {
			tails[key].Lines[0] += " mutated"
		}
		break
	}
	tails = k1.Tails()

	// Second "process": fresh pipeline, restore, continue the stream.
	det2, parser2, interp2, e2 := tinyDeployment(t)
	p2 := New(DefaultConfig("x"), parser2, det2, interp2, e2, &MemorySink{})
	k2 := NewKeyed(p2)
	k2.OnWindow = func(key string, seq []int, score float64, abandoned bool) {
		if abandoned {
			t.Errorf("window for key %q abandoned", key)
		}
		got[key] = append(got[key], score)
	}
	k2.Restore(tails)
	if n := k2.PendingWindows(); n != 0 {
		t.Fatalf("restore completed %d windows; restored tails must never re-complete", n)
	}
	for i := cut; i < total; i++ {
		key, l := line(i)
		k2.Feed(key, l)
	}
	k2.Flush()

	for _, key := range keys {
		if len(got[key]) != len(want[key]) {
			t.Fatalf("key %s: %d resumed windows vs %d uninterrupted", key, len(got[key]), len(want[key]))
		}
		for i := range want[key] {
			if got[key][i] != want[key][i] {
				t.Fatalf("key %s window %d: resumed score %v != uninterrupted %v", key, i, got[key][i], want[key][i])
			}
		}
	}
}

// Restored lines do not recount collection stats and tails exclude keys
// with no live state.
func TestKeyedTailsBookkeeping(t *testing.T) {
	det, parser, interp, e := tinyDeployment(t)
	p := New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{})
	k := NewKeyed(p)
	for i := 0; i < 7; i++ {
		k.Feed("k", chaosTemplates[i%len(chaosTemplates)])
	}
	k.Flush()
	tails := k.Tails()
	if tl, ok := tails["k"]; !ok || len(tl.Lines) != 7 || tl.SincePrev != 7 {
		t.Fatalf("unexpected tail: %+v", tails)
	}

	det2, parser2, interp2, e2 := tinyDeployment(t)
	p2 := New(DefaultConfig("x"), parser2, det2, interp2, e2, &MemorySink{})
	k2 := NewKeyed(p2)
	k2.Restore(tails)
	if c := p2.Stats().LinesCollected; c != 0 {
		t.Fatalf("restore counted %d collected lines, want 0", c)
	}
	if k2.Keys() != 1 {
		t.Fatalf("Keys() = %d after restore, want 1", k2.Keys())
	}
	// The restored window continues: 3 more lines complete the first
	// 10-line window.
	done := 0
	k2.OnWindow = func(string, []int, float64, bool) { done++ }
	for i := 7; i < 10; i++ {
		k2.Feed("k", chaosTemplates[i%len(chaosTemplates)])
	}
	k2.Flush()
	if done != 1 {
		t.Fatalf("completed %d windows after restore+3 lines, want 1", done)
	}
	if fmt.Sprintf("%v", k2.Tails()["k"].SincePrev) != "0" {
		t.Fatalf("sincePrev not reset after completion: %+v", k2.Tails()["k"])
	}
}
