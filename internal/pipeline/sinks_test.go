package pipeline

import (
	"testing"
	"time"

	"logsynergy/internal/core"
)

func testReport(ids ...int) *core.Report {
	return &core.Report{System: "X", Score: 0.9, EventIDs: ids}
}

func TestDedupSinkSuppressesRepeats(t *testing.T) {
	inner := &MemorySink{}
	clock := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDedupSink(inner, time.Minute)
	d.Now = func() time.Time { return clock }

	d.Notify(testReport(1, 2, 3))
	d.Notify(testReport(1, 2, 3)) // duplicate inside cooldown
	d.Notify(testReport(4, 5, 6)) // different pattern
	if len(inner.Reports()) != 2 || d.Suppressed() != 1 {
		t.Fatalf("delivered %d suppressed %d", len(inner.Reports()), d.Suppressed())
	}

	clock = clock.Add(2 * time.Minute) // cooldown expired
	d.Notify(testReport(1, 2, 3))
	if len(inner.Reports()) != 3 {
		t.Fatal("expired cooldown must deliver again")
	}
}

// TestDedupSinkPrunesExpired pins the memory bound: entries older than
// Cooldown are swept opportunistically in Notify, so the seen map tracks
// only patterns that could still suppress — not every pattern ever alerted.
func TestDedupSinkPrunesExpired(t *testing.T) {
	inner := &MemorySink{}
	clock := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDedupSink(inner, time.Minute)
	d.Now = func() time.Time { return clock }

	for i := 0; i < 50; i++ {
		d.Notify(testReport(i))
	}
	if d.Tracked() != 50 {
		t.Fatalf("tracking %d patterns, want 50", d.Tracked())
	}

	// All 50 entries expire; the next notify sweeps them.
	clock = clock.Add(3 * time.Minute)
	d.Notify(testReport(999))
	if d.Tracked() != 1 {
		t.Fatalf("tracking %d patterns after prune, want 1", d.Tracked())
	}

	// Pruning must not break suppression semantics for live entries.
	d.Notify(testReport(999))
	if d.Suppressed() != 1 {
		t.Fatalf("suppressed %d, want 1", d.Suppressed())
	}
	// An expired-and-pruned pattern alerts again.
	d.Notify(testReport(7))
	if got := len(inner.Reports()); got != 52 {
		t.Fatalf("delivered %d reports, want 52", got)
	}
}

func TestDedupKeyCollisionFree(t *testing.T) {
	inner := &MemorySink{}
	d := NewDedupSink(inner, time.Hour)
	d.Notify(testReport(1, 23))
	d.Notify(testReport(12, 3))
	if len(inner.Reports()) != 2 {
		t.Fatal("[1,23] and [12,3] are distinct patterns")
	}
}

func TestRateLimitSink(t *testing.T) {
	inner := &MemorySink{}
	clock := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	s := NewRateLimitSink(inner, 2, time.Minute)
	s.Now = func() time.Time { return clock }

	for i := 0; i < 5; i++ {
		s.Notify(testReport(i))
	}
	if len(inner.Reports()) != 2 || s.Dropped() != 3 {
		t.Fatalf("delivered %d dropped %d", len(inner.Reports()), s.Dropped())
	}
	clock = clock.Add(2 * time.Minute)
	s.Notify(testReport(9))
	if len(inner.Reports()) != 3 {
		t.Fatal("new window must reset the budget")
	}
}

func TestMultiSourceRoundRobin(t *testing.T) {
	m := NewMultiSource(
		NewSliceSource([]string{"a1", "a2"}),
		NewSliceSource([]string{"b1"}),
		NewSliceSource([]string{"c1", "c2", "c3"}),
	)
	var got []string
	for {
		line, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, line)
	}
	if len(got) != 6 {
		t.Fatalf("want 6 lines, got %v", got)
	}
	// Round-robin: first cycle a1 b1 c1.
	if got[0] != "a1" || got[1] != "b1" || got[2] != "c1" {
		t.Fatalf("not round-robin: %v", got)
	}
}

func TestMultiSourceEmpty(t *testing.T) {
	m := NewMultiSource()
	if _, ok := m.Next(); ok {
		t.Fatal("empty multisource must be exhausted")
	}
}
