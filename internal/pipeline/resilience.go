package pipeline

import (
	"sync"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/fault"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
)

// Named injection points the pipeline consults on every stage call.
// Register fault.Rules against them (Config.Faults) to rehearse
// component failures without touching the build: parser crashes, LEI
// outages, slow embedders, dead alert gateways.
const (
	// PointParse guards drain parsing of one raw line.
	PointParse = "pipeline.parse"
	// PointInterpret guards one LEI interpretation of a new template.
	PointInterpret = "pipeline.interpret"
	// PointEmbed guards extending the event table with a new embedding.
	PointEmbed = "pipeline.embed"
	// PointDetect guards one model scoring pass over a batch.
	PointDetect = "pipeline.detect"
	// PointSink guards one report delivery to any sink.
	PointSink = "pipeline.sink"
)

// FallibleSink is a Sink whose delivery can report failure. Guarded
// delivery prefers TryNotify when a sink implements it: errors feed the
// retry loop and the sink's circuit breaker, and terminally failed
// reports spill instead of vanishing. Plain Sinks are assumed to
// succeed (their only failure mode under test is an injected fault at
// PointSink).
type FallibleSink interface {
	TryNotify(r *core.Report) error
}

// ResilienceConfig tunes the pipeline's fault tolerance. The zero value
// selects production defaults; set Disabled to run the pre-fault-layer
// bare stage calls (ablation and benchmarks).
type ResilienceConfig struct {
	// Disabled bypasses retries, breakers, timeouts and spill entirely.
	Disabled bool
	// MaxAttempts is the total tries per stage call, first included
	// (default 3).
	MaxAttempts int
	// RetryBase is the backoff before the first retry (default 5ms).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 250ms).
	RetryMax time.Duration
	// RetryJitter in (0,1] spreads each backoff delay (default 0.2).
	RetryJitter float64
	// InterpretTimeout bounds one LEI call (0 = no timeout). A timed-out
	// interpretation keeps running on its goroutine and is discarded.
	InterpretTimeout time.Duration
	// SinkTimeout bounds one sink delivery (0 = no timeout). A timed-out
	// delivery keeps running on its goroutine, so sinks must tolerate a
	// late Notify racing a retry (every Sink in this package does).
	SinkTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// interpreter and sink breakers (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses calls before
	// probing (default 1s).
	BreakerCooldown time.Duration
	// SpillCap bounds the in-memory spill queue holding reports whose
	// sink delivery terminally failed (default 1024; the oldest spilled
	// report is dropped on overflow, counted in Stats.SpillDropped).
	SpillCap int
	// Seed drives deterministic retry jitter.
	Seed int64
	// Sleep is the backoff delay function (default time.Sleep; chaos
	// tests inject a fake to keep schedules instant).
	Sleep func(time.Duration)
	// Now is the breaker clock (default time.Now).
	Now func() time.Time
}

// withDefaults fills zero fields with production defaults.
func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.RetryJitter <= 0 {
		c.RetryJitter = 0.2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.SpillCap <= 0 {
		c.SpillCap = 1024
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// resilienceObs caches the fault-layer metric handles.
type resilienceObs struct {
	retries        *obs.Counter
	breakerOpen    *obs.Counter
	degraded       *obs.Counter
	spilled        *obs.Counter
	spillDropped   *obs.Counter
	sinkErrors     *obs.Counter
	parseFailures  *obs.Counter
	detectFailures *obs.Counter
}

func newResilienceObs(reg *obs.Registry) resilienceObs {
	return resilienceObs{
		retries:        reg.Counter("pipeline.retries_total"),
		breakerOpen:    reg.Counter("pipeline.breaker_open_total"),
		degraded:       reg.Counter("pipeline.degraded_total"),
		spilled:        reg.Counter("pipeline.spilled_total"),
		spillDropped:   reg.Counter("pipeline.spill_dropped_total"),
		sinkErrors:     reg.Counter("pipeline.sink_errors_total"),
		parseFailures:  reg.Counter("pipeline.parse_failures_total"),
		detectFailures: reg.Counter("pipeline.detect_failures_total"),
	}
}

// resilience is the pipeline's assembled fault-tolerance state.
type resilience struct {
	cfg     ResilienceConfig
	faults  *fault.Registry // nil-safe
	retryer *fault.Retryer
	interp  *fault.Breaker
	om      resilienceObs
	spill   spillQueue
	spillTo Sink
}

// newResilience wires the retry policy and breakers for one pipeline.
func (p *Pipeline) newResilience(cfg ResilienceConfig, faults *fault.Registry, spillTo Sink, reg *obs.Registry) *resilience {
	cfg = cfg.withDefaults()
	r := &resilience{
		cfg:     cfg,
		faults:  faults,
		om:      newResilienceObs(reg),
		spill:   spillQueue{cap: cfg.SpillCap},
		spillTo: spillTo,
	}
	r.retryer = &fault.Retryer{
		Attempts: cfg.MaxAttempts,
		Backoff: fault.Backoff{
			Base:   cfg.RetryBase,
			Max:    cfg.RetryMax,
			Factor: 2,
			Jitter: cfg.RetryJitter,
			Seed:   cfg.Seed,
		},
		Sleep: cfg.Sleep,
		OnRetry: func(int, error) {
			p.mu.Lock()
			p.stats.Retries++
			p.mu.Unlock()
			r.om.retries.Inc()
		},
	}
	r.interp = r.newBreaker()
	return r
}

// newBreaker builds a breaker that reports open transitions into the
// shared counters.
func (r *resilience) newBreaker() *fault.Breaker {
	return &fault.Breaker{
		Threshold: r.cfg.BreakerThreshold,
		Cooldown:  r.cfg.BreakerCooldown,
		Now:       r.cfg.Now,
	}
}

// sinkGuard wraps one sink with its own circuit breaker.
type sinkGuard struct {
	sink    Sink
	breaker *fault.Breaker
}

// spillQueue is the bounded in-memory holding area for reports whose
// sink delivery terminally failed. It keeps the newest reports: on
// overflow the oldest spilled report is dropped (alert freshness over
// completeness, matching DropNewest's stance for lines).
type spillQueue struct {
	mu      sync.Mutex
	cap     int
	reports []*core.Report
	dropped int
}

// push enqueues a report, reporting whether an old report was evicted.
func (q *spillQueue) push(r *core.Report) (evicted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.reports) >= q.cap {
		q.reports = q.reports[1:]
		q.dropped++
		evicted = true
	}
	q.reports = append(q.reports, r)
	return evicted
}

// drain removes and returns every queued report.
func (q *spillQueue) drain() []*core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.reports
	q.reports = nil
	return out
}

// snapshot copies the queued reports without removing them.
func (q *spillQueue) snapshot() []*core.Report {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*core.Report(nil), q.reports...)
}

func (q *spillQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.reports)
}

// guard runs one stage call under the fault layer: injection check,
// panic containment, bounded retries with backoff. point is the
// injection point consulted at the start of each attempt, inside the
// timeout window, so injected latency counts against the attempt's
// budget exactly like real component latency; timeout bounds each
// attempt (0 = none).
func (p *Pipeline) guard(point string, timeout time.Duration, fn func() error) error {
	if p.res.cfg.Disabled {
		return fn()
	}
	return p.res.retryer.Do(func() error {
		return fault.WithTimeout(timeout, func() error {
			if err := p.res.faults.Check(point); err != nil {
				return err
			}
			return fn()
		})
	})
}

// interpret runs one LEI call under the interpreter breaker, degrading
// to a template-text interpretation (the "w/o LEI" rendering) when the
// breaker is open or retries are exhausted. The degraded interpretation
// still extends the event table, so detection keeps running on the raw
// template vocabulary until the interpreter recovers.
func (p *Pipeline) interpret(template string) lei.Interpretation {
	if p.res.cfg.Disabled {
		return p.interp.Interpret(p.cfg.SystemHint, template)
	}
	if p.res.interp.Allow() {
		// got is written under its own mutex: a timed-out attempt keeps
		// running on a discarded goroutine (see fault.WithTimeout) and may
		// finish after a later attempt. Every attempt interprets the same
		// template, so whichever completed write wins is a valid result.
		var gotMu sync.Mutex
		var got lei.Interpretation
		err := p.guard(PointInterpret, p.res.cfg.InterpretTimeout, func() error {
			in := p.interp.Interpret(p.cfg.SystemHint, template)
			gotMu.Lock()
			got = in
			gotMu.Unlock()
			return nil
		})
		opensBefore := p.res.interp.Opens()
		p.res.interp.Record(err)
		if opened := p.res.interp.Opens() - opensBefore; opened > 0 {
			p.countBreakerOpen(opened)
		}
		if err == nil {
			gotMu.Lock()
			in := got
			gotMu.Unlock()
			return in
		}
	}
	p.mu.Lock()
	p.stats.Degraded++
	p.mu.Unlock()
	p.res.om.degraded.Inc()
	return lei.Interpretation{Template: template, Text: template}
}

// deliverTo pushes one report through a guarded sink: breaker gate,
// injection check, retries, and spill on terminal failure.
func (p *Pipeline) deliverTo(g *sinkGuard, rep *core.Report) {
	if p.res.cfg.Disabled {
		g.sink.Notify(rep)
		return
	}
	if !g.breaker.Allow() {
		p.spillReport(rep)
		return
	}
	err := p.guard(PointSink, p.res.cfg.SinkTimeout, func() error {
		if f, ok := g.sink.(FallibleSink); ok {
			return f.TryNotify(rep)
		}
		g.sink.Notify(rep)
		return nil
	})
	opensBefore := g.breaker.Opens()
	g.breaker.Record(err)
	if opened := g.breaker.Opens() - opensBefore; opened > 0 {
		p.countBreakerOpen(opened)
	}
	if err != nil {
		p.mu.Lock()
		p.stats.SinkErrors++
		p.mu.Unlock()
		p.res.om.sinkErrors.Inc()
		p.spillReport(rep)
	}
}

// spillReport diverts a report that could not be delivered into the
// bounded spill queue (and the SpillTo sink, when configured — e.g. an
// alertstore that persists the backlog durably).
func (p *Pipeline) spillReport(rep *core.Report) {
	evicted := p.res.spill.push(rep)
	p.mu.Lock()
	p.stats.Spilled++
	if evicted {
		p.stats.SpillDropped++
	}
	p.mu.Unlock()
	p.res.om.spilled.Inc()
	if evicted {
		p.res.om.spillDropped.Inc()
	}
	if p.res.spillTo != nil {
		p.res.spillTo.Notify(rep)
	}
}

// countBreakerOpen records breaker open transitions in stats and obs.
func (p *Pipeline) countBreakerOpen(n int) {
	p.mu.Lock()
	p.stats.BreakerOpens += n
	p.mu.Unlock()
	p.res.om.breakerOpen.Add(int64(n))
}

// Spilled returns a snapshot of the reports currently parked in the
// spill queue.
func (p *Pipeline) Spilled() []*core.Report { return p.res.spill.snapshot() }

// SpillLen returns the number of queued spilled reports.
func (p *Pipeline) SpillLen() int { return p.res.spill.len() }

// FlushSpill re-delivers every spilled report through the guarded sinks
// (call it after an outage ends — e.g. once the breaker's target
// recovers). Reports that fail again re-spill and are counted again in
// Stats.Spilled. It returns how many reports were delivered to every
// sink and how many remain spilled.
func (p *Pipeline) FlushSpill() (delivered, remaining int) {
	backlog := p.res.spill.drain()
	for _, rep := range backlog {
		for _, g := range p.guards {
			p.deliverTo(g, rep)
		}
	}
	remaining = p.res.spill.len()
	return len(backlog) - remaining, remaining
}
