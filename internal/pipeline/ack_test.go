package pipeline

import (
	"context"
	"fmt"
	"testing"

	"logsynergy/internal/obs"
	"logsynergy/internal/window"
)

// ackingSource wraps SliceSource with the AckSource extension, recording
// every watermark Run reports.
type ackingSource struct {
	*SliceSource
	acks []uint64
}

func (a *ackingSource) Ack(done uint64) { a.acks = append(a.acks, done) }

func ackLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("ack probe event %d fired", i%5)
	}
	return lines
}

// TestAckSourceWatermark pins the processed-watermark contract: with a
// 4/2 window over 23 lines the last completed window ends at line 22, so
// the final ack is exactly 22 — line 23 was collected but is not part of
// any detected window and must not be acknowledged.
func TestAckSourceWatermark(t *testing.T) {
	det, parser, interp, e := tinyDeployment(t)
	cfg := DefaultConfig("a ack-test system")
	cfg.Window = window.Config{Length: 4, Step: 2}
	cfg.Metrics = obs.NewRegistry()
	src := &ackingSource{SliceSource: NewSliceSource(ackLines(23))}
	p := New(cfg, parser, det, interp, e, &MemorySink{})
	stats := p.Run(context.Background(), src)

	if stats.LinesCollected != 23 {
		t.Fatalf("collected %d", stats.LinesCollected)
	}
	if len(src.acks) == 0 {
		t.Fatal("AckSource never acked")
	}
	var prev uint64
	for i, a := range src.acks {
		if a <= prev {
			t.Fatalf("acks not strictly increasing: %v", src.acks)
		}
		if a%uint64(cfg.Window.Step) != 0 {
			t.Fatalf("ack %d (%d) is not a window boundary", i, a)
		}
		prev = a
	}
	if last := src.acks[len(src.acks)-1]; last != 22 {
		t.Fatalf("final watermark %d, want 22", last)
	}
}

// TestAckSourceNoCompletedWindows: fewer lines than one window means no
// detection and therefore no acknowledgement at all — a restart must
// redeliver everything.
func TestAckSourceNoCompletedWindows(t *testing.T) {
	det, parser, interp, e := tinyDeployment(t)
	cfg := DefaultConfig("a ack-test system")
	cfg.Window = window.Config{Length: 4, Step: 2}
	cfg.Metrics = obs.NewRegistry()
	src := &ackingSource{SliceSource: NewSliceSource(ackLines(3))}
	p := New(cfg, parser, det, interp, e, &MemorySink{})
	p.Run(context.Background(), src)
	if len(src.acks) != 0 {
		t.Fatalf("acks %v for a stream with no completed windows", src.acks)
	}
}

// TestAckSourceBatchBoundaries: forcing one-window detect batches acks
// after every window, so the watermark advances step by step rather than
// only at end of stream.
func TestAckSourceBatchBoundaries(t *testing.T) {
	det, parser, interp, e := tinyDeployment(t)
	cfg := DefaultConfig("a ack-test system")
	cfg.Window = window.Config{Length: 4, Step: 2}
	cfg.DetectBatch = 1
	cfg.Metrics = obs.NewRegistry()
	src := &ackingSource{SliceSource: NewSliceSource(ackLines(12))}
	p := New(cfg, parser, det, interp, e, &MemorySink{})
	p.Run(context.Background(), src)
	// Windows end at 4, 6, 8, 10, 12 — five acks, one per flush.
	want := []uint64{4, 6, 8, 10, 12}
	if len(src.acks) != len(want) {
		t.Fatalf("acks %v, want %v", src.acks, want)
	}
	for i := range want {
		if src.acks[i] != want[i] {
			t.Fatalf("acks %v, want %v", src.acks, want)
		}
	}
}
