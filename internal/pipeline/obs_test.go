package pipeline

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/obs"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// tinyDeployment builds an untrained detector over an initially empty
// event table. The workflow tests here exercise collection, the pattern
// library, drop accounting and metrics — none of which depend on
// detection quality — so skipping training keeps them fast enough to run
// in -short mode.
func tinyDeployment(t testing.TB) (*core.Detector, *drain.Parser, lei.Interpreter, *embed.Embedder) {
	t.Helper()
	cfg := core.DefaultConfig()
	m := core.NewModel(cfg, 2)
	e := embed.New(cfg.EmbedDim)
	table := &repr.EventTable{System: "SystemB", Dim: cfg.EmbedDim, Vectors: tensor.New(0, cfg.EmbedDim)}
	det := core.NewDetector(m, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }
	return det, drain.NewDefault(), lei.NewSimLLM(lei.Config{}), e
}

// TestPipelineObservability runs §VI deployment traffic through an
// isolated registry and requires the workflow's counters, gauges and
// histograms to be live — both via Snapshot() and scraped over HTTP from
// the /metrics handler.
func TestPipelineObservability(t *testing.T) {
	det, parser, interp, e := tinyDeployment(t)
	reg := obs.NewRegistry()
	cfg := DefaultConfig("a cloud data management system (SystemB)")
	cfg.Metrics = reg

	coreBefore := obs.Default().Snapshot().Counters["core.scores_total"]

	online := logdata.Generate(logdata.SystemB(), 99, 3000)
	p := New(cfg, parser, det, interp, e, &MemorySink{})
	stats := p.Run(context.Background(), NewSliceSource(online.Messages()))

	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.lines_collected"]; got != int64(stats.LinesCollected) || got != 3000 {
		t.Fatalf("lines_collected counter %d, stats %d", got, stats.LinesCollected)
	}
	if got := snap.Counters["pipeline.sequences_formed"]; got != int64(stats.SequencesFormed) {
		t.Fatalf("sequences_formed counter %d, stats %d", got, stats.SequencesFormed)
	}
	if snap.Counters["pipeline.pattern_hits"] == 0 {
		t.Fatal("repetitive production traffic must produce pattern-library hits")
	}
	if snap.Counters["pipeline.pattern_hits"]+snap.Counters["pipeline.pattern_misses"] != int64(stats.SequencesFormed) {
		t.Fatalf("hits+misses != sequences: %v", snap.Counters)
	}
	h := snap.Histograms["pipeline.detect_batch_seconds"]
	if h.Count == 0 || h.Sum <= 0 {
		t.Fatalf("detect-batch latency histogram empty: %+v", h)
	}
	if snap.Gauges["pipeline.buffer_capacity"] != int64(cfg.BufferSize) {
		t.Fatalf("buffer_capacity gauge %d", snap.Gauges["pipeline.buffer_capacity"])
	}
	// Occupancy counts the dequeued line, so the peak is >= 1 on any
	// stream that delivered at least one line.
	if snap.Gauges["pipeline.buffer_peak"] < 1 {
		t.Fatalf("buffer_peak gauge %d", snap.Gauges["pipeline.buffer_peak"])
	}
	if snap.Gauges["pipeline.pattern_library_size"] != int64(p.Library().Size()) {
		t.Fatalf("library size gauge %d vs %d", snap.Gauges["pipeline.pattern_library_size"], p.Library().Size())
	}
	if snap.Counters["pipeline.new_events"] != int64(stats.NewEvents) || stats.NewEvents == 0 {
		t.Fatalf("new_events counter %d, stats %d", snap.Counters["pipeline.new_events"], stats.NewEvents)
	}

	// The detector publishes its throughput on the default registry.
	coreAfter := obs.Default().Snapshot().Counters["core.scores_total"]
	if coreAfter-coreBefore != int64(stats.PatternMisses) {
		t.Fatalf("core.scores_total grew by %d, want %d misses", coreAfter-coreBefore, stats.PatternMisses)
	}

	// Scrape the same registry over HTTP, as `logsynergy serve` exposes it.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"counter pipeline.pattern_hits ",
		"counter pipeline.pattern_misses ",
		"gauge pipeline.buffer_peak ",
		"histogram pipeline.detect_batch_seconds count ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "histogram pipeline.detect_batch_seconds count 0 ") {
		t.Fatal("/metrics shows an empty detect-batch histogram")
	}
}

// gateInterp blocks every interpretation until release is closed; it lets
// a test hold the pipeline's consumer stage on its first new template
// while the collector runs ahead.
type gateInterp struct {
	inner   lei.Interpreter
	release chan struct{}
}

func (g *gateInterp) Interpret(hint, tpl string) lei.Interpretation {
	<-g.release
	return g.inner.Interpret(hint, tpl)
}

// signalSource closes exhausted after the last line has been handed out.
type signalSource struct {
	inner     Source
	exhausted chan struct{}
	once      sync.Once
}

func (s *signalSource) Next() (string, bool) {
	line, ok := s.inner.Next()
	if !ok {
		s.once.Do(func() { close(s.exhausted) })
	}
	return line, ok
}

// TestDropNewestAccounting proves Stats.LinesDropped is live: with the
// consumer stage gated on its first template interpretation and a
// 4-line buffer, a 100-line burst must shed load under DropNewest, and
// every line must be accounted as either collected or dropped.
func TestDropNewestAccounting(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	release := make(chan struct{})
	gate := &gateInterp{inner: interp, release: release}

	lines := make([]string, 100)
	for i := range lines {
		lines[i] = "service heartbeat ok seq 42"
	}
	src := &signalSource{inner: NewSliceSource(lines), exhausted: make(chan struct{})}

	reg := obs.NewRegistry()
	cfg := DefaultConfig("x")
	cfg.BufferSize = 4
	cfg.DropPolicy = DropNewest
	cfg.Metrics = reg
	p := New(cfg, parser, det, gate, e)

	var stats Stats
	done := make(chan struct{})
	go func() {
		stats = p.Run(context.Background(), src)
		close(done)
	}()

	// The consumer is parked inside Interpret on line 1; the collector
	// fills the 4-slot buffer and must drop the rest of the burst.
	<-src.exhausted
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline did not finish")
	}

	if stats.LinesDropped == 0 {
		t.Fatal("full buffer under DropNewest must drop lines")
	}
	if stats.LinesCollected+stats.LinesDropped != 100 {
		t.Fatalf("collected %d + dropped %d != 100", stats.LinesCollected, stats.LinesDropped)
	}
	// Consumer held one line and the buffer four: at most 5 collected
	// before the source ran dry (scheduling may collect fewer).
	if stats.LinesCollected > 5 {
		t.Fatalf("collected %d lines through a gated 4-slot buffer", stats.LinesCollected)
	}
	snap := reg.Snapshot()
	if snap.Counters["pipeline.lines_dropped"] != int64(stats.LinesDropped) {
		t.Fatalf("obs dropped %d vs stats %d", snap.Counters["pipeline.lines_dropped"], stats.LinesDropped)
	}
	if snap.Gauges["pipeline.buffer_peak"] < int64(cfg.BufferSize) {
		t.Fatalf("buffer_peak %d with a saturated %d-slot buffer", snap.Gauges["pipeline.buffer_peak"], cfg.BufferSize)
	}
}

// TestDropBlockNeverDrops pins the default policy: backpressure, no loss.
func TestDropBlockNeverDrops(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	cfg := DefaultConfig("x")
	cfg.BufferSize = 2
	p := New(cfg, parser, det, interp, e)
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "service heartbeat ok seq 42"
	}
	stats := p.Run(context.Background(), NewSliceSource(lines))
	if stats.LinesDropped != 0 || stats.LinesCollected != 50 {
		t.Fatalf("block policy collected %d dropped %d", stats.LinesCollected, stats.LinesDropped)
	}
}

// cancelSource cancels the context after n lines, mid-stream.
type cancelSource struct {
	inner  Source
	n      int
	cancel context.CancelFunc
}

func (c *cancelSource) Next() (string, bool) {
	if c.n == 0 {
		c.cancel()
	}
	c.n--
	return c.inner.Next()
}

// TestPipelineCancelMidStream cancels while lines are flowing and
// requires Run to return promptly with internally consistent stats.
func TestPipelineCancelMidStream(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	online := logdata.Generate(logdata.SystemB(), 7, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelSource{inner: NewSliceSource(online.Messages()), n: 200, cancel: cancel}

	cfg := DefaultConfig("x")
	cfg.BufferSize = 64
	p := New(cfg, parser, det, interp, e)

	var stats Stats
	done := make(chan struct{})
	go func() {
		stats = p.Run(ctx, src)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	if stats.LinesCollected >= 3000 {
		t.Fatal("cancelled pipeline consumed the whole stream")
	}
	if stats.PatternHits+stats.PatternMisses != stats.SequencesFormed {
		t.Fatalf("inconsistent stats after cancel: %+v", stats)
	}
	if stats.Anomalies < 0 || stats.SequencesFormed < 0 {
		t.Fatalf("negative counters: %+v", stats)
	}
}

// TestPipelineCancelMidStreamDropNewest covers the same path under the
// shedding policy, where the collector must still exit on cancellation.
func TestPipelineCancelMidStreamDropNewest(t *testing.T) {
	leakCheck(t)
	det, parser, interp, e := tinyDeployment(t)
	online := logdata.Generate(logdata.SystemB(), 8, 3000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelSource{inner: NewSliceSource(online.Messages()), n: 200, cancel: cancel}

	cfg := DefaultConfig("x")
	cfg.BufferSize = 8
	cfg.DropPolicy = DropNewest
	p := New(cfg, parser, det, interp, e)

	done := make(chan struct{})
	var stats Stats
	go func() {
		stats = p.Run(ctx, src)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if stats.LinesCollected >= 3000 {
		t.Fatal("cancelled pipeline consumed the whole stream")
	}
	if stats.PatternHits+stats.PatternMisses != stats.SequencesFormed {
		t.Fatalf("inconsistent stats after cancel: %+v", stats)
	}
}
