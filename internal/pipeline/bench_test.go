package pipeline

import "testing"

// BenchmarkPatternLibrary measures the online fast path: lookup + store.
func BenchmarkPatternLibrary(b *testing.B) {
	lib := NewPatternLibrary(0)
	seq := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	lib.Store(seq, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.Lookup(seq)
	}
}
