package pipeline

import "testing"

// BenchmarkPatternLibrary measures the online fast path: lookup + store.
func BenchmarkPatternLibrary(b *testing.B) {
	lib := NewPatternLibrary(0)
	seq := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	lib.Store(seq, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib.Lookup(seq)
	}
}

// BenchmarkPatternLibraryMissPath measures the hot miss path as the
// online loop drives it: one key render serving both the lookup and the
// keyed store.
func BenchmarkPatternLibraryMissPath(b *testing.B) {
	lib := NewPatternLibrary(0)
	seq := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq[0] = i // every iteration is a fresh pattern
		_, _, key := lib.LookupOrKey(seq)
		lib.StoreKey(key, 0.2)
	}
}

// BenchmarkPatternLibraryEvicting measures steady-state LRU churn: every
// insert over Cap evicts the least recently used pattern.
func BenchmarkPatternLibraryEvicting(b *testing.B) {
	lib := NewPatternLibrary(256)
	seq := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq[0] = i
		lib.Store(seq, 0.2)
	}
}
