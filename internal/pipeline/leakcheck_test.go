package pipeline

import (
	"runtime"
	"testing"
	"time"

	"logsynergy/internal/tensor"
)

// leakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not settled back to the baseline. The
// resident tensor worker pool is pre-spawned first so its goroutines are
// part of the baseline rather than a false leak; transient goroutines
// (timed-out fault.WithTimeout calls still draining, collector shutdown)
// get a grace period to exit before the check fails.
func leakCheck(t *testing.T) {
	t.Helper()
	// Pin the pool at its current effective size so lazily started
	// workers do not count as leaks.
	tensor.SetParallelism(tensor.Parallelism())
	runtime.Gosched()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d at start, %d after grace period\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	})
}
