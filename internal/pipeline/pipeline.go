// Package pipeline implements LogSynergy's production deployment workflow
// (paper §VI, Fig. 7) as an in-process streaming system:
//
//	Collection: a collector (Filebeat analogue) ships raw lines into a
//	bounded buffer (Kafka analogue); a parser stage (Logstash analogue)
//	structures them with Drain and segments the stream with the sliding
//	window (10 logs, 5-step shift).
//
//	Detection: each completed sequence is first matched against a pattern
//	library of previously scored sequences; only new patterns reach the
//	offline-trained LogSynergy model, minimizing redundant inference.
//
//	Report: detected anomalies become reports carrying the original
//	sequence, LEI interpretations and metadata, fanned out to sinks (the
//	SMS/email analogues).
package pipeline

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

// Source supplies raw log lines. Next returns false when the stream ends.
type Source interface {
	Next() (string, bool)
}

// SliceSource replays a fixed slice of lines.
type SliceSource struct {
	lines []string
	pos   int
}

// NewSliceSource wraps lines as a Source.
func NewSliceSource(lines []string) *SliceSource { return &SliceSource{lines: lines} }

// Next implements Source.
func (s *SliceSource) Next() (string, bool) {
	if s.pos >= len(s.lines) {
		return "", false
	}
	l := s.lines[s.pos]
	s.pos++
	return l, true
}

// Sink receives anomaly reports (the SMS/email channel analogue).
type Sink interface {
	Notify(r *core.Report)
}

// MemorySink collects reports in memory (test and example sink).
type MemorySink struct {
	mu      sync.Mutex
	reports []*core.Report
}

// Notify implements Sink.
func (m *MemorySink) Notify(r *core.Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reports = append(m.reports, r)
}

// Reports returns a snapshot of received reports.
func (m *MemorySink) Reports() []*core.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*core.Report(nil), m.reports...)
}

// Stats aggregates pipeline counters.
type Stats struct {
	// LinesCollected counts raw lines shipped by the collector.
	LinesCollected int
	// LinesDropped counts lines dropped on buffer overflow.
	LinesDropped int
	// SequencesFormed counts completed sliding windows.
	SequencesFormed int
	// PatternHits counts sequences answered from the pattern library.
	PatternHits int
	// PatternMisses counts sequences that required model inference.
	PatternMisses int
	// Anomalies counts reported anomalous sequences.
	Anomalies int
	// NewEvents counts templates first seen online.
	NewEvents int
}

// PatternLibrary caches per-pattern verdicts: a pattern is the exact event
// id sequence. Real deployments key historical anomaly patterns the same
// way; the cache also suppresses redundant inference on the dominant
// repeating patterns (paper §VI-A "Detection").
type PatternLibrary struct {
	mu    sync.Mutex
	cache map[string]float64
	// Cap bounds the library size; 0 = unbounded.
	Cap int
}

// NewPatternLibrary creates a library with the given capacity (0 = unbounded).
func NewPatternLibrary(capacity int) *PatternLibrary {
	return &PatternLibrary{cache: make(map[string]float64), Cap: capacity}
}

// key renders an event id sequence as a map key.
func (p *PatternLibrary) key(eventIDs []int) string {
	var b strings.Builder
	for i, id := range eventIDs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// Lookup returns the cached score for the pattern.
func (p *PatternLibrary) Lookup(eventIDs []int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.cache[p.key(eventIDs)]
	return s, ok
}

// Store records a verdict (evicting nothing unless over Cap, in which case
// the insert is skipped — a simple bound suited to the dominant-pattern
// workload the library exists for).
func (p *PatternLibrary) Store(eventIDs []int, score float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Cap > 0 && len(p.cache) >= p.Cap {
		return
	}
	p.cache[p.key(eventIDs)] = score
}

// Size returns the number of cached patterns.
func (p *PatternLibrary) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// Config assembles a pipeline.
type Config struct {
	// BufferSize is the bounded buffer capacity (Kafka analogue).
	BufferSize int
	// Window is the segmentation config (paper: length 10, step 5).
	Window window.Config
	// SystemHint feeds LEI prompts for events first seen online.
	SystemHint string
	// PatternCap bounds the pattern library (0 = unbounded).
	PatternCap int
	// DisablePatternLibrary forces model inference on every sequence
	// (ablation for the deployment benchmark).
	DisablePatternLibrary bool
	// DetectBatch caps how many completed windows are scored together in
	// one parallel flush (0 = 2× the tensor worker count). Batches flush
	// early whenever the collection buffer runs dry, so batching adds no
	// latency on a trickling stream; reports are always delivered in input
	// order. 1 forces the serial one-window-at-a-time path.
	DetectBatch int
}

// DefaultConfig returns production defaults.
func DefaultConfig(systemHint string) Config {
	return Config{BufferSize: 1024, Window: window.Default(), SystemHint: systemHint}
}

// Pipeline wires collection, detection and reporting for one target system.
type Pipeline struct {
	cfg      Config
	parser   *drain.Parser
	detector *core.Detector
	interp   lei.Interpreter
	embedder *embed.Embedder
	library  *PatternLibrary
	sinks    []Sink

	mu    sync.Mutex
	stats Stats
}

// New creates a pipeline around a trained model. parser must be the same
// parser used to build the event table offline (its event-id space extends
// seamlessly online); interp and embedder must match the offline stages.
func New(cfg Config, parser *drain.Parser, det *core.Detector, interp lei.Interpreter, e *embed.Embedder, sinks ...Sink) *Pipeline {
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 1024
	}
	if cfg.Window.Length == 0 {
		cfg.Window = window.Default()
	}
	return &Pipeline{
		cfg:      cfg,
		parser:   parser,
		detector: det,
		interp:   interp,
		embedder: e,
		library:  NewPatternLibrary(cfg.PatternCap),
		sinks:    sinks,
	}
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Library exposes the pattern library (diagnostics).
func (p *Pipeline) Library() *PatternLibrary { return p.library }

// Run consumes the source to exhaustion (or ctx cancellation), streaming
// lines through collection → detection → report. It returns the final
// stats. Collection and detection run concurrently, connected by the
// bounded buffer; completed windows are scored in parallel batches (up to
// cfg.DetectBatch at a time) with reports delivered in input order.
func (p *Pipeline) Run(ctx context.Context, src Source) Stats {
	buffer := make(chan string, p.cfg.BufferSize)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // collector
		defer wg.Done()
		defer close(buffer)
		for {
			line, ok := src.Next()
			if !ok {
				return
			}
			select {
			case buffer <- line:
				p.mu.Lock()
				p.stats.LinesCollected++
				p.mu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()

	batchCap := p.cfg.DetectBatch
	if batchCap <= 0 {
		batchCap = 2 * tensor.Parallelism()
	}

	// Parser + windower (single consumer keeps window ordering); completed
	// windows accumulate in pending and flush to the batch detector.
	var windowBuf []int
	var pending [][]int
	sincePrev := 0
	for {
		var line string
		var ok bool
		select {
		case line, ok = <-buffer:
		default:
			// Collection can't keep up with detection right now: score what
			// we have instead of waiting for a full batch, so batching never
			// delays a report on a slow stream.
			p.detectBatch(pending)
			pending = pending[:0]
			line, ok = <-buffer
		}
		if !ok {
			break
		}
		eventID := p.parseLine(line)
		windowBuf = append(windowBuf, eventID)
		sincePrev++
		if len(windowBuf) > p.cfg.Window.Length {
			windowBuf = windowBuf[1:]
		}
		if len(windowBuf) == p.cfg.Window.Length && sincePrev >= p.cfg.Window.Step {
			pending = append(pending, append([]int(nil), windowBuf...))
			sincePrev = 0
			if len(pending) >= batchCap {
				p.detectBatch(pending)
				pending = pending[:0]
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	p.detectBatch(pending)
	wg.Wait()
	return p.Stats()
}

// parseLine structures one raw line, extending the event table when a new
// template appears online.
func (p *Pipeline) parseLine(line string) int {
	m := p.parser.Parse(line)
	table := p.detector.Table
	for table.Len() <= m.EventID {
		in := p.interp.Interpret(p.cfg.SystemHint, m.Template)
		table.Extend(in, p.embedder)
		p.mu.Lock()
		p.stats.NewEvents++
		p.mu.Unlock()
	}
	return m.EventID
}

// detectBatch scores a batch of sequences through the pattern library +
// model, preserving the serial one-at-a-time semantics: library hits (and
// duplicates of an earlier window in the same batch, which the serial path
// would have stored before reaching them) skip the model; the remaining
// unique patterns are scored in one parallel pass; then scores, library
// inserts, stats, and report delivery are applied in input order.
func (p *Pipeline) detectBatch(seqs [][]int) {
	if len(seqs) == 0 {
		return
	}
	p.mu.Lock()
	p.stats.SequencesFormed += len(seqs)
	p.mu.Unlock()

	n := len(seqs)
	scores := make([]float64, n)
	hit := make([]bool, n)
	dupOf := make([]int, n) // index of this pattern's first in-batch occurrence, or -1
	var missIdx []int       // batch indices that need the model
	firstSeen := make(map[string]int)
	for i, seq := range seqs {
		dupOf[i] = -1
		if !p.cfg.DisablePatternLibrary {
			if cached, ok := p.library.Lookup(seq); ok {
				scores[i], hit[i] = cached, true
				continue
			}
			k := p.library.key(seq)
			if j, ok := firstSeen[k]; ok {
				dupOf[i], hit[i] = j, true
				continue
			}
			firstSeen[k] = i
		}
		missIdx = append(missIdx, i)
	}

	if len(missIdx) > 0 {
		missSeqs := make([][]int, len(missIdx))
		for pos, i := range missIdx {
			missSeqs[pos] = seqs[i]
		}
		for pos, s := range p.detector.ScoreSequences(missSeqs) {
			scores[missIdx[pos]] = s
		}
	}
	for i, j := range dupOf {
		if j >= 0 {
			scores[i] = scores[j]
		}
	}

	for i, seq := range seqs {
		p.mu.Lock()
		if hit[i] {
			p.stats.PatternHits++
		} else {
			p.stats.PatternMisses++
		}
		p.mu.Unlock()
		if !hit[i] && !p.cfg.DisablePatternLibrary {
			p.library.Store(seq, scores[i])
		}
		if scores[i] > core.Threshold {
			// For cached anomalous patterns this rebuilds the report without
			// re-running the model, exactly like the serial path.
			p.deliver(p.detector.BuildReport(seq, scores[i]))
		}
	}
}

func (p *Pipeline) deliver(rep *core.Report) {
	p.mu.Lock()
	p.stats.Anomalies++
	p.mu.Unlock()
	for _, s := range p.sinks {
		s.Notify(rep)
	}
}
