// Package pipeline implements LogSynergy's production deployment workflow
// (paper §VI, Fig. 7) as an in-process streaming system:
//
//	Collection: a collector (Filebeat analogue) ships raw lines into a
//	bounded buffer (Kafka analogue); a parser stage (Logstash analogue)
//	structures them with Drain and segments the stream with the sliding
//	window (10 logs, 5-step shift).
//
//	Detection: each completed sequence is first matched against a pattern
//	library of previously scored sequences; only new patterns reach the
//	offline-trained LogSynergy model, minimizing redundant inference.
//
//	Report: detected anomalies become reports carrying the original
//	sequence, LEI interpretations and metadata, fanned out to sinks (the
//	SMS/email analogues).
//
// Every stage is instrumented through an obs.Registry (Config.Metrics):
// per-stage counters, a buffer-occupancy gauge, and a detect-batch
// latency histogram, so a long-running deployment can be observed live
// via obs.Snapshot() or the logsynergy serve /metrics endpoint.
//
// Every stage call also runs under the fault-tolerance layer
// (resilience.go): named injection points (PointParse …PointSink) for
// deterministic chaos rehearsal, per-stage retries with exponential
// backoff and jitter, per-call timeouts, circuit breakers on the
// interpreter and each sink, and graceful degradation — LEI failure
// falls back to template-text interpretation, sink failure spills
// reports to a bounded queue (and optionally an alertstore) for later
// FlushSpill.
package pipeline

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

// Source supplies raw log lines. Next returns false when the stream ends.
type Source interface {
	Next() (string, bool)
}

// AckSource is an optional Source capability for durable sources (the
// broker consumer). After a batch of windows finishes detection — scores
// assigned, reports delivered — Run calls Ack with the count of leading
// source lines that are now fully processed: every line up to and
// including the last line of the last detected window. A durable source
// uses the watermark to commit consumer offsets, so a restart resumes at
// exactly the first unprocessed line and acknowledged records are never
// lost. Lines after the watermark (still buffered, or in a not-yet-full
// window) are redelivered after a crash (at-least-once).
type AckSource interface {
	Ack(done uint64)
}

// SliceSource replays a fixed slice of lines.
type SliceSource struct {
	lines []string
	pos   int
}

// NewSliceSource wraps lines as a Source.
func NewSliceSource(lines []string) *SliceSource { return &SliceSource{lines: lines} }

// Next implements Source.
func (s *SliceSource) Next() (string, bool) {
	if s.pos >= len(s.lines) {
		return "", false
	}
	l := s.lines[s.pos]
	s.pos++
	return l, true
}

// Sink receives anomaly reports (the SMS/email channel analogue).
type Sink interface {
	Notify(r *core.Report)
}

// MemorySink collects reports in memory (test and example sink).
type MemorySink struct {
	mu      sync.Mutex
	reports []*core.Report
}

// Notify implements Sink.
func (m *MemorySink) Notify(r *core.Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reports = append(m.reports, r)
}

// Reports returns a snapshot of received reports.
func (m *MemorySink) Reports() []*core.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*core.Report(nil), m.reports...)
}

// Stats aggregates pipeline counters.
type Stats struct {
	// LinesCollected counts raw lines shipped by the collector.
	LinesCollected int
	// LinesDropped counts lines dropped on buffer overflow (only under
	// DropNewest; the default DropBlock policy never drops).
	LinesDropped int
	// SequencesFormed counts completed sliding windows.
	SequencesFormed int
	// PatternHits counts sequences answered from the pattern library.
	PatternHits int
	// PatternMisses counts sequences that required model inference.
	PatternMisses int
	// PatternEvictions counts LRU evictions from the pattern library.
	PatternEvictions int
	// Anomalies counts reported anomalous sequences.
	Anomalies int
	// NewEvents counts templates first seen online.
	NewEvents int

	// Retries counts stage-call retries across all guarded stages.
	Retries int
	// Degraded counts LEI failures that fell back to template-text
	// interpretation.
	Degraded int
	// Spilled counts reports diverted to the spill queue after sink
	// delivery failed (or the sink breaker was open). A report respilled
	// by FlushSpill counts again.
	Spilled int
	// SpillDropped counts spilled reports evicted from a full queue.
	SpillDropped int
	// BreakerOpens counts circuit-breaker open transitions (interpreter
	// and sink breakers combined).
	BreakerOpens int
	// SinkErrors counts terminal (post-retry) sink delivery failures.
	SinkErrors int
	// ParseFailures counts lines abandoned after the parse or embed
	// stage terminally failed (the line is skipped; windows continue
	// from the next line).
	ParseFailures int
	// DetectFailures counts windows abandoned after the detect stage
	// terminally failed.
	DetectFailures int
}

// PatternLibrary caches per-pattern verdicts: a pattern is the exact event
// id sequence. Real deployments key historical anomaly patterns the same
// way; the cache also suppresses redundant inference on the dominant
// repeating patterns (paper §VI-A "Detection"). When Cap is set the
// library evicts in LRU order (map + doubly-linked list), so a workload
// shift replaces stale patterns instead of freezing the cache on the
// first Cap entries seen.
type PatternLibrary struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	// Cap bounds the library size; 0 = unbounded.
	Cap       int
	evictions int
}

// libEntry is one cached pattern; list.Element.Value holds *libEntry.
type libEntry struct {
	key   string
	score float64
}

// NewPatternLibrary creates a library with the given capacity (0 = unbounded).
func NewPatternLibrary(capacity int) *PatternLibrary {
	return &PatternLibrary{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		Cap:     capacity,
	}
}

// Lookup returns the cached score for the pattern, refreshing its LRU
// position on a hit.
func (p *PatternLibrary) Lookup(eventIDs []int) (float64, bool) {
	s, ok, _ := p.LookupOrKey(eventIDs)
	return s, ok
}

// LookupOrKey is Lookup plus the rendered map key, so the hot online loop
// can follow a miss with StoreKey without rendering the key a second time.
func (p *PatternLibrary) LookupOrKey(eventIDs []int) (score float64, ok bool, key string) {
	key = patternKey(eventIDs)
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, hit := p.entries[key]; hit {
		p.order.MoveToFront(el)
		return el.Value.(*libEntry).score, true, key
	}
	return 0, false, key
}

// Store records a verdict, evicting the least recently used pattern when
// the library is at Cap. It reports whether an eviction occurred.
func (p *PatternLibrary) Store(eventIDs []int, score float64) bool {
	return p.StoreKey(patternKey(eventIDs), score)
}

// StoreKey is Store for a key already rendered by LookupOrKey.
func (p *PatternLibrary) StoreKey(key string, score float64) (evicted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		el.Value.(*libEntry).score = score
		p.order.MoveToFront(el)
		return false
	}
	p.entries[key] = p.order.PushFront(&libEntry{key: key, score: score})
	if p.Cap > 0 && len(p.entries) > p.Cap {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.entries, oldest.Value.(*libEntry).key)
		p.evictions++
		return true
	}
	return false
}

// PatternEntry is one exported pattern-library verdict: the event-id
// sequence and its cached score. Event ids are only meaningful alongside
// the parser state that assigned them, so an entry moved between
// processes (or shards) must be translated through both parsers' template
// lists first.
type PatternEntry struct {
	Seq   []int   `json:"seq"`
	Score float64 `json:"score"`
}

// Export snapshots every cached verdict, least recently used first, so
// importing the slice in order rebuilds both the verdicts and the LRU
// order exactly.
func (p *PatternLibrary) Export() []PatternEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PatternEntry, 0, len(p.entries))
	for el := p.order.Back(); el != nil; el = el.Prev() {
		le := el.Value.(*libEntry)
		seq, ok := parsePatternKey(le.key)
		if !ok {
			continue
		}
		out = append(out, PatternEntry{Seq: seq, Score: le.score})
	}
	return out
}

// Import stores every entry in order, respecting Cap and LRU eviction.
// Combined with Export's least-recent-first ordering this restores the
// library bit-for-bit; on a smaller Cap the oldest entries evict first,
// exactly as if they had been stored live.
func (p *PatternLibrary) Import(entries []PatternEntry) {
	for _, e := range entries {
		p.Store(e.Seq, e.Score)
	}
}

// Contains reports whether a verdict for the pattern is cached, without
// refreshing its LRU position — the dedup check a live splice needs:
// importing a donor's verdict for a pattern the destination already
// caches must neither overwrite the destination's verdict nor promote it
// as if it had just been used.
func (p *PatternLibrary) Contains(eventIDs []int) bool {
	key := patternKey(eventIDs)
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[key]
	return ok
}

// Size returns the number of cached patterns.
func (p *PatternLibrary) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Evictions returns the number of LRU evictions so far.
func (p *PatternLibrary) Evictions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// DropPolicy selects what the collector does when the bounded buffer is
// full (paper Fig. 7: the Kafka stage absorbing a collection burst).
type DropPolicy int

const (
	// DropBlock blocks the collector until the parser drains the buffer
	// (lossless backpressure; the default).
	DropBlock DropPolicy = iota
	// DropNewest discards the incoming line when the buffer is full,
	// counting it in Stats.LinesDropped (load shedding: detection
	// freshness over completeness).
	DropNewest
)

// String names the policy for flags and logs.
func (d DropPolicy) String() string {
	if d == DropNewest {
		return "drop-newest"
	}
	return "block"
}

// Config assembles a pipeline.
type Config struct {
	// BufferSize is the bounded buffer capacity (Kafka analogue).
	BufferSize int
	// DropPolicy selects block-vs-drop behavior on a full buffer.
	DropPolicy DropPolicy
	// Window is the segmentation config (paper: length 10, step 5).
	Window window.Config
	// SystemHint feeds LEI prompts for events first seen online.
	SystemHint string
	// PatternCap bounds the pattern library (0 = unbounded); over-cap
	// inserts evict the least recently used pattern.
	PatternCap int
	// DisablePatternLibrary forces model inference on every sequence
	// (ablation for the deployment benchmark).
	DisablePatternLibrary bool
	// DetectBatch caps how many completed windows are scored together in
	// one parallel flush (0 = 2× the tensor worker count). Batches flush
	// early whenever the collection buffer runs dry, so batching adds no
	// latency on a trickling stream; reports are always delivered in input
	// order. 1 forces the serial one-window-at-a-time path.
	DetectBatch int
	// Metrics receives the pipeline's counters, gauges and histograms
	// (nil = obs.Default()).
	Metrics *obs.Registry
	// Faults is the injection registry consulted at the pipeline's named
	// injection points (nil = nothing injected; the disarmed check is one
	// atomic load).
	Faults *fault.Registry
	// Resilience tunes retries, timeouts, breakers and the spill queue
	// (zero value = production defaults).
	Resilience ResilienceConfig
	// SpillTo, when set, additionally receives every spilled report —
	// typically an alertstore.Sink, so alerts survive a sink outage on
	// disk. The in-memory spill queue is kept either way for FlushSpill.
	SpillTo Sink
}

// DefaultConfig returns production defaults.
func DefaultConfig(systemHint string) Config {
	return Config{BufferSize: 1024, Window: window.Default(), SystemHint: systemHint}
}

// pipelineObs caches the pipeline's metric handles so hot-path updates
// are single atomic operations.
type pipelineObs struct {
	linesCollected   *obs.Counter
	linesDropped     *obs.Counter
	sequencesFormed  *obs.Counter
	patternHits      *obs.Counter
	patternMisses    *obs.Counter
	patternEvictions *obs.Counter
	anomalies        *obs.Counter
	newEvents        *obs.Counter
	bufferOccupancy  *obs.Gauge
	bufferPeak       *obs.Gauge
	bufferCapacity   *obs.Gauge
	librarySize      *obs.Gauge
	detectBatch      *obs.Histogram
}

func newPipelineObs(reg *obs.Registry) pipelineObs {
	return pipelineObs{
		linesCollected:   reg.Counter("pipeline.lines_collected"),
		linesDropped:     reg.Counter("pipeline.lines_dropped"),
		sequencesFormed:  reg.Counter("pipeline.sequences_formed"),
		patternHits:      reg.Counter("pipeline.pattern_hits"),
		patternMisses:    reg.Counter("pipeline.pattern_misses"),
		patternEvictions: reg.Counter("pipeline.pattern_evictions"),
		anomalies:        reg.Counter("pipeline.anomalies"),
		newEvents:        reg.Counter("pipeline.new_events"),
		bufferOccupancy:  reg.Gauge("pipeline.buffer_occupancy"),
		bufferPeak:       reg.Gauge("pipeline.buffer_peak"),
		bufferCapacity:   reg.Gauge("pipeline.buffer_capacity"),
		librarySize:      reg.Gauge("pipeline.pattern_library_size"),
		detectBatch:      reg.Histogram("pipeline.detect_batch_seconds"),
	}
}

// Pipeline wires collection, detection and reporting for one target system.
type Pipeline struct {
	cfg      Config
	parser   *drain.Parser
	detector *core.Detector
	interp   lei.Interpreter
	embedder *embed.Embedder
	library  *PatternLibrary
	sinks    []Sink
	guards   []*sinkGuard
	om       pipelineObs
	res      *resilience

	mu    sync.Mutex
	stats Stats
}

// New creates a pipeline around a trained model. parser must be the same
// parser used to build the event table offline (its event-id space extends
// seamlessly online); interp and embedder must match the offline stages.
func New(cfg Config, parser *drain.Parser, det *core.Detector, interp lei.Interpreter, e *embed.Embedder, sinks ...Sink) *Pipeline {
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 1024
	}
	if cfg.Window.Length == 0 {
		cfg.Window = window.Default()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	p := &Pipeline{
		cfg:      cfg,
		parser:   parser,
		detector: det,
		interp:   interp,
		embedder: e,
		library:  NewPatternLibrary(cfg.PatternCap),
		sinks:    sinks,
		om:       newPipelineObs(reg),
	}
	p.res = p.newResilience(cfg.Resilience, cfg.Faults, cfg.SpillTo, reg)
	for _, s := range sinks {
		p.guards = append(p.guards, &sinkGuard{sink: s, breaker: p.res.newBreaker()})
	}
	return p
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Library exposes the pattern library (diagnostics).
func (p *Pipeline) Library() *PatternLibrary { return p.library }

// Parser exposes the drain parser (state export, diagnostics).
func (p *Pipeline) Parser() *drain.Parser { return p.parser }

// SyncTable extends the detector's event table to cover every template
// the parser currently knows, in event-id order, interpreting and
// embedding each exactly as online discovery would. Call it after
// importing a persisted parser state and before feeding any line:
// imported ids have no table rows yet, and letting the feed path extend
// the table lazily would mis-assign vectors whenever ids arrive out of
// order (parseLine grows the table with the template of the line at
// hand, which is only correct when ids appear in discovery order).
func (p *Pipeline) SyncTable() error {
	table := p.detector.Table
	for _, ev := range p.parser.Events() {
		if ev.ID < table.Len() {
			continue
		}
		in := p.interpret(ev.Template)
		if err := p.guard(PointEmbed, 0, func() error {
			table.Extend(in, p.embedder)
			return nil
		}); err != nil {
			return fmt.Errorf("pipeline: extending event table for restored event %d: %w", ev.ID, err)
		}
	}
	return nil
}

// bufLine is one collected line in flight between the collector and the
// parser, tagged with its 1-based position in the source stream so the
// processed-watermark for AckSource survives drops and batching.
type bufLine struct {
	text string
	idx  uint64
}

// Run consumes the source to exhaustion (or ctx cancellation), streaming
// lines through collection → detection → report. It returns the final
// stats. Collection and detection run concurrently, connected by the
// bounded buffer; completed windows are scored in parallel batches (up to
// cfg.DetectBatch at a time) with reports delivered in input order. If
// src implements AckSource, Run reports the fully-processed line
// watermark after every flushed batch.
func (p *Pipeline) Run(ctx context.Context, src Source) Stats {
	buffer := make(chan bufLine, p.cfg.BufferSize)
	p.om.bufferCapacity.Set(int64(cap(buffer)))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // collector
		defer wg.Done()
		defer close(buffer)
		var srcIdx uint64
		for {
			line, ok := src.Next()
			if !ok {
				return
			}
			srcIdx++
			item := bufLine{text: line, idx: srcIdx}
			if p.cfg.DropPolicy == DropNewest {
				select {
				case buffer <- item:
					p.countCollected()
				default:
					p.mu.Lock()
					p.stats.LinesDropped++
					p.mu.Unlock()
					p.om.linesDropped.Inc()
				}
				if ctx.Err() != nil {
					return
				}
			} else {
				select {
				case buffer <- item:
					p.countCollected()
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	batchCap := p.cfg.DetectBatch
	if batchCap <= 0 {
		batchCap = 2 * tensor.Parallelism()
	}
	acker, _ := src.(AckSource)

	// Parser + windower (single consumer keeps window ordering); completed
	// windows accumulate in pending and flush to the batch detector.
	// pendingEnd tracks the source index of the last line of the last
	// pending window: once a flush returns, every source line up to that
	// index is fully processed (parsed lines detected in order, dropped
	// lines deliberately shed) and the watermark is acked.
	var windowBuf []int
	var pending [][]int
	var pendingEnd, ackedEnd uint64
	sincePrev := 0
	flush := func() {
		p.detectBatch(pending)
		pending = pending[:0]
		if acker != nil && pendingEnd > ackedEnd {
			acker.Ack(pendingEnd)
			ackedEnd = pendingEnd
		}
	}
	for {
		var item bufLine
		var ok bool
		select {
		case item, ok = <-buffer:
		default:
			// Collection can't keep up with detection right now: score what
			// we have instead of waiting for a full batch, so batching never
			// delays a report on a slow stream.
			flush()
			item, ok = <-buffer
		}
		if !ok {
			break
		}
		// Occupancy counts the just-dequeued line; at this instant the
		// buffer holds len(buffer)+1 lines' worth of backlog.
		occ := int64(len(buffer))
		p.om.bufferOccupancy.Set(occ)
		p.om.bufferPeak.Max(occ + 1)
		eventID, ok := p.parseLine(item.text)
		if !ok {
			// The line was abandoned after parse/embed stage failures;
			// windows continue from the next line.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		windowBuf = append(windowBuf, eventID)
		sincePrev++
		if len(windowBuf) > p.cfg.Window.Length {
			windowBuf = windowBuf[1:]
		}
		if len(windowBuf) == p.cfg.Window.Length && sincePrev >= p.cfg.Window.Step {
			pending = append(pending, append([]int(nil), windowBuf...))
			pendingEnd = item.idx
			sincePrev = 0
			if len(pending) >= batchCap {
				flush()
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	flush()
	p.om.bufferOccupancy.Set(0)
	wg.Wait()
	return p.Stats()
}

func (p *Pipeline) countCollected() {
	p.mu.Lock()
	p.stats.LinesCollected++
	p.mu.Unlock()
	p.om.linesCollected.Inc()
}

// parseLine structures one raw line, extending the event table when a new
// template appears online. Parsing runs under the fault layer: a parser
// panic or injected error is retried, and a terminally failed line is
// abandoned (reported false) rather than blocking the stream. New
// templates are interpreted with breaker-guarded degradation (see
// interpret) and embedded under PointEmbed.
func (p *Pipeline) parseLine(line string) (int, bool) {
	var m drain.Match
	if err := p.guard(PointParse, 0, func() error {
		m = p.parser.Parse(line)
		return nil
	}); err != nil {
		p.countParseFailure()
		return 0, false
	}
	table := p.detector.Table
	for table.Len() <= m.EventID {
		in := p.interpret(m.Template)
		if err := p.guard(PointEmbed, 0, func() error {
			table.Extend(in, p.embedder)
			return nil
		}); err != nil {
			// The table could not grow to cover this event id; scoring the
			// line would crash, so abandon it.
			p.countParseFailure()
			return 0, false
		}
		p.mu.Lock()
		p.stats.NewEvents++
		p.mu.Unlock()
		p.om.newEvents.Inc()
	}
	return m.EventID, true
}

// countParseFailure records one abandoned line.
func (p *Pipeline) countParseFailure() {
	p.mu.Lock()
	p.stats.ParseFailures++
	p.mu.Unlock()
	p.res.om.parseFailures.Inc()
}

// detectBatch scores a batch of sequences through the pattern library +
// model, preserving the serial one-at-a-time semantics: library hits (and
// duplicates of an earlier window in the same batch, which the serial path
// would have stored before reaching them) skip the model; the remaining
// unique patterns are scored in one parallel pass; then scores, library
// inserts, stats, and report delivery are applied in input order. Each
// pattern's map key is rendered exactly once (LookupOrKey → StoreKey).
// It returns every sequence's score in input order, plus an abandoned
// mask for windows whose detect stage terminally failed (their score
// entry is meaningless).
func (p *Pipeline) detectBatch(seqs [][]int) (batchScores []float64, abandoned []bool) {
	if len(seqs) == 0 {
		return nil, nil
	}
	start := time.Now()
	p.mu.Lock()
	p.stats.SequencesFormed += len(seqs)
	p.mu.Unlock()
	p.om.sequencesFormed.Add(int64(len(seqs)))

	n := len(seqs)
	scores := make([]float64, n)
	hit := make([]bool, n)
	keys := make([]string, n)
	dupOf := make([]int, n) // index of this pattern's first in-batch occurrence, or -1
	var missIdx []int       // batch indices that need the model
	firstSeen := make(map[string]int)
	for i, seq := range seqs {
		dupOf[i] = -1
		if !p.cfg.DisablePatternLibrary {
			cached, ok, k := p.library.LookupOrKey(seq)
			keys[i] = k
			if ok {
				scores[i], hit[i] = cached, true
				continue
			}
			if j, dup := firstSeen[k]; dup {
				dupOf[i], hit[i] = j, true
				continue
			}
			firstSeen[k] = i
		}
		missIdx = append(missIdx, i)
	}

	failed := make([]bool, n)
	if len(missIdx) > 0 {
		missSeqs := make([][]int, len(missIdx))
		for pos, i := range missIdx {
			missSeqs[pos] = seqs[i]
		}
		var missScores []float64
		err := p.guard(PointDetect, 0, func() error {
			missScores = p.detector.ScoreSequences(missSeqs)
			return nil
		})
		if err == nil {
			for pos, s := range missScores {
				scores[missIdx[pos]] = s
			}
		} else {
			// The model terminally failed on this batch: the unscored
			// windows (and their in-batch duplicates) are abandoned rather
			// than reported with garbage scores. Library hits still deliver.
			for _, i := range missIdx {
				failed[i] = true
			}
		}
	}
	for i, j := range dupOf {
		if j >= 0 {
			scores[i] = scores[j]
			failed[i] = failed[j]
		}
	}

	for i, seq := range seqs {
		if failed[i] {
			p.mu.Lock()
			p.stats.DetectFailures++
			p.mu.Unlock()
			p.res.om.detectFailures.Inc()
			continue
		}
		p.mu.Lock()
		if hit[i] {
			p.stats.PatternHits++
		} else {
			p.stats.PatternMisses++
		}
		p.mu.Unlock()
		if hit[i] {
			p.om.patternHits.Inc()
		} else {
			p.om.patternMisses.Inc()
		}
		if !hit[i] && !p.cfg.DisablePatternLibrary {
			if p.library.StoreKey(keys[i], scores[i]) {
				p.mu.Lock()
				p.stats.PatternEvictions++
				p.mu.Unlock()
				p.om.patternEvictions.Inc()
			}
		}
		if scores[i] > core.Threshold {
			// For cached anomalous patterns this rebuilds the report without
			// re-running the model, exactly like the serial path.
			p.deliver(p.detector.BuildReport(seq, scores[i]))
		}
	}
	p.om.librarySize.Set(int64(p.library.Size()))
	p.om.detectBatch.ObserveSince(start)
	return scores, failed
}

func (p *Pipeline) deliver(rep *core.Report) {
	p.mu.Lock()
	p.stats.Anomalies++
	p.mu.Unlock()
	p.om.anomalies.Inc()
	for _, g := range p.guards {
		p.deliverTo(g, rep)
	}
}
