package pipeline

import (
	"reflect"
	"testing"
)

// The pattern-key codec must round-trip every rendered sequence and
// reject anything the library could not have rendered itself.
func TestParsePatternKeyRoundTrip(t *testing.T) {
	for _, seq := range [][]int{{0}, {1, 2, 3}, {42, 0, 7, 7}} {
		got, ok := parsePatternKey(patternKey(seq))
		if !ok || !reflect.DeepEqual(got, seq) {
			t.Fatalf("round trip of %v gave %v ok=%v", seq, got, ok)
		}
	}
	for _, bad := range []string{"", "a,b", "1,,2", "1, 2"} {
		if _, ok := parsePatternKey(bad); ok {
			t.Fatalf("parsePatternKey(%q) accepted garbage", bad)
		}
	}
}

// Export emits least-recently-used first so Import rebuilds both the
// verdicts and the LRU order: the next eviction after a round trip hits
// the same pattern it would have hit in the original library.
func TestPatternLibraryExportImportPreservesLRUOrder(t *testing.T) {
	lib := NewPatternLibrary(3)
	lib.Store([]int{1, 1}, 0.1)
	lib.Store([]int{2, 2}, 0.2)
	lib.Store([]int{3, 3}, 0.3)
	// Refresh {1,1}: LRU order is now {2,2} oldest, then {3,3}, then {1,1}.
	if _, ok := lib.Lookup([]int{1, 1}); !ok {
		t.Fatal("expected hit")
	}

	entries := lib.Export()
	if len(entries) != 3 {
		t.Fatalf("exported %d entries, want 3", len(entries))
	}
	wantOrder := [][]int{{2, 2}, {3, 3}, {1, 1}}
	for i, e := range entries {
		if !reflect.DeepEqual(e.Seq, wantOrder[i]) {
			t.Fatalf("export position %d is %v, want %v", i, e.Seq, wantOrder[i])
		}
	}

	lib2 := NewPatternLibrary(3)
	lib2.Import(entries)
	if lib2.Size() != 3 {
		t.Fatalf("imported size %d, want 3", lib2.Size())
	}
	if s, ok := lib2.Lookup([]int{3, 3}); !ok || s != 0.3 {
		t.Fatalf("score for {3,3} = %v ok=%v", s, ok)
	}
	// Storing a fourth pattern must evict {2,2}, the least recently used
	// verdict of the exporting library. A Lookup of {3,3} just refreshed
	// it, so {2,2} is still oldest.
	lib2.Store([]int{4, 4}, 0.4)
	if _, ok := lib2.Lookup([]int{2, 2}); ok {
		t.Fatal("{2,2} should have been evicted first after the round trip")
	}
	for _, seq := range [][]int{{3, 3}, {1, 1}, {4, 4}} {
		if _, ok := lib2.Lookup(seq); !ok {
			t.Fatalf("%v missing after eviction", seq)
		}
	}
}

// Importing into a smaller library keeps the most recently used entries
// and counts evictions, exactly as if the verdicts had been stored live.
func TestPatternLibraryImportRespectsCap(t *testing.T) {
	lib := NewPatternLibrary(0)
	lib.Store([]int{1}, 0.1)
	lib.Store([]int{2}, 0.2)
	lib.Store([]int{3}, 0.3)

	small := NewPatternLibrary(2)
	small.Import(lib.Export())
	if small.Size() != 2 {
		t.Fatalf("size %d, want 2", small.Size())
	}
	if small.Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", small.Evictions())
	}
	if _, ok := small.Lookup([]int{1}); ok {
		t.Fatal("oldest entry survived a capped import")
	}
	if _, ok := small.Lookup([]int{3}); !ok {
		t.Fatal("newest entry lost in a capped import")
	}
}

// SyncTable after a parser import must assign every imported event id the
// vector of its own template. The trap it guards against: lazy extension
// in parseLine grows the table with the template of the line at hand,
// which mis-assigns vectors when ids arrive out of discovery order — so a
// synced pipeline fed a permuted stream must score identically to a fresh
// pipeline discovering the same stream naturally.
func TestSyncTableCoversImportedEvents(t *testing.T) {
	// Teach a donor pipeline all six templates in canonical order.
	det, parser, interp, e := tinyDeployment(t)
	p := New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{})
	k := NewKeyed(p)
	for _, line := range chaosLines(12) {
		k.Feed("seed", line)
	}
	k.Flush()
	events := parser.Export()
	if len(events) != len(chaosTemplates) {
		t.Fatalf("donor discovered %d events, want %d", len(events), len(chaosTemplates))
	}

	// A permuted stream whose first line is the highest event id: without
	// SyncTable, lazy table extension would give ids 0..5 that line's
	// vector.
	var permuted []string
	for i := 0; i < 60; i++ {
		permuted = append(permuted, chaosTemplates[(len(chaosTemplates)-1+i)%len(chaosTemplates)])
	}

	det2, parser2, interp2, e2 := tinyDeployment(t)
	if err := parser2.Import(events); err != nil {
		t.Fatal(err)
	}
	p2 := New(DefaultConfig("x"), parser2, det2, interp2, e2, &MemorySink{})
	if err := p2.SyncTable(); err != nil {
		t.Fatal(err)
	}
	if det2.Table.Len() != len(events) {
		t.Fatalf("synced table has %d rows, want %d", det2.Table.Len(), len(events))
	}
	k2 := NewKeyed(p2)
	got := keyedCapture(k2, t)
	for _, line := range permuted {
		k2.Feed("key", line)
	}
	k2.Flush()
	if s := p2.Stats(); s.NewEvents != 0 {
		t.Fatalf("synced pipeline minted %d new events for known templates", s.NewEvents)
	}

	det3, parser3, interp3, e3 := tinyDeployment(t)
	p3 := New(DefaultConfig("x"), parser3, det3, interp3, e3, &MemorySink{})
	k3 := NewKeyed(p3)
	want := keyedCapture(k3, t)
	for _, line := range permuted {
		k3.Feed("key", line)
	}
	k3.Flush()

	if !reflect.DeepEqual(got["key"], want["key"]) {
		t.Fatalf("synced scores %v != fresh scores %v", got["key"], want["key"])
	}
}

// TakeTails is the donor half of a key handoff: the selected keys leave
// with their exact window state, the rest stay, and a receiver that
// Restores the taken tails continues the moved keys' score sequences
// bit-identically.
func TestKeyedTakeTailsHandoff(t *testing.T) {
	lines := chaosLines(200)
	key := func(i int) string {
		if i%2 == 0 {
			return "moved"
		}
		return "kept"
	}

	// Reference: both keys run uninterrupted in one process.
	det, parser, interp, e := tinyDeployment(t)
	kRef := NewKeyed(New(DefaultConfig("x"), parser, det, interp, e, &MemorySink{}))
	want := keyedCapture(kRef, t)
	for i, line := range lines {
		kRef.Feed(key(i), line)
	}
	kRef.Flush()

	// Donor runs both keys up to an arbitrary cut, then hands "moved" off.
	const cut = 137
	det1, parser1, interp1, e1 := tinyDeployment(t)
	k1 := NewKeyed(New(DefaultConfig("x"), parser1, det1, interp1, e1, &MemorySink{}))
	got := keyedCapture(k1, t)
	for i := 0; i < cut; i++ {
		k1.Feed(key(i), lines[i])
	}
	k1.Flush()

	if taken := k1.TakeTails(func(k string) bool { return k == "absent" }); len(taken) != 0 {
		t.Fatalf("selector matching nothing returned %d tails", len(taken))
	}
	before := k1.Tails()["moved"]
	taken := k1.TakeTails(func(k string) bool { return k == "moved" })
	if !reflect.DeepEqual(taken["moved"], before) {
		t.Fatalf("taken tail %+v != snapshot %+v", taken["moved"], before)
	}
	if k1.Keys() != 1 {
		t.Fatalf("donor still tracks %d keys, want 1", k1.Keys())
	}
	if _, stillThere := k1.Tails()["moved"]; stillThere {
		t.Fatal("donor still holds the moved key's tail")
	}

	// Receiver is a fresh deployment: Restore re-parses the tail lines.
	det2, parser2, interp2, e2 := tinyDeployment(t)
	k2 := NewKeyed(New(DefaultConfig("x"), parser2, det2, interp2, e2, &MemorySink{}))
	got2 := keyedCapture(k2, t)
	k2.Restore(taken)

	for i := cut; i < len(lines); i++ {
		if key(i) == "moved" {
			k2.Feed("moved", lines[i])
		} else {
			k1.Feed("kept", lines[i])
		}
	}
	k1.Flush()
	k2.Flush()

	moved := append(append([]float64(nil), got["moved"]...), got2["moved"]...)
	if !reflect.DeepEqual(moved, want["moved"]) {
		t.Fatalf("moved key scores %v != reference %v", moved, want["moved"])
	}
	if !reflect.DeepEqual(got["kept"], want["kept"]) {
		t.Fatalf("kept key scores %v != reference %v", got["kept"], want["kept"])
	}
}
