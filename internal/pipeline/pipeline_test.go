package pipeline

import (
	"context"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

// deployment builds a trained detector plus a live parser for SystemB-like
// production traffic, small enough for unit tests.
func deployment(t *testing.T) (*core.Detector, *drain.Parser, lei.Interpreter, *embed.Embedder, *logdata.Corpus) {
	t.Helper()
	interp := lei.NewSimLLM(lei.Config{})
	e := embed.New(32)

	spec := logdata.SystemB()
	offline := logdata.Generate(spec, 1, 6000)
	parser := drain.NewDefault()
	parsed := logdata.Parse(offline, parser)
	seqs := parsed.Windows(window.Default())

	// A deliberately quick model: the pipeline tests exercise the
	// workflow, not detection quality.
	cfg := core.DefaultConfig()
	cfg.Epochs = 2
	srcSeqs := logdata.Build(logdata.SystemA(), 2, 0.002, window.Default())
	src := repr.Build(srcSeqs, interp, e)
	table := repr.BuildEventTable(seqs, interp, e)
	train := repr.BuildDataset(seqs, table)
	model := core.TrainModel(cfg, []*repr.Dataset{src}, train)

	det := core.NewDetector(model, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

	online := logdata.Generate(spec, 99, 3000)
	return det, parser, interp, e, online
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det, parser, interp, e, online := deployment(t)
	sink := &MemorySink{}
	p := New(DefaultConfig("a cloud data management system (SystemB)"), parser, det, interp, e, sink)
	stats := p.Run(context.Background(), NewSliceSource(online.Messages()))

	if stats.LinesCollected != 3000 {
		t.Fatalf("collected %d lines, want 3000", stats.LinesCollected)
	}
	wantSeqs := window.Count(3000, window.Default())
	if stats.SequencesFormed != wantSeqs {
		t.Fatalf("formed %d sequences, want %d", stats.SequencesFormed, wantSeqs)
	}
	if stats.PatternHits+stats.PatternMisses != stats.SequencesFormed {
		t.Fatal("hits+misses must equal sequences")
	}
	if stats.PatternHits == 0 {
		t.Fatal("production traffic repeats patterns; expected pattern-library hits")
	}
	if stats.Anomalies != len(sink.Reports()) {
		t.Fatalf("stats anomalies %d vs %d delivered reports", stats.Anomalies, len(sink.Reports()))
	}
	for _, r := range sink.Reports() {
		if r.System != "SystemB" || r.Score <= core.Threshold {
			t.Fatalf("malformed report: %+v", r)
		}
		if len(r.Interpretations) != 10 {
			t.Fatalf("report must carry 10 interpretations, got %d", len(r.Interpretations))
		}
	}
}

func TestPipelineHandlesNewTemplatesOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det, parser, interp, e, _ := deployment(t)
	before := det.Table.Len()
	// Feed lines whose template the offline phase never saw.
	lines := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		lines = append(lines, "[INF] brandnew: subsystem wobble calibrated ok pass 7")
	}
	p := New(DefaultConfig("a cloud data management system (SystemB)"), parser, det, interp, e)
	stats := p.Run(context.Background(), NewSliceSource(lines))
	if stats.NewEvents == 0 {
		t.Fatal("new template must extend the event table")
	}
	if det.Table.Len() <= before {
		t.Fatal("event table did not grow")
	}
}

// TestPipelineParallelMatchesSerial runs the same traffic through the
// serial one-window-at-a-time path and the parallel batched path and
// requires identical detection behavior: same counters, same reports, in
// the same order. (The matrix kernels are bit-identical serial vs parallel,
// so even the scores must match exactly.)
func TestPipelineParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det, parser, interp, e, online := deployment(t)

	run := func(workers, detectBatch int) (Stats, []*core.Report) {
		prev := tensor.SetParallelism(workers)
		defer tensor.SetParallelism(prev)
		sink := &MemorySink{}
		cfg := DefaultConfig("a cloud data management system (SystemB)")
		cfg.DetectBatch = detectBatch
		p := New(cfg, parser, det, interp, e, sink)
		return p.Run(context.Background(), NewSliceSource(online.Messages())), sink.Reports()
	}

	serialStats, serialReports := run(1, 1)
	parallelStats, parallelReports := run(4, 8)

	// NewEvents is excluded: the first run extends the shared event table
	// with templates first seen online, so the second sees none.
	if parallelStats.SequencesFormed != serialStats.SequencesFormed ||
		parallelStats.Anomalies != serialStats.Anomalies ||
		parallelStats.PatternHits != serialStats.PatternHits ||
		parallelStats.PatternMisses != serialStats.PatternMisses {
		t.Fatalf("parallel stats %+v != serial stats %+v", parallelStats, serialStats)
	}
	if len(parallelReports) != len(serialReports) {
		t.Fatalf("%d parallel reports vs %d serial", len(parallelReports), len(serialReports))
	}
	for i := range serialReports {
		s, p := serialReports[i], parallelReports[i]
		if s.Score != p.Score || s.System != p.System {
			t.Fatalf("report %d differs: serial score=%v parallel score=%v", i, s.Score, p.Score)
		}
		for j := range s.EventIDs {
			if s.EventIDs[j] != p.EventIDs[j] {
				t.Fatalf("report %d event ids differ at %d", i, j)
			}
		}
	}
}

func TestPipelineContextCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	det, parser, interp, e, online := deployment(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(DefaultConfig("x"), parser, det, interp, e)
	stats := p.Run(ctx, NewSliceSource(online.Messages()))
	if stats.LinesCollected == 3000 {
		t.Fatal("cancelled pipeline should not consume the whole stream")
	}
}

func TestPatternLibrary(t *testing.T) {
	lib := NewPatternLibrary(2)
	seq := []int{1, 2, 3}
	if _, ok := lib.Lookup(seq); ok {
		t.Fatal("empty library must miss")
	}
	lib.Store(seq, 0.9)
	if s, ok := lib.Lookup(seq); !ok || s != 0.9 {
		t.Fatalf("lookup got %v %v", s, ok)
	}
	// Distinct sequences must not collide ([1,2,3] vs [12,3]).
	if _, ok := lib.Lookup([]int{12, 3}); ok {
		t.Fatal("pattern keys must be collision-free")
	}
	lib.Store([]int{4}, 0.1)
	lib.Store([]int{5}, 0.2) // over cap: evicts the LRU entry
	if lib.Size() != 2 {
		t.Fatalf("cap violated: size %d", lib.Size())
	}
}

func TestPatternLibraryLRUEviction(t *testing.T) {
	lib := NewPatternLibrary(2)
	lib.Store([]int{1}, 0.1)
	lib.Store([]int{2}, 0.2)
	// Touch [1] so [2] becomes least recently used.
	if _, ok := lib.Lookup([]int{1}); !ok {
		t.Fatal("warm entry must hit")
	}
	if !lib.Store([]int{3}, 0.3) {
		t.Fatal("over-cap insert must report an eviction")
	}
	if lib.Size() != 2 || lib.Evictions() != 1 {
		t.Fatalf("size %d evictions %d", lib.Size(), lib.Evictions())
	}
	if _, ok := lib.Lookup([]int{2}); ok {
		t.Fatal("LRU entry [2] must have been evicted")
	}
	if s, ok := lib.Lookup([]int{1}); !ok || s != 0.1 {
		t.Fatal("recently used entry [1] must survive")
	}
	if s, ok := lib.Lookup([]int{3}); !ok || s != 0.3 {
		t.Fatal("new entry [3] must be cached")
	}
	// Re-storing an existing key updates in place, no eviction.
	if lib.Store([]int{1}, 0.9) {
		t.Fatal("updating a cached key must not evict")
	}
	if s, _ := lib.Lookup([]int{1}); s != 0.9 {
		t.Fatalf("score not updated: %v", s)
	}
	if lib.Size() != 2 || lib.Evictions() != 1 {
		t.Fatalf("size %d evictions %d after update", lib.Size(), lib.Evictions())
	}
}

func TestPatternLibraryLookupOrKey(t *testing.T) {
	lib := NewPatternLibrary(0)
	_, ok, key := lib.LookupOrKey([]int{7, 8, 9})
	if ok || key != "7,8,9" {
		t.Fatalf("miss returned ok=%v key=%q", ok, key)
	}
	lib.StoreKey(key, 0.4)
	if s, ok, _ := lib.LookupOrKey([]int{7, 8, 9}); !ok || s != 0.4 {
		t.Fatalf("keyed store not visible: %v %v", s, ok)
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]string{"a", "b"})
	if l, ok := s.Next(); !ok || l != "a" {
		t.Fatal("first line")
	}
	if l, ok := s.Next(); !ok || l != "b" {
		t.Fatal("second line")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source must return false")
	}
}
