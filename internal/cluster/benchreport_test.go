package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/shard"
)

// clusterBenchReport is the schema of BENCH_cluster.json, produced by
// `make bench-cluster` (full) and `make bench-cluster-smoke` (shrunk
// sizes; it runs inside `make verify`). It prices the router hop: the
// same fixed-seed corpus detected end-to-end by a single-process
// `-shards N` runtime versus a 2-node fleet behind the front router over
// real HTTP.
type clusterBenchReport struct {
	Smoke  bool     `json:"smoke"`
	Lines  int      `json:"lines"`
	Keys   int      `json:"keys"`
	Shards int      `json:"shards"`
	Nodes  int      `json:"nodes"`
	Single benchE2E `json:"single_process"`
	Fleet  benchE2E `json:"fleet"`
	// OverheadX is single lines/s divided by fleet lines/s — how much the
	// router hop costs. The full run enforces OverheadX <= 2.
	OverheadX float64 `json:"overhead_x"`
}

// benchE2E is one end-to-end run's measurements (append → route →
// consume → detect → fan-in, drained to completion).
type benchE2E struct {
	LinesPerSec   float64 `json:"lines_per_sec"`
	WindowsScored int     `json:"windows_scored"`
	Anomalies     int     `json:"anomalies_raised"`
}

// TestBenchClusterReport measures fleet-vs-single end-to-end throughput
// and writes BENCH_cluster.json. Gated on BENCH_CLUSTER_OUT so
// `go test ./...` stays fast; BENCH_CLUSTER_SMOKE shrinks the corpus
// (and skips the overhead enforcement) for the verify gate.
func TestBenchClusterReport(t *testing.T) {
	out := os.Getenv("BENCH_CLUSTER_OUT")
	if out == "" {
		t.Skip("set BENCH_CLUSTER_OUT=path to run the cluster benchmark and write the report")
	}
	smoke := os.Getenv("BENCH_CLUSTER_SMOKE") != ""
	lines, nkeys := 40_000, 24
	if smoke {
		lines, nkeys = 3_000, 12
	}
	const shards = 4

	rep := clusterBenchReport{Smoke: smoke, Lines: lines, Keys: nkeys, Shards: shards, Nodes: 2}
	corpus := genEqLines(777, lines, eqKeys(nkeys))

	// Baseline: single-process `-shards N`.
	{
		det, interp, e := eqEnv()
		sink := &pipeline.MemorySink{}
		rt, err := shard.Open(shard.Config{
			Shards:   shards,
			Dir:      t.TempDir(),
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     sink,
			Metrics:  obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		const batch = 512
		for i := 0; i < len(corpus); i += batch {
			end := min(i+batch, len(corpus))
			if _, err := rt.AppendBatch(corpus[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		if err := rt.Drain(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		dur := time.Since(start)
		stats := rt.Stats()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if stats.LinesCollected != lines {
			t.Fatalf("single-process collected %d of %d lines", stats.LinesCollected, lines)
		}
		rep.Single = benchE2E{
			LinesPerSec:   float64(lines) / dur.Seconds(),
			WindowsScored: stats.SequencesFormed,
			Anomalies:     stats.Anomalies,
		}
		t.Logf("single-process %d shards: %.0f lines/s", shards, rep.Single.LinesPerSec)
	}

	// Fleet: the same corpus through the front router to 2 nodes over
	// real HTTP.
	{
		root := t.TempDir()
		manifestPath := filepath.Join(root, "cluster.json")
		lnA, lnB := localListener(t), localListener(t)
		m := &Manifest{
			Epoch:  1,
			Shards: shards,
			Dir:    filepath.Join(root, "data"),
			Nodes: map[string]NodeSpec{
				"a": {Addr: lnA.Addr().String()},
				"b": {Addr: lnB.Addr().String()},
			},
			Assignments: []string{"a", "a", "b", "b"},
		}
		if err := Save(manifestPath, m); err != nil {
			t.Fatal(err)
		}
		a := startFleetNode(t, manifestPath, "a", lnA)
		b := startFleetNode(t, manifestPath, "b", lnB)
		defer a.srv.Close()
		defer b.srv.Close()
		defer a.node.Close()
		defer b.node.Close()

		r, err := NewRouter(RouterConfig{ManifestPath: manifestPath, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rsrv := httptest.NewServer(r.Handler())
		defer rsrv.Close()

		start := time.Now()
		const batch = 512
		for i := 0; i < len(corpus); i += batch {
			end := min(i+batch, len(corpus))
			resp, err := http.Post(rsrv.URL+"/ingest", "text/plain", strings.NewReader(strings.Join(corpus[i:end], "\n")))
			if err != nil {
				t.Fatal(err)
			}
			var rr RouteResponse
			err = json.NewDecoder(resp.Body).Decode(&rr)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if rr.Rejected != 0 {
				t.Fatalf("batch at %d: %d lines rejected", i, rr.Rejected)
			}
		}
		scored, anomalies := 0, 0
		for _, fn := range []*fleetNode{a, b} {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			if err := fn.node.Drain(ctx); err != nil {
				cancel()
				t.Fatal(err)
			}
			cancel()
			stats := fn.node.Runtime().Stats()
			scored += stats.SequencesFormed
			anomalies += stats.Anomalies
		}
		dur := time.Since(start)
		rep.Fleet = benchE2E{
			LinesPerSec:   float64(lines) / dur.Seconds(),
			WindowsScored: scored,
			Anomalies:     anomalies,
		}
		t.Logf("fleet %d nodes: %.0f lines/s", rep.Nodes, rep.Fleet.LinesPerSec)
	}

	if rep.Fleet.LinesPerSec > 0 {
		rep.OverheadX = rep.Single.LinesPerSec / rep.Fleet.LinesPerSec
	}
	t.Logf("router-hop overhead: %.2fx", rep.OverheadX)
	if rep.Fleet.WindowsScored != rep.Single.WindowsScored || rep.Fleet.Anomalies != rep.Single.Anomalies {
		t.Errorf("fleet scored %d windows / %d anomalies, single-process %d / %d",
			rep.Fleet.WindowsScored, rep.Fleet.Anomalies, rep.Single.WindowsScored, rep.Single.Anomalies)
	}
	if !smoke && rep.OverheadX > 2 {
		t.Errorf("router-hop overhead %.2fx exceeds the 2x bound", rep.OverheadX)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
