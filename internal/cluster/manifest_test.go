package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testManifest builds a valid 4-partition, 3-node manifest.
func testManifest() *Manifest {
	return &Manifest{
		Epoch:  1,
		Shards: 4,
		Nodes: map[string]NodeSpec{
			"a":       {Addr: "127.0.0.1:1001"},
			"b":       {Addr: "127.0.0.1:1002"},
			"standby": {Addr: "127.0.0.1:1003", Standby: true},
		},
		Assignments: []string{"a", "a", "b", "b"},
	}
}

func TestClusterManifestStampAndValidate(t *testing.T) {
	m := testManifest()
	if err := m.Stamp(); err != nil {
		t.Fatal(err)
	}
	if m.Checksum == "" || m.Version != ManifestVersion {
		t.Fatalf("stamp left checksum %q version %d", m.Checksum, m.Version)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("stamped manifest invalid: %v", err)
	}

	// Hand-edits without restamping must be caught.
	edited := m.Clone()
	edited.Assignments[0] = "b"
	if err := edited.Validate(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("edited manifest validated: %v", err)
	}

	// A hand-authored manifest may omit the checksum entirely.
	bare := testManifest()
	if err := bare.Validate(); err != nil {
		t.Fatalf("checksum-free manifest invalid: %v", err)
	}

	bad := []func(*Manifest){
		func(m *Manifest) { m.Epoch = 0 },
		func(m *Manifest) { m.Shards = 0 },
		func(m *Manifest) { m.Nodes = nil },
		func(m *Manifest) { m.Assignments = m.Assignments[:2] },
		func(m *Manifest) { m.Assignments[3] = "ghost" },
		func(m *Manifest) { m.Nodes["a"] = NodeSpec{} },
		func(m *Manifest) { m.Version = ManifestVersion + 1 },
	}
	for i, mutate := range bad {
		mm := testManifest()
		mutate(mm)
		if err := mm.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestClusterManifestPartitionsOfAndStandbys(t *testing.T) {
	m := testManifest()
	if got := m.PartitionsOf("a"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("PartitionsOf(a) = %v", got)
	}
	got := m.PartitionsOf("standby")
	if got == nil || len(got) != 0 {
		t.Fatalf("PartitionsOf(standby) = %#v, want empty non-nil", got)
	}
	if got := m.Standbys(); !reflect.DeepEqual(got, []string{"standby"}) {
		t.Fatalf("Standbys() = %v", got)
	}
	if got := m.Standbys("standby"); len(got) != 0 {
		t.Fatalf("Standbys(skip standby) = %v", got)
	}
	if m.NodeFor(2) != "b" || m.NodeFor(7) != "" {
		t.Fatalf("NodeFor: %q %q", m.NodeFor(2), m.NodeFor(7))
	}
}

func TestClusterManifestReassign(t *testing.T) {
	m := testManifest()
	if err := m.Stamp(); err != nil {
		t.Fatal(err)
	}
	nm, err := m.Reassign("a", "standby")
	if err != nil {
		t.Fatal(err)
	}
	if nm.Epoch != m.Epoch+1 {
		t.Fatalf("epoch %d after reassign, want %d", nm.Epoch, m.Epoch+1)
	}
	if !reflect.DeepEqual(nm.Assignments, []string{"standby", "standby", "b", "b"}) {
		t.Fatalf("assignments %v", nm.Assignments)
	}
	if err := nm.Validate(); err != nil {
		t.Fatalf("reassigned manifest invalid: %v", err)
	}
	// The original is untouched.
	if !reflect.DeepEqual(m.Assignments, []string{"a", "a", "b", "b"}) || m.Epoch != 1 {
		t.Fatalf("Reassign mutated the source: %v epoch %d", m.Assignments, m.Epoch)
	}

	if _, err := m.Reassign("a", "ghost"); err == nil {
		t.Fatal("reassign to unknown node succeeded")
	}
	if _, err := m.Reassign("a", "a"); err == nil {
		t.Fatal("reassign to self succeeded")
	}
	if _, err := m.Reassign("standby", "a"); err == nil {
		t.Fatal("reassigning a node that owns nothing succeeded")
	}
}

func TestClusterManifestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	m := testManifest()
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}

	// A truncated file must not validate.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("half a manifest loaded")
	}
}

func TestClusterLeaseFencing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p0")

	// Fresh acquisition creates the directory, takes the flock, and
	// stakes the record.
	held, err := acquireLease(dir, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := readLease(dir)
	if err != nil || rec == nil || rec.Epoch != 1 || rec.Node != "a" {
		t.Fatalf("lease record after acquire: %+v, %v", rec, err)
	}

	// While the lease is held nobody else can acquire — not even with a
	// newer epoch. The holder is alive; fencing it out of shared storage
	// by epoch alone would mean two concurrent writers, so the takeover
	// must fail instead. (Distinct fds flock independently, so this
	// models a second process.)
	if _, err := acquireLease(dir, 2, "standby"); err == nil || !strings.Contains(err.Error(), "live process") {
		t.Fatalf("takeover of a held lease: %v", err)
	}

	// Release — what process death does via the OS — and the idempotent
	// restart of the same node at the same epoch succeeds.
	if err := held.Release(); err != nil {
		t.Fatal(err)
	}
	again, err := acquireLease(dir, 1, "a")
	if err != nil {
		t.Fatalf("idempotent re-acquire: %v", err)
	}
	if err := again.Release(); err != nil {
		t.Fatal(err)
	}

	// Another node in the same epoch is the invariant violation, even
	// with the holder gone.
	if _, err := acquireLease(dir, 1, "b"); err == nil || !strings.Contains(err.Error(), "same epoch") {
		t.Fatalf("same-epoch steal: %v", err)
	}

	// A newer epoch supersedes a released lease (failover after death).
	taken, err := acquireLease(dir, 2, "standby")
	if err != nil {
		t.Fatalf("newer-epoch takeover: %v", err)
	}

	// The old owner with its stale manifest cannot re-open: refused by
	// the flock while the new lease is held...
	if _, err := acquireLease(dir, 1, "a"); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("stale re-open against a held lease: %v", err)
	}
	// ...and by the epoch record after it is released.
	if err := taken.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := acquireLease(dir, 1, "a"); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("stale re-open: %v", err)
	}

	// A missing lease reads as nil, not an error.
	if l, err := readLease(filepath.Join(t.TempDir(), "empty")); err != nil || l != nil {
		t.Fatalf("missing lease: %+v, %v", l, err)
	}
}
