package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"logsynergy/internal/broker"
	"logsynergy/internal/httpapi"
	"logsynergy/internal/shard"
)

// The node side of the networked live cutover: each handler here wraps
// one shard-runtime primitive (begin, sync, capture, stage, install,
// forget, finish, directed append) in the versioned admin surface —
// method-checked, epoch-fenced, envelope-erroring. The coordinator
// (Router.LiveRebalance) sequences them; a node never initiates.

// maxSpliceBytes bounds one staged-splice request body. A splice
// carries one key's window tail plus the donor's event space and
// pattern library — far below this in practice.
const maxSpliceBytes = 32 << 20

// handleDirectedAppend is POST /admin/v1/append?partition=P: append the
// body's lines straight to one owned partition's WAL, bypassing ring
// routing. This is the router's double-write data path during a live
// cutover — the router, which knows which node holds the other side of
// each moving key's double-write, targets donor and destination
// partitions explicitly. The answer mirrors /ingest (202 all acked, 429
// per-partition rejection rows, 503 closed) so the router's merge logic
// treats directed shares exactly like routed ones.
func (n *Node) handleDirectedAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set(EpochHeader, strconv.FormatUint(n.Epoch(), 10))
		httpapi.MethodNotAllowed(w, http.MethodPost, "directed append accepts POST only")
		return
	}
	if !n.fenceEpoch(w, r) {
		return
	}
	part, err := strconv.Atoi(r.URL.Query().Get("partition"))
	if err != nil || part < 0 {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: fmt.Sprintf("directed append needs a partition index: ?partition=%q is not one", r.URL.Query().Get("partition")),
		})
		return
	}
	maxBytes := n.cfg.MaxBatchBytes
	if maxBytes <= 0 {
		maxBytes = broker.DefaultMaxBatchBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
			Code:    httpapi.CodeTooLarge,
			Message: fmt.Sprintf("batch exceeds limit %d bytes", maxBytes),
		})
		return
	}
	lines := splitBatch(body)
	if err := n.rt.DirectedAppendBatch(part, lines); err != nil {
		label := shard.RejectionLabel(err)
		if label == "closed" {
			httpapi.Error(w, http.StatusServiceUnavailable, httpapi.Detail{
				Code:       httpapi.CodeClosed,
				Message:    "intake closed",
				Partitions: []shard.PartitionResult{{Partition: part, Rejected: len(lines), Error: label}},
			})
			return
		}
		d := httpapi.Detail{
			Code:        httpapi.CodeBackpressure,
			Message:     fmt.Sprintf("partition %d rejected %d directed lines: %s", part, len(lines), label),
			RetryAfterS: 1,
			Partitions:  []shard.PartitionResult{{Partition: part, Rejected: len(lines), Error: label}},
		}
		httpapi.ErrorWithBody(w, http.StatusTooManyRequests, d, shard.IngestResponse{
			Rejected:   len(lines),
			Partitions: []shard.PartitionResult{{Partition: part, Rejected: len(lines), Error: label}},
			Err:        &d,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(shard.IngestResponse{
		Acked:      len(lines),
		Partitions: []shard.PartitionResult{{Partition: part, Acked: len(lines)}},
	})
}

// cutoverPost guards the common shape of the cutover endpoints: POST
// only, epoch-fenced. Returns false when it wrote the refusal.
func (n *Node) cutoverPost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		httpapi.MethodNotAllowed(w, http.MethodPost, "cutover endpoints accept POST only")
		return false
	}
	return n.fenceEpoch(w, r)
}

// conflict writes the uniform 409 envelope for a refused cutover step.
func conflict(w http.ResponseWriter, err error) {
	httpapi.Error(w, http.StatusConflict, httpapi.Detail{Code: httpapi.CodeConflict, Message: err.Error()})
}

func answerJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// handleCutoverBegin is POST /admin/v1/cutover/begin (body:
// shard.CutoverSpec): flip this node into the journaled live cutover.
func (n *Node) handleCutoverBegin(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	var spec shard.CutoverSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: "cutover begin body is not a CutoverSpec: " + err.Error(),
		})
		return
	}
	res, err := n.beginCutover(spec)
	if err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, res)
}

// beginCutover fences the destination partition before the runtime
// opens it: when this node hosts the new partition, the same flock +
// epoch lease that guards every other partition is acquired on its
// directory first — a second node (or a stale restart) trying to open
// the destination fails at the lease, never at the WAL. The lease joins
// n.leases so Refresh restakes it and Close releases it.
func (n *Node) beginCutover(spec shard.CutoverSpec) (*shard.CutoverBeginResult, error) {
	var acquired *Lease
	if spec.Dest {
		n.mu.Lock()
		dest := spec.To - 1
		if n.leases[dest] == nil {
			l, err := acquireLease(shard.PartitionDir(n.dir, dest), n.m.Epoch, n.name)
			if err != nil {
				n.mu.Unlock()
				return nil, fmt.Errorf("cluster: fencing cutover destination partition %d: %w", dest, err)
			}
			n.leases[dest] = l
			acquired = l
		}
		n.mu.Unlock()
	}
	res, err := n.rt.BeginCutover(spec)
	if err != nil && acquired != nil {
		n.mu.Lock()
		acquired.Release()
		delete(n.leases, spec.To-1)
		n.mu.Unlock()
	}
	return res, err
}

// handleCutoverSync is POST /admin/v1/cutover/sync (body:
// {"keys": {key: "committed"|"released"}}): advance per-key phases from
// the coordinator's journal.
func (n *Node) handleCutoverSync(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	var body struct {
		Keys map[string]string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&body); err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: "cutover sync body is not a key-phase map: " + err.Error(),
		})
		return
	}
	if err := n.rt.SyncCutover(body.Keys); err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string]int{"synced": len(body.Keys)})
}

// handleCutoverKeys is GET /admin/v1/cutover/keys: the moving keys
// still pending on this node's donor partitions.
func (n *Node) handleCutoverKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.MethodNotAllowed(w, http.MethodGet, "cutover keys accepts GET only")
		return
	}
	if !n.fenceEpoch(w, r) {
		return
	}
	keys, err := n.rt.PendingMovingKeys()
	if err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string][]string{"keys": keys})
}

// handleCutoverCapture is POST /admin/v1/cutover/capture?key=K: capture
// the key's splice from its donor partition. Refused (409, retryable)
// until the donor has consumed through its freeze point.
func (n *Node) handleCutoverCapture(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{Code: httpapi.CodeBadRequest, Message: "capture needs ?key="})
		return
	}
	sp, err := n.rt.CaptureKey(key)
	if err != nil {
		httpapi.Error(w, http.StatusConflict, httpapi.Detail{
			Code: httpapi.CodeConflict, Message: err.Error(), RetryAfterS: 1,
		})
		return
	}
	answerJSON(w, sp)
}

// handleCutoverStage is POST /admin/v1/cutover/stage (body: a
// shard.KeySplice) — the transfer endpoint: durably write a captured
// splice into the destination partition's directory.
func (n *Node) handleCutoverStage(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	var sp shard.KeySplice
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSpliceBytes)).Decode(&sp); err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: "cutover stage body is not a KeySplice: " + err.Error(),
		})
		return
	}
	if err := n.rt.StageSplice(sp); err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string]string{"staged": sp.Key})
}

// handleCutoverInstall is POST /admin/v1/cutover/install?key=K: apply
// the key's staged splice to the live destination partition.
func (n *Node) handleCutoverInstall(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{Code: httpapi.CodeBadRequest, Message: "install needs ?key="})
		return
	}
	if err := n.rt.InstallSplice(key); err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string]string{"installed": key})
}

// handleCutoverForget is POST /admin/v1/cutover/forget?key=K: drop the
// moved key's tail from its donor partition.
func (n *Node) handleCutoverForget(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{Code: httpapi.CodeBadRequest, Message: "forget needs ?key="})
		return
	}
	if err := n.rt.ForgetKey(key); err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string]string{"forgotten": key})
}

// handleCutoverFinish is POST /admin/v1/cutover/finish?to=N: restamp
// every owned partition at the new layout and leave the cutover.
func (n *Node) handleCutoverFinish(w http.ResponseWriter, r *http.Request) {
	if !n.cutoverPost(w, r) {
		return
	}
	to, err := strconv.Atoi(r.FormValue("to"))
	if err != nil || to <= 0 {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: fmt.Sprintf("finish needs a positive partition count: to=%q is not one", r.FormValue("to")),
		})
		return
	}
	if err := n.rt.CompleteCutover(to); err != nil {
		conflict(w, err)
		return
	}
	answerJSON(w, map[string]int{"shards": to})
}
