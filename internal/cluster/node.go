package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"logsynergy/internal/obs"
	"logsynergy/internal/shard"
)

// NodeConfig assembles one cluster node.
type NodeConfig struct {
	// ManifestPath is the cluster.json location; Refresh re-reads it.
	// Optional when Manifest is supplied and Refresh is never used.
	ManifestPath string
	// Manifest, when set, is used instead of loading ManifestPath at
	// start (tests build manifests in memory).
	Manifest *Manifest
	// Name is this node's name in the manifest.
	Name string
	// Runtime is the shard runtime template: Detector, Interp, Embedder,
	// Sink, Broker and Pipeline configs come from here. Shards, Vnodes
	// and Subset are overridden from the manifest; Dir falls back to the
	// manifest's shared-storage root when empty.
	Runtime shard.Config
	// MaxBatchBytes bounds one /ingest request body (<= 0 selects the
	// broker default).
	MaxBatchBytes int64
}

// Node is one host's slice of the fleet: a subset shard runtime over the
// partitions the manifest assigns to it, plus the HTTP surface the front
// router talks to (/ingest, /healthz, /metrics, /metrics.json,
// /admin/refresh).
type Node struct {
	cfg  NodeConfig
	name string
	rt   *shard.Runtime
	reg  *obs.Registry

	mu sync.Mutex // guards m (the manifest view) across Refresh
	m  *Manifest

	refreshes *obs.Counter
	adoptions *obs.Counter
}

// StartNode validates the manifest, stakes epoch leases on the node's
// assigned partitions, and opens the subset shard runtime over them —
// crash recovery included, exactly as a single-process restart would.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.Name is required")
	}
	m := cfg.Manifest
	if m == nil {
		if cfg.ManifestPath == "" {
			return nil, fmt.Errorf("cluster: NodeConfig needs a Manifest or a ManifestPath")
		}
		var err error
		m, err = Load(cfg.ManifestPath)
		if err != nil {
			return nil, err
		}
	} else if err := m.Validate(); err != nil {
		return nil, err
	}
	if _, ok := m.Nodes[cfg.Name]; !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the manifest (nodes: %v)", cfg.Name, m.NodeNames())
	}

	rcfg := cfg.Runtime
	if rcfg.Dir == "" {
		rcfg.Dir = m.Dir
	}
	if rcfg.Dir == "" {
		return nil, fmt.Errorf("cluster: no runtime directory (set Runtime.Dir or the manifest's dir)")
	}
	rcfg.Shards = m.Shards
	rcfg.Vnodes = m.Vnodes
	own := m.PartitionsOf(cfg.Name)
	rcfg.Subset = own
	if rcfg.Metrics == nil {
		rcfg.Metrics = obs.NewRegistry()
	}

	// Fence before open: a partition whose lease belongs to a newer epoch
	// (we hold a stale manifest) or to another node in this epoch refuses
	// here, before any WAL handle is taken.
	for _, p := range own {
		if err := acquireLease(shard.PartitionDir(rcfg.Dir, p), m.Epoch, cfg.Name); err != nil {
			return nil, err
		}
	}

	rt, err := shard.Open(rcfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		name:      cfg.Name,
		rt:        rt,
		reg:       rcfg.Metrics,
		m:         m,
		refreshes: rcfg.Metrics.Counter("cluster.node_refreshes_total"),
		adoptions: rcfg.Metrics.Counter("cluster.node_adoptions_total"),
	}
	rcfg.Metrics.Gauge("cluster.node_epoch").Set(int64(m.Epoch))
	return n, nil
}

// Runtime exposes the node's shard runtime (tests, shutdown plumbing).
func (n *Node) Runtime() *shard.Runtime { return n.rt }

// Name returns the node's manifest name.
func (n *Node) Name() string { return n.name }

// Epoch returns the manifest epoch the node is currently serving under.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.Epoch
}

// Manifest returns the node's current manifest view.
func (n *Node) Manifest() *Manifest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m
}

// RefreshReport says what a manifest refresh changed.
type RefreshReport struct {
	// Epoch is the manifest epoch after the refresh.
	Epoch uint64 `json:"epoch"`
	// Stale is true when the on-disk manifest was no newer than the
	// node's view (nothing changed).
	Stale bool `json:"stale,omitempty"`
	// Adopted lists partitions newly opened by this refresh (failover
	// handed them to us), ascending.
	Adopted []int `json:"adopted,omitempty"`
}

// Refresh re-reads the manifest and adopts any partitions a newer epoch
// assigns to this node: each is leased at the new epoch and opened via
// the shard runtime's crash-recovery path (WAL replay + exact tail
// resume), which is what makes failover lose nothing that was ever
// acknowledged. Partitions the node already serves stay untouched —
// ownership is only ever taken from a node by its death, not revoked
// from a live one mid-epoch. A manifest with the same or older epoch is
// a no-op.
func (n *Node) Refresh() (RefreshReport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refreshes.Inc()
	if n.cfg.ManifestPath == "" {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, fmt.Errorf("cluster: node has no manifest path to refresh from")
	}
	m, err := Load(n.cfg.ManifestPath)
	if err != nil {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, err
	}
	if m.Epoch <= n.m.Epoch {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, nil
	}
	if m.Shards != n.m.Shards {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true},
			fmt.Errorf("cluster: manifest epoch %d changes the shard count %d -> %d; a layout change needs a rebalance and a fleet restart, not a refresh",
				m.Epoch, n.m.Shards, m.Shards)
	}
	if _, ok := m.Nodes[n.name]; !ok {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true},
			fmt.Errorf("cluster: manifest epoch %d no longer lists node %q", m.Epoch, n.name)
	}
	rep := RefreshReport{Epoch: m.Epoch}
	dir := n.cfg.Runtime.Dir
	if dir == "" {
		dir = m.Dir
	}
	for _, p := range m.PartitionsOf(n.name) {
		// Re-stake partitions we keep at the new epoch and adopt the new
		// ones; either way the lease lands before any WAL handle moves.
		if err := acquireLease(shard.PartitionDir(dir, p), m.Epoch, n.name); err != nil {
			return rep, err
		}
		if !n.rt.Owns(p) {
			if err := n.rt.AdoptPartition(p); err != nil {
				return rep, err
			}
			n.adoptions.Inc()
			rep.Adopted = append(rep.Adopted, p)
		}
	}
	sort.Ints(rep.Adopted)
	n.m = m
	n.reg.Gauge("cluster.node_epoch").Set(int64(m.Epoch))
	return rep, nil
}

// HealthReport is the /healthz body: liveness plus per-partition
// lag/backlog, and the epoch the node serves under (the router treats a
// node reporting an older epoch than the manifest as not yet refreshed,
// never as dead).
type HealthReport struct {
	Node       string                  `json:"node"`
	Status     string                  `json:"status"`
	Epoch      uint64                  `json:"epoch"`
	Shards     int                     `json:"shards"`
	Partitions []shard.PartitionHealth `json:"partitions"`
}

// Health renders the node's current health report.
func (n *Node) Health() HealthReport {
	n.mu.Lock()
	epoch, shards := n.m.Epoch, n.m.Shards
	n.mu.Unlock()
	return HealthReport{
		Node:       n.name,
		Status:     "ok",
		Epoch:      epoch,
		Shards:     shards,
		Partitions: n.rt.Health(),
	}
}

// Handler returns the node's HTTP surface:
//
//	POST /ingest         the sharded intake over this node's partitions
//	                     (keys owned elsewhere answer with a per-
//	                     partition "not assigned" rejection)
//	GET  /healthz        liveness + per-partition lag/backlog JSON
//	GET  /metrics        text metrics (runtime-merged, shard<i>. prefixed)
//	GET  /metrics.json   JSON snapshot for the router's federated scrape
//	POST /admin/refresh  re-read the manifest, adopt newly-assigned
//	                     partitions (the router pokes this after a
//	                     failover installs a new epoch)
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/ingest", n.rt.IngestHandler(n.cfg.MaxBatchBytes))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Health())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n.rt.Snapshot().WriteText(w)
	})
	mux.Handle("/metrics.json", obs.SnapshotJSONHandler(n.rt.Snapshot))
	mux.HandleFunc("/admin/refresh", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "refresh accepts POST only", http.StatusMethodNotAllowed)
			return
		}
		rep, err := n.Refresh()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	return mux
}

// Drain blocks until every owned partition has consumed, flushed and
// committed its backlog (see shard.Runtime.Drain).
func (n *Node) Drain(ctx context.Context) error { return n.rt.Drain(ctx) }

// CloseIntake stops accepting appends on every owned partition.
func (n *Node) CloseIntake() { n.rt.CloseIntake() }

// Close shuts the node's runtime down gracefully.
func (n *Node) Close() error { return n.rt.Close() }
