package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"logsynergy/internal/httpapi"
	"logsynergy/internal/obs"
	"logsynergy/internal/shard"
)

// EpochHeader carries the manifest epoch on the router↔node data path:
// the router stamps every /ingest request with the epoch it routed
// under, and the node answers with the epoch it serves under. A node
// receiving a newer epoch than its own refreshes its manifest view
// before serving (or refuses with 409 if it cannot catch up) — the
// data-path half of fencing, so a node left behind by a failover's
// epoch bump cannot keep acking shares for partitions it no longer
// owns.
const EpochHeader = "X-Cluster-Epoch"

// NodeConfig assembles one cluster node.
type NodeConfig struct {
	// ManifestPath is the cluster.json location; Refresh re-reads it.
	// Optional when Manifest is supplied and Refresh is never used.
	ManifestPath string
	// Manifest, when set, is used instead of loading ManifestPath at
	// start (tests build manifests in memory).
	Manifest *Manifest
	// Name is this node's name in the manifest.
	Name string
	// Runtime is the shard runtime template: Detector, Interp, Embedder,
	// Sink, Broker and Pipeline configs come from here. Shards, Vnodes
	// and Subset are overridden from the manifest; Dir falls back to the
	// manifest's shared-storage root when empty.
	Runtime shard.Config
	// MaxBatchBytes bounds one /ingest request body (<= 0 selects the
	// broker default).
	MaxBatchBytes int64
}

// Node is one host's slice of the fleet: a subset shard runtime over the
// partitions the manifest assigns to it, plus the HTTP surface the front
// router talks to (/ingest, /healthz, /metrics, /metrics.json,
// /admin/refresh).
type Node struct {
	cfg  NodeConfig
	name string
	dir  string // runtime root (Runtime.Dir or the manifest's shared dir)
	rt   *shard.Runtime
	reg  *obs.Registry

	mu     sync.Mutex // guards m and leases across Refresh
	m      *Manifest
	leases map[int]*Lease // held partition fences, by partition index

	refreshes *obs.Counter
	adoptions *obs.Counter
	drops     *obs.Counter
}

// StartNode validates the manifest, acquires epoch leases (flock + epoch
// record) on the node's assigned partitions, and opens the subset shard
// runtime over them — crash recovery included, exactly as a
// single-process restart would.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.Name is required")
	}
	m := cfg.Manifest
	if m == nil {
		if cfg.ManifestPath == "" {
			return nil, fmt.Errorf("cluster: NodeConfig needs a Manifest or a ManifestPath")
		}
		var err error
		m, err = Load(cfg.ManifestPath)
		if err != nil {
			return nil, err
		}
	} else if err := m.Validate(); err != nil {
		return nil, err
	}
	if _, ok := m.Nodes[cfg.Name]; !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the manifest (nodes: %v)", cfg.Name, m.NodeNames())
	}

	rcfg := cfg.Runtime
	if rcfg.Dir == "" {
		rcfg.Dir = m.Dir
	}
	if rcfg.Dir == "" {
		return nil, fmt.Errorf("cluster: no runtime directory (set Runtime.Dir or the manifest's dir)")
	}
	rcfg.Shards = m.Shards
	rcfg.Vnodes = m.Vnodes
	own := m.PartitionsOf(cfg.Name)
	rcfg.Subset = own
	if rcfg.Metrics == nil {
		rcfg.Metrics = obs.NewRegistry()
	}

	// A live-cutover journal next to the manifest is the single source
	// of truth for crash recovery: a node restarting mid-cutover opens
	// straight into the journaled protocol state (donors at the old
	// layout with the recorded freeze offsets, the destination with its
	// staged splices applied) and waits for the coordinator to resume
	// driving it.
	if cfg.ManifestPath != "" {
		j, err := loadClusterJournal(clusterJournalPath(cfg.ManifestPath))
		if err != nil {
			return nil, err
		}
		if j != nil && j.To != m.Shards {
			if j.From != m.Shards {
				return nil, fmt.Errorf("cluster: cutover journal grows %d -> %d but the manifest serves %d partitions", j.From, j.To, m.Shards)
			}
			rcfg.Shards = j.To
			if j.DestNode == cfg.Name {
				own = append(append([]int{}, own...), j.To-1)
			}
			rcfg.Subset = own
			rcfg.Cutover = &shard.CutoverSpec{
				From:   j.From,
				To:     j.To,
				Vnodes: m.Vnodes,
				Freeze: j.Freeze,
				Keys:   j.Keys,
				Dest:   j.DestNode == cfg.Name,
			}
		}
	}

	// Fence before open: the flock refuses a partition whose owner is
	// still alive, and the epoch record refuses a lease from a newer
	// epoch (we hold a stale manifest) or another node's same-epoch
	// claim — all before any WAL handle is taken.
	leases := make(map[int]*Lease, len(own))
	releaseAll := func() {
		for _, l := range leases {
			l.Release()
		}
	}
	for _, p := range own {
		l, err := acquireLease(shard.PartitionDir(rcfg.Dir, p), m.Epoch, cfg.Name)
		if err != nil {
			releaseAll()
			return nil, err
		}
		leases[p] = l
	}

	rt, err := shard.Open(rcfg)
	if err != nil {
		releaseAll()
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		name:      cfg.Name,
		dir:       rcfg.Dir,
		rt:        rt,
		reg:       rcfg.Metrics,
		m:         m,
		leases:    leases,
		refreshes: rcfg.Metrics.Counter("cluster.node_refreshes_total"),
		adoptions: rcfg.Metrics.Counter("cluster.node_adoptions_total"),
		drops:     rcfg.Metrics.Counter("cluster.node_drops_total"),
	}
	rcfg.Metrics.Gauge("cluster.node_epoch").Set(int64(m.Epoch))
	return n, nil
}

// Runtime exposes the node's shard runtime (tests, shutdown plumbing).
func (n *Node) Runtime() *shard.Runtime { return n.rt }

// Name returns the node's manifest name.
func (n *Node) Name() string { return n.name }

// Epoch returns the manifest epoch the node is currently serving under.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.Epoch
}

// Manifest returns the node's current manifest view.
func (n *Node) Manifest() *Manifest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m
}

// RefreshReport says what a manifest refresh changed.
type RefreshReport struct {
	// Epoch is the manifest epoch after the refresh.
	Epoch uint64 `json:"epoch"`
	// Stale is true when the on-disk manifest was no newer than the
	// node's view (nothing changed).
	Stale bool `json:"stale,omitempty"`
	// Adopted lists partitions newly opened by this refresh (failover
	// handed them to us), ascending.
	Adopted []int `json:"adopted,omitempty"`
	// Dropped lists partitions released by this refresh (a newer epoch
	// assigned them elsewhere), ascending.
	Dropped []int `json:"dropped,omitempty"`
}

// Refresh re-reads the manifest and converges on what a newer epoch
// assigns to this node, in fencing order:
//
//  1. Partitions the new epoch assigns ELSEWHERE are dropped first —
//     the runtime closes them crash-style (no further writes to shared
//     storage; the committed state is exactly what the new owner's
//     crash recovery resumes) and only then releases the flock, so the
//     new owner's acquire cannot interleave with our writes. This is
//     how a deposed node (wedged through a failover, then recovering)
//     fences itself off the data path.
//  2. Partitions we keep are restaked at the new epoch (the flock never
//     drops).
//  3. Partitions newly assigned to us are leased and opened via the
//     shard runtime's crash-recovery path (WAL replay + exact tail
//     resume), which is what makes failover lose nothing that was ever
//     acknowledged.
//
// A node the new manifest no longer lists owns nothing: every partition
// is dropped and the node keeps serving as a spectator. A manifest with
// the same or older epoch is a no-op.
func (n *Node) Refresh() (RefreshReport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.refreshes.Inc()
	if n.cfg.ManifestPath == "" {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, fmt.Errorf("cluster: node has no manifest path to refresh from")
	}
	m, err := Load(n.cfg.ManifestPath)
	if err != nil {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, err
	}
	if m.Epoch <= n.m.Epoch {
		return RefreshReport{Epoch: n.m.Epoch, Stale: true}, nil
	}
	if m.Shards != n.m.Shards && n.rt.Shards() != m.Shards {
		// A live rebalance finish bumps the manifest's shard count after
		// every runtime has already restamped to the new layout; only
		// then is a count change a legal refresh.
		return RefreshReport{Epoch: n.m.Epoch, Stale: true},
			fmt.Errorf("cluster: manifest epoch %d changes the shard count %d -> %d; a layout change needs a rebalance and a fleet restart, not a refresh",
				m.Epoch, n.m.Shards, m.Shards)
	}
	rep := RefreshReport{Epoch: m.Epoch}
	dir := n.cfg.Runtime.Dir
	if dir == "" {
		dir = m.Dir
	}
	assigned := map[int]bool{}
	for _, p := range m.PartitionsOf(n.name) {
		assigned[p] = true
	}

	// 1. Drop what the new epoch takes away: stop writing, then unlock.
	for p, l := range n.leases {
		if assigned[p] {
			continue
		}
		if p >= m.Shards {
			// The destination partition of an in-flight live cutover: the
			// manifest does not list it yet, but the lease (taken at
			// cutover begin) must hold until the finish bump assigns it.
			continue
		}
		if err := n.rt.DropPartition(p); err != nil {
			return rep, err
		}
		l.Release()
		delete(n.leases, p)
		n.drops.Inc()
		rep.Dropped = append(rep.Dropped, p)
	}

	// 2 + 3. Restake what we keep, lease and adopt what is new.
	for _, p := range m.PartitionsOf(n.name) {
		if l := n.leases[p]; l != nil {
			if err := l.Restake(m.Epoch, n.name); err != nil {
				return rep, err
			}
			continue
		}
		l, err := acquireLease(shard.PartitionDir(dir, p), m.Epoch, n.name)
		if err != nil {
			return rep, err
		}
		if err := n.rt.AdoptPartition(p); err != nil {
			l.Release()
			return rep, err
		}
		n.leases[p] = l
		n.adoptions.Inc()
		rep.Adopted = append(rep.Adopted, p)
	}
	sort.Ints(rep.Adopted)
	sort.Ints(rep.Dropped)
	n.m = m
	n.reg.Gauge("cluster.node_epoch").Set(int64(m.Epoch))
	return rep, nil
}

// HealthReport is the /healthz body: liveness plus per-partition
// lag/backlog, and the epoch the node serves under (the router treats a
// node reporting an older epoch than the manifest as not yet refreshed,
// never as dead).
type HealthReport struct {
	Node       string                  `json:"node"`
	Status     string                  `json:"status"`
	Epoch      uint64                  `json:"epoch"`
	Shards     int                     `json:"shards"`
	Partitions []shard.PartitionHealth `json:"partitions"`
}

// Health renders the node's current health report.
func (n *Node) Health() HealthReport {
	n.mu.Lock()
	epoch, shards := n.m.Epoch, n.m.Shards
	n.mu.Unlock()
	return HealthReport{
		Node:       n.name,
		Status:     "ok",
		Epoch:      epoch,
		Shards:     shards,
		Partitions: n.rt.Health(),
	}
}

// Handler returns the node's HTTP surface. Data path:
//
//	POST /ingest         the sharded intake over this node's partitions,
//	                     epoch-fenced: a request routed under a newer
//	                     manifest epoch (EpochHeader) makes the node
//	                     refresh first, and is refused with 409 if the
//	                     node cannot catch up; keys owned elsewhere
//	                     answer with a per-partition "not assigned"
//	                     rejection. Every answer carries the node's own
//	                     epoch in EpochHeader so a stale router reloads.
//	GET  /healthz        liveness + per-partition lag/backlog JSON
//	GET  /metrics        text metrics (runtime-merged, shard<i>. prefixed)
//	GET  /metrics.json   JSON snapshot for the router's federated scrape
//
// Admin surface, versioned under /admin/v1 (refresh and status keep
// their legacy unversioned aliases; every answer is epoch-stamped and
// every non-2xx body carries the httpapi error envelope):
//
//	POST /admin/v1/refresh            re-read the manifest, adopt newly
//	                                  assigned partitions, drop deposed ones
//	GET  /admin/v1/status             node name, epoch, owned partitions,
//	                                  live-cutover phase, build info
//	POST /admin/v1/append?partition=P directed append to one partition's
//	                                  WAL (the router's double-write path
//	                                  during a live cutover), epoch-fenced
//	POST /admin/v1/cutover/begin      flip this node into a journaled live
//	                                  cutover (body: shard.CutoverSpec)
//	POST /admin/v1/cutover/sync       advance per-key phases from the
//	                                  coordinator's journal
//	GET  /admin/v1/cutover/keys       moving keys still pending on owned donors
//	POST /admin/v1/cutover/capture    capture one key's splice from its donor
//	POST /admin/v1/cutover/stage      stage a splice file in the destination
//	                                  partition's directory (the transfer
//	                                  endpoint)
//	POST /admin/v1/cutover/install    apply a staged splice to the destination
//	POST /admin/v1/cutover/forget     drop a moved key's tail from its donor
//	POST /admin/v1/cutover/finish     restamp every partition at the new layout
func (n *Node) Handler() http.Handler {
	mux := httpapi.Mux(httpapi.MuxOptions{Snapshot: n.rt.Snapshot})
	ingest := n.rt.IngestHandler(n.cfg.MaxBatchBytes)
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if !n.fenceEpoch(w, r) {
			return
		}
		ingest.ServeHTTP(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Health())
	})
	stamp := func(h http.HandlerFunc) http.Handler { return httpapi.EpochStamp(EpochHeader, n.Epoch, h) }
	httpapi.HandleVersioned(mux, "/admin/refresh", stamp(n.handleRefresh))
	httpapi.HandleVersioned(mux, "/admin/status", stamp(n.handleStatus))
	mux.Handle(httpapi.Prefix+"/append", http.HandlerFunc(n.handleDirectedAppend))
	mux.Handle(httpapi.Prefix+"/cutover/begin", stamp(n.handleCutoverBegin))
	mux.Handle(httpapi.Prefix+"/cutover/sync", stamp(n.handleCutoverSync))
	mux.Handle(httpapi.Prefix+"/cutover/keys", stamp(n.handleCutoverKeys))
	mux.Handle(httpapi.Prefix+"/cutover/capture", stamp(n.handleCutoverCapture))
	mux.Handle(httpapi.Prefix+"/cutover/stage", stamp(n.handleCutoverStage))
	mux.Handle(httpapi.Prefix+"/cutover/install", stamp(n.handleCutoverInstall))
	mux.Handle(httpapi.Prefix+"/cutover/forget", stamp(n.handleCutoverForget))
	mux.Handle(httpapi.Prefix+"/cutover/finish", stamp(n.handleCutoverFinish))
	return mux
}

// fenceEpoch applies the data-path epoch fence: a request stamped with
// a newer epoch than the node serves under triggers a refresh and is
// refused with 409 if the node still cannot catch up. Returns false
// when it wrote the refusal. Every answer carries the node's epoch.
func (n *Node) fenceEpoch(w http.ResponseWriter, r *http.Request) bool {
	if h := r.Header.Get(EpochHeader); h != "" {
		reqEpoch, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			w.Header().Set(EpochHeader, strconv.FormatUint(n.Epoch(), 10))
			httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
				Code:    httpapi.CodeBadRequest,
				Message: "bad " + EpochHeader + " header: " + err.Error(),
			})
			return false
		}
		if reqEpoch > n.Epoch() && n.cfg.ManifestPath != "" {
			// Best-effort catch-up; the re-check below is the verdict.
			n.Refresh()
		}
		if cur := n.Epoch(); reqEpoch > cur {
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			httpapi.Error(w, http.StatusConflict, httpapi.Detail{
				Code:    httpapi.CodeConflict,
				Message: fmt.Sprintf("cluster: node %q serves epoch %d but the request was routed under epoch %d; refusing shares it might no longer own", n.name, cur, reqEpoch),
			})
			return false
		}
	}
	w.Header().Set(EpochHeader, strconv.FormatUint(n.Epoch(), 10))
	return true
}

func (n *Node) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpapi.MethodNotAllowed(w, http.MethodPost, "refresh accepts POST only")
		return
	}
	rep, err := n.Refresh()
	if err != nil {
		httpapi.Error(w, http.StatusConflict, httpapi.Detail{Code: httpapi.CodeConflict, Message: err.Error()})
		return
	}
	w.Header().Set(EpochHeader, strconv.FormatUint(n.Epoch(), 10))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// NodeStatus is the GET /admin/v1/status body of a fleet node.
type NodeStatus struct {
	Node       string                  `json:"node"`
	Epoch      uint64                  `json:"epoch"`
	Shards     int                     `json:"shards"`
	Owned      []int                   `json:"owned"`
	Cutover    *shard.CutoverStatus    `json:"cutover,omitempty"`
	Partitions []shard.PartitionHealth `json:"partitions"`
	Build      httpapi.BuildInfo       `json:"build"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.MethodNotAllowed(w, http.MethodGet, "status accepts GET only")
		return
	}
	st := NodeStatus{
		Node:       n.name,
		Epoch:      n.Epoch(),
		Shards:     n.rt.Shards(),
		Owned:      n.rt.Owned(),
		Cutover:    n.rt.CutoverStatus(),
		Partitions: n.rt.Health(),
		Build:      httpapi.Build(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Drain blocks until every owned partition has consumed, flushed and
// committed its backlog (see shard.Runtime.Drain).
func (n *Node) Drain(ctx context.Context) error { return n.rt.Drain(ctx) }

// CloseIntake stops accepting appends on every owned partition.
func (n *Node) CloseIntake() { n.rt.CloseIntake() }

// releaseLeases drops every held partition fence. Called only after the
// runtime has stopped writing.
func (n *Node) releaseLeases() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.leases {
		l.Release()
	}
	n.leases = map[int]*Lease{}
}

// Close shuts the node's runtime down gracefully, then releases the
// partition leases (in that order — the fence must outlive the last
// write).
func (n *Node) Close() error {
	err := n.rt.Close()
	n.releaseLeases()
	return err
}

// Kill simulates process death: the runtime crashes (no final flush,
// commit or fsync) and every partition lease is released — exactly what
// the OS does with a dead process's flocks. The chaos and failover
// suites use it; a real deployment never calls it.
func (n *Node) Kill() {
	n.rt.Kill()
	n.releaseLeases()
}
