package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Partition leases fence partition ownership across processes on shared
// storage. Before a node opens a partition it stakes cluster-lease.json
// in the partition directory: {epoch, node}. The rules make "no
// partition served by two nodes in the same epoch" a local file check
// rather than a distributed agreement:
//
//   - a lease from a NEWER epoch refuses the open outright — a node
//     holding a stale manifest (e.g. the dead node restarting after a
//     failover bumped the epoch) cannot re-open partitions that were
//     reassigned out from under it;
//   - a lease from the SAME epoch held by a DIFFERENT node refuses the
//     open — the manifest assigns each partition exactly once per epoch,
//     so this only happens on operator error (two nodes configured with
//     the same assignments);
//   - the same node re-staking its own epoch is an idempotent restart;
//   - an OLDER epoch's lease is superseded and overwritten.
//
// The lease is written with the same fsynced temp+rename discipline as
// the manifest, so a torn write cannot forge ownership.

// leaseFileName is the fence file inside a partition's WAL directory.
const leaseFileName = "cluster-lease.json"

// partitionLease is the serialized fence.
type partitionLease struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch"`
	Node    string `json:"node"`
}

// leasePath renders the lease path for a partition directory.
func leasePath(dir string) string { return filepath.Join(dir, leaseFileName) }

// readLease loads a partition's lease; a missing file returns nil.
func readLease(dir string) (*partitionLease, error) {
	data, err := os.ReadFile(leasePath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: reading lease: %w", err)
	}
	var l partitionLease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("cluster: corrupt lease %s: %w", leasePath(dir), err)
	}
	return &l, nil
}

// acquireLease stakes node's claim on the partition directory at epoch,
// applying the fencing rules above. The directory is created if needed
// (a standby adopting a partition whose WAL dir it has never opened).
func acquireLease(dir string, epoch uint64, node string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: creating partition dir: %w", err)
	}
	cur, err := readLease(dir)
	if err != nil {
		return err
	}
	if cur != nil {
		if cur.Epoch > epoch {
			return fmt.Errorf("cluster: partition %s is leased by %q at epoch %d, newer than this manifest's epoch %d; "+
				"reload the current manifest", dir, cur.Node, cur.Epoch, epoch)
		}
		if cur.Epoch == epoch && cur.Node != node {
			return fmt.Errorf("cluster: partition %s is already leased by %q in epoch %d; "+
				"two nodes must never serve one partition in the same epoch", dir, cur.Node, epoch)
		}
		if cur.Epoch == epoch && cur.Node == node {
			return nil // idempotent restart
		}
	}
	data, err := json.Marshal(partitionLease{Version: 1, Epoch: epoch, Node: node})
	if err != nil {
		return fmt.Errorf("cluster: encoding lease: %w", err)
	}
	return atomicWriteFile(leasePath(dir), append(data, '\n'))
}
