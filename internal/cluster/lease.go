package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Partition leases fence partition ownership across processes on shared
// storage. A lease has two parts, both in the partition directory:
//
//   - cluster-lease.lock — an flock(2)-held lock file. The fd (and with
//     it the lock) is held for the whole time the process serves the
//     partition and drops automatically when the process dies. Holding
//     it is what makes acquisition atomic: two concurrent acquirers
//     cannot both pass the epoch checks, because only one holds the
//     flock while checking. It is also the liveness fence — a standby
//     cannot adopt a partition whose owner is still alive (probe path
//     wedged, network partition, GC pause), because the owner's flock
//     refuses the takeover outright. Better to fail the failover than
//     to let two processes append to one WAL.
//   - cluster-lease.json — the durable {epoch, node} record, written
//     with the same fsynced temp+rename discipline as the manifest. It
//     fences across process lifetimes, where no flock survives:
//
//       - a record from a NEWER epoch refuses the open outright — a
//         node holding a stale manifest (e.g. the dead node restarting
//         after a failover bumped the epoch) cannot re-open partitions
//         that were reassigned out from under it;
//       - a record from the SAME epoch held by a DIFFERENT node refuses
//         the open — the manifest assigns each partition exactly once
//         per epoch, so this only happens on operator error (two nodes
//         configured with the same assignments);
//       - the same node re-staking its own epoch is an idempotent
//         restart;
//       - an OLDER epoch's record is superseded and overwritten.
//
// The lock file is never renamed or replaced — flock identifies the
// inode, so replacing it would silently break mutual exclusion.

// leaseFileName is the durable fence record inside a partition's WAL
// directory.
const leaseFileName = "cluster-lease.json"

// leaseLockName is the flock file inside a partition's WAL directory.
const leaseLockName = "cluster-lease.lock"

// partitionLease is the serialized fence record.
type partitionLease struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch"`
	Node    string `json:"node"`
}

// leasePath renders the lease record path for a partition directory.
func leasePath(dir string) string { return filepath.Join(dir, leaseFileName) }

// leaseLockPath renders the flock file path for a partition directory.
func leaseLockPath(dir string) string { return filepath.Join(dir, leaseLockName) }

// readLease loads a partition's lease record; a missing file returns nil.
func readLease(dir string) (*partitionLease, error) {
	data, err := os.ReadFile(leasePath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: reading lease: %w", err)
	}
	var l partitionLease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("cluster: corrupt lease %s: %w", leasePath(dir), err)
	}
	return &l, nil
}

// Lease is a held partition fence: the flock stays held until Release
// (or process death), and no other process can acquire the partition
// while it is. The holder must Release before any other process may
// serve the partition — which is exactly the single-writer guarantee.
type Lease struct {
	dir string
	f   *os.File
}

// acquireLease stakes node's claim on the partition directory at epoch:
// it takes the flock (refusing if any live process holds it), then
// applies the epoch fencing rules to the durable record and stakes it.
// The directory is created if needed (a standby adopting a partition
// whose WAL dir it has never opened). The returned Lease must be held
// for as long as the partition is served and Released when ownership
// ends.
func acquireLease(dir string, epoch uint64, node string) (*Lease, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating partition dir: %w", err)
	}
	f, err := os.OpenFile(leaseLockPath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening lease lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		cur, rerr := readLease(dir)
		if rerr == nil && cur != nil {
			if cur.Epoch > epoch {
				return nil, fmt.Errorf("cluster: partition %s is leased by %q at epoch %d, newer than this manifest's epoch %d, "+
					"and the lease is held by a live process; reload the current manifest", dir, cur.Node, cur.Epoch, epoch)
			}
			return nil, fmt.Errorf("cluster: partition %s is leased by %q (epoch %d) and held by a live process; "+
				"two nodes must never serve one partition concurrently", dir, cur.Node, cur.Epoch)
		}
		return nil, fmt.Errorf("cluster: partition %s's lease is held by a live process", dir)
	}
	l := &Lease{dir: dir, f: f}
	// The flock is held: no other process is inside this check-then-act
	// window, so reading the record, fencing, and staking are atomic.
	cur, err := readLease(dir)
	if err != nil {
		l.Release()
		return nil, err
	}
	if cur != nil {
		if cur.Epoch > epoch {
			l.Release()
			return nil, fmt.Errorf("cluster: partition %s is leased by %q at epoch %d, newer than this manifest's epoch %d; "+
				"reload the current manifest", dir, cur.Node, cur.Epoch, epoch)
		}
		if cur.Epoch == epoch && cur.Node != node {
			l.Release()
			return nil, fmt.Errorf("cluster: partition %s is already leased by %q in epoch %d; "+
				"two nodes must never serve one partition in the same epoch", dir, cur.Node, epoch)
		}
		if cur.Epoch == epoch && cur.Node == node {
			return l, nil // idempotent restart: the record is already right
		}
	}
	if err := l.stake(epoch, node); err != nil {
		l.Release()
		return nil, err
	}
	return l, nil
}

// stake writes the durable lease record. Caller holds the flock.
func (l *Lease) stake(epoch uint64, node string) error {
	data, err := json.Marshal(partitionLease{Version: 1, Epoch: epoch, Node: node})
	if err != nil {
		return fmt.Errorf("cluster: encoding lease: %w", err)
	}
	return atomicWriteFile(leasePath(l.dir), append(data, '\n'))
}

// Restake rewrites the held lease's record at a newer epoch — a node
// keeping a partition across a manifest refresh. The flock never drops,
// so no other process can slip in between epochs.
func (l *Lease) Restake(epoch uint64, node string) error {
	if l == nil || l.f == nil {
		return fmt.Errorf("cluster: restaking a released lease")
	}
	return l.stake(epoch, node)
}

// Release drops the flock (closing the fd releases it — the same way
// the OS releases a crashed process's locks). The durable record stays:
// epoch fencing outlives the process. Idempotent.
func (l *Lease) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
