// Package cluster is the cross-process coordination layer over the
// sharded detection runtime: it lets the partitions of one logical fleet
// run on separate hosts while keeping every guarantee the single-process
// runtime proves (key affinity, exact resume, zero acknowledged loss).
//
// Three pieces, deliberately small:
//
//   - an assignment manifest (cluster.json): a versioned, checksummed
//     partition→node mapping with a monotonically increasing epoch.
//     Every process loads and validates the same file; a change of
//     ownership is always a new epoch, never an in-place edit.
//   - node mode: each host opens only its assigned partitions' WAL
//     directories (shard.Config.Subset) and serves /ingest, /healthz
//     and /metrics for them. Before opening a partition the node takes
//     an flock-held epoch lease in the partition directory — held for
//     as long as it serves the partition — so two live processes can
//     never serve one partition, and two nodes can never serve one
//     partition in the same epoch.
//   - a front router: consistent-hash routes /ingest batches to the
//     owning nodes over HTTP, with per-node connection pooling, bounded
//     in-flight backpressure, seeded-jitter retries, Retry-After
//     propagation, and a health-checked failover path that reassigns a
//     dead node's partitions to a standby via an epoch-bumped manifest.
//
// The safety argument stays the single-process one: the ring hash is a
// fixed function of (shards, vnodes), so a key's partition is identical
// in every process; a partition's WAL + shard-state.json are the same
// files whether one process or three serve them; and failover is just
// the crash-recovery path (WAL replay + exact tail resume) executed by a
// different process than the one that crashed.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ManifestVersion is the current cluster.json format version.
const ManifestVersion = 1

// castagnoli is the CRC32C table (the same polynomial the broker's WAL
// frames use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// NodeSpec describes one node of the fleet.
type NodeSpec struct {
	// Addr is the node's HTTP address (host:port) serving /ingest,
	// /healthz, /metrics and /metrics.json.
	Addr string `json:"addr"`
	// Standby marks a node eligible to adopt a dead node's partitions
	// during failover. A standby may also hold assignments of its own.
	Standby bool `json:"standby,omitempty"`
}

// Manifest is the fleet's assignment document (cluster.json): which node
// serves which partition, under which epoch. It is loaded and validated
// by every process; the shard layout it names is stamped against each
// partition's shard-state.json when the owning node opens it.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Epoch increases by one on every reassignment (failover installs an
	// epoch-bumped manifest). Partition leases are staked per epoch.
	Epoch uint64 `json:"epoch"`
	// Shards is the fleet's total partition count — the consistent-hash
	// ring every process builds, and the layout stamp every partition's
	// shard-state.json must match.
	Shards int `json:"shards"`
	// Vnodes overrides the ring's virtual-node count (0 = the shard
	// package default). All processes must agree or keys would route
	// differently per process.
	Vnodes int `json:"vnodes,omitempty"`
	// Dir is the shared-storage runtime root (optional). When set, nodes
	// without an explicit -broker-dir open their partitions under it;
	// failover requires it (the standby must see the dead node's WALs).
	Dir string `json:"dir,omitempty"`
	// Nodes maps node name → spec.
	Nodes map[string]NodeSpec `json:"nodes"`
	// Assignments maps partition index → owning node name
	// (len == Shards).
	Assignments []string `json:"assignments"`
	// Checksum is the hex CRC32C of the manifest's canonical encoding
	// with Checksum itself blanked. Save stamps it; Load verifies it when
	// present (a hand-authored manifest may omit it).
	Checksum string `json:"checksum,omitempty"`
}

// checksum computes the manifest's canonical CRC32C: the JSON encoding
// with the Checksum field blanked.
func (m *Manifest) checksum() (string, error) {
	shadow := *m
	shadow.Checksum = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("cluster: encoding manifest for checksum: %w", err)
	}
	return fmt.Sprintf("%08x", crc32.Checksum(data, castagnoli)), nil
}

// Stamp sets the format version and recomputes the checksum. Save calls
// it; tests building manifests by hand call it before serving them.
func (m *Manifest) Stamp() error {
	m.Version = ManifestVersion
	sum, err := m.checksum()
	if err != nil {
		return err
	}
	m.Checksum = sum
	return nil
}

// Validate checks the manifest's internal consistency: a positive shard
// count and epoch, every partition assigned to a known node, every node
// addressable, and (when stamped) a matching checksum.
func (m *Manifest) Validate() error {
	if m.Version > ManifestVersion {
		return fmt.Errorf("cluster: manifest version %d is newer than supported (%d)", m.Version, ManifestVersion)
	}
	if m.Shards <= 0 {
		return fmt.Errorf("cluster: manifest needs a positive shard count, got %d", m.Shards)
	}
	if m.Epoch == 0 {
		return fmt.Errorf("cluster: manifest needs a positive epoch (epochs start at 1)")
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: manifest names no nodes")
	}
	for name, spec := range m.Nodes {
		if name == "" {
			return fmt.Errorf("cluster: manifest has a node with an empty name")
		}
		if spec.Addr == "" {
			return fmt.Errorf("cluster: node %q has no address", name)
		}
	}
	if len(m.Assignments) != m.Shards {
		return fmt.Errorf("cluster: %d assignments for %d partitions", len(m.Assignments), m.Shards)
	}
	for p, node := range m.Assignments {
		if _, ok := m.Nodes[node]; !ok {
			return fmt.Errorf("cluster: partition %d assigned to unknown node %q", p, node)
		}
	}
	if m.Checksum != "" {
		want, err := m.checksum()
		if err != nil {
			return err
		}
		if m.Checksum != want {
			return fmt.Errorf("cluster: manifest checksum %s does not match computed %s (corrupt or hand-edited without restamping)", m.Checksum, want)
		}
	}
	return nil
}

// PartitionsOf returns the partitions assigned to node, ascending. The
// result is non-nil even when empty: a listed node with no assignments
// is a standby, which the shard runtime expresses as an empty Subset.
func (m *Manifest) PartitionsOf(node string) []int {
	parts := []int{}
	for p, n := range m.Assignments {
		if n == node {
			parts = append(parts, p)
		}
	}
	return parts
}

// NodeFor returns the name of the node owning partition p.
func (m *Manifest) NodeFor(p int) string {
	if p < 0 || p >= len(m.Assignments) {
		return ""
	}
	return m.Assignments[p]
}

// NodeNames returns the node names, sorted.
func (m *Manifest) NodeNames() []string {
	names := make([]string, 0, len(m.Nodes))
	for name := range m.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Standbys returns the names of standby nodes, sorted, excluding any
// names in skip — the failover candidate order (deterministic, so every
// router observing the same manifest picks the same successor).
func (m *Manifest) Standbys(skip ...string) []string {
	skipped := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipped[s] = true
	}
	names := []string{}
	for name, spec := range m.Nodes {
		if spec.Standby && !skipped[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the manifest.
func (m *Manifest) Clone() *Manifest {
	out := *m
	out.Nodes = make(map[string]NodeSpec, len(m.Nodes))
	for k, v := range m.Nodes {
		out.Nodes[k] = v
	}
	out.Assignments = append([]string(nil), m.Assignments...)
	return &out
}

// Reassign returns an epoch-bumped manifest moving every partition owned
// by dead onto successor. The successor must be a listed node; the dead
// node stays listed (it may come back as a standby) but owns nothing.
func (m *Manifest) Reassign(dead, successor string) (*Manifest, error) {
	if _, ok := m.Nodes[successor]; !ok {
		return nil, fmt.Errorf("cluster: reassignment successor %q is not in the manifest", successor)
	}
	if dead == successor {
		return nil, fmt.Errorf("cluster: cannot reassign %q to itself", dead)
	}
	moved := 0
	out := m.Clone()
	for p, node := range out.Assignments {
		if node == dead {
			out.Assignments[p] = successor
			moved++
		}
	}
	if moved == 0 {
		return nil, fmt.Errorf("cluster: node %q owns no partitions to reassign", dead)
	}
	out.Epoch = m.Epoch + 1
	if err := out.Stamp(); err != nil {
		return nil, err
	}
	return out, nil
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: corrupt manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// Save stamps and installs a manifest atomically and durably: temp file
// in the same directory, fsynced before the rename, directory fsynced
// after — the same discipline as shard-state.json, so a failover's
// epoch bump either fully lands or leaves the previous manifest intact.
func Save(path string, m *Manifest) error {
	if err := m.Stamp(); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encoding manifest: %w", err)
	}
	return atomicWriteFile(path, append(data, '\n'))
}

// atomicWriteFile installs data at path via fsynced temp file + rename +
// directory sync.
func atomicWriteFile(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("cluster: writing %s: %w", base, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("cluster: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cluster: closing temp file: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cluster: setting file mode: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("cluster: installing %s: %w", base, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cluster: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing dir: %w", err)
	}
	return nil
}
