package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"logsynergy/internal/httpapi"
	"logsynergy/internal/shard"
)

// Networked live rebalancing: grow a running fleet N -> N+1 partitions
// under traffic, driving the in-process journaled per-key cutover
// (internal/shard/live.go) over the admin API. The router is the
// coordinator; the journal lives in the cluster directory next to
// cluster.json and is the single source of truth for crash recovery on
// every participant:
//
//   - a NODE restarting mid-cutover reads the journal via StartNode and
//     opens straight into the protocol state (donors at the old layout
//     with the recorded freeze offsets, the destination with committed
//     splices applied), then serves passively.
//   - a ROUTER restarting (or a second, stale router reloading) reads
//     the journal and resumes double-write routing for unreleased
//     moving keys; Router.LiveRebalance called again resumes driving
//     from the journal, idempotently re-beginning every participant.
//   - the journal's removal is the cutover's commit point, strictly
//     after the epoch-bumped manifest with the new shard count is
//     installed — a crash anywhere in between resumes as finish-only.
//
// Zero acknowledged loss holds by the same argument as in-process: a
// moving key is double-written (donor + destination partition, acked
// only when both land) from the instant the journal exists until its
// entry reads "released"; donor freeze offsets are captured under each
// node's route write lock inside cutover/begin, so no acknowledged
// line ever sits past a donor's freeze point without a destination
// copy.

// cutoverJournalName is the journal file next to cluster.json.
const cutoverJournalName = "live-cutover.json"

// clusterJournal is the cluster-level live-cutover journal. It extends
// the in-process journal's shape with the destination node, so every
// participant (and any router) can reconstruct the full topology of the
// move from the file alone.
type clusterJournal struct {
	Version int `json:"version"`
	From    int `json:"from"`
	To      int `json:"to"`
	Vnodes  int `json:"vnodes"`
	// DestNode hosts the new partition To-1 until the manifest bump
	// assigns it there permanently.
	DestNode string `json:"dest_node"`
	// Freeze maps donor partition -> first double-written offset,
	// captured on the owning nodes at begin.
	Freeze map[int]uint64 `json:"freeze"`
	// Keys is the per-key ledger: key -> "committed" | "released";
	// pending keys are absent.
	Keys map[string]string `json:"keys"`
}

// clusterJournalPath locates the journal next to the manifest.
func clusterJournalPath(manifestPath string) string {
	return filepath.Join(filepath.Dir(manifestPath), cutoverJournalName)
}

// loadClusterJournal reads the journal, nil when none exists.
func loadClusterJournal(path string) (*clusterJournal, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: reading cutover journal: %w", err)
	}
	var j clusterJournal
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("cluster: corrupt cutover journal %s: %w", path, err)
	}
	if j.To != j.From+1 || j.From < 1 || j.DestNode == "" {
		return nil, fmt.Errorf("cluster: cutover journal %s is inconsistent (%d -> %d, dest %q)", path, j.From, j.To, j.DestNode)
	}
	return &j, nil
}

// saveClusterJournal writes the journal with the manifest's atomic
// rename + fsync discipline — each per-key commit must be durable
// before the key's destination copy is the one detection consumes.
func saveClusterJournal(path string, j *clusterJournal) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encoding cutover journal: %w", err)
	}
	return atomicWriteFile(path, append(data, '\n'))
}

// removeClusterJournal deletes the journal — the cutover's commit point
// — and syncs the directory so the removal survives a crash.
func removeClusterJournal(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cluster: removing cutover journal: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// routeCutover is the router's routing overlay while a cutover is in
// flight: which keys move, which have been released, and where the
// destination partition lives.
type routeCutover struct {
	from, to int
	destNode string
	oldRing  *shard.Partitioner
	newRing  *shard.Partitioner

	mu       sync.RWMutex
	released map[string]bool
}

func newRouteCutover(j *clusterJournal) *routeCutover {
	rc := &routeCutover{
		from:     j.From,
		to:       j.To,
		destNode: j.DestNode,
		oldRing:  shard.NewPartitionerVnodes(j.From, j.Vnodes),
		newRing:  shard.NewPartitionerVnodes(j.To, j.Vnodes),
		released: map[string]bool{},
	}
	for k, ph := range j.Keys {
		if ph == "released" {
			rc.released[k] = true
		}
	}
	return rc
}

// moving reports whether the key changes partition in this cutover.
func (rc *routeCutover) moving(key string) bool {
	return rc.oldRing.Partition(key) != rc.newRing.Partition(key)
}

func (rc *routeCutover) isReleased(key string) bool {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.released[key]
}

func (rc *routeCutover) release(key string) {
	rc.mu.Lock()
	rc.released[key] = true
	rc.mu.Unlock()
}

// reloadCutover converges the router's routing overlay on the on-disk
// journal. Called after every manifest reload and at router start: a
// journal for a cutover the router does not know about installs the
// overlay (the stale-router path — double-writes resume immediately);
// a journal the router already follows only merges newly released keys
// (the overlay object stays, because the driving coordinator mutates
// it); no journal, or one the manifest has caught up with, clears it.
func (r *Router) reloadCutover() {
	if r.cfg.ManifestPath == "" {
		return
	}
	j, err := loadClusterJournal(clusterJournalPath(r.cfg.ManifestPath))
	if err != nil {
		return
	}
	m := r.Manifest()
	cur := r.rcut.Load()
	if j == nil || j.To <= m.Shards {
		if cur != nil {
			r.rcut.Store(nil)
		}
		return
	}
	if cur != nil && cur.from == j.From && cur.to == j.To {
		for k, ph := range j.Keys {
			if ph == "released" {
				cur.release(k)
			}
		}
		return
	}
	r.rcut.Store(newRouteCutover(j))
}

// LiveRebalance grows the fleet from the manifest's shard count to
// `to` partitions under traffic — the networked form of
// shard.Runtime.LiveRebalance, with this router as the coordinator.
// destNode names the node that hosts the new partition (empty picks
// the node owning the fewest partitions). Blocks until every moving
// key is released and the epoch-bumped manifest with the new count is
// installed; safe to call again after any crash — the journal decides
// whether it starts fresh, resumes driving, or only finishes.
func (r *Router) LiveRebalance(to int, destNode string) (*shard.RebalanceReport, error) {
	r.liveMu.Lock()
	defer r.liveMu.Unlock()
	if r.cfg.ManifestPath == "" {
		return nil, fmt.Errorf("cluster: live rebalance needs a ManifestPath (the journal lives next to the manifest)")
	}
	start := time.Now()
	_ = r.Reload() // freshest view; also installs the overlay from any existing journal
	jpath := clusterJournalPath(r.cfg.ManifestPath)
	j, err := loadClusterJournal(jpath)
	if err != nil {
		return nil, err
	}
	m := r.Manifest()

	if j == nil && m.Shards == to {
		return &shard.RebalanceReport{From: to, To: to, Dir: m.Dir, AlreadyBalanced: true}, nil
	}
	if j != nil && j.To != to {
		return nil, fmt.Errorf("cluster: a live cutover %d -> %d is journaled; finish it before asking for %d partitions", j.From, j.To, to)
	}
	if j == nil {
		if to != m.Shards+1 {
			return nil, fmt.Errorf("cluster: live rebalance grows one partition at a time; fleet serves %d, asked for %d", m.Shards, to)
		}
		if destNode == "" {
			destNode = pickDestNode(m)
		} else if _, ok := m.Nodes[destNode]; !ok {
			return nil, fmt.Errorf("cluster: destination node %q is not in the manifest (nodes: %v)", destNode, m.NodeNames())
		}
		j, err = r.beginFleet(m, to, destNode)
		if err != nil {
			return nil, err
		}
	} else {
		destNode = j.DestNode
		if m.Shards != j.To {
			// Mid-drive resume: re-begin every participant with the
			// journaled freezes and phases, then keep driving.
			if err := r.resumeFleet(m, j); err != nil {
				return nil, err
			}
		}
		// m.Shards == j.To: the manifest bump landed but the journal
		// removal did not — finish-only.
	}

	report := &shard.RebalanceReport{From: j.From, To: j.To, Dir: m.Dir}
	if m.Shards != j.To {
		moved, lines, err := r.driveFleet(m, j, jpath)
		if err != nil {
			return nil, err
		}
		report.MovedKeys, report.MovedLines = moved, lines
	}
	if err := r.finishFleet(m, j, jpath); err != nil {
		return nil, err
	}
	report.Duration = time.Since(start)
	return report, nil
}

// pickDestNode chooses the node owning the fewest partitions
// (name-ordered tiebreak) to host the new one.
func pickDestNode(m *Manifest) string {
	best, bestOwned := "", -1
	for _, name := range m.NodeNames() {
		owned := len(m.PartitionsOf(name))
		if bestOwned == -1 || owned < bestOwned {
			best, bestOwned = name, owned
		}
	}
	return best
}

// participants lists every node serving a donor partition plus the
// destination node, name-ordered.
func participants(m *Manifest, from int, destNode string) []string {
	set := map[string]bool{destNode: true}
	for p := 0; p < from && p < len(m.Assignments); p++ {
		set[m.Assignments[p]] = true
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// beginFleet runs the fresh flip: with routing gated, every participant
// begins the cutover (the destination node first opens and fences the
// new partition; each node captures freeze offsets for its donors under
// its route write lock), and only when every begin has answered is the
// journal written and double-write routing installed. A begin that
// fails leaves no journal — the begun nodes' gating causes retryable
// rejections until they restart, but nothing is ever lost and nothing
// resumes: the cleanest abort.
func (r *Router) beginFleet(m *Manifest, to int, destNode string) (*clusterJournal, error) {
	r.gate.Lock()
	defer r.gate.Unlock()
	from := m.Shards
	freeze := map[int]uint64{}
	for _, name := range participants(m, from, destNode) {
		spec := shard.CutoverSpec{From: from, To: to, Vnodes: m.Vnodes, Dest: name == destNode}
		res, err := r.beginNode(m, name, spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: beginning cutover on node %q: %w", name, err)
		}
		for p, off := range res.Freeze {
			freeze[p] = off
		}
	}
	for p := 0; p < from; p++ {
		if _, ok := freeze[p]; !ok {
			return nil, fmt.Errorf("cluster: no node reported a freeze offset for donor partition %d", p)
		}
	}
	j := &clusterJournal{Version: 1, From: from, To: to, Vnodes: m.Vnodes, DestNode: destNode, Freeze: freeze, Keys: map[string]string{}}
	if err := saveClusterJournal(clusterJournalPath(r.cfg.ManifestPath), j); err != nil {
		return nil, err
	}
	r.rcut.Store(newRouteCutover(j))
	return j, nil
}

// resumeFleet re-begins every participant from the journal (idempotent
// on nodes already in the cutover; nodes that restarted since re-enter
// it with the journaled freezes and phases) and installs the routing
// overlay.
func (r *Router) resumeFleet(m *Manifest, j *clusterJournal) error {
	r.gate.Lock()
	defer r.gate.Unlock()
	for _, name := range participants(m, j.From, j.DestNode) {
		spec := shard.CutoverSpec{From: j.From, To: j.To, Vnodes: j.Vnodes, Freeze: j.Freeze, Keys: j.Keys, Dest: name == j.DestNode}
		if _, err := r.beginNode(m, name, spec); err != nil {
			return fmt.Errorf("cluster: resuming cutover on node %q: %w", name, err)
		}
	}
	if cur := r.rcut.Load(); cur == nil || cur.from != j.From || cur.to != j.To {
		r.rcut.Store(newRouteCutover(j))
	}
	return nil
}

// driveFleet runs the per-key cutover sequence over the network until
// no donor holds a pending moving key. Keys already journaled
// "committed" are rolled forward first (install + forget + release) —
// exactly one layout owns each key at every step, resumable from any
// crash point.
func (r *Router) driveFleet(m *Manifest, j *clusterJournal, jpath string) (movedKeys, movedLines int, err error) {
	rc := r.rcut.Load()
	if rc == nil {
		return 0, 0, fmt.Errorf("cluster: no routing overlay installed for the cutover")
	}
	committed := make([]string, 0, len(j.Keys))
	for k, ph := range j.Keys {
		if ph == "committed" {
			committed = append(committed, k)
		}
	}
	sort.Strings(committed)
	for _, k := range committed {
		if err := r.rollForward(m, j, jpath, rc, k); err != nil {
			return movedKeys, movedLines, err
		}
		movedKeys++
	}
	for {
		pending, err := r.pendingFleetKeys(m, j)
		if err != nil {
			return movedKeys, movedLines, err
		}
		if len(pending) == 0 {
			return movedKeys, movedLines, nil
		}
		for _, k := range pending {
			lines, err := r.moveFleetKey(m, j, jpath, rc, k)
			if err != nil {
				return movedKeys, movedLines, err
			}
			movedKeys++
			movedLines += lines
		}
	}
}

// pendingFleetKeys unions every donor node's pending moving keys.
func (r *Router) pendingFleetKeys(m *Manifest, j *clusterJournal) ([]string, error) {
	seen := map[string]bool{}
	var keys []string
	for _, name := range participants(m, j.From, j.DestNode) {
		var body struct {
			Keys []string `json:"keys"`
		}
		err := r.adminRetry(fmt.Sprintf("listing pending keys on node %q", name), func() error {
			return r.adminJSON(http.MethodGet, m.Nodes[name].Addr, httpapi.Prefix+"/cutover/keys", nil, &body)
		})
		if err != nil {
			return nil, err
		}
		for _, k := range body.Keys {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// moveFleetKey cuts one pending key over across the network: capture
// on the donor's node (refused until the donor consumed through its
// freeze point — the capture retry loop is the networked await), stage
// on the destination's, commit in the journal, install, forget,
// release. The per-key order of operations is identical to the
// in-process moveKey; only the transport changed.
func (r *Router) moveFleetKey(m *Manifest, j *clusterJournal, jpath string, rc *routeCutover, key string) (int, error) {
	donorNode := m.NodeFor(rc.oldRing.Partition(key))
	donorAddr := m.Nodes[donorNode].Addr
	destAddr := m.Nodes[j.DestNode].Addr
	if err := r.callLiveHook("double-write", key); err != nil {
		return 0, err
	}

	var sp shard.KeySplice
	err := r.adminRetry(fmt.Sprintf("capturing key %q on node %q", key, donorNode), func() error {
		return r.adminJSON(http.MethodPost, donorAddr, httpapi.Prefix+"/cutover/capture?key="+queryEscape(key), nil, &sp)
	})
	if err != nil {
		return 0, err
	}
	if err := r.callLiveHook("tail-landed", key); err != nil {
		return 0, err
	}

	err = r.adminRetry(fmt.Sprintf("staging key %q on node %q", key, j.DestNode), func() error {
		return r.adminJSON(http.MethodPost, destAddr, httpapi.Prefix+"/cutover/stage", sp, nil)
	})
	if err != nil {
		return 0, err
	}
	if err := r.callLiveHook("staged", key); err != nil {
		return 0, err
	}

	// Commit: from here the key is destination-owned and any recovery
	// rolls it forward.
	j.Keys[key] = "committed"
	if err := saveClusterJournal(jpath, j); err != nil {
		return 0, err
	}
	r.syncFleetKey(m, j, key, "committed", donorNode)
	if err := r.callLiveHook("committed", key); err != nil {
		return 0, err
	}

	if err := r.rollForward(m, j, jpath, rc, key); err != nil {
		return 0, err
	}
	return len(sp.Tail.Lines), nil
}

// rollForward takes a journaled-committed key the rest of the way:
// install the staged splice on the destination, forget the tail on the
// donor, journal "released", and stop double-writing it.
func (r *Router) rollForward(m *Manifest, j *clusterJournal, jpath string, rc *routeCutover, key string) error {
	donorNode := m.NodeFor(rc.oldRing.Partition(key))
	donorAddr := m.Nodes[donorNode].Addr
	destAddr := m.Nodes[j.DestNode].Addr

	err := r.adminRetry(fmt.Sprintf("installing key %q on node %q", key, j.DestNode), func() error {
		return r.adminJSON(http.MethodPost, destAddr, httpapi.Prefix+"/cutover/install?key="+queryEscape(key), nil, nil)
	})
	if err != nil {
		return err
	}
	err = r.adminRetry(fmt.Sprintf("forgetting key %q on node %q", key, donorNode), func() error {
		return r.adminJSON(http.MethodPost, donorAddr, httpapi.Prefix+"/cutover/forget?key="+queryEscape(key), nil, nil)
	})
	if err != nil {
		return err
	}

	j.Keys[key] = "released"
	if err := saveClusterJournal(jpath, j); err != nil {
		return err
	}
	r.syncFleetKey(m, j, key, "released", donorNode)
	rc.release(key)
	return r.callLiveHook("released", key)
}

// syncFleetKey pokes the key's donor and destination nodes with its new
// journal phase. Best-effort with retries: a node that stays down
// re-reads the journal at restart, so the poke is an optimization (it
// unparks the destination's consumer now instead of then), not a
// correctness step.
func (r *Router) syncFleetKey(m *Manifest, j *clusterJournal, key, phase, donorNode string) {
	body := map[string]map[string]string{"keys": {key: phase}}
	for _, name := range []string{donorNode, j.DestNode} {
		addr := m.Nodes[name].Addr
		_ = r.adminRetry(fmt.Sprintf("syncing key %q on node %q", key, name), func() error {
			return r.adminJSON(http.MethodPost, addr, httpapi.Prefix+"/cutover/sync", body, nil)
		})
		if name == donorNode && donorNode == j.DestNode {
			break
		}
	}
}

// finishFleet ends the cutover: with routing gated, every participant
// restamps at the new layout (idempotent), the epoch-bumped manifest
// with the new shard count installs, and the journal is removed — the
// commit point. Every node is then poked to refresh; one that misses
// the poke catches up through the data-path epoch fence.
func (r *Router) finishFleet(m *Manifest, j *clusterJournal, jpath string) error {
	if err := r.callLiveHook("finish", ""); err != nil {
		return err
	}
	r.gate.Lock()
	for _, name := range participants(m, j.From, j.DestNode) {
		addr := m.Nodes[name].Addr
		err := r.adminRetry(fmt.Sprintf("finishing cutover on node %q", name), func() error {
			return r.adminJSON(http.MethodPost, addr, httpapi.Prefix+fmt.Sprintf("/cutover/finish?to=%d", j.To), nil, nil)
		})
		if err != nil {
			r.gate.Unlock()
			return err
		}
	}
	cur := r.Manifest()
	if cur.Shards != j.To {
		nm := cur.Clone()
		nm.Epoch++
		nm.Shards = j.To
		nm.Assignments = append(nm.Assignments, j.DestNode)
		if err := Save(r.cfg.ManifestPath, nm); err != nil {
			r.gate.Unlock()
			return err
		}
		r.mu.Lock()
		if err := r.installLocked(nm); err != nil {
			r.mu.Unlock()
			r.gate.Unlock()
			return err
		}
		r.mu.Unlock()
	}
	if err := removeClusterJournal(jpath); err != nil {
		r.gate.Unlock()
		return err
	}
	r.rcut.Store(nil)
	r.gate.Unlock()

	// Best-effort immediate adoption of the new epoch fleet-wide.
	final := r.Manifest()
	for _, name := range final.NodeNames() {
		_ = r.pokeRefresh(final.Nodes[name].Addr)
	}
	return nil
}

// callLiveHook fires the router's test hook (nil in production).
func (r *Router) callLiveHook(phase, key string) error {
	if r.liveHook == nil {
		return nil
	}
	return r.liveHook(phase, key)
}

// adminRetry retries fn against transient failures (a node restarting
// mid-splice, a connection refused during failback) with a flat short
// sleep and a hard deadline. The cutover protocol is idempotent at
// every step, so blind retry is safe.
func (r *Router) adminRetry(desc string, fn func() error) error {
	deadline := time.Now().Add(60 * time.Second)
	var err error
	for {
		if err = fn(); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: %w", desc, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// adminJSON performs one admin round trip: JSON (or empty) request
// body, epoch-stamped, JSON answer decoded into out (when non-nil).
// Non-2xx answers decode the shared error envelope into the returned
// error.
func (r *Router) adminJSON(method, addr, path string, in, out any) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(EpochHeader, fmt.Sprintf("%d", r.Manifest().Epoch))
	ctx, cancel := contextWithTimeout(r.cfg.RequestTimeout)
	defer cancel()
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSpliceBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		if d := httpapi.DecodeDetail(data); d != nil {
			return fmt.Errorf("cluster: %s %s answered %d [%s]: %s", method, path, resp.StatusCode, d.Code, d.Message)
		}
		return fmt.Errorf("cluster: %s %s answered %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("cluster: decoding %s %s answer: %w", method, path, err)
		}
	}
	return nil
}

// beginNode POSTs one node's cutover/begin with retries.
func (r *Router) beginNode(m *Manifest, name string, spec shard.CutoverSpec) (*shard.CutoverBeginResult, error) {
	var res shard.CutoverBeginResult
	err := r.adminRetry(fmt.Sprintf("cutover/begin on node %q", name), func() error {
		return r.adminJSON(http.MethodPost, m.Nodes[name].Addr, httpapi.Prefix+"/cutover/begin", spec, &res)
	})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

func queryEscape(s string) string { return url.QueryEscape(s) }

// RouterCutoverStatus is the live-rebalance progress block of the
// router's status answer, read from the journal.
type RouterCutoverStatus struct {
	From      int    `json:"from"`
	To        int    `json:"to"`
	DestNode  string `json:"dest_node"`
	Committed int    `json:"committed"`
	Released  int    `json:"released"`
}

// RouterStatus is the GET /admin/v1/status body of a front router.
type RouterStatus struct {
	Role    string               `json:"role"`
	Epoch   uint64               `json:"epoch"`
	Shards  int                  `json:"shards"`
	Nodes   map[string]bool      `json:"nodes"` // name -> alive (breaker view)
	Cutover *RouterCutoverStatus `json:"cutover,omitempty"`
	Build   httpapi.BuildInfo    `json:"build"`
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpapi.MethodNotAllowed(w, http.MethodGet, "status accepts GET only")
		return
	}
	m, _, nodes := r.fleetView()
	st := RouterStatus{Role: "router", Epoch: m.Epoch, Shards: m.Shards, Nodes: map[string]bool{}, Build: httpapi.Build()}
	for name := range m.Nodes {
		st.Nodes[name] = !nodes[name].dead.Load()
	}
	if r.cfg.ManifestPath != "" {
		if j, err := loadClusterJournal(clusterJournalPath(r.cfg.ManifestPath)); err == nil && j != nil {
			cs := &RouterCutoverStatus{From: j.From, To: j.To, DestNode: j.DestNode}
			for _, ph := range j.Keys {
				switch ph {
				case "committed":
					cs.Committed++
				case "released":
					cs.Released++
				}
			}
			st.Cutover = cs
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleRebalance is POST /admin/v1/rebalance?to=N[&node=NAME]: run the
// networked live rebalance to N partitions, blocking until it finishes.
// Method and parameters are validated explicitly through the envelope.
func (r *Router) handleRebalance(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpapi.MethodNotAllowed(w, http.MethodPost, "rebalance accepts POST only")
		return
	}
	raw := req.FormValue("to")
	to, err := strconv.Atoi(raw)
	if err != nil || to <= 0 {
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: fmt.Sprintf("rebalance needs a positive partition count: to=%q is not one", raw),
		})
		return
	}
	report, err := r.LiveRebalance(to, req.FormValue("node"))
	if err != nil {
		httpapi.Error(w, http.StatusConflict, httpapi.Detail{Code: httpapi.CodeConflict, Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(report)
}
