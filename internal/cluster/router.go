package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/fault"
	"logsynergy/internal/httpapi"
	"logsynergy/internal/obs"
	"logsynergy/internal/shard"
)

// The front router is the fleet's single intake address: it hashes each
// line's stream key onto the ring every process shares, groups a batch
// into per-node shares, and POSTs each share to the owning node's
// /ingest over pooled connections. Its contract extends the sharded
// intake's one level up:
//
//	202  every line is durably in some node's partition WAL
//	429  some share was rejected — the body carries the per-partition
//	     breakdown, the request-order indices of the rejected lines
//	     (retry exactly these), and the max Retry-After hint the nodes
//	     supplied
//	503  every routed node refused because its intake is closed
//
// Transient transport failures are retried with seeded-jitter backoff
// (fault.Backoff); sustained ones feed the same per-node breaker the
// health prober drives, and the send path consults that breaker before
// every share, so a dead node fails fast instead of eating a connect
// timeout per batch. When failover is enabled and shared storage holds
// the partitions, the prober answers a dead node by installing an
// epoch-bumped manifest that hands its partitions to a standby, then
// pokes the standby's /admin/refresh — the standby opens them through
// crash recovery and the router routes the retried lines there.
//
// Epochs fence the data path, not just the open: every share is stamped
// with the routing epoch (EpochHeader), a node refuses shares from an
// epoch it has not caught up to, and a node's answers carry its own
// epoch — a router that sees a newer one (or a "not assigned"
// rejection) reloads the manifest instead of misrouting until its own
// failover fires. The flock half of the partition lease guarantees the
// rest: a deposed-but-alive node still holds its partitions' flocks, so
// a standby's adoption fails outright rather than creating a second
// writer.

// RouterConfig assembles a front router.
type RouterConfig struct {
	// ManifestPath locates cluster.json; failover installs epoch bumps
	// here. Optional when Manifest is supplied and failover is off.
	ManifestPath string
	// Manifest, when set, is used instead of loading ManifestPath.
	Manifest *Manifest
	// KeyFunc extracts the stream key from a line (default
	// shard.DefaultKeyFunc — must match the nodes').
	KeyFunc func(string) string
	// Metrics receives the router's counters (nil = a fresh registry).
	Metrics *obs.Registry
	// MaxBatchBytes bounds one /ingest request body (<= 0 selects the
	// broker default).
	MaxBatchBytes int64
	// MaxInFlight bounds concurrent node requests across all handler
	// goroutines (default 64) — the router's backpressure.
	MaxInFlight int
	// Attempts is how many times one node share is tried before its lines
	// are rejected back to the collector (default 3).
	Attempts int
	// Backoff shapes the delay between attempts; its Seed drives the
	// deterministic jitter (zero value: 5ms base, 250ms cap, jitter 0.5).
	Backoff fault.Backoff
	// FailAfter is the consecutive-failure count that marks a node dead
	// (default 3) — the breaker threshold shared by probes and ingest.
	FailAfter int
	// Failover enables automatic reassignment of a dead node's partitions
	// to a standby (requires shared storage and a ManifestPath).
	Failover bool
	// RequestTimeout bounds one node /ingest round trip (default 10s).
	RequestTimeout time.Duration
	// ProbeTimeout bounds one /healthz or /metrics.json round trip
	// (default 2s).
	ProbeTimeout time.Duration
	// Client overrides the pooled HTTP client (tests).
	Client *http.Client
	// Sleep overrides the retry sleep (tests; default time.Sleep).
	Sleep func(time.Duration)
}

// withDefaults fills zero fields.
func (c RouterConfig) withDefaults() RouterConfig {
	if c.KeyFunc == nil {
		c.KeyFunc = shard.DefaultKeyFunc
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = broker.DefaultMaxBatchBytes
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Backoff.Base <= 0 {
		c.Backoff.Base = 5 * time.Millisecond
	}
	if c.Backoff.Max <= 0 {
		c.Backoff.Max = 250 * time.Millisecond
	}
	if c.Backoff.Jitter == 0 {
		c.Backoff.Jitter = 0.5
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// nodeState is the router's per-node health view.
type nodeState struct {
	name    string
	breaker *fault.Breaker
	dead    atomic.Bool
}

// Router consistent-hash routes intake across the fleet and probes node
// health. All its HTTP handling is safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	sem    chan struct{} // bounded in-flight node requests

	mu    sync.RWMutex // guards m, ring, nodes
	m     *Manifest
	ring  *shard.Partitioner
	nodes map[string]*nodeState

	// gate write-blocks the routing path across live-cutover flips (the
	// begin and finish barriers); every RouteBatch holds it for read.
	gate sync.RWMutex
	// rcut is the live-cutover routing overlay, nil outside one.
	rcut atomic.Pointer[routeCutover]
	// liveMu serializes LiveRebalance coordinators on this router.
	liveMu sync.Mutex
	// liveHook observes per-key cutover phases (tests only).
	liveHook func(phase, key string) error

	stopOnce  sync.Once
	stop      chan struct{}
	probeDone chan struct{}

	requests    *obs.Counter
	routedLines *obs.Counter
	rejected    *obs.Counter
	retries     *obs.Counter
	retryAfter  *obs.Counter
	unreachable *obs.Counter
	nodeDown    *obs.Counter
	failovers   *obs.Counter
	fleetAlive  *obs.Gauge
	salt        atomic.Uint64
}

// NewRouter loads/validates the manifest and assembles the router. No
// probing starts until StartProbing (or explicit ProbeOnce calls).
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	m := cfg.Manifest
	if m == nil {
		if cfg.ManifestPath == "" {
			return nil, fmt.Errorf("cluster: RouterConfig needs a Manifest or a ManifestPath")
		}
		var err error
		m, err = Load(cfg.ManifestPath)
		if err != nil {
			return nil, err
		}
	} else if err := m.Validate(); err != nil {
		return nil, err
	}
	if cfg.Failover && cfg.ManifestPath == "" {
		return nil, fmt.Errorf("cluster: failover needs a ManifestPath to install epoch-bumped manifests at")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * cfg.MaxInFlight,
				MaxIdleConnsPerHost: cfg.MaxInFlight,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	r := &Router{
		cfg:         cfg,
		client:      client,
		sem:         make(chan struct{}, cfg.MaxInFlight),
		m:           m,
		ring:        shard.NewPartitionerVnodes(m.Shards, m.Vnodes),
		nodes:       map[string]*nodeState{},
		stop:        make(chan struct{}),
		requests:    cfg.Metrics.Counter("cluster.router_requests_total"),
		routedLines: cfg.Metrics.Counter("cluster.router_routed_lines_total"),
		rejected:    cfg.Metrics.Counter("cluster.router_rejected_lines_total"),
		retries:     cfg.Metrics.Counter("cluster.router_retries_total"),
		retryAfter:  cfg.Metrics.Counter("cluster.router_retry_after_total"),
		unreachable: cfg.Metrics.Counter("cluster.router_unreachable_total"),
		nodeDown:    cfg.Metrics.Counter("cluster.router_node_down_total"),
		failovers:   cfg.Metrics.Counter("cluster.failovers_total"),
		fleetAlive:  cfg.Metrics.Gauge("cluster.nodes_alive"),
	}
	for name := range m.Nodes {
		r.nodes[name] = &nodeState{
			name: name,
			// A long cooldown keeps a dead node dead until failover or a
			// manifest reload resurrects the fleet view; the prober still
			// probes it directly, and a successful probe closes the breaker.
			breaker: &fault.Breaker{Threshold: cfg.FailAfter, Cooldown: time.Hour},
		}
	}
	r.fleetAlive.Set(int64(len(m.Nodes)))
	cfg.Metrics.Gauge("cluster.router_epoch").Set(int64(m.Epoch))
	// A journal next to the manifest means a live cutover is in flight:
	// a router starting (or restarting) mid-cutover must double-write
	// moving keys from its first batch.
	r.reloadCutover()
	return r, nil
}

// Manifest returns the router's current fleet view.
func (r *Router) Manifest() *Manifest {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Reload swaps in the manifest at ManifestPath if its epoch is newer
// (another router's failover, a live rebalance's finish bump, or an
// operator edit), then converges the live-cutover routing overlay on
// the on-disk journal. A shard-count change is accepted only when it
// is a live rebalance's one-partition growth; anything else is a
// rebalance plus fleet restart, not a reload.
func (r *Router) Reload() error {
	if r.cfg.ManifestPath == "" {
		return fmt.Errorf("cluster: router has no manifest path to reload from")
	}
	defer r.reloadCutover() // after the unlock below
	m, err := Load(r.cfg.ManifestPath)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Epoch <= r.m.Epoch {
		return nil
	}
	return r.installLocked(m)
}

// installLocked swaps the fleet view. Caller holds r.mu.
func (r *Router) installLocked(m *Manifest) error {
	if m.Shards != r.m.Shards {
		// The only legal in-place layout change is a live rebalance's
		// finish: exactly one new partition, same vnode count, every old
		// partition's assignment preserved. Anything else (a shrink, a
		// jump) still needs a planned rebalance and a restart.
		if m.Shards != r.m.Shards+1 || m.Vnodes != r.m.Vnodes || !prefixPreserved(r.m, m) {
			return fmt.Errorf("cluster: manifest epoch %d changes the shard count %d -> %d; restart the router for a layout change",
				m.Epoch, r.m.Shards, m.Shards)
		}
		r.ring = shard.NewPartitionerVnodes(m.Shards, m.Vnodes)
	}
	if m.Vnodes != r.m.Vnodes {
		r.ring = shard.NewPartitionerVnodes(m.Shards, m.Vnodes)
	}
	// Copy-on-write: fleetView hands the nodes map out beyond the lock,
	// so never mutate the published map — build a successor and swap.
	nodes := make(map[string]*nodeState, len(r.nodes)+len(m.Nodes))
	for name, ns := range r.nodes {
		nodes[name] = ns
	}
	for name := range m.Nodes {
		if _, ok := nodes[name]; !ok {
			nodes[name] = &nodeState{name: name, breaker: &fault.Breaker{Threshold: r.cfg.FailAfter, Cooldown: time.Hour}}
		}
	}
	r.nodes = nodes
	r.m = m
	r.cfg.Metrics.Gauge("cluster.router_epoch").Set(int64(m.Epoch))
	return nil
}

// prefixPreserved reports whether every partition of the old manifest
// keeps its assignment in the new one — the signature of a pure growth.
func prefixPreserved(old, new_ *Manifest) bool {
	if len(new_.Assignments) < len(old.Assignments) {
		return false
	}
	for p, node := range old.Assignments {
		if new_.Assignments[p] != node {
			return false
		}
	}
	return true
}

// fleetView snapshots the routing topology.
func (r *Router) fleetView() (*Manifest, *shard.Partitioner, map[string]*nodeState) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m, r.ring, r.nodes
}

// RoutePartition is one partition's share of a routed batch.
type RoutePartition struct {
	Partition int    `json:"partition"`
	Node      string `json:"node"`
	Acked     int    `json:"acked"`
	Rejected  int    `json:"rejected"`
	// Error classifies the rejection ("backlog full", "closed", "node
	// unreachable", "not assigned"), empty on success.
	Error string `json:"error,omitempty"`
	// RetryAfterSeconds is the node's retry hint for this partition's
	// rejection (0 = none supplied).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// RouteResponse is the JSON body of a routed /ingest answer.
type RouteResponse struct {
	// Acked is the number of lines durably appended fleet-wide.
	Acked int `json:"acked"`
	// Rejected is the number of lines the collector must retry.
	Rejected int `json:"rejected"`
	// Epoch is the manifest epoch the batch was routed under.
	Epoch uint64 `json:"epoch"`
	// RetryAfterSeconds is the max retry hint across rejecting nodes
	// (mirrored in the Retry-After header on a 429).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Partitions breaks the batch down per partition, ascending.
	Partitions []RoutePartition `json:"partitions,omitempty"`
	// RejectedLines are the request-order indices (0-based, counting
	// non-empty lines) of the lines that were not acked — the exact
	// retry set.
	RejectedLines []int `json:"rejected_lines,omitempty"`
	// Err is the uniform admin-API error detail on a non-2xx answer,
	// nil on 202. The legacy top-level fields stay populated, so
	// collectors written against the pre-envelope shape keep decoding.
	Err *httpapi.Detail `json:"error,omitempty"`
}

// nodeShare is one node's slice of a batch.
type nodeShare struct {
	node  string
	addr  string
	path  string // "" routes /ingest; a live cutover posts directed shares
	lines []string
	index []int // request-order index of each line
	parts []int // owning partition of each line (the node-side result row)
}

// shareResult is the outcome of posting one share.
type shareResult struct {
	share *nodeShare
	// perPart maps partition → node-reported result; nil when the node
	// was unreachable (every line rejected).
	perPart map[int]shard.PartitionResult
	// retryAfter is the node's Retry-After hint in seconds (0 = none).
	retryAfter int
	// errLabel classifies a whole-share failure ("node unreachable",
	// "node dead", ...), empty when perPart is authoritative.
	errLabel string
	// nodeEpoch is the manifest epoch the node answered under (its
	// EpochHeader; 0 when unreachable or not reported). A node ahead of
	// the router's view makes the router reload its manifest.
	nodeEpoch uint64
}

// Handler returns the router's HTTP surface. Data path:
//
//	POST /ingest    route a newline-delimited batch across the fleet
//	GET  /healthz   the router's own liveness + per-node fleet view
//	GET  /metrics   federated text metrics: router + fleet totals +
//	                node.<name>.-prefixed per-node series
//
// Admin surface, versioned under /admin/v1 (status keeps a legacy
// unversioned alias; non-2xx bodies carry the httpapi error envelope):
//
//	GET  /admin/v1/status      role, epoch, shard count, per-node
//	                           liveness, live-cutover progress, build info
//	POST /admin/v1/rebalance   grow the fleet one partition under traffic
//	                           (?to=N, optional &node= destination) — the
//	                           networked LiveRebalance; blocks until done
func (r *Router) Handler() http.Handler {
	mux := httpapi.Mux(httpapi.MuxOptions{
		Snapshot: r.cfg.Metrics.Snapshot,
		Metrics:  http.HandlerFunc(r.handleMetrics),
	})
	mux.HandleFunc("/ingest", r.handleIngest)
	mux.HandleFunc("/healthz", r.handleHealthz)
	stamp := func(h http.HandlerFunc) http.Handler {
		return httpapi.EpochStamp(EpochHeader, func() uint64 { return r.Manifest().Epoch }, h)
	}
	httpapi.HandleVersioned(mux, "/admin/status", stamp(r.handleStatus))
	mux.Handle(httpapi.Prefix+"/rebalance", stamp(r.handleRebalance))
	return mux
}

// handleIngest routes one batch.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	r.requests.Inc()
	if req.Method != http.MethodPost {
		httpapi.MethodNotAllowed(w, http.MethodPost, "ingest accepts POST only")
		return
	}
	if req.ContentLength > r.cfg.MaxBatchBytes {
		httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
			Code:    httpapi.CodeTooLarge,
			Message: fmt.Sprintf("batch of %d bytes exceeds limit %d", req.ContentLength, r.cfg.MaxBatchBytes),
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
				Code:    httpapi.CodeTooLarge,
				Message: fmt.Sprintf("batch exceeds limit %d bytes", r.cfg.MaxBatchBytes),
			})
			return
		}
		httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
			Code:    httpapi.CodeBadRequest,
			Message: "reading request body: " + err.Error(),
		})
		return
	}
	resp := r.RouteBatch(splitBatch(body))
	switch {
	case resp.Rejected == 0:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(resp)
	case resp.Acked == 0 && allClosed(resp.Partitions):
		httpapi.Error(w, http.StatusServiceUnavailable, httpapi.Detail{
			Code:       httpapi.CodeClosed,
			Message:    "intake closed fleet-wide",
			Partitions: resp.Partitions,
		})
	default:
		hint := resp.RetryAfterSeconds
		if hint <= 0 {
			hint = 1
		}
		d := httpapi.Detail{
			Code:        httpapi.CodeBackpressure,
			Message:     fmt.Sprintf("%d of %d lines rejected; retry the rejected lines", resp.Rejected, resp.Acked+resp.Rejected),
			RetryAfterS: hint,
			Partitions:  resp.Partitions,
		}
		resp.Err = &d
		httpapi.ErrorWithBody(w, http.StatusTooManyRequests, d, resp)
	}
}

// allClosed reports whether every rejection was a closed intake.
func allClosed(parts []RoutePartition) bool {
	any := false
	for _, p := range parts {
		if p.Rejected == 0 {
			continue
		}
		any = true
		if p.Error != "closed" {
			return false
		}
	}
	return any
}

// RouteBatch routes lines to their owning nodes and merges the results.
// It is the programmatic form of POST /ingest.
//
// Outside a live cutover every line is one /ingest share to its
// partition's owner. During one, a moving key's line is double-written
// until its journal entry is released: a directed append to the donor
// partition first, then — only if the donor copy landed — a directed
// append to the destination partition on its node, and the line is
// acked only when both landed. The donor-first order is what makes the
// collector's retry of a half-landed line safe: the destination never
// holds a copy of a line that was not also in the donor's WAL, so a
// retry can duplicate only the donor copy, which sits past the freeze
// point and is never fed. A released key routes directly to the
// destination partition.
func (r *Router) RouteBatch(lines []string) RouteResponse {
	r.gate.RLock()
	defer r.gate.RUnlock()
	m, ring, nodes := r.fleetView()
	resp := RouteResponse{Epoch: m.Epoch}
	if len(lines) == 0 {
		return resp
	}
	rc := r.rcut.Load()

	// Per-line accounting: acked iff every required copy landed (two for
	// an unreleased moving key, one otherwise). attrPart/attrNode pick
	// the partition row a line reports under — the donor's during a
	// double-write, matching what the collector would see in-process.
	need := make([]int, len(lines))
	acks := make([]int, len(lines))
	labels := make([]string, len(lines))
	hints := make([]int, len(lines))
	attrPart := make([]int, len(lines))
	attrNode := make([]string, len(lines))
	double := make([]bool, len(lines))

	shares := map[string]*nodeShare{}
	addShare := func(node, path string, part, i int, line string) {
		k := node + "\x00" + path
		s := shares[k]
		if s == nil {
			s = &nodeShare{node: node, addr: m.Nodes[node].Addr, path: path}
			shares[k] = s
		}
		s.lines = append(s.lines, line)
		s.index = append(s.index, i)
		s.parts = append(s.parts, part)
	}
	directedPath := func(part int) string { return httpapi.Prefix + fmt.Sprintf("/append?partition=%d", part) }
	for i, line := range lines {
		key := r.cfg.KeyFunc(line)
		p := ring.Partition(key)
		if rc != nil && rc.moving(key) {
			destPart := rc.to - 1
			if rc.isReleased(key) {
				need[i] = 1
				attrPart[i], attrNode[i] = destPart, rc.destNode
				addShare(rc.destNode, directedPath(destPart), destPart, i, line)
			} else {
				need[i] = 2
				double[i] = true
				donor := m.NodeFor(p)
				attrPart[i], attrNode[i] = p, donor
				addShare(donor, directedPath(p), p, i, line)
			}
			continue
		}
		need[i] = 1
		node := m.NodeFor(p)
		attrPart[i], attrNode[i] = p, node
		addShare(node, "", p, i, line)
	}

	stale := false
	absorb := func(results []shareResult) {
		for _, res := range results {
			if res.nodeEpoch > m.Epoch {
				stale = true
			}
			if res.retryAfter > resp.RetryAfterSeconds {
				resp.RetryAfterSeconds = res.retryAfter
			}
			for j, gi := range res.share.index {
				p := res.share.parts[j]
				label := res.errLabel
				if res.perPart != nil {
					label = res.perPart[p].Error
				}
				if label == "" {
					acks[gi]++
					continue
				}
				if labels[gi] == "" {
					labels[gi] = label
				}
				if res.retryAfter > hints[gi] {
					hints[gi] = res.retryAfter
				}
			}
		}
	}
	absorb(r.postShares(shares, nodes, m.Epoch))

	// Second wave: destination copies for double-written lines whose
	// donor copy landed (donor-first, see above).
	if rc != nil {
		destShares := map[string]*nodeShare{}
		destPart := rc.to - 1
		for i, line := range lines {
			if double[i] && acks[i] == 1 {
				k := rc.destNode + "\x00" + directedPath(destPart)
				s := destShares[k]
				if s == nil {
					s = &nodeShare{node: rc.destNode, addr: m.Nodes[rc.destNode].Addr, path: directedPath(destPart)}
					destShares[k] = s
				}
				s.lines = append(s.lines, line)
				s.index = append(s.index, i)
				s.parts = append(s.parts, destPart)
			}
		}
		if len(destShares) > 0 {
			absorb(r.postShares(destShares, nodes, m.Epoch))
		}
	}

	// Merge into per-partition rows (ascending) plus the exact
	// rejected-line index set.
	byPart := map[int]*RoutePartition{}
	for i := range lines {
		row := byPart[attrPart[i]]
		if row == nil {
			row = &RoutePartition{Partition: attrPart[i], Node: attrNode[i]}
			byPart[attrPart[i]] = row
		}
		if acks[i] == need[i] {
			row.Acked++
			resp.Acked++
			continue
		}
		label := labels[i]
		if label == "" {
			label = "partially acked"
		}
		if label == "not assigned" || label == "cutover in progress" {
			stale = true
		}
		row.Rejected++
		if row.Error == "" {
			row.Error = label
		}
		if hints[i] > row.RetryAfterSeconds {
			row.RetryAfterSeconds = hints[i]
		}
		resp.Rejected++
		resp.RejectedLines = append(resp.RejectedLines, i)
	}
	for _, row := range byPart {
		resp.Partitions = append(resp.Partitions, *row)
	}
	sort.Slice(resp.Partitions, func(i, j int) bool { return resp.Partitions[i].Partition < resp.Partitions[j].Partition })
	sort.Ints(resp.RejectedLines)
	r.routedLines.Add(int64(resp.Acked))
	r.rejected.Add(int64(resp.Rejected))
	if resp.RetryAfterSeconds > 0 {
		r.retryAfter.Inc()
	}
	if stale && r.cfg.ManifestPath != "" {
		// A node answered from a newer epoch, or rejected lines as "not
		// assigned" (the partition moved under an epoch bump this router
		// missed) or "cutover in progress" (a live cutover began that this
		// router has not seen). Reload the manifest + journal so the
		// collector's retry routes under the current topology instead of
		// misrouting forever.
		_ = r.Reload()
	}
	return resp
}

// postShares fans a share set out concurrently and collects results.
func (r *Router) postShares(shares map[string]*nodeShare, nodes map[string]*nodeState, epoch uint64) []shareResult {
	results := make([]shareResult, 0, len(shares))
	var wg sync.WaitGroup
	var resMu sync.Mutex
	for _, s := range shares {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := r.postShare(s, nodes[s.node], epoch)
			resMu.Lock()
			results = append(results, res)
			resMu.Unlock()
		}()
	}
	wg.Wait()
	return results
}

// postShare delivers one node share with bounded attempts, stamping
// each request with the routing epoch. Transport errors and 5xx answers
// retry with seeded-jitter backoff; a 429 or 503 is a node-level
// verdict the collector must see, not retried here.
func (r *Router) postShare(s *nodeShare, ns *nodeState, epoch uint64) shareResult {
	if ns == nil {
		return shareResult{share: s, errLabel: "unknown node"}
	}
	if ns.dead.Load() {
		// Fail fast: the prober owns resurrecting a dead node.
		return shareResult{share: s, errLabel: "node dead"}
	}
	if ns.breaker.Open() {
		// The breaker may have been opened by ingest failures alone —
		// probing disabled, or between ticks — so the send path consults
		// it too instead of burning Attempts×RequestTimeout per batch.
		r.unreachable.Inc()
		return shareResult{share: s, errLabel: "node unreachable"}
	}
	salt := r.salt.Add(1)
	body := strings.Join(s.lines, "\n")
	var lastErr error
	for attempt := 1; attempt <= r.cfg.Attempts; attempt++ {
		if attempt > 1 {
			r.retries.Inc()
			r.cfg.Sleep(r.cfg.Backoff.Delay(attempt-1, salt))
		}
		res, err := r.postOnce(s.addr, s.path, body, epoch)
		if err == nil {
			ns.breaker.Record(nil)
			res.share = s
			return res
		}
		lastErr = err
		ns.breaker.Record(err)
	}
	r.unreachable.Inc()
	_ = lastErr
	return shareResult{share: s, errLabel: "node unreachable"}
}

// postOnce performs one data-path round trip — /ingest, or a directed
// /admin/v1/append during a live cutover — stamped with the routing
// epoch (EpochHeader) so the node can fence shares routed under a
// mismatched manifest view. A transport error or a 5xx status (other
// than 503's explicit closed verdict) returns err for the retry loop —
// including 409, a node refusing an epoch it has not caught up to;
// anything else is a node verdict.
func (r *Router) postOnce(addr, path, body string, epoch uint64) (shareResult, error) {
	r.sem <- struct{}{} // bounded in-flight backpressure
	defer func() { <-r.sem }()
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if path == "" {
		path = "/ingest"
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader([]byte(body)))
	if err != nil {
		return shareResult{}, err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	ctx, cancel := contextWithTimeout(r.cfg.RequestTimeout)
	defer cancel()
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return shareResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return shareResult{}, err
	}
	var nodeEpoch uint64
	if h := resp.Header.Get(EpochHeader); h != "" {
		nodeEpoch, _ = strconv.ParseUint(h, 10, 64)
	}
	switch {
	case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusTooManyRequests:
		var ir shard.IngestResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			return shareResult{}, fmt.Errorf("cluster: node answered %d with an unparseable body: %w", resp.StatusCode, err)
		}
		res := shareResult{perPart: map[int]shard.PartitionResult{}, nodeEpoch: nodeEpoch}
		for _, pr := range ir.Partitions {
			res.perPart[pr.Partition] = pr
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// The error envelope's retry_after_s is authoritative; the
			// Retry-After header is the fallback for pre-envelope nodes.
			switch {
			case ir.Err != nil && ir.Err.RetryAfterS > 0:
				res.retryAfter = ir.Err.RetryAfterS
			default:
				if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
					res.retryAfter = ra
				} else {
					res.retryAfter = 1
				}
			}
		}
		return res, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Intake closed: a deliberate verdict (shutdown), not a transport
		// fault — reject the share as "closed" without burning retries.
		return shareResult{errLabel: "closed", nodeEpoch: nodeEpoch}, nil
	default:
		return shareResult{}, fmt.Errorf("cluster: node answered %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
}

// ProbeResult is one node's probe outcome.
type ProbeResult struct {
	Node  string `json:"node"`
	Alive bool   `json:"alive"`
	// Epoch is the epoch the node reported (0 when unreachable).
	Epoch uint64 `json:"epoch,omitempty"`
	// Err is the probe failure, empty when alive.
	Err string `json:"err,omitempty"`
	// FailedOver is set when this probe's failure triggered a manifest
	// reassignment.
	FailedOver bool `json:"failed_over,omitempty"`
}

// ProbeOnce probes every node's /healthz once, feeding the per-node
// breakers. A node whose breaker opens is marked dead; with failover
// enabled its partitions are reassigned to the first alive standby via
// an epoch-bumped manifest install. Deterministic and synchronous — the
// test harness calls it directly; StartProbing wraps it in a ticker.
func (r *Router) ProbeOnce() []ProbeResult {
	m, _, nodes := r.fleetView()
	out := make([]ProbeResult, 0, len(m.Nodes))
	alive := 0
	for _, name := range m.NodeNames() {
		ns := nodes[name]
		pr := ProbeResult{Node: name}
		hr, err := r.probeNode(m.Nodes[name].Addr)
		if err == nil {
			ns.breaker.Record(nil)
			ns.dead.Store(false)
			pr.Alive = true
			pr.Epoch = hr.Epoch
			alive++
		} else {
			pr.Err = err.Error()
			ns.breaker.Record(err)
			if ns.breaker.Open() && !ns.dead.Swap(true) {
				r.nodeDown.Inc()
				if r.cfg.Failover {
					if ferr := r.failover(name); ferr == nil {
						pr.FailedOver = true
					} else {
						pr.Err = fmt.Sprintf("%s (failover: %v)", pr.Err, ferr)
					}
				}
			}
		}
		out = append(out, pr)
	}
	r.fleetAlive.Set(int64(alive))
	return out
}

// probeNode GETs one node's /healthz.
func (r *Router) probeNode(addr string) (HealthReport, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	ctx, cancel := contextWithTimeout(r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return HealthReport{}, err
	}
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return HealthReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return HealthReport{}, fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	var hr HealthReport
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr); err != nil {
		return HealthReport{}, fmt.Errorf("healthz body: %w", err)
	}
	return hr, nil
}

// failover reassigns dead's partitions to the first alive standby: an
// epoch-bumped manifest is installed at ManifestPath (the single commit
// point — a crash before the install changes nothing, after it the new
// epoch is the truth), the router swaps its fleet view, and the standby
// is poked over /admin/refresh so it adopts immediately rather than on
// its next watch tick.
func (r *Router) failover(dead string) error {
	if j, _ := loadClusterJournal(clusterJournalPath(r.cfg.ManifestPath)); j != nil {
		// A live cutover is journaled: its freeze offsets and double-write
		// topology are pinned to the current assignment. Reassigning
		// partitions mid-cutover would strand them; the operator resumes
		// or finishes the rebalance first, then failover may proceed.
		return fmt.Errorf("cluster: refusing failover of %q while live cutover %d -> %d is journaled; resume the rebalance first", dead, j.From, j.To)
	}
	r.mu.Lock()
	m := r.m
	var successor string
	for _, name := range m.Standbys(dead) {
		if ns := r.nodes[name]; ns != nil && !ns.dead.Load() {
			successor = name
			break
		}
	}
	if successor == "" {
		r.mu.Unlock()
		return fmt.Errorf("cluster: no alive standby to absorb %q's partitions", dead)
	}
	nm, err := m.Reassign(dead, successor)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	if err := Save(r.cfg.ManifestPath, nm); err != nil {
		r.mu.Unlock()
		return err
	}
	if err := r.installLocked(nm); err != nil {
		r.mu.Unlock()
		return err
	}
	addr := nm.Nodes[successor].Addr
	r.mu.Unlock()
	r.failovers.Inc()

	// Best-effort immediate adoption; the standby's own watch loop is the
	// backstop if this poke races its restart.
	if err := r.pokeRefresh(addr); err != nil {
		return fmt.Errorf("cluster: failover manifest (epoch %d) installed but refreshing standby %q failed: %w", nm.Epoch, successor, err)
	}
	return nil
}

// pokeRefresh POSTs a node's /admin/refresh.
func (r *Router) pokeRefresh(addr string) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	ctx, cancel := contextWithTimeout(r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequest(http.MethodPost, url+"/admin/refresh", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admin/refresh answered %d", resp.StatusCode)
	}
	return nil
}

// RouterHealth is the router's own /healthz body.
type RouterHealth struct {
	Status string          `json:"status"`
	Epoch  uint64          `json:"epoch"`
	Shards int             `json:"shards"`
	Nodes  map[string]bool `json:"nodes"` // name → alive (per the breaker view)
}

// handleHealthz serves the router's liveness + fleet view.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m, _, nodes := r.fleetView()
	h := RouterHealth{Status: "ok", Epoch: m.Epoch, Shards: m.Shards, Nodes: map[string]bool{}}
	for name := range m.Nodes {
		h.Nodes[name] = !nodes[name].dead.Load()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleMetrics serves the federated scrape: the router's own registry,
// every reachable node's snapshot merged into fleet totals, and each
// node's snapshot again under a node.<name>. prefix. A node that cannot
// be scraped contributes only node.<name>.up 0.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m, _, _ := r.fleetView()
	merged := r.cfg.Metrics.Snapshot()
	for _, name := range m.NodeNames() {
		snap, err := r.scrapeNode(m.Nodes[name].Addr)
		up := int64(1)
		if err != nil {
			up = 0
		} else {
			merged = merged.Merge(snap)
			merged = merged.Merge(snap.Prefixed("node." + name + "."))
		}
		merged.Gauges["node."+name+".up"] = up
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	merged.WriteText(w)
}

// scrapeNode GETs one node's /metrics.json snapshot.
func (r *Router) scrapeNode(addr string) (obs.Snapshot, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	ctx, cancel := contextWithTimeout(r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequest(http.MethodGet, url+"/metrics.json", nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("metrics.json answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ParseSnapshot(data)
}

// StartProbing probes every node each interval until Close. When the
// router has a manifest path, each tick first reloads the manifest —
// the router-side watch that picks up epoch bumps installed by another
// router's failover or an operator edit, so this router does not route
// under a stale assignment until its own failover fires.
func (r *Router) StartProbing(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	r.probeDone = make(chan struct{})
	go func() {
		defer close(r.probeDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				if r.cfg.ManifestPath != "" {
					_ = r.Reload()
				}
				r.ProbeOnce()
			}
		}
	}()
}

// Close stops the probe loop and releases pooled connections.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.probeDone != nil {
		<-r.probeDone
	}
	if t, ok := r.client.Transport.(*http.Transport); ok && t != nil {
		t.CloseIdleConnections()
	}
}

// contextWithTimeout is context.WithTimeout off Background — one name
// for the router's per-request deadlines.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// splitBatch parses a newline-delimited body into log lines, tolerating
// CRLF and dropping empty lines (matching the node intake's parsing, so
// RejectedLines indices agree between router and collector).
func splitBatch(body []byte) []string {
	raw := strings.Split(string(body), "\n")
	lines := make([]string, 0, len(raw))
	for _, l := range raw {
		l = strings.TrimSuffix(l, "\r")
		if l == "" {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}
