package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/shard"
	"logsynergy/internal/tensor"
)

// The headline proof, one level up from the shard equivalence suite:
// fixed-seed multi-key traffic POSTed through a front router to a
// 2-node fleet (plus a standby) yields bit-identical per-key score
// sequences and identical alert multisets versus a single-process
// `-shards N` runtime over the same stream — including across a mid-run
// node kill, health-probe death detection, epoch-bumped failover to the
// standby, and the retry of exactly the rejected lines.
//
// The corpus discipline is the same as the shard suite's: canonical
// line bodies whose parameters are all maskable and whose token counts
// are pairwise distinct, so every body pins to exactly one Drain
// template regardless of arrival order or which process parses it.

const eqHint = "a cross-process shard fleet"

var eqBodies = []string{
	"gc freed %B%",
	"cache hit key %H%",
	"replica sync offset %B% ok",
	"job %B% queued on partition %N%",
	"query ok rows %N% in %N% ms",
	"connection accepted from %IP% port %N% tls on",
	"request routed route api status %N% dur %N% ms",
	"cluster bus peer %IP% unreachable marking FAIL epoch %B% now",
	"rpc deadline exceeded method Charge dur %N% ms budget %N% ms",
	"disk flush wrote %B% bytes to segment %N% in %N% ms ok",
}

func eqKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = strconv.Itoa(7001 + i)
	}
	return keys
}

func genEqLines(seed int64, n int, keys []string) []string {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, n)
	for i := range lines {
		body := eqBodies[rng.Intn(len(eqBodies))]
		var b strings.Builder
		for len(body) > 0 {
			j := strings.IndexByte(body, '%')
			if j < 0 {
				b.WriteString(body)
				break
			}
			k := strings.IndexByte(body[j+1:], '%')
			if k < 0 {
				b.WriteString(body)
				break
			}
			b.WriteString(body[:j])
			switch body[j+1 : j+1+k] {
			case "N":
				fmt.Fprintf(&b, "%d", rng.Intn(1000))
			case "B":
				fmt.Fprintf(&b, "%d", 10000+rng.Intn(99999999))
			case "H":
				fmt.Fprintf(&b, "0x%08x", rng.Uint32())
			case "IP":
				fmt.Fprintf(&b, "%d.%d.%d.%d", 10+rng.Intn(160), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
			}
			body = body[j+k+2:]
		}
		lines[i] = keys[rng.Intn(len(keys))] + " " + b.String()
	}
	return lines
}

// eqEnv builds a fresh deterministic detection environment: an untrained
// (seeded) model over an empty event table, with a pinned clock. Scores
// only have to be deterministic functions of the per-key streams — which
// they are: same templates → same interpretations → same embeddings →
// same model output, in every process.
func eqEnv() (*core.Detector, lei.Interpreter, *embed.Embedder) {
	cfg := core.DefaultConfig()
	m := core.NewModel(cfg, 2)
	table := &repr.EventTable{System: "SystemX", Dim: cfg.EmbedDim, Vectors: tensor.New(0, cfg.EmbedDim)}
	det := core.NewDetector(m, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }
	return det, lei.NewSimLLM(lei.Config{}), embed.New(cfg.EmbedDim)
}

type eqResult struct {
	scores map[string][]float64
	alerts map[string]int
}

func alertSigs(reports []*core.Report) map[string]int {
	sigs := make(map[string]int, len(reports))
	for _, r := range reports {
		sig := r.System + "|" + strconv.FormatFloat(r.Score, 'x', -1, 64) + "|" + strings.Join(r.Templates, "\x1f")
		sigs[sig]++
	}
	return sigs
}

func requireEqual(t *testing.T, label string, got, want eqResult) {
	t.Helper()
	if len(got.scores) != len(want.scores) {
		t.Fatalf("%s: %d keys scored, reference has %d", label, len(got.scores), len(want.scores))
	}
	for key, wantSeq := range want.scores {
		gotSeq := got.scores[key]
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("%s key %s: %d windows vs reference %d", label, key, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("%s key %s window %d: score %v != reference %v", label, key, i, gotSeq[i], wantSeq[i])
			}
		}
	}
	if len(got.alerts) != len(want.alerts) {
		t.Fatalf("%s: %d distinct alert signatures vs reference %d", label, len(got.alerts), len(want.alerts))
	}
	for sig, n := range want.alerts {
		if got.alerts[sig] != n {
			t.Fatalf("%s: alert %q seen %d times, reference %d", label, sig[:min(len(sig), 80)], got.alerts[sig], n)
		}
	}
}

// runShardReference drives the single-process `-shards N` runtime over
// the whole stream — the baseline the fleet must match bit for bit.
func runShardReference(t *testing.T, lines []string, shards int) eqResult {
	t.Helper()
	det, interp, e := eqEnv()
	sink := &pipeline.MemorySink{}
	var mu sync.Mutex
	scores := map[string][]float64{}
	rt, err := shard.Open(shard.Config{
		Shards:   shards,
		Dir:      t.TempDir(),
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     sink,
		Metrics:  obs.NewRegistry(),
		OnWindow: func(sh int, key string, seq []int, score float64, abandoned bool) {
			if abandoned {
				t.Errorf("reference shard %d abandoned a window for key %q", sh, key)
			}
			mu.Lock()
			scores[key] = append(scores[key], score)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("reference Open: %v", err)
	}
	const batch = 64
	for i := 0; i < len(lines); i += batch {
		end := min(i+batch, len(lines))
		if _, err := rt.AppendBatch(lines[i:end]); err != nil {
			t.Fatalf("reference AppendBatch: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatalf("reference Drain: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("reference Close: %v", err)
	}
	return eqResult{scores: scores, alerts: alertSigs(sink.Reports())}
}

// fleetNode is one node process stand-in: a cluster.Node behind a real
// HTTP listener, with score/alert capture.
type fleetNode struct {
	node   *Node
	srv    *httptest.Server
	sink   *pipeline.MemorySink
	mu     sync.Mutex
	scores map[string][]float64
}

func (fn *fleetNode) result() eqResult {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	scores := make(map[string][]float64, len(fn.scores))
	for k, v := range fn.scores {
		scores[k] = append([]float64(nil), v...)
	}
	return eqResult{scores: scores, alerts: alertSigs(fn.sink.Reports())}
}

// startFleetNode opens name's slice of the fleet on ln. The runtime Dir
// comes from the manifest's shared-storage root.
func startFleetNode(t *testing.T, manifestPath, name string, ln net.Listener) *fleetNode {
	t.Helper()
	fn := &fleetNode{sink: &pipeline.MemorySink{}, scores: map[string][]float64{}}
	det, interp, e := eqEnv()
	n, err := StartNode(NodeConfig{
		ManifestPath: manifestPath,
		Name:         name,
		Runtime: shard.Config{
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     fn.sink,
			Metrics:  obs.NewRegistry(),
			OnWindow: func(sh int, key string, seq []int, score float64, abandoned bool) {
				if abandoned {
					t.Errorf("node %s shard %d abandoned a window for key %q", name, sh, key)
				}
				fn.mu.Lock()
				fn.scores[key] = append(fn.scores[key], score)
				fn.mu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatalf("StartNode(%s): %v", name, err)
	}
	fn.node = n
	fn.srv = &httptest.Server{Listener: ln, Config: &http.Server{Handler: n.Handler()}}
	fn.srv.Start()
	return fn
}

func localListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return ln
}

// postLines POSTs a newline-delimited batch to a router URL and decodes
// the RouteResponse.
func postLines(t *testing.T, url string, lines []string) (int, RouteResponse) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "text/plain", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var rr RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decoding route response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, rr
}

func TestClusterFleetEquivalenceWithFailover(t *testing.T) {
	const shards = 4
	keys := eqKeys(12)
	lines := genEqLines(4242, 3000, keys)
	ref := runShardReference(t, lines, shards)
	if len(ref.alerts) == 0 {
		t.Fatal("reference produced no alerts; the equivalence comparison is vacuous")
	}

	root := t.TempDir()
	manifestPath := filepath.Join(root, "cluster.json")
	dataDir := filepath.Join(root, "data")
	lnA, lnB, lnS := localListener(t), localListener(t), localListener(t)
	m := &Manifest{
		Epoch:  1,
		Shards: shards,
		Dir:    dataDir,
		Nodes: map[string]NodeSpec{
			"a":       {Addr: lnA.Addr().String()},
			"b":       {Addr: lnB.Addr().String()},
			"standby": {Addr: lnS.Addr().String(), Standby: true},
		},
		Assignments: []string{"a", "a", "b", "b"},
	}
	if err := Save(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	epoch1 := m.Clone() // the stale view a dead node would restart with

	a := startFleetNode(t, manifestPath, "a", lnA)
	b := startFleetNode(t, manifestPath, "b", lnB)
	s := startFleetNode(t, manifestPath, "standby", lnS)
	defer b.srv.Close()
	defer s.srv.Close()
	defer b.node.Close()
	defer s.node.Close()

	if got := a.node.Runtime().Owned(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("node a owns %v, want [0 1]", got)
	}
	if got := s.node.Runtime().Owned(); len(got) != 0 {
		t.Fatalf("standby owns %v before failover", got)
	}

	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{
		ManifestPath: manifestPath,
		Metrics:      reg,
		Attempts:     2,
		FailAfter:    3,
		Failover:     true,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()

	// Phase 1: the fleet under normal traffic — every batch fully acked.
	const batch = 100
	const killAt = 1500
	for i := 0; i < killAt; i += batch {
		status, rr := postLines(t, rsrv.URL, lines[i:i+batch])
		if status != http.StatusAccepted || rr.Rejected != 0 {
			t.Fatalf("batch at %d: status %d, %d rejected (%+v)", i, status, rr.Rejected, rr.Partitions)
		}
		if rr.Epoch != 1 {
			t.Fatalf("batch at %d routed under epoch %d", i, rr.Epoch)
		}
	}

	// Kill node a. The drain first pins the capture bookkeeping (the same
	// discipline as the shard crash suite): everything a acked is either
	// committed — so the standby will not re-detect it — or still in the
	// WAL tail the standby resumes exactly. Kill drops the WAL handles
	// with no graceful close and releases the partition flocks the way
	// the OS releases a dead process's, and the server goes down with it.
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := a.node.Drain(drainCtx); err != nil {
		cancel()
		t.Fatalf("draining node a before the kill: %v", err)
	}
	cancel()
	a.node.Kill()
	a.srv.Close()

	// Phase 2: the next batch partially fails — node b's share is acked,
	// node a's share is rejected with the exact request-order indices.
	status, rr := postLines(t, rsrv.URL, lines[killAt:killAt+batch])
	if status != http.StatusTooManyRequests {
		t.Fatalf("post-kill batch: status %d, want 429", status)
	}
	if rr.Rejected == 0 || rr.Rejected != len(rr.RejectedLines) {
		t.Fatalf("post-kill batch: %d rejected but %d rejected-line indices", rr.Rejected, len(rr.RejectedLines))
	}
	if rr.Acked+rr.Rejected != batch {
		t.Fatalf("post-kill batch: acked %d + rejected %d != %d", rr.Acked, rr.Rejected, batch)
	}
	for _, p := range rr.Partitions {
		if p.Rejected > 0 && p.Node != "a" {
			t.Fatalf("partition %d rejected on node %q; only a is dead", p.Partition, p.Node)
		}
	}
	retry := make([]string, 0, len(rr.RejectedLines))
	for _, idx := range rr.RejectedLines {
		retry = append(retry, lines[killAt+idx])
	}

	// The health probe detects the death (the failed ingest attempts
	// already fed the breaker) and fails over to the standby.
	var probed ProbeResult
	for _, pr := range r.ProbeOnce() {
		if pr.Node == "a" {
			probed = pr
		}
	}
	if probed.Alive || !probed.FailedOver {
		t.Fatalf("probe of dead node a: %+v", probed)
	}
	if got := r.Manifest().Epoch; got != 2 {
		t.Fatalf("router epoch %d after failover, want 2", got)
	}
	if got := s.node.Epoch(); got != 2 {
		t.Fatalf("standby epoch %d after failover, want 2", got)
	}
	if got := s.node.Runtime().Owned(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("standby owns %v after failover, want [0 1]", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.failovers_total"] != 1 || snap.Counters["cluster.router_node_down_total"] != 1 {
		t.Fatalf("failover counters: %+v", snap.Counters)
	}

	// Fencing: the dead node restarting with its stale epoch-1 manifest
	// must be refused — its partitions are leased at epoch 2 now.
	if _, err := StartNode(NodeConfig{Manifest: epoch1, Name: "a", Runtime: shard.Config{
		Pipeline: pipeline.DefaultConfig(eqHint),
	}}); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("stale node a restart: %v", err)
	}

	// Phase 3: retry exactly the rejected lines, then the rest of the
	// stream — all of it now routing a's old partitions to the standby.
	status, rr = postLines(t, rsrv.URL, retry)
	if status != http.StatusAccepted || rr.Rejected != 0 {
		t.Fatalf("retry after failover: status %d, %d rejected", status, rr.Rejected)
	}
	if rr.Epoch != 2 {
		t.Fatalf("retry routed under epoch %d, want 2", rr.Epoch)
	}
	for i := killAt + batch; i < len(lines); i += batch {
		end := min(i+batch, len(lines))
		status, rr := postLines(t, rsrv.URL, lines[i:end])
		if status != http.StatusAccepted || rr.Rejected != 0 {
			t.Fatalf("batch at %d after failover: status %d, %d rejected", i, status, rr.Rejected)
		}
	}

	for _, fn := range []*fleetNode{b, s} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := fn.node.Drain(ctx); err != nil {
			cancel()
			t.Fatalf("draining node %s: %v", fn.node.Name(), err)
		}
		cancel()
	}

	// The federated scrape: fleet totals plus per-node series, with the
	// dead node contributing only node.a.up 0.
	mresp, err := http.Get(rsrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	for _, want := range []string{"node.a.up 0", "node.b.up 1", "node.standby.up 1", "node.b.shard.routed_lines_total", "cluster.failovers_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("federated /metrics missing %q:\n%s", want, metrics)
		}
	}

	// The verdict: per-key scores and alert multisets, ordered a → standby
	// (a's captures strictly precede the standby's for the keys that moved)
	// and merged with b's disjoint keys, must match the single-process
	// reference bit for bit — zero acknowledged loss, zero duplication.
	merged := eqResult{scores: map[string][]float64{}, alerts: map[string]int{}}
	for _, fn := range []*fleetNode{a, s, b} {
		res := fn.result()
		for k, v := range res.scores {
			merged.scores[k] = append(merged.scores[k], v...)
		}
		for sig, n := range res.alerts {
			merged.alerts[sig] += n
		}
	}
	requireEqual(t, "fleet", merged, ref)
}

// A subset node serves exactly its assigned partitions: keys owned
// elsewhere are rejected with ErrNotAssigned, and /healthz reports only
// the owned partitions' lag.
func TestClusterNodeServesOnlyAssignedPartitions(t *testing.T) {
	m := &Manifest{
		Epoch:  1,
		Shards: 2,
		Nodes: map[string]NodeSpec{
			"a": {Addr: "127.0.0.1:1001"},
			"b": {Addr: "127.0.0.1:1002"},
		},
		Assignments: []string{"a", "b"},
	}
	det, interp, e := eqEnv()
	dir := t.TempDir()
	n, err := StartNode(NodeConfig{
		Manifest: m,
		Name:     "a",
		Runtime: shard.Config{
			Dir:      dir,
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     &pipeline.MemorySink{},
			Metrics:  obs.NewRegistry(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	rt := n.Runtime()
	if got := rt.Owned(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("node a owns %v, want [0]", got)
	}

	// Find one key per partition; the ring spans both even though only
	// one is open here.
	keyFor := map[int]string{}
	for i := 0; len(keyFor) < 2; i++ {
		k := strconv.Itoa(9000 + i)
		keyFor[rt.PartitionFor(k)] = k
	}
	if _, _, err := rt.Append(keyFor[0] + " gc freed 12345"); err != nil {
		t.Fatalf("append to owned partition: %v", err)
	}
	if _, _, err := rt.Append(keyFor[1] + " gc freed 12345"); !errors.Is(err, shard.ErrNotAssigned) {
		t.Fatalf("append to unowned partition: %v, want ErrNotAssigned", err)
	}

	h := n.Health()
	if h.Shards != 2 || len(h.Partitions) != 1 || h.Partitions[0].Partition != 0 {
		t.Fatalf("health: %+v", h)
	}

	// The lease landed before the open.
	l, err := readLease(shard.PartitionDir(dir, 0))
	if err != nil || l == nil || l.Node != "a" || l.Epoch != 1 {
		t.Fatalf("lease: %+v, %v", l, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// A deposed node fences itself off the data path: a newer epoch that
// assigns one of its partitions elsewhere makes Refresh drop it —
// crash-style, no further writes — and release the flock, after which
// the new owner opens the partition via crash recovery and appends for
// that partition answer "not assigned" on the old owner.
func TestClusterNodeRefreshDropsDeposedPartitions(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "cluster.json")
	dataDir := filepath.Join(root, "data")
	m := &Manifest{
		Epoch:  1,
		Shards: 2,
		Dir:    dataDir,
		Nodes: map[string]NodeSpec{
			"a": {Addr: "127.0.0.1:1001"},
			"b": {Addr: "127.0.0.1:1002"},
		},
		Assignments: []string{"a", "a"},
	}
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	det, interp, e := eqEnv()
	a, err := StartNode(NodeConfig{ManifestPath: path, Name: "a", Runtime: shard.Config{
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	rt := a.Runtime()
	keyFor := map[int]string{}
	for i := 0; len(keyFor) < 2; i++ {
		k := strconv.Itoa(8000 + i)
		keyFor[rt.PartitionFor(k)] = k
	}
	for p := 0; p < 2; p++ {
		if _, _, err := rt.Append(keyFor[p] + " gc freed 12345"); err != nil {
			t.Fatalf("append to partition %d: %v", p, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Epoch 2 hands partition 1 to b.
	m2 := m.Clone()
	m2.Epoch = 2
	m2.Assignments = []string{"a", "b"}
	if err := Save(path, m2); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Refresh()
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if rep.Epoch != 2 || !reflect.DeepEqual(rep.Dropped, []int{1}) || len(rep.Adopted) != 0 {
		t.Fatalf("refresh report: %+v", rep)
	}
	if got := rt.Owned(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("node a owns %v after being deposed from p1, want [0]", got)
	}
	if _, _, err := rt.Append(keyFor[1] + " gc freed 12345"); !errors.Is(err, shard.ErrNotAssigned) {
		t.Fatalf("append to dropped partition: %v, want ErrNotAssigned", err)
	}
	if _, _, err := rt.Append(keyFor[0] + " gc freed 12345"); err != nil {
		t.Fatalf("append to kept partition: %v", err)
	}

	// The flock is free and the record supersedable: b opens partition 1
	// through crash recovery and holds the epoch-2 lease.
	det2, interp2, e2 := eqEnv()
	b, err := StartNode(NodeConfig{ManifestPath: path, Name: "b", Runtime: shard.Config{
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det2,
		Interp:   interp2,
		Embedder: e2,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}})
	if err != nil {
		t.Fatalf("StartNode(b) after the drop: %v", err)
	}
	defer b.Close()
	if got := b.Runtime().Owned(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("node b owns %v, want [1]", got)
	}
	l, err := readLease(shard.PartitionDir(dataDir, 1))
	if err != nil || l == nil || l.Node != "b" || l.Epoch != 2 {
		t.Fatalf("p1 lease after handoff: %+v, %v", l, err)
	}
}

// The data-path epoch fence: a share routed under a newer epoch than
// the node serves is refused with 409 when the node cannot catch up,
// and every /ingest answer carries the node's epoch.
func TestClusterIngestEpochFence(t *testing.T) {
	m := &Manifest{
		Epoch:       1,
		Shards:      1,
		Nodes:       map[string]NodeSpec{"a": {Addr: "127.0.0.1:1001"}},
		Assignments: []string{"a"},
	}
	det, interp, e := eqEnv()
	n, err := StartNode(NodeConfig{Manifest: m, Name: "a", Runtime: shard.Config{
		Dir:      t.TempDir(),
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	post := func(epochHeader string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/ingest", strings.NewReader("k1 gc freed 12345"))
		if err != nil {
			t.Fatal(err)
		}
		if epochHeader != "" {
			req.Header.Set(EpochHeader, epochHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A request from the future (this node holds an in-memory manifest,
	// so it cannot refresh) is refused: the node might no longer own the
	// share's partitions.
	resp := post("2")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("newer-epoch ingest: status %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(EpochHeader); got != "1" {
		t.Fatalf("409 answered with epoch header %q, want 1", got)
	}

	// The matching epoch and a plain unstamped collector both serve.
	for _, h := range []string{"1", ""} {
		resp := post(h)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest with epoch header %q: status %d, want 202", h, resp.StatusCode)
		}
		if got := resp.Header.Get(EpochHeader); got != "1" {
			t.Fatalf("answer epoch header %q, want 1", got)
		}
	}

	// A malformed header is a client error, not a served batch.
	resp = post("not-a-number")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad epoch header: status %d, want 400", resp.StatusCode)
	}
}

// A router that missed an epoch bump recovers during serving: a node
// answering "not assigned" (or from a newer epoch) triggers a manifest
// reload, so the collector's retry routes to the current owner.
func TestClusterRouterReloadOnStaleView(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")

	// "old" no longer owns partition 0 and says so, answering under
	// epoch 2; "new" acks everything.
	oldSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		c := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set(EpochHeader, "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Rejected:   c,
			Partitions: []shard.PartitionResult{{Partition: 0, Rejected: c, Error: "not assigned"}},
		})
	}))
	defer oldSrv.Close()
	newSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		c := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set(EpochHeader, "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Acked:      c,
			Partitions: []shard.PartitionResult{{Partition: 0, Acked: c}},
		})
	}))
	defer newSrv.Close()

	m1 := &Manifest{
		Epoch:  1,
		Shards: 1,
		Nodes: map[string]NodeSpec{
			"old": {Addr: oldSrv.URL},
			"new": {Addr: newSrv.URL},
		},
		Assignments: []string{"old"},
	}
	if err := Save(path, m1); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{ManifestPath: path, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The epoch bump lands on disk without this router hearing about it.
	m2 := m1.Clone()
	m2.Epoch = 2
	m2.Assignments = []string{"new"}
	if err := Save(path, m2); err != nil {
		t.Fatal(err)
	}

	rr := r.RouteBatch([]string{"k1 hello world"})
	if rr.Rejected != 1 || len(rr.Partitions) != 1 || rr.Partitions[0].Error != "not assigned" {
		t.Fatalf("stale-routed batch: %+v", rr)
	}
	if got := r.Manifest().Epoch; got != 2 {
		t.Fatalf("router epoch %d after a not-assigned answer, want 2 (reloaded)", got)
	}
	rr = r.RouteBatch([]string{"k1 hello world"})
	if rr.Rejected != 0 || rr.Acked != 1 || rr.Epoch != 2 {
		t.Fatalf("retry after reload: %+v", rr)
	}
}

// The send path consults the per-node breaker: once ingest failures
// alone have opened it (no probing), further batches fail fast instead
// of burning Attempts x RequestTimeout per batch.
func TestClusterRouterBreakerFailsFastOnSendPath(t *testing.T) {
	ln := localListener(t)
	addr := ln.Addr().String()
	ln.Close() // nobody listens: every dial is refused

	m := &Manifest{
		Epoch:       1,
		Shards:      1,
		Nodes:       map[string]NodeSpec{"gone": {Addr: addr}},
		Assignments: []string{"gone"},
	}
	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{Manifest: m, Metrics: reg, Attempts: 3, FailAfter: 2, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// First batch: the full attempt budget is burned and the breaker
	// opens (2 failures >= FailAfter).
	rr := r.RouteBatch([]string{"k1 hello world"})
	if rr.Rejected != 1 || rr.Partitions[0].Error != "node unreachable" {
		t.Fatalf("first batch: %+v", rr)
	}
	snap := reg.Snapshot()
	retriesAfterFirst := snap.Counters["cluster.router_retries_total"]
	if retriesAfterFirst != 2 {
		t.Fatalf("retries after first batch: %d, want 2", retriesAfterFirst)
	}

	// Second batch: the open breaker short-circuits — same rejection,
	// zero additional attempts.
	rr = r.RouteBatch([]string{"k1 hello world"})
	if rr.Rejected != 1 || rr.Partitions[0].Error != "node unreachable" {
		t.Fatalf("second batch: %+v", rr)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["cluster.router_retries_total"]; got != retriesAfterFirst {
		t.Fatalf("retries grew %d -> %d; the open breaker should fail fast", retriesAfterFirst, got)
	}
	if got := snap.Counters["cluster.router_unreachable_total"]; got != 2 {
		t.Fatalf("unreachable_total %d, want 2", got)
	}
}

// Manifest reloads that introduce new nodes must not race concurrent
// routing and probing over the fleet view (the nodes map is
// copy-on-write). Run under -race.
func TestClusterRouterReloadDuringTrafficRace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		c := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Acked:      c,
			Partitions: []shard.PartitionResult{{Partition: 0, Acked: c}},
		})
	}))
	defer ok.Close()

	m := &Manifest{
		Epoch:       1,
		Shards:      1,
		Nodes:       map[string]NodeSpec{"n0": {Addr: ok.URL}},
		Assignments: []string{"n0"},
	}
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{ManifestPath: path, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.RouteBatch([]string{"k1 hello world"})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.ProbeOnce()
			}
		}
	}()
	for epoch := uint64(2); epoch <= 8; epoch++ {
		mm := m.Clone()
		mm.Epoch = epoch
		mm.Nodes[fmt.Sprintf("extra%d", epoch)] = NodeSpec{Addr: "127.0.0.1:1", Standby: true}
		if err := Save(path, mm); err != nil {
			t.Fatal(err)
		}
		if err := r.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := r.Manifest().Epoch; got != 8 {
		t.Fatalf("router epoch %d after reloads, want 8", got)
	}
}

// Satellite: per-partition Retry-After propagation. A node rejecting
// with 429 + Retry-After surfaces the hint per partition and as the
// response-wide max, and bumps cluster.router_retry_after_total.
func TestClusterRouterRetryAfterPropagation(t *testing.T) {
	const shards = 2
	ring := shard.NewPartitioner(shards)
	keyFor := map[int]string{}
	for i := 0; len(keyFor) < shards; i++ {
		k := strconv.Itoa(5000 + i)
		keyFor[ring.Partition(k)] = k
	}

	// Node "full" (partition 0) answers 429 with a retry hint; node "ok"
	// (partition 1) acks everything.
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		n := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Rejected:   n,
			Partitions: []shard.PartitionResult{{Partition: 0, Rejected: n, Error: "backlog full"}},
		})
	}))
	defer full.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		n := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Acked:      n,
			Partitions: []shard.PartitionResult{{Partition: 1, Acked: n}},
		})
	}))
	defer ok.Close()

	m := &Manifest{
		Epoch:  1,
		Shards: shards,
		Nodes: map[string]NodeSpec{
			"full": {Addr: full.URL},
			"ok":   {Addr: ok.URL},
		},
		Assignments: []string{"full", "ok"},
	}
	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{Manifest: m, Metrics: reg, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()

	batch := []string{
		keyFor[1] + " line one",
		keyFor[0] + " line two",
		keyFor[1] + " line three",
		keyFor[0] + " line four",
		keyFor[0] + " line five",
	}
	resp, err := http.Post(rsrv.URL+"/ingest", "text/plain", strings.NewReader(strings.Join(batch, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After header %q, want 7", got)
	}
	var rr RouteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.RetryAfterSeconds != 7 {
		t.Fatalf("RetryAfterSeconds %d, want 7", rr.RetryAfterSeconds)
	}
	if !reflect.DeepEqual(rr.RejectedLines, []int{1, 3, 4}) {
		t.Fatalf("RejectedLines %v, want [1 3 4]", rr.RejectedLines)
	}
	if rr.Acked != 2 || rr.Rejected != 3 {
		t.Fatalf("acked %d rejected %d", rr.Acked, rr.Rejected)
	}
	for _, p := range rr.Partitions {
		switch p.Partition {
		case 0:
			if p.Node != "full" || p.Rejected != 3 || p.Error != "backlog full" || p.RetryAfterSeconds != 7 {
				t.Fatalf("partition 0 row: %+v", p)
			}
		case 1:
			if p.Node != "ok" || p.Acked != 2 || p.RetryAfterSeconds != 0 {
				t.Fatalf("partition 1 row: %+v", p)
			}
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster.router_retry_after_total"] != 1 {
		t.Fatalf("router_retry_after_total %d, want 1", snap.Counters["cluster.router_retry_after_total"])
	}
	if snap.Counters["cluster.router_rejected_lines_total"] != 3 || snap.Counters["cluster.router_routed_lines_total"] != 2 {
		t.Fatalf("line counters: %+v", snap.Counters)
	}
}

// Transport-level failures retry with seeded backoff and succeed within
// the attempt budget; a 429 is a verdict, never retried internally.
func TestClusterRouterRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		body, _ := io.ReadAll(req.Body)
		c := len(strings.Split(strings.TrimSpace(string(body)), "\n"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(shard.IngestResponse{
			Acked:      c,
			Partitions: []shard.PartitionResult{{Partition: 0, Acked: c}},
		})
	}))
	defer flaky.Close()

	m := &Manifest{
		Epoch:       1,
		Shards:      1,
		Nodes:       map[string]NodeSpec{"only": {Addr: flaky.URL}},
		Assignments: []string{"only"},
	}
	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{Manifest: m, Metrics: reg, Attempts: 3, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	rr := r.RouteBatch([]string{"k1 hello world", "k2 hello again"})
	if rr.Rejected != 0 || rr.Acked != 2 {
		t.Fatalf("flaky node: acked %d rejected %d", rr.Acked, rr.Rejected)
	}
	if got := reg.Snapshot().Counters["cluster.router_retries_total"]; got != 2 {
		t.Fatalf("router_retries_total %d, want 2", got)
	}
}

// A router restart (or a second router) picks up an epoch-bumped
// manifest via Reload; a stale file is a no-op.
func TestClusterRouterReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	m := testManifest()
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{ManifestPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Same epoch on disk: nothing changes.
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if r.Manifest().Epoch != 1 {
		t.Fatalf("epoch %d after stale reload", r.Manifest().Epoch)
	}

	nm, err := m.Reassign("a", "standby")
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, nm); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := r.Manifest(); got.Epoch != 2 || got.NodeFor(0) != "standby" {
		t.Fatalf("reloaded manifest: epoch %d, p0 -> %q", got.Epoch, got.NodeFor(0))
	}

	// A shard-count change is a layout change, not a reload.
	bad := nm.Clone()
	bad.Epoch++
	bad.Shards = 8
	bad.Assignments = append([]string(nil), "a", "a", "b", "b", "a", "a", "b", "b")
	if err := Save(path, bad); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err == nil || !strings.Contains(err.Error(), "shard count") {
		t.Fatalf("shard-count reload: %v", err)
	}
}

// A manifest whose shard count disagrees with the on-disk shard layout
// is refused by the runtime's layout stamp when the node opens.
func TestClusterNodeRefusesLayoutMismatch(t *testing.T) {
	dir := t.TempDir()
	// Lay down a 2-shard layout with enough traffic to persist the
	// per-partition layout stamps.
	det, interp, e := eqEnv()
	rt, err := shard.Open(shard.Config{
		Shards:   2,
		Dir:      dir,
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AppendBatch(genEqLines(5, 400, eqKeys(6))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// A 4-shard manifest over the same directory must be refused.
	m := &Manifest{
		Epoch:       1,
		Shards:      4,
		Dir:         dir,
		Nodes:       map[string]NodeSpec{"a": {Addr: "127.0.0.1:1001"}},
		Assignments: []string{"a", "a", "a", "a"},
	}
	det2, interp2, e2 := eqEnv()
	if _, err := StartNode(NodeConfig{Manifest: m, Name: "a", Runtime: shard.Config{
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det2,
		Interp:   interp2,
		Embedder: e2,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}}); err == nil {
		t.Fatal("4-shard manifest opened a 2-shard layout")
	} else if _, statErr := os.Stat(filepath.Join(dir, "p0", "shard-state.json")); statErr != nil {
		t.Fatalf("layout probe: %v (and state file missing: %v)", err, statErr)
	}
}
