package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/obs"
	"logsynergy/internal/shard"
)

// The networked live-rebalance proof, one level up from the shard
// suite's in-process cutover: a front router grows a 2-node fleet from
// 2 to 3 partitions while fixed-seed traffic keeps flowing, driving the
// per-key capture → stage → commit → install → forget → release
// protocol over the admin API. Traffic is injected from the
// coordinator's own hook points, so "under traffic" is deterministic:
// batches land exactly at double-write start (through both the
// coordinating router and a second router holding a stale view), and at
// the first key's release. The destination node is killed mid-splice
// and restarted on the same address; the cluster journal next to the
// manifest resumes the cutover on exactly one layout per key. The
// merged fleet output must match a single-process `-shards 3` runtime
// bit for bit — per-key score sequences score by score, alert multisets
// signature by signature — with zero acknowledged loss.

// liveEqMovingKeys splits keys by whether the 2→3 growth (default
// vnodes, the manifest's setting here) moves them.
func liveEqMovingKeys(keys []string) (moving, staying []string) {
	oldRing, newRing := shard.NewPartitioner(2), shard.NewPartitioner(3)
	for _, k := range keys {
		if oldRing.Partition(k) != newRing.Partition(k) {
			moving = append(moving, k)
		} else {
			staying = append(staying, k)
		}
	}
	return moving, staying
}

// retryRejected drives one batch through a router's RouteBatch until
// every line is acked, re-posting exactly the rejected lines. The
// per-key order survives because a cutover gate rejects every line of a
// gated key in the batch, never a suffix.
func retryRejected(t *testing.T, r *Router, batch []string) {
	t.Helper()
	chunk := batch
	for attempt := 0; len(chunk) > 0; attempt++ {
		if attempt > 10 {
			t.Fatalf("batch still rejected after %d retries", attempt)
		}
		rr := r.RouteBatch(chunk)
		if rr.Rejected == 0 {
			return
		}
		retry := make([]string, 0, rr.Rejected)
		for _, idx := range rr.RejectedLines {
			retry = append(retry, chunk[idx])
		}
		chunk = retry
	}
}

func TestClusterLiveRebalanceEquivalenceUnderTraffic(t *testing.T) {
	keys := eqKeys(12)
	moving, staying := liveEqMovingKeys(keys)
	if len(moving) == 0 || len(staying) == 0 {
		t.Fatalf("fixture needs both moving and staying keys (got %d moving, %d staying)", len(moving), len(staying))
	}

	pre := genEqLines(6001, 1500, keys)
	midDW := genEqLines(6002, 200, keys)    // lands the instant double-writing starts
	midStale := genEqLines(6003, 200, keys) // through a second router with a stale view
	midRel := genEqLines(6004, 200, keys)   // after the first key flips to dest-only routing
	post := genEqLines(6005, 1500, keys)
	var stream []string
	for _, seg := range [][]string{pre, midDW, midStale, midRel, post} {
		stream = append(stream, seg...)
	}
	ref := runShardReference(t, stream, 3)
	if len(ref.alerts) == 0 {
		t.Fatal("reference produced no alerts; the equivalence comparison is vacuous")
	}

	root := t.TempDir()
	manifestPath := filepath.Join(root, "cluster.json")
	dataDir := filepath.Join(root, "data")
	lnA, lnB := localListener(t), localListener(t)
	addrB := lnB.Addr().String()
	m := &Manifest{
		Epoch:  1,
		Shards: 2,
		Dir:    dataDir,
		Nodes: map[string]NodeSpec{
			"a": {Addr: lnA.Addr().String()},
			"b": {Addr: addrB},
		},
		Assignments: []string{"a", "b"},
	}
	if err := Save(manifestPath, m); err != nil {
		t.Fatal(err)
	}

	a := startFleetNode(t, manifestPath, "a", lnA)
	defer a.srv.Close()
	defer a.node.Close()
	b := startFleetNode(t, manifestPath, "b", lnB)

	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{
		ManifestPath: manifestPath,
		Metrics:      reg,
		Attempts:     2,
		FailAfter:    100,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rsrv := httptest.NewServer(r.Handler())
	defer rsrv.Close()

	// The second router: same manifest, its own view. It will not hear
	// about the cutover until a node's "cutover in progress" rejection
	// makes it reload.
	r2, err := NewRouter(RouterConfig{
		ManifestPath: manifestPath,
		Attempts:     2,
		FailAfter:    100,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	postAcked := func(lines []string, wantEpoch uint64) {
		t.Helper()
		const batch = 100
		for i := 0; i < len(lines); i += batch {
			end := min(i+batch, len(lines))
			status, rr := postLines(t, rsrv.URL, lines[i:end])
			if status != http.StatusAccepted || rr.Rejected != 0 {
				t.Fatalf("batch at %d: status %d, %d rejected (%+v)", i, status, rr.Rejected, rr.Partitions)
			}
			if wantEpoch != 0 && rr.Epoch != wantEpoch {
				t.Fatalf("batch at %d routed under epoch %d, want %d", i, rr.Epoch, wantEpoch)
			}
		}
	}
	postAcked(pre, 1)

	// The coordinator's hook injects traffic at the protocol's own
	// boundaries and crashes the destination node at the first staged
	// splice.
	boom := errors.New("injected dest-node crash")
	fedDW, fedStale, fedRel, killed := false, false, false, false
	r.liveHook = func(phase, key string) error {
		switch {
		case phase == "double-write" && !fedDW:
			fedDW = true
			postAcked(midDW, 1)
		case phase == "tail-landed" && !fedStale:
			fedStale = true
			// The stale router first routes moving keys as plain shares;
			// the begun nodes gate them with retryable "cutover in
			// progress" rejections, the router reloads its view from the
			// journal, and the retry double-writes. Nothing acked is lost.
			for i := 0; i < len(midStale); i += 50 {
				retryRejected(t, r2, midStale[i:min(i+50, len(midStale))])
			}
		case phase == "staged" && !killed:
			killed = true
			return boom
		case phase == "released" && !fedRel:
			fedRel = true
			postAcked(midRel, 1)
		}
		return nil
	}

	if _, err := r.LiveRebalance(3, "b"); !errors.Is(err, boom) {
		t.Fatalf("LiveRebalance with injected crash: err = %v, want the injected crash", err)
	}
	jpath := clusterJournalPath(manifestPath)
	if _, err := os.Stat(jpath); err != nil {
		t.Fatalf("cluster journal missing after the crash: %v", err)
	}

	// Crash the destination node mid-splice: quiesce to a committed
	// boundary (a parked destination consumer counts — the gate commits
	// before parking), then drop the WAL handles and flocks the way the
	// OS drops a dead process's.
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := b.node.Drain(drainCtx); err != nil {
		cancel()
		t.Fatalf("draining node b before the kill: %v", err)
	}
	cancel()
	b.node.Kill()
	b.srv.Close()

	// Restart it on the same address. StartNode finds the cluster
	// journal next to the manifest and opens straight into the journaled
	// cutover: donors at the old layout with the recorded freezes, the
	// destination partition fenced and staged splices kept.
	var lnB2 net.Listener
	for i := 0; ; i++ {
		var lerr error
		lnB2, lerr = net.Listen("tcp", addrB)
		if lerr == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebinding %s: %v", addrB, lerr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b2 := startFleetNode(t, manifestPath, "b", lnB2)
	defer b2.srv.Close()
	defer b2.node.Close()
	if got := b2.node.Runtime().Shards(); got != 3 {
		t.Fatalf("restarted dest node serves %d partitions, want 3 (mid-cutover layout)", got)
	}
	if got := b2.node.Runtime().Owned(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("restarted dest node owns %v, want [1 2]", got)
	}

	// The restarted node's status surface reports the in-flight cutover.
	sresp, err := http.Get(b2.srv.URL + "/admin/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var nst NodeStatus
	if err := json.NewDecoder(sresp.Body).Decode(&nst); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if nst.Node != "b" || nst.Shards != 3 || nst.Cutover == nil || nst.Cutover.From != 2 || nst.Cutover.To != 3 {
		t.Fatalf("restarted node status: %+v (cutover %+v)", nst, nst.Cutover)
	}

	// Resume: the journal decides — re-begin every participant, drive
	// the remaining keys (the half-staged one re-captures on the donor,
	// whose tail was never forgotten: exactly one layout owned it
	// throughout), and finish with the epoch-bumped manifest.
	report, err := r.LiveRebalance(3, "b")
	if err != nil {
		t.Fatalf("resuming LiveRebalance: %v", err)
	}
	if report.From != 2 || report.To != 3 || report.AlreadyBalanced {
		t.Fatalf("resume report: %+v", report)
	}
	if report.MovedKeys == 0 {
		t.Fatal("resumed rebalance moved no keys")
	}
	if !fedDW || !fedStale || !fedRel || !killed {
		t.Fatalf("hook coverage: double-write=%v stale=%v released=%v killed=%v", fedDW, fedStale, fedRel, killed)
	}

	if _, err := os.Stat(jpath); !os.IsNotExist(err) {
		t.Fatalf("cluster journal still present after a completed rebalance (stat err %v)", err)
	}
	got := r.Manifest()
	if got.Epoch != 2 || got.Shards != 3 || !reflect.DeepEqual(got.Assignments, []string{"a", "b", "b"}) {
		t.Fatalf("post-rebalance manifest: epoch %d, %d shards, assignments %v", got.Epoch, got.Shards, got.Assignments)
	}
	newRing := shard.NewPartitioner(3)
	for _, k := range moving {
		if newRing.Partition(k) != 2 {
			t.Fatalf("moving key %s does not route to the new partition", k)
		}
	}

	// The rest of the stream routes under the new layout and epoch.
	postAcked(post, 2)

	// The router's status surface agrees the cutover is over.
	sresp, err = http.Get(rsrv.URL + "/admin/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var rst RouterStatus
	if err := json.NewDecoder(sresp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if rst.Role != "router" || rst.Epoch != 2 || rst.Shards != 3 || rst.Cutover != nil {
		t.Fatalf("router status after the rebalance: %+v", rst)
	}

	for _, fn := range []*fleetNode{a, b2} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := fn.node.Drain(ctx); err != nil {
			cancel()
			t.Fatalf("draining node %s: %v", fn.node.Name(), err)
		}
		cancel()
	}

	// The verdict. Merge order a → b → b2: a donor's windows for a moved
	// key strictly precede the destination's (the capture barrier), and
	// the killed node's pre-crash windows precede its successor's (the
	// drain pinned them to a committed boundary).
	merged := eqResult{scores: map[string][]float64{}, alerts: map[string]int{}}
	for _, fn := range []*fleetNode{a, b, b2} {
		res := fn.result()
		for k, v := range res.scores {
			merged.scores[k] = append(merged.scores[k], v...)
		}
		for sig, n := range res.alerts {
			merged.alerts[sig] += n
		}
	}
	requireEqual(t, "live fleet 2→3", merged, ref)
}

// Failover is refused while a live cutover is journaled: the journal's
// freeze offsets and double-write topology are pinned to the current
// assignment, so reassigning a dead node's partitions mid-cutover would
// strand them.
func TestClusterFailoverRefusedDuringLiveCutover(t *testing.T) {
	root := t.TempDir()
	manifestPath := filepath.Join(root, "cluster.json")
	ln := localListener(t)
	addr := ln.Addr().String()
	ln.Close() // nobody listens: the node is dead on arrival
	m := &Manifest{
		Epoch:  1,
		Shards: 2,
		Dir:    filepath.Join(root, "data"),
		Nodes: map[string]NodeSpec{
			"a":       {Addr: addr},
			"b":       {Addr: addr},
			"standby": {Addr: addr, Standby: true},
		},
		Assignments: []string{"a", "b"},
	}
	if err := Save(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	j := &clusterJournal{Version: 1, From: 2, To: 3, DestNode: "b",
		Freeze: map[int]uint64{0: 1, 1: 1}, Keys: map[string]string{}}
	if err := saveClusterJournal(clusterJournalPath(manifestPath), j); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	r, err := NewRouter(RouterConfig{
		ManifestPath: manifestPath,
		Metrics:      reg,
		FailAfter:    1,
		Failover:     true,
		Attempts:     1,
		Sleep:        func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var dead ProbeResult
	for _, pr := range r.ProbeOnce() {
		if pr.Node == "a" {
			dead = pr
		}
	}
	if dead.Alive {
		t.Fatalf("unreachable node probed alive: %+v", dead)
	}
	if dead.FailedOver {
		t.Fatal("failover proceeded over a journaled live cutover")
	}
	if !strings.Contains(dead.Err, "refusing failover") {
		t.Fatalf("probe error %q does not carry the refusal", dead.Err)
	}
	if got := r.Manifest().Epoch; got != 1 {
		t.Fatalf("epoch %d after refused failover, want 1", got)
	}
	if got := reg.Snapshot().Counters["cluster.failovers_total"]; got != 0 {
		t.Fatalf("failovers_total %d, want 0", got)
	}
}

// The router's admin surface: /admin/v1/status answers the role block
// (GET only, envelope on the wrong method), the unversioned alias is
// byte-identical, and /admin/v1/rebalance validates its parameter
// through the envelope.
func TestClusterRouterAdminSurface(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	m := testManifest()
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{ManifestPath: path, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	fetch := func(method, p string) (int, http.Header, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+p, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, body
	}

	code, hdr, body := fetch(http.MethodGet, "/admin/v1/status")
	if code != http.StatusOK {
		t.Fatalf("GET /admin/v1/status: %d\n%s", code, body)
	}
	if got := hdr.Get(EpochHeader); got != "1" {
		t.Fatalf("status answered with epoch header %q, want 1", got)
	}
	var st RouterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "router" || st.Epoch != 1 || st.Shards != m.Shards || st.Cutover != nil {
		t.Fatalf("router status: %+v", st)
	}
	names := make([]string, 0, len(st.Nodes))
	for n := range st.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, m.NodeNames()) {
		t.Fatalf("status nodes %v, want %v", names, m.NodeNames())
	}

	// The unversioned alias answers byte-identically (one handler, two
	// registrations).
	code2, _, body2 := fetch(http.MethodGet, "/admin/status")
	if code2 != code || string(body2) != string(body) {
		t.Fatalf("alias mismatch: %d vs %d\n%s\nvs\n%s", code, code2, body, body2)
	}

	// Wrong method and bad parameter both answer through the envelope.
	code, hdr, body = fetch(http.MethodPost, "/admin/v1/status")
	if code != http.StatusMethodNotAllowed || hdr.Get("Allow") != http.MethodGet {
		t.Fatalf("POST status: %d (Allow %q)", code, hdr.Get("Allow"))
	}
	assertEnvelope(t, body, "method_not_allowed")

	code, hdr, body = fetch(http.MethodGet, "/admin/v1/rebalance")
	if code != http.StatusMethodNotAllowed || hdr.Get("Allow") != http.MethodPost {
		t.Fatalf("GET rebalance: %d (Allow %q)", code, hdr.Get("Allow"))
	}
	assertEnvelope(t, body, "method_not_allowed")

	code, _, body = fetch(http.MethodPost, "/admin/v1/rebalance?to=x")
	if code != http.StatusBadRequest {
		t.Fatalf("POST rebalance?to=x: %d\n%s", code, body)
	}
	assertEnvelope(t, body, "bad_request")

	code, _, body = fetch(http.MethodPost, "/admin/v1/rebalance?to=9")
	if code != http.StatusConflict {
		t.Fatalf("POST rebalance?to=9 (a multi-step jump): %d\n%s", code, body)
	}
	assertEnvelope(t, body, "conflict")
}

// assertEnvelope decodes the shared error envelope and checks its code.
func assertEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var env struct {
		Err struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-2xx body is not the envelope: %v\n%s", err, body)
	}
	if env.Err.Code != wantCode {
		t.Fatalf("envelope code %q, want %q\n%s", env.Err.Code, wantCode, body)
	}
	if env.Err.Message == "" {
		t.Fatalf("envelope without a message: %s", body)
	}
}
