package logdata

// SystemSpec describes one synthetic software system: how large its corpus
// is (Table III), how often anomalies occur, which semantic concepts it can
// emit, and — crucially — its surface dialect: the templates that render
// each concept in this system's own vocabulary and formatting.
type SystemSpec struct {
	// Name is the dataset name used throughout the paper (e.g. "BGL").
	Name string
	// Lines is the corpus size at paper scale (scale=1.0).
	Lines int
	// BurstRate is the per-line probability that an anomaly burst begins.
	BurstRate float64
	// BurstLenMin and BurstLenMax bound the length of an anomaly burst.
	BurstLenMin, BurstLenMax int
	// Anomalies lists the anomalous concept keys this system can emit.
	Anomalies []string
	// Workflows are multi-line normal operation sequences (e.g. a job
	// lifecycle); they give sequence models temporal structure to learn.
	Workflows [][]string
	// Background lists normal concepts emitted as isolated lines.
	Background []string
	// Rare lists long-tail normal concepts (maintenance, rotations, …)
	// emitted at RareRate per line, uniformly across the list. They are
	// the main source of false positives for methods that only learn the
	// target's head behaviour from a small training slice.
	Rare []string
	// RareRate is the per-line probability of emitting a rare concept.
	RareRate float64
	// Renderings maps concept key to this system's surface templates.
	// Placeholders: {ip} {port} {n} {big} {hex} {path} {user} {node} {ms}.
	Renderings map[string][]string
}

// Coverage reports how many of other's anomaly concepts this system can
// also emit, as a fraction of other's anomaly set. It quantifies the
// paper's §V observation that transfer works when the source covers the
// target's anomalies.
func (s *SystemSpec) Coverage(other *SystemSpec) float64 {
	if len(other.Anomalies) == 0 {
		return 0
	}
	mine := make(map[string]bool, len(s.Anomalies))
	for _, a := range s.Anomalies {
		mine[a] = true
	}
	covered := 0
	for _, a := range other.Anomalies {
		if mine[a] {
			covered++
		}
	}
	return float64(covered) / float64(len(other.Anomalies))
}

// Systems returns the six paper datasets keyed by name.
func Systems() map[string]*SystemSpec {
	all := []*SystemSpec{BGL(), Spirit(), Thunderbird(), SystemA(), SystemB(), SystemC()}
	m := make(map[string]*SystemSpec, len(all))
	for _, s := range all {
		m[s.Name] = s
	}
	return m
}

// PublicGroup returns the three public datasets (Table IV group).
func PublicGroup() []*SystemSpec {
	return []*SystemSpec{BGL(), Spirit(), Thunderbird()}
}

// ISPGroup returns the three ISP production datasets (Table V group).
func ISPGroup() []*SystemSpec {
	return []*SystemSpec{SystemA(), SystemB(), SystemC()}
}

// BGL models the Blue Gene/L supercomputer RAS log: terse kernel-style
// messages, rich anomaly coverage (it is a "mature" source in the paper).
func BGL() *SystemSpec {
	return &SystemSpec{
		Name:        "BGL",
		Lines:       1356817,
		BurstRate:   0.0105,
		BurstLenMin: 1,
		BurstLenMax: 4,
		Anomalies: []string{
			"anom.net.interrupt", "anom.parity", "anom.disk.fail", "anom.oom",
			"anom.timeout", "anom.auth.fail", "anom.service.crash", "anom.corrupt",
			"anom.overload", "anom.replica.lost", "anom.fs.readonly", "anom.hw.temp",
			"anom.bgl.kernel", "anom.bgl.torus",
		},
		Workflows: [][]string{
			{"op.job.submit", "op.job.start", "op.disk.read", "op.disk.write", "op.job.finish"},
			{"op.net.connect", "op.replica.sync", "op.net.close"},
			{"op.bgl.ciod", "op.heartbeat", "op.bgl.ras"},
		},
		Background: []string{"op.heartbeat", "op.monitor", "op.gc", "op.bgl.ciod", "op.bgl.ras", "op.cache.hit"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.bgl.reseat",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"MMCS: service action {n} performed on {node} by admin",
				"MMCS: maintenance window opened for midplane {node} duration {n} min",
			},
			"op.cert":      {"ciod: service node credential rotated serial {hex}"},
			"op.upgrade":   {"mmcs: microloader image updated to build {big} on {node}"},
			"op.audit":     {"RAS: configuration audit dump written entries {list}"},
			"op.clock":     {"MMCS: time base registers resynced skew {ms} us"},
			"op.debugdump": {"ciod: trace buffer dumped {big} records to {path}"},
			"op.quota":     {"ciod: scratch usage report {big} of {big} blocks"},
			"op.retrywarn": {"ciod: transient send retried ok attempt {n} recovered"},
			"op.drill":     {"MMCS: failover exercise completed control moved and back"},
			"op.reindex":   {"ido: node map index rebuilt entries {big}"},
			"op.bgl.reseat": {
				"MMCS: service card {node} reseated link retrained",
				"MMCS: operator reseated node card {node} lamp test ok",
			},
			"anom.net.interrupt": {
				"ciod: Error reading message prefix on CioStream socket to {ip}: Link has been severed",
				"ciod: failed socket syscall on control stream CioStream to {ip} connection lost",
			},
			"anom.parity": {
				"machine check interrupt (bit={hex}): L2 dcache unit read return parity error",
				"instruction cache parity error corrected on node {node}",
			},
			"anom.disk.fail":     {"ciod: LOGIN chdir {path} failed: input/output error on ide device {n}"},
			"anom.oom":           {"kernel: ALERT rts panic - out of memory killing tree under {hex}"},
			"anom.timeout":       {"ciod: timeout sending RAS packet to service node after {n} attempts"},
			"anom.auth.fail":     {"NIDMAP: invalid credential presented by rank {n} uid {n} rejected"},
			"anom.service.crash": {"rts: kernel terminated for reason {hex} application killed by signal {n}"},
			"anom.corrupt":       {"ddr: excessive soft failures, consider replacing the ddr chip kill corrupt data at {hex}"},
			"anom.overload":      {"ciod: pollControlDescriptors backlog {big} exceeds limit dropping control packets"},
			"anom.replica.lost":  {"ido: node card VPD mismatch replica {n} evicted from midplane group"},
			"anom.fs.readonly":   {"ciod: filesystem {path} forced read-only after journal abort code {n}"},
			"anom.hw.temp":       {"MMCS: node card temperature {n}C over threshold shutting down ASIC clock"},
			"anom.bgl.kernel":    {"KERNEL FATAL kernel panic in interrupt vector {hex} rip {hex} halting core {n}"},
			"anom.bgl.torus":     {"KERNEL INFO torus receiver {node} input pipe error: bad packet CRC retry {n} exhausted"},

			"op.job.submit":   {"mmcs: job {big} queued on partition R{n}-M{n}"},
			"op.job.start":    {"ciod: Loading {path} into {n} compute nodes for job {big}"},
			"op.job.finish":   {"ciod: Job {big} terminated normally exit status 0"},
			"op.net.connect":  {"ciod: generated CioStream connection to {ip} port {port}"},
			"op.net.close":    {"ciod: closed CioStream socket to {ip} rc 0"},
			"op.disk.read":    {"ciod: read {big} bytes from {path} in {ms} ms"},
			"op.disk.write":   {"ciod: flushed {big} bytes to {path} sync ok"},
			"op.heartbeat":    {"MMCS: midplane {node} heartbeat ok lag {ms} ms"},
			"op.replica.sync": {"ido: mirrored state to midplane replica {n} seq {big}"},
			"op.gc":           {"rts: compacted kernel heap freed {big} bytes"},
			"op.monitor":      {"MMCS: environment monitor sample ok fan {n} rpm temp {n}C"},
			"op.cache.hit":    {"ciod: control cache hit for node map {hex}"},
			"op.bgl.ciod":     {"ciod: processed control message type {n} from service node"},
			"op.bgl.ras":      {"RAS: event code {hex} severity INFO logged for {node}"},
		},
	}
}

// Spirit models the Spirit (ICC2) Linux cluster syslog: classic unix
// daemon messages, rich anomaly coverage, the largest corpus.
func Spirit() *SystemSpec {
	return &SystemSpec{
		Name:        "Spirit",
		Lines:       4783733,
		BurstRate:   0.00088,
		BurstLenMin: 1,
		BurstLenMax: 3,
		Anomalies: []string{
			"anom.net.interrupt", "anom.parity", "anom.disk.fail", "anom.oom",
			"anom.timeout", "anom.auth.fail", "anom.service.crash", "anom.corrupt",
			"anom.overload", "anom.replica.lost", "anom.fs.readonly", "anom.hw.temp",
			"anom.spirit.lustre", "anom.spirit.mpi",
		},
		Workflows: [][]string{
			{"op.job.submit", "op.job.start", "op.query.exec", "op.job.finish"},
			{"op.net.connect", "op.disk.read", "op.disk.write", "op.net.close"},
			{"op.spirit.slurm", "op.spirit.lnet", "op.heartbeat"},
			{"op.auth.ok", "op.query.exec", "op.backup"},
		},
		Background: []string{"op.heartbeat", "op.monitor", "op.auth.ok", "op.spirit.lnet", "op.spirit.slurm", "op.config.reload"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.spirit.purge",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"crond[{n}]: maintenance window task {path} ran ok",
				"logrotate: maintenance rotation of {path} complete",
			},
			"op.cert":      {"sshd[{n}]: host key regenerated fingerprint {hex}"},
			"op.upgrade":   {"rpm: package kernel-smp-{n}.{n} installed cleanly"},
			"op.audit":     {"auditd[{n}]: config snapshot saved nodes {list}"},
			"op.clock":     {"ntpd[{n}]: clock step {n} ms to stratum {n} source {ip}"},
			"op.debugdump": {"gmond[{n}]: debug dump {big} bytes written {path}"},
			"op.quota":     {"lfs: quota report user {user} {big} kb of {big} kb"},
			"op.retrywarn": {"automount[{n}]: transient lookup retried ok recovered"},
			"op.drill":     {"heartbeat[{n}]: planned takeover exercise done resources returned"},
			"op.reindex":   {"slocate: database rebuilt {big} entries"},
			"op.spirit.purge": {
				"tmpwatch: purge cycle removed stale files {list}",
				"tmpwatch: scratch sweep reclaimed {big} kb under {path}",
			},
			"anom.net.interrupt": {
				"Connection refused ({n}) in open_demux, open_demux: connect {ip}",
				"sshd[{n}]: fatal: Read from socket failed: Connection reset by peer {ip}",
			},
			"anom.parity": {
				"GM: LANAI[{n}]: PANIC: mcp/gm_parity.c:{n}: parityint():firmware",
				"EDAC MC{n}: CE page {hex}, offset {hex}, grain {n}, syndrome {hex}, channel parity fault",
			},
			"anom.disk.fail":     {"kernel: hda: dma_intr: status={hex} { DriveReady SeekComplete Error } sector {big} I/O error"},
			"anom.oom":           {"kernel: Out of Memory: Killed process {n} ({user}) vm {big} kB"},
			"anom.timeout":       {"automount[{n}]: expire_proc: mount point {path} operation timed out after {n}s"},
			"anom.auth.fail":     {"sshd[{n}]: Failed password for {user} from {ip} port {port} ssh2 attempt {n}"},
			"anom.service.crash": {"gmond[{n}]: segfault at {hex} rip {hex} rsp {hex} error {n} daemon dead"},
			"anom.corrupt":       {"kernel: EXT3-fs error (device hda{n}): ext3_get_inode_loc: bad inode checksum {hex}"},
			"anom.overload":      {"sendmail[{n}]: rejecting connections on daemon MTA: load average: {n} queue saturated"},
			"anom.replica.lost":  {"heartbeat[{n}]: WARN: node spirit{n}: is dead, removing from replica ring"},
			"anom.fs.readonly":   {"kernel: EXT3-fs (hda{n}): aborting journal, remounting filesystem read-only"},
			"anom.hw.temp":       {"lm_sensors: CPU{n} temperature alarm {n}C exceeds hot limit shutting core"},
			"anom.spirit.lustre": {"LustreError: {n}:{n}:(mds_open.c:{n}:mds_open()) @@@ MDS service unavailable ost {n}"},
			"anom.spirit.mpi":    {"mpirun: MPI_ABORT invoked on rank {n} in communicator MPI_COMM_WORLD collective failed errcode {n}"},

			"op.job.submit":    {"slurmctld[{n}]: sched: job {big} submitted to partition spirit user {user}"},
			"op.job.start":     {"slurmd[{n}]: launching job {big} on spirit{n} cpus {n}"},
			"op.job.finish":    {"slurmctld[{n}]: job {big} completed successfully walltime {ms}"},
			"op.net.connect":   {"xinetd[{n}]: START: shell pid={n} from={ip}"},
			"op.net.close":     {"xinetd[{n}]: EXIT: shell status=0 pid={n} duration={n}(sec)"},
			"op.disk.read":     {"nfs: server spirit-io{n} read {big} bytes {path} rtt {ms} ms"},
			"op.disk.write":    {"nfs: server spirit-io{n} committed {big} bytes {path} stable"},
			"op.auth.ok":       {"sshd[{n}]: Accepted publickey for {user} from {ip} port {port} ssh2"},
			"op.heartbeat":     {"heartbeat[{n}]: info: node spirit{n}: status ping ok"},
			"op.query.exec":    {"ganglia: gmetad poll cluster spirit metrics {n} rows in {ms} ms"},
			"op.backup":        {"amanda: backup of {path} level {n} done {big} kB"},
			"op.config.reload": {"syslogd {n}.{n}.{n}: restart (remote reception)"},
			"op.monitor":       {"crond[{n}]: ({user}) CMD ( {path}/check_health )"},
			"op.spirit.lnet":   {"Lustre: lnet router {node} forwarded {big} bulk bytes qdepth {n}"},
			"op.spirit.slurm":  {"slurmctld[{n}]: partition spirit{n} allocated {n} nodes idle {n}"},
		},
	}
}

// Thunderbird models the Thunderbird supercomputer syslog: admin-flavored
// messages with moderate anomaly coverage.
func Thunderbird() *SystemSpec {
	return &SystemSpec{
		Name:        "Thunderbird",
		Lines:       700005,
		BurstRate:   0.0041,
		BurstLenMin: 1,
		BurstLenMax: 4,
		Anomalies: []string{
			"anom.net.interrupt", "anom.parity", "anom.disk.fail", "anom.oom",
			"anom.timeout", "anom.service.crash", "anom.overload",
			"anom.fs.readonly", "anom.hw.temp", "anom.tb.sched",
		},
		Workflows: [][]string{
			{"op.job.submit", "op.job.start", "op.disk.write", "op.job.finish"},
			{"op.net.connect", "op.query.exec", "op.net.close"},
			{"op.tb.ib", "op.heartbeat", "op.tb.nfs"},
		},
		Background: []string{"op.heartbeat", "op.monitor", "op.tb.ib", "op.tb.nfs", "op.gc", "op.scale.up"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.tb.fwflash",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"pbs_server: maintenance hold placed and released on tbird{n}",
				"pbs_server: node tbird{n} offlined for planned maintenance then resumed",
			},
			"op.cert":      {"sshd(pam_unix)[{n}]: server certificate renewed ok"},
			"op.upgrade":   {"yum: updated firmware-tools-{n}.{n} on tbird{n}"},
			"op.audit":     {"sysstat: audit archive rotated sets {list}"},
			"op.clock":     {"ntpd[{n}]: time reset +{n} s trusted source {ip}"},
			"op.debugdump": {"ib_sm: diagnostic counters dumped to {path} size {big}"},
			"op.quota":     {"quota: report for {user} {big}MB used of {big}MB"},
			"op.retrywarn": {"pbs_mom: transient resend of obit retried ok recovered"},
			"op.drill":     {"heartbeat: planned failover drill tbird-admin{n} passed"},
			"op.reindex":   {"mlocate: index rebuilt {big} paths"},
			"op.tb.fwflash": {
				"ipmi: bmc firmware flashed version {n}.{n} on tbird{n}",
				"ipmi: management controller image staged {big} bytes crc ok",
			},
			// Thunderbird shares failure vocabulary with Spirit/BGL (all
			// three are unix-syslog supercomputers) — this is why raw-
			// embedding transfer baselines do comparatively well with
			// Thunderbird as the target, matching the paper's Table IV.
			"anom.net.interrupt": {"ib_sm: port {n} on tbird-admin{n} link went down: Connection reset by peer carrier lost"},
			"anom.parity":        {"kernel: MCE: CPU {n} bank {n} machine check cache parity error {hex} status uncorrected"},
			"anom.disk.fail":     {"scsi: aacraid: host{n} channel {n} id {n} medium error unrecovered read I/O error sector {big}"},
			"anom.oom":           {"kernel: oom-killer: Out of Memory: Killed process {n} ({user}) gfp_mask={hex} anon-rss {big}kB"},
			"anom.timeout":       {"pbs_mom: sister could not communicate job {big} operation timed out after {n}s node tbird{n}"},
			"anom.service.crash": {"ntpd[{n}]: fatal: process exiting on unexpected signal {n} segfault core dumped at {hex}"},
			"anom.overload":      {"postfix/qmgr[{n}]: warning: queue congestion load average {n} saturated deferring new mail"},
			"anom.fs.readonly":   {"kernel: XFS (dm-{n}): metadata I/O error aborting journal, remounting filesystem read-only {path}"},
			"anom.hw.temp":       {"ipmi: sensor temperature alarm {n}C above upper critical hot limit asserting"},
			"anom.tb.sched":      {"pbs_server: node tbird{n} state changed to down: no contact for {n} polls job {big} orphaned"},

			"op.job.submit":  {"pbs_server: Job {big}.tbird queued user {user} queue batch"},
			"op.job.start":   {"pbs_mom: Job {big}.tbird started on tbird{n} session {n}"},
			"op.job.finish":  {"pbs_mom: Job {big}.tbird exited status 0 resources cput={ms}"},
			"op.net.connect": {"sshd(pam_unix)[{n}]: session opened for user {user} by uid={n}"},
			"op.net.close":   {"sshd(pam_unix)[{n}]: session closed for user {user}"},
			"op.disk.write":  {"kernel: XFS (dm-{n}): wrote {big} blocks journal clean"},
			"op.query.exec":  {"nagios: SERVICE CHECK host tbird{n} load OK time {ms} ms"},
			"op.heartbeat":   {"heartbeat: tbird-admin{n} alive idle {n}%"},
			"op.monitor":     {"sysstat: collected {n} counters interval {n}s host tbird{n}"},
			"op.gc":          {"java[{n}]: GC pause {ms} ms heap {big}K -> {big}K"},
			"op.scale.up":    {"pbs_server: enabled {n} additional nodes in reservation {hex}"},
			"op.tb.ib":       {"ib_sm: sweep complete {n} ports active {n} links {ms} ms"},
			"op.tb.nfs":      {"nfs: mount tbird-nfs{n}:{path} refreshed attrcache {n} entries"},
		},
	}
}

// SystemA models an ISP customer-facing billing/API service (CDMS): modern
// key=value microservice logs, very low anomaly rate, few anomaly kinds.
func SystemA() *SystemSpec {
	return &SystemSpec{
		Name:        "SystemA",
		Lines:       2166422,
		BurstRate:   0.00019,
		BurstLenMin: 1,
		BurstLenMax: 3,
		Anomalies: []string{
			"anom.net.interrupt", "anom.timeout", "anom.auth.fail",
			"anom.overload", "anom.service.crash", "anom.sysa.billing",
		},
		Workflows: [][]string{
			{"op.sysa.api", "op.auth.ok", "op.query.exec", "op.sysa.invoice"},
			{"op.net.connect", "op.cache.hit", "op.query.exec", "op.net.close"},
			{"op.backup", "op.replica.sync", "op.monitor"},
		},
		Background: []string{"op.heartbeat", "op.cache.hit", "op.cache.expire", "op.sysa.api", "op.gc", "op.config.reload", "op.scale.up"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.sysa.taxsync",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"level=info svc=ops msg=\"maintenance job done\" task={path} dur={ms}ms",
				"level=info svc=ops msg=\"maintenance window closed\" changes={n}",
			},
			"op.cert":      {"level=info svc=tls msg=\"cert rotated\" serial={hex} notafter={n}d"},
			"op.upgrade":   {"level=info svc=deploy msg=\"rollout complete\" version={n}.{n}.{n} pods={n}"},
			"op.audit":     {"level=info svc=audit msg=\"config snapshot\" keys={list}"},
			"op.clock":     {"level=debug svc=ntp msg=\"clock synced\" skew={ms}ms"},
			"op.debugdump": {"level=debug svc=support msg=\"pprof captured\" size={big}B dest={path}"},
			"op.quota":     {"level=info svc=storage msg=\"quota report\" used={big}MB limit={big}MB"},
			"op.retrywarn": {"level=warn svc=gateway msg=\"transient retry ok\" attempt={n} recovered=true"},
			"op.drill":     {"level=info svc=sre msg=\"dr drill passed\" region={n} rto={ms}ms"},
			"op.reindex":   {"level=info svc=db msg=\"index rebuilt\" table=ledger rows={big}"},
			"op.sysa.taxsync": {
				"level=info svc=billing msg=\"tax table synced\" rows={n} feed=gov",
				"level=info svc=billing msg=\"rate schedule refreshed\" regions={list}",
			},
			// The ISP systems share a moderate amount of cloud-service
			// failure vocabulary with each other (but not with the HPC
			// group), giving pooled-supervision baselines partial recall
			// within Table V's group, as in the paper.
			"anom.net.interrupt": {"level=error svc=gateway msg=\"upstream peer unreachable conn dropped\" peer={ip} reason=signal_lost retry={n}"},
			"anom.timeout":       {"level=error svc=billing msg=\"rpc deadline exceeded timeout\" method=Charge dur={ms}ms budget={ms}ms"},
			"anom.auth.fail":     {"level=warn svc=auth msg=\"login denied bad credentials\" user={user} ip={ip} consecutive_failures={n}"},
			"anom.overload":      {"level=error svc=gateway msg=\"queue saturated shedding load\" depth={big} p99={ms}ms"},
			"anom.service.crash": {"level=fatal svc=worker msg=\"panic: runtime error\" goroutine={n} addr={hex} restarting"},
			"anom.sysa.billing":  {"level=error svc=recon msg=\"ledger mismatch\" expected={big} actual={big} account={hex}"},

			"op.sysa.api":      {"level=info svc=gateway msg=\"request routed\" route={path} status=200 dur={ms}ms"},
			"op.sysa.invoice":  {"level=info svc=billing msg=\"statement generated\" account={hex} amount={n}.{n} items={n}"},
			"op.auth.ok":       {"level=info svc=auth msg=\"token issued\" user={user} ttl={n}s"},
			"op.query.exec":    {"level=info svc=db msg=\"query ok\" table=invoices rows={n} dur={ms}ms"},
			"op.net.connect":   {"level=info svc=gateway msg=\"conn accepted\" peer={ip}:{port} tls=true"},
			"op.net.close":     {"level=info svc=gateway msg=\"conn closed\" peer={ip}:{port} bytes={big}"},
			"op.cache.hit":     {"level=debug svc=cache msg=\"hit\" key={hex} age={n}s"},
			"op.cache.expire":  {"level=debug svc=cache msg=\"expired\" key={hex} refreshed=true"},
			"op.replica.sync":  {"level=info svc=db msg=\"replica caught up\" lag={ms}ms lsn={big}"},
			"op.backup":        {"level=info svc=db msg=\"snapshot complete\" size={big}MB dest={path}"},
			"op.heartbeat":     {"level=debug svc=health msg=\"ok\" checks={n} dur={ms}ms"},
			"op.monitor":       {"level=info svc=metrics msg=\"scrape ok\" series={big} dur={ms}ms"},
			"op.gc":            {"level=debug svc=runtime msg=\"gc cycle\" freed={big}KB pause={ms}ms"},
			"op.config.reload": {"level=info svc=config msg=\"reloaded\" version={n} keys={n}"},
			"op.scale.up":      {"level=info svc=autoscaler msg=\"scaled out\" replicas={n} cpu={n}%"},
		},
	}
}

// SystemB models an ISP distributed cache tier: bracketed structured logs,
// the lowest anomaly rate of all six datasets.
func SystemB() *SystemSpec {
	return &SystemSpec{
		Name:        "SystemB",
		Lines:       877444,
		BurstRate:   0.00016,
		BurstLenMin: 1,
		BurstLenMax: 3,
		Anomalies: []string{
			"anom.net.interrupt", "anom.oom", "anom.timeout",
			"anom.replica.lost", "anom.overload", "anom.sysb.cache",
		},
		Workflows: [][]string{
			{"op.net.connect", "op.cache.hit", "op.cache.expire", "op.net.close"},
			{"op.sysb.shard", "op.replica.sync", "op.heartbeat"},
			{"op.sysb.ttl", "op.gc", "op.monitor"},
		},
		Background: []string{"op.cache.hit", "op.heartbeat", "op.sysb.ttl", "op.sysb.shard", "op.monitor", "op.scale.up"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.sysb.warmup",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"[INF] admin: maintenance script {path} finished rc 0",
				"[INF] admin: planned maintenance applied {n} config changes",
			},
			"op.cert":      {"[INF] tls: cluster cert reloaded serial {hex}"},
			"op.upgrade":   {"[INF] admin: engine binary upgraded to {n}.{n}.{n} rolling"},
			"op.audit":     {"[INF] admin: config dump saved sections {list}"},
			"op.clock":     {"[DBG] time: drift corrected {ms}ms via ntp"},
			"op.debugdump": {"[DBG] debug: latency histogram dumped {big} buckets {path}"},
			"op.quota":     {"[INF] mem: usage report {big}MB of {big}MB budget"},
			"op.retrywarn": {"[WRN] repl: transient partial resync retried ok recovered"},
			"op.drill":     {"[INF] cluster: planned failover drill shard {n} ok"},
			"op.reindex":   {"[INF] engine: keyspace index rebuilt {big} slots"},
			"op.sysb.warmup": {
				"[INF] admin: warmup snapshot exported {big} keys to {path}",
				"[INF] admin: warmup preload shards {list} done",
			},
			"anom.net.interrupt": {"[ERR] cluster-bus: peer {ip}:{port} unreachable marking FAIL epoch {big} signal lost"},
			"anom.oom":           {"[ERR] engine: allocation of {big} bytes failed maxmemory reached evicting impossible OOM"},
			"anom.timeout":       {"[ERR] repl: MASTER timeout no PING reply for {n}s breaking link"},
			"anom.replica.lost":  {"[WRN] cluster: quorum lost for shard {n} replica {hex} demoted removed from ring"},
			"anom.overload":      {"[ERR] engine: command backlog {big} saturated exceeds watermark clients throttled p99 {ms}ms"},
			"anom.sysb.cache":    {"[ERR] evict: storm detected {big} keys evicted in {n}s hit-rate collapsed to {n}%"},

			"op.net.connect":  {"[INF] listener: accepted client {ip}:{port} fd {n}"},
			"op.net.close":    {"[INF] listener: client {ip}:{port} closed cleanly bytes {big}"},
			"op.cache.hit":    {"[DBG] engine: GET {hex} hit ttl {n}s size {n}B"},
			"op.cache.expire": {"[DBG] engine: key {hex} expired lazily reclaimed {n}B"},
			"op.replica.sync": {"[INF] repl: partial resync with master offset {big} ok"},
			"op.heartbeat":    {"[DBG] cluster-bus: gossip round ok peers {n} lag {ms}ms"},
			"op.gc":           {"[DBG] engine: defrag pass freed {big}KB frag {n}%"},
			"op.monitor":      {"[INF] stats: ops {big}/s mem {big}MB hit {n}%"},
			"op.scale.up":     {"[INF] cluster: shard {n} split migrating {big} slots"},
			"op.sysb.shard":   {"[INF] cluster: rebalance moved slot {n} to node {hex}"},
			"op.sysb.ttl":     {"[DBG] sweeper: cycle {n} scanned {big} keys expired {n}"},
		},
	}
}

// SystemC models an ISP customer session/portal service: Java-app style
// logs, moderate anomaly rate.
func SystemC() *SystemSpec {
	return &SystemSpec{
		Name:        "SystemC",
		Lines:       691433,
		BurstRate:   0.0036,
		BurstLenMin: 1,
		BurstLenMax: 4,
		Anomalies: []string{
			"anom.net.interrupt", "anom.auth.fail", "anom.timeout",
			"anom.service.crash", "anom.corrupt", "anom.replica.lost",
			"anom.sysc.session",
		},
		Workflows: [][]string{
			{"op.sysc.login", "op.query.exec", "op.sysc.cdn", "op.net.close"},
			{"op.net.connect", "op.auth.ok", "op.query.exec"},
			{"op.replica.sync", "op.backup", "op.monitor"},
		},
		Background: []string{"op.heartbeat", "op.sysc.cdn", "op.sysc.login", "op.gc", "op.cache.hit", "op.config.reload"},
		Rare: []string{
			"op.maint", "op.cert", "op.upgrade", "op.audit", "op.clock",
			"op.debugdump", "op.quota", "op.retrywarn", "op.drill", "op.reindex", "op.sysc.abtest",
		},
		RareRate: 0.03,
		Renderings: map[string][]string{
			"op.maint": {
				"INFO [ops-{n}] Maintenance - task {path} completed in {ms}ms",
				"INFO [ops-{n}] Maintenance - window closed after {n} changes",
			},
			"op.cert":      {"INFO [tls-{n}] KeyManager - certificate rotated serial {hex}"},
			"op.upgrade":   {"INFO [deploy-{n}] Rollout - version {n}.{n}.{n} active on {n} nodes"},
			"op.audit":     {"INFO [audit-{n}] ConfigAudit - snapshot stored sections {list}"},
			"op.clock":     {"DEBUG [time-{n}] NtpClient - offset corrected {ms}ms"},
			"op.debugdump": {"DEBUG [support-{n}] Dumper - thread dump {big}B written {path}"},
			"op.quota":     {"INFO [storage-{n}] QuotaReporter - used {big}MB of {big}MB"},
			"op.retrywarn": {"WARN [client-{n}] RetryPolicy - transient call retried ok recovered"},
			"op.drill":     {"INFO [sre-{n}] DrDrill - zone evacuation drill passed rto {ms}ms"},
			"op.reindex":   {"INFO [store-{n}] Indexer - secondary index rebuilt {big} rows"},
			"op.sysc.abtest": {
				"INFO [exp-{n}] Assigner - experiment table refreshed {n} buckets",
				"INFO [exp-{n}] Assigner - cohort map reloaded segments {list}",
			},
			"anom.net.interrupt": {"ERROR [netty-worker-{n}] ChannelHandler - connection to {ip}:{port} interrupted: peer unreachable signal lost"},
			"anom.auth.fail":     {"WARN [auth-{n}] LoginService - login denied {n} consecutive bad credentials for principal {user} src {ip}"},
			"anom.timeout":       {"ERROR [hystrix-{n}] CommandExecutor - fallback: downstream deadline exceeded latency {ms}ms timeout {ms}ms"},
			"anom.service.crash": {"FATAL [main] Bootstrap - uncaught exception java.lang.NullPointerException at {hex}; jvm exiting code {n}"},
			"anom.corrupt":       {"ERROR [store-{n}] PageFile - checksum mismatch page {big} expected {hex} got {hex} marking corrupt"},
			"anom.replica.lost":  {"ERROR [raft-{n}] Quorum - leader lease lost term {big} stepping down replica removed"},
			"anom.sysc.session":  {"ERROR [session-{n}] Replicator - failed to replicate session {hex} to zone-{n}: broken pipe"},

			"op.sysc.login":    {"INFO [session-{n}] PortalGateway - session {hex} established for subscriber {user} via portal"},
			"op.sysc.cdn":      {"INFO [edge-{n}] CdnClient - object {path} refreshed at edge ttl {n}s"},
			"op.auth.ok":       {"INFO [auth-{n}] LoginService - principal {user} authenticated mfa=true in {ms}ms"},
			"op.query.exec":    {"INFO [jdbc-{n}] QueryRunner - statement ok rows={n} in {ms}ms"},
			"op.net.connect":   {"INFO [netty-worker-{n}] ChannelHandler - channel active {ip}:{port}"},
			"op.net.close":     {"INFO [netty-worker-{n}] ChannelHandler - channel inactive {ip}:{port} wrote {big}B"},
			"op.replica.sync":  {"INFO [raft-{n}] Quorum - follower matched index {big} term {big}"},
			"op.backup":        {"INFO [store-{n}] SnapshotWriter - snapshot {big} persisted to {path}"},
			"op.heartbeat":     {"DEBUG [health-{n}] Probe - liveness ok {ms}ms"},
			"op.monitor":       {"INFO [metrics-{n}] Reporter - flushed {n} gauges {n} counters"},
			"op.gc":            {"INFO [gc] G1 pause young {ms}ms heap {big}M->{big}M"},
			"op.cache.hit":     {"DEBUG [cache-{n}] NearCache - hit key {hex}"},
			"op.config.reload": {"INFO [config-{n}] Watcher - applied {n} changed keys rev {big}"},
		},
	}
}
