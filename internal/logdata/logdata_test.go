package logdata

import (
	"math"
	"strings"
	"testing"

	"logsynergy/internal/drain"
	"logsynergy/internal/window"
)

func TestCatalogLookups(t *testing.T) {
	c := NewCatalog()
	con, ok := c.Get("anom.parity")
	if !ok || !con.Anomalous {
		t.Fatalf("anom.parity lookup failed: %+v ok=%v", con, ok)
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("unknown key must not resolve")
	}
	if len(c.Anomalies()) < 15 {
		t.Fatalf("anomaly catalog too small: %d", len(c.Anomalies()))
	}
}

func TestCatalogCoversAllRenderedConcepts(t *testing.T) {
	c := NewCatalog()
	for name, spec := range Systems() {
		for key := range spec.Renderings {
			if _, ok := c.Get(key); !ok {
				t.Errorf("system %s renders unknown concept %s", name, key)
			}
		}
	}
}

func TestEverySystemConceptHasRendering(t *testing.T) {
	for name, spec := range Systems() {
		for _, key := range spec.Anomalies {
			if len(spec.Renderings[key]) == 0 {
				t.Errorf("system %s anomaly %s has no rendering", name, key)
			}
		}
		for _, wf := range spec.Workflows {
			for _, key := range wf {
				if len(spec.Renderings[key]) == 0 {
					t.Errorf("system %s workflow concept %s has no rendering", name, key)
				}
			}
		}
		for _, key := range spec.Background {
			if len(spec.Renderings[key]) == 0 {
				t.Errorf("system %s background concept %s has no rendering", name, key)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(BGL(), 42, 200)
	b := Generate(BGL(), 42, 200)
	for i := range a.Lines {
		if a.Lines[i].Message != b.Lines[i].Message {
			t.Fatal("same seed must generate identical corpora")
		}
	}
	c := Generate(BGL(), 43, 200)
	same := 0
	for i := range a.Lines {
		if a.Lines[i].Message == c.Lines[i].Message {
			same++
		}
	}
	if same == len(a.Lines) {
		t.Fatal("different seeds should generate different corpora")
	}
}

func TestAnomalousLinesUseAnomalousConcepts(t *testing.T) {
	cat := NewCatalog()
	corpus := Generate(Spirit(), 7, 20000)
	for _, l := range corpus.Lines {
		con := cat.MustGet(l.ConceptKey)
		if l.Anomalous != con.Anomalous {
			t.Fatalf("line label %v disagrees with concept %s", l.Anomalous, l.ConceptKey)
		}
	}
}

func TestNoPlaceholderLeaks(t *testing.T) {
	for name, spec := range Systems() {
		corpus := Generate(spec, 1, 2000)
		for _, l := range corpus.Lines {
			if strings.Contains(l.Message, "{") && !strings.Contains(l.Message, "{ Drive") {
				// The Spirit disk template legitimately contains literal
				// braces from the kernel message; anything else is a leak.
				t.Fatalf("system %s leaked placeholder in %q", name, l.Message)
			}
		}
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	corpus := Generate(SystemA(), 3, 500)
	for i := 1; i < len(corpus.Lines); i++ {
		if !corpus.Lines[i].Timestamp.After(corpus.Lines[i-1].Timestamp) {
			t.Fatal("timestamps must be strictly increasing")
		}
	}
}

// TestSequenceAnomalyRatesMatchTableIII checks that windowed anomaly rates
// land in the right regime for every dataset (Table III): BGL ≈ 10.7%,
// Spirit ≈ 0.93%, Thunderbird ≈ 4.2%, SystemA ≈ 0.20%, SystemB ≈ 0.17%,
// SystemC ≈ 3.8%. Exact reproduction is impossible for synthetic data;
// the relative ordering and order of magnitude are what the experiments
// depend on, so each rate must fall within a factor of two of the paper's.
func TestSequenceAnomalyRatesMatchTableIII(t *testing.T) {
	want := map[string]float64{
		"BGL":         0.1072,
		"Spirit":      0.0093,
		"Thunderbird": 0.0425,
		"SystemA":     0.0020,
		"SystemB":     0.0017,
		"SystemC":     0.0377,
	}
	for name, spec := range Systems() {
		// Low-rate systems need a longer stream for a stable estimate
		// (≥ ~50 expected anomalous windows).
		n := 60000
		if want[name] < 0.005 {
			n = 150000
		}
		corpus := Generate(spec, 11, n)
		parsed := Parse(corpus, drain.NewDefault())
		seqs := parsed.Windows(window.Default())
		rate := float64(seqs.NumAnomalous()) / float64(len(seqs.Samples))
		lo, hi := want[name]/2, want[name]*2
		if rate < lo || rate > hi {
			t.Errorf("%s: sequence anomaly rate %.4f outside [%.4f, %.4f]", name, rate, lo, hi)
		}
	}
}

func TestParseWindowsShapes(t *testing.T) {
	corpus := Generate(SystemB(), 5, 1000)
	parsed := Parse(corpus, drain.NewDefault())
	if len(parsed.EventIDs) != 1000 {
		t.Fatalf("want 1000 event ids, got %d", len(parsed.EventIDs))
	}
	if len(parsed.Templates) == 0 {
		t.Fatal("no templates discovered")
	}
	seqs := parsed.Windows(window.Default())
	wantSeqs := window.Count(1000, window.Default())
	if len(seqs.Samples) != wantSeqs {
		t.Fatalf("want %d sequences, got %d", wantSeqs, len(seqs.Samples))
	}
	for _, s := range seqs.Samples {
		if len(s.EventIDs) != 10 {
			t.Fatalf("sequence length %d, want 10", len(s.EventIDs))
		}
		for _, id := range s.EventIDs {
			if id < 0 || id >= len(seqs.Templates) {
				t.Fatalf("event id %d out of template range %d", id, len(seqs.Templates))
			}
		}
	}
}

func TestHeadTailSplit(t *testing.T) {
	corpus := Generate(SystemC(), 5, 500)
	seqs := Parse(corpus, drain.NewDefault()).Windows(window.Default())
	train, test := seqs.SplitTrainTest(30)
	if len(train.Samples) != 30 {
		t.Fatalf("train size %d", len(train.Samples))
	}
	if len(train.Samples)+len(test.Samples) != len(seqs.Samples) {
		t.Fatal("split must partition the samples")
	}
	// Continuous split: train must be the stream prefix.
	for i := range train.Samples {
		if &train.Samples[i] != &seqs.Samples[i] {
			t.Fatal("Head must be a prefix view")
		}
	}
}

func TestCoverageAsymmetry(t *testing.T) {
	bgl, sysB := BGL(), SystemB()
	richToSimple := bgl.Coverage(sysB)
	simpleToRich := sysB.Coverage(bgl)
	if richToSimple <= simpleToRich {
		t.Fatalf("BGL must cover SystemB's anomalies better than the reverse: %.2f vs %.2f",
			richToSimple, simpleToRich)
	}
	if richToSimple < 0.75 {
		t.Fatalf("BGL should cover most of SystemB's anomalies, got %.2f", richToSimple)
	}
	if simpleToRich > 0.5 {
		t.Fatalf("SystemB should cover under half of BGL's anomalies, got %.2f", simpleToRich)
	}
}

func TestDistinctDialects(t *testing.T) {
	// The same shared anomaly concept must render with mostly disjoint
	// vocabulary across systems — the paper's Table I motivation.
	systems := Systems()
	key := "anom.net.interrupt"
	var texts []string
	for _, name := range []string{"BGL", "Spirit", "SystemA"} {
		texts = append(texts, systems[name].Renderings[key][0])
	}
	for i := 0; i < len(texts); i++ {
		for j := i + 1; j < len(texts); j++ {
			if overlap(texts[i], texts[j]) > 0.4 {
				t.Fatalf("dialects %d and %d overlap too much: %q vs %q", i, j, texts[i], texts[j])
			}
		}
	}
}

// overlap computes token-level Jaccard similarity.
func overlap(a, b string) float64 {
	as := strings.Fields(strings.ToLower(a))
	bs := strings.Fields(strings.ToLower(b))
	set := make(map[string]bool)
	for _, w := range as {
		set[w] = true
	}
	inter := 0
	bset := make(map[string]bool)
	for _, w := range bs {
		if !bset[w] {
			bset[w] = true
			if set[w] {
				inter++
			}
		}
	}
	union := len(set) + len(bset) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func TestGenerateScaled(t *testing.T) {
	c := GenerateScaled(SystemB(), 1, 0.001)
	want := int(float64(SystemB().Lines) * 0.001)
	if len(c.Lines) != want {
		t.Fatalf("scaled corpus size %d want %d", len(c.Lines), want)
	}
	if math.Abs(float64(want)-877.444) > 1 {
		t.Fatalf("unexpected paper line count scaling: %d", want)
	}
}

func TestBuildEndToEnd(t *testing.T) {
	seqs := Build(Thunderbird(), 9, 0.01, window.Default())
	if len(seqs.Samples) == 0 {
		t.Fatal("Build produced no sequences")
	}
	if seqs.System != "Thunderbird" {
		t.Fatalf("system name %q", seqs.System)
	}
}
