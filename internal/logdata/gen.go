package logdata

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Line is one generated raw log line with its ground truth.
type Line struct {
	// Timestamp is the synthetic emission time.
	Timestamp time.Time
	// Message is the raw log text a collector would see.
	Message string
	// ConceptKey is the hidden semantic concept (ground truth only; no
	// component of the detection pipeline may read it).
	ConceptKey string
	// Anomalous is the ground-truth line label.
	Anomalous bool
}

// Corpus is a generated dataset for one system.
type Corpus struct {
	System *SystemSpec
	Lines  []Line
}

// NumAnomalousLines counts ground-truth anomalous lines.
func (c *Corpus) NumAnomalousLines() int {
	n := 0
	for _, l := range c.Lines {
		if l.Anomalous {
			n++
		}
	}
	return n
}

// Messages returns just the raw messages, in order.
func (c *Corpus) Messages() []string {
	out := make([]string, len(c.Lines))
	for i, l := range c.Lines {
		out[i] = l.Message
	}
	return out
}

// Generator produces a log line stream for one system. It is a small state
// machine: normal traffic interleaves multi-line operational workflows with
// background chatter; anomalies arrive as short bursts, mirroring how real
// incidents produce clusters of related error lines.
type Generator struct {
	spec *SystemSpec
	rng  *rand.Rand
	now  time.Time

	// workflow progress
	workflow []string
	wfPos    int
	// remaining anomaly burst
	burstLeft    int
	burstConcept string
}

// NewGenerator creates a deterministic generator for the system seeded with
// seed. The same (spec, seed) pair always yields the same corpus.
func NewGenerator(spec *SystemSpec, seed int64) *Generator {
	return &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		now:  time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Next produces the next log line.
func (g *Generator) Next() Line {
	g.now = g.now.Add(time.Duration(50+g.rng.Intn(900)) * time.Millisecond)

	// Continue an ongoing anomaly burst first: incidents dominate a node's
	// output while they last.
	if g.burstLeft > 0 {
		g.burstLeft--
		return g.emit(g.burstConcept, true)
	}
	// Possibly start a new burst.
	if g.rng.Float64() < g.spec.BurstRate {
		g.burstConcept = g.spec.Anomalies[g.rng.Intn(len(g.spec.Anomalies))]
		span := g.spec.BurstLenMax - g.spec.BurstLenMin + 1
		g.burstLeft = g.spec.BurstLenMin + g.rng.Intn(span) - 1
		return g.emit(g.burstConcept, true)
	}
	// Long-tail normal behaviour: rare operational events interleave with
	// everything else (maintenance can happen mid-workflow in real systems).
	if len(g.spec.Rare) > 0 && g.rng.Float64() < g.spec.RareRate {
		return g.emit(g.spec.Rare[g.rng.Intn(len(g.spec.Rare))], false)
	}
	// Continue an in-progress workflow.
	if g.workflow != nil {
		key := g.workflow[g.wfPos]
		g.wfPos++
		if g.wfPos >= len(g.workflow) {
			g.workflow = nil
		}
		return g.emit(key, false)
	}
	// Start a workflow or emit background chatter.
	if g.rng.Float64() < 0.35 && len(g.spec.Workflows) > 0 {
		g.workflow = g.spec.Workflows[g.rng.Intn(len(g.spec.Workflows))]
		g.wfPos = 1
		key := g.workflow[0]
		if len(g.workflow) == 1 {
			g.workflow = nil
		}
		return g.emit(key, false)
	}
	key := g.spec.Background[g.rng.Intn(len(g.spec.Background))]
	return g.emit(key, false)
}

// emit renders one concept into a concrete line.
func (g *Generator) emit(key string, anomalous bool) Line {
	templates := g.spec.Renderings[key]
	if len(templates) == 0 {
		panic(fmt.Sprintf("logdata: system %s has no rendering for concept %s", g.spec.Name, key))
	}
	tpl := templates[g.rng.Intn(len(templates))]
	return Line{
		Timestamp:  g.now,
		Message:    g.expand(tpl),
		ConceptKey: key,
		Anomalous:  anomalous,
	}
}

// expand substitutes every placeholder with a random concrete value.
func (g *Generator) expand(tpl string) string {
	var b strings.Builder
	for {
		i := strings.IndexByte(tpl, '{')
		if i < 0 {
			b.WriteString(tpl)
			return b.String()
		}
		j := strings.IndexByte(tpl[i:], '}')
		if j < 0 {
			b.WriteString(tpl)
			return b.String()
		}
		b.WriteString(tpl[:i])
		b.WriteString(g.value(tpl[i+1 : i+j]))
		tpl = tpl[i+j+1:]
	}
}

var sampleUsers = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}

var samplePaths = []string{
	"/var/log/app.log", "/scratch/job/data.bin", "/home/proj/input.dat",
	"/etc/service/conf.yaml", "/data/shard/segment.idx", "/tmp/stage/upload.tmp",
}

// value renders one placeholder kind.
func (g *Generator) value(kind string) string {
	switch kind {
	case "ip":
		return fmt.Sprintf("%d.%d.%d.%d", 10+g.rng.Intn(160), g.rng.Intn(256), g.rng.Intn(256), 1+g.rng.Intn(254))
	case "port":
		return fmt.Sprintf("%d", 1024+g.rng.Intn(64000))
	case "n":
		return fmt.Sprintf("%d", g.rng.Intn(1000))
	case "big":
		return fmt.Sprintf("%d", 10000+g.rng.Intn(99999999))
	case "hex":
		return fmt.Sprintf("0x%08x", g.rng.Uint32())
	case "path":
		return samplePaths[g.rng.Intn(len(samplePaths))]
	case "user":
		return sampleUsers[g.rng.Intn(len(sampleUsers))]
	case "node":
		return fmt.Sprintf("R%02d-M%d-N%d", g.rng.Intn(64), g.rng.Intn(2), g.rng.Intn(16))
	case "ms":
		return fmt.Sprintf("%d", 1+g.rng.Intn(5000))
	case "list":
		// Variable-length item lists split templates by token count under
		// Drain, multiplying the long tail of distinct normal templates.
		k := 1 + g.rng.Intn(5)
		items := make([]string, k)
		for i := range items {
			items[i] = fmt.Sprintf("item%d", g.rng.Intn(10000))
		}
		return strings.Join(items, " ")
	default:
		return "{" + kind + "}"
	}
}

// Generate produces a corpus of n lines.
func Generate(spec *SystemSpec, seed int64, n int) *Corpus {
	g := NewGenerator(spec, seed)
	lines := make([]Line, n)
	for i := range lines {
		lines[i] = g.Next()
	}
	return &Corpus{System: spec, Lines: lines}
}

// GenerateScaled produces a corpus sized at scale times the system's paper
// corpus (Table III). scale 1.0 reproduces the paper's line counts; the CPU
// benchmarks use much smaller scales.
func GenerateScaled(spec *SystemSpec, seed int64, scale float64) *Corpus {
	n := int(float64(spec.Lines) * scale)
	if n < 1 {
		n = 1
	}
	return Generate(spec, seed, n)
}
