package logdata

import (
	"testing"

	"logsynergy/internal/drain"
	"logsynergy/internal/window"
)

// BenchmarkGenerate measures raw corpus generation throughput.
func BenchmarkGenerate(b *testing.B) {
	spec := BGL()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(spec, int64(i), 5000)
	}
}

// BenchmarkParseCorpus measures Drain over generator output (the offline
// pre-processing cost per 5k lines).
func BenchmarkParseCorpus(b *testing.B) {
	corpus := Generate(Spirit(), 1, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(corpus, drain.NewDefault())
	}
}

// BenchmarkBuildEndToEnd measures generation+parsing+windowing together.
func BenchmarkBuildEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(SystemC(), int64(i), 0.01, window.Default())
	}
}
