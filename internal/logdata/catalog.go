// Package logdata synthesizes the six log corpora the LogSynergy paper
// evaluates on: the public supercomputer sets BGL, Spirit and Thunderbird,
// and the ISP production systems A, B and C (Table III). The real corpora
// are not redistributable (and the ISP sets are proprietary), so this
// package builds the closest synthetic equivalent that exercises the same
// code paths: every system draws from a shared catalog of *semantic event
// concepts* but renders each concept in its own surface dialect. That
// preserves the property the paper's experiments hinge on — semantically
// equivalent anomalies with substantial syntax differences across systems
// (the paper's Table I motivation).
package logdata

// Concept is one semantic event kind. The same concept can be rendered very
// differently by different systems; Canonical is the unified interpretation
// an ideal LLM would produce for any of those renderings.
type Concept struct {
	// Key identifies the concept, e.g. "anom.net.interrupt".
	Key string
	// Canonical is the unified natural-language interpretation.
	Canonical string
	// Anomalous marks concepts that indicate a genuine system anomaly.
	Anomalous bool
}

// Catalog holds every concept, keyed for lookup and ordered for iteration.
type Catalog struct {
	ordered []Concept
	byKey   map[string]Concept
}

// NewCatalog builds the shared concept catalog.
func NewCatalog() *Catalog {
	c := &Catalog{byKey: make(map[string]Concept)}
	for _, con := range catalogConcepts {
		c.ordered = append(c.ordered, con)
		c.byKey[con.Key] = con
	}
	return c
}

// Get returns the concept with the given key; ok is false if unknown.
func (c *Catalog) Get(key string) (Concept, bool) {
	con, ok := c.byKey[key]
	return con, ok
}

// MustGet returns the concept with the given key or panics.
func (c *Catalog) MustGet(key string) Concept {
	con, ok := c.byKey[key]
	if !ok {
		panic("logdata: unknown concept " + key)
	}
	return con
}

// All returns every concept in declaration order.
func (c *Catalog) All() []Concept { return c.ordered }

// Anomalies returns every anomalous concept.
func (c *Catalog) Anomalies() []Concept {
	var out []Concept
	for _, con := range c.ordered {
		if con.Anomalous {
			out = append(out, con)
		}
	}
	return out
}

// catalogConcepts enumerates the semantic event space. Shared anomaly
// concepts model the paper's observation that different systems log the
// same failure in different words (network interruption and parity error
// are lifted straight from the paper's Table I).
var catalogConcepts = []Concept{
	// ---- Shared anomalous concepts (rendered by multiple systems). ----
	{Key: "anom.net.interrupt", Canonical: "network connection interrupted due to loss of signal", Anomalous: true},
	{Key: "anom.parity", Canonical: "memory parity error detected in cache unit", Anomalous: true},
	{Key: "anom.disk.fail", Canonical: "disk input output failure while accessing storage device", Anomalous: true},
	{Key: "anom.oom", Canonical: "process terminated because system ran out of memory", Anomalous: true},
	{Key: "anom.timeout", Canonical: "operation timed out waiting for remote response", Anomalous: true},
	{Key: "anom.auth.fail", Canonical: "repeated authentication failures detected for user account", Anomalous: true},
	{Key: "anom.service.crash", Canonical: "service process crashed unexpectedly with fatal error", Anomalous: true},
	{Key: "anom.corrupt", Canonical: "data corruption detected during integrity verification", Anomalous: true},
	{Key: "anom.overload", Canonical: "request queue overloaded causing severe performance degradation", Anomalous: true},
	{Key: "anom.replica.lost", Canonical: "replica lost quorum and was removed from the cluster", Anomalous: true},
	{Key: "anom.fs.readonly", Canonical: "filesystem remounted read only after unrecoverable write failure", Anomalous: true},
	{Key: "anom.hw.temp", Canonical: "hardware temperature exceeded critical safety threshold", Anomalous: true},

	// ---- System-specific anomalous concepts. ----
	{Key: "anom.bgl.kernel", Canonical: "kernel panic detected in compute node firmware", Anomalous: true},
	{Key: "anom.bgl.torus", Canonical: "torus interconnect link error corrupted packet delivery", Anomalous: true},
	{Key: "anom.spirit.lustre", Canonical: "parallel filesystem metadata server became unavailable", Anomalous: true},
	{Key: "anom.spirit.mpi", Canonical: "message passing collective operation aborted across ranks", Anomalous: true},
	{Key: "anom.tb.sched", Canonical: "batch scheduler lost contact with compute node", Anomalous: true},
	{Key: "anom.sysa.billing", Canonical: "billing reconciliation mismatch detected between ledgers", Anomalous: true},
	{Key: "anom.sysb.cache", Canonical: "distributed cache suffered mass eviction storm", Anomalous: true},
	{Key: "anom.sysc.session", Canonical: "session state replication failed across availability zones", Anomalous: true},

	// ---- Shared normal operational concepts. ----
	{Key: "op.job.submit", Canonical: "job submitted to the scheduling queue"},
	{Key: "op.job.start", Canonical: "job started executing on allocated resources"},
	{Key: "op.job.finish", Canonical: "job finished successfully and released resources"},
	{Key: "op.net.connect", Canonical: "network connection established with peer"},
	{Key: "op.net.close", Canonical: "network connection closed normally"},
	{Key: "op.disk.read", Canonical: "data block read from storage device"},
	{Key: "op.disk.write", Canonical: "data block written to storage device"},
	{Key: "op.auth.ok", Canonical: "user authenticated successfully"},
	{Key: "op.heartbeat", Canonical: "component heartbeat reported healthy status"},
	{Key: "op.config.reload", Canonical: "configuration reloaded without errors"},
	{Key: "op.cache.hit", Canonical: "cache lookup served request from memory"},
	{Key: "op.cache.expire", Canonical: "cache entry expired and was refreshed"},
	{Key: "op.query.exec", Canonical: "query executed and returned result set"},
	{Key: "op.replica.sync", Canonical: "replica synchronized with primary copy"},
	{Key: "op.gc", Canonical: "garbage collection completed reclaiming memory"},
	{Key: "op.scale.up", Canonical: "capacity scaled up to absorb load"},
	{Key: "op.backup", Canonical: "backup snapshot completed successfully"},
	{Key: "op.monitor", Canonical: "monitoring probe recorded nominal metrics"},

	// ---- Rare shared operational concepts: the long tail of normal
	// behaviour (maintenance, rotations, drills). They are the reason
	// target-only unsupervised methods false-positive heavily when trained
	// on a small slice of a new system — the slice misses the tail — while
	// transfer methods can learn the tail from mature sources. Note
	// op.retrywarn: negative-sounding but operationally normal, the §V
	// external-threat example ("frequent login failures are not considered
	// anomalies in practice"). ----
	{Key: "op.maint", Canonical: "scheduled maintenance task executed on component"},
	{Key: "op.cert", Canonical: "security certificate rotated before expiry"},
	{Key: "op.upgrade", Canonical: "software package upgraded to new version"},
	{Key: "op.audit", Canonical: "periodic audit snapshot recorded configuration"},
	{Key: "op.clock", Canonical: "system clock synchronized with reference time server"},
	{Key: "op.debugdump", Canonical: "diagnostic trace dump captured for offline analysis"},
	{Key: "op.quota", Canonical: "storage quota usage report generated"},
	{Key: "op.retrywarn", Canonical: "transient warning retried and recovered automatically"},
	{Key: "op.drill", Canonical: "planned failover drill completed without impact"},
	{Key: "op.reindex", Canonical: "background index rebuild completed"},

	// ---- Rare system-specific normal concepts (never unified by LEI —
	// the small residual false-positive source even for LogSynergy). ----
	{Key: "op.bgl.reseat", Canonical: "midplane service card reseated by operator"},
	{Key: "op.spirit.purge", Canonical: "scratch filesystem purge cycle removed stale files"},
	{Key: "op.tb.fwflash", Canonical: "firmware image flashed on management controller"},
	{Key: "op.sysa.taxsync", Canonical: "tax rate table synchronized from authority feed"},
	{Key: "op.sysb.warmup", Canonical: "cache snapshot exported for cluster warmup"},
	{Key: "op.sysc.abtest", Canonical: "experiment assignment table refreshed"},

	// ---- System-specific normal concepts (these keep a system-specific
	// signal in the data even after interpretation, which is exactly the
	// signal SUFE is designed to disentangle). ----
	{Key: "op.bgl.ciod", Canonical: "compute node io daemon processed control message"},
	{Key: "op.bgl.ras", Canonical: "reliability availability serviceability event recorded"},
	{Key: "op.spirit.lnet", Canonical: "lustre network layer routed bulk transfer"},
	{Key: "op.spirit.slurm", Canonical: "resource manager allocated partition for batch work"},
	{Key: "op.tb.ib", Canonical: "infiniband fabric port counters sampled"},
	{Key: "op.tb.nfs", Canonical: "network filesystem mount refreshed attributes"},
	{Key: "op.sysa.invoice", Canonical: "invoice pipeline materialized customer statement"},
	{Key: "op.sysa.api", Canonical: "public api gateway forwarded customer request"},
	{Key: "op.sysb.shard", Canonical: "cache shard rebalanced key ranges"},
	{Key: "op.sysb.ttl", Canonical: "time to live sweeper pruned expired keys"},
	{Key: "op.sysc.login", Canonical: "customer session established through portal"},
	{Key: "op.sysc.cdn", Canonical: "content delivery edge refreshed cached object"},
}
