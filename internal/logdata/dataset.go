package logdata

import (
	"logsynergy/internal/drain"
	"logsynergy/internal/window"
)

// Parsed is a corpus after Drain parsing: each line mapped to an event id,
// with the discovered templates and ground-truth line labels retained.
type Parsed struct {
	// System is the originating system's name.
	System string
	// EventIDs holds one Drain event id per line.
	EventIDs []int
	// Labels holds the ground-truth per-line anomaly flags.
	Labels []bool
	// Concepts holds the hidden per-line concept keys (ground truth only).
	Concepts []string
	// Templates maps event id to template text (index = event id).
	Templates []string
}

// Parse runs every corpus line through the Drain parser. Passing a fresh
// parser per system mirrors the paper's per-dataset parsing; passing a
// shared parser would merge template spaces, which the pipeline never does.
func Parse(c *Corpus, p *drain.Parser) *Parsed {
	out := &Parsed{
		System:   c.System.Name,
		EventIDs: make([]int, len(c.Lines)),
		Labels:   make([]bool, len(c.Lines)),
		Concepts: make([]string, len(c.Lines)),
	}
	for i, line := range c.Lines {
		m := p.Parse(line.Message)
		out.EventIDs[i] = m.EventID
		out.Labels[i] = line.Anomalous
		out.Concepts[i] = line.ConceptKey
	}
	for _, ev := range p.Events() {
		out.Templates = append(out.Templates, ev.Template)
	}
	return out
}

// Sample is one model-ready log sequence.
type Sample struct {
	// EventIDs is the fixed-length window of event ids.
	EventIDs []int
	// Label is the sequence-level anomaly ground truth (true = anomalous).
	Label bool
}

// Sequences is a windowed, labeled dataset for one system.
type Sequences struct {
	// System is the originating system's name.
	System string
	// Samples holds the windowed sequences in stream order.
	Samples []Sample
	// Templates maps event id to template text.
	Templates []string
}

// Windows segments the parsed stream into fixed-length sequences using the
// paper's sliding-window rule; a sequence is anomalous iff it contains at
// least one anomalous line.
func (p *Parsed) Windows(cfg window.Config) *Sequences {
	spans := window.Slide(len(p.EventIDs), cfg)
	out := &Sequences{System: p.System, Templates: p.Templates}
	for _, sp := range spans {
		ids := make([]int, sp.End-sp.Start)
		copy(ids, p.EventIDs[sp.Start:sp.End])
		out.Samples = append(out.Samples, Sample{
			EventIDs: ids,
			Label:    window.AnyTrue(p.Labels, sp),
		})
	}
	return out
}

// NumAnomalous counts anomalous sequences.
func (s *Sequences) NumAnomalous() int {
	n := 0
	for _, smp := range s.Samples {
		if smp.Label {
			n++
		}
	}
	return n
}

// Head returns a view of the first n samples (fewer if the dataset is
// smaller). The paper trains target systems on the *former* portion of the
// stream and tests on the latter, to avoid temporal leakage (§IV-A1).
func (s *Sequences) Head(n int) *Sequences {
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	return &Sequences{System: s.System, Samples: s.Samples[:n], Templates: s.Templates}
}

// Tail returns a view of the samples after the first n.
func (s *Sequences) Tail(n int) *Sequences {
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	return &Sequences{System: s.System, Samples: s.Samples[n:], Templates: s.Templates}
}

// SplitTrainTest splits the stream continuously: the first trainN samples
// train, everything after tests.
func (s *Sequences) SplitTrainTest(trainN int) (train, test *Sequences) {
	return s.Head(trainN), s.Tail(trainN)
}

// Build generates, parses and windows one system's corpus in a single call:
// the full offline pre-processing phase (§III-B) for that system.
func Build(spec *SystemSpec, seed int64, scale float64, cfg window.Config) *Sequences {
	corpus := GenerateScaled(spec, seed, scale)
	parsed := Parse(corpus, drain.NewDefault())
	return parsed.Windows(cfg)
}
