// Package httpapi is the one shared HTTP admin surface for every
// logsynergy serving mode (single-process serve, fleet node, front
// router): a mux builder that mounts the observability endpoints
// exactly once per process, a versioned-path helper that keeps legacy
// unversioned admin paths as thin aliases of their /admin/v1 twins,
// and the uniform JSON error envelope every non-2xx admin or ingest
// answer carries.
//
// The envelope is
//
//	{"error": {"code": "...", "message": "...", "retry_after_s": N}}
//
// with machine-readable codes (see the Code* constants) so collectors
// and the fleet router decode the body instead of scraping headers or
// text/plain prose. Backpressure answers additionally keep a
// Retry-After header and, where a caller decodes the legacy shape, the
// pre-envelope top-level fields: the envelope is additive, never a
// silent break.
package httpapi

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"logsynergy/internal/obs"
)

// Prefix is the versioned admin path prefix. Every admin endpoint is
// reachable under it; pre-existing endpoints additionally keep their
// unversioned path as an alias (one handler serves both, so alias
// bodies are byte-identical by construction).
const Prefix = "/admin/v1"

// Error codes carried in the envelope. These are the stable,
// machine-readable half of an error answer; messages are prose and may
// change between releases.
const (
	// CodeBadRequest: the request itself is malformed (bad parameter,
	// unparseable body or header).
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method; the Allow header names
	// the accepted one.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict: the request is well-formed but the server's state
	// refuses it (stale epoch, no live cutover, shrink request).
	CodeConflict = "conflict"
	// CodeTooLarge: the request body exceeds the configured batch bound.
	CodeTooLarge = "too_large"
	// CodeBackpressure: a retryable rejection — backlog full or bounded
	// concurrency exhausted. retry_after_s says when to come back.
	CodeBackpressure = "backpressure"
	// CodeClosed: intake is shut down; the request will not succeed on
	// retry against this process.
	CodeClosed = "intake_closed"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// Detail is the error object inside the envelope.
type Detail struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable prose.
	Message string `json:"message"`
	// RetryAfterS, when positive, is the retry hint in seconds; the
	// same value is mirrored into the Retry-After header.
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// Partitions carries per-partition rejection detail on 429 answers
	// (the shard/router per-partition result rows).
	Partitions any `json:"partitions,omitempty"`
}

// Envelope is the uniform non-2xx response body.
type Envelope struct {
	Err Detail `json:"error"`
}

// Error writes the envelope as the entire response body. Handlers use
// it for every non-2xx answer that has no legacy body shape to keep.
func Error(w http.ResponseWriter, status int, d Detail) {
	writeJSON(w, status, d, Envelope{Err: d})
}

// ErrorWithBody writes a non-2xx response whose body is the caller's
// own struct (which should embed d, e.g. via an `error` field) — the
// additive path for answers whose pre-envelope body shape collectors
// already decode, like the 429 ingest response. Headers (Content-Type,
// Retry-After) are set from d exactly as Error would.
func ErrorWithBody(w http.ResponseWriter, status int, d Detail, body any) {
	writeJSON(w, status, d, body)
}

// MethodNotAllowed answers 405 with the envelope and an Allow header.
func MethodNotAllowed(w http.ResponseWriter, allow, message string) {
	w.Header().Set("Allow", allow)
	Error(w, http.StatusMethodNotAllowed, Detail{Code: CodeMethodNotAllowed, Message: message})
}

func writeJSON(w http.ResponseWriter, status int, d Detail, body any) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if d.RetryAfterS > 0 {
		h.Set("Retry-After", strconv.Itoa(d.RetryAfterS))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// DecodeDetail extracts the envelope's error detail from a response
// body, or nil when the body carries none — callers fall back to
// headers (Retry-After) for pre-envelope peers.
func DecodeDetail(body []byte) *Detail {
	var env struct {
		Err *Detail `json:"error"`
	}
	if json.Unmarshal(body, &env) != nil {
		return nil
	}
	return env.Err
}

// MuxOptions configures the shared admin mux.
type MuxOptions struct {
	// Snapshot backs /metrics (text), /metrics.json, and the process
	// expvar. Required unless Metrics overrides the text endpoint and
	// no JSON snapshot is wanted.
	Snapshot func() obs.Snapshot
	// Metrics, when set, overrides the /metrics handler (the router
	// mounts its federated scrape here); /metrics.json still serves
	// Snapshot when that is set too.
	Metrics http.Handler
}

// Mux builds the shared observability mux: /metrics, /metrics.json,
// /debug/vars, and the /debug/pprof/* handlers. Every serving mode
// mounts its role-specific endpoints (ingest, admin) on top of it.
func Mux(o MuxOptions) *http.ServeMux {
	mux := http.NewServeMux()
	switch {
	case o.Metrics != nil:
		mux.Handle("/metrics", o.Metrics)
	case o.Snapshot != nil:
		snap := o.Snapshot
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap().WriteText(w)
		})
	}
	if o.Snapshot != nil {
		mux.Handle("/metrics.json", obs.SnapshotJSONHandler(o.Snapshot))
		publishExpvar(o.Snapshot)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvar.Publish panics on a duplicate name, so the process-global
// "logsynergy" var is registered once and reads through an atomic
// pointer to the most recent mux's snapshot function.
var (
	expvarOnce sync.Once
	expvarSnap atomic.Value // of func() obs.Snapshot
)

func publishExpvar(snap func() obs.Snapshot) {
	expvarSnap.Store(snap)
	expvarOnce.Do(func() {
		expvar.Publish("logsynergy", expvar.Func(func() any {
			if fn, ok := expvarSnap.Load().(func() obs.Snapshot); ok && fn != nil {
				return fn()
			}
			return nil
		}))
	})
}

// HandleVersioned mounts h at its legacy unversioned admin path and at
// the /admin/v1 twin. legacy must start with "/admin/"; the versioned
// path is Prefix plus the part after "/admin". One handler serves both
// registrations, so the alias answers byte-identically.
func HandleVersioned(mux *http.ServeMux, legacy string, h http.Handler) {
	mux.Handle(legacy, h)
	mux.Handle(Prefix+strings.TrimPrefix(legacy, "/admin"), h)
}

// EpochStamp wraps h so every response carries the current cluster
// epoch in the named header before the handler runs — the consistent
// X-Cluster-Epoch discipline across the admin surface. Handlers that
// refresh mid-request may overwrite the header before writing status.
func EpochStamp(header string, epoch func() uint64, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(header, strconv.FormatUint(epoch(), 10))
		h.ServeHTTP(w, r)
	})
}

// BuildInfo is the build identification block of a status answer.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process's build identification, read once from the
// embedded module build info.
func Build() BuildInfo {
	buildOnce.Do(func() {
		if bi, ok := debug.ReadBuildInfo(); ok {
			buildInfo.GoVersion = bi.GoVersion
			buildInfo.Module = bi.Main.Path
			buildInfo.Version = bi.Main.Version
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					buildInfo.Revision = s.Value
				}
			}
		}
	})
	return buildInfo
}
