package labeling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func truthVector(n int, rate float64, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < rate
	}
	return out
}

func TestPerfectOperatorsNeverErr(t *testing.T) {
	p := Process{
		First:       Operator{Name: "a"},
		Second:      Operator{Name: "b"},
		Adjudicator: Operator{Name: "c"},
		Seed:        1,
	}
	truth := truthVector(500, 0.1, 2)
	labels, outcomes := p.Run(truth)
	if ErrorRate(labels, truth) != 0 {
		t.Fatal("perfect operators must produce perfect labels")
	}
	if Disagreements(outcomes) != 0 {
		t.Fatal("perfect operators never disagree")
	}
}

func TestAdjudicationReducesErrors(t *testing.T) {
	truth := truthVector(5000, 0.1, 3)

	// Workflow error rate with adjudication.
	p := DefaultProcess(7)
	labels, outcomes := p.Run(truth)
	withAdj := ErrorRate(labels, truth)
	if Disagreements(outcomes) == 0 {
		t.Fatal("imperfect operators should disagree sometimes")
	}

	// Single-operator error rate for comparison.
	rng := rand.New(rand.NewSource(7))
	single := make([]bool, len(truth))
	for i, tr := range truth {
		single[i] = p.First.Label(rng, tr)
	}
	alone := ErrorRate(single, truth)

	if withAdj >= alone {
		t.Fatalf("two-plus-one workflow (%.4f) must beat a single operator (%.4f)", withAdj, alone)
	}
}

func TestRunDeterministic(t *testing.T) {
	truth := truthVector(200, 0.2, 4)
	p := DefaultProcess(11)
	a, _ := p.Run(truth)
	b, _ := p.Run(truth)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical labels")
		}
	}
}

func TestInjectNoiseRate(t *testing.T) {
	labels := make([]bool, 10000)
	rng := rand.New(rand.NewSource(5))
	noisy := InjectNoise(rng, labels, 0.3)
	flipped := 0
	for i := range noisy {
		if noisy[i] != labels[i] {
			flipped++
		}
	}
	rate := float64(flipped) / float64(len(labels))
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("noise rate %.3f, want ≈0.3", rate)
	}
	// Original untouched.
	for _, l := range labels {
		if l {
			t.Fatal("InjectNoise must not mutate its input")
		}
	}
}

// Property: final label always equals one of the three operators' views.
func TestFinalLabelComesFromAnOperator(t *testing.T) {
	f := func(seed int64) bool {
		truth := truthVector(100, 0.15, seed)
		p := DefaultProcess(seed)
		labels, outcomes := p.Run(truth)
		for i, oc := range outcomes {
			if labels[i] != oc.Final {
				return false
			}
			if !oc.Adjudicated && oc.First != oc.Second {
				return false // agreement must mean identical labels
			}
			if !oc.Adjudicated && oc.Final != oc.First {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
