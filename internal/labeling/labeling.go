// Package labeling simulates the manual annotation workflow the paper
// deploys for new systems (§VI-B1): two operators label every sequence
// independently; disagreements go to a third operator for adjudication.
// It also provides the label-noise injection used to study the paper's
// external threat (§IV-E1): low-quality or misclassified anomaly labels
// degrade what the model can learn.
package labeling

import "math/rand"

// Operator is a simulated annotator with class-conditional error rates.
type Operator struct {
	// Name identifies the operator in audit trails.
	Name string
	// FalsePositiveRate is the probability of labeling a normal sequence
	// anomalous.
	FalsePositiveRate float64
	// FalseNegativeRate is the probability of labeling an anomalous
	// sequence normal.
	FalseNegativeRate float64
}

// Label returns the operator's (possibly wrong) label for a sequence with
// ground truth truth.
func (o Operator) Label(rng *rand.Rand, truth bool) bool {
	if truth {
		if rng.Float64() < o.FalseNegativeRate {
			return false
		}
		return true
	}
	if rng.Float64() < o.FalsePositiveRate {
		return true
	}
	return false
}

// Outcome records how one sequence was labeled.
type Outcome struct {
	// First and Second are the independent labels.
	First, Second bool
	// Adjudicated reports whether the third operator was consulted.
	Adjudicated bool
	// Final is the label entering the training set.
	Final bool
}

// Process runs the paper's two-plus-one workflow over ground-truth labels
// and returns the final labels plus per-sequence outcomes.
type Process struct {
	// First and Second label every sequence; Adjudicator resolves
	// disagreements.
	First, Second, Adjudicator Operator
	// Seed makes the simulation deterministic.
	Seed int64
}

// DefaultProcess returns a workflow with realistic operator quality:
// ~2% false positives, ~5% false negatives per operator, and a senior
// adjudicator twice as accurate.
func DefaultProcess(seed int64) Process {
	return Process{
		First:       Operator{Name: "op-a", FalsePositiveRate: 0.02, FalseNegativeRate: 0.05},
		Second:      Operator{Name: "op-b", FalsePositiveRate: 0.02, FalseNegativeRate: 0.05},
		Adjudicator: Operator{Name: "op-senior", FalsePositiveRate: 0.01, FalseNegativeRate: 0.025},
		Seed:        seed,
	}
}

// Run labels every sequence. The returned labels are what a deployment
// would train on; outcomes carry the full audit trail.
func (p Process) Run(truth []bool) (labels []bool, outcomes []Outcome) {
	rng := rand.New(rand.NewSource(p.Seed))
	labels = make([]bool, len(truth))
	outcomes = make([]Outcome, len(truth))
	for i, t := range truth {
		a := p.First.Label(rng, t)
		b := p.Second.Label(rng, t)
		oc := Outcome{First: a, Second: b}
		if a == b {
			oc.Final = a
		} else {
			oc.Adjudicated = true
			oc.Final = p.Adjudicator.Label(rng, t)
		}
		labels[i] = oc.Final
		outcomes[i] = oc
	}
	return labels, outcomes
}

// Disagreements counts adjudicated sequences.
func Disagreements(outcomes []Outcome) int {
	n := 0
	for _, oc := range outcomes {
		if oc.Adjudicated {
			n++
		}
	}
	return n
}

// ErrorRate returns the fraction of final labels differing from truth.
func ErrorRate(final, truth []bool) float64 {
	if len(final) == 0 {
		return 0
	}
	wrong := 0
	for i := range final {
		if final[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(final))
}

// InjectNoise flips each label independently with probability rate — the
// blunt instrument for the §IV-E1 threat study (mislabeled anomalies from
// low-quality logs).
func InjectNoise(rng *rand.Rand, labels []bool, rate float64) []bool {
	out := append([]bool(nil), labels...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = !out[i]
		}
	}
	return out
}
