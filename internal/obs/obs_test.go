package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.total") != c {
		t.Fatal("get-or-create must return the same counter")
	}

	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.Max(3) // below current: no-op
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("gauge after Max = %d, want 9", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("lat", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // <= 0.01: bucket 0
	h.Observe(0.01)  // boundary lands in its own bucket (le semantics)
	h.Observe(0.5)   // bucket 2
	h.Observe(99)    // +Inf overflow
	s := h.snapshot()
	want := []int64{2, 0, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if got := s.Sum; got < 99.5 || got > 99.6 {
		t.Fatalf("sum = %g", got)
	}
	if s.Mean() != s.Sum/4 {
		t.Fatalf("mean = %g", s.Mean())
	}
	if r.HistogramWith("lat", []float64{5}) != h {
		t.Fatal("first registration must win")
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	s := h.snapshot()
	if s.Count != 1 || s.Sum <= 0 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(3)
	a.Gauge("g").Set(2)
	a.HistogramWith("h", []float64{1, 10}).Observe(0.5)

	b := NewRegistry()
	b.Counter("c").Add(4)
	b.Counter("only.b").Inc()
	b.Gauge("g").Set(5)
	b.HistogramWith("h", []float64{1, 10}).Observe(20)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["c"] != 7 || m.Counters["only.b"] != 1 {
		t.Fatalf("counters %v", m.Counters)
	}
	if m.Gauges["g"] != 7 {
		t.Fatalf("gauges %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 20.5 {
		t.Fatalf("merged histogram %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged buckets %v", h.Counts)
	}

	// Merging must not alias the source snapshots' slices.
	h.Counts[0] = 99
	if a.Snapshot().Histograms["h"].Counts[0] != 1 {
		t.Fatal("merge aliased the source snapshot")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.hits").Add(12)
	r.Gauge("pipeline.depth").Set(3)
	r.HistogramWith("pipeline.lat", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"counter pipeline.hits 12\n",
		"gauge pipeline.depth 3\n",
		"histogram pipeline.lat count 1 sum 0.5 mean 0.5\n",
		"histogram pipeline.lat bucket le=1 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONForExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(1)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("served.total").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "counter served.total 2") {
		t.Fatalf("body %q", body)
	}
}

// TestRegistryConcurrency hammers get-or-create, updates, and snapshots
// from many goroutines; it exists to run under the race tier and to pin
// that concurrent updates are never lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Max(int64(i))
				r.Histogram("shared.hist").Observe(float64(i) * 1e-4)
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared.count"] != workers*perWorker {
		t.Fatalf("lost counter updates: %d", s.Counters["shared.count"])
	}
	if s.Gauges["shared.gauge"] != perWorker-1 {
		t.Fatalf("gauge max = %d", s.Gauges["shared.gauge"])
	}
	h := s.Histograms["shared.hist"]
	if h.Count != workers*perWorker {
		t.Fatalf("lost histogram observations: %d", h.Count)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
}
