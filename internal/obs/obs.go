// Package obs is a small, dependency-free metrics layer for observing a
// long-running deployment (paper §VI): atomic counters, gauges, and
// fixed-bucket latency histograms collected in a Registry, exported as
// mergeable Snapshots and as a plain-text /metrics page.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Counter.Inc and Histogram.Observe are single atomic
//     operations (the histogram adds a branch-free bucket search over a
//     dozen bounds); they are safe to call from the tensor kernels'
//     dispatch path millions of times per second.
//  2. No dependencies. Only the standard library; the export format is a
//     stable line-oriented text page, trivially scrapable and greppable.
//  3. Mergeable snapshots. Snapshot is a plain value; Merge sums two of
//     them, so per-shard or per-pipeline registries roll up into one
//     fleet view (and expvar can publish the JSON form directly).
//
// Metric handles are get-or-create by name: callers keep the returned
// pointer and update it lock-free; the registry lock is only taken at
// registration and snapshot time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas belong on a Gauge).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (buffer occupancy, library size).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v exceeds the current value (high-water
// marks such as peak buffer occupancy).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans 100µs to 10s in roughly 1-2.5-5 decades —
// wide enough for both a sharded matmul span and a full detect batch.
// Values are seconds, matching Histogram.ObserveSince.
var DefaultLatencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with cumulative-friendly
// semantics: an observation v lands in the first bucket whose upper bound
// is >= v, or in the implicit +Inf overflow bucket. Sum and count are
// tracked alongside, so snapshots expose the mean. Observations are
// individually atomic; a concurrent snapshot may be torn by the handful
// of observations in flight, which is irrelevant at scrape granularity.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // math.Float64bits of the running sum
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// snapshot materializes the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Package-level
// instrumentation (the tensor runtime, the core detector) registers
// here; components that want isolation (one registry per pipeline)
// construct their own and merge snapshots.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name with
// DefaultLatencyBuckets, creating it if new.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, DefaultLatencyBuckets)
}

// HistogramWith returns the histogram registered under name, creating it
// with the given bucket upper bounds if new. If the name already exists
// the existing histogram is returned and bounds are ignored (first
// registration wins).
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the materialized state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; Counts[i] is the number of
	// observations v with Bounds[i-1] < v <= Bounds[i]; the last entry is
	// the +Inf overflow bucket.
	Counts []int64 `json:"counts"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
}

// Mean returns Sum/Count, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry — a plain value, safe
// to retain, serialize (the JSON form is what expvar publishes), and
// merge with snapshots of other registries.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Merge combines two snapshots into a new one: counters and gauges sum
// (gauges from disjoint shards — e.g. per-pipeline buffer occupancy —
// add up to the fleet total), histograms with identical bounds merge
// bucket-wise. A histogram name present in both with differing bounds
// keeps s's buckets and only accumulates other's sum and count.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] += v
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = h.clone()
	}
	for k, h := range other.Histograms {
		cur, ok := out.Histograms[k]
		if !ok {
			out.Histograms[k] = h.clone()
			continue
		}
		cur.Sum += h.Sum
		cur.Count += h.Count
		if len(cur.Bounds) == len(h.Bounds) && boundsEqual(cur.Bounds, h.Bounds) {
			for i := range cur.Counts {
				cur.Counts[i] += h.Counts[i]
			}
		}
		out.Histograms[k] = cur
	}
	return out
}

func (h HistogramSnapshot) clone() HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

func boundsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteText renders the snapshot as the /metrics text page: one line per
// counter and gauge ("counter <name> <value>"), one summary line plus one
// line per non-empty bucket for each histogram. Names sort
// lexicographically within each kind, so output is stable and diffable.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d sum %g mean %g\n",
			name, h.Count, h.Sum, h.Mean()); err != nil {
			return err
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			bound := "+Inf"
			if i < len(h.Bounds) {
				bound = fmt.Sprintf("%g", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "histogram %s bucket le=%s %d\n", name, bound, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Prefixed returns a copy of the snapshot with every metric name
// prefixed. It is the building block for federating scrapes across
// processes: a front router fetches each node's JSON snapshot, merges
// the raw copies into fleet totals and the Prefixed("node.<name>.")
// copies into per-node breakdowns, all on one page.
func (s Snapshot) Prefixed(prefix string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[prefix+k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[prefix+k] = v
	}
	for k, h := range s.Histograms {
		out.Histograms[prefix+k] = h.clone()
	}
	return out
}

// ParseSnapshot decodes the JSON form of a Snapshot (what JSONHandler
// serves and expvar publishes). Nil maps are normalized to empty so the
// result is always safe to Merge.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return s, nil
}

// WriteText renders the registry's current state (see Snapshot.WriteText).
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// SnapshotJSONHandler serves a snapshot function as JSON — the
// machine-readable cross-process scrape surface (text /metrics stays the
// human one). Cluster nodes mount it at /metrics.json and the front
// router's federated scrape consumes it with ParseSnapshot.
func SnapshotJSONHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap())
	})
}

// JSONHandler serves the registry's snapshot as JSON (see
// SnapshotJSONHandler).
func (r *Registry) JSONHandler() http.Handler {
	return SnapshotJSONHandler(r.Snapshot)
}

// Handler returns the /metrics HTTP handler: the text export of the
// registry's state at request time.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}
