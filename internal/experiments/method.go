package experiments

import (
	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/lei"
	"logsynergy/internal/repr"
)

// LogSynergyMethod adapts the core model to the baselines.Method interface
// so every method runs under one protocol. Its Interp field selects the
// event-interpretation stage: the SimLLM for the full pipeline, or
// lei.Identity{} for the "w/o LEI" ablation.
type LogSynergyMethod struct {
	// Cfg is the model/training configuration.
	Cfg core.Config
	// Interp is the event interpreter (LEI or identity).
	Interp lei.Interpreter
	// DisplayName overrides Name() (used by the ablation arms).
	DisplayName string

	model *core.Model
	table *repr.EventTable
}

// NewLogSynergy returns the full method at the given config.
func NewLogSynergy(cfg core.Config, interp lei.Interpreter) *LogSynergyMethod {
	return &LogSynergyMethod{Cfg: cfg, Interp: interp, DisplayName: "LogSynergy"}
}

// Name implements baselines.Method.
func (m *LogSynergyMethod) Name() string { return m.DisplayName }

// Fit implements baselines.Method: build LEI-interpreted representations
// for every system and train under the Eq. 5 objective.
func (m *LogSynergyMethod) Fit(sc *baselines.Scenario) {
	var sources []*repr.Dataset
	for _, s := range sc.Sources {
		sources = append(sources, repr.Build(s, m.Interp, sc.Embedder))
	}
	m.table = repr.BuildEventTable(sc.TargetTrain, m.Interp, sc.Embedder)
	train := repr.BuildDataset(sc.TargetTrain, m.table)
	cfg := m.Cfg
	cfg.EmbedDim = sc.Embedder.Dim
	cfg.Seed = sc.Seed
	m.model = core.TrainModel(cfg, sources, train)
}

// Score implements baselines.Method.
func (m *LogSynergyMethod) Score(sc *baselines.Scenario) []float64 {
	test := repr.BuildDataset(sc.TargetTest, m.table)
	return m.model.Score(test.X, 256)
}

// Model exposes the trained model (diagnostics, Fig. 8 case study).
func (m *LogSynergyMethod) Model() *core.Model { return m.model }

// AllMethods returns the paper's full method roster in table order:
// the nine baselines followed by LogSynergy.
func AllMethods(cfg core.Config, interp lei.Interpreter) []baselines.Method {
	return []baselines.Method{
		baselines.NewDeepLog(),
		baselines.NewLogAnomaly(),
		baselines.NewPLELog(),
		baselines.NewSpikeLog(),
		baselines.NewNeuralLog(),
		baselines.NewLogRobust(),
		baselines.NewPreLog(),
		baselines.NewLogTAD(),
		baselines.NewLogTransfer(),
		baselines.NewMetaLog(),
		NewLogSynergy(cfg, interp),
	}
}

// Table exposes the target event table (diagnostics).
func (m *LogSynergyMethod) Table() *repr.EventTable { return m.table }
