// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV–§VI): the dataset statistics (Table III), the overall
// comparisons (Tables IV and V), the hyper-parameter sensitivity curves
// (Fig. 4), the ablations (Fig. 5), the cross-group transfer study
// (Fig. 6), the deployment workflow measurements (§VI) and the Fig. 8
// case study. Each experiment returns a typed result with a text rendering
// that mirrors the paper's presentation.
package experiments

import (
	"fmt"
	"sync"

	"logsynergy/internal/baselines"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/window"
)

// Scale fixes the experiment sizes. The paper's protocol uses n_s = 50,000
// sequences per source and n_t = 5,000 target sequences on a V100; the CPU
// scale keeps every ratio (n_s : n_t = 10 : 1, window 10/5, anomaly rates)
// at 1/12.5 of the paper's sample counts so the full suite runs on a
// laptop core in minutes.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// SourceSeqs is n_s, the per-source training sequence count.
	SourceSeqs int
	// TargetSeqs is n_t, the target training sequence count.
	TargetSeqs int
	// TestSeqs caps the target test set size.
	TestSeqs int
	// SparseTestFactor multiplies TestSeqs for targets whose anomaly rate
	// is under 0.5% (Systems A and B), so their F1 estimates rest on more
	// than a handful of anomalous windows. 0 means 1.
	SparseTestFactor float64
	// EmbedDim is the event-embedding width.
	EmbedDim int
	// Seed drives corpus generation and every method's randomness.
	Seed int64
}

// CPUScale is the reference CPU scale (used by cmd/experiments -scale cpu).
func CPUScale() Scale {
	return Scale{Name: "cpu-1/12.5", SourceSeqs: 4000, TargetSeqs: 400, TestSeqs: 4000, SparseTestFactor: 2.5, EmbedDim: 32, Seed: 7}
}

// BenchScale is the default for `go test -bench`: half the CPU scale's
// source budget so the full table+figure suite completes on one core in
// about an hour, while staying above every method's operating point.
func BenchScale() Scale {
	return Scale{Name: "bench-1/25", SourceSeqs: 2000, TargetSeqs: 400, TestSeqs: 2500, SparseTestFactor: 2.5, EmbedDim: 32, Seed: 7}
}

// SmokeScale is a tiny scale for -short runs and CI smoke tests.
func SmokeScale() Scale {
	return Scale{Name: "smoke", SourceSeqs: 800, TargetSeqs: 150, TestSeqs: 800, EmbedDim: 24, Seed: 7}
}

// PaperScale reproduces the paper's sample counts (n_s=50,000, n_t=5,000).
// Running it on CPU takes hours per cell; it exists so the exact protocol
// is one flag away.
func PaperScale() Scale {
	return Scale{Name: "paper", SourceSeqs: 50000, TargetSeqs: 5000, TestSeqs: 50000, EmbedDim: 64, Seed: 7}
}

// maxSourceFactor is the largest n_s multiplier swept by Fig. 4b.
const maxSourceFactor = 1.6

// maxTargetFactor is the largest n_t multiplier swept by Fig. 4c.
const maxTargetFactor = 2.0

// Lab caches generated corpora and shared pipeline assets across
// experiments within one process.
type Lab struct {
	Scale    Scale
	Embedder *embed.Embedder
	Interp   *lei.SimLLM

	mu    sync.Mutex
	cache map[string]*logdata.Sequences
}

// NewLab creates a lab at the given scale.
func NewLab(scale Scale) *Lab {
	return &Lab{
		Scale:    scale,
		Embedder: embed.New(scale.EmbedDim),
		Interp:   lei.NewSimLLM(lei.Config{}),
		cache:    make(map[string]*logdata.Sequences),
	}
}

// sparseFactor returns the test-size multiplier (at least 1).
func (l *Lab) sparseFactor() float64 {
	if l.Scale.SparseTestFactor > 1 {
		return l.Scale.SparseTestFactor
	}
	return 1
}

// linesFor returns how many raw lines to generate for one system so that
// it can serve as the largest swept source and as a target with train +
// test slices (including the enlarged sparse-target test slice).
func (l *Lab) linesFor() int {
	asSource := int(float64(l.Scale.SourceSeqs) * maxSourceFactor)
	asTarget := int(float64(l.Scale.TargetSeqs)*maxTargetFactor) +
		int(float64(l.Scale.TestSeqs)*l.sparseFactor())
	seqs := asSource
	if asTarget > seqs {
		seqs = asTarget
	}
	cfg := window.Default()
	return (seqs-1)*cfg.Step + cfg.Length + 1
}

// sparseTargets marks the datasets whose anomaly rate sits under 0.5%
// (Table III: Systems A and B).
var sparseTargets = map[string]bool{"SystemA": true, "SystemB": true}

// testSeqsFor returns the test-slice size for one target.
func (l *Lab) testSeqsFor(target string) int {
	if sparseTargets[target] {
		return int(float64(l.Scale.TestSeqs) * l.sparseFactor())
	}
	return l.Scale.TestSeqs
}

// Sequences returns the cached windowed dataset for one system.
func (l *Lab) Sequences(name string) *logdata.Sequences {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.cache[name]; ok {
		return s
	}
	spec, ok := logdata.Systems()[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown system %q", name))
	}
	lines := l.linesFor()
	s := logdata.Build(spec, l.Scale.Seed+int64(len(name)*131), float64(lines)/float64(spec.Lines), window.Default())
	l.cache[name] = s
	return s
}

// Scenario assembles the evaluation setting for one target within a group,
// with explicit n_s and n_t (pass 0 to use the scale defaults).
func (l *Lab) Scenario(group []string, target string, ns, nt int) *baselines.Scenario {
	if ns <= 0 {
		ns = l.Scale.SourceSeqs
	}
	if nt <= 0 {
		nt = l.Scale.TargetSeqs
	}
	var sources []*logdata.Sequences
	for _, name := range group {
		if name == target {
			continue
		}
		sources = append(sources, l.Sequences(name).Head(ns))
	}
	tgt := l.Sequences(target)
	train, rest := tgt.SplitTrainTest(nt)
	test := rest.Head(l.testSeqsFor(target))
	return &baselines.Scenario{
		Sources:     sources,
		TargetTrain: train,
		TargetTest:  test,
		Embedder:    l.Embedder,
		Seed:        l.Scale.Seed,
	}
}

// PublicNames lists the Table IV group.
func PublicNames() []string { return []string{"BGL", "Spirit", "Thunderbird"} }

// ISPNames lists the Table V group.
func ISPNames() []string { return []string{"SystemA", "SystemB", "SystemC"} }

// GroupFor returns the group containing the target system.
func GroupFor(target string) []string {
	for _, n := range PublicNames() {
		if n == target {
			return PublicNames()
		}
	}
	return ISPNames()
}
