package experiments

import (
	"fmt"
	"strings"
	"time"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/metrics"
)

// Cell is one method×target evaluation outcome.
type Cell struct {
	Method  string
	Target  string
	Result  metrics.Result
	Elapsed time.Duration
}

// ComparisonTable is the result of a Table IV/V style experiment.
type ComparisonTable struct {
	// Title names the table ("Table IV", "Table V").
	Title string
	// Targets are the column systems, in order.
	Targets []string
	// Methods are the row methods, in order.
	Methods []string
	// Cells holds every evaluated cell.
	Cells map[string]map[string]Cell // method -> target -> cell
}

// Get returns one cell.
func (t *ComparisonTable) Get(method, target string) Cell {
	return t.Cells[method][target]
}

// Render prints the table in the paper's layout (P/R/F1 per target).
func (t *ComparisonTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-22s", "Method")
	for _, tgt := range t.Targets {
		fmt.Fprintf(&b, " | %-26s", tgt+" P%/R%/F1%")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 22+len(t.Targets)*29))
	b.WriteByte('\n')
	for _, m := range t.Methods {
		fmt.Fprintf(&b, "%-22s", m)
		for _, tgt := range t.Targets {
			c := t.Get(m, tgt)
			fmt.Fprintf(&b, " | %7.2f %7.2f %8.2f ",
				100*c.Result.Precision, 100*c.Result.Recall, 100*c.Result.F1)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BestF1PerTarget returns the winning method per target column.
func (t *ComparisonTable) BestF1PerTarget() map[string]string {
	out := make(map[string]string)
	for _, tgt := range t.Targets {
		best, bestF1 := "", -1.0
		for _, m := range t.Methods {
			if f := t.Get(m, tgt).Result.F1; f > bestF1 {
				best, bestF1 = m, f
			}
		}
		out[tgt] = best
	}
	return out
}

// RunComparison evaluates every method on every target of a group — the
// engine behind Tables IV and V. Each target uses the other group members
// as sources, exactly as in §IV-A1.
func (l *Lab) RunComparison(title string, group []string, cfg core.Config) *ComparisonTable {
	table := &ComparisonTable{
		Title:   title,
		Targets: group,
		Cells:   make(map[string]map[string]Cell),
	}
	for _, target := range group {
		sc := l.Scenario(group, target, 0, 0)
		for _, m := range AllMethods(cfg, l.Interp) {
			start := time.Now()
			res := baselines.Evaluate(m, sc)
			cell := Cell{Method: m.Name(), Target: target, Result: res, Elapsed: time.Since(start)}
			if table.Cells[m.Name()] == nil {
				table.Cells[m.Name()] = make(map[string]Cell)
				table.Methods = append(table.Methods, m.Name())
			}
			table.Cells[m.Name()][target] = cell
		}
	}
	return table
}

// Table4 reproduces Table IV: overall performance on the public datasets.
func (l *Lab) Table4(cfg core.Config) *ComparisonTable {
	return l.RunComparison("Table IV: P/R/F1 on BGL, Spirit, Thunderbird", PublicNames(), cfg)
}

// Table5 reproduces Table V: overall performance on the ISP datasets.
func (l *Lab) Table5(cfg core.Config) *ComparisonTable {
	return l.RunComparison("Table V: P/R/F1 on System A, System B, System C", ISPNames(), cfg)
}

// DatasetStat is one Table III row.
type DatasetStat struct {
	Name         string
	Logs         int
	Sequences    int
	Anomalies    int
	AnomalyRate  float64
	PaperLogs    int
	PaperSeqs    int
	PaperAnoms   int
	PaperAnomPct float64
}

// Table3 reproduces Table III: per-dataset statistics at the lab's scale,
// next to the paper's full-scale numbers.
func (l *Lab) Table3() []DatasetStat {
	paper := map[string][3]int{
		"BGL":         {1356817, 271362, 29092},
		"Spirit":      {4783733, 956745, 8857},
		"Thunderbird": {700005, 140000, 5946},
		"SystemA":     {2166422, 433014, 886},
		"SystemB":     {877444, 175481, 296},
		"SystemC":     {691433, 137258, 5170},
	}
	var out []DatasetStat
	for _, name := range append(PublicNames(), ISPNames()...) {
		s := l.Sequences(name)
		p := paper[name]
		stat := DatasetStat{
			Name:         name,
			Logs:         (len(s.Samples)-1)*5 + 10,
			Sequences:    len(s.Samples),
			Anomalies:    s.NumAnomalous(),
			PaperLogs:    p[0],
			PaperSeqs:    p[1],
			PaperAnoms:   p[2],
			PaperAnomPct: 100 * float64(p[2]) / float64(p[1]),
		}
		stat.AnomalyRate = 100 * float64(stat.Anomalies) / float64(stat.Sequences)
		out = append(out, stat)
	}
	return out
}

// RenderTable3 prints the Table III reproduction.
func RenderTable3(stats []DatasetStat) string {
	var b strings.Builder
	b.WriteString("Table III: dataset statistics (this scale vs paper)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %8s | %10s %10s %10s %8s\n",
		"Dataset", "logs", "seqs", "anoms", "anom%", "paperLogs", "paperSeqs", "paperAnom", "paper%")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %10d %10d %10d %8.2f | %10d %10d %10d %8.2f\n",
			s.Name, s.Logs, s.Sequences, s.Anomalies, s.AnomalyRate,
			s.PaperLogs, s.PaperSeqs, s.PaperAnoms, s.PaperAnomPct)
	}
	return b.String()
}
