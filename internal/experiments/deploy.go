package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/logdata"
	"logsynergy/internal/metrics"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/window"
)

// DeploymentResult captures the §VI workflow measurements: throughput,
// pattern-library effectiveness and report volume, with and without the
// pattern library.
type DeploymentResult struct {
	Target string
	// WithLibrary and WithoutLibrary hold the two runs' stats.
	WithLibrary    pipeline.Stats
	WithoutLibrary pipeline.Stats
	// HitRate is the pattern-library hit fraction.
	HitRate float64
	// SpeedupX is wall-clock(without) / wall-clock(with).
	SpeedupX float64
	// WithDuration and WithoutDuration are the wall-clock times.
	WithDuration, WithoutDuration time.Duration

	// §VI-C: the incumbent rule-based practice vs LogSynergy on the same
	// held-out slice. Rules are precise but only catch predefined
	// anomalies; the paper's deployment replaced them for exactly this
	// recall gap.
	LogSynergyResult metrics.Result
	RuleBasedResult  metrics.Result
	NumRules         int
}

// Render prints the deployment study.
func (d *DeploymentResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deployment workflow (target %s, §VI)\n", d.Target)
	fmt.Fprintf(&b, "  lines=%d sequences=%d new-online-events=%d\n",
		d.WithLibrary.LinesCollected, d.WithLibrary.SequencesFormed, d.WithLibrary.NewEvents)
	fmt.Fprintf(&b, "  pattern library: hits=%d misses=%d hit-rate=%.1f%%\n",
		d.WithLibrary.PatternHits, d.WithLibrary.PatternMisses, 100*d.HitRate)
	fmt.Fprintf(&b, "  anomalies reported: with-library=%d without=%d\n",
		d.WithLibrary.Anomalies, d.WithoutLibrary.Anomalies)
	fmt.Fprintf(&b, "  wall clock: with=%s without=%s speedup=%.1fx\n",
		d.WithDuration.Round(time.Millisecond), d.WithoutDuration.Round(time.Millisecond), d.SpeedupX)
	fmt.Fprintf(&b, "  §VI-C vs rule-based (%d rules): LogSynergy %s | rules %s\n",
		d.NumRules, d.LogSynergyResult, d.RuleBasedResult)
	return b.String()
}

// Deployment trains a detector for the target system and replays a live
// stream through the full production pipeline twice — with and without the
// pattern library — measuring the §VI workflow properties.
func (l *Lab) Deployment(cfg core.Config, target string, liveLines int) *DeploymentResult {
	group := GroupFor(target)
	spec := logdata.Systems()[target]

	// Offline phase: train on the standard scenario, but parse the target
	// with a dedicated parser we keep for the online phase.
	parser := drain.NewDefault()
	offline := logdata.Generate(spec, l.Scale.Seed+int64(len(target)*131), l.linesFor())
	parsed := logdata.Parse(offline, parser)
	tgtSeqs := parsed.Windows(window.Default())
	train, rest := tgtSeqs.SplitTrainTest(l.Scale.TargetSeqs)
	holdout := rest.Head(l.testSeqsFor(target))

	var sources []*repr.Dataset
	for _, name := range group {
		if name == target {
			continue
		}
		sources = append(sources, repr.Build(l.Sequences(name).Head(l.Scale.SourceSeqs), l.Interp, l.Embedder))
	}
	table := repr.BuildEventTable(train, l.Interp, l.Embedder)
	cfg.EmbedDim = l.Embedder.Dim
	model := core.TrainModel(cfg, sources, repr.BuildDataset(train, table))

	// Online phase: fresh traffic from the same system.
	live := logdata.Generate(spec, l.Scale.Seed+991, liveLines)

	run := func(disable bool) (pipeline.Stats, time.Duration) {
		// Clone the parser state by replaying the offline corpus into a
		// fresh parser, so both runs start from identical template spaces.
		p := drain.NewDefault()
		for _, line := range offline.Lines {
			p.Parse(line.Message)
		}
		tableCopy := repr.BuildEventTable(train, l.Interp, l.Embedder)
		det := core.NewDetector(model, tableCopy)
		pcfg := pipeline.DefaultConfig(repr.SystemHint(target))
		pcfg.DisablePatternLibrary = disable
		sink := &pipeline.MemorySink{}
		pl := pipeline.New(pcfg, p, det, l.Interp, l.Embedder, sink)
		start := time.Now()
		stats := pl.Run(context.Background(), pipeline.NewSliceSource(live.Messages()))
		return stats, time.Since(start)
	}

	withStats, withDur := run(false)
	withoutStats, withoutDur := run(true)

	// §VI-C: incumbent rule-based practice on the same held-out slice.
	testTable := repr.BuildEventTable(holdout, l.Interp, l.Embedder)
	testSet := repr.BuildDataset(holdout, testTable)
	lsResult := core.EvaluateDataset(model, testSet)
	sc := &baselines.Scenario{
		TargetTrain: train,
		TargetTest:  holdout,
		Embedder:    l.Embedder,
		Seed:        l.Scale.Seed,
	}
	rb := baselines.NewRuleBased()
	rbResult := baselines.Evaluate(rb, sc)

	res := &DeploymentResult{
		Target:           target,
		WithLibrary:      withStats,
		WithoutLibrary:   withoutStats,
		WithDuration:     withDur,
		WithoutDuration:  withoutDur,
		LogSynergyResult: lsResult,
		RuleBasedResult:  rbResult,
		NumRules:         rb.NumRules(),
	}
	if total := withStats.PatternHits + withStats.PatternMisses; total > 0 {
		res.HitRate = float64(withStats.PatternHits) / float64(total)
	}
	if withDur > 0 {
		res.SpeedupX = float64(withoutDur) / float64(withDur)
	}
	return res
}
