package experiments

import (
	"strings"
	"testing"

	"logsynergy/internal/core"
)

func smokeConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Epochs = 4
	return cfg
}

func TestTable3Shapes(t *testing.T) {
	lab := NewLab(SmokeScale())
	stats := lab.Table3()
	if len(stats) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(stats))
	}
	rates := make(map[string]float64)
	for _, s := range stats {
		if s.Sequences == 0 || s.Logs == 0 {
			t.Fatalf("%s: empty dataset", s.Name)
		}
		rates[s.Name] = s.AnomalyRate
	}
	// Relative ordering from Table III: BGL has by far the highest rate;
	// SystemA/SystemB the lowest.
	if rates["BGL"] < rates["Spirit"] || rates["BGL"] < rates["SystemA"] {
		t.Errorf("BGL must have the highest anomaly rate: %v", rates)
	}
	if rates["SystemB"] > rates["Thunderbird"] {
		t.Errorf("SystemB must be rarer than Thunderbird: %v", rates)
	}
	out := RenderTable3(stats)
	if !strings.Contains(out, "BGL") || !strings.Contains(out, "paperSeqs") {
		t.Fatalf("render missing columns: %s", out)
	}
}

func TestCaseStudyShape(t *testing.T) {
	lab := NewLab(SmokeScale())
	cs := lab.CaseStudy()
	if cs.RawSimilarity <= cs.InterpretedSimilarity {
		t.Fatalf("Fig. 8 requires raw similarity (%.3f) > interpreted similarity (%.3f)",
			cs.RawSimilarity, cs.InterpretedSimilarity)
	}
	if cs.NormalInterpretation == "" || cs.AnomalousInterpretation == "" {
		t.Fatal("interpretations must be non-empty")
	}
	if !strings.Contains(cs.Render(), "cosine") {
		t.Fatal("render incomplete")
	}
}

func TestScenarioConstruction(t *testing.T) {
	lab := NewLab(SmokeScale())
	sc := lab.Scenario(PublicNames(), "BGL", 0, 0)
	if len(sc.Sources) != 2 {
		t.Fatalf("want 2 sources, got %d", len(sc.Sources))
	}
	for _, s := range sc.Sources {
		if s.System == "BGL" {
			t.Fatal("target must not appear among sources")
		}
		if len(s.Samples) != lab.Scale.SourceSeqs {
			t.Fatalf("source slice %d, want %d", len(s.Samples), lab.Scale.SourceSeqs)
		}
	}
	if len(sc.TargetTrain.Samples) != lab.Scale.TargetSeqs {
		t.Fatalf("target train %d, want %d", len(sc.TargetTrain.Samples), lab.Scale.TargetSeqs)
	}
	if len(sc.TargetTest.Samples) == 0 {
		t.Fatal("empty test set")
	}
}

func TestSequencesCached(t *testing.T) {
	lab := NewLab(SmokeScale())
	if lab.Sequences("BGL") != lab.Sequences("BGL") {
		t.Fatal("corpora must be cached")
	}
}

func TestGroupFor(t *testing.T) {
	if GroupFor("Spirit")[0] != "BGL" {
		t.Fatal("Spirit belongs to the public group")
	}
	if GroupFor("SystemC")[0] != "SystemA" {
		t.Fatal("SystemC belongs to the ISP group")
	}
}

func TestLogSynergyMethodSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	lab := NewLab(SmokeScale())
	sc := lab.Scenario(PublicNames(), "Thunderbird", 0, 0)
	m := NewLogSynergy(smokeConfig(), lab.Interp)
	m.Fit(sc)
	scores := m.Score(sc)
	if len(scores) != len(sc.TargetTest.Samples) {
		t.Fatalf("%d scores for %d sequences", len(scores), len(sc.TargetTest.Samples))
	}
}

func TestComparisonTableRender(t *testing.T) {
	tbl := &ComparisonTable{
		Title:   "test",
		Targets: []string{"X"},
		Methods: []string{"m1"},
		Cells: map[string]map[string]Cell{
			"m1": {"X": {Method: "m1", Target: "X"}},
		},
	}
	out := tbl.Render()
	if !strings.Contains(out, "m1") || !strings.Contains(out, "X") {
		t.Fatalf("render: %s", out)
	}
	if tbl.BestF1PerTarget()["X"] != "m1" {
		t.Fatal("best-of must pick the only method")
	}
}

func TestDeploymentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	lab := NewLab(SmokeScale())
	cfg := smokeConfig()
	cfg.Epochs = 2
	res := lab.Deployment(cfg, "SystemB", 2000)
	if res.WithLibrary.SequencesFormed == 0 {
		t.Fatal("no sequences processed")
	}
	if res.HitRate <= 0 {
		t.Fatal("pattern library must get hits on repetitive traffic")
	}
	if res.WithoutLibrary.PatternHits != 0 {
		t.Fatal("disabled library must not hit")
	}
	if !strings.Contains(res.Render(), "hit-rate") {
		t.Fatal("render incomplete")
	}
}
