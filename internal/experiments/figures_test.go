package experiments

import (
	"strings"
	"testing"

	"logsynergy/internal/core"
)

func TestSparseTestSizing(t *testing.T) {
	lab := NewLab(CPUScale())
	if lab.testSeqsFor("SystemA") <= lab.testSeqsFor("Thunderbird") {
		t.Fatal("sparse targets must get enlarged test slices")
	}
	noFactor := CPUScale()
	noFactor.SparseTestFactor = 0
	lab2 := NewLab(noFactor)
	if lab2.testSeqsFor("SystemA") != noFactor.TestSeqs {
		t.Fatal("factor 0 must mean no enlargement")
	}
}

func TestSweepStepsShape(t *testing.T) {
	if len(sweepSteps) < 5 {
		t.Fatal("sweeps need enough points to show saturation")
	}
	for i := 1; i < len(sweepSteps); i++ {
		if sweepSteps[i] <= sweepSteps[i-1] {
			t.Fatal("sweep steps must increase")
		}
	}
	if sweepSteps[0] != 1 || sweepSteps[len(sweepSteps)-1] != 8 {
		t.Fatalf("sweep must span 0.2x..1.6x, got %v", sweepSteps)
	}
}

func TestSweepRender(t *testing.T) {
	s := &Sweep{
		Title:  "test",
		XLabel: "x",
		Curves: []SweepResult{
			{Target: "A", Points: []SweepPoint{{X: 1, F1: 0.5}, {X: 2, F1: 0.7}}},
			{Target: "B", Points: []SweepPoint{{X: 1, F1: 0.1}, {X: 2, F1: 0.2}}},
		},
	}
	out := s.Render()
	if !strings.Contains(out, "A") || !strings.Contains(out, "70.00") {
		t.Fatalf("render: %s", out)
	}
}

func TestFig6SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	lab := NewLab(SmokeScale())
	cfg := core.DefaultConfig()
	cfg.Epochs = 3
	ct := lab.Fig6(cfg)
	if len(ct.Cells) != 4 {
		t.Fatalf("Fig6 must produce 4 transfers, got %d", len(ct.Cells))
	}
	pairs := map[string]string{
		"BGL": "SystemB", "Spirit": "SystemC", "SystemB": "BGL", "SystemC": "Spirit",
	}
	for _, c := range ct.Cells {
		if pairs[c.Source] != c.Target {
			t.Fatalf("unexpected pair %s->%s", c.Source, c.Target)
		}
		if c.F1 < 0 || c.F1 > 1 {
			t.Fatalf("F1 out of range: %v", c.F1)
		}
	}
	if !strings.Contains(ct.Render(), "BGL") {
		t.Fatal("render incomplete")
	}
}

func TestLabelNoiseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	lab := NewLab(SmokeScale())
	cfg := core.DefaultConfig()
	cfg.Epochs = 3
	res := lab.LabelNoise(cfg, "Thunderbird", []float64{0, 0.4})
	if len(res.Points) != 2 {
		t.Fatalf("points: %d", len(res.Points))
	}
	if res.WorkflowErrorRate <= 0 || res.WorkflowErrorRate > 0.2 {
		t.Fatalf("workflow error rate %.3f implausible", res.WorkflowErrorRate)
	}
	if !strings.Contains(res.Render(), "noise rate") {
		t.Fatal("render incomplete")
	}
}
