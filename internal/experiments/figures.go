package experiments

import (
	"fmt"
	"strings"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
)

// SweepPoint is one (x, F1) sample of a sensitivity curve.
type SweepPoint struct {
	X  float64
	F1 float64
}

// SweepResult is one target system's curve.
type SweepResult struct {
	Target string
	Points []SweepPoint
}

// Sweep is a full Fig. 4 style experiment: one curve per target system.
type Sweep struct {
	Title  string
	XLabel string
	Curves []SweepResult
}

// Render prints the sweep as an x-by-target F1 matrix.
func (s *Sweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (F1%% by %s)\n", s.Title, s.XLabel)
	fmt.Fprintf(&b, "%-12s", s.XLabel)
	for _, c := range s.Curves {
		fmt.Fprintf(&b, " %12s", c.Target)
	}
	b.WriteByte('\n')
	if len(s.Curves) == 0 {
		return b.String()
	}
	for i := range s.Curves[0].Points {
		fmt.Fprintf(&b, "%-12g", s.Curves[0].Points[i].X)
		for _, c := range s.Curves {
			fmt.Fprintf(&b, " %12.2f", 100*c.Points[i].F1)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trainAndScore runs LogSynergy once on a scenario and returns its F1.
func (l *Lab) trainAndScore(sc *baselines.Scenario, cfg core.Config) float64 {
	m := NewLogSynergy(cfg, l.Interp)
	return baselines.Evaluate(m, sc).F1
}

// Fig4a reproduces the λ_MI sensitivity study over every target system
// (paper values: 0.001, 0.01, 0.05, 0.1, 0.5).
func (l *Lab) Fig4a(cfg core.Config, targets []string) *Sweep {
	lambdas := []float64{0.001, 0.01, 0.05, 0.1, 0.5}
	sweep := &Sweep{Title: "Fig. 4a: lambda_MI sensitivity", XLabel: "lambda_MI"}
	for _, target := range targets {
		sc := l.Scenario(GroupFor(target), target, 0, 0)
		curve := SweepResult{Target: target}
		for _, lam := range lambdas {
			c := cfg
			c.LambdaMI = lam
			curve.Points = append(curve.Points, SweepPoint{X: lam, F1: l.trainAndScore(sc, c)})
		}
		sweep.Curves = append(sweep.Curves, curve)
	}
	return sweep
}

// Fig4b reproduces the n_s sensitivity study: the paper sweeps the source
// sample count from 10,000 to 80,000 in steps of 10,000 around the default
// 50,000; this sweeps the same 0.2×–1.6× multipliers of the scale's n_s.
func (l *Lab) Fig4b(cfg core.Config, targets []string) *Sweep {
	sweep := &Sweep{Title: "Fig. 4b: n_s sensitivity", XLabel: "n_s"}
	for _, target := range targets {
		curve := SweepResult{Target: target}
		for _, step := range sweepSteps {
			ns := l.Scale.SourceSeqs * step / 5 // 0.2x .. 1.6x
			sc := l.Scenario(GroupFor(target), target, ns, 0)
			curve.Points = append(curve.Points, SweepPoint{X: float64(ns), F1: l.trainAndScore(sc, cfg)})
		}
		sweep.Curves = append(sweep.Curves, curve)
	}
	return sweep
}

// sweepSteps are the n_s/n_t multipliers (in fifths of the default) the
// Fig. 4b/4c sweeps sample: 0.2×–1.6×, matching the paper's 10k–80k span
// around its 50k default with six of the paper's eight grid points.
var sweepSteps = []int{1, 2, 3, 4, 6, 8}

// Fig4c reproduces the n_t sensitivity study: the paper sweeps the target
// sample count from 1,000 to 8,000 in steps of 1,000 around the default
// 5,000; this sweeps the same 0.2×–1.6× multipliers of the scale's n_t.
func (l *Lab) Fig4c(cfg core.Config, targets []string) *Sweep {
	sweep := &Sweep{Title: "Fig. 4c: n_t sensitivity", XLabel: "n_t"}
	for _, target := range targets {
		curve := SweepResult{Target: target}
		for _, step := range sweepSteps {
			nt := l.Scale.TargetSeqs * step / 5
			sc := l.Scenario(GroupFor(target), target, 0, nt)
			curve.Points = append(curve.Points, SweepPoint{X: float64(nt), F1: l.trainAndScore(sc, cfg)})
		}
		sweep.Curves = append(sweep.Curves, curve)
	}
	return sweep
}

// AblationRow is one target's Fig. 5 outcome.
type AblationRow struct {
	Target         string
	Full           float64
	WithoutLEI     float64
	WithoutSUFE    float64
	DirectNeural   float64
	FullResult     string
	AblationDeltas string
}

// Ablation is the Fig. 5 experiment result.
type Ablation struct {
	Rows []AblationRow
}

// Render prints Fig. 5 as an F1 matrix.
func (a *Ablation) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5: ablation study (F1%)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %16s\n", "Target", "LogSynergy", "w/o LEI", "w/o SUFE", "direct NeuralLog")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f %12.2f %16.2f\n",
			r.Target, 100*r.Full, 100*r.WithoutLEI, 100*r.WithoutSUFE, 100*r.DirectNeural)
	}
	return b.String()
}

// Fig5 reproduces the ablation study: LogSynergy vs LogSynergy w/o LEI vs
// LogSynergy w/o SUFE vs direct application of NeuralLog (§IV-D).
func (l *Lab) Fig5(cfg core.Config, targets []string) *Ablation {
	out := &Ablation{}
	for _, target := range targets {
		sc := l.Scenario(GroupFor(target), target, 0, 0)

		full := NewLogSynergy(cfg, l.Interp)
		fullF1 := baselines.Evaluate(full, sc).F1

		noLEI := NewLogSynergy(cfg, lei.Identity{})
		noLEI.DisplayName = "LogSynergy w/o LEI"
		noLEIF1 := baselines.Evaluate(noLEI, sc).F1

		cfgNoSUFE := cfg
		cfgNoSUFE.UseSUFE = false
		noSUFE := NewLogSynergy(cfgNoSUFE, l.Interp)
		noSUFE.DisplayName = "LogSynergy w/o SUFE"
		noSUFEF1 := baselines.Evaluate(noSUFE, sc).F1

		direct := baselines.NewNeuralLog()
		direct.SourceOnly = true
		directF1 := baselines.Evaluate(direct, sc).F1

		out.Rows = append(out.Rows, AblationRow{
			Target:       target,
			Full:         fullF1,
			WithoutLEI:   noLEIF1,
			WithoutSUFE:  noSUFEF1,
			DirectNeural: directF1,
		})
	}
	return out
}

// TransferCell is one Fig. 6 source→target evaluation.
type TransferCell struct {
	Source, Target string
	Precision      float64
	Recall         float64
	F1             float64
}

// CrossTransfer is the Fig. 6 experiment result.
type CrossTransfer struct {
	Cells []TransferCell
}

// Render prints Fig. 6's four transfers.
func (c *CrossTransfer) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6: cross-group transfer (single source -> target)\n")
	fmt.Fprintf(&b, "%-12s %-12s %8s %8s %8s\n", "Source", "Target", "P%", "R%", "F1%")
	for _, cell := range c.Cells {
		fmt.Fprintf(&b, "%-12s %-12s %8.2f %8.2f %8.2f\n",
			cell.Source, cell.Target, 100*cell.Precision, 100*cell.Recall, 100*cell.F1)
	}
	return b.String()
}

// Fig6 reproduces the §V lesson-learned study: rich supercomputer logs
// transfer well to the simpler ISP systems, but not the reverse. The four
// transfers are BGL→SystemB, Spirit→SystemC, SystemB→BGL, SystemC→Spirit,
// each with a single source system.
func (l *Lab) Fig6(cfg core.Config) *CrossTransfer {
	pairs := [][2]string{
		{"BGL", "SystemB"},
		{"Spirit", "SystemC"},
		{"SystemB", "BGL"},
		{"SystemC", "Spirit"},
	}
	out := &CrossTransfer{}
	for _, p := range pairs {
		source, target := p[0], p[1]
		tgt := l.Sequences(target)
		train, rest := tgt.SplitTrainTest(l.Scale.TargetSeqs)
		scenario := &baselines.Scenario{
			Sources:     []*logdata.Sequences{l.Sequences(source).Head(l.Scale.SourceSeqs)},
			TargetTrain: train,
			TargetTest:  rest.Head(l.testSeqsFor(target)),
			Embedder:    l.Embedder,
			Seed:        l.Scale.Seed,
		}
		m := NewLogSynergy(cfg, l.Interp)
		res := baselines.Evaluate(m, scenario)
		out.Cells = append(out.Cells, TransferCell{
			Source: source, Target: target,
			Precision: res.Precision, Recall: res.Recall, F1: res.F1,
		})
	}
	return out
}
