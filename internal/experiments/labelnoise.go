package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"logsynergy/internal/baselines"
	"logsynergy/internal/core"
	"logsynergy/internal/labeling"
	"logsynergy/internal/logdata"
)

// LabelNoisePoint is one (noise rate, F1) sample.
type LabelNoisePoint struct {
	Rate float64
	F1   float64
}

// LabelNoiseResult is the §IV-E1 external-threat study: LogSynergy trained
// on corrupted labels (mislabeled anomalies from low-quality logs), plus
// the realistic two-operator annotation workflow as a reference point.
type LabelNoiseResult struct {
	Target string
	// Points sweeps blunt symmetric label noise on all training data.
	Points []LabelNoisePoint
	// WorkflowF1 trains on labels produced by the §VI-B1 two-operator +
	// adjudicator workflow (realistic annotation quality).
	WorkflowF1 float64
	// WorkflowErrorRate is that workflow's label error rate.
	WorkflowErrorRate float64
}

// Render prints the study.
func (r *LabelNoiseResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Label-quality threat study (§IV-E1), target %s\n", r.Target)
	fmt.Fprintf(&b, "%-12s %8s\n", "noise rate", "F1%")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12.2f %8.2f\n", p.Rate, 100*p.F1)
	}
	fmt.Fprintf(&b, "two-operator workflow (err %.2f%%): F1 %.2f%%\n",
		100*r.WorkflowErrorRate, 100*r.WorkflowF1)
	return b.String()
}

// noisyTrainSequences returns a copy of seqs with flipped labels.
func noisyTrainSequences(seqs *logdata.Sequences, labels []bool) *logdata.Sequences {
	out := &logdata.Sequences{System: seqs.System, Templates: seqs.Templates}
	out.Samples = make([]logdata.Sample, len(seqs.Samples))
	copy(out.Samples, seqs.Samples)
	for i := range out.Samples {
		out.Samples[i].Label = labels[i]
	}
	return out
}

// labelsOf extracts the ground-truth labels.
func labelsOf(seqs *logdata.Sequences) []bool {
	out := make([]bool, len(seqs.Samples))
	for i, s := range seqs.Samples {
		out[i] = s.Label
	}
	return out
}

// LabelNoise sweeps training-label corruption for one target system.
func (l *Lab) LabelNoise(cfg core.Config, target string, rates []float64) *LabelNoiseResult {
	sc := l.Scenario(GroupFor(target), target, 0, 0)
	res := &LabelNoiseResult{Target: target}

	runWith := func(corrupt func([]bool, *rand.Rand) []bool, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		noisy := &baselines.Scenario{
			TargetTrain: noisyTrainSequences(sc.TargetTrain, corrupt(labelsOf(sc.TargetTrain), rng)),
			TargetTest:  sc.TargetTest,
			Embedder:    sc.Embedder,
			Seed:        sc.Seed,
		}
		for _, src := range sc.Sources {
			noisy.Sources = append(noisy.Sources,
				noisyTrainSequences(src, corrupt(labelsOf(src), rng)))
		}
		m := NewLogSynergy(cfg, l.Interp)
		return baselines.Evaluate(m, noisy).F1
	}

	for _, rate := range rates {
		rate := rate
		f1 := runWith(func(labels []bool, rng *rand.Rand) []bool {
			return labeling.InjectNoise(rng, labels, rate)
		}, 1000+int64(rate*1e4))
		res.Points = append(res.Points, LabelNoisePoint{Rate: rate, F1: f1})
	}

	// Realistic annotation: the §VI-B1 workflow.
	proc := labeling.DefaultProcess(l.Scale.Seed + 77)
	var workflowErr float64
	f1 := runWith(func(labels []bool, _ *rand.Rand) []bool {
		final, _ := proc.Run(labels)
		workflowErr = labeling.ErrorRate(final, labels)
		return final
	}, 0)
	res.WorkflowF1 = f1
	res.WorkflowErrorRate = workflowErr
	return res
}
