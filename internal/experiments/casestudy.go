package experiments

import (
	"fmt"
	"strings"

	"logsynergy/internal/embed"
)

// CaseStudy reproduces the Fig. 8 false-positive analysis: a normal
// System A log sequence looks misleadingly similar — word-for-word — to an
// anomalous System C sequence, so raw-representation transfer methods
// (LogTransfer with Word2Vec/GloVe) misclassify it; LEI interpretations of
// the same templates are much less similar, because the interpretation
// keeps the essential state information and drops the surface overlap.
type CaseStudyResult struct {
	// NormalTemplate is the System A (new system) template.
	NormalTemplate string
	// AnomalousTemplate is the System C (mature system) template.
	AnomalousTemplate string
	// RawSimilarity is the cosine similarity of the raw templates.
	RawSimilarity float64
	// InterpretedSimilarity is the cosine similarity of LEI interpretations.
	InterpretedSimilarity float64
	// NormalInterpretation and AnomalousInterpretation show LEI's output.
	NormalInterpretation    string
	AnomalousInterpretation string
}

// Render prints the case study.
func (c *CaseStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 case study: misleading raw similarity vs LEI interpretations\n")
	fmt.Fprintf(&b, "  System A (normal):    %s\n", c.NormalTemplate)
	fmt.Fprintf(&b, "  System C (anomalous): %s\n", c.AnomalousTemplate)
	fmt.Fprintf(&b, "  raw cosine similarity:          %.3f\n", c.RawSimilarity)
	fmt.Fprintf(&b, "  LEI interpretation of A:  %s\n", c.NormalInterpretation)
	fmt.Fprintf(&b, "  LEI interpretation of C:  %s\n", c.AnomalousInterpretation)
	fmt.Fprintf(&b, "  interpreted cosine similarity:  %.3f\n", c.InterpretedSimilarity)
	return b.String()
}

// CaseStudy measures the Fig. 8 phenomenon on a representative pair: a
// System A normal interface-state template and a System C anomalous
// session-replication template that share surface vocabulary (state
// changes, interfaces, sessions) but differ semantically.
func (l *Lab) CaseStudy() *CaseStudyResult {
	// Templates chosen to mirror Fig. 8: heavy shared state-change
	// vocabulary (replica/quorum/leader family) with opposite meanings:
	// System A logs a routine replica catching up; System C logs a
	// replica being expelled after losing quorum.
	normalA := "level=info svc=db msg=\"replica caught up\" lag=<*>ms lsn=<*>"
	anomalousC := "ERROR [raft-<*>] Quorum - leader lease lost term <*> stepping down replica removed"

	rawA := l.Embedder.Embed(normalA)
	rawC := l.Embedder.Embed(anomalousC)

	inA := l.Interp.Interpret("a cloud data management system (SystemA)", normalA)
	inC := l.Interp.Interpret("a cloud data management system (SystemC)", anomalousC)
	intA := l.Embedder.Embed(inA.Text)
	intC := l.Embedder.Embed(inC.Text)

	return &CaseStudyResult{
		NormalTemplate:          normalA,
		AnomalousTemplate:       anomalousC,
		RawSimilarity:           embed.Cosine(rawA, rawC),
		InterpretedSimilarity:   embed.Cosine(intA, intC),
		NormalInterpretation:    inA.Text,
		AnomalousInterpretation: inC.Text,
	}
}
