// Package window implements the sliding-window sequencer LogSynergy's
// pre-processing uses to split a continuous event stream into fixed-length
// log sequences. The paper segments every dataset with a window length of
// 10 events and a step of 5 (§IV-A1, §VI-A).
package window

import "fmt"

// Config controls sequence segmentation.
type Config struct {
	// Length is the number of events per sequence (paper: 10).
	Length int
	// Step is the slide distance between consecutive windows (paper: 5).
	Step int
}

// Default returns the paper's segmentation parameters.
func Default() Config { return Config{Length: 10, Step: 5} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Length <= 0 {
		return fmt.Errorf("window: length must be positive, got %d", c.Length)
	}
	if c.Step <= 0 {
		return fmt.Errorf("window: step must be positive, got %d", c.Step)
	}
	return nil
}

// Span is one window over the underlying stream: the half-open index range
// [Start, End).
type Span struct {
	Start, End int
}

// Slide returns every full window over a stream of n items. Windows that
// would extend past the end of the stream are dropped (keeping every
// sequence exactly Length long, as the models require fixed-size inputs).
func Slide(n int, cfg Config) []Span {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if n < cfg.Length {
		return nil
	}
	count := (n-cfg.Length)/cfg.Step + 1
	spans := make([]Span, 0, count)
	for s := 0; s+cfg.Length <= n; s += cfg.Step {
		spans = append(spans, Span{Start: s, End: s + cfg.Length})
	}
	return spans
}

// Count returns how many windows Slide would produce without materializing
// them.
func Count(n int, cfg Config) int {
	if n < cfg.Length {
		return 0
	}
	return (n-cfg.Length)/cfg.Step + 1
}

// AnyTrue reports whether any element of labels in [span.Start, span.End)
// is true. It implements the paper's sequence-labeling rule: a log sequence
// is anomalous iff it contains at least one anomalous line.
func AnyTrue(labels []bool, span Span) bool {
	for i := span.Start; i < span.End; i++ {
		if labels[i] {
			return true
		}
	}
	return false
}
