package window

import (
	"testing"
	"testing/quick"
)

func TestSlidePaperParameters(t *testing.T) {
	spans := Slide(25, Default())
	// Windows: [0,10) [5,15) [10,20) [15,25) — 4 full windows.
	if len(spans) != 4 {
		t.Fatalf("want 4 windows over 25 lines, got %d", len(spans))
	}
	if spans[0] != (Span{0, 10}) || spans[3] != (Span{15, 25}) {
		t.Fatalf("unexpected spans: %v", spans)
	}
}

func TestSlideTooShort(t *testing.T) {
	if got := Slide(9, Default()); got != nil {
		t.Fatalf("want no windows for a 9-line stream, got %v", got)
	}
}

func TestSlideExactLength(t *testing.T) {
	spans := Slide(10, Default())
	if len(spans) != 1 || spans[0] != (Span{0, 10}) {
		t.Fatalf("want exactly one full window, got %v", spans)
	}
}

func TestCountMatchesSlide(t *testing.T) {
	f := func(n uint16, length, step uint8) bool {
		cfg := Config{Length: int(length%40) + 1, Step: int(step%10) + 1}
		return Count(int(n%5000), cfg) == len(Slide(int(n%5000), cfg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every span is exactly Length long and in bounds.
func TestSpansWellFormed(t *testing.T) {
	f := func(n uint16, step uint8) bool {
		cfg := Config{Length: 10, Step: int(step%10) + 1}
		total := int(n % 2000)
		for _, sp := range Slide(total, cfg) {
			if sp.End-sp.Start != cfg.Length || sp.Start < 0 || sp.End > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnyTrue(t *testing.T) {
	labels := []bool{false, false, true, false}
	if !AnyTrue(labels, Span{0, 3}) {
		t.Fatal("span covering a true label must be true")
	}
	if AnyTrue(labels, Span{0, 2}) {
		t.Fatal("span with no true labels must be false")
	}
	if AnyTrue(labels, Span{3, 4}) {
		t.Fatal("span [3,4) must be false")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Length: 0, Step: 5}).Validate(); err == nil {
		t.Fatal("zero length must be invalid")
	}
	if err := (Config{Length: 10, Step: 0}).Validate(); err == nil {
		t.Fatal("zero step must be invalid")
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
