package window

import "testing"

// FuzzSlide drives the sequencer with arbitrary stream lengths and
// configurations and checks its contract: Slide and Count agree, every
// span is exactly Length wide, in bounds, and consecutive spans start
// exactly Step apart. Invalid configurations must be rejected by
// Validate and (by documented design) panic in Slide rather than
// produce garbage windows.
func FuzzSlide(f *testing.F) {
	f.Add(100, 10, 5)
	f.Add(0, 10, 5)
	f.Add(9, 10, 5)
	f.Add(10, 10, 5)
	f.Add(1, 1, 1)
	f.Add(1000, 3, 7)
	f.Add(50, -1, 5)
	f.Add(50, 10, 0)
	f.Add(-5, 10, 5)
	f.Fuzz(func(t *testing.T, n, length, step int) {
		// Cap sizes so a fuzzer-found giant config cannot OOM the worker.
		if n > 1<<20 || length > 1<<20 || step > 1<<20 {
			t.Skip("implausibly large input")
		}
		cfg := Config{Length: length, Step: step}
		if err := cfg.Validate(); err != nil {
			defer func() {
				if recover() == nil {
					t.Fatalf("Slide accepted invalid config %+v", cfg)
				}
			}()
			Slide(n, cfg)
			return
		}

		spans := Slide(n, cfg)
		if got, want := len(spans), Count(n, cfg); got != want {
			t.Fatalf("Slide produced %d spans, Count says %d (n=%d cfg=%+v)", got, want, n, cfg)
		}
		for i, s := range spans {
			if s.End-s.Start != cfg.Length {
				t.Fatalf("span %d is %d wide, want %d", i, s.End-s.Start, cfg.Length)
			}
			if s.Start < 0 || s.End > n {
				t.Fatalf("span %d [%d,%d) outside stream of %d", i, s.Start, s.End, n)
			}
			if i > 0 && s.Start-spans[i-1].Start != cfg.Step {
				t.Fatalf("span %d starts %d after its predecessor, want step %d", i, s.Start-spans[i-1].Start, cfg.Step)
			}
		}
		if n >= cfg.Length && len(spans) == 0 {
			t.Fatalf("stream of %d fits a %d-window but Slide returned none", n, cfg.Length)
		}
	})
}
