package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 || c.Total() != 4 {
		t.Fatalf("confusion: %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Fatalf("P=%v R=%v F1=%v", c.Precision(), c.Recall(), c.F1())
	}
}

func TestUndefinedMetricsAreZero(t *testing.T) {
	var c Confusion
	c.Add(false, false)
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("metrics with no positives must be zero, not NaN")
	}
}

func TestEvaluateThreshold(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.8, 0.1}
	labels := []bool{true, true, false, false}
	r := Evaluate(scores, labels, 0.5)
	// Predictions: T F T F -> TP=1 FP=1 FN=1 TN=1.
	if r.Precision != 0.5 || r.Recall != 0.5 {
		t.Fatalf("got %+v", r)
	}
}

func TestPerfectAndWorstCases(t *testing.T) {
	scores := []float64{0.99, 0.01}
	labels := []bool{true, false}
	if r := Evaluate(scores, labels, 0.5); r.F1 != 1 {
		t.Fatalf("perfect classifier must score F1=1, got %+v", r)
	}
	inverted := Evaluate([]float64{0.01, 0.99}, labels, 0.5)
	if inverted.F1 != 0 {
		t.Fatalf("fully inverted classifier must score F1=0, got %+v", inverted)
	}
}

func TestEvaluateBool(t *testing.T) {
	r := EvaluateBool([]bool{true, true, false}, []bool{true, false, false})
	if math.Abs(r.Precision-0.5) > 1e-12 || r.Recall != 1 {
		t.Fatalf("got %+v", r)
	}
}

func TestSweepBestF1(t *testing.T) {
	scores := []float64{0.3, 0.35, 0.9, 0.95}
	labels := []bool{false, false, true, true}
	th, r := SweepBestF1(scores, labels, []float64{0.1, 0.5, 0.99})
	if r.F1 != 1 {
		t.Fatalf("best F1 should be 1, got %+v at %v", r, th)
	}
	if th != 0.5 {
		t.Fatalf("expected threshold 0.5 to be optimal, got %v", th)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([]float64{1}, []bool{true, false}, 0.5)
}

// Property: F1 is always between min(P,R) and max(P,R), and all metrics
// stay in [0,1].
func TestMetricBoundsProperty(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		inRange := p >= 0 && p <= 1 && r >= 0 && r <= 1 && f1 >= 0 && f1 <= 1
		if !inRange {
			return false
		}
		if p > 0 && r > 0 {
			lo, hi := math.Min(p, r), math.Max(p, r)
			return f1 >= lo-1e-12 && f1 <= hi+1e-12
		}
		return f1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
