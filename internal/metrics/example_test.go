package metrics_test

import (
	"fmt"

	"logsynergy/internal/metrics"
)

// Example evaluates anomaly scores against ground truth at the paper's
// fixed 0.5 threshold.
func Example() {
	scores := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []bool{true, false, false, false}
	r := metrics.Evaluate(scores, labels, 0.5)
	fmt.Println(r)
	// Output:
	// P=50.00% R=100.00% F1=66.67%
}
