// Package metrics provides the evaluation metrics of the paper (§IV-A3):
// precision, recall and F1-score over binary anomaly predictions, plus
// confusion-matrix and threshold-sweep helpers.
package metrics

import "fmt"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction/label pair.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Total returns the number of recorded pairs.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// String renders the matrix compactly.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d P=%.2f%% R=%.2f%% F1=%.2f%%",
		c.TP, c.FP, c.TN, c.FN, 100*c.Precision(), 100*c.Recall(), 100*c.F1())
}

// Result is the (P, R, F1) triple every paper table reports.
type Result struct {
	Precision, Recall, F1 float64
}

// Evaluate scores predictions against labels (same length) at the given
// probability threshold (the paper fixes 0.5 for all classifiers).
func Evaluate(scores []float64, labels []bool, threshold float64) Result {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	var c Confusion
	for i, s := range scores {
		c.Add(s > threshold, labels[i])
	}
	return Result{Precision: c.Precision(), Recall: c.Recall(), F1: c.F1()}
}

// EvaluateBool scores hard binary predictions.
func EvaluateBool(preds, labels []bool) Result {
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("metrics: %d preds vs %d labels", len(preds), len(labels)))
	}
	var c Confusion
	for i, p := range preds {
		c.Add(p, labels[i])
	}
	return Result{Precision: c.Precision(), Recall: c.Recall(), F1: c.F1()}
}

// String renders a result as the percentage triple used in the tables.
func (r Result) String() string {
	return fmt.Sprintf("P=%.2f%% R=%.2f%% F1=%.2f%%", 100*r.Precision, 100*r.Recall, 100*r.F1)
}

// SweepBestF1 evaluates a grid of thresholds and returns the threshold
// achieving the best F1 along with that result. The paper tunes baseline
// hyper-parameters for best F1; the final comparison still uses 0.5.
func SweepBestF1(scores []float64, labels []bool, thresholds []float64) (float64, Result) {
	bestT, best := 0.5, Result{}
	for _, th := range thresholds {
		r := Evaluate(scores, labels, th)
		if r.F1 > best.F1 {
			best, bestT = r, th
		}
	}
	return bestT, best
}
