package club

import (
	"math/rand"
	"testing"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// sampleCorrelated draws (x, y) with y = x + noise*eps, so mutual
// information grows as noise shrinks.
func sampleCorrelated(rng *rand.Rand, n, dim int, noise float64) (x, y *tensor.Tensor) {
	x = tensor.Randn(rng, 1, n, dim)
	y = tensor.New(n, dim)
	for i := range y.Data {
		y.Data[i] = x.Data[i] + noise*rng.NormFloat64()
	}
	return x, y
}

// sampleIndependent draws x and y independently.
func sampleIndependent(rng *rand.Rand, n, dim int) (x, y *tensor.Tensor) {
	return tensor.Randn(rng, 1, n, dim), tensor.Randn(rng, 1, n, dim)
}

func trainEstimator(t *testing.T, e *Estimator, sample func() (x, y *tensor.Tensor), steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		x, y := sample()
		e.LearnStep(x, y)
	}
}

func estimate(e *Estimator, x, y *tensor.Tensor) float64 {
	g := nn.NewGraph()
	return e.Estimate(g, g.Const(x), g.Const(y)).Value.Data[0]
}

func TestCorrelatedFeaturesScoreHigherThanIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 4

	eCorr := New(rand.New(rand.NewSource(2)), dim, dim, 16, 1e-2)
	trainEstimator(t, eCorr, func() (x, y *tensor.Tensor) {
		return sampleCorrelated(rng, 64, dim, 0.1)
	}, 150)
	xc, yc := sampleCorrelated(rng, 256, dim, 0.1)
	miCorr := estimate(eCorr, xc, yc)

	eInd := New(rand.New(rand.NewSource(3)), dim, dim, 16, 1e-2)
	trainEstimator(t, eInd, func() (x, y *tensor.Tensor) {
		return sampleIndependent(rng, 64, dim)
	}, 150)
	xi, yi := sampleIndependent(rng, 256, dim)
	miInd := estimate(eInd, xi, yi)

	if miCorr <= miInd {
		t.Fatalf("CLUB must rank correlated (%.3f) above independent (%.3f)", miCorr, miInd)
	}
	if miCorr < 0.5 {
		t.Fatalf("correlated MI estimate too small: %.3f", miCorr)
	}
}

func TestIndependentFeaturesNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 4
	e := New(rand.New(rand.NewSource(5)), dim, dim, 16, 1e-2)
	trainEstimator(t, e, func() (x, y *tensor.Tensor) {
		return sampleIndependent(rng, 64, dim)
	}, 150)
	x, y := sampleIndependent(rng, 512, dim)
	mi := estimate(e, x, y)
	if mi > 0.5 || mi < -0.5 {
		t.Fatalf("independent MI estimate should be near zero, got %.3f", mi)
	}
}

func TestLearnStepReducesNLL(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := New(rand.New(rand.NewSource(7)), 3, 3, 16, 1e-2)
	x, y := sampleCorrelated(rng, 128, 3, 0.2)
	first := e.LearnStep(x, y)
	var last float64
	for i := 0; i < 100; i++ {
		last = e.LearnStep(x, y)
	}
	if last >= first {
		t.Fatalf("q training must reduce NLL: first %.4f last %.4f", first, last)
	}
}

func TestEstimateGradientsFlowToFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := New(rand.New(rand.NewSource(9)), 3, 3, 8, 1e-2)
	ps := nn.NewParamSet()
	xp := ps.New("x", tensor.Randn(rng, 1, 16, 3))
	yp := ps.New("y", tensor.Randn(rng, 1, 16, 3))
	g := nn.NewGraph()
	mi := e.Estimate(g, g.Param(xp), g.Param(yp))
	g.Backward(mi)
	if xp.Grad.MaxAbs() == 0 || yp.Grad.MaxAbs() == 0 {
		t.Fatal("Estimate must propagate gradients into both feature inputs")
	}
	// q's own parameters must stay frozen in the main pass.
	for _, p := range e.Params.All() {
		if p.Grad.MaxAbs() != 0 {
			t.Fatalf("estimator parameter %s received gradient from Estimate", p.Name)
		}
	}
}

func TestMinimizingEstimateDecorrelates(t *testing.T) {
	// Tiny end-to-end SUFE-style loop: a linear map produces y from x; we
	// train the map to minimize the CLUB bound while q keeps learning. The
	// final estimated MI must drop well below its starting value.
	rng := rand.New(rand.NewSource(10))
	dim := 3
	e := New(rand.New(rand.NewSource(11)), dim, dim, 16, 1e-2)
	ps := nn.NewParamSet()
	w := ps.New("w", nn.XavierUniform(rng, dim, dim))
	// Start strongly correlated: w near identity.
	for i := 0; i < dim; i++ {
		w.Value.Data[i*dim+i] += 1
	}
	opt := newSGD(ps, 0.05)

	mapY := func(x *tensor.Tensor) *tensor.Tensor {
		g := nn.NewGraph()
		return g.MatMul(g.Const(x), g.Const(w.Value)).Value
	}
	// Warm up q on the initial (correlated) joint distribution so the
	// first reading is a meaningful MI estimate, not noise.
	for i := 0; i < 100; i++ {
		x := tensor.Randn(rng, 1, 64, dim)
		e.LearnStep(x, mapY(x))
	}
	xProbe := tensor.Randn(rng, 1, 256, dim)
	first := estimate(e, xProbe, mapY(xProbe))

	for step := 0; step < 200; step++ {
		x := tensor.Randn(rng, 1, 64, dim)
		e.LearnStep(x, mapY(x))

		g := nn.NewGraph()
		xn := g.Const(x)
		y := g.MatMul(xn, g.Param(w))
		mi := e.Estimate(g, xn, y)
		g.Backward(mi)
		opt.Step()
	}
	last := estimate(e, xProbe, mapY(xProbe))
	if last >= first/2 {
		t.Fatalf("minimizing the CLUB bound should decorrelate features: first %.4f last %.4f", first, last)
	}
	if first < 0.2 {
		t.Fatalf("warmed-up estimate on correlated features should be clearly positive, got %.4f", first)
	}
}

// newSGD avoids importing optim (cycle-free but keeps the test local).
type sgd struct {
	ps *nn.ParamSet
	lr float64
}

func newSGD(ps *nn.ParamSet, lr float64) *sgd { return &sgd{ps, lr} }

func (s *sgd) Step() {
	for _, p := range s.ps.All() {
		for i := range p.Value.Data {
			p.Value.Data[i] -= s.lr * p.Grad.Data[i]
		}
	}
	s.ps.ZeroGrad()
}
