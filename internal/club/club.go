// Package club implements the Contrastive Log-ratio Upper Bound (CLUB)
// mutual information estimator (Cheng et al., ICML 2020), the component
// LogSynergy's SUFE uses to measure — and then minimize — the mutual
// information between system-unified features F_u(x) and system-specific
// features F_s(x) (paper Eq. 3).
//
// CLUB bounds I(X;Y) ≤ E_{p(x,y)}[log q(y|x)] − E_{p(x)p(y)}[log q(y|x)]
// where q is a learned variational approximation of p(y|x). Following the
// original implementation, q(y|x) is a diagonal Gaussian whose mean and
// log-variance are produced by small MLPs, trained by maximum likelihood
// with its own optimizer, while the main model minimizes the bound.
package club

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/tensor"
)

// Estimator is a CLUB mutual-information estimator between two feature
// vectors of dimensions xDim and yDim.
type Estimator struct {
	// Params holds q's parameters (owned by the estimator's own optimizer,
	// never by the main model's).
	Params *nn.ParamSet

	mu     *nn.MLP
	logvar *nn.MLP
	opt    *optim.AdamW
	rng    *rand.Rand
}

// New creates an estimator with hidden-layer width hidden and its own
// AdamW optimizer with learning rate lr.
func New(rng *rand.Rand, xDim, yDim, hidden int, lr float64) *Estimator {
	ps := nn.NewParamSet()
	e := &Estimator{
		Params: ps,
		mu:     nn.NewMLP(ps, "club.mu", rng, xDim, hidden, yDim),
		logvar: nn.NewMLP(ps, "club.logvar", rng, xDim, hidden, yDim),
		rng:    rng,
	}
	e.opt = optim.NewAdamW(ps, lr)
	e.opt.WeightDecay = 0
	return e
}

// qParamsFrozen lifts q's parameters as constants so the main model's
// backward pass flows gradients into x and y but never updates q.
func (e *Estimator) forward(g *nn.Graph, x *nn.Node, frozen bool) (mean, logvar *nn.Node) {
	forwardMLP := func(m *nn.MLP, in *nn.Node) *nn.Node {
		h := in
		for i, l := range m.Layers {
			var w, b *nn.Node
			if frozen {
				w, b = g.Const(l.W.Value), g.Const(l.B.Value)
			} else {
				w, b = g.Param(l.W), g.Param(l.B)
			}
			h = g.AddBias(g.MatMul(h, w), b)
			if i+1 < len(m.Layers) {
				h = g.ReLU(h)
			}
		}
		return h
	}
	mean = forwardMLP(e.mu, x)
	logvar = g.Tanh(forwardMLP(e.logvar, x)) // bounded log-variance for stability
	return mean, logvar
}

// logProb builds the per-sample Gaussian log-density matrix
// log q(y|x) up to the constant term: -0.5 * ((y-μ)² / σ² + logσ²).
func (e *Estimator) logProb(g *nn.Graph, mean, logvar, y *nn.Node) *nn.Node {
	diff := g.Sub(y, mean)
	sq := g.Square(diff)
	invVar := g.Exp(g.Neg(logvar))
	return g.Scale(g.Add(g.Mul(sq, invVar), logvar), -0.5)
}

// Estimate returns the sampled CLUB upper bound as a scalar node on the
// main model's graph: positive pairs use aligned (x_i, y_i), negative pairs
// re-pair each x_i with a uniformly sampled y_j. q's parameters are frozen;
// gradients flow only into x and y — exactly how SUFE uses the bound to
// shape the feature extractor.
func (e *Estimator) Estimate(g *nn.Graph, x, y *nn.Node) *nn.Node {
	n := x.Value.Rows()
	mean, logvar := e.forward(g, x, true)
	positive := g.Mean(e.logProb(g, mean, logvar, y))

	// Negative pairing: gather a shuffled view of y.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = e.rng.Intn(n)
	}
	yNeg := g.GatherRows(y, perm)
	negative := g.Mean(e.logProb(g, mean, logvar, yNeg))
	return g.Sub(positive, negative)
}

// LearnStep trains q by maximum likelihood on detached feature batches
// (raw tensors, not graph nodes) and returns the negative log-likelihood.
// Call it once per training batch, before or after the main model's step.
func (e *Estimator) LearnStep(x, y *tensor.Tensor) float64 {
	g := nn.NewGraph()
	xn, yn := g.Const(x), g.Const(y)
	mean, logvar := e.forward(g, xn, false)
	nll := g.Neg(g.Mean(e.logProb(g, mean, logvar, yn)))
	g.Backward(nll)
	e.Params.ClipGradNorm(5)
	e.opt.Step()
	return nll.Value.Data[0]
}
