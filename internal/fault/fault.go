// Package fault is a deterministic, seedable fault-injection and
// fault-tolerance toolkit for the streaming pipeline (paper §VI: a
// deployment "lives or dies on resilience to noisy, malformed, and
// partial inputs").
//
// Injection side: components expose named injection points and consult a
// Registry at each one (Registry.Check). Tests and operators register
// Rules at runtime — no build tags, no recompilation — that return
// errors, add latency, or panic at chosen call indices or with a seeded
// probability. Everything is deterministic given the registry seed and
// the call order, so a chaos schedule replays bit-identically.
//
// Tolerance side: Retryer (exponential backoff with deterministic
// jitter), Breaker (a consecutive-failure circuit breaker), WithTimeout
// (bounded calls into code that cannot be cancelled), and Safe (panic
// containment) are the primitives the pipeline composes into per-stage
// fault handling.
//
// A nil *Registry is valid and injects nothing; the disarmed Check fast
// path is a single atomic load, cheap enough to leave in production code.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by a firing rule that does
// not specify its own error, panic, or delay-only behavior.
var ErrInjected = errors.New("fault: injected error")

// Rule describes one injection behavior at a named point. The zero rule
// with only Point set is a permanent error injector (every call fails
// with ErrInjected).
type Rule struct {
	// Point names the injection point the rule applies to.
	Point string
	// After skips the first After calls to the point before the rule
	// becomes eligible.
	After uint64
	// Every fires the rule on every Every-th eligible call (0 and 1 both
	// mean every call).
	Every uint64
	// Limit stops the rule after it has fired Limit times (0 = unlimited).
	Limit uint64
	// Prob, when in (0,1), fires the rule with this probability. The coin
	// flip is a deterministic hash of (registry seed, point, call index),
	// so a schedule replays identically for a fixed seed.
	Prob float64
	// Delay is latency added when the rule fires (before Err/Panic take
	// effect). A rule with only Delay set is a pure latency injector: it
	// sleeps and returns nil.
	Delay time.Duration
	// Err is the error Check returns when the rule fires.
	Err error
	// PanicMsg, when non-empty, makes the firing rule panic with this
	// message instead of returning an error (models a crashing component;
	// contain it with Safe).
	PanicMsg string
}

// ruleState is a registered rule plus its firing accounting.
type ruleState struct {
	Rule
	eligible uint64 // eligible calls seen (call index - After)
	fired    uint64
}

// PointStats reports per-point call accounting.
type PointStats struct {
	// Calls counts Check invocations while the registry was armed.
	Calls uint64
	// Injected counts calls on which a rule fired.
	Injected uint64
}

// Registry holds active injection rules, keyed by point name. All
// methods are safe for concurrent use; a nil receiver is valid and
// injects nothing.
type Registry struct {
	armed atomic.Int32 // registered rule count; 0 = disarmed fast path
	seed  int64

	mu    sync.Mutex
	rules map[string][]*ruleState
	stats map[string]*PointStats
	sleep func(time.Duration)
}

// New creates an empty registry. The seed drives every probabilistic
// rule's coin flips.
func New(seed int64) *Registry {
	return &Registry{
		seed:  seed,
		rules: make(map[string][]*ruleState),
		stats: make(map[string]*PointStats),
		sleep: time.Sleep,
	}
}

// SetSleep replaces the sleep used for Delay rules (tests substitute a
// recording fake to keep chaos schedules instant).
func (r *Registry) SetSleep(fn func(time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		fn = time.Sleep
	}
	r.sleep = fn
}

// Enable registers rules. Rules for the same point are evaluated in
// registration order; the first eligible rule per call fires.
func (r *Registry) Enable(rules ...Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rule := range rules {
		if rule.Point == "" {
			panic("fault: rule without a point")
		}
		if rule.Err == nil && rule.PanicMsg == "" && rule.Delay == 0 {
			rule.Err = ErrInjected
		}
		r.rules[rule.Point] = append(r.rules[rule.Point], &ruleState{Rule: rule})
		r.armed.Add(1)
	}
}

// Disable removes every rule registered for the point (the outage ends;
// call accounting is kept).
func (r *Registry) Disable(point string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.rules[point]); n > 0 {
		r.armed.Add(int32(-n))
		delete(r.rules, point)
	}
}

// Reset removes all rules and clears call accounting.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.armed.Store(0)
	r.rules = make(map[string][]*ruleState)
	r.stats = make(map[string]*PointStats)
}

// Check consults the registry at a named injection point. With no rules
// registered (or a nil registry) it returns nil after one atomic load.
// Otherwise it counts the call, finds the first eligible rule, applies
// its delay, panics if the rule demands it, and returns the rule's error.
func (r *Registry) Check(point string) error {
	if r == nil || r.armed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	st := r.stats[point]
	if st == nil {
		st = &PointStats{}
		r.stats[point] = st
	}
	st.Calls++
	n := st.Calls
	var fire *ruleState
	for _, rule := range r.rules[point] {
		if n <= rule.After {
			continue
		}
		if rule.Limit > 0 && rule.fired >= rule.Limit {
			continue
		}
		rule.eligible++
		every := rule.Every
		if every == 0 {
			every = 1
		}
		if rule.eligible%every != 0 {
			continue
		}
		if rule.Prob > 0 && rule.Prob < 1 && hash01(r.seed, point, n) >= rule.Prob {
			continue
		}
		rule.fired++
		st.Injected++
		fire = rule
		break
	}
	sleep := r.sleep
	r.mu.Unlock()
	if fire == nil {
		return nil
	}
	if fire.Delay > 0 {
		sleep(fire.Delay)
	}
	if fire.PanicMsg != "" {
		panic("fault: injected panic: " + fire.PanicMsg)
	}
	return fire.Err
}

// Stats returns the accounting for one point. A nil registry reports
// zeros.
func (r *Registry) Stats(point string) PointStats {
	if r == nil {
		return PointStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.stats[point]; st != nil {
		return *st
	}
	return PointStats{}
}

// Calls returns how many Check calls the point has seen while armed.
func (r *Registry) Calls(point string) uint64 { return r.Stats(point).Calls }

// Injected returns how many calls at the point had a rule fire.
func (r *Registry) Injected(point string) uint64 { return r.Stats(point).Injected }

// InjectedTotal sums injections across every point.
func (r *Registry) InjectedTotal() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, st := range r.stats {
		total += st.Injected
	}
	return total
}

// Points returns every point that has seen calls, sorted (diagnostics).
func (r *Registry) Points() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.stats))
	for p := range r.stats {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// hash01 maps (seed, point, call index) to a uniform float64 in [0,1)
// with an FNV-seeded splitmix64 finalizer — deterministic across runs
// and platforms.
func hash01(seed int64, point string, n uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(point))
	x := h.Sum64() ^ uint64(seed)*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// ParseRule parses the CLI rule syntax used by `logsynergy serve
// -inject`:
//
//	point[:key=value[,key=value...]]
//
// Keys: after=N, every=N, limit=N, prob=F, delay=DUR, error=MSG,
// panic=MSG. With no action key the rule injects ErrInjected.
// Examples:
//
//	pipeline.sink                       // every delivery fails
//	pipeline.interpret:every=3,limit=10 // 10 transient LEI errors
//	pipeline.detect:prob=0.01,delay=50ms
func ParseRule(spec string) (Rule, error) {
	point, rest, _ := strings.Cut(spec, ":")
	point = strings.TrimSpace(point)
	if point == "" {
		return Rule{}, fmt.Errorf("fault: rule %q has no injection point", spec)
	}
	rule := Rule{Point: point}
	if strings.TrimSpace(rest) == "" {
		rule.Err = ErrInjected
		return rule, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok && key != "" {
			// Bare action keywords: "panic" and "error" without messages.
			switch key {
			case "panic":
				rule.PanicMsg = "injected"
				continue
			case "error":
				rule.Err = ErrInjected
				continue
			}
			return Rule{}, fmt.Errorf("fault: rule %q: bad clause %q", spec, kv)
		}
		var err error
		switch key {
		case "after":
			rule.After, err = strconv.ParseUint(val, 10, 64)
		case "every":
			rule.Every, err = strconv.ParseUint(val, 10, 64)
		case "limit":
			rule.Limit, err = strconv.ParseUint(val, 10, 64)
		case "prob":
			rule.Prob, err = strconv.ParseFloat(val, 64)
			if err == nil && (rule.Prob < 0 || rule.Prob > 1) {
				err = fmt.Errorf("probability %v outside [0,1]", rule.Prob)
			}
		case "delay":
			rule.Delay, err = time.ParseDuration(val)
		case "error":
			rule.Err = errors.New(val)
		case "panic":
			rule.PanicMsg = val
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("fault: rule %q: clause %q: %v", spec, kv, err)
		}
	}
	if rule.Err == nil && rule.PanicMsg == "" && rule.Delay == 0 {
		rule.Err = ErrInjected
	}
	return rule, nil
}
