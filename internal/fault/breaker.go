package fault

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is the sentinel for calls refused by an open breaker.
var ErrOpen = errors.New("fault: circuit open")

// Breaker is a consecutive-failure circuit breaker. Closed, it admits
// every call; after Threshold consecutive recorded failures it opens and
// refuses calls for Cooldown; then a single half-open probe is admitted —
// success closes the breaker, failure re-opens it for another Cooldown.
//
// The breaker guards components whose failure mode is sustained (a dead
// alert gateway, a hung LLM endpoint): once open, the pipeline stops
// burning retries on every call and degrades immediately, probing at
// Cooldown intervals for recovery.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// probe (default 1s).
	Cooldown time.Duration
	// Now is the clock (overridable in tests).
	Now func() time.Time
	// OnOpen, if set, observes each closed/half-open -> open transition.
	OnOpen func()

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	opens    int
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. While open it returns false
// until Cooldown has elapsed, then admits one half-open probe (further
// Allow calls return false until the probe's Record).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown() {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Record feeds a call outcome to the breaker: nil resets the failure
// streak (and closes a half-open breaker); an error extends it and opens
// the breaker at Threshold (a failed half-open probe re-opens
// immediately).
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold() {
		if b.state != breakerOpen {
			b.opens++
			if b.OnOpen != nil {
				b.OnOpen()
			}
		}
		b.state = breakerOpen
		b.openedAt = b.now()
		b.failures = 0
	}
}

// Open reports whether the breaker is currently refusing calls.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown()
}

// Opens returns how many times the breaker has transitioned to open.
func (b *Breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// State names the current state for logs and metrics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
