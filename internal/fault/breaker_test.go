package fault

import (
	"errors"
	"testing"
	"time"
)

// testClock is a manually advanced clock for breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestClock() *testClock               { return &testClock{t: time.Unix(1_700_000_000, 0)} }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newTestClock()
	opens := 0
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, Now: clk.now, OnOpen: func() { opens++ }}
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(boom)
	}
	if b.Open() || opens != 0 {
		t.Fatal("breaker opened below threshold")
	}
	b.Record(boom) // third consecutive failure
	if !b.Open() || opens != 1 || b.Opens() != 1 {
		t.Fatalf("breaker not open at threshold: open=%v opens=%d", b.Open(), opens)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call within cooldown")
	}
	if b.State() != "open" {
		t.Fatalf("state %q", b.State())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newTestClock()
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, Now: clk.now}
	boom := errors.New("boom")
	b.Record(boom)
	b.Record(boom)
	b.Record(nil) // success interrupts the streak
	b.Record(boom)
	b.Record(boom)
	if b.Open() {
		t.Fatal("interleaved successes must prevent opening")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newTestClock()
	b := &Breaker{Threshold: 1, Cooldown: time.Minute, Now: clk.now}
	boom := errors.New("boom")
	b.Record(boom)
	if b.Allow() {
		t.Fatal("breaker must be open")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	if b.State() != "half-open" {
		t.Fatalf("state %q", b.State())
	}
	if b.Allow() {
		t.Fatal("only one half-open probe may be in flight")
	}

	// Probe fails: re-open for a full cooldown, counting another open.
	b.Record(boom)
	if !b.Open() || b.Opens() != 2 {
		t.Fatalf("failed probe must re-open: open=%v opens=%d", b.Open(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}

	// Next probe succeeds: breaker closes and stays closed.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(nil)
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	boom := errors.New("boom")
	for i := 0; i < 4; i++ {
		b.Record(boom)
	}
	if b.Open() {
		t.Fatal("default threshold is 5; four failures must not open")
	}
	b.Record(boom)
	if !b.Open() {
		t.Fatal("fifth failure must open the default breaker")
	}
}
