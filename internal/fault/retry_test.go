package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSafeContainsPanics(t *testing.T) {
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := Safe(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	err := Safe(func() error { panic("ouch") })
	if err == nil || !strings.Contains(err.Error(), "ouch") {
		t.Fatalf("panic not contained: %v", err)
	}
}

func TestWithTimeout(t *testing.T) {
	if err := WithTimeout(0, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := WithTimeout(time.Second, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	err := WithTimeout(10*time.Millisecond, func() error { <-block; return nil })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// Panics inside a timed call are contained, not re-thrown on another
	// goroutine.
	err = WithTimeout(time.Second, func() error { panic("late") })
	if err == nil || !strings.Contains(err.Error(), "late") {
		t.Fatalf("timed panic not contained: %v", err)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if d := b.Delay(i+1, 0); d != w*time.Millisecond {
			t.Fatalf("retry %d: delay %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 3}
	d1 := b.Delay(1, 7)
	d2 := b.Delay(1, 7)
	if d1 != d2 {
		t.Fatal("jitter must be deterministic for a fixed seed and salt")
	}
	if d1 < 50*time.Millisecond || d1 > 150*time.Millisecond {
		t.Fatalf("jittered delay %v outside [50ms,150ms]", d1)
	}
	if b.Delay(1, 8) == d1 && b.Delay(1, 9) == d1 {
		t.Fatal("salt should decorrelate jitter")
	}
}

func TestRetryerRecoversTransientFailures(t *testing.T) {
	var slept []time.Duration
	var retries []int
	r := &Retryer{
		Attempts: 4,
		Backoff:  Backoff{Base: time.Millisecond},
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		OnRetry:  func(attempt int, err error) { retries = append(retries, attempt) },
	}
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 || len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("slept=%v retries=%v", slept, retries)
	}
}

func TestRetryerExhaustsAttempts(t *testing.T) {
	boom := errors.New("permanent")
	r := &Retryer{Attempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := r.Do(func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryerRetriesPanics(t *testing.T) {
	r := &Retryer{Attempts: 2, Sleep: func(time.Duration) {}}
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls == 1 {
			panic("first try explodes")
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryerZeroValueDefaults(t *testing.T) {
	r := &Retryer{Sleep: func(time.Duration) {}}
	calls := 0
	r.Do(func() error { calls++; return errors.New("x") })
	if calls != 3 {
		t.Fatalf("zero-value Retryer made %d attempts, want 3", calls)
	}
}
