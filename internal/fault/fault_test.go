package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryInjectsNothing(t *testing.T) {
	var r *Registry
	for i := 0; i < 10; i++ {
		if err := r.Check("anything"); err != nil {
			t.Fatalf("nil registry injected %v", err)
		}
	}
	if r.Calls("anything") != 0 || r.InjectedTotal() != 0 {
		t.Fatal("nil registry must report zero stats")
	}
	if r.Points() != nil {
		t.Fatal("nil registry must report no points")
	}
}

func TestDisarmedRegistrySkipsAccounting(t *testing.T) {
	r := New(1)
	for i := 0; i < 5; i++ {
		if err := r.Check("p"); err != nil {
			t.Fatalf("disarmed registry injected %v", err)
		}
	}
	if r.Calls("p") != 0 {
		t.Fatal("disarmed fast path must not count calls")
	}
}

func TestErrorInjectionSchedule(t *testing.T) {
	r := New(7)
	boom := errors.New("boom")
	// Skip 2 calls, then fail every 3rd eligible call, at most twice.
	r.Enable(Rule{Point: "p", After: 2, Every: 3, Limit: 2, Err: boom})

	var got []int
	for i := 1; i <= 20; i++ {
		if err := r.Check("p"); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("call %d: wrong error %v", i, err)
			}
			got = append(got, i)
		}
	}
	// Eligible calls start at 3; every 3rd eligible call = calls 5, 8.
	want := []int{5, 8}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("injected on calls %v, want %v", got, want)
	}
	if r.Calls("p") != 20 || r.Injected("p") != 2 {
		t.Fatalf("stats %+v", r.Stats("p"))
	}
}

func TestDefaultErrorRule(t *testing.T) {
	r := New(1)
	r.Enable(Rule{Point: "p"})
	if err := r.Check("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("bare rule must inject ErrInjected, got %v", err)
	}
}

func TestDelayOnlyRule(t *testing.T) {
	r := New(1)
	var slept []time.Duration
	r.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	r.Enable(Rule{Point: "p", Delay: 25 * time.Millisecond})
	if err := r.Check("p"); err != nil {
		t.Fatalf("latency-only rule must not error, got %v", err)
	}
	if len(slept) != 1 || slept[0] != 25*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
}

func TestPanicInjection(t *testing.T) {
	r := New(1)
	r.Enable(Rule{Point: "p", PanicMsg: "kaboom"})
	err := Safe(func() error { return r.Check("p") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("contained panic = %v", err)
	}
}

func TestProbabilisticRuleIsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		r := New(seed)
		r.Enable(Rule{Point: "p", Prob: 0.3})
		var hits []int
		for i := 1; i <= 200; i++ {
			if r.Check("p") != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed must replay the same schedule")
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times", len(a))
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds should give different schedules")
	}
	// Rough frequency sanity: 0.3 ± 0.15 over 200 draws.
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("prob 0.3 fired %d/200 times, far from expectation", len(a))
	}
}

func TestDisableEndsOutage(t *testing.T) {
	r := New(1)
	r.Enable(Rule{Point: "p"})
	if r.Check("p") == nil {
		t.Fatal("rule must fire")
	}
	r.Disable("p")
	if err := r.Check("p"); err != nil {
		t.Fatalf("disabled point still injects %v", err)
	}
	if r.Calls("p") != 1 {
		// After Disable the registry is disarmed again (no other rules),
		// so the second call is not counted.
		t.Fatalf("calls %d", r.Calls("p"))
	}
}

func TestResetClearsEverything(t *testing.T) {
	r := New(1)
	r.Enable(Rule{Point: "a"}, Rule{Point: "b"})
	r.Check("a")
	r.Reset()
	if r.Check("a") != nil || r.Check("b") != nil {
		t.Fatal("reset registry still injects")
	}
	if r.InjectedTotal() != 0 || len(r.Points()) != 0 {
		t.Fatal("reset registry keeps stats")
	}
}

func TestFirstEligibleRuleWins(t *testing.T) {
	r := New(1)
	first := errors.New("first")
	second := errors.New("second")
	r.Enable(
		Rule{Point: "p", Limit: 1, Err: first},
		Rule{Point: "p", Err: second},
	)
	if err := r.Check("p"); !errors.Is(err, first) {
		t.Fatalf("call 1 got %v", err)
	}
	if err := r.Check("p"); !errors.Is(err, second) {
		t.Fatalf("call 2 must fall through to the second rule, got %v", err)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := New(1)
	r.Enable(Rule{Point: "p", Every: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Check("p")
			}
		}()
	}
	wg.Wait()
	if r.Calls("p") != 4000 || r.Injected("p") != 2000 {
		t.Fatalf("stats %+v", r.Stats("p"))
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"pipeline.sink", Rule{Point: "pipeline.sink", Err: ErrInjected}},
		{"pipeline.interpret:every=3,limit=10", Rule{Point: "pipeline.interpret", Every: 3, Limit: 10, Err: ErrInjected}},
		{"p:after=5,delay=50ms", Rule{Point: "p", After: 5, Delay: 50 * time.Millisecond}},
		{"p:prob=0.25,error=gateway down", Rule{Point: "p", Prob: 0.25, Err: errors.New("gateway down")}},
		{"p:panic=oom", Rule{Point: "p", PanicMsg: "oom"}},
		{"p:panic", Rule{Point: "p", PanicMsg: "injected"}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if got.Point != c.want.Point || got.After != c.want.After || got.Every != c.want.Every ||
			got.Limit != c.want.Limit || got.Prob != c.want.Prob || got.Delay != c.want.Delay ||
			got.PanicMsg != c.want.PanicMsg {
			t.Fatalf("%q parsed to %+v, want %+v", c.spec, got, c.want)
		}
		if (got.Err == nil) != (c.want.Err == nil) {
			t.Fatalf("%q error field %v, want %v", c.spec, got.Err, c.want.Err)
		}
		if c.want.Err != nil && !errors.Is(got.Err, ErrInjected) && got.Err.Error() != c.want.Err.Error() {
			t.Fatalf("%q error %q, want %q", c.spec, got.Err, c.want.Err)
		}
	}
	for _, bad := range []string{"", ":every=2", "p:every=x", "p:prob=1.5", "p:delay=zz", "p:wat=1", "p:junk"} {
		if _, err := ParseRule(bad); err == nil {
			t.Fatalf("%q must fail to parse", bad)
		}
	}
}
