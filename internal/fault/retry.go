package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrTimeout is returned by WithTimeout when the call does not complete
// in time.
var ErrTimeout = errors.New("fault: call timed out")

// Safe runs fn and converts a panic into an error, so a crashing
// component (a parser choking on a malformed line, an injected panic)
// degrades into the same retry path as a returned error.
func Safe(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("fault: recovered panic: %v", rec)
		}
	}()
	return fn()
}

// WithTimeout runs fn, returning ErrTimeout (wrapped with the budget) if
// it does not finish within d. The call cannot be cancelled — on timeout
// fn keeps running on its goroutine and its eventual result is
// discarded; the buffered channel lets that goroutine exit. Panics
// inside fn are contained by Safe. d <= 0 runs fn inline with no
// timeout.
func WithTimeout(d time.Duration, fn func() error) error {
	if d <= 0 {
		return Safe(fn)
	}
	done := make(chan error, 1)
	go func() { done <- Safe(fn) }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("%w after %v", ErrTimeout, d)
	}
}

// Backoff computes exponential retry delays with deterministic jitter.
// The zero value is usable: 1ms base, 1s cap, factor 2, no jitter.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Factor is the per-retry growth multiplier.
	Factor float64
	// Jitter in (0,1] spreads each delay uniformly over
	// [(1-Jitter)·d, (1+Jitter)·d], decorrelating retry storms. The
	// spread is drawn from a seeded hash, not the global RNG, so delay
	// schedules are reproducible.
	Jitter float64
	// Seed drives the jitter hash.
	Seed int64
}

// Delay returns the backoff before retry number retry (1-based). salt
// decorrelates jitter across call sites sharing one Backoff.
func (b Backoff) Delay(retry int, salt uint64) time.Duration {
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 1; i < retry; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 {
		u := hash01(b.Seed, "backoff", salt*1_000_003+uint64(retry))
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	return time.Duration(d)
}

// Retryer runs an operation with bounded attempts and backoff between
// them. The zero value means 3 attempts with the zero Backoff.
type Retryer struct {
	// Attempts is the total number of tries including the first
	// (default 3; 1 disables retrying).
	Attempts int
	// Backoff shapes the delay between attempts.
	Backoff Backoff
	// Sleep is the delay function (default time.Sleep; tests inject).
	Sleep func(time.Duration)
	// OnRetry, if set, observes each retry (attempt is the 1-based number
	// of the attempt that just failed).
	OnRetry func(attempt int, err error)

	calls atomic.Uint64 // jitter salt: distinct per Do invocation
}

// Do runs fn until it succeeds or attempts are exhausted, returning the
// last error. Panics inside fn are contained and retried like errors.
func (r *Retryer) Do(fn func() error) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	salt := r.calls.Add(1)
	var err error
	for attempt := 1; ; attempt++ {
		err = Safe(fn)
		if err == nil || attempt >= attempts {
			return err
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, err)
		}
		sleep(r.Backoff.Delay(attempt, salt))
	}
}
