package daan

import (
	"math/rand"
	"testing"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// domainShiftedBatch builds a feature batch where source rows are centered
// at -offset and target rows at +offset along every dimension.
func domainShiftedBatch(rng *rand.Rand, n, dim int, offset float64) (*tensor.Tensor, []float64) {
	x := tensor.Randn(rng, 0.3, n, dim)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		shift := -offset
		if i%2 == 1 {
			labels[i] = 1
			shift = offset
		}
		for j := 0; j < dim; j++ {
			x.Data[i*dim+j] += shift
		}
	}
	return x, labels
}

func uniformProbs(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.5
	}
	return p
}

func TestLossGradientsReachFeaturesAndClassifiers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(rng, 4, 8, 2, true)
	ps := nn.NewParamSet()
	x, labels := domainShiftedBatch(rng, 16, 4, 1)
	xp := ps.New("x", x)

	g := nn.NewGraph()
	loss := a.Loss(g, g.Param(xp), labels, uniformProbs(16), 1)
	g.Backward(loss)

	if xp.Grad.MaxAbs() == 0 {
		t.Fatal("adversarial loss must propagate gradients into the features")
	}
	grads := 0
	for _, p := range a.Params.All() {
		if p.Grad.MaxAbs() > 0 {
			grads++
		}
	}
	if grads == 0 {
		t.Fatal("domain classifiers must receive gradients")
	}
}

// TestGRLPushesFeaturesAgainstClassifier checks the adversarial mechanics
// directly: first train only the domain classifier until it separates the
// domains, then freeze it and update only the feature extractor through
// the GRL — the domain loss must rise (features become less separable).
// (The full minimax equilibrium is exercised end-to-end by the Fig. 5
// ablation, where the task loss anchors the extractor.)
func TestGRLPushesFeaturesAgainstClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 4
	a := New(rng, dim, 8, 2, true)
	ps := nn.NewParamSet()
	w := ps.New("w", nn.XavierUniform(rng, dim, dim))
	for i := 0; i < dim; i++ {
		w.Value.Data[i*dim+i] += 1
	}

	lr := 0.05
	x, labels := domainShiftedBatch(rng, 64, dim, 1.5)

	// Phase 1: classifier only.
	var clfLoss float64
	for step := 0; step < 200; step++ {
		g := nn.NewGraph()
		feat := g.MatMul(g.Const(x), g.Const(w.Value))
		loss := a.Loss(g, feat, labels, uniformProbs(64), 1)
		g.Backward(loss)
		clfLoss = loss.Value.Data[0]
		for _, p := range a.Params.All() {
			for i := range p.Value.Data {
				p.Value.Data[i] -= lr * p.Grad.Data[i]
			}
		}
		a.Params.ZeroGrad()
	}
	if clfLoss > 0.3 {
		t.Fatalf("domain classifier failed to learn the shift, loss %.3f", clfLoss)
	}

	// Phase 2: features only, through the GRL.
	var featLoss float64
	for step := 0; step < 100; step++ {
		g := nn.NewGraph()
		feat := g.MatMul(g.Const(x), g.Param(w))
		loss := a.Loss(g, feat, labels, uniformProbs(64), 1)
		g.Backward(loss)
		featLoss = loss.Value.Data[0]
		for i := range w.Value.Data {
			w.Value.Data[i] -= lr * w.Grad.Data[i]
		}
		ps.ZeroGrad()
		a.Params.ZeroGrad() // classifier frozen: discard its gradients
	}
	if featLoss <= clfLoss*2 {
		t.Fatalf("GRL feature updates must raise the domain loss: %.3f -> %.3f", clfLoss, featLoss)
	}
}

func TestOmegaUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(rng, 4, 8, 2, true)
	if a.Omega() != 1 {
		t.Fatalf("omega must start at 1, got %v", a.Omega())
	}
	x, labels := domainShiftedBatch(rng, 64, 4, 1)
	g := nn.NewGraph()
	a.Loss(g, g.Const(x), labels, uniformProbs(64), 1)
	a.UpdateOmega()
	if a.Omega() < 0 || a.Omega() > 1 {
		t.Fatalf("omega out of range: %v", a.Omega())
	}
}

func TestStaticAdapterKeepsOmegaOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(rng, 4, 8, 2, false)
	x, labels := domainShiftedBatch(rng, 32, 4, 1)
	g := nn.NewGraph()
	a.Loss(g, g.Const(x), labels, uniformProbs(32), 1)
	a.UpdateOmega()
	if a.Omega() != 1 {
		t.Fatalf("static adapter must keep omega=1, got %v", a.Omega())
	}
}

func TestNoConditionalClassifiers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(rng, 4, 8, 0, true)
	x, labels := domainShiftedBatch(rng, 16, 4, 1)
	g := nn.NewGraph()
	loss := a.Loss(g, g.Const(x), labels, nil, 1)
	if loss.Value.Size() != 1 {
		t.Fatal("loss must be scalar")
	}
}
