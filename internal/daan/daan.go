// Package daan implements the Dynamic Adversarial Adaptation Network
// (Yu et al., ICDM 2019) that LogSynergy uses for domain adaptation
// (paper §III-D3, Eq. 4): a domain classifier trained adversarially
// through a gradient reversal layer pushes the feature extractor to
// produce system-unified features that are indistinguishable between the
// source and target domains.
//
// DAAN's distinguishing feature over plain DANN is the dynamic adversarial
// factor ω, which balances the marginal (global) alignment loss against
// conditional (per-class) alignment losses, re-estimated each epoch from
// the classifiers' proxy A-distances.
package daan

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// Adapter is the domain adaptation module. Global aligns the marginal
// feature distributions; Conditional[c] aligns features of predicted
// class c (normal / anomalous for LogSynergy's binary task).
type Adapter struct {
	// Params holds the domain classifiers' parameters; they are trained by
	// the main optimizer (adversarially, via the GRL).
	Params *nn.ParamSet

	global      *nn.MLP
	conditional []*nn.MLP

	// omega is the dynamic adversarial factor in [0,1]: 1 = only marginal
	// alignment, 0 = only conditional alignment. DAAN initializes it at 1.
	omega float64
	// dynamic enables the ω update; when false the adapter degenerates to
	// a plain DANN-style marginal aligner (used by the ablation bench).
	dynamic bool

	// running proxy error accumulators for the ω update
	globalErrSum, globalErrN float64
	condErrSum, condErrN     []float64
}

// New creates an adapter over features of dimension dim with numClasses
// conditional classifiers. dynamic selects DAAN's ω update.
func New(rng *rand.Rand, dim, hidden, numClasses int, dynamic bool) *Adapter {
	ps := nn.NewParamSet()
	a := &Adapter{
		Params:     ps,
		global:     nn.NewMLP(ps, "daan.global", rng, dim, hidden, 1),
		omega:      1,
		dynamic:    dynamic,
		condErrSum: make([]float64, numClasses),
		condErrN:   make([]float64, numClasses),
	}
	for c := 0; c < numClasses; c++ {
		a.conditional = append(a.conditional,
			nn.NewMLP(ps, "daan.cond."+string(rune('a'+c)), rng, dim, hidden, 1))
	}
	return a
}

// Omega returns the current dynamic adversarial factor.
func (a *Adapter) Omega() float64 { return a.omega }

// Loss builds the DAAN adversarial loss on the graph. features is the
// [B,dim] system-unified feature batch (gradients will be reversed into
// it), domainLabels[i] is 0 for source and 1 for target samples, and
// classProbs[i] is the anomaly classifier's predicted probability of class
// 1 for sample i (used to weight the conditional classifiers, following
// DAAN's use of soft predictions).
func (a *Adapter) Loss(g *nn.Graph, features *nn.Node, domainLabels []float64, classProbs []float64, grlLambda float64) *nn.Node {
	rev := g.GRL(features, grlLambda)

	globalLogits := a.global.Forward(g, rev)
	lossGlobal := g.BCEWithLogits(globalLogits, domainLabels)
	a.recordGlobal(globalLogits.Value.Data, domainLabels)

	if len(a.conditional) == 0 {
		return lossGlobal
	}

	// Conditional terms: each class classifier sees features weighted by
	// the model's soft class membership. For the binary anomaly task,
	// class 0 weight = 1-p, class 1 weight = p.
	var lossCond *nn.Node
	for c, clf := range a.conditional {
		weights := make([]float64, len(classProbs))
		for i, p := range classProbs {
			if c == 1 {
				weights[i] = p
			} else {
				weights[i] = 1 - p
			}
		}
		weighted := g.Mul(rev, broadcastColumn(g, weights, features.Value.Cols()))
		logits := clf.Forward(g, weighted)
		l := g.BCEWithLogits(logits, domainLabels)
		a.recordConditional(c, logits.Value.Data, domainLabels)
		if lossCond == nil {
			lossCond = l
		} else {
			lossCond = g.Add(lossCond, l)
		}
	}
	lossCond = g.Scale(lossCond, 1/float64(len(a.conditional)))

	return g.Add(g.Scale(lossGlobal, a.omega), g.Scale(lossCond, 1-a.omega))
}

// broadcastColumn turns per-row weights into a constant [B,dim] node.
func broadcastColumn(g *nn.Graph, weights []float64, dim int) *nn.Node {
	t := make([]float64, len(weights)*dim)
	for i, w := range weights {
		row := t[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = w
		}
	}
	return g.Const(tensor.FromSlice(t, len(weights), dim))
}

// recordGlobal accumulates the global classifier's error rate for ω.
func (a *Adapter) recordGlobal(logits, labels []float64) {
	for i, z := range logits {
		pred := 0.0
		if z > 0 {
			pred = 1
		}
		if pred != labels[i] {
			a.globalErrSum++
		}
		a.globalErrN++
	}
}

// recordConditional accumulates one conditional classifier's error rate.
func (a *Adapter) recordConditional(c int, logits, labels []float64) {
	for i, z := range logits {
		pred := 0.0
		if z > 0 {
			pred = 1
		}
		if pred != labels[i] {
			a.condErrSum[c]++
		}
		a.condErrN[c]++
	}
}

// UpdateOmega re-estimates ω from the accumulated proxy A-distances
// (d = 2(1-2ε)) and resets the accumulators. DAAN calls this once per
// epoch. With dynamic disabled it leaves ω at 1.
func (a *Adapter) UpdateOmega() {
	defer a.reset()
	if !a.dynamic || a.globalErrN == 0 {
		return
	}
	dGlobal := aDistance(a.globalErrSum / a.globalErrN)
	var dCondSum float64
	n := 0
	for c := range a.conditional {
		if a.condErrN[c] > 0 {
			dCondSum += aDistance(a.condErrSum[c] / a.condErrN[c])
			n++
		}
	}
	if n == 0 {
		return
	}
	dCond := dCondSum / float64(n)
	if dGlobal+dCond == 0 {
		return
	}
	a.omega = dGlobal / (dGlobal + dCond)
}

func (a *Adapter) reset() {
	a.globalErrSum, a.globalErrN = 0, 0
	for c := range a.condErrSum {
		a.condErrSum[c], a.condErrN[c] = 0, 0
	}
}

// aDistance is the proxy A-distance 2(1-2ε), clamped to be non-negative.
func aDistance(err float64) float64 {
	d := 2 * (1 - 2*err)
	if d < 0 {
		return -d
	}
	return d
}
