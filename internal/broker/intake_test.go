package broker

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postBatch(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestIngestHappyPath(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), nil)
	defer b.Close()
	h := b.IngestHandler(0)

	w := postBatch(t, h, "alpha\nbeta\r\ngamma\n")
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Acked != 3 || resp.FirstOffset != 1 || resp.LastOffset != 3 {
		t.Fatalf("response %+v", resp)
	}
	got := drainAll(t, b, "g")
	want := []string{"alpha", "beta", "gamma"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("records %v", got)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["broker.ingest_requests_total"] != 1 || snap.Counters["broker.ingest_lines_total"] != 3 {
		t.Fatalf("intake counters: %v", snap.Counters)
	}
}

func TestIngestEmptyBatch(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), nil)
	defer b.Close()
	w := postBatch(t, b.IngestHandler(0), "\n\n\r\n")
	if w.Code != http.StatusAccepted {
		t.Fatalf("status %d", w.Code)
	}
	var resp IngestResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Acked != 0 {
		t.Fatalf("acked %d for empty batch", resp.Acked)
	}
}

func TestIngestMethodNotAllowed(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), nil)
	defer b.Close()
	req := httptest.NewRequest(http.MethodGet, "/ingest", nil)
	w := httptest.NewRecorder()
	b.IngestHandler(0).ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", w.Code)
	}
	if w.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow header %q", w.Header().Get("Allow"))
	}
}

func TestIngestOversizedBatch(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), nil)
	defer b.Close()
	h := b.IngestHandler(32)
	w := postBatch(t, h, strings.Repeat("a", 64))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
	if reg.Snapshot().Counters["broker.ingest_oversized_total"] != 1 {
		t.Fatal("oversized counter missed")
	}
	if b.NextOffset() != 1 {
		t.Fatal("oversized batch was appended")
	}

	// Same limit enforced without Content-Length (chunked bodies) via
	// MaxBytesReader.
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(strings.Repeat("b", 64)))
	req.ContentLength = -1
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, req)
	if w2.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked status %d, want 413", w2.Code)
	}
}

func TestIngestBackpressure429(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), func(c *Config) {
		c.MaxBacklogBytes = 48
		c.FullPolicy = FullReject
	})
	defer b.Close()
	h := b.IngestHandler(0)
	if w := postBatch(t, h, strings.Repeat("a", 30)+"\n"); w.Code != http.StatusAccepted {
		t.Fatalf("first batch status %d", w.Code)
	}
	w := postBatch(t, h, strings.Repeat("b", 30)+"\n")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if reg.Snapshot().Counters["broker.ingest_rejected_total"] != 1 {
		t.Fatal("rejected counter missed")
	}
}

func TestIngestAfterShutdown503(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), nil)
	defer b.Close()
	h := b.IngestHandler(0)
	b.CloseIntake()
	w := postBatch(t, h, "too late\n")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
}

func TestSplitBatch(t *testing.T) {
	got := splitBatch([]byte("a\r\n\nb\nc"))
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitBatch %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitBatch %v", got)
		}
	}
	if out := splitBatch(nil); len(out) != 0 {
		t.Fatalf("splitBatch(nil) = %v", out)
	}
}
