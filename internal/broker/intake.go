package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"logsynergy/internal/httpapi"
	"logsynergy/internal/obs"
)

// The networked intake: POST /ingest with a newline-delimited batch of
// raw log lines. The handler appends the batch to the WAL and answers
// 202 with the acked record count and offset range — the collector-side
// contract is "202 means your lines are in the log" (durable per the
// broker's fsync policy). Failure statuses map the broker's admission
// and lifecycle errors, each carrying the shared httpapi error
// envelope:
//
//	413 too_large      request body exceeds the batch limit
//	429 backpressure   backlog full under FullReject (Retry-After: 1)
//	503 intake_closed  shutdown in progress
//	405 anything but POST

// DefaultMaxBatchBytes bounds one /ingest request body when the handler
// is built with maxBatchBytes <= 0.
const DefaultMaxBatchBytes = 4 << 20

// IngestResponse is the JSON body of a 202 from /ingest.
type IngestResponse struct {
	// Acked is the number of records appended.
	Acked int `json:"acked"`
	// FirstOffset and LastOffset bound the appended records (0/0 for an
	// empty batch).
	FirstOffset uint64 `json:"first_offset"`
	LastOffset  uint64 `json:"last_offset"`
}

// intakeObs caches the intake's metric handles.
type intakeObs struct {
	requests  *obs.Counter
	lines     *obs.Counter
	rejected  *obs.Counter
	oversized *obs.Counter
}

// IngestHandler returns the /ingest HTTP handler. maxBatchBytes bounds
// one request body (<= 0 selects DefaultMaxBatchBytes); larger requests
// get 413 without being appended.
func (b *Broker) IngestHandler(maxBatchBytes int64) http.Handler {
	if maxBatchBytes <= 0 {
		maxBatchBytes = DefaultMaxBatchBytes
	}
	om := intakeObs{
		requests:  b.reg.Counter("broker.ingest_requests_total"),
		lines:     b.reg.Counter("broker.ingest_lines_total"),
		rejected:  b.reg.Counter("broker.ingest_rejected_total"),
		oversized: b.reg.Counter("broker.ingest_oversized_total"),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		om.requests.Inc()
		if r.Method != http.MethodPost {
			httpapi.MethodNotAllowed(w, http.MethodPost, "ingest accepts POST only")
			return
		}
		if r.ContentLength > maxBatchBytes {
			om.oversized.Inc()
			httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
				Code:    httpapi.CodeTooLarge,
				Message: fmt.Sprintf("batch of %d bytes exceeds limit %d", r.ContentLength, maxBatchBytes),
			})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				om.oversized.Inc()
				httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
					Code:    httpapi.CodeTooLarge,
					Message: fmt.Sprintf("batch exceeds limit %d bytes", maxBatchBytes),
				})
				return
			}
			httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
				Code:    httpapi.CodeBadRequest,
				Message: "reading request body: " + err.Error(),
			})
			return
		}
		lines := splitBatch(body)
		var resp IngestResponse
		if len(lines) > 0 {
			first, last, err := b.AppendBatch(lines)
			switch {
			case errors.Is(err, ErrBacklogFull):
				om.rejected.Inc()
				httpapi.Error(w, http.StatusTooManyRequests, httpapi.Detail{
					Code:        httpapi.CodeBackpressure,
					Message:     err.Error(),
					RetryAfterS: 1,
				})
				return
			case errors.Is(err, ErrClosed):
				httpapi.Error(w, http.StatusServiceUnavailable, httpapi.Detail{
					Code:    httpapi.CodeClosed,
					Message: "intake closed",
				})
				return
			case err != nil:
				httpapi.Error(w, http.StatusInternalServerError, httpapi.Detail{
					Code:    httpapi.CodeInternal,
					Message: err.Error(),
				})
				return
			}
			resp = IngestResponse{Acked: len(lines), FirstOffset: first, LastOffset: last}
			om.lines.Add(int64(len(lines)))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(resp)
	})
}

// splitBatch parses a newline-delimited body into log lines, tolerating
// CRLF and dropping empty lines (a trailing newline is not an empty
// record).
func splitBatch(body []byte) []string {
	raw := strings.Split(string(body), "\n")
	lines := make([]string, 0, len(raw))
	for _, l := range raw {
		l = strings.TrimSuffix(l, "\r")
		if l == "" {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}
