package broker

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"logsynergy/internal/obs"
)

// benchLine is a representative production log line (~70 bytes).
var benchLine = "2023-09-01T12:00:00Z INFO service=api request GET /api/v1/items status=200"

func benchBroker(b *testing.B, mutate func(*Config)) *Broker {
	b.Helper()
	cfg := Config{Dir: b.TempDir(), Fsync: FsyncNever, MaxBacklogBytes: -1, Metrics: obs.NewRegistry()}
	if mutate != nil {
		mutate(&cfg)
	}
	bk, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { bk.Close() })
	return bk
}

func BenchmarkAppend(b *testing.B) {
	bk := benchBroker(b, nil)
	b.SetBytes(int64(len(benchLine)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bk.Append(benchLine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFsyncInterval(b *testing.B) {
	bk := benchBroker(b, func(c *Config) { c.Fsync = FsyncInterval })
	b.SetBytes(int64(len(benchLine)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bk.Append(benchLine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBatch100(b *testing.B) {
	bk := benchBroker(b, nil)
	batch := make([]string, 100)
	for i := range batch {
		batch[i] = benchLine
	}
	b.SetBytes(int64(len(benchLine) * len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bk.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsume(b *testing.B) {
	bk := benchBroker(b, nil)
	batch := make([]string, 1000)
	for i := range batch {
		batch[i] = benchLine
	}
	for appended := 0; appended < b.N; appended += len(batch) {
		if _, _, err := bk.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	c, err := bk.Consumer("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetBytes(int64(len(benchLine)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Next(); !ok {
			b.Fatalf("consumer dry at %d: %v", i, c.Err())
		}
	}
}

func BenchmarkIngestHandler(b *testing.B) {
	bk := benchBroker(b, nil)
	h := bk.IngestHandler(0)
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "%s seq=%d\n", benchLine, i)
	}
	body := sb.String()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusAccepted {
			b.Fatalf("status %d", w.Code)
		}
	}
}
