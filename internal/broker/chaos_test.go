package broker

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
	"logsynergy/internal/window"
)

// The broker chaos suite proves the crash-recovery contract end to end:
// a consumer that committed offset N, killed mid-append, recovers and
// re-detects from N+1 with zero loss of acknowledged records and
// bit-identical scores for the replayed sequences. Faults are injected
// deterministically at the broker's named points (broker.append,
// broker.fsync, broker.read).

// brokerTemplates cycle six fixed log shapes, so drain assigns event ids
// 0..5 in first-seen order and tests know every window's contents.
var brokerTemplates = []string{
	"service heartbeat ok seq 42",
	"user alice login from 10.0.0.5",
	"db query finished in 12 ms",
	"cache miss for key session",
	"disk usage at 63 percent",
	"request GET /api/v1/items 200",
}

func brokerLines(start, n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = brokerTemplates[(start+i)%len(brokerTemplates)]
	}
	return lines
}

// testWindow keeps window arithmetic small: with 4/2, a stream of L
// lines completes windows ending at lines 4, 6, 8, ... — so the ack
// watermark after a drain is the largest even line count <= L.
var testWindow = window.Config{Length: 4, Step: 2}

// detectorLeg builds one fresh untrained deployment (empty event table,
// fixed clock) plus a pipeline over it. Two legs fed identical lines
// mutate identically — the basis for the bit-identical replay check.
func detectorLeg(t testing.TB, reg *obs.Registry) (*pipeline.Pipeline, *pipeline.MemorySink, *core.Detector) {
	t.Helper()
	cfg := core.DefaultConfig()
	m := core.NewModel(cfg, 2)
	e := embed.New(cfg.EmbedDim)
	table := &repr.EventTable{System: "SystemB", Dim: cfg.EmbedDim, Vectors: tensor.New(0, cfg.EmbedDim)}
	det := core.NewDetector(m, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

	pcfg := pipeline.DefaultConfig("a cloud data management system (SystemB)")
	pcfg.Window = testWindow
	pcfg.Metrics = reg
	sink := &pipeline.MemorySink{}
	p := pipeline.New(pcfg, drain.NewDefault(), det, lei.NewSimLLM(lei.Config{}), e, sink)
	return p, sink, det
}

// runLeg drains the remaining records of group through a fresh detector
// leg and returns the pipeline stats plus the leg itself.
func runLeg(t *testing.T, b *Broker, group string, reg *obs.Registry) (pipeline.Stats, *pipeline.Pipeline, *pipeline.MemorySink, *core.Detector) {
	t.Helper()
	p, sink, det := detectorLeg(t, reg)
	cons, err := b.Consumer(group)
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	b.CloseIntake()
	stats := p.Run(context.Background(), cons)
	if cons.Err() != nil {
		t.Fatalf("consumer error: %v", cons.Err())
	}
	return stats, p, sink, det
}

// windowSeqs reconstructs the event-id windows the pipeline forms over n
// cycling-template lines starting at template index start.
func windowSeqs(start, n int) [][]int {
	var seqs [][]int
	var buf []int
	since := 0
	for i := 0; i < n; i++ {
		buf = append(buf, (start+i)%len(brokerTemplates))
		since++
		if len(buf) > testWindow.Length {
			buf = buf[1:]
		}
		if len(buf) == testWindow.Length && since >= testWindow.Step {
			seqs = append(seqs, append([]int(nil), buf...))
			since = 0
		}
	}
	return seqs
}

// TestCrashRecoveryReplay is the tentpole chaos scenario, in three acts:
//
//  1. Normal operation: 23 lines ingested, detected, committed. With a
//     4/2 window the last completed window ends at line 22, so the
//     committed offset is exactly 22 — not 23: the ack watermark stops
//     at the last fully-detected line.
//  2. Crash: 10 more lines land, then an injected fault kills an append,
//     a panic rule crashes another (contained by fault.Safe), and the
//     process "dies" (Kill: no flush, no commit) mid-append, leaving a
//     torn frame on the active segment.
//  3. Recovery: reopen truncates the torn tail (counted in obs), all 33
//     acknowledged records survive, and the consumer resumes at offset
//     23 — re-detecting the replayed suffix with scores bit-identical
//     to an in-memory SliceSource reference over the same lines.
func TestCrashRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	const phase1Lines = 23
	const phase2Lines = 10

	// --- Act 1: normal ingest → detect → commit. ---
	reg1 := obs.NewRegistry()
	b1, err := Open(Config{Dir: dir, Fsync: FsyncNever, Metrics: reg1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b1.AppendBatch(brokerLines(0, phase1Lines)); err != nil {
		t.Fatal(err)
	}
	stats1, _, _, _ := runLeg(t, b1, "detector", reg1)
	if stats1.LinesCollected != phase1Lines {
		t.Fatalf("phase 1 collected %d lines", stats1.LinesCollected)
	}
	const wantCommitted = 22 // last completed 4/2 window over 23 lines
	if got := b1.Committed("detector"); got != wantCommitted {
		t.Fatalf("phase 1 committed %d, want %d", got, wantCommitted)
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Act 2: more traffic, injected append failures, crash. ---
	freg := fault.New(7)
	reg2 := obs.NewRegistry()
	b2, err := Open(Config{Dir: dir, Fsync: FsyncNever, Metrics: reg2, Faults: freg})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b2.AppendBatch(brokerLines(phase1Lines, phase2Lines)); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected append failure")
	freg.Enable(fault.Rule{Point: PointAppend, Err: injected})
	if _, err := b2.Append("doomed"); !errors.Is(err, injected) {
		t.Fatalf("append under fault = %v", err)
	}
	freg.Disable(PointAppend)
	freg.Enable(fault.Rule{Point: PointAppend, PanicMsg: "append crashed"})
	if err := fault.Safe(func() error {
		_, err := b2.Append("doomed too")
		return err
	}); err == nil || !strings.Contains(err.Error(), "append crashed") {
		t.Fatalf("contained panic = %v", err)
	}
	freg.Disable(PointAppend)
	if got := reg2.Snapshot().Counters["broker.append_errors_total"]; got != 1 {
		t.Fatalf("append_errors_total %d, want 1 (panic is counted by fault stats, not the broker)", got)
	}
	if freg.Injected(PointAppend) != 2 {
		t.Fatalf("fault registry injected %d, want 2", freg.Injected(PointAppend))
	}

	b2.Kill() // SIGKILL analogue: nothing flushed, sealed or persisted

	// The crash interrupted an append: a frame header promising 512
	// bytes, payload cut off after 7.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	active := segs[len(segs)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 512)
	f.Write(hdr[:])
	f.Write([]byte("torn..."))
	f.Close()

	// --- Act 3: recovery and bit-identical replay. ---
	reg3 := obs.NewRegistry()
	b3, err := Open(Config{Dir: dir, Fsync: FsyncNever, Metrics: reg3})
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	snap := reg3.Snapshot()
	if snap.Counters["broker.truncated_total"] != 1 {
		t.Fatalf("truncated_total %d, want 1", snap.Counters["broker.truncated_total"])
	}
	if snap.Counters["broker.truncated_bytes"] != frameHeader+7 {
		t.Fatalf("truncated_bytes %d", snap.Counters["broker.truncated_bytes"])
	}
	const totalRecords = phase1Lines + phase2Lines
	if got := b3.NextOffset(); got != totalRecords+1 {
		t.Fatalf("NextOffset %d, want %d: acknowledged records lost", got, totalRecords+1)
	}
	cons, err := b3.Consumer("detector")
	if err != nil {
		t.Fatal(err)
	}
	if got := cons.Position(); got != wantCommitted+1 {
		t.Fatalf("resume position %d, want %d", got, wantCommitted+1)
	}
	cons.Close()

	stats3, p3, sink3, det3 := runLeg(t, b3, "detector", reg3)
	replayed := totalRecords - wantCommitted // offsets 23..33
	if stats3.LinesCollected != replayed {
		t.Fatalf("phase 3 collected %d lines, want %d", stats3.LinesCollected, replayed)
	}

	// Reference: the identical line suffix through an identical fresh
	// leg, fed from memory.
	refReg := obs.NewRegistry()
	pRef, sinkRef, detRef := detectorLeg(t, refReg)
	refLines := brokerLines(wantCommitted, replayed)
	refStats := pRef.Run(context.Background(), pipeline.NewSliceSource(refLines))
	if refStats.SequencesFormed != stats3.SequencesFormed {
		t.Fatalf("sequences: broker %d, reference %d", stats3.SequencesFormed, refStats.SequencesFormed)
	}

	// Every window's score, bit for bit, out of each leg's pattern
	// library (the library caches the model score per unique pattern).
	seqs := windowSeqs(wantCommitted, replayed)
	if len(seqs) == 0 || len(seqs) != stats3.SequencesFormed {
		t.Fatalf("reconstructed %d windows, pipeline formed %d", len(seqs), stats3.SequencesFormed)
	}
	for i, seq := range seqs {
		got, okG := p3.Library().Lookup(seq)
		want, okW := pRef.Library().Lookup(seq)
		if !okG || !okW {
			t.Fatalf("window %d %v missing from a library (broker %v, ref %v)", i, seq, okG, okW)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("window %d score %v != reference %v", i, got, want)
		}
	}

	// Anomaly reports (if any crossed the threshold) must agree exactly.
	gotReps, wantReps := sink3.Reports(), sinkRef.Reports()
	if len(gotReps) != len(wantReps) {
		t.Fatalf("reports: broker %d, reference %d", len(gotReps), len(wantReps))
	}
	for i := range gotReps {
		if math.Float64bits(gotReps[i].Score) != math.Float64bits(wantReps[i].Score) {
			t.Fatalf("report %d score %v != %v", i, gotReps[i].Score, wantReps[i].Score)
		}
	}

	// The two detectors saw identical online traffic, so probing them
	// with fixed sequences must agree bit for bit.
	probe := [][]int{{0, 1, 2, 3}, {3, 4, 5, 0}, {5, 5, 5, 5}}
	gotScores := det3.ScoreSequences(probe)
	wantScores := detRef.ScoreSequences(probe)
	for i := range probe {
		if math.Float64bits(gotScores[i]) != math.Float64bits(wantScores[i]) {
			t.Fatalf("probe %d: %v != %v", i, gotScores[i], wantScores[i])
		}
	}

	// Replay advanced the committed offset to the new watermark.
	wantCommitted3 := uint64(wantCommitted + (replayed/testWindow.Step)*testWindow.Step)
	if got := b3.Committed("detector"); got != wantCommitted3 {
		t.Fatalf("phase 3 committed %d, want %d", got, wantCommitted3)
	}
}

// TestFsyncFaultInjection holds FsyncAlways to its contract under an
// injected fsync failure: the append reports the error (the record is
// written but not provably durable), the failure is counted, and the
// next clean Sync acks the backlog.
func TestFsyncFaultInjection(t *testing.T) {
	freg := fault.New(3)
	b, reg := openTest(t, t.TempDir(), func(c *Config) {
		c.Fsync = FsyncAlways
		c.Faults = freg
	})
	defer b.Close()

	injected := errors.New("injected fsync failure")
	freg.Enable(fault.Rule{Point: PointFsync, Err: injected, Limit: 1})
	if _, err := b.Append("not provably durable"); !errors.Is(err, injected) {
		t.Fatalf("append = %v, want injected fsync error", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["broker.fsync_errors_total"] != 1 {
		t.Fatalf("fsync_errors_total %d", snap.Counters["broker.fsync_errors_total"])
	}
	if snap.Counters["broker.acked_total"] != 0 {
		t.Fatalf("acked_total %d after failed fsync", snap.Counters["broker.acked_total"])
	}
	// The record itself was appended; a clean sync acks it.
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["broker.acked_total"]; got != 1 {
		t.Fatalf("acked_total %d after recovery sync", got)
	}
	got := drainAll(t, b, "g")
	if len(got) != 1 || got[0] != "not provably durable" {
		t.Fatalf("records %v", got)
	}
}

// TestReadFaultInjection: a failing record read ends that consumer with
// a diagnosable error instead of wedging or fabricating data, and other
// consumers are unaffected.
func TestReadFaultInjection(t *testing.T) {
	freg := fault.New(5)
	b, reg := openTest(t, t.TempDir(), func(c *Config) { c.Faults = freg })
	defer b.Close()
	for i := 0; i < 5; i++ {
		if _, err := b.Append(fmt.Sprintf("rf%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	b.CloseIntake()

	injected := errors.New("injected read failure")
	freg.Enable(fault.Rule{Point: PointRead, After: 2, Limit: 1, Err: injected})

	c, err := b.Consumer("broken")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var seen int
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("consumed %d before injected failure, want 2", seen)
	}
	if !errors.Is(c.Err(), injected) {
		t.Fatalf("consumer Err = %v", c.Err())
	}
	if reg.Snapshot().Counters["broker.read_errors_total"] != 1 {
		t.Fatal("read_errors_total missed")
	}

	freg.Disable(PointRead)
	c2, err := b.Consumer("healthy")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var all int
	for {
		if _, ok := c2.Next(); !ok {
			break
		}
		all++
	}
	if all != 5 || c2.Err() != nil {
		t.Fatalf("healthy consumer saw %d records, err %v", all, c2.Err())
	}
}

// TestWriteFailurePoisonsBroker: a failed segment write marks the broker
// failed so later appends cannot interleave with a torn tail; recovery
// on reopen truncates the damage.
func TestWriteFailurePoisonsBroker(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, nil)
	if _, err := b.Append("before"); err != nil {
		t.Fatal(err)
	}
	// Force the next write to fail by closing the active file descriptor
	// out from under the broker (an EBADF stands in for a full disk).
	b.mu.Lock()
	b.active.Close()
	b.mu.Unlock()
	if _, err := b.Append("will fail"); err == nil {
		t.Fatal("append on closed fd succeeded")
	}
	if _, err := b.Append("still failing"); err == nil {
		t.Fatal("poisoned broker accepted an append")
	}
	b.Kill()

	b2, _ := openTest(t, dir, nil)
	defer b2.Close()
	got := drainAll(t, b2, "g")
	if len(got) != 1 || got[0] != "before" {
		t.Fatalf("recovered records %v", got)
	}
}
