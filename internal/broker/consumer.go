package broker

import (
	"bufio"
	"fmt"
	"os"
)

// Consumer reads a group's records in offset order. It implements the
// pipeline's Source interface (Next) and its AckSource extension (Ack),
// so `pipeline.Run(ctx, consumer)` streams straight off the WAL and
// commits progress as windows finish detection:
//
//	Next returns records sequentially, blocking at the head of the log
//	until a producer appends more or the intake closes (then it returns
//	false — the drain signal).
//
//	Ack(n) marks the first n records this consumer handed out as fully
//	processed; with AutoCommit (the default) the committed offset
//	advances immediately and is persisted every CommitEvery records, so
//	a crash replays at most one commit stride of already-processed
//	records (at-least-once).
//
// A Consumer is owned by one goroutine; concurrent consumers of the
// same broker each get their own Consumer (and usually their own
// group).
type Consumer struct {
	b     *Broker
	group string

	pos      uint64 // next offset to read
	startOff uint64 // committed offset when the consumer was opened
	acked    uint64 // highest offset reported processed via Ack

	// AutoCommit advances the committed offset on every Ack (default
	// true). Disable to batch commits manually via Commit.
	AutoCommit bool

	// CommitEvery bounds how far the offsets file may trail the
	// acknowledged offset under AutoCommit (default DefaultCommitEvery
	// records; 1 persists every ack). Every Ack still advances the
	// in-memory committed offset — Committed, lag gauges and retention
	// see progress immediately — but rewriting the offsets file costs a
	// file create + rename, which would dominate the detection hot path
	// if paid per window. Explicit Commit and Broker.Close always
	// persist.
	CommitEvery uint64

	persisted uint64 // acked value at the last offsets-file write

	f         *os.File
	r         *bufio.Reader
	segBase   uint64 // base of the currently open segment
	nextInSeg uint64 // offset the next frame in the open reader holds
	err       error
}

// Consumer opens a reader for the named group, resuming at the group's
// committed offset (or the oldest retained record for a new group). The
// group is registered with the retention policy immediately, so its
// unread records cannot be deleted out from under it.
func (b *Broker) Consumer(group string) (*Consumer, error) {
	if group == "" {
		return nil, fmt.Errorf("broker: consumer group name is required")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	committed, ok := b.groups[group]
	if !ok || committed < b.firstOff-1 {
		committed = b.firstOff - 1
	}
	if committed > b.nextOff-1 {
		committed = b.nextOff - 1
	}
	b.groups[group] = committed
	b.lagGaugeLocked(group).Set(int64(b.nextOff - 1 - committed))
	return &Consumer{
		b:           b,
		group:       group,
		pos:         committed + 1,
		startOff:    committed,
		acked:       committed,
		persisted:   committed,
		AutoCommit:  true,
		CommitEvery: DefaultCommitEvery,
	}, nil
}

// DefaultCommitEvery is the auto-commit persistence stride: the offsets
// file is rewritten once per this many acknowledged records, not on
// every ack. At-least-once delivery makes the trade safe — a crash
// merely re-detects up to a stride of records.
const DefaultCommitEvery = 256

// Next returns the next record, blocking at the log head until data
// arrives. It returns false when the intake has closed and every
// retained record was delivered, or on a read error (see Err).
func (c *Consumer) Next() (string, bool) {
	if c.err != nil {
		return "", false
	}
	b := c.b
	b.mu.Lock()
	for c.pos >= b.nextOff {
		if b.intakeClosed || b.closed {
			b.mu.Unlock()
			return "", false
		}
		b.cond.Wait()
	}
	seg := b.segmentFor(c.pos)
	first := b.firstOff
	b.mu.Unlock()
	if seg == nil {
		// Retention ran past this consumer's position — possible only if
		// another consumer committed offsets for the same group.
		c.fail(fmt.Errorf("broker: offset %d no longer retained (oldest is %d)", c.pos, first))
		return "", false
	}
	if err := b.cfg.Faults.Check(PointRead); err != nil {
		c.fail(err)
		return "", false
	}
	payload, err := c.readAt(seg)
	if err != nil {
		c.fail(fmt.Errorf("broker: reading offset %d: %w", c.pos, err))
		return "", false
	}
	c.pos++
	b.om.consumed.Inc()
	return string(payload), true
}

// readAt returns the frame at c.pos from seg, maintaining a sequential
// buffered reader that survives segment rolls and mid-segment starts.
// The caller has verified (under the broker lock) that c.pos is fully
// written, so every frame read here is complete on disk.
func (c *Consumer) readAt(seg *segment) ([]byte, error) {
	if c.f == nil || c.segBase != seg.base {
		if c.f != nil {
			c.f.Close()
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		c.f = f
		c.r = bufio.NewReaderSize(f, 1<<16)
		c.segBase = seg.base
		c.nextInSeg = seg.base
	}
	for c.nextInSeg < c.pos {
		// Skip records already consumed in an earlier session (resuming
		// mid-segment after a restart).
		if _, err := readFrame(c.r, c.b.cfg.MaxRecordBytes); err != nil {
			return nil, err
		}
		c.nextInSeg++
	}
	payload, err := readFrame(c.r, c.b.cfg.MaxRecordBytes)
	if err != nil {
		return nil, err
	}
	c.nextInSeg++
	return payload, nil
}

// fail records a terminal consumer error.
func (c *Consumer) fail(err error) {
	if c.err == nil {
		c.err = err
		c.b.om.readErrors.Inc()
	}
}

// Err returns the error that ended consumption, if any (a false from
// Next with a nil Err is a clean end-of-stream).
func (c *Consumer) Err() error { return c.err }

// Position returns the offset of the next record Next will return.
func (c *Consumer) Position() uint64 { return c.pos }

// Ack implements the pipeline's AckSource: the first done records this
// consumer returned are fully processed. Under AutoCommit the committed
// offset advances immediately (retention and lag see it) and the
// offsets file is rewritten once per CommitEvery records; commit
// failures are counted (broker.commit_errors_total) but do not stop
// consumption — progress is simply re-done after a restart
// (at-least-once).
func (c *Consumer) Ack(done uint64) {
	if off := c.startOff + done; off > c.acked {
		c.acked = off
	}
	if !c.AutoCommit {
		return
	}
	persist := c.CommitEvery <= 1 || c.acked >= c.persisted+c.CommitEvery
	if err := c.commit(persist); err != nil {
		c.b.om.commitErrors.Inc()
	}
}

// Commit persists the highest acknowledged offset for the group and
// lets retention reclaim fully-consumed sealed segments.
func (c *Consumer) Commit() error { return c.commit(true) }

func (c *Consumer) commit(persist bool) error {
	b := c.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if c.acked > b.groups[c.group] {
		b.groups[c.group] = c.acked
		b.retainLocked()
		b.updateGaugesLocked()
	}
	if !persist || c.acked == c.persisted {
		return nil
	}
	if err := b.saveOffsetsLocked(); err != nil {
		return err
	}
	c.persisted = c.acked
	return nil
}

// Close releases the consumer's file handle. The broker itself stays
// open.
func (c *Consumer) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
