package broker

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := []string{"", "a", "hello world", strings.Repeat("x", 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, []byte(p))
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := readFrame(r, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := readFrame(r, 1<<20); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	good := appendFrame(nil, []byte("payload"))

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn header", good[:5], "torn frame header"},
		{"torn payload", good[:frameHeader+3], "torn frame payload"},
		{"crc mismatch", func() []byte {
			b := append([]byte(nil), good...)
			b[frameHeader] ^= 0xff
			return b
		}(), "checksum mismatch"},
		{"implausible length", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[0:4], 1<<30)
			return b
		}(), "exceeds record limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrame(bufio.NewReader(bytes.NewReader(tc.data)), 1<<20)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestScanSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.wal")
	var buf []byte
	for _, p := range []string{"one", "two", "three"} {
		buf = appendFrame(buf, []byte(p))
	}
	validLen := int64(len(buf))
	// A torn tail: a header promising 100 bytes followed by only 4.
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	buf = append(buf, hdr[:]...)
	buf = append(buf, 'x', 'x', 'x', 'x')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, valid, scanErr, err := scanSegment(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if recs != 3 || valid != validLen {
		t.Fatalf("recs=%d valid=%d, want 3/%d", recs, valid, validLen)
	}
	if scanErr == nil || !strings.Contains(scanErr.Error(), "torn frame payload") {
		t.Fatalf("scanErr = %v, want torn frame payload", scanErr)
	}
}

func TestScanSegmentClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.wal")
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = appendFrame(buf, []byte("record"))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, valid, scanErr, err := scanSegment(path, 1<<20)
	if err != nil || scanErr != nil {
		t.Fatalf("err=%v scanErr=%v", err, scanErr)
	}
	if recs != 5 || valid != int64(len(buf)) {
		t.Fatalf("recs=%d valid=%d", recs, valid)
	}
}

func TestSegmentNaming(t *testing.T) {
	dir := t.TempDir()
	p := segmentPath(dir, 42)
	base, ok := parseSegmentBase(filepath.Base(p))
	if !ok || base != 42 {
		t.Fatalf("roundtrip of %s: base=%d ok=%v", p, base, ok)
	}
	for _, bad := range []string{"x.wal", "123.txt", "offsets.json", ".wal"} {
		if _, ok := parseSegmentBase(bad); ok {
			t.Fatalf("parseSegmentBase(%q) accepted", bad)
		}
	}

	// listSegments sorts by base offset, not lexically-by-accident.
	for _, base := range []uint64{300, 1, 42, 25} {
		if err := os.WriteFile(segmentPath(dir, base), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	os.WriteFile(filepath.Join(dir, "offsets.json"), []byte("{}"), 0o644)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bases []uint64
	for _, s := range segs {
		bases = append(bases, s.base)
	}
	want := []uint64{1, 25, 42, 300}
	if len(bases) != len(want) {
		t.Fatalf("bases %v, want %v", bases, want)
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("bases %v, want %v", bases, want)
		}
	}
}
