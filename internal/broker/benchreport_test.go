package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// benchReport is the schema of BENCH_broker.json, produced by
// `make bench-broker` (full) and `make bench-broker-smoke` (shrunk
// sizes, no threshold enforcement — it runs inside `make verify`).
type benchReport struct {
	Smoke  bool `json:"smoke"`
	Append struct {
		Records     int     `json:"records"`
		LinesPerSec float64 `json:"lines_per_sec"`
		P50Micros   float64 `json:"p50_us"`
		P99Micros   float64 `json:"p99_us"`
	} `json:"append"`
	Consume struct {
		LinesPerSec float64 `json:"lines_per_sec"`
	} `json:"consume"`
	E2E struct {
		Lines             int     `json:"lines"`
		SliceLinesPerSec  float64 `json:"slice_lines_per_sec"`
		BrokerLinesPerSec float64 `json:"broker_lines_per_sec"`
		OverheadRatio     float64 `json:"overhead_ratio"`
	} `json:"e2e"`
}

// quantile returns the q-th quantile (0..1) of sorted durations, in
// microseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

// TestBenchBrokerReport measures the broker and writes BENCH_broker.json.
// Gated on BENCH_BROKER_OUT so `go test ./...` stays fast;
// BENCH_BROKER_SMOKE shrinks the sizes for the verify gate.
//
// Three measurements:
//
//  1. Append throughput and per-append latency (p50/p99) under the
//     production-default FsyncInterval policy.
//  2. Consume throughput draining the same records.
//  3. End-to-end pipeline throughput: the same lines through identical
//     fresh detector legs, once from an in-memory SliceSource and once
//     appended to and consumed from a broker. The overhead ratio
//     (slice rate / broker rate) must stay ≤ 2.0 in full mode — the
//     durability layer may not halve detection throughput.
func TestBenchBrokerReport(t *testing.T) {
	out := os.Getenv("BENCH_BROKER_OUT")
	if out == "" {
		t.Skip("set BENCH_BROKER_OUT=path to run the broker benchmark and write the report")
	}
	smoke := os.Getenv("BENCH_BROKER_SMOKE") != ""
	appendN, e2eN := 200_000, 20_000
	if smoke {
		appendN, e2eN = 5_000, 2_000
	}

	var rep benchReport
	rep.Smoke = smoke

	// --- Append: production-default fsync policy, per-append latency. ---
	bk, err := Open(Config{
		Dir:             t.TempDir(),
		Fsync:           FsyncInterval,
		MaxBacklogBytes: -1,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lats := make([]time.Duration, appendN)
	start := time.Now()
	for i := 0; i < appendN; i++ {
		t0 := time.Now()
		if _, err := bk.Append(benchLine); err != nil {
			t.Fatal(err)
		}
		lats[i] = time.Since(t0)
	}
	appendDur := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.Append.Records = appendN
	rep.Append.LinesPerSec = float64(appendN) / appendDur.Seconds()
	rep.Append.P50Micros = quantile(lats, 0.50)
	rep.Append.P99Micros = quantile(lats, 0.99)

	// --- Consume: drain everything just appended. ---
	bk.CloseIntake()
	cons, err := bk.Consumer("bench")
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	var drained int
	for {
		if _, ok := cons.Next(); !ok {
			break
		}
		drained++
	}
	consumeDur := time.Since(start)
	if err := cons.Err(); err != nil {
		t.Fatal(err)
	}
	if drained != appendN {
		t.Fatalf("drained %d of %d records", drained, appendN)
	}
	cons.Close()
	if err := bk.Close(); err != nil {
		t.Fatal(err)
	}
	rep.Consume.LinesPerSec = float64(drained) / consumeDur.Seconds()

	// --- E2E: identical detector legs, slice vs broker. ---
	lines := brokerLines(0, e2eN)
	rep.E2E.Lines = e2eN

	pSlice, _, _ := detectorLeg(t, obs.NewRegistry())
	start = time.Now()
	sliceStats := pSlice.Run(context.Background(), pipeline.NewSliceSource(lines))
	sliceDur := time.Since(start)
	if sliceStats.LinesCollected != e2eN {
		t.Fatalf("slice leg collected %d lines", sliceStats.LinesCollected)
	}
	rep.E2E.SliceLinesPerSec = float64(e2eN) / sliceDur.Seconds()

	bk2, err := Open(Config{
		Dir:             t.TempDir(),
		Fsync:           FsyncInterval,
		MaxBacklogBytes: -1,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pBroker, _, _ := detectorLeg(t, obs.NewRegistry())
	start = time.Now()
	if _, _, err := bk2.AppendBatch(lines); err != nil {
		t.Fatal(err)
	}
	bk2.CloseIntake()
	cons2, err := bk2.Consumer("bench")
	if err != nil {
		t.Fatal(err)
	}
	brokerStats := pBroker.Run(context.Background(), cons2)
	brokerDur := time.Since(start)
	if err := cons2.Err(); err != nil {
		t.Fatal(err)
	}
	cons2.Close()
	if err := bk2.Close(); err != nil {
		t.Fatal(err)
	}
	if brokerStats.LinesCollected != e2eN {
		t.Fatalf("broker leg collected %d lines", brokerStats.LinesCollected)
	}
	rep.E2E.BrokerLinesPerSec = float64(e2eN) / brokerDur.Seconds()
	rep.E2E.OverheadRatio = rep.E2E.SliceLinesPerSec / rep.E2E.BrokerLinesPerSec

	t.Logf("append: %.0f lines/s (p50 %.1fµs, p99 %.1fµs); consume: %.0f lines/s; e2e slice %.0f vs broker %.0f lines/s (ratio %.2f)",
		rep.Append.LinesPerSec, rep.Append.P50Micros, rep.Append.P99Micros,
		rep.Consume.LinesPerSec, rep.E2E.SliceLinesPerSec, rep.E2E.BrokerLinesPerSec, rep.E2E.OverheadRatio)

	if !smoke && rep.E2E.OverheadRatio > 2.0 {
		t.Errorf("broker e2e overhead ratio %.2f exceeds 2.0", rep.E2E.OverheadRatio)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
