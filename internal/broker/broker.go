// Package broker is a durable, replayable log ingestion layer — the
// repo-local analogue of the paper's §VI collection bus
// (Filebeat→Kafka→Logstash). Raw log lines land in a segmented
// append-only write-ahead log (CRC32C-framed, length-prefixed records)
// before the detection pipeline ever sees them, so a crash, restart, or
// slow consumer no longer loses traffic the way the in-memory
// SliceSource path does.
//
// The subsystem is pure Go, stdlib-only, and deliberately small:
//
//   - WAL: records append to the active segment; segments roll at a
//     configurable size and are immutable once sealed. Durability is an
//     fsync policy — always (sync every append), interval (a background
//     syncer on a cadence), never (page cache only).
//   - Recovery: Open rescans every segment, verifies each frame's CRC,
//     and truncates a torn tail on the active segment (the signature of
//     a crash mid-append). Corruption in a sealed segment is refused
//     loudly rather than silently skipped.
//   - Consumer groups: named groups own committed offsets persisted to
//     an offsets file; a restarted consumer resumes at committed+1, so
//     acknowledged records are never redelivered and unacknowledged
//     ones always are (at-least-once).
//   - Retention: sealed segments every group has fully consumed are
//     deleted, bounding disk.
//   - Admission control: total retained bytes are bounded; a full
//     backlog either blocks the producer (lossless backpressure) or
//     rejects the append (load shedding; the HTTP intake turns this
//     into 429).
//
// Everything is instrumented through obs (appended/acked/replayed/
// truncated counters, segment and per-group lag gauges, append and
// fsync latency histograms) and faultable at the named injection points
// PointAppend, PointFsync, PointRead.
package broker

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"logsynergy/internal/fault"
	"logsynergy/internal/obs"
)

// Named fault-injection points the broker consults (Config.Faults).
const (
	// PointAppend guards one append call (single record or batch).
	PointAppend = "broker.append"
	// PointFsync guards one fsync of the active segment.
	PointFsync = "broker.fsync"
	// PointRead guards one consumer record read.
	PointRead = "broker.read"
)

// Errors returned by the append path. Intake handlers map them onto
// HTTP statuses (429, 503).
var (
	// ErrBacklogFull reports an append rejected by admission control
	// under FullReject.
	ErrBacklogFull = errors.New("broker: backlog full")
	// ErrClosed reports an append or consumer operation after the
	// intake was closed.
	ErrClosed = errors.New("broker: closed")
)

// FsyncPolicy selects when appended records are flushed to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs on a background cadence (Config.FsyncEvery).
	// A crash loses at most one interval of appends; this is the
	// production default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs inside every append call before it returns
	// (strongest durability, slowest).
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache (fastest; a
	// machine crash may lose recent records, a process crash does not).
	FsyncNever
)

// String names the policy for flags and logs.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// ParseFsyncPolicy maps the CLI spelling onto a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("broker: unknown fsync policy %q (want always, interval or never)", s)
}

// FullPolicy selects what an append does when the retained backlog hits
// Config.MaxBacklogBytes.
type FullPolicy int

const (
	// FullBlock parks the producer until retention frees space
	// (lossless backpressure; requires a live consumer committing
	// offsets, or the producer waits forever).
	FullBlock FullPolicy = iota
	// FullReject fails the append with ErrBacklogFull (load shedding;
	// the HTTP intake answers 429).
	FullReject
)

// String names the policy for flags and logs.
func (p FullPolicy) String() string {
	if p == FullReject {
		return "reject"
	}
	return "block"
}

// ParseFullPolicy maps the CLI spelling onto a policy.
func ParseFullPolicy(s string) (FullPolicy, error) {
	switch s {
	case "block", "":
		return FullBlock, nil
	case "reject":
		return FullReject, nil
	}
	return 0, fmt.Errorf("broker: unknown backlog policy %q (want block or reject)", s)
}

// Config assembles a broker. Only Dir is required; zero fields take the
// defaults documented on each.
type Config struct {
	// Dir is the WAL directory (created if missing). One broker owns a
	// directory at a time.
	Dir string
	// SegmentBytes rolls the active segment once it would exceed this
	// size (default 8 MiB). A single batch larger than the limit still
	// lands in one segment.
	SegmentBytes int64
	// MaxRecordBytes bounds one record's payload (default 1 MiB);
	// larger appends fail, and recovery treats larger claimed frame
	// lengths as corruption.
	MaxRecordBytes int
	// Fsync is the durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the background sync cadence under FsyncInterval
	// (default 50ms).
	FsyncEvery time.Duration
	// MaxBacklogBytes bounds the total retained WAL bytes (default
	// 256 MiB; <0 = unbounded). Appends past the bound follow
	// FullPolicy.
	MaxBacklogBytes int64
	// FullPolicy selects block-vs-reject on a full backlog (default
	// FullBlock).
	FullPolicy FullPolicy
	// DisableRetention keeps fully-consumed sealed segments instead of
	// deleting them (audit/replay-from-zero workloads).
	DisableRetention bool
	// Metrics receives the broker's counters, gauges and histograms
	// (nil = obs.Default()).
	Metrics *obs.Registry
	// Faults is the injection registry consulted at PointAppend,
	// PointFsync and PointRead (nil = nothing injected).
	Faults *fault.Registry
}

// withDefaults fills zero fields with production defaults.
func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = 1 << 20
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 50 * time.Millisecond
	}
	if c.MaxBacklogBytes == 0 {
		c.MaxBacklogBytes = 256 << 20
	}
	return c
}

// brokerObs caches the broker's metric handles.
type brokerObs struct {
	appended      *obs.Counter
	appendedBytes *obs.Counter
	acked         *obs.Counter
	consumed      *obs.Counter
	replayed      *obs.Counter
	truncated     *obs.Counter
	truncatedB    *obs.Counter
	retained      *obs.Counter
	blocked       *obs.Counter
	rejected      *obs.Counter
	appendErrors  *obs.Counter
	fsyncErrors   *obs.Counter
	readErrors    *obs.Counter
	commitErrors  *obs.Counter
	segments      *obs.Gauge
	backlogBytes  *obs.Gauge
	nextOffset    *obs.Gauge
	appendSec     *obs.Histogram
	fsyncSec      *obs.Histogram
}

func newBrokerObs(reg *obs.Registry) brokerObs {
	return brokerObs{
		appended:      reg.Counter("broker.appended_total"),
		appendedBytes: reg.Counter("broker.appended_bytes"),
		acked:         reg.Counter("broker.acked_total"),
		consumed:      reg.Counter("broker.consumed_total"),
		replayed:      reg.Counter("broker.replayed_total"),
		truncated:     reg.Counter("broker.truncated_total"),
		truncatedB:    reg.Counter("broker.truncated_bytes"),
		retained:      reg.Counter("broker.retention_deleted_total"),
		blocked:       reg.Counter("broker.blocked_appends_total"),
		rejected:      reg.Counter("broker.rejected_appends_total"),
		appendErrors:  reg.Counter("broker.append_errors_total"),
		fsyncErrors:   reg.Counter("broker.fsync_errors_total"),
		readErrors:    reg.Counter("broker.read_errors_total"),
		commitErrors:  reg.Counter("broker.commit_errors_total"),
		segments:      reg.Gauge("broker.segments"),
		backlogBytes:  reg.Gauge("broker.backlog_bytes"),
		nextOffset:    reg.Gauge("broker.next_offset"),
		appendSec:     reg.Histogram("broker.append_seconds"),
		fsyncSec:      reg.Histogram("broker.fsync_seconds"),
	}
}

// Broker is the durable log broker: one WAL directory, any number of
// producers (Append/AppendBatch, the HTTP intake) and consumer groups.
// All methods are safe for concurrent use.
type Broker struct {
	cfg Config
	reg *obs.Registry
	om  brokerObs

	mu    sync.Mutex
	cond  *sync.Cond // signaled on append / intake close (tailing consumers)
	space *sync.Cond // signaled on retention / close (blocked producers)

	segments   []*segment // ascending base; last is active
	active     *os.File
	nextOff    uint64 // offset the next appended record gets (1-based)
	firstOff   uint64 // oldest retained offset (base of segments[0])
	liveBytes  int64  // total retained WAL bytes
	lastSynced uint64 // highest offset covered by an fsync (or assumed durable)
	failed     error  // sticky write-path failure; appends refuse until reopen

	groups    map[string]uint64 // committed offset per consumer group
	lagGauges map[string]*obs.Gauge

	intakeClosed bool
	closed       bool
	syncStop     chan struct{}
	syncDone     chan struct{}
}

// Open opens (or creates) the broker at cfg.Dir, replaying every
// segment: frames are CRC-verified, a torn tail on the active segment is
// truncated (counted in broker.truncated_total / truncated_bytes), and
// committed consumer offsets are loaded from the offsets file.
func Open(cfg Config) (*Broker, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("broker: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("broker: creating %s: %w", cfg.Dir, err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	b := &Broker{
		cfg:       cfg,
		reg:       reg,
		om:        newBrokerObs(reg),
		groups:    make(map[string]uint64),
		lagGauges: make(map[string]*obs.Gauge),
	}
	b.cond = sync.NewCond(&b.mu)
	b.space = sync.NewCond(&b.mu)

	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		segs = []*segment{{base: 1, path: segmentPath(cfg.Dir, 1)}}
		f, err := os.OpenFile(segs[0].path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("broker: creating first segment: %w", err)
		}
		f.Close()
	}
	for i, seg := range segs {
		recs, valid, scanErr, err := scanSegment(seg.path, cfg.MaxRecordBytes)
		if err != nil {
			return nil, err
		}
		fi, err := os.Stat(seg.path)
		if err != nil {
			return nil, fmt.Errorf("broker: stating segment: %w", err)
		}
		if valid < fi.Size() {
			if i != len(segs)-1 {
				// Only the active tail can legitimately be torn; damage
				// inside a sealed segment means lost acknowledged data and
				// must not be silently truncated away.
				return nil, fmt.Errorf("broker: sealed segment %s corrupt at byte %d: %v", seg.path, valid, scanErr)
			}
			if err := os.Truncate(seg.path, valid); err != nil {
				return nil, fmt.Errorf("broker: truncating torn tail of %s: %w", seg.path, err)
			}
			b.om.truncated.Inc()
			b.om.truncatedB.Add(fi.Size() - valid)
		}
		seg.recs, seg.size = recs, valid
		b.om.replayed.Add(int64(recs))
		b.liveBytes += valid
		if i > 0 && segs[i-1].base+segs[i-1].recs != seg.base {
			return nil, fmt.Errorf("broker: offset gap between segments %s and %s", segs[i-1].path, seg.path)
		}
	}
	b.segments = segs
	b.firstOff = segs[0].base
	last := segs[len(segs)-1]
	b.nextOff = last.base + last.recs
	// Whatever survived replay is as durable as it will get; the acked
	// counter tracks only this process's appends.
	b.lastSynced = b.nextOff - 1

	b.active, err = os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("broker: opening active segment: %w", err)
	}
	groups, err := loadOffsets(offsetsPath(cfg.Dir))
	if err != nil {
		b.active.Close()
		return nil, err
	}
	for g, off := range groups {
		// Clamp committed offsets into the retained range: behind the
		// oldest record (retention already freed it) or ahead of the log
		// (offsets file survived a WAL wipe) are both repaired, not fatal.
		if off > b.nextOff-1 {
			off = b.nextOff - 1
		}
		if off < b.firstOff-1 {
			off = b.firstOff - 1
		}
		b.groups[g] = off
	}
	b.updateGaugesLocked()

	if cfg.Fsync == FsyncInterval {
		b.syncStop = make(chan struct{})
		b.syncDone = make(chan struct{})
		go b.syncLoop(b.syncStop)
	}
	return b, nil
}

// syncLoop is the background fsync ticker under FsyncInterval. The stop
// channel is passed in (not read off the struct) because stopSyncLoop
// nils the field before closing it.
func (b *Broker) syncLoop(stop <-chan struct{}) {
	defer close(b.syncDone)
	t := time.NewTicker(b.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_ = b.Sync()
		}
	}
}

// Append stores one log line, returning its offset. Durability on
// return follows the fsync policy; admission control may block or
// reject per FullPolicy.
func (b *Broker) Append(line string) (uint64, error) {
	first, _, err := b.appendPayloads([][]byte{[]byte(line)})
	return first, err
}

// AppendBatch stores lines as consecutive records with a single write
// (and, under FsyncAlways, a single fsync), returning the offsets of the
// first and last. An empty batch is a no-op.
func (b *Broker) AppendBatch(lines []string) (first, last uint64, err error) {
	if len(lines) == 0 {
		return 0, 0, nil
	}
	payloads := make([][]byte, len(lines))
	for i, l := range lines {
		payloads[i] = []byte(l)
	}
	return b.appendPayloads(payloads)
}

func (b *Broker) appendPayloads(payloads [][]byte) (first, last uint64, err error) {
	start := time.Now()
	if err := b.cfg.Faults.Check(PointAppend); err != nil {
		b.om.appendErrors.Inc()
		return 0, 0, err
	}
	var total int64
	for _, p := range payloads {
		if len(p) > b.cfg.MaxRecordBytes {
			b.om.appendErrors.Inc()
			return 0, 0, fmt.Errorf("broker: record of %d bytes exceeds limit %d", len(p), b.cfg.MaxRecordBytes)
		}
		total += frameHeader + int64(len(p))
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed || b.intakeClosed {
			return 0, 0, ErrClosed
		}
		if b.failed != nil {
			return 0, 0, b.failed
		}
		if b.cfg.MaxBacklogBytes < 0 || b.liveBytes+total <= b.cfg.MaxBacklogBytes {
			break
		}
		if b.cfg.FullPolicy == FullReject {
			b.om.rejected.Inc()
			return 0, 0, fmt.Errorf("%w: %d bytes retained, limit %d", ErrBacklogFull, b.liveBytes, b.cfg.MaxBacklogBytes)
		}
		b.om.blocked.Inc()
		b.space.Wait()
	}
	if err := b.rollIfNeededLocked(total); err != nil {
		return 0, 0, err
	}

	buf := make([]byte, 0, total)
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	if _, err := b.active.Write(buf); err != nil {
		// A short write may have left a torn tail; poison the broker so
		// later appends cannot interleave with the damage. Recovery on
		// the next Open truncates the tail.
		b.failed = fmt.Errorf("broker: append write failed: %w", err)
		b.om.appendErrors.Inc()
		return 0, 0, b.failed
	}
	seg := b.segments[len(b.segments)-1]
	first = b.nextOff
	last = b.nextOff + uint64(len(payloads)) - 1
	b.nextOff = last + 1
	seg.recs += uint64(len(payloads))
	seg.size += total
	b.liveBytes += total
	b.om.appended.Add(int64(len(payloads)))
	b.om.appendedBytes.Add(total)

	switch b.cfg.Fsync {
	case FsyncAlways:
		if err := b.syncLocked(); err != nil {
			// The records are written but not provably durable; the caller
			// may retry (at-least-once) or surface the failure.
			b.cond.Broadcast()
			b.updateGaugesLocked()
			return first, last, err
		}
	case FsyncNever:
		b.om.acked.Add(int64(last - b.lastSynced))
		b.lastSynced = last
	}
	b.updateGaugesLocked()
	b.cond.Broadcast()
	b.om.appendSec.ObserveSince(start)
	return first, last, nil
}

// rollIfNeededLocked seals the active segment and starts a new one when
// the incoming bytes would push it past SegmentBytes.
func (b *Broker) rollIfNeededLocked(incoming int64) error {
	seg := b.segments[len(b.segments)-1]
	if seg.size == 0 || seg.size+incoming <= b.cfg.SegmentBytes {
		return nil
	}
	if b.cfg.Fsync != FsyncNever {
		// Sealed segments are durable by construction; sync before the
		// handle goes away.
		if err := b.syncLocked(); err != nil {
			return err
		}
	}
	if err := b.active.Close(); err != nil {
		return fmt.Errorf("broker: sealing segment: %w", err)
	}
	next := &segment{base: b.nextOff, path: segmentPath(b.cfg.Dir, b.nextOff)}
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		b.failed = fmt.Errorf("broker: creating segment: %w", err)
		return b.failed
	}
	b.active = f
	b.segments = append(b.segments, next)
	b.om.segments.Set(int64(len(b.segments)))
	return nil
}

// Sync flushes the active segment to stable storage, advancing the
// acked watermark. Under FsyncInterval a background goroutine calls it
// on a cadence; it is also safe to call directly.
func (b *Broker) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	return b.syncLocked()
}

func (b *Broker) syncLocked() error {
	if b.lastSynced >= b.nextOff-1 {
		return nil
	}
	if err := b.cfg.Faults.Check(PointFsync); err != nil {
		b.om.fsyncErrors.Inc()
		return err
	}
	start := time.Now()
	if err := b.active.Sync(); err != nil {
		b.om.fsyncErrors.Inc()
		return fmt.Errorf("broker: fsync: %w", err)
	}
	b.om.fsyncSec.ObserveSince(start)
	b.om.acked.Add(int64(b.nextOff - 1 - b.lastSynced))
	b.lastSynced = b.nextOff - 1
	return nil
}

// segmentFor returns the segment containing off, or nil if off is not
// retained. Callers hold b.mu.
func (b *Broker) segmentFor(off uint64) *segment {
	segs := b.segments
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if segs[mid].base <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if len(segs) == 0 || segs[lo].base > off || off >= segs[lo].base+segs[lo].recs {
		return nil
	}
	return segs[lo]
}

// retainLocked deletes sealed segments every registered group has fully
// consumed, bounding disk and waking producers blocked on admission.
func (b *Broker) retainLocked() {
	if b.cfg.DisableRetention || len(b.groups) == 0 {
		return
	}
	min := b.nextOff - 1
	for _, off := range b.groups {
		if off < min {
			min = off
		}
	}
	freed := false
	for len(b.segments) > 1 && b.segments[0].recs > 0 && b.segments[0].last() <= min {
		seg := b.segments[0]
		if err := os.Remove(seg.path); err != nil {
			break // disk trouble; retry on the next commit
		}
		b.liveBytes -= seg.size
		b.om.retained.Add(int64(seg.recs))
		b.segments = b.segments[1:]
		b.firstOff = b.segments[0].base
		freed = true
	}
	if freed {
		b.updateGaugesLocked()
		b.space.Broadcast()
	}
}

// updateGaugesLocked refreshes the instantaneous gauges.
func (b *Broker) updateGaugesLocked() {
	b.om.segments.Set(int64(len(b.segments)))
	b.om.backlogBytes.Set(b.liveBytes)
	b.om.nextOffset.Set(int64(b.nextOff))
	for g, off := range b.groups {
		b.lagGaugeLocked(g).Set(int64(b.nextOff - 1 - off))
	}
}

// lagGaugeLocked returns the per-group lag gauge, creating it on first
// use.
func (b *Broker) lagGaugeLocked(group string) *obs.Gauge {
	g, ok := b.lagGauges[group]
	if !ok {
		g = b.reg.Gauge("broker.lag." + group)
		b.lagGauges[group] = g
	}
	return g
}

// NextOffset returns the offset the next appended record will get.
func (b *Broker) NextOffset() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextOff
}

// OldestOffset returns the oldest retained offset (records before it
// were deleted by retention).
func (b *Broker) OldestOffset() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.firstOff
}

// Committed returns the committed offset for a consumer group (0 if the
// group never committed).
func (b *Broker) Committed(group string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.groups[group]
}

// Lag returns how many records the group has not yet committed.
func (b *Broker) Lag(group string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	off, ok := b.groups[group]
	if !ok {
		off = b.firstOff - 1
	}
	return b.nextOff - 1 - off
}

// SegmentCount returns the number of retained segments (diagnostics).
func (b *Broker) SegmentCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.segments)
}

// CloseIntake stops accepting appends. Tailing consumers drain the
// remaining records and then see end-of-stream — the first half of a
// graceful shutdown.
func (b *Broker) CloseIntake() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.intakeClosed {
		return
	}
	b.intakeClosed = true
	b.cond.Broadcast()
	b.space.Broadcast()
}

// Close shuts the broker down cleanly: intake closes, the interval
// syncer stops, the active segment gets a final fsync (policy
// permitting), and consumer offsets are persisted.
func (b *Broker) Close() error {
	b.CloseIntake()
	b.stopSyncLoop()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	var firstErr error
	if b.cfg.Fsync != FsyncNever {
		if err := b.syncLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := b.saveOffsetsLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := b.active.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	b.cond.Broadcast()
	b.space.Broadcast()
	return firstErr
}

// Kill simulates a crash (the SIGKILL analogue for chaos tests): file
// handles drop with no flush, no fsync, no sealing, and no offset
// persistence. Data already written reaches the page cache — exactly
// like a killed process — and the next Open runs recovery.
func (b *Broker) Kill() {
	b.stopSyncLoop()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.intakeClosed = true
	b.active.Close()
	b.cond.Broadcast()
	b.space.Broadcast()
}

// stopSyncLoop halts the interval fsync goroutine, if running.
func (b *Broker) stopSyncLoop() {
	b.mu.Lock()
	stop := b.syncStop
	b.syncStop = nil
	b.mu.Unlock()
	if stop != nil {
		close(stop)
		<-b.syncDone
	}
}
