package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/obs"
)

// openTest opens a broker on its own registry in dir, applying mutate to
// the config first. Tests default to FsyncNever: durability against a
// real machine crash is irrelevant under t.TempDir, and skipping fsync
// keeps the suite fast.
func openTest(t testing.TB, dir string, mutate func(*Config)) (*Broker, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{Dir: dir, Fsync: FsyncNever, Metrics: reg}
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return b, reg
}

// drain reads every remaining record from a fresh consumer for group.
func drainAll(t *testing.T, b *Broker, group string) []string {
	t.Helper()
	c, err := b.Consumer(group)
	if err != nil {
		t.Fatalf("Consumer: %v", err)
	}
	defer c.Close()
	b.CloseIntake()
	var lines []string
	for {
		line, ok := c.Next()
		if !ok {
			break
		}
		lines = append(lines, line)
	}
	if c.Err() != nil {
		t.Fatalf("consumer error: %v", c.Err())
	}
	return lines
}

func TestAppendConsumeRoundtrip(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), nil)
	defer b.Close()

	want := make([]string, 50)
	for i := range want {
		want[i] = fmt.Sprintf("log line %d", i)
	}
	first, last, err := b.AppendBatch(want[:30])
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 30 {
		t.Fatalf("batch offsets %d..%d, want 1..30", first, last)
	}
	for _, l := range want[30:] {
		if _, err := b.Append(l); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.NextOffset(); got != 51 {
		t.Fatalf("NextOffset %d, want 51", got)
	}

	got := drainAll(t, b, "g")
	if len(got) != len(want) {
		t.Fatalf("consumed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %q want %q", i, got[i], want[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["broker.appended_total"] != 50 || snap.Counters["broker.consumed_total"] != 50 {
		t.Fatalf("counters: %v", snap.Counters)
	}
	// FsyncNever acks at append time.
	if snap.Counters["broker.acked_total"] != 50 {
		t.Fatalf("acked_total %d, want 50", snap.Counters["broker.acked_total"])
	}
}

func TestTailingConsumerSeesLiveAppends(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), nil)
	defer b.Close()

	c, err := b.Consumer("tail")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := b.Append(fmt.Sprintf("live %d", i)); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
		b.CloseIntake()
	}()
	var got int
	for {
		line, ok := c.Next()
		if !ok {
			break
		}
		if want := fmt.Sprintf("live %d", got); line != want {
			t.Fatalf("record %d: %q want %q", got, line, want)
		}
		got++
	}
	wg.Wait()
	if got != n {
		t.Fatalf("tailed %d records, want %d", got, n)
	}
}

func TestRestartResumesAtCommitted(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, nil)
	for i := 1; i <= 10; i++ {
		if _, err := b.Append(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Consumer("detector")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.Next(); !ok {
			t.Fatalf("Next %d failed: %v", i, c.Err())
		}
	}
	c.Ack(4) // first 4 records fully processed; Close below persists
	if got := b.Committed("detector"); got != 4 {
		t.Fatalf("committed %d, want 4", got)
	}
	c.Close()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, reg2 := openTest(t, dir, nil)
	defer b2.Close()
	if got := b2.Committed("detector"); got != 4 {
		t.Fatalf("committed after restart %d, want 4", got)
	}
	if snap := reg2.Snapshot(); snap.Counters["broker.replayed_total"] != 10 {
		t.Fatalf("replayed_total %d, want 10", snap.Counters["broker.replayed_total"])
	}
	c2, err := b2.Consumer("detector")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Position(); got != 5 {
		t.Fatalf("resume position %d, want 5", got)
	}
	b2.CloseIntake()
	var got []string
	for {
		line, ok := c2.Next()
		if !ok {
			break
		}
		got = append(got, line)
	}
	if len(got) != 6 || got[0] != "r5" || got[5] != "r10" {
		t.Fatalf("resumed records %v", got)
	}
}

func TestSegmentRollAndRecovery(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := b.Append(fmt.Sprintf("segment roll record %04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.SegmentCount() < 3 {
		t.Fatalf("expected several segments, got %d", b.SegmentCount())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, reg2 := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	defer b2.Close()
	if got := b2.NextOffset(); got != n+1 {
		t.Fatalf("NextOffset after recovery %d, want %d", got, n+1)
	}
	if snap := reg2.Snapshot(); snap.Counters["broker.replayed_total"] != n {
		t.Fatalf("replayed %d, want %d", snap.Counters["broker.replayed_total"], n)
	}
	got := drainAll(t, b2, "g")
	for i, line := range got {
		if want := fmt.Sprintf("segment roll record %04d", i); line != want {
			t.Fatalf("record %d: %q want %q", i, line, want)
		}
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, nil)
	for i := 0; i < 8; i++ {
		if _, err := b.Append(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Kill() // crash: no flush, no offsets, no sealing

	// Simulate a crash mid-append: a frame header promising 64 payload
	// bytes, with only 5 on disk.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	active := segs[len(segs)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 64)
	f.Write(hdr[:])
	f.Write([]byte("oops!"))
	f.Close()

	b2, reg2 := openTest(t, dir, nil)
	defer b2.Close()
	snap := reg2.Snapshot()
	if snap.Counters["broker.truncated_total"] != 1 {
		t.Fatalf("truncated_total %d, want 1", snap.Counters["broker.truncated_total"])
	}
	if snap.Counters["broker.truncated_bytes"] != frameHeader+5 {
		t.Fatalf("truncated_bytes %d, want %d", snap.Counters["broker.truncated_bytes"], frameHeader+5)
	}
	if got := b2.NextOffset(); got != 9 {
		t.Fatalf("NextOffset %d, want 9 (8 intact records)", got)
	}
	// The log stays appendable after truncation.
	if _, err := b2.Append("t8"); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, b2, "g")
	if len(got) != 9 || got[8] != "t8" {
		t.Fatalf("post-recovery records %v", got)
	}
}

func TestSealedSegmentCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, func(c *Config) { c.SegmentBytes = 128 })
	for i := 0; i < 40; i++ {
		if _, err := b.Append(fmt.Sprintf("sealed corruption %04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if b.SegmentCount() < 2 {
		t.Fatalf("need a sealed segment, got %d", b.SegmentCount())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the first (sealed) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(Config{Dir: dir, Fsync: FsyncNever, Metrics: obs.NewRegistry()})
	if err == nil || !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("Open = %v, want sealed segment corruption error", err)
	}
}

func TestRetentionDeletesConsumedSegments(t *testing.T) {
	dir := t.TempDir()
	b, reg := openTest(t, dir, func(c *Config) { c.SegmentBytes = 256 })
	defer b.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := b.Append(fmt.Sprintf("retention record %04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := b.SegmentCount()
	if before < 3 {
		t.Fatalf("need several segments, got %d", before)
	}

	c, err := b.Consumer("only")
	if err != nil {
		t.Fatal(err)
	}
	b.CloseIntake()
	var seen uint64
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		seen++
	}
	if seen != n {
		t.Fatalf("consumed %d, want %d", seen, n)
	}
	c.Ack(seen) // commit the whole log; retention runs inside Commit
	c.Close()

	if after := b.SegmentCount(); after >= before {
		t.Fatalf("retention kept %d segments (was %d)", after, before)
	}
	if b.OldestOffset() == 1 {
		t.Fatal("oldest offset never advanced")
	}
	if snap := reg.Snapshot(); snap.Counters["broker.retention_deleted_total"] == 0 {
		t.Fatal("retention_deleted_total stayed zero")
	}
}

func TestBacklogReject(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), func(c *Config) {
		c.MaxBacklogBytes = 64
		c.FullPolicy = FullReject
	})
	defer b.Close()
	if _, err := b.Append(strings.Repeat("a", 40)); err != nil {
		t.Fatal(err)
	}
	_, err := b.Append(strings.Repeat("b", 40))
	if !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("got %v, want ErrBacklogFull", err)
	}
	if snap := reg.Snapshot(); snap.Counters["broker.rejected_appends_total"] != 1 {
		t.Fatalf("rejected_appends_total %d", snap.Counters["broker.rejected_appends_total"])
	}
}

func TestBacklogBlockUnblocksOnRetention(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), func(c *Config) {
		c.SegmentBytes = 64
		c.MaxBacklogBytes = 200
		c.FullPolicy = FullBlock
	})
	defer b.Close()

	c, err := b.Consumer("g")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fill the backlog close to the cap.
	var appended int
	for b.SegmentCount() < 3 {
		if _, err := b.Append(strings.Repeat("x", 30)); err != nil {
			t.Fatal(err)
		}
		appended++
	}
	for {
		if _, err := b.Append(strings.Repeat("x", 30)); errors.Is(err, ErrBacklogFull) {
			t.Fatal("FullBlock must not reject")
		} else if err != nil {
			t.Fatal(err)
		}
		appended++
		b.mu.Lock()
		full := b.liveBytes+(frameHeader+30) > b.cfg.MaxBacklogBytes
		b.mu.Unlock()
		if full {
			break
		}
	}

	// The next append must block until the consumer commits and retention
	// frees a sealed segment.
	done := make(chan error, 1)
	go func() {
		_, err := b.Append(strings.Repeat("y", 30))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("append returned early (err=%v) instead of blocking", err)
	case <-time.After(50 * time.Millisecond):
	}

	var seen uint64
	for seen < uint64(appended) {
		if _, ok := c.Next(); !ok {
			t.Fatalf("consumer ended early: %v", c.Err())
		}
		seen++
	}
	c.Ack(seen) // commit → retention → space freed

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked append failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append never unblocked after retention freed space")
	}
	if snap := reg.Snapshot(); snap.Counters["broker.blocked_appends_total"] == 0 {
		t.Fatal("blocked_appends_total stayed zero")
	}
}

func TestFsyncAlwaysAcksEveryAppend(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), func(c *Config) { c.Fsync = FsyncAlways })
	defer b.Close()
	for i := 0; i < 5; i++ {
		if _, err := b.Append("durable"); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["broker.acked_total"] != 5 {
		t.Fatalf("acked_total %d, want 5", snap.Counters["broker.acked_total"])
	}
	if snap.Histograms["broker.fsync_seconds"].Count < 5 {
		t.Fatalf("fsync histogram count %d", snap.Histograms["broker.fsync_seconds"].Count)
	}
}

func TestFsyncIntervalEventuallyAcks(t *testing.T) {
	b, reg := openTest(t, t.TempDir(), func(c *Config) {
		c.Fsync = FsyncInterval
		c.FsyncEvery = 5 * time.Millisecond
	})
	defer b.Close()
	if _, err := b.Append("interval"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters["broker.acked_total"] == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background fsync never acked the append")
}

func TestPolicyParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"", FsyncInterval}, {"never", FsyncNever}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Fatal("empty String()")
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("bogus fsync policy accepted")
	}
	for _, tc := range []struct {
		in   string
		want FullPolicy
	}{{"block", FullBlock}, {"", FullBlock}, {"reject", FullReject}} {
		got, err := ParseFullPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFullPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFullPolicy("bogus"); err == nil {
		t.Fatal("bogus full policy accepted")
	}
}

func TestOversizedRecordRefused(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), func(c *Config) { c.MaxRecordBytes = 16 })
	defer b.Close()
	if _, err := b.Append(strings.Repeat("z", 17)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := b.Append(strings.Repeat("z", 16)); err != nil {
		t.Fatalf("record at the limit refused: %v", err)
	}
}

func TestCorruptOffsetsFileRefused(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, nil)
	b.Append("x")
	b.Close()
	if err := os.WriteFile(offsetsPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config{Dir: dir, Fsync: FsyncNever, Metrics: obs.NewRegistry()})
	if err == nil || !strings.Contains(err.Error(), "corrupt offsets") {
		t.Fatalf("Open = %v, want corrupt offsets error", err)
	}
}

func TestAppendAfterCloseIntake(t *testing.T) {
	b, _ := openTest(t, t.TempDir(), nil)
	defer b.Close()
	b.CloseIntake()
	if _, err := b.Append("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestOffsetsClampAfterWALWipe(t *testing.T) {
	dir := t.TempDir()
	b, _ := openTest(t, dir, nil)
	for i := 0; i < 6; i++ {
		b.Append("w")
	}
	c, _ := b.Consumer("g")
	for i := 0; i < 6; i++ {
		c.Next()
	}
	c.Ack(6)
	c.Close()
	b.Close()

	// Wipe the segments but keep the offsets file: the committed offset
	// (6) now points past the log and must clamp, not wedge the broker.
	segs, _ := listSegments(dir)
	for _, s := range segs {
		os.Remove(s.path)
	}
	b2, _ := openTest(t, dir, nil)
	defer b2.Close()
	if got := b2.Committed("g"); got != 0 {
		t.Fatalf("clamped committed %d, want 0", got)
	}
}

// TestAutoCommitStride: auto-commit advances the in-memory committed
// offset on every ack but rewrites the offsets file only once per
// CommitEvery records — so a crash (Kill) loses at most one stride of
// progress, while explicit Commit and graceful Close lose none.
func TestAutoCommitStride(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Broker, *Consumer) {
		b, _ := openTest(t, dir, nil)
		c, err := b.Consumer("g")
		if err != nil {
			t.Fatal(err)
		}
		c.CommitEvery = 4
		return b, c
	}

	b, c := open()
	for i := 0; i < 10; i++ {
		if _, err := b.Append("s"); err != nil {
			t.Fatal(err)
		}
	}
	c.Next()
	c.Next()
	c.Next()
	c.Ack(3) // below the stride: committed in memory, not on disk
	if got := b.Committed("g"); got != 3 {
		t.Fatalf("in-memory committed %d, want 3", got)
	}
	c.Close()
	b.Kill()

	b, c = open()
	if got := b.Committed("g"); got != 0 {
		t.Fatalf("committed after crash %d, want 0 (stride not reached)", got)
	}
	for i := 0; i < 5; i++ {
		c.Next()
	}
	c.Ack(5) // crosses the stride: persisted
	c.Close()
	b.Kill()

	b, c = open()
	if got := b.Committed("g"); got != 5 {
		t.Fatalf("committed after crash %d, want 5 (stride persisted)", got)
	}
	c.Next()
	c.Ack(1) // offset 6: below the next stride...
	if err := c.Commit(); err != nil { // ...but explicit Commit persists
		t.Fatal(err)
	}
	c.Close()
	b.Kill()

	b, _ = open()
	defer b.Close()
	if got := b.Committed("g"); got != 6 {
		t.Fatalf("committed after explicit Commit %d, want 6", got)
	}
}
