package broker

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk record frame: a fixed 8-byte header — little-endian uint32
// payload length, little-endian uint32 CRC32C (Castagnoli) of the payload
// — followed by the payload bytes. A reader that finds a frame whose
// length is implausible, whose bytes run past end-of-file, or whose CRC
// disagrees has hit either a torn tail (crash mid-append) or corruption;
// recovery truncates the former and refuses the latter.
const frameHeader = 8

// segSuffix names WAL segment files: <base offset, 20 digits>.wal, so a
// lexical sort of the directory is an offset sort.
const segSuffix = ".wal"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one append-only WAL file. base is the offset (1-based,
// broker-wide) of its first record; recs and size track its valid
// contents. The highest-base segment is the active one; all others are
// sealed and immutable.
type segment struct {
	base uint64
	recs uint64
	size int64
	path string
}

// last returns the offset of the segment's final record (only meaningful
// when recs > 0).
func (s *segment) last() uint64 { return s.base + s.recs - 1 }

// segmentPath renders the canonical file name for a segment starting at
// base.
func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", base, segSuffix))
}

// parseSegmentBase extracts the base offset from a segment file name.
func parseSegmentBase(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// listSegments discovers the WAL files in dir, sorted by base offset.
func listSegments(dir string) ([]*segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("broker: listing %s: %w", dir, err)
	}
	var segs []*segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseSegmentBase(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, &segment{base: base, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// appendFrame frames one payload onto buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	return append(append(buf, hdr[:]...), payload...)
}

// readFrame reads and verifies one record. io.EOF means a clean end of
// the stream (no header bytes at all); every other failure — short
// header, implausible length, short payload, CRC mismatch — is reported
// as a distinct error so recovery can decide between truncation and
// refusal.
func readFrame(r *bufio.Reader, maxRecord int) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("broker: torn frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if int64(n) > int64(maxRecord) {
		return nil, fmt.Errorf("broker: frame length %d exceeds record limit %d (corrupt header)", n, maxRecord)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("broker: torn frame payload: %w", err)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("broker: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	return payload, nil
}

// scanSegment walks a segment file from the start, verifying every frame.
// It returns the number of valid records and the byte length of the valid
// prefix; valid < file size means the tail is torn or corrupt, and scanErr
// carries the frame error that stopped the scan (nil on a clean read to
// EOF).
func scanSegment(path string, maxRecord int) (recs uint64, valid int64, scanErr error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("broker: opening segment %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		payload, ferr := readFrame(r, maxRecord)
		if ferr == io.EOF {
			return recs, valid, nil, nil
		}
		if ferr != nil {
			return recs, valid, ferr, nil
		}
		recs++
		valid += frameHeader + int64(len(payload))
	}
}
