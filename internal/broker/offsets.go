package broker

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Consumer-group offsets persist in a single small JSON file beside the
// segments, rewritten atomically (temp file + rename) on every commit.
// The committed offset is the highest record a group has fully
// processed; a restarted consumer resumes at committed+1, which is what
// makes acknowledged records crash-proof: commit happens only after the
// pipeline has detected and delivered, so replay can duplicate work but
// never skip it.

// offsetsFileName is the offsets file inside the WAL directory.
const offsetsFileName = "offsets.json"

// offsetsFile is the serialized offsets table.
type offsetsFile struct {
	Version int               `json:"version"`
	Groups  map[string]uint64 `json:"groups"`
}

// offsetsPath renders the offsets file path for a WAL directory.
func offsetsPath(dir string) string { return filepath.Join(dir, offsetsFileName) }

// loadOffsets reads the offsets table; a missing file is an empty table.
func loadOffsets(path string) (map[string]uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]uint64{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("broker: reading offsets: %w", err)
	}
	var f offsetsFile
	if err := json.Unmarshal(data, &f); err != nil {
		// A torn offsets write cannot happen (temp+rename), so damage
		// here is real corruption. Starting every group from zero would
		// silently re-deliver everything; refuse and let the operator
		// decide.
		return nil, fmt.Errorf("broker: corrupt offsets file %s: %w", path, err)
	}
	if f.Version > 1 {
		return nil, fmt.Errorf("broker: offsets file version %d is newer than supported (1)", f.Version)
	}
	if f.Groups == nil {
		f.Groups = map[string]uint64{}
	}
	return f.Groups, nil
}

// saveOffsetsLocked persists the current offsets table atomically.
// Callers hold b.mu.
func (b *Broker) saveOffsetsLocked() error {
	path := offsetsPath(b.cfg.Dir)
	data, err := json.Marshal(offsetsFile{Version: 1, Groups: b.groups})
	if err != nil {
		return fmt.Errorf("broker: encoding offsets: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("broker: writing offsets: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("broker: writing offsets: %w", err)
	}
	if b.cfg.Fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("broker: syncing offsets: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("broker: writing offsets: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("broker: swapping offsets: %w", err)
	}
	return nil
}
