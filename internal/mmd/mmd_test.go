package mmd

import (
	"math/rand"
	"testing"

	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

func gaussianBatch(rng *rand.Rand, n, d int, mean float64) *tensor.Tensor {
	t := tensor.Randn(rng, 1, n, d)
	for i := range t.Data {
		t.Data[i] += mean
	}
	return t
}

func TestShiftedDistributionsScoreHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	same := Estimate(gaussianBatch(rng, 64, 4, 0), gaussianBatch(rng, 64, 4, 0), nil)
	shifted := Estimate(gaussianBatch(rng, 64, 4, 0), gaussianBatch(rng, 64, 4, 2), nil)
	if shifted <= same {
		t.Fatalf("MMD must rank shifted (%.4f) above identical (%.4f)", shifted, same)
	}
	if same > 0.05 {
		t.Fatalf("identical distributions should give near-zero MMD, got %.4f", same)
	}
}

func TestMMDNonNegativeInExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		v := Estimate(gaussianBatch(rng, 48, 3, 0), gaussianBatch(rng, 48, 3, 0), nil)
		// The biased estimator fluctuates slightly; it must not be
		// substantially negative.
		if v < -0.02 {
			t.Fatalf("MMD estimate %v too negative", v)
		}
	}
}

func TestLossGradientsAlignDistributions(t *testing.T) {
	// Minimizing MMD through a learned shift must pull target onto source.
	rng := rand.New(rand.NewSource(3))
	ps := nn.NewParamSet()
	shift := ps.New("shift", tensor.New(1, 3))
	shift.Value.Fill(3) // target starts 3 away from source

	src := gaussianBatch(rng, 48, 3, 0)
	lr := 0.5
	var first, last float64
	for step := 0; step < 60; step++ {
		tgtBase := gaussianBatch(rng, 48, 3, 0)
		g := nn.NewGraph()
		// target = base + shift (broadcast via matmul with ones column)
		onesCol := tensor.New(48, 1)
		onesCol.Fill(1)
		shifted := g.Add(g.Const(tgtBase), g.MatMul(g.Const(onesCol), g.Param(shift)))
		all := g.ConcatRows(g.Const(src), shifted)
		domains := make([]float64, 96)
		for i := 48; i < 96; i++ {
			domains[i] = 1
		}
		loss := Loss(g, all, domains, nil)
		if step == 0 {
			first = loss.Value.Data[0]
		}
		last = loss.Value.Data[0]
		g.Backward(loss)
		for i := range shift.Value.Data {
			shift.Value.Data[i] -= lr * shift.Grad.Data[i]
		}
		ps.ZeroGrad()
	}
	if last >= first/3 {
		t.Fatalf("minimizing MMD should align distributions: %.4f -> %.4f", first, last)
	}
	if shift.Value.MaxAbs() > 1.5 {
		t.Fatalf("shift should shrink toward zero, still %.3f", shift.Value.MaxAbs())
	}
}

func TestDegenerateBatches(t *testing.T) {
	g := nn.NewGraph()
	features := tensor.New(3, 2)
	// Only one target row: loss must be the zero constant.
	loss := Loss(g, g.Const(features), []float64{0, 0, 1}, nil)
	if loss.Value.Data[0] != 0 {
		t.Fatalf("degenerate batch must give zero loss, got %v", loss.Value.Data[0])
	}
}

func TestQuickSelect(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := quickSelect(append([]float64(nil), xs...), 2); got != 3 {
		t.Fatalf("median of 1..5 is 3, got %v", got)
	}
	if got := quickSelect(append([]float64(nil), xs...), 0); got != 1 {
		t.Fatalf("min is 1, got %v", got)
	}
	if got := quickSelect(append([]float64(nil), xs...), 4); got != 5 {
		t.Fatalf("max is 5, got %v", got)
	}
}
