// Package mmd implements Maximum Mean Discrepancy (Gretton et al., 2006),
// the kernel two-sample statistic the paper cites as the classic
// distribution-alignment alternative to adversarial domain adaptation
// (§II-A). LogSynergy uses DAAN; this package provides the MMD option so
// the choice can be ablated: minimizing MMD between the source and target
// system-unified features aligns their distributions without a domain
// classifier or gradient reversal.
package mmd

import (
	"logsynergy/internal/nn"
	"logsynergy/internal/tensor"
)

// Loss builds the squared MMD between source rows and target rows of a
// feature batch on the graph, using a multi-scale RBF kernel:
//
//	MMD²(S,T) = E[k(s,s')] + E[k(t,t')] − 2·E[k(s,t)]
//
// features is [B,d]; domains[i] is 0 for source rows, 1 for target rows.
// Bandwidths are set by the median heuristic times the given multipliers
// (a standard multi-kernel choice). Returns a scalar node; minimizing it
// pulls the two feature distributions together. If either side has fewer
// than two rows the loss is a zero constant.
func Loss(g *nn.Graph, features *nn.Node, domains []float64, bandwidthScales []float64) *nn.Node {
	var srcIdx, tgtIdx []int
	for i, d := range domains {
		if d == 0 {
			srcIdx = append(srcIdx, i)
		} else {
			tgtIdx = append(tgtIdx, i)
		}
	}
	if len(srcIdx) < 2 || len(tgtIdx) < 2 {
		return g.Const(tensor.Scalar(0))
	}
	if len(bandwidthScales) == 0 {
		bandwidthScales = []float64{0.5, 1, 2}
	}

	s := g.GatherRows(features, srcIdx)
	t := g.GatherRows(features, tgtIdx)

	sigma2 := medianSquaredDistance(features.Value, srcIdx, tgtIdx)
	if sigma2 <= 0 {
		sigma2 = 1
	}

	var loss *nn.Node
	for _, scale := range bandwidthScales {
		bw := sigma2 * scale
		term := g.Add(
			g.Sub(meanKernel(g, s, s, bw), g.Scale(meanKernel(g, s, t, bw), 2)),
			meanKernel(g, t, t, bw),
		)
		if loss == nil {
			loss = term
		} else {
			loss = g.Add(loss, term)
		}
	}
	return g.Scale(loss, 1/float64(len(bandwidthScales)))
}

// meanKernel is E[exp(−‖a_i − b_j‖² / (2·bw))] over all pairs.
func meanKernel(g *nn.Graph, a, b *nn.Node, bw float64) *nn.Node {
	// ‖a_i − b_j‖² = ‖a_i‖² + ‖b_j‖² − 2·a_i·b_j, assembled with
	// broadcast-friendly ops.
	m, n := a.Value.Rows(), b.Value.Rows()
	cross := g.MatMul(a, g.Transpose(b)) // [m,n]

	aNorm := rowSquaredNorms(g, a)                            // [m,1]-like [m] vector node as [m,1]
	bNorm := rowSquaredNorms(g, b)                            // [n,1]
	aBroadcast := g.MatMul(aNorm, onesRow(g, n))              // [m,n]
	bBroadcast := g.MatMul(onesCol(g, m), g.Transpose(bNorm)) // [m,n]

	dist := g.Sub(g.Add(aBroadcast, bBroadcast), g.Scale(cross, 2))
	kernel := g.Exp(g.Scale(dist, -1/(2*bw)))
	return g.Mean(kernel)
}

// rowSquaredNorms returns a [m,1] node of per-row squared norms.
func rowSquaredNorms(g *nn.Graph, a *nn.Node) *nn.Node {
	m, d := a.Value.Rows(), a.Value.Cols()
	sq := g.Square(a)
	ones := tensor.New(d, 1)
	ones.Fill(1)
	_ = m
	return g.MatMul(sq, g.Const(ones)) // [m,1]
}

// onesRow returns a constant [1,n] of ones.
func onesRow(g *nn.Graph, n int) *nn.Node {
	t := tensor.New(1, n)
	t.Fill(1)
	return g.Const(t)
}

// onesCol returns a constant [m,1] of ones.
func onesCol(g *nn.Graph, m int) *nn.Node {
	t := tensor.New(m, 1)
	t.Fill(1)
	return g.Const(t)
}

// medianSquaredDistance estimates the median pairwise squared distance
// between the source and target rows (the median heuristic bandwidth).
func medianSquaredDistance(features *tensor.Tensor, srcIdx, tgtIdx []int) float64 {
	d := features.Cols()
	var dists []float64
	// Cap the sample to keep the heuristic cheap on big batches.
	maxPairs := 512
	for _, i := range srcIdx {
		for _, j := range tgtIdx {
			sum := 0.0
			for k := 0; k < d; k++ {
				diff := features.Data[i*d+k] - features.Data[j*d+k]
				sum += diff * diff
			}
			dists = append(dists, sum)
			if len(dists) >= maxPairs {
				break
			}
		}
		if len(dists) >= maxPairs {
			break
		}
	}
	if len(dists) == 0 {
		return 1
	}
	// Median via partial selection.
	k := len(dists) / 2
	return quickSelect(dists, k)
}

// quickSelect returns the k-th smallest element (0-based), average O(n).
func quickSelect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// Estimate computes the detached MMD² value between two raw feature sets
// (no gradients), handy for diagnostics and tests.
func Estimate(src, tgt *tensor.Tensor, bandwidthScales []float64) float64 {
	m, n := src.Rows(), tgt.Rows()
	features := tensor.New(m+n, src.Cols())
	copy(features.Data, src.Data)
	copy(features.Data[m*src.Cols():], tgt.Data)
	domains := make([]float64, m+n)
	for i := m; i < m+n; i++ {
		domains[i] = 1
	}
	g := nn.NewGraph()
	return Loss(g, g.Const(features), domains, bandwidthScales).Value.Data[0]
}
