package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// shardBenchReport is the schema of BENCH_shard.json, produced by
// `make bench-shard` (full) and `make bench-shard-smoke` (shrunk sizes;
// it runs inside `make verify`). One row per shard count: end-to-end
// detection throughput (append → route → consume → parse → interpret →
// embed → detect → fan-in) plus how well the shared caches deduplicated
// cross-shard work.
type shardBenchReport struct {
	Smoke     bool            `json:"smoke"`
	Lines     int             `json:"lines"`
	Keys      int             `json:"keys"`
	Runs      []shardBenchRun `json:"runs"`
	Rebalance *rebalanceBench `json:"rebalance,omitempty"`
}

// rebalanceBench measures the offline N→N+1 shard rebalance over the
// same corpus: total wall time and the per-moved-key cost of the exact
// key handoff (tails + template groups + pattern verdicts).
type rebalanceBench struct {
	From              int     `json:"from"`
	To                int     `json:"to"`
	MovedKeys         int     `json:"moved_keys"`
	MovedLines        int     `json:"moved_tail_lines"`
	TotalMicros       int64   `json:"total_micros"`
	MicrosPerMovedKey float64 `json:"micros_per_moved_key"`
}

// shardBenchRun is one shard count's measurements.
type shardBenchRun struct {
	Shards          int     `json:"shards"`
	LinesPerSec     float64 `json:"lines_per_sec"`
	SpeedupVs1      float64 `json:"speedup_vs_1"`
	InterpHitRate   float64 `json:"interp_cache_hit_rate"`
	InterpRendered  int64   `json:"interp_rendered"`
	EmbedCacheHits  uint64  `json:"embed_cache_hits"`
	WindowsScored   int     `json:"windows_scored"`
	AnomaliesRaised int     `json:"anomalies_raised"`
}

// TestBenchShardReport measures sharded end-to-end throughput at 1, 2,
// 4 and 8 shards over identical fixed-seed keyed traffic and writes
// BENCH_shard.json. Gated on BENCH_SHARD_OUT so `go test ./...` stays
// fast; BENCH_SHARD_SMOKE shrinks the corpus for the verify gate.
func TestBenchShardReport(t *testing.T) {
	out := os.Getenv("BENCH_SHARD_OUT")
	if out == "" {
		t.Skip("set BENCH_SHARD_OUT=path to run the shard benchmark and write the report")
	}
	smoke := os.Getenv("BENCH_SHARD_SMOKE") != ""
	lines, nkeys := 60_000, 32
	if smoke {
		lines, nkeys = 4_000, 16
	}

	var rep shardBenchReport
	rep.Smoke = smoke
	rep.Lines = lines
	rep.Keys = nkeys
	corpus := genEqLines(1234, lines, eqKeys(nkeys))

	for _, shards := range []int{1, 2, 4, 8} {
		det, interp, e := eqEnv()
		sink := &pipeline.MemorySink{}
		rt, err := Open(Config{
			Shards:   shards,
			Dir:      t.TempDir(),
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     sink,
			Metrics:  obs.NewRegistry(),
			Broker:   broker.Config{Fsync: broker.FsyncInterval, MaxBacklogBytes: -1},
		})
		if err != nil {
			t.Fatal(err)
		}

		start := time.Now()
		const batch = 512
		for i := 0; i < len(corpus); i += batch {
			end := i + batch
			if end > len(corpus) {
				end = len(corpus)
			}
			if _, err := rt.AppendBatch(corpus[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		if err := rt.Drain(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		dur := time.Since(start)

		stats := rt.Stats()
		if stats.LinesCollected != lines {
			t.Fatalf("%d shards collected %d of %d lines", shards, stats.LinesCollected, lines)
		}
		hits, misses, waits := rt.Cache().Stats()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}

		var run shardBenchRun
		run.Shards = shards
		run.LinesPerSec = float64(lines) / dur.Seconds()
		if total := hits + misses + waits; total > 0 {
			run.InterpHitRate = float64(hits+waits) / float64(total)
		}
		run.InterpRendered = misses
		run.EmbedCacheHits = e.TextCacheHits()
		run.WindowsScored = stats.SequencesFormed
		run.AnomaliesRaised = stats.Anomalies
		if len(rep.Runs) > 0 {
			run.SpeedupVs1 = run.LinesPerSec / rep.Runs[0].LinesPerSec
		} else {
			run.SpeedupVs1 = 1
		}
		rep.Runs = append(rep.Runs, run)

		t.Logf("%d shards: %.0f lines/s (%.2fx vs 1), interp hit rate %.3f (%d rendered), %d embed cache hits",
			shards, run.LinesPerSec, run.SpeedupVs1, run.InterpHitRate, run.InterpRendered, run.EmbedCacheHits)

		// The shared singleflight cache must have deduplicated renders
		// across shards: one render per distinct template, regardless of
		// shard count.
		if misses != int64(len(eqBodies)) {
			t.Errorf("%d shards rendered %d templates, want %d", shards, misses, len(eqBodies))
		}
	}

	// Rebalance cost: grow a freshly-detected 4-shard layout to 5 and
	// charge the wall time to the keys that moved.
	{
		det, interp, e := eqEnv()
		dir := t.TempDir()
		rt, err := Open(Config{
			Shards:   4,
			Dir:      dir,
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     &pipeline.MemorySink{},
			Metrics:  obs.NewRegistry(),
			Broker:   broker.Config{Fsync: broker.FsyncInterval, MaxBacklogBytes: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.AppendBatch(corpus); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		if err := rt.Drain(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		rb, err := Rebalance(dir, "", 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		bench := &rebalanceBench{
			From:        4,
			To:          5,
			MovedKeys:   rb.MovedKeys,
			MovedLines:  rb.MovedLines,
			TotalMicros: rb.Duration.Microseconds(),
		}
		if rb.MovedKeys > 0 {
			bench.MicrosPerMovedKey = float64(rb.Duration.Microseconds()) / float64(rb.MovedKeys)
		}
		rep.Rebalance = bench
		t.Logf("rebalance 4->5: moved %d keys (%d tail lines) in %v (%.0f µs/moved key)",
			rb.MovedKeys, rb.MovedLines, rb.Duration, bench.MicrosPerMovedKey)

		// The grown layout must still be openable and quiesced.
		rt2, err := Open(Config{
			Shards:   5,
			Dir:      dir,
			Pipeline: pipeline.DefaultConfig(eqHint),
			Detector: det,
			Interp:   interp,
			Embedder: e,
			Sink:     &pipeline.MemorySink{},
			Metrics:  obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("opening the rebalanced layout: %v", err)
		}
		if err := rt2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
