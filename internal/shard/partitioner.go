// Package shard is the partition-aware detection runtime: it splits
// broker intake into N partitions with a stable consistent-hash
// partitioner keyed by source-system/stream id, runs one independent
// §VI pipeline (parser → LEI → embed → detect → sink) per partition —
// each with its own WAL directory, consumer offsets, resilience guards
// and obs registry — and merges anomaly reports through an
// order-preserving (per-key) fan-in sink.
//
// The safety argument is the paper's own: per-system log streams are
// semantically independent until the shared encoder, so demultiplexing
// them by stream key changes nothing about any key's window sequence.
// The runtime makes that argument checkable — the equivalence suite
// replays fixed-seed multi-system traffic through 1, 2, 4 and 8 shards
// and requires bit-identical per-key score sequences and identical
// alert multisets versus a single keyed pipeline.
//
// Shared state across partitions is read-only or deduplicated:
//
//   - model weights: read-only during inference (one *core.Model for
//     every partition's detector);
//   - interpretation cache: a singleflight-deduplicated template →
//     interpretation cache (InterpCache), so a hot event template is
//     rendered by the LLM once process-wide;
//   - embedding cache: the shared embedder memoizes whole-text vectors.
//
// Everything else — drain parser, event table, pattern library, spill
// queue, offsets, window tails — is per-partition, which is what makes
// a fault injected into one shard invisible to the others.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per partition. 128
// vnodes keep both bounds the equivalence suite asserts: per-partition
// load within 2x of ideal over random keys, and ≤ ~1/(N+1) of keys
// remapped when a ring grows from N to N+1 partitions.
const DefaultVirtualNodes = 128

// Partitioner maps stream keys onto partitions with a consistent-hash
// ring. The mapping depends only on (partition count, vnode count): the
// same key lands on the same partition across restarts and across
// processes, which is what gives the runtime its key-affinity guarantee
// (a key's lines always reach the same partition's WAL, parser, window
// state and pattern library).
type Partitioner struct {
	n    int
	ring []ringPoint
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	h    uint64
	part int
}

// NewPartitioner builds a ring over n partitions with DefaultVirtualNodes
// vnodes each. n must be positive.
func NewPartitioner(n int) *Partitioner {
	return NewPartitionerVnodes(n, DefaultVirtualNodes)
}

// NewPartitionerVnodes builds a ring with an explicit vnode count
// (property tests shrink it to exaggerate imbalance).
func NewPartitionerVnodes(n, vnodes int) *Partitioner {
	if n <= 0 {
		panic(fmt.Sprintf("shard: partition count must be positive, got %d", n))
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	p := &Partitioner{n: n, ring: make([]ringPoint, 0, n*vnodes)}
	for part := 0; part < n; part++ {
		for v := 0; v < vnodes; v++ {
			p.ring = append(p.ring, ringPoint{h: hashKey(fmt.Sprintf("shard/%d/vnode/%d", part, v)), part: part})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].h != p.ring[j].h {
			return p.ring[i].h < p.ring[j].h
		}
		// A 64-bit collision between vnode labels is vanishingly unlikely;
		// break it by partition index so the ring order stays total and
		// deterministic either way.
		return p.ring[i].part < p.ring[j].part
	})
	return p
}

// Partitions returns the partition count.
func (p *Partitioner) Partitions() int { return p.n }

// Partition returns the partition owning key: the first ring point at or
// after the key's hash, wrapping at the top of the ring.
func (p *Partitioner) Partition(key string) int {
	if p.n == 1 {
		return 0
	}
	h := hashKey(key)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].h >= h })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].part
}

// hashKey is the ring hash: FNV-64a finished with a splitmix64-style
// avalanche. Both halves are fixed functions — stable across processes
// and architectures, no seed material that could vary between runs. The
// finalizer matters: raw FNV over the structured vnode labels leaves
// correlated high bits, which skews ring arcs badly enough to break the
// 2x balance bound the property suite asserts.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DefaultKeyFunc extracts the stream key from a raw log line: the first
// whitespace-delimited token (the source-system/stream id a collection
// tier stamps onto each shipped line). Leading whitespace is skipped
// first — a line indented by its shipper must key on its first real
// token, not on the empty string (which would funnel every padded line
// from every system onto one partition). Lines with no token after the
// padding are their own key — they still route stably.
func DefaultKeyFunc(line string) string {
	start := 0
	for start < len(line) && (line[start] == ' ' || line[start] == '\t') {
		start++
	}
	for i := start; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' {
			return line[start:i]
		}
	}
	return line[start:]
}
